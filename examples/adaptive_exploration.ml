(* Adaptive design-space exploration (DESIGN.md section 12): the same
   JCVM interface sweep as examples/jcvm_exploration.ml, but each grid
   cell runs in a live mixed-level session — layer 2 most of the time,
   refined to layer 1 in calibration and high-power windows — instead of
   pinning the whole sweep to one abstraction level.

   Run with:  dune exec examples/adaptive_exploration.exe *)

let () =
  let applet = Jcvm.Applets.crc16 in

  print_endline "== 1. The degenerate policy is the fixed level ==";
  print_endline
    "A constant-L1 policy routes every transaction through the layer-1\n\
     front-end of the live session; the row must match the fixed-level\n\
     sweep bit for bit, energy included:\n";
  let config = List.hd Jcvm.Configs.standard in
  let fixed = Core.Exploration.run_one ~level:Core.Level.L1 ~config applet in
  let pinned =
    Core.Exploration.run_one
      ~policy:(Hier.Policy.constant Hier.Level.L1)
      ~config applet
  in
  Printf.printf
    "fixed  L1: %6d cycles  %8.1f pJ  %d txns\n\
     pinned L1: %6d cycles  %8.1f pJ  %d txns  (identical: %b)\n\n"
    fixed.Core.Exploration.cycles fixed.Core.Exploration.bus_pj
    fixed.Core.Exploration.transactions pinned.Core.Exploration.cycles
    pinned.Core.Exploration.bus_pj pinned.Core.Exploration.transactions
    (fixed.Core.Exploration.cycles = pinned.Core.Exploration.cycles
    && fixed.Core.Exploration.bus_pj = pinned.Core.Exploration.bus_pj
    && fixed.Core.Exploration.transactions
       = pinned.Core.Exploration.transactions);

  print_endline "== 2. The exploration preset ==";
  print_endline
    "Hier.Policy.for_exploration (): layer 2 as the sweep level, layer 1\n\
     for the calibration warm-up, periodic refinement samples, and any\n\
     window whose bus power spikes.  Rows carry the spliced provenance:\n";
  let policy = Hier.Policy.for_exploration () in
  let rows = Core.Exploration.run ~policy ~applets:[ applet ] () in
  print_endline (Core.Exploration.render rows);
  print_newline ();

  print_endline "== 3. What the adaptivity buys ==";
  print_endline
    "The same grid swept pure-L1, pure-L2 and adaptively, serially, with\n\
     the acceptance checks of DESIGN.md section 12:\n";
  let c = Core.Experiments.run_exploration_comparison ~applets:[ applet ] () in
  print_endline (Core.Experiments.render_exploration_comparison c);
  print_newline ();

  print_endline "== 4. Inspecting one row's windows ==";
  let row =
    List.find (fun r -> r.Core.Exploration.provenance <> None) rows
  in
  (match row.Core.Exploration.provenance with
  | None -> ()
  | Some splice ->
    Printf.printf "row %s/%s: %d windows, %d switches, budget ±%.1f pJ\n"
      row.Core.Exploration.applet row.Core.Exploration.config.Jcvm.Configs.name
      (List.length splice.Hier.Splice.windows)
      splice.Hier.Splice.switches splice.Hier.Splice.error_bound_pj;
    List.iteri
      (fun i (w : Hier.Splice.window) ->
        Printf.printf "  window %2d: %-3s %5d cycles %5d txns %10.1f pJ\n" i
          (Hier.Level.to_string w.Hier.Splice.level)
          w.Hier.Splice.cycles w.Hier.Splice.txns w.Hier.Splice.bus_pj)
      splice.Hier.Splice.windows);
  print_endline
    "\nFor a visual version, write a per-row Perfetto trace:\n\
    \  dune exec bin/smartcard.exe -- explore --adaptive --applet crc16 \\\n\
    \      --trace-out explore.json";
  ()
