type params = {
  idle_pj_per_cycle : float;
  active_pj_per_cycle : float;
  access_pj : float;
}

let params ?(idle_pj_per_cycle = 0.0) ?(active_pj_per_cycle = 0.0)
    ?(access_pj = 0.0) () =
  if idle_pj_per_cycle < 0.0 || active_pj_per_cycle < 0.0 || access_pj < 0.0
  then invalid_arg "Power.Component.params: negative energy";
  { idle_pj_per_cycle; active_pj_per_cycle; access_pj }

type t = {
  name : string;
  p : params;
  mutable active_cycles : int;
  mutable idle_cycles : int;
  mutable accesses : int;
}

let create ~name p = { name; p; active_cycles = 0; idle_cycles = 0; accesses = 0 }
let name t = t.name

let tick t ~active =
  if active then t.active_cycles <- t.active_cycles + 1
  else t.idle_cycles <- t.idle_cycles + 1

let access t = t.accesses <- t.accesses + 1

let energy_pj t =
  (float_of_int t.active_cycles *. t.p.active_pj_per_cycle)
  +. (float_of_int t.idle_cycles *. t.p.idle_pj_per_cycle)
  +. (float_of_int t.accesses *. t.p.access_pj)

let active_cycles t = t.active_cycles
let idle_cycles t = t.idle_cycles
let accesses t = t.accesses

let reset t =
  t.active_cycles <- 0;
  t.idle_cycles <- 0;
  t.accesses <- 0

module Presets = struct
  (* Synthetic but smart-card plausible magnitudes (0.18u, 1.8 V core):
     non-volatile memories cost much more per access than SRAM; the flash
     charge pump dominates when writing; the crypto datapath burns the most
     while active. *)
  let rom = params ~idle_pj_per_cycle:0.05 ~active_pj_per_cycle:0.4 ~access_pj:6.0 ()
  let eeprom = params ~idle_pj_per_cycle:0.08 ~active_pj_per_cycle:0.9 ~access_pj:25.0 ()
  let flash = params ~idle_pj_per_cycle:0.08 ~active_pj_per_cycle:1.1 ~access_pj:18.0 ()
  let sram = params ~idle_pj_per_cycle:0.03 ~active_pj_per_cycle:0.25 ~access_pj:2.2 ()
  let uart = params ~idle_pj_per_cycle:0.02 ~active_pj_per_cycle:0.35 ~access_pj:1.5 ()
  let timer = params ~idle_pj_per_cycle:0.04 ~active_pj_per_cycle:0.12 ~access_pj:1.0 ()
  let trng = params ~idle_pj_per_cycle:0.10 ~active_pj_per_cycle:0.8 ~access_pj:3.0 ()
  let crypto = params ~idle_pj_per_cycle:0.06 ~active_pj_per_cycle:4.5 ~access_pj:2.5 ()
end
