type t = { name : string; per_signal : float array }

let name t = t.name

let make ~name f =
  { name; per_signal = Array.init Ec.Signals.count (fun i -> f (Ec.Signals.of_index i)) }

let default =
  make ~name:"default(capacitance)" (fun id ->
      Units.pj_per_transition
        ~capacitance_ff:(Ec.Signals.default_capacitance_ff id)
        ~vdd:Ec.Signals.vdd)

let derive ~name ~energy_pj ~transitions =
  if Array.length energy_pj <> Ec.Signals.count
     || Array.length transitions <> Ec.Signals.count
  then invalid_arg "Power.Characterization.derive: bad array length";
  let per_signal =
    Array.init Ec.Signals.count (fun i ->
        if transitions.(i) = 0 then default.per_signal.(i)
        else energy_pj.(i) /. float_of_int transitions.(i))
  in
  { name; per_signal }

let energy_per_transition t id = t.per_signal.(Ec.Signals.index id)

let scale t k =
  { name = Printf.sprintf "%s*%.3f" t.name k;
    per_signal = Array.map (fun e -> e *. k) t.per_signal }

let avg_over t ids =
  match ids with
  | [] -> 0.0
  | _ ->
    let sum = List.fold_left (fun acc id -> acc +. energy_per_transition t id) 0.0 ids in
    sum /. float_of_int (List.length ids)

let avg_addr_bit t =
  avg_over t (List.init Ec.Signals.addr_wires (fun i -> Ec.Signals.Addr i))

let avg_wdata_bit t =
  avg_over t (List.init Ec.Signals.data_wires (fun i -> Ec.Signals.Wdata i))

let avg_rdata_bit t =
  avg_over t (List.init Ec.Signals.data_wires (fun i -> Ec.Signals.Rdata i))

let avg_be_bit t =
  avg_over t (List.init Ec.Signals.be_wires (fun i -> Ec.Signals.Be i))

let pp ppf t =
  Format.fprintf ppf
    "@[<v>characterization %s:@ addr %.3f pJ/t  wdata %.3f  rdata %.3f  be %.3f@]"
    t.name (avg_addr_bit t) (avg_wdata_bit t) (avg_rdata_bit t) (avg_be_bit t)
