type trace = float array

let min_length traces =
  List.fold_left (fun acc t -> min acc (Array.length t)) max_int traces

let mean_of traces len =
  let n = List.length traces in
  let acc = Array.make len 0.0 in
  let add t =
    for i = 0 to len - 1 do
      acc.(i) <- acc.(i) +. t.(i)
    done
  in
  List.iter add traces;
  Array.map (fun s -> s /. float_of_int n) acc

let difference_of_means ~traces ~select =
  let selected, others =
    List.partition (fun (i, _) -> select i)
      (List.mapi (fun i t -> (i, t)) traces)
  in
  if selected = [] || others = [] then
    invalid_arg "Power.Dpa.difference_of_means: empty partition";
  let len = min_length traces in
  let m1 = mean_of (List.map snd selected) len in
  let m0 = mean_of (List.map snd others) len in
  Array.init len (fun i -> m1.(i) -. m0.(i))

let peak_abs trace =
  let best = ref 0 in
  Array.iteri (fun i v -> if Float.abs v > Float.abs trace.(!best) then best := i) trace;
  (!best, trace.(!best))

let dpa_attack ~traces ~inputs ~model ~guesses =
  let inputs = Array.of_list inputs in
  let score key =
    let select i = model ~key ~input:inputs.(i) in
    match difference_of_means ~traces ~select with
    | diff -> snd (peak_abs diff) |> Float.abs
    | exception Invalid_argument _ -> 0.0
  in
  List.map (fun g -> (g, score g)) guesses
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pearson xs ys =
  let n = min (Array.length xs) (Array.length ys) in
  if n = 0 then 0.0
  else begin
    let fn = float_of_int n in
    let sum a = Array.fold_left ( +. ) 0.0 (Array.sub a 0 n) in
    let mx = sum xs /. fn and my = sum ys /. fn in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0
    else !sxy /. sqrt (!sxx *. !syy)
  end

let cpa_attack ~traces ~inputs ~model ~guesses =
  let traces_arr = Array.of_list traces in
  let inputs = Array.of_list inputs in
  let n = Array.length traces_arr in
  let len = min_length traces in
  let column c = Array.init n (fun i -> traces_arr.(i).(c)) in
  let columns = Array.init len column in
  let score key =
    let hypo = Array.init n (fun i -> model ~key ~input:inputs.(i)) in
    let best = ref 0.0 in
    Array.iter
      (fun col ->
        let r = Float.abs (pearson hypo col) in
        if r > !best then best := r)
      columns;
    !best
  in
  List.map (fun g -> (g, score g)) guesses
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let hamming_weight = Sim.Signal.popcount
let hamming_distance a b = Sim.Signal.popcount (a lxor b)

let snr ~traces ~groups =
  let len = min_length traces in
  let tbl = Hashtbl.create 16 in
  List.iter2
    (fun trace g ->
      let cur = try Hashtbl.find tbl g with Not_found -> [] in
      Hashtbl.replace tbl g (trace :: cur))
    traces groups;
  let group_stats =
    Hashtbl.fold (fun _ ts acc -> (mean_of ts len, ts) :: acc) tbl []
  in
  let cycle_snr c =
    let means = List.map (fun (m, _) -> m.(c)) group_stats in
    let overall = List.fold_left ( +. ) 0.0 means /. float_of_int (List.length means) in
    let var_means =
      List.fold_left (fun acc m -> acc +. ((m -. overall) ** 2.0)) 0.0 means
      /. float_of_int (List.length means)
    in
    let group_var (m, ts) =
      let contributions =
        List.map (fun t -> (t.(c) -. m.(c)) ** 2.0) ts
      in
      List.fold_left ( +. ) 0.0 contributions /. float_of_int (List.length ts)
    in
    let noise =
      List.fold_left (fun acc g -> acc +. group_var g) 0.0 group_stats
      /. float_of_int (List.length group_stats)
    in
    if noise = 0.0 then 0.0 else var_means /. noise
  in
  let total = ref 0.0 in
  for c = 0 to len - 1 do
    total := !total +. cycle_snr c
  done;
  if len = 0 then 0.0 else !total /. float_of_int len
