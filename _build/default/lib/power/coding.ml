let popcount = Sim.Signal.popcount

let transitions ~width values =
  let mask = (1 lsl width) - 1 in
  let total = ref 0 and prev = ref 0 in
  Array.iter
    (fun v ->
      let v = v land mask in
      total := !total + popcount (!prev lxor v);
      prev := v)
    values;
  !total

let bus_invert ~width values =
  let mask = (1 lsl width) - 1 in
  let total = ref 0 and inversions = ref 0 in
  let prev_wires = ref 0 and prev_invert = ref 0 in
  Array.iter
    (fun v ->
      let v = v land mask in
      let plain = popcount (!prev_wires lxor v) in
      let inverted = popcount (!prev_wires lxor (lnot v land mask)) in
      let wires, invert =
        if inverted < plain then (lnot v land mask, 1) else (v, 0)
      in
      if invert = 1 then incr inversions;
      total :=
        !total
        + popcount (!prev_wires lxor wires)
        + abs (invert - !prev_invert);
      prev_wires := wires;
      prev_invert := invert)
    values;
  (!total, !inversions)

let gray_encode v = v lxor (v lsr 1)

let gray_decode g =
  let rec loop v shift =
    let s = v lsr shift in
    if s = 0 then v else loop (v lxor s) (shift * 2)
  in
  loop g 1

let gray_transitions ~width values =
  transitions ~width (Array.map gray_encode values)

type report = {
  plain : int;
  bus_inverted : int;
  gray : int;
  bus_invert_savings_pct : float;
  gray_savings_pct : float;
}

let analyze ~width values =
  if Array.length values = 0 then invalid_arg "Power.Coding.analyze: empty";
  let plain = transitions ~width values in
  let bus_inverted, _ = bus_invert ~width values in
  let gray = gray_transitions ~width values in
  let savings coded =
    if plain = 0 then 0.0
    else float_of_int (plain - coded) /. float_of_int plain *. 100.0
  in
  {
    plain;
    bus_inverted;
    gray;
    bus_invert_savings_pct = savings bus_inverted;
    gray_savings_pct = savings gray;
  }
