let pj_per_transition ~capacitance_ff ~vdd =
  0.5 *. capacitance_ff *. 1e-3 *. vdd *. vdd

let uw_of_pj_per_cycle ~pj ~cycles ~clock_hz =
  if cycles = 0 then 0.0
  else pj *. 1e-12 /. (float_of_int cycles /. clock_hz) *. 1e6

let pct_error ~reference v =
  if reference = 0.0 then invalid_arg "Power.Units.pct_error: zero reference";
  (v -. reference) /. reference *. 100.0

let pp_pj ppf pj =
  if Float.abs pj >= 1e6 then Format.fprintf ppf "%.3f uJ" (pj /. 1e6)
  else if Float.abs pj >= 1e3 then Format.fprintf ppf "%.3f nJ" (pj /. 1e3)
  else Format.fprintf ppf "%.3f pJ" pj
