type t = {
  mutable current : float;
  mutable total : float;
  mutable last_cycle : float;
  mutable marker : float;
  mutable cycles : int;
  profile : Profile.t option;
}

let create ?(record_profile = false) () =
  {
    current = 0.0;
    total = 0.0;
    last_cycle = 0.0;
    marker = 0.0;
    cycles = 0;
    profile = (if record_profile then Some (Profile.create ()) else None);
  }

let add t e = t.current <- t.current +. e

let end_cycle t =
  t.total <- t.total +. t.current;
  t.last_cycle <- t.current;
  (match t.profile with
  | Some p -> Profile.push p t.current
  | None -> ());
  t.current <- 0.0;
  t.cycles <- t.cycles + 1

let total_pj t = t.total
let cycles t = t.cycles
let last_cycle_pj t = t.last_cycle

let since_last_call_pj t =
  let delta = t.total -. t.marker in
  t.marker <- t.total;
  delta

let profile t = t.profile
