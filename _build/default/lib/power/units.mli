(** Energy bookkeeping conventions.

    All energies in this repository are [float] picojoules; all times are
    integer clock cycles.  This module provides the conversions and the
    formatting helpers shared by reports. *)

val pj_per_transition : capacitance_ff:float -> vdd:float -> float
(** Dynamic energy of one full output transition attributed per edge:
    [0.5 * C * Vdd^2], femtofarads in, picojoules out. *)

val uw_of_pj_per_cycle : pj:float -> cycles:int -> clock_hz:float -> float
(** Average power in microwatts of [pj] dissipated over [cycles] at
    [clock_hz]. *)

val pct_error : reference:float -> float -> float
(** [pct_error ~reference v] is [(v - reference) / reference * 100].
    @raise Invalid_argument if [reference = 0]. *)

val pp_pj : Format.formatter -> float -> unit
(** Adaptive pJ/nJ/uJ rendering. *)
