(** Low-power bus coding analysis.

    The paper's related work surveys bus optimization "based on varying
    the bus width and bus coding scheme" (Benini et al.).  This module
    evaluates the two classic schemes offline, over value sequences
    sampled from the simulated buses, so their energy benefit can be
    judged per workload before committing hardware:

    - {e bus-invert}: transmit the complement (plus one invert line)
      whenever that toggles fewer wires;
    - {e Gray coding}: for in-order address streams, consecutive values
      differ in one bit. *)

val transitions : width:int -> int array -> int
(** Total bit transitions of a value sequence on a [width]-bit bus. *)

val bus_invert : width:int -> int array -> int * int
(** [(transitions, inversions)] under bus-invert coding: per word the
    encoder picks plain or complemented transmission, whichever toggles
    fewer of the [width] data wires; the invert line's own transitions
    are included in the count. *)

val gray_encode : int -> int
val gray_decode : int -> int

val gray_transitions : width:int -> int array -> int
(** Transitions if the values were Gray encoded before transmission. *)

type report = {
  plain : int;
  bus_inverted : int;
  gray : int;
  bus_invert_savings_pct : float;
  gray_savings_pct : float;
}

val analyze : width:int -> int array -> report
(** @raise Invalid_argument on an empty sequence. *)
