lib/power/dpa.mli:
