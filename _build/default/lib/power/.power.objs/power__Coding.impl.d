lib/power/coding.ml: Array Sim
