lib/power/units.mli: Format
