lib/power/profile.mli:
