lib/power/profile.ml: Array List Printf String
