lib/power/characterization.mli: Ec Format
