lib/power/budget.ml: Format
