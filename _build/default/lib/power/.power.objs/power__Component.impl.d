lib/power/component.ml:
