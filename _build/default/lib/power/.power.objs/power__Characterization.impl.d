lib/power/characterization.ml: Array Ec Format List Printf Units
