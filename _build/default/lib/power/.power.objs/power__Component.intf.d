lib/power/component.mli:
