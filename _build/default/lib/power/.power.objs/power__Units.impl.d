lib/power/units.ml: Float Format
