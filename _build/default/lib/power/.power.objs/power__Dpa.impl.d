lib/power/dpa.ml: Array Float Hashtbl List Sim
