lib/power/meter.mli: Profile
