lib/power/meter.ml: Profile
