lib/power/coding.mli:
