lib/power/budget.mli: Format
