(** Power-analysis toolkit (SPA/DPA).

    The paper motivates cycle-accurate energy estimation partly by power
    analysis attacks: "Estimation of power consumption over time is
    important to reduce the probability of a successful power analysis
    attack".  This module implements the classic attacks over simulated
    per-cycle energy profiles, so interface alternatives can be judged by
    attack success as well as by energy. *)

type trace = float array
(** One power trace: energy per cycle for one operation. *)

val difference_of_means :
  traces:trace list -> select:(int -> bool) -> trace
(** [difference_of_means ~traces ~select] partitions trace [i] by
    [select i] and returns (mean of selected) - (mean of others), per
    cycle.  Ragged traces are truncated to the shortest.

    @raise Invalid_argument if either partition is empty. *)

val peak_abs : trace -> int * float
(** Index and value of the sample with the largest magnitude. *)

val dpa_attack :
  traces:trace list ->
  inputs:int list ->
  model:(key:int -> input:int -> bool) ->
  guesses:int list ->
  (int * float) list
(** Difference-of-means DPA: for every key guess, partition traces by the
    predicted selection bit [model ~key ~input] and score the guess by the
    peak differential.  Returns guesses with scores sorted best first. *)

val pearson : float array -> float array -> float
(** Correlation coefficient; 0 when either vector is constant. *)

val cpa_attack :
  traces:trace list ->
  inputs:int list ->
  model:(key:int -> input:int -> float) ->
  guesses:int list ->
  (int * float) list
(** Correlation power analysis: scores each guess by the largest absolute
    per-cycle Pearson correlation between the hypothetical leakage
    [model ~key ~input] and the measured samples. *)

val hamming_weight : int -> int
val hamming_distance : int -> int -> int

val snr : traces:trace list -> groups:int list -> float
(** Signal-to-noise ratio of the traces grouped by the given labels:
    variance of group means over mean of group variances, averaged across
    cycles.  A crude leakage metric for countermeasure comparisons. *)
