type limit = { name : string; max_current_ma : float; supply_v : float }

let gsm_contact = { name = "GSM 11.11 (contact)"; max_current_ma = 10.0; supply_v = 5.0 }

let iso7816_class_b =
  { name = "ISO 7816-3 class B"; max_current_ma = 50.0; supply_v = 3.0 }

let contactless_rf =
  { name = "contactless RF field"; max_current_ma = 5.0; supply_v = 3.0 }

type verdict = {
  limit : limit;
  average_current_ma : float;
  average_power_mw : float;
  headroom_pct : float;
  within : bool;
}

let average_current_ma ~energy_pj ~cycles ~clock_hz ~supply_v =
  if cycles = 0 || supply_v = 0.0 then 0.0
  else begin
    let seconds = float_of_int cycles /. clock_hz in
    let watts = energy_pj *. 1e-12 /. seconds in
    watts /. supply_v *. 1e3
  end

let check ?(clock_hz = 10e6) limit ~energy_pj ~cycles =
  let average_current_ma =
    average_current_ma ~energy_pj ~cycles ~clock_hz ~supply_v:limit.supply_v
  in
  let average_power_mw = average_current_ma *. limit.supply_v in
  {
    limit;
    average_current_ma;
    average_power_mw;
    headroom_pct =
      (if limit.max_current_ma = 0.0 then 0.0
       else
         (limit.max_current_ma -. average_current_ma)
         /. limit.max_current_ma *. 100.0);
    within = average_current_ma <= limit.max_current_ma;
  }

let pp_verdict ppf v =
  Format.fprintf ppf "%s: %.3f mA avg (%.2f mW) vs %.1f mA limit -> %s"
    v.limit.name v.average_current_ma v.average_power_mw
    v.limit.max_current_ma
    (if v.within then
       Format.asprintf "OK (%.1f%% headroom)" v.headroom_pct
     else "OVER BUDGET")
