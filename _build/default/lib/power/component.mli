(** State-based energy models for smart card peripherals.

    The paper's conclusion announces extending the bus model "to allow an
    early energy estimation for several different typical smart card
    components, like random number generators, UARTs or timers".  This
    module implements that extension: a component dissipates a baseline
    energy per cycle depending on whether it is idle or active, plus a
    fixed energy per bus access. *)

type params = {
  idle_pj_per_cycle : float;
  active_pj_per_cycle : float;
  access_pj : float;  (** per bus read or write hitting the component *)
}

val params :
  ?idle_pj_per_cycle:float ->
  ?active_pj_per_cycle:float ->
  ?access_pj:float ->
  unit ->
  params
(** All default to 0. @raise Invalid_argument on negative values. *)

type t

val create : name:string -> params -> t
val name : t -> string

val tick : t -> active:bool -> unit
(** Accounts one clock cycle in the given state. *)

val access : t -> unit
(** Accounts one bus access. *)

val energy_pj : t -> float
val active_cycles : t -> int
val idle_cycles : t -> int
val accesses : t -> int
val reset : t -> unit

(** Typical parameter presets (synthetic, smart-card scale). *)
module Presets : sig
  val rom : params
  val eeprom : params
  val flash : params
  val sram : params
  val uart : params
  val timer : params
  val trng : params
  val crypto : params
end
