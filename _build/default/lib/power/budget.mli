(** Power-budget checks.

    The paper's first motivation: "the GSM standard limits the [current]
    to 10 mA at 5 V supply.  More critical is power consumption for
    contact-less smart cards that are supplied by RF field."  This module
    turns a simulated workload (energy + cycles + clock) into average
    current/power and judges it against the standard budgets. *)

type limit = {
  name : string;
  max_current_ma : float;
  supply_v : float;
}

val gsm_contact : limit
(** 10 mA at 5 V (GSM 11.11 class A). *)

val iso7816_class_b : limit
(** 50 mA at 3 V (ISO 7816-3 class B ICC). *)

val contactless_rf : limit
(** 5 mA at 3 V — a tight budget representative of ISO 14443 RF-field
    harvesting. *)

type verdict = {
  limit : limit;
  average_current_ma : float;
  average_power_mw : float;
  headroom_pct : float;  (** positive = under budget *)
  within : bool;
}

val average_current_ma :
  energy_pj:float -> cycles:int -> clock_hz:float -> supply_v:float -> float
(** Average supply current of [energy_pj] dissipated over [cycles] at
    [clock_hz] and [supply_v].  Zero for an empty interval. *)

val check :
  ?clock_hz:float -> limit -> energy_pj:float -> cycles:int -> verdict
(** Judges a workload against a limit; the clock defaults to 10 MHz (a
    contact smart card range). *)

val pp_verdict : Format.formatter -> verdict -> unit
