lib/tlm2/bus.ml: Array Ec Energy Hashtbl Queue Sim
