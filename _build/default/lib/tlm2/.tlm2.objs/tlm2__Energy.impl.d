lib/tlm2/energy.ml: Array Ec List Power Sim
