lib/tlm2/energy.mli: Ec Power
