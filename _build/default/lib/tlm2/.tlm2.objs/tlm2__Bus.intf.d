lib/tlm2/bus.mli: Ec Energy Sim
