(** Electrical parameters of the Diesel-substitute power estimator.

    The gate-level tool the paper uses "distinguishes between all
    combinations of signal transitions with regard to their signal slopes"
    and "considers capacitance and resistance of every wire and between
    every wire and ground".  These parameters control our model of those
    effects: slope-dependent edge energies, lateral coupling between
    adjacent bus wires, glitching inside the address decoder, activity of
    internal (non-interface) nets, and leakage. *)

type t = {
  vdd : float;  (** supply voltage, volts *)
  slope_rise : float;  (** energy factor of a rising edge *)
  slope_fall : float;  (** energy factor of a falling edge *)
  coupling_ratio : float;
      (** lateral capacitance between adjacent bus wires as a fraction of
          the wire's self capacitance *)
  opposite_factor : float;
      (** multiplier on the coupling energy when adjacent wires switch in
          opposite directions (Miller effect) *)
  same_relief : float;
      (** multiplier on the coupling energy when adjacent wires switch in
          the same direction (< 1) *)
  decoder_pj_per_addr_toggle : float;
      (** internal decoder net energy per address wire transition *)
  glitch_pj_per_hamming : float;
      (** transient glitch energy per bit of address Hamming distance *)
  mux_pj_per_rdata_toggle : float;
      (** read data mux internal energy per read-data wire transition *)
  fsm_pj_per_ctrl_toggle : float;
      (** bus control FSM energy per control wire transition *)
  sel_pj_per_toggle : float;  (** slave select line energy per transition *)
  leakage_pj_per_cycle : float;
}

val default : t
(** Calibrated so that interface-invisible energy (internal nets, glitches)
    is roughly 8% of the total on mixed traffic, matching the layer-1
    underestimation band the paper reports. *)

val ideal : t
(** No coupling, symmetric slopes, no internal nets, no leakage: with this
    parameter set the reference degenerates to exactly the layer-1 model's
    view; used by tests to show the abstraction error vanishes. *)
