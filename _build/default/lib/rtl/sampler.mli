(** Per-cycle bus value recorder.

    Samples the committed values of the address, write-data and read-data
    buses on every rising edge (i.e. the values the wires settled to in
    the previous cycle).  Feed the sequences to {!Power.Coding} to judge
    bus coding schemes on real traffic. *)

type t

val create : kernel:Sim.Kernel.t -> Wires.t -> t

val addr_values : t -> int array
(** Word-address bus values, one per sampled cycle. *)

val wdata_values : t -> int array
val rdata_values : t -> int array
val cycles : t -> int
