(** Value-change-dump (VCD) waveform recording.

    Samples the RTL wire set every cycle and writes an IEEE 1364 VCD file
    viewable in GTKWave & co. — the debugging companion every bus-level
    investigation eventually needs.  One timestep per clock cycle. *)

type t

val create : kernel:Sim.Kernel.t -> Wires.t -> t
(** Registers a falling-edge sampler (after the bus process, so it sees
    each cycle's settled values). *)

val cycles_recorded : t -> int

val write : t -> string -> unit
(** [write t path] dumps everything recorded so far. *)

val to_string : t -> string
(** The VCD text (for tests and small traces). *)
