lib/rtl/diesel.ml: Array Ec List Params Power Sim Wires
