lib/rtl/wires.mli: Ec Sim
