lib/rtl/wires.ml: Array Ec List Sim
