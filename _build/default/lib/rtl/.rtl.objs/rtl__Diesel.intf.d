lib/rtl/diesel.mli: Params Power Wires
