lib/rtl/bus.ml: Array Diesel Ec Hashtbl Queue Sim Wires
