lib/rtl/vcd.ml: Buffer Char Fun Hashtbl List Printf Sim String Wires
