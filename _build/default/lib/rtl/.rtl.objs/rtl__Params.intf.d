lib/rtl/params.mli:
