lib/rtl/sampler.mli: Sim Wires
