lib/rtl/sampler.ml: Array Sim Wires
