lib/rtl/vcd.mli: Sim Wires
