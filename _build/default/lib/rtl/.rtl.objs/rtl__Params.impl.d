lib/rtl/params.ml: Ec
