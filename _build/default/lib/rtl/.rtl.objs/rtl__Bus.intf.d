lib/rtl/bus.mli: Diesel Ec Params Sim Wires
