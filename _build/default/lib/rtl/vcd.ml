(* Per-signal value history, compressed as change lists. *)
type track = {
  signal : Sim.Signal.t;
  code : string;  (* VCD identifier *)
  mutable last : int option;  (* last recorded value *)
  mutable changes : (int * int) list;  (* (cycle, value), newest first *)
}

type t = {
  tracks : track list;
  mutable cycles : int;
}

(* Printable VCD identifier codes starting at the exclamation mark. *)
let code_of_index i =
  let base = Char.code '!' in
  let range = 94 in
  if i < range then String.make 1 (Char.chr (base + i))
  else
    String.make 1 (Char.chr (base + (i / range)))
    ^ String.make 1 (Char.chr (base + (i mod range)))

let create ~kernel wires =
  let groups =
    List.map snd (Wires.interface_groups wires) @ [ Wires.sel wires ]
  in
  let tracks =
    List.mapi
      (fun i signal -> { signal; code = code_of_index i; last = None; changes = [] })
      groups
  in
  let t = { tracks; cycles = 0 } in
  (* The bus process runs first (registration order) and commits the
     wires; this sampler then sees the settled cycle values. *)
  Sim.Kernel.on_falling kernel ~name:"vcd-sampler" (fun kernel ->
      let now = Sim.Kernel.now kernel in
      List.iter
        (fun track ->
          let v = Sim.Signal.current track.signal in
          if track.last <> Some v then begin
            track.last <- Some v;
            track.changes <- (now, v) :: track.changes
          end)
        t.tracks;
      t.cycles <- t.cycles + 1);
  t

let cycles_recorded t = t.cycles

let binary_string width v =
  String.init width (fun i ->
      if v land (1 lsl (width - 1 - i)) <> 0 then '1' else '0')

let render_value track v =
  let width = Sim.Signal.width track.signal in
  if width = 1 then Printf.sprintf "%d%s" (v land 1) track.code
  else Printf.sprintf "b%s %s" (binary_string width v) track.code

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "$date reproduced smart-card bus trace $end";
  line "$version smartcard-energy VCD dumper $end";
  line "$timescale 1 ns $end";
  line "$scope module ec_bus $end";
  List.iter
    (fun track ->
      line "$var wire %d %s %s $end"
        (Sim.Signal.width track.signal)
        track.code
        (* VCD identifiers must not contain brackets; flatten the name. *)
        (String.map
           (fun c -> match c with '[' | ']' -> '_' | c -> c)
           (Sim.Signal.name track.signal)))
    t.tracks;
  line "$upscope $end";
  line "$enddefinitions $end";
  (* Merge all change lists by cycle. *)
  let events = Hashtbl.create 64 in
  List.iter
    (fun track ->
      List.iter
        (fun (cycle, v) ->
          let cur = try Hashtbl.find events cycle with Not_found -> [] in
          Hashtbl.replace events cycle (render_value track v :: cur))
        track.changes)
    t.tracks;
  let cycles = Hashtbl.fold (fun c _ acc -> c :: acc) events [] in
  List.iter
    (fun cycle ->
      line "#%d" cycle;
      List.iter (fun s -> line "%s" s) (Hashtbl.find events cycle))
    (List.sort compare cycles);
  line "#%d" t.cycles;
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
