type t = {
  vdd : float;
  slope_rise : float;
  slope_fall : float;
  coupling_ratio : float;
  opposite_factor : float;
  same_relief : float;
  decoder_pj_per_addr_toggle : float;
  glitch_pj_per_hamming : float;
  mux_pj_per_rdata_toggle : float;
  fsm_pj_per_ctrl_toggle : float;
  sel_pj_per_toggle : float;
  leakage_pj_per_cycle : float;
}

let default =
  {
    vdd = Ec.Signals.vdd;
    slope_rise = 1.04;
    slope_fall = 0.94;
    coupling_ratio = 0.22;
    opposite_factor = 2.0;
    same_relief = 0.35;
    decoder_pj_per_addr_toggle = 0.059;
    glitch_pj_per_hamming = 0.033;
    mux_pj_per_rdata_toggle = 0.072;
    fsm_pj_per_ctrl_toggle = 0.039;
    sel_pj_per_toggle = 0.130;
    leakage_pj_per_cycle = 0.039;
  }

let ideal =
  {
    vdd = Ec.Signals.vdd;
    slope_rise = 1.0;
    slope_fall = 1.0;
    coupling_ratio = 0.0;
    opposite_factor = 0.0;
    same_relief = 0.0;
    decoder_pj_per_addr_toggle = 0.0;
    glitch_pj_per_hamming = 0.0;
    mux_pj_per_rdata_toggle = 0.0;
    fsm_pj_per_ctrl_toggle = 0.0;
    sel_pj_per_toggle = 0.0;
    leakage_pj_per_cycle = 0.0;
  }
