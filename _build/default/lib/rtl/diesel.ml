type t = {
  params : Params.t;
  wires : Wires.t;
  meter : Power.Meter.t;
  per_signal_pj : float array;
  per_signal_transitions : int array;
  mutable interface_pj : float;
  mutable internal_pj : float;
}

let create ?(params = Params.default) ?(record_profile = false) wires =
  {
    params;
    wires;
    meter = Power.Meter.create ~record_profile ();
    per_signal_pj = Array.make Ec.Signals.count 0.0;
    per_signal_transitions = Array.make Ec.Signals.count 0;
    interface_pj = 0.0;
    internal_pj = 0.0;
  }

(* Self energy of one edge on one wire. *)
let edge_pj t id ~rising =
  let base =
    Power.Units.pj_per_transition
      ~capacitance_ff:(Ec.Signals.default_capacitance_ff id)
      ~vdd:t.params.Params.vdd
  in
  base *. (if rising then t.params.Params.slope_rise else t.params.Params.slope_fall)

(* Coupling energy between one adjacent wire pair of a bus.  [a] and [b]
   are -1 (falling), 0 (stable) or 1 (rising). *)
let coupling_pj t id a b =
  if a = 0 && b = 0 then 0.0
  else begin
    let self =
      Power.Units.pj_per_transition
        ~capacitance_ff:(Ec.Signals.default_capacitance_ff id)
        ~vdd:t.params.Params.vdd
    in
    let lateral = self *. t.params.Params.coupling_ratio in
    if a <> 0 && b <> 0 then
      if a = b then lateral *. t.params.Params.same_relief
      else lateral *. t.params.Params.opposite_factor
    else lateral
  end

(* Per-bit movement of a signal before commit: -1, 0 or 1 per bit. *)
let movements signal =
  let cur = Sim.Signal.current signal and nxt = Sim.Signal.next signal in
  let w = Sim.Signal.width signal in
  Array.init w (fun i ->
      let c = (cur lsr i) land 1 and n = (nxt lsr i) land 1 in
      n - c)

let add_interface t index pj =
  t.per_signal_pj.(index) <- t.per_signal_pj.(index) +. pj;
  t.interface_pj <- t.interface_pj +. pj;
  Power.Meter.add t.meter pj

let observe_group t (base_id, signal) =
  let base = Ec.Signals.index base_id in
  let moves = movements signal in
  let w = Array.length moves in
  let transitions = ref 0 in
  for i = 0 to w - 1 do
    if moves.(i) <> 0 then begin
      incr transitions;
      t.per_signal_transitions.(base + i) <- t.per_signal_transitions.(base + i) + 1;
      add_interface t (base + i)
        (edge_pj t (Ec.Signals.of_index (base + i)) ~rising:(moves.(i) > 0))
    end
  done;
  (* Lateral coupling between adjacent wires of multi-bit buses, half
     attributed to each wire of the pair. *)
  if w > 1 then
    for i = 0 to w - 2 do
      let pj = coupling_pj t (Ec.Signals.of_index (base + i)) moves.(i) moves.(i + 1) in
      if pj > 0.0 then begin
        add_interface t (base + i) (pj /. 2.0);
        add_interface t (base + i + 1) (pj /. 2.0)
      end
    done;
  !transitions

let add_internal t pj =
  t.internal_pj <- t.internal_pj +. pj;
  Power.Meter.add t.meter pj

let observe_and_commit t =
  let p = t.params in
  let groups = Wires.interface_groups t.wires in
  let addr_toggles = ref 0 and rdata_toggles = ref 0 and ctrl_toggles = ref 0 in
  List.iter
    (fun ((id, _) as group) ->
      let n = observe_group t group in
      match id with
      | Ec.Signals.Addr _ -> addr_toggles := !addr_toggles + n
      | Ec.Signals.Rdata _ -> rdata_toggles := !rdata_toggles + n
      | Ec.Signals.Ctrl _ -> ctrl_toggles := !ctrl_toggles + n
      | Ec.Signals.Be _ | Ec.Signals.Wdata _ -> ())
    groups;
  (* Internal nets: decoder activity plus transient glitching follow the
     address bus, the read mux follows the read data bus, the control FSM
     follows the handshake wires, the select lines are explicit. *)
  add_internal t
    (float_of_int !addr_toggles
    *. (p.Params.decoder_pj_per_addr_toggle +. p.Params.glitch_pj_per_hamming));
  add_internal t (float_of_int !rdata_toggles *. p.Params.mux_pj_per_rdata_toggle);
  add_internal t (float_of_int !ctrl_toggles *. p.Params.fsm_pj_per_ctrl_toggle);
  let sel = Wires.sel t.wires in
  let sel_toggles =
    Sim.Signal.popcount (Sim.Signal.current sel lxor Sim.Signal.next sel)
  in
  add_internal t (float_of_int sel_toggles *. p.Params.sel_pj_per_toggle);
  add_internal t p.Params.leakage_pj_per_cycle;
  Wires.commit_all t.wires;
  Power.Meter.end_cycle t.meter

let total_pj t = t.interface_pj +. t.internal_pj
let interface_pj t = t.interface_pj
let internal_pj t = t.internal_pj
let meter t = t.meter
let per_signal_energy_pj t = Array.copy t.per_signal_pj
let per_signal_transitions t = Array.copy t.per_signal_transitions
let transitions_total t = Array.fold_left ( + ) 0 t.per_signal_transitions

let characterize ~name t =
  Power.Characterization.derive ~name ~energy_pj:t.per_signal_pj
    ~transitions:t.per_signal_transitions
