type channel = { mutable data : int array; mutable len : int }

let channel () = { data = Array.make 256 0; len = 0 }

let push c v =
  if c.len = Array.length c.data then begin
    let bigger = Array.make (2 * c.len) 0 in
    Array.blit c.data 0 bigger 0 c.len;
    c.data <- bigger
  end;
  c.data.(c.len) <- v;
  c.len <- c.len + 1

let values c = Array.sub c.data 0 c.len

type t = { addr : channel; wdata : channel; rdata : channel }

let create ~kernel wires =
  let t = { addr = channel (); wdata = channel (); rdata = channel () } in
  Sim.Kernel.on_rising kernel ~name:"bus-sampler" (fun _ ->
      push t.addr (Sim.Signal.current (Wires.addr wires));
      push t.wdata (Sim.Signal.current (Wires.wdata wires));
      push t.rdata (Sim.Signal.current (Wires.rdata wires)));
  t

let addr_values t = values t.addr
let wdata_values t = values t.wdata
let rdata_values t = values t.rdata
let cycles t = t.addr.len
