type t = {
  name : string;
  width : int;
  mask : int;
  mutable cur : int;
  mutable nxt : int;
  mutable rises : int;
  mutable falls : int;
  per_bit : int array;
}

let popcount v =
  let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + (v land 1)) in
  loop v 0

let create ~name ~width =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Sim.Signal.create %s: width %d" name width);
  let mask = (1 lsl width) - 1 in
  { name; width; mask; cur = 0; nxt = 0; rises = 0; falls = 0;
    per_bit = Array.make width 0 }

let name s = s.name
let width s = s.width
let current s = s.cur
let next s = s.nxt
let set s v = s.nxt <- v land s.mask

let commit s =
  let changed = s.cur lxor s.nxt in
  if changed <> 0 then begin
    let rose = changed land s.nxt and fell = changed land s.cur in
    s.rises <- s.rises + popcount rose;
    s.falls <- s.falls + popcount fell;
    let rec mark bits i =
      if bits <> 0 then begin
        if bits land 1 = 1 then s.per_bit.(i) <- s.per_bit.(i) + 1;
        mark (bits lsr 1) (i + 1)
      end
    in
    mark changed 0
  end;
  s.cur <- s.nxt;
  popcount changed

let rises s = s.rises
let falls s = s.falls
let transitions s = s.rises + s.falls
let bit_transitions s = Array.copy s.per_bit

let reset_counters s =
  s.rises <- 0;
  s.falls <- 0;
  Array.fill s.per_bit 0 s.width 0
