lib/sim/kernel.mli:
