lib/sim/kernel.ml: Array List Printf
