lib/sim/signal.mli:
