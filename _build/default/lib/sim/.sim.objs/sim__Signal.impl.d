lib/sim/signal.ml: Array Printf
