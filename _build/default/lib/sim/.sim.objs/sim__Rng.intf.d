lib/sim/rng.mli:
