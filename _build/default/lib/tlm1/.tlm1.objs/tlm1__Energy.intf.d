lib/tlm1/energy.mli: Ec Power
