lib/tlm1/bus.mli: Ec Energy Sim
