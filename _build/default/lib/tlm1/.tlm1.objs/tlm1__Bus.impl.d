lib/tlm1/bus.ml: Array Ec Energy Hashtbl Queue Sim
