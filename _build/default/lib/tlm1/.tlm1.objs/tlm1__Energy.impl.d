lib/tlm1/energy.ml: Array Ec List Power
