(** Card-side operating system: applet registry and APDU dispatch.

    The functional ("untimed") model of the card application layer, in
    the sense of the paper's Figure 7(a): {!handle} is a pure call; the
    bus-level refinement ({!Session}) pushes the same commands through
    the simulated UART and EC bus. *)

type applet = {
  aid : int list;  (** application identifier, 5..16 bytes *)
  process : Apdu.command -> Apdu.response;
      (** invoked once the applet is selected *)
}

val applet : aid:int list -> (Apdu.command -> Apdu.response) -> applet
(** @raise Invalid_argument on a malformed AID. *)

type t

val create : applet list -> t
(** @raise Invalid_argument on duplicate AIDs. *)

val handle : t -> Apdu.command -> Apdu.response
(** SELECT (INS A4, P1 04) switches the current applet by AID, answering
    0x9000 or 0x6A82; any other command goes to the selected applet, or
    answers 0x6985 when none is selected.  Class byte 0xFF is rejected
    with 0x6E00. *)

val selected : t -> int list option
(** AID of the currently selected applet. *)

val commands_handled : t -> int

(** Ready-made applets for tests and demos. *)

val echo_applet : applet
(** AID A0 00 00 00 01: answers any command by echoing its data. *)

val wallet_applet : ?initial:int -> unit -> applet
(** AID A0 00 00 00 02, an electronic purse:
    - INS 0x30 (credit): one data byte, adds to the balance;
    - INS 0x31 (debit): one data byte, subtracts, 0x6985 on insufficient
      funds;
    - INS 0x32 (balance): returns two big-endian balance bytes.
    The balance saturates at 0xFFFF (0x6A80 on overflow). *)
