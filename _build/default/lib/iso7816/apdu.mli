(** ISO 7816-4 application protocol data units.

    The command set smart cards actually speak: a 4-byte header (CLA INS
    P1 P2) followed by optional command data (Lc) and an optional
    expected-length byte (Le); responses carry data plus the two status
    bytes SW1 SW2. *)

type command = {
  cla : int;
  ins : int;
  p1 : int;
  p2 : int;
  data : int list;  (** command data (Lc = length) *)
  le : int option;  (** expected response length, [Some 0] = up to 256 *)
}

type response = { data : int list; sw : int }

val command :
  ?cla:int -> ins:int -> ?p1:int -> ?p2:int -> ?data:int list -> ?le:int ->
  unit -> command
(** All header fields default to 0.
    @raise Invalid_argument on a byte out of range or data longer than
    255. *)

val response : ?data:int list -> int -> response

(** Standard status words. *)

val sw_ok : int  (** 0x9000 *)

val sw_wrong_length : int  (** 0x6700 *)

val sw_security_status : int  (** 0x6982 *)

val sw_conditions_not_satisfied : int  (** 0x6985 *)

val sw_wrong_data : int  (** 0x6A80 *)

val sw_file_not_found : int  (** 0x6A82 *)

val sw_ins_not_supported : int  (** 0x6D00 *)

val sw_cla_not_supported : int  (** 0x6E00 *)

val ins_select : int  (** 0xA4 *)

val encode_command : command -> int list
(** T=0 wire form: header, Lc+data when present, Le when present. *)

val decode_command : int list -> (command, string) result
(** Inverse of {!encode_command} (case 1/2/3/4 APDUs). *)

val encode_response : response -> int list
val decode_response : int list -> (response, string) result

val pp_command : Format.formatter -> command -> unit
val pp_response : Format.formatter -> response -> unit
