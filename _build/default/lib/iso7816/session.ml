type exchange = {
  command : Apdu.command;
  response : Apdu.response;
  cycles : int;
  energy_pj : float;
}

type stats = {
  exchanges : exchange list;
  total_cycles : int;
  firmware_txns : int;
}

(* Firmware-side blocking bus access (the same bridging the JCVM master
   adapter uses: the untimed model advances the clock inside each call). *)
type firmware = {
  kernel : Sim.Kernel.t;
  port : Ec.Port.t;
  uart_base : int;
  ids : Ec.Txn.Id_gen.gen;
  mutable txns : int;
}

let transact fw txn =
  fw.txns <- fw.txns + 1;
  let accepted = ref (fw.port.Ec.Port.try_submit txn) in
  ignore
    (Sim.Kernel.run_until fw.kernel ~max_cycles:100_000 (fun () ->
         if not !accepted then accepted := fw.port.Ec.Port.try_submit txn;
         !accepted && Ec.Port.completed fw.port txn.Ec.Txn.id));
  fw.port.Ec.Port.retire txn.Ec.Txn.id;
  txn.Ec.Txn.data.(0)

let bus_read8 fw addr =
  transact fw (Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh fw.ids) ~width:Ec.Txn.W8 addr)

let bus_read32 fw addr =
  transact fw (Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh fw.ids) addr)

let bus_write8 fw addr value =
  ignore
    (transact fw
       (Ec.Txn.single_write ~id:(Ec.Txn.Id_gen.fresh fw.ids) ~width:Ec.Txn.W8
          addr ~value))

let bus_write32 fw addr value =
  ignore
    (transact fw
       (Ec.Txn.single_write ~id:(Ec.Txn.Id_gen.fresh fw.ids) addr ~value))

(* UART register offsets (see Soc.Uart). *)
let data_off = 0x0
let status_off = 0x4
let baud_off = 0xC

let rx_byte fw =
  let budget = ref 200_000 in
  while bus_read32 fw (fw.uart_base + status_off) land 2 = 0 do
    decr budget;
    if !budget = 0 then failwith "Iso7816.Session: no byte from terminal"
  done;
  bus_read8 fw (fw.uart_base + data_off)

let tx_byte fw b =
  let budget = ref 200_000 in
  while bus_read32 fw (fw.uart_base + status_off) land 4 <> 0 do
    decr budget;
    if !budget = 0 then failwith "Iso7816.Session: transmit FIFO stuck"
  done;
  bus_write8 fw (fw.uart_base + data_off) b

(* Card side of one exchange: length-prefixed frame in, frame out. *)
let serve_one fw card =
  let len = rx_byte fw in
  let bytes = List.init len (fun _ -> rx_byte fw) in
  match Apdu.decode_command bytes with
  | Error msg -> failwith ("Iso7816.Session: bad frame: " ^ msg)
  | Ok command ->
    let response = Card.handle card command in
    let wire = Apdu.encode_response response in
    tx_byte fw (List.length wire);
    List.iter (tx_byte fw) wire;
    response

(* Terminal side: wait until the card's reply is fully on the line. *)
let collect_response kernel uart ~already =
  let current () = Soc.Uart.transmitted uart in
  ignore
    (Sim.Kernel.run_until kernel ~max_cycles:500_000 (fun () ->
         let s = current () in
         String.length s > already
         &&
         let frame_len = Char.code s.[already] in
         String.length s >= already + 1 + frame_len));
  let s = current () in
  let frame_len = Char.code s.[already] in
  let bytes =
    List.init frame_len (fun i -> Char.code s.[already + 1 + i])
  in
  match Apdu.decode_response bytes with
  | Ok r -> r
  | Error msg -> failwith ("Iso7816.Session: bad response frame: " ^ msg)

let run ~kernel ~port ~uart ?(uart_base = Soc.Platform.Map.uart_base)
    ?(energy_probe = fun () -> 0.0) ~card commands =
  let fw = { kernel; port; uart_base; ids = Ec.Txn.Id_gen.create (); txns = 0 } in
  (* Speed the serial line up for the session (1 cycle per bit). *)
  bus_write32 fw (uart_base + baud_off) 1;
  let start_cycles = Sim.Kernel.now kernel in
  let consumed = ref 0 in
  let exchanges =
    List.map
      (fun command ->
        let already = String.length (Soc.Uart.transmitted uart) in
        let t0 = Sim.Kernel.now kernel in
        ignore (energy_probe ());
        let wire = Apdu.encode_command command in
        Soc.Uart.inject_rx uart (List.length wire);
        List.iter (Soc.Uart.inject_rx uart) wire;
        let card_response = serve_one fw card in
        let seen = collect_response kernel uart ~already in
        assert (card_response.Apdu.sw = seen.Apdu.sw);
        let cycles = Sim.Kernel.now kernel - t0 in
        consumed := !consumed + cycles;
        { command; response = seen; cycles; energy_pj = energy_probe () })
      commands
  in
  {
    exchanges;
    total_cycles = Sim.Kernel.now kernel - start_cycles;
    firmware_txns = fw.txns;
  }
