lib/iso7816/apdu.ml: Format List Printf
