lib/iso7816/session.mli: Apdu Card Ec Sim Soc
