lib/iso7816/card.mli: Apdu
