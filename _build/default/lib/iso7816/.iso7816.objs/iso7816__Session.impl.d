lib/iso7816/session.ml: Apdu Array Card Char Ec List Sim Soc String
