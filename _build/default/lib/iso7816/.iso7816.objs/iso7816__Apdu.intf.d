lib/iso7816/apdu.mli: Format
