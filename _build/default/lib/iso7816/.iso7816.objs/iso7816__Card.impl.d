lib/iso7816/card.ml: Apdu List Option
