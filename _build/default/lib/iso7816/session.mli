(** Bus-level card session: the communication refinement of the card OS.

    The terminal injects command bytes into the platform UART; the card
    firmware — the same {!Card.t} functional model — performs all its I/O
    through bus transactions (status polls, byte reads, byte writes), so
    a whole APDU exchange appears on the EC bus exactly as smart-card
    firmware would produce it, and the energy models price it.

    Transport framing (simplified T=0): each direction sends one length
    byte followed by the {!Apdu} wire bytes. *)

type exchange = {
  command : Apdu.command;
  response : Apdu.response;
  cycles : int;  (** clock cycles this exchange took *)
  energy_pj : float;  (** from [energy_probe], 0 without one *)
}

type stats = {
  exchanges : exchange list;
  total_cycles : int;
  firmware_txns : int;  (** bus transactions issued by the firmware *)
}

val run :
  kernel:Sim.Kernel.t ->
  port:Ec.Port.t ->
  uart:Soc.Uart.t ->
  ?uart_base:int ->
  ?energy_probe:(unit -> float) ->
  card:Card.t ->
  Apdu.command list ->
  stats
(** Plays the command list against the card.  [uart_base] defaults to the
    platform map's UART; [energy_probe] is read before and after each
    exchange (pass the system's energy-since-last-call meter total).

    @raise Failure if the card side cannot decode a frame or the session
    exceeds its cycle budget. *)
