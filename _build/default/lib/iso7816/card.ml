type applet = { aid : int list; process : Apdu.command -> Apdu.response }

let applet ~aid process =
  let n = List.length aid in
  if n < 5 || n > 16 then invalid_arg "Iso7816.Card.applet: AID length";
  List.iter
    (fun b -> if b < 0 || b > 0xFF then invalid_arg "Iso7816.Card.applet: AID byte")
    aid;
  { aid; process }

type t = {
  applets : applet list;
  mutable current : applet option;
  mutable handled : int;
}

let create applets =
  let aids = List.map (fun a -> a.aid) applets in
  if List.length (List.sort_uniq compare aids) <> List.length aids then
    invalid_arg "Iso7816.Card.create: duplicate AIDs";
  { applets; current = None; handled = 0 }

let select t (c : Apdu.command) =
  match List.find_opt (fun a -> a.aid = c.Apdu.data) t.applets with
  | Some a ->
    t.current <- Some a;
    Apdu.response Apdu.sw_ok
  | None -> Apdu.response Apdu.sw_file_not_found

let handle t (c : Apdu.command) =
  t.handled <- t.handled + 1;
  if c.Apdu.cla = 0xFF then Apdu.response Apdu.sw_cla_not_supported
  else if c.Apdu.ins = Apdu.ins_select && c.Apdu.p1 = 0x04 then select t c
  else
    match t.current with
    | Some a -> a.process c
    | None -> Apdu.response Apdu.sw_conditions_not_satisfied

let selected t = Option.map (fun a -> a.aid) t.current
let commands_handled t = t.handled

let echo_applet =
  applet ~aid:[ 0xA0; 0x00; 0x00; 0x00; 0x01 ] (fun c ->
      Apdu.response ~data:c.Apdu.data Apdu.sw_ok)

let wallet_applet ?(initial = 0) () =
  let balance = ref initial in
  applet ~aid:[ 0xA0; 0x00; 0x00; 0x00; 0x02 ] (fun c ->
      match c.Apdu.ins, c.Apdu.data with
      | 0x30, [ amount ] ->
        if !balance + amount > 0xFFFF then Apdu.response Apdu.sw_wrong_data
        else begin
          balance := !balance + amount;
          Apdu.response Apdu.sw_ok
        end
      | 0x31, [ amount ] ->
        if !balance < amount then
          Apdu.response Apdu.sw_conditions_not_satisfied
        else begin
          balance := !balance - amount;
          Apdu.response Apdu.sw_ok
        end
      | 0x32, [] ->
        Apdu.response ~data:[ (!balance lsr 8) land 0xFF; !balance land 0xFF ]
          Apdu.sw_ok
      | (0x30 | 0x31 | 0x32), _ -> Apdu.response Apdu.sw_wrong_length
      | _ -> Apdu.response Apdu.sw_ins_not_supported)
