type command = {
  cla : int;
  ins : int;
  p1 : int;
  p2 : int;
  data : int list;
  le : int option;
}

type response = { data : int list; sw : int }

let check_byte name v =
  if v < 0 || v > 0xFF then
    invalid_arg (Printf.sprintf "Iso7816.Apdu: %s byte %d" name v)

let command ?(cla = 0) ~ins ?(p1 = 0) ?(p2 = 0) ?(data = []) ?le () =
  check_byte "cla" cla;
  check_byte "ins" ins;
  check_byte "p1" p1;
  check_byte "p2" p2;
  List.iter (check_byte "data") data;
  if List.length data > 255 then invalid_arg "Iso7816.Apdu: data too long";
  (match le with
  | Some le when le < 0 || le > 256 -> invalid_arg "Iso7816.Apdu: le"
  | Some _ | None -> ());
  { cla; ins; p1; p2; data; le }

let response ?(data = []) sw =
  List.iter (check_byte "data") data;
  { data; sw }

let sw_ok = 0x9000
let sw_wrong_length = 0x6700
let sw_security_status = 0x6982
let sw_conditions_not_satisfied = 0x6985
let sw_wrong_data = 0x6A80
let sw_file_not_found = 0x6A82
let sw_ins_not_supported = 0x6D00
let sw_cla_not_supported = 0x6E00
let ins_select = 0xA4

let le_byte = function 256 -> 0 | le -> le

let encode_command c =
  let header = [ c.cla; c.ins; c.p1; c.p2 ] in
  let body =
    match c.data with
    | [] -> []
    | data -> List.length data :: data
  in
  let trailer = match c.le with None -> [] | Some le -> [ le_byte le ] in
  header @ body @ trailer

let decode_command bytes =
  match bytes with
  | cla :: ins :: p1 :: p2 :: rest -> begin
    let make data le = Ok { cla; ins; p1; p2; data; le } in
    match rest with
    | [] -> make [] None  (* case 1 *)
    | [ le ] -> make [] (Some (if le = 0 then 256 else le))  (* case 2 *)
    | lc :: body ->
      let n = List.length body in
      if n = lc then make body None  (* case 3 *)
      else if n = lc + 1 then begin
        (* case 4 *)
        let data = List.filteri (fun i _ -> i < lc) body in
        match List.rev body with
        | le :: _ -> make data (Some (if le = 0 then 256 else le))
        | [] -> assert false
      end
      else Error (Printf.sprintf "Lc %d inconsistent with %d body bytes" lc n)
  end
  | _ -> Error "short APDU header"

let encode_response r = r.data @ [ (r.sw lsr 8) land 0xFF; r.sw land 0xFF ]

let decode_response bytes =
  let rec split acc = function
    | [ sw1; sw2 ] -> Ok { data = List.rev acc; sw = (sw1 lsl 8) lor sw2 }
    | b :: rest -> split (b :: acc) rest
    | [] -> Error "response shorter than the status word"
  in
  split [] bytes

let pp_bytes ppf bytes =
  List.iter (fun b -> Format.fprintf ppf "%02X" b) bytes

let pp_command ppf c =
  Format.fprintf ppf "CLA=%02X INS=%02X P1=%02X P2=%02X" c.cla c.ins c.p1 c.p2;
  if c.data <> [] then Format.fprintf ppf " Lc=%d [%a]" (List.length c.data) pp_bytes c.data;
  match c.le with
  | Some le -> Format.fprintf ppf " Le=%d" le
  | None -> ()

let pp_response ppf r =
  if r.data <> [] then Format.fprintf ppf "[%a] " pp_bytes r.data;
  Format.fprintf ppf "SW=%04X" r.sw
