module Map = Soc.Platform.Map

(* Polymorphic record field so the emitter accepts any format at each
   call site. *)
type emitter = { line : 'a. ('a, unit, string, unit) format4 -> 'a }

let buf_program build =
  let b = Buffer.create 1024 in
  let emitter =
    { line = (fun fmt -> Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt) }
  in
  build emitter;
  Buffer.contents b

(* A word table of deterministic but bit-diverse values. *)
let emit_table { line } label n =
  line "%s:" label;
  for i = 0 to n - 1 do
    line "  .word %d" ((((i * 0x9E3779B9) lxor 0x5A5AA5A5) + i) land 0xFFFFFFFF)
  done

let memcpy ~words =
  buf_program (fun { line } ->
      line "  la r1, table";
      line "  li r2, %d" Map.ram_base;
      line "  addi r3, r0, %d" words;
      line "copy_loop:";
      line "  lw r4, 0(r1)";
      line "  sw r4, 0(r2)";
      line "  addi r1, r1, 4";
      line "  addi r2, r2, 4";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, copy_loop";
      line "  halt";
      emit_table { line } "table" words)

let checksum ~words =
  buf_program (fun { line } ->
      line "  la r1, table";
      line "  li r2, %d" Map.ram_base;
      line "  addi r3, r0, %d" words;
      line "  add r4, r0, r0";
      line "sum_loop:";
      line "  lw r5, 0(r1)";
      line "  add r4, r4, r5";
      line "  addi r1, r1, 4";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, sum_loop";
      line "  sw r4, 0(r2)";
      line "  li r6, %d" Map.uart_base;
      line "  sb r4, 0(r6)";
      line "  halt";
      emit_table { line } "table" words)

let bubble_sort ~n =
  buf_program (fun { line } ->
      line "  li r1, %d" Map.ram_base;
      line "  addi r2, r0, %d" n;
      line "  add r3, r0, r0";
      line "init_loop:";
      line "  sub r4, r2, r3";
      line "  sll r5, r3, 2";
      line "  add r5, r5, r1";
      line "  sw r4, 0(r5)";
      line "  addi r3, r3, 1";
      line "  blt r3, r2, init_loop";
      line "  addi r6, r2, -1";
      line "outer:";
      line "  beq r6, r0, sorted";
      line "  add r3, r0, r0";
      line "inner:";
      line "  sll r5, r3, 2";
      line "  add r5, r5, r1";
      line "  lw r7, 0(r5)";
      line "  lw r8, 4(r5)";
      line "  bge r8, r7, no_swap";
      line "  sw r8, 0(r5)";
      line "  sw r7, 4(r5)";
      line "no_swap:";
      line "  addi r3, r3, 1";
      line "  blt r3, r6, inner";
      line "  addi r6, r6, -1";
      line "  j outer";
      line "sorted:";
      line "  halt")

let burst_copy ~blocks =
  buf_program (fun { line } ->
      line "  la r1, btable";
      line "  li r2, %d" Map.ram_base;
      line "  addi r3, r0, %d" blocks;
      line "burst_loop:";
      line "  lw4 r4, 0(r1)";
      line "  sw4 r4, 0(r2)";
      line "  addi r1, r1, 16";
      line "  addi r2, r2, 16";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, burst_loop";
      line "  halt";
      emit_table { line } "btable" (4 * blocks))

let crypto_key = 0x01020304

let crypto_run ~plaintexts =
  buf_program (fun { line } ->
      line "  li r1, %d" Map.crypto_base;
      line "  li r2, %d" crypto_key;
      line "  sw r2, 0(r1)";
      line "  li r9, %d" Map.ram_base;
      List.iteri
        (fun i pt ->
          line "  li r3, %d" pt;
          line "  sw r3, 4(r1)";
          line "  addi r4, r0, 1";
          line "  sw r4, 8(r1)";
          line "wait_%d:" i;
          line "  lw r5, 12(r1)";
          line "  andi r5, r5, 2";
          line "  beq r5, r0, wait_%d" i;
          line "  lw r6, 16(r1)";
          line "  sw r6, 0(r9)";
          line "  addi r9, r9, 4")
        plaintexts;
      line "  halt")

let peripherals_tour =
  buf_program (fun { line } ->
      (* Timer channel 0: enable, busy-wait, sample, disable. *)
      line "  li r1, %d" Map.timer_base;
      line "  addi r2, r0, 1";
      line "  sw r2, 8(r1)";
      line "  addi r3, r0, 20";
      line "spin:";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, spin";
      line "  lw r4, 0(r1)";
      line "  sw r0, 8(r1)";
      line "  li r5, %d" Map.ram_base;
      line "  sw r4, 0(r5)";
      (* TRNG: poll ready, fetch two words. *)
      line "  li r1, %d" Map.trng_base;
      line "trng_1:";
      line "  lw r6, 4(r1)";
      line "  beq r6, r0, trng_1";
      line "  lw r7, 0(r1)";
      line "  sw r7, 4(r5)";
      line "trng_2:";
      line "  lw r6, 4(r1)";
      line "  beq r6, r0, trng_2";
      line "  lw r8, 0(r1)";
      line "  sw r8, 8(r5)";
      (* EEPROM read-modify-write (slow write wait states). *)
      line "  li r1, %d" Map.eeprom_base;
      line "  lw r9, 0(r1)";
      line "  addi r9, r9, 1";
      line "  sw r9, 0(r1)";
      (* Sub-word merge patterns on RAM. *)
      line "  li r1, %d" Map.ram_base;
      line "  addi r2, r0, 171";
      line "  sb r2, 17(r1)";
      line "  lbu r3, 17(r1)";
      line "  li r2, 0x1234";
      line "  sh r2, 18(r1)";
      line "  lhu r4, 18(r1)";
      (* UART: print "OK". *)
      line "  li r1, %d" Map.uart_base;
      line "  addi r2, r0, 79";
      line "  sb r2, 0(r1)";
      line "  addi r2, r0, 75";
      line "  sb r2, 0(r1)";
      line "  halt")

let timer_interrupts ~ticks =
  buf_program (fun { line } ->
      line "  j main";
      line "  .org 0x40";
      (* Handler: count the tick in RAM, acknowledge timer and intc. *)
      line "vector:";
      line "  li r20, %d" Map.ram_base;
      line "  lw r21, 0(r20)";
      line "  addi r21, r21, 1";
      line "  sw r21, 0(r20)";
      line "  li r22, %d" Map.timer_base;
      line "  addi r23, r0, 1";
      line "  sw r23, 12(r22)";
      line "  li r22, %d" Map.intc_base;
      line "  addi r23, r0, 1";
      line "  sw r23, 0(r22)";
      line "  eret";
      line "main:";
      (* Timer channel 0: overflow every 64 cycles, auto reload. *)
      line "  li r1, %d" Map.timer_base;
      line "  li r2, 0xFFC0";
      line "  sw r2, 0(r1)";
      line "  sw r2, 4(r1)";
      line "  addi r3, r0, 3";
      line "  sw r3, 8(r1)";
      (* Unmask line 0 at the controller and in the core. *)
      line "  li r4, %d" Map.intc_base;
      line "  addi r5, r0, 1";
      line "  sw r5, 4(r4)";
      line "  ei";
      line "  li r6, %d" Map.ram_base;
      line "wait_ticks:";
      line "  lw r7, 0(r6)";
      line "  slti r8, r7, %d" ticks;
      line "  bne r8, r0, wait_ticks";
      line "  di";
      line "  sw r0, 8(r1)";
      line "  halt")

let dma_copy ?(wfi = false) ~words ~burst () =
  buf_program (fun { line } ->
      (* Stage source data into RAM (the DMA reads it back to a second
         RAM region). *)
      line "  la r1, dma_table";
      line "  li r2, %d" Map.ram_base;
      line "  addi r3, r0, %d" words;
      line "stage:";
      line "  lw r4, 0(r1)";
      line "  sw r4, 0(r2)";
      line "  addi r1, r1, 4";
      line "  addi r2, r2, 4";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, stage";
      (* Program the engine: RAM base -> RAM base + 0x800. *)
      line "  li r5, %d" Map.dma_base;
      line "  li r6, %d" Map.ram_base;
      line "  sw r6, 0(r5)";
      line "  li r7, %d" (Map.ram_base + 0x800);
      line "  sw r7, 4(r5)";
      line "  addi r8, r0, %d" words;
      line "  sw r8, 8(r5)";
      line "  addi r9, r0, %d" (if burst then 3 else 1);
      line "  sw r9, 12(r5)";
      (* Wait for completion. *)
      if wfi then begin
        (* Sleep until the DMA line asserts at the controller (interrupts
           stay disabled at the core, so execution continues inline), then
           acknowledge. *)
        line "  li r11, %d" Map.intc_base;
        line "  addi r12, r0, %d" (1 lsl 4);
        line "  sw r12, 4(r11)";
        line "dma_wait:";
        line "  lw r10, 16(r5)";
        line "  andi r10, r10, 2";
        line "  bne r10, r0, dma_done";
        line "  wfi";
        line "  j dma_wait";
        line "dma_done:";
        line "  sw r12, 0(r11)";
        line "  halt"
      end
      else begin
        line "dma_wait:";
        line "  lw r10, 16(r5)";
        line "  andi r10, r10, 2";
        line "  beq r10, r0, dma_wait";
        line "  halt"
      end;
      emit_table { line } "dma_table" words)

(* Chains the interesting traffic shapes into the single traced test
   program of the accuracy tables. *)
let bus_exercise =
  buf_program (fun { line } ->
      (* Word copy loop ROM -> RAM (reads overlap buffered stores). *)
      line "  la r1, xtable";
      line "  li r2, %d" Map.ram_base;
      line "  addi r3, r0, 12";
      line "x_copy:";
      line "  lw r4, 0(r1)";
      line "  sw r4, 0(r2)";
      line "  addi r1, r1, 4";
      line "  addi r2, r2, 4";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, x_copy";
      (* Burst copy. *)
      line "  la r1, xtable";
      line "  li r2, %d" (Map.ram_base + 0x100);
      line "  addi r3, r0, 3";
      line "x_burst:";
      line "  lw4 r4, 0(r1)";
      line "  sw4 r4, 0(r2)";
      line "  addi r1, r1, 16";
      line "  addi r2, r2, 16";
      line "  addi r3, r3, -1";
      line "  bne r3, r0, x_burst";
      (* Sub-word traffic. *)
      line "  li r1, %d" (Map.ram_base + 0x200);
      line "  addi r2, r0, 90";
      line "  sb r2, 1(r1)";
      line "  sb r2, 2(r1)";
      line "  lbu r3, 1(r1)";
      line "  li r2, 0x4321";
      line "  sh r2, 4(r1)";
      line "  lh r4, 4(r1)";
      (* Wait-state slaves: FLASH reads, EEPROM read-modify-write. *)
      line "  li r1, %d" Map.flash_base;
      line "  lw r5, 0(r1)";
      line "  lw r6, 4(r1)";
      line "  li r1, %d" Map.eeprom_base;
      line "  lw r7, 0(r1)";
      line "  add r7, r7, r5";
      line "  sw r7, 0(r1)";
      (* Crypto operation. *)
      line "  li r1, %d" Map.crypto_base;
      line "  li r2, %d" crypto_key;
      line "  sw r2, 0(r1)";
      line "  li r3, 0x61626364";
      line "  sw r3, 4(r1)";
      line "  addi r4, r0, 1";
      line "  sw r4, 8(r1)";
      line "x_wait:";
      line "  lw r5, 12(r1)";
      line "  andi r5, r5, 2";
      line "  beq r5, r0, x_wait";
      line "  lw r6, 16(r1)";
      line "  li r2, %d" Map.ram_base;
      line "  sw r6, 16(r2)";
      (* UART byte. *)
      line "  li r1, %d" Map.uart_base;
      line "  addi r2, r0, 33";
      line "  sb r2, 0(r1)";
      line "  halt";
      emit_table { line } "xtable" 16)

let all =
  [
    ("memcpy", memcpy ~words:16);
    ("checksum", checksum ~words:16);
    ("bubble-sort", bubble_sort ~n:10);
    ("burst-copy", burst_copy ~blocks:4);
    ("crypto-run", crypto_run ~plaintexts:[ 0x00112233; 0x44556677 ]);
    ("peripherals-tour", peripherals_tour);
    ("timer-interrupts", timer_interrupts ~ticks:3);
    ("dma-copy", dma_copy ~words:16 ~burst:true ());
    ("dma-copy-wfi", dma_copy ~wfi:true ~words:16 ~burst:true ());
    ("bus-exercise", bus_exercise);
  ]
