type row = {
  lines : int option;
  cycles : int;
  bus_pj : float;
  cache_pj : float;
  total_pj : float;
  hit_rate_pct : float;
}

type t = { workload : string; rows : row list }

let run ?(level = Level.L1) ?(sizes = [ None; Some 1; Some 2; Some 4; Some 16 ])
    ?(name = "program") program =
  let one lines =
    let run = Runner.run_program ~level ?icache_lines:lines program in
    (match run.Runner.fault with
    | None -> ()
    | Some _ -> failwith "Core.Cache_study: workload faulted");
    let r = run.Runner.result in
    let cache_pj, hit_rate_pct =
      match run.Runner.icache with
      | None -> (0.0, 0.0)
      | Some c ->
        let hits = Soc.Icache.hits c and misses = Soc.Icache.misses c in
        let accesses = hits + misses in
        ( Power.Component.energy_pj (Soc.Icache.component c),
          if accesses = 0 then 0.0
          else float_of_int hits /. float_of_int accesses *. 100.0 )
    in
    {
      lines;
      cycles = r.Runner.cycles;
      bus_pj = r.Runner.bus_pj;
      cache_pj;
      total_pj = r.Runner.bus_pj +. r.Runner.component_pj +. cache_pj;
      hit_rate_pct;
    }
  in
  { workload = name; rows = List.map one sizes }

let render t =
  let body =
    List.map
      (fun r ->
        [
          (match r.lines with
          | None -> "no cache"
          | Some n -> Printf.sprintf "%d lines (%d B)" n (n * Soc.Icache.line_bytes));
          string_of_int r.cycles;
          Printf.sprintf "%.1f" r.bus_pj;
          Printf.sprintf "%.1f" r.cache_pj;
          Printf.sprintf "%.1f" r.total_pj;
          Printf.sprintf "%.1f%%" r.hit_rate_pct;
        ])
      t.rows
  in
  Printf.sprintf "Instruction cache exploration: %s\n%s" t.workload
    (Report.table
       ~header:[ "i-cache"; "cycles"; "bus pJ"; "cache pJ"; "total pJ"; "hit rate" ]
       body)
