(** Synthetic workload generators.

    Random but reproducible traffic for characterization (the training run
    behind {!Runner.characterize}), for the simulation-performance
    measurements of Table 3 ("all combinations between single read, single
    write, burst read, and burst write transactions"), and for
    property-based tests. *)

val random_trace :
  rng:Sim.Rng.t ->
  n:int ->
  ?max_gap:int ->
  ?write_ratio:float ->
  ?burst_ratio:float ->
  ?subword_ratio:float ->
  ?instr_ratio:float ->
  unit ->
  Ec.Trace.t
(** [n] transactions over the Figure-1 memory map, error-free by
    construction (writes only target writable slaves, fetches executable
    ones).  Ratios default to 0.4 writes, 0.25 bursts, 0.2 sub-word
    singles, 0.2 instruction fetches among reads; gaps uniform in
    [0, max_gap] (default 3). *)

val characterization_trace : Ec.Trace.t
(** The standard training workload (seeded, 2000 transactions). *)

val table3_trace : n:int -> Ec.Trace.t
(** Deterministic mix cycling through every ordered pair of {single read,
    single write, burst read, burst write}, zero gaps — the Table 3
    stimulus. *)
