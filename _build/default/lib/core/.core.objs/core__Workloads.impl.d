lib/core/workloads.ml: Array Ec List Sim Soc
