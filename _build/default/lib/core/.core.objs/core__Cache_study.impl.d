lib/core/cache_study.ml: Level List Power Printf Report Runner Soc
