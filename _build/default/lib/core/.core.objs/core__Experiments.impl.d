lib/core/experiments.ml: Buffer Ec Level List Power Printf Report Runner Soc System Test_programs Verify_seqs Workloads
