lib/core/verify_seqs.ml: Array Ec List Soc
