lib/core/report.ml: Format List Option Power Printf String
