lib/core/ablations.mli:
