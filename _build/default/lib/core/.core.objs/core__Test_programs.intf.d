lib/core/test_programs.mli:
