lib/core/exploration.mli: Jcvm Level Power
