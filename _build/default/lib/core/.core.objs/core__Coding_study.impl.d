lib/core/coding_study.ml: Ec Lazy Level List Option Power Printf Report Rtl Runner Soc System
