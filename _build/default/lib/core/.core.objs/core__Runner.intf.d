lib/core/runner.mli: Ec Level Power Rtl Soc System Tlm2
