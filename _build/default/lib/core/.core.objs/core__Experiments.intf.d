lib/core/experiments.mli: Ec Level Power Soc System
