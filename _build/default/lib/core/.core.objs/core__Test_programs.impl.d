lib/core/test_programs.ml: Buffer List Printf Soc
