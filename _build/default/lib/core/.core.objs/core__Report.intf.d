lib/core/report.mli:
