lib/core/system.ml: Level Option Power Rtl Sim Soc Tlm1 Tlm2
