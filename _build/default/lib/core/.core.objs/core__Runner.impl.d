lib/core/runner.ml: Ec Level List Option Power Rtl Soc System Unix Workloads
