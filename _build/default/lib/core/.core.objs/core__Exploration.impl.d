lib/core/exploration.ml: Array Hashtbl Jcvm Level List Printf Report Sim String System
