lib/core/ablations.ml: Experiments Level List Power Printf Report Rtl Runner Soc String System Test_programs Tlm2
