lib/core/workloads.mli: Ec Sim
