lib/core/cache_study.mli: Level Soc
