lib/core/level.ml: Format
