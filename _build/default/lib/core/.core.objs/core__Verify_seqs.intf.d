lib/core/verify_seqs.mli: Ec
