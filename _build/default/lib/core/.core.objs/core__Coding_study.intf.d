lib/core/coding_study.mli: Ec Power Soc
