lib/core/system.mli: Ec Level Power Rtl Sim Soc Tlm1 Tlm2
