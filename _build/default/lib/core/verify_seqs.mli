(** The verification sequences of the paper's section 4.1.

    "The examples are single read and write with and without wait states,
    back-to-back reads, back-to-back writes, read followed by write and
    write followed by read with reordering, and at last burst read and
    write transactions" — expressed against the Figure-1 memory map
    (ROM/RAM are zero-wait, EEPROM and FLASH insert address and data wait
    states).  The same traces stimulate the gate-level, layer-1 and
    layer-2 models for Tables 1 and 2. *)

val all : (string * Ec.Trace.t) list
(** Every named sequence. *)

val find : string -> Ec.Trace.t
(** @raise Not_found for an unknown name. *)

val combined : Ec.Trace.t
(** All sequences concatenated (two idle cycles between groups): the
    stimulus used for the accuracy tables. *)

val names : string list
