(** Assembly test programs.

    The paper's second verification step needed "an assembly language test
    program ... to initiate the required bus transactions"; these are our
    equivalents, written for the {!Soc.Isa} core against the Figure-1
    memory map.  Each value is assembler source accepted by
    {!Soc.Asm.assemble}; programs halt via [halt] and leave their results
    in RAM (and on the UART where noted). *)

val memcpy : words:int -> string
(** Copies [words] words from the ROM data table to RAM with a lw/sw
    loop; result: the copied block at the start of RAM. *)

val checksum : words:int -> string
(** Sums [words] ROM table words, stores the sum at RAM+0 and writes its
    low byte to the UART. *)

val bubble_sort : n:int -> string
(** Sorts an [n]-element descending table in RAM ascending (word ops). *)

val burst_copy : blocks:int -> string
(** Copies [blocks] 4-word blocks ROM to RAM using the burst instructions
    [lw4]/[sw4]. *)

val crypto_run : plaintexts:int list -> string
(** Keys the coprocessor, encrypts each plaintext (write DIN, start, poll
    STATUS, read DOUT) and stores ciphertexts to RAM. *)

val peripherals_tour : string
(** Touches every peripheral: timer start/stop, TRNG words, EEPROM
    read-modify-write, byte and halfword accesses, UART output. *)

val timer_interrupts : ticks:int -> string
(** Interrupt-driven: a timer-overflow handler at the vector counts
    [ticks] ticks into RAM while the main loop polls; exercises the
    interrupt controller, [ei]/[eret] and nested-interrupt masking. *)

val dma_copy : ?wfi:bool -> words:int -> burst:bool -> unit -> string
(** Stages [words] words in RAM, then lets the DMA engine copy them to a
    second RAM region (in 4-word bursts when [burst]).  The core waits by
    polling the engine's STATUS register, or — with [wfi] — by sleeping on
    the interrupt wire (no bus traffic while the engine works). *)

val bus_exercise : string
(** The combined "assembly test program" whose traced transactions feed
    Tables 1 and 2: mixes ALU work, sub-word accesses, bursts, EEPROM and
    FLASH wait states, store-buffer overlap and peripheral traffic. *)

val all : (string * string) list
(** Every program above under a stable name (with default sizes). *)
