(** Plain-text rendering of the paper's tables.

    Fixed-width tables with a header row, matching the way results are
    presented in the paper and in EXPERIMENTS.md. *)

val table : header:string list -> string list list -> string
(** [table ~header rows] lays out columns to the widest cell.  Cells that
    parse as numbers are right-aligned. *)

val pct : float -> string
(** Signed percentage with one decimal ("+14.7%", "-7.8%", "0.0%"). *)

val ratio_pct : reference:float -> float -> string
(** Value as percent of a reference ("92.1%"). *)

val pj : float -> string
val float1 : float -> string
