module Map = Soc.Platform.Map

(* Builders with throwaway ids; Trace.instantiate renumbers at replay. *)
let read ?(gap = 0) ?kind ?width addr =
  Ec.Trace.item ~gap (Ec.Txn.single_read ~id:0 ?kind ?width addr)

let write ?(gap = 0) ?width addr value =
  Ec.Trace.item ~gap (Ec.Txn.single_write ~id:0 ?width addr ~value)

let burst_read ?(gap = 0) addr = Ec.Trace.item ~gap (Ec.Txn.burst_read ~id:0 addr)

let burst_write ?(gap = 0) addr values =
  Ec.Trace.item ~gap (Ec.Txn.burst_write ~id:0 addr ~values)

let patterns = [| 0xDEADBEEF; 0x01234567; 0xA5A5A5A5; 0x00000000; 0xFFFFFFFF |]

let all =
  [
    ("single-read-nowait", [ read Map.rom_base ]);
    ("single-read-wait", [ read (Map.eeprom_base + 0x40) ]);
    ("single-write-nowait", [ write Map.ram_base patterns.(0) ]);
    ("single-write-wait", [ write (Map.eeprom_base + 0x80) patterns.(1) ]);
    ( "back-to-back-reads",
      List.init 8 (fun i -> read (Map.rom_base + (4 * i))) );
    ( "back-to-back-writes",
      List.init 8 (fun i ->
          write (Map.ram_base + (4 * i)) patterns.(i mod 5)) );
    ( "read-then-write",
      [ read Map.rom_base; write Map.ram_base patterns.(2) ] );
    (* A slow write followed by a fast read: the read data phase finishes
       while the write is still inserting wait states (reordering between
       the independent read and write buses). *)
    ( "write-then-read-reorder",
      [ write (Map.eeprom_base + 0x100) patterns.(3); read Map.rom_base ] );
    ( "burst-reads",
      List.init 4 (fun i -> burst_read (Map.rom_base + (16 * i))) );
    ( "burst-writes",
      List.init 4 (fun i ->
          burst_write
            (Map.ram_base + (16 * i))
            (Array.init 4 (fun j -> patterns.((i + j) mod 5)))) );
    ( "merge-patterns",
      [
        read ~width:Ec.Txn.W8 (Map.rom_base + 1);
        read ~width:Ec.Txn.W8 (Map.rom_base + 3);
        read ~width:Ec.Txn.W16 (Map.rom_base + 2);
        write ~width:Ec.Txn.W8 (Map.ram_base + 5) 0x5A;
        write ~width:Ec.Txn.W16 (Map.ram_base + 6) 0x1234;
        read ~width:Ec.Txn.W16 Map.ram_base;
      ] );
    ( "instruction-fetch",
      List.init 4 (fun i ->
          read ~kind:Ec.Txn.Instruction (Map.flash_base + (4 * i))) );
  ]

let names = List.map fst all

let find name = List.assoc name all

let combined =
  List.concat_map
    (fun (_, items) ->
      match items with
      | [] -> []
      | first :: rest ->
        { first with Ec.Trace.gap = first.Ec.Trace.gap + 2 } :: rest)
    all
