(** Parametrized cache-and-bus exploration.

    The paper's reference [1] (Givargis/Vahid/Henkel) evaluates power of
    parametrized cache and bus architectures; this study reproduces that
    flavour of experiment on our platform: sweep the instruction cache
    size and measure, per workload, the cycles, the bus energy the cache
    saves, the cache's own energy, and the hit rate — the classic
    find-the-knee curve. *)

type row = {
  lines : int option;  (** [None] = no cache *)
  cycles : int;
  bus_pj : float;
  cache_pj : float;
  total_pj : float;  (** bus + cache + other peripherals *)
  hit_rate_pct : float;
}

type t = { workload : string; rows : row list }

val run :
  ?level:Level.t ->
  ?sizes:int option list ->
  ?name:string ->
  Soc.Asm.program ->
  t
(** Defaults: layer-1 bus; sizes [none; 1; 2; 4; 16] lines. *)

val render : t -> string
