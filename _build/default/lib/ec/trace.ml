type item = { gap : int; txn : Txn.t }
type t = item list

let item ?(gap = 0) txn =
  if gap < 0 then invalid_arg "Ec.Trace.item: negative gap";
  { gap; txn }

let instantiate gen it =
  let txn = it.txn in
  let data =
    match txn.Txn.dir with
    | Txn.Write -> Some (Array.copy txn.Txn.data)
    | Txn.Read -> None
  in
  let txn =
    Txn.create ~id:(Txn.Id_gen.fresh gen) ~kind:txn.Txn.kind ~dir:txn.Txn.dir
      ~width:txn.Txn.width ~addr:txn.Txn.addr ~burst:txn.Txn.burst ?data ()
  in
  { it with txn }

let total_txns t = List.length t
let total_beats t = List.fold_left (fun acc it -> acc + it.txn.Txn.burst) 0 t

let dir_char = function Txn.Read -> 'R' | Txn.Write -> 'W'
let kind_char = function Txn.Instruction -> 'I' | Txn.Data -> 'D'

let width_code = function Txn.W8 -> 8 | Txn.W16 -> 16 | Txn.W32 -> 32

let width_of_code = function
  | 8 -> Txn.W8
  | 16 -> Txn.W16
  | 32 -> Txn.W32
  | w -> failwith (Printf.sprintf "Ec.Trace: bad width %d" w)

let item_to_line it =
  let txn = it.txn in
  let buf = Buffer.create 48 in
  Buffer.add_string buf
    (Printf.sprintf "%d %c%c %d 0x%x %d" it.gap (dir_char txn.Txn.dir)
       (kind_char txn.Txn.kind) (width_code txn.Txn.width) txn.Txn.addr
       txn.Txn.burst);
  if txn.Txn.dir = Txn.Write then
    Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " 0x%x" v))
      txn.Txn.data;
  Buffer.contents buf

let to_lines t = List.map item_to_line t

let item_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | gap :: dk :: width :: addr :: burst :: rest when String.length dk = 2 ->
    let fail msg = failwith (Printf.sprintf "Ec.Trace: %s in %S" msg line) in
    let gap = int_of_string gap in
    let dir =
      match dk.[0] with
      | 'R' -> Txn.Read
      | 'W' -> Txn.Write
      | _ -> fail "bad direction"
    in
    let kind =
      match dk.[1] with
      | 'I' -> Txn.Instruction
      | 'D' -> Txn.Data
      | _ -> fail "bad kind"
    in
    let width = width_of_code (int_of_string width) in
    let addr = int_of_string addr in
    let burst = int_of_string burst in
    let data =
      match dir with
      | Txn.Read -> if rest <> [] then fail "payload on read" else None
      | Txn.Write -> Some (Array.of_list (List.map int_of_string rest))
    in
    item ~gap (Txn.create ~id:0 ~kind ~dir ~width ~addr ~burst ?data ())
  | _ -> failwith (Printf.sprintf "Ec.Trace: malformed line %S" line)

let of_lines lines =
  let keep line =
    let line = String.trim line in
    String.length line > 0 && line.[0] <> '#'
  in
  List.map item_of_line (List.filter keep lines)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines (loop []))
