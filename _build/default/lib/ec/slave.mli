(** Behavioural interface of an EC bus slave.

    A slave couples a {!Slave_cfg.t} (queried by the bus through the slave
    control interface) with per-beat data callbacks.  Wait states are
    inserted by the bus models, not by the callbacks; the callbacks only
    transport data, which keeps one behavioural model usable under every
    abstraction level (RTL, TL layer 1 per beat, TL layer 2 per block). *)

type t = private {
  cfg : Slave_cfg.t;
  read : addr:int -> width:Txn.width -> int;
      (** One beat; the result is the naturally aligned value in the low
          bits of the returned word. *)
  write : addr:int -> width:Txn.width -> value:int -> unit;
}

val make :
  cfg:Slave_cfg.t ->
  read:(addr:int -> width:Txn.width -> int) ->
  write:(addr:int -> width:Txn.width -> value:int -> unit) ->
  t

val read_beat : t -> Txn.t -> int -> int
(** [read_beat s txn i] performs beat [i] of read transaction [txn]. *)

val write_beat : t -> Txn.t -> int -> unit
(** [write_beat s txn i] delivers beat [i] of write transaction [txn]. *)

val read_block : t -> Txn.t -> unit
(** Layer-2 style block transport: performs every beat of [txn] at once,
    storing results into [txn.data]. *)

val write_block : t -> Txn.t -> unit
