(** Analytic timing rules of the EC micro-protocol.

    These closed-form phase lengths are the single source of truth for the
    protocol timing: the RTL and layer-1 models realize them cycle by
    cycle, the layer-2 model consumes them as wait-state counters, and the
    test suite checks the cycle-accurate models against them on isolated
    transactions. *)

val addr_phase_cycles : Slave_cfg.t -> int
(** Cycles the address phase occupies: [addr_wait + 1].  A zero-wait
    address phase completes in the cycle it is initiated. *)

val data_wait : Slave_cfg.t -> Txn.t -> int
(** Wait states per data beat: the slave's read or write wait count. *)

val data_phase_extra : Slave_cfg.t -> Txn.t -> int
(** Cycles the data phase adds after the address phase completes:
    [w + (burst - 1) * (w + 1)] with [w = data_wait].  Zero for a
    zero-wait single transfer: its only beat completes in the same cycle
    as its address phase. *)

val isolated_latency : Slave_cfg.t -> Txn.t -> int
(** Bus cycles a transaction occupies when it runs alone:
    [addr_phase_cycles + data_phase_extra]. *)
