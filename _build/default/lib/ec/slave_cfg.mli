(** Static properties of an EC bus slave, accessible through the slave
    control interface of the paper's models: address range, wait states for
    the address, read and write phases, and access-right bits. *)

type t = private {
  name : string;
  base : int;  (** byte address of first mapped byte *)
  size : int;  (** mapped bytes *)
  addr_wait : int;  (** wait states inserted in the address phase *)
  read_wait : int;  (** wait states per read data beat *)
  write_wait : int;  (** wait states per write data beat *)
  readable : bool;
  writable : bool;
  executable : bool;
}

val make :
  name:string ->
  base:int ->
  size:int ->
  ?addr_wait:int ->
  ?read_wait:int ->
  ?write_wait:int ->
  ?readable:bool ->
  ?writable:bool ->
  ?executable:bool ->
  unit ->
  t
(** Wait states default to 0; rights default to readable/writable and not
    executable.

    @raise Invalid_argument on a negative wait count, non-positive or
    unaligned [size], or a range leaving the 36-bit address space. *)

val contains : t -> int -> bool
(** [contains t addr] holds when [addr] falls inside the mapped range. *)

val allows : t -> Txn.t -> bool
(** Access-right check: writes need [writable], data reads [readable],
    instruction fetches [executable]. *)

val overlaps : t -> t -> bool
val pp : Format.formatter -> t -> unit
