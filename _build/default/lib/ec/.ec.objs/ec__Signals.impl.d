lib/ec/signals.ml: List Printf
