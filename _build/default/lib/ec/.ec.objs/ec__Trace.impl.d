lib/ec/trace.ml: Array Buffer Fun List Printf String Txn
