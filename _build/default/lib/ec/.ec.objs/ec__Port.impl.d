lib/ec/port.ml: Format Txn
