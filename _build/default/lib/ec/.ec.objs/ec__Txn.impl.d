lib/ec/txn.ml: Array Format Printf
