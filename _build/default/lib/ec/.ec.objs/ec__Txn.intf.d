lib/ec/txn.mli: Format
