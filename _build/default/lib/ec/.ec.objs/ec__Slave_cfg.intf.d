lib/ec/slave_cfg.mli: Format Txn
