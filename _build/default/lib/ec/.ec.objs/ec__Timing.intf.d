lib/ec/timing.mli: Slave_cfg Txn
