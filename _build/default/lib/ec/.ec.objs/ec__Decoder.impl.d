lib/ec/decoder.ml: Array Printf Slave Slave_cfg Txn
