lib/ec/decoder.mli: Slave Txn
