lib/ec/trace.mli: Txn
