lib/ec/signals.mli:
