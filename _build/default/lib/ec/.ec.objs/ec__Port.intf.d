lib/ec/port.mli: Txn
