lib/ec/timing.ml: Slave_cfg Txn
