lib/ec/slave.mli: Slave_cfg Txn
