lib/ec/slave.ml: Array Slave_cfg Txn
