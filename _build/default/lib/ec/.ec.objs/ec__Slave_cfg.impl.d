lib/ec/slave_cfg.ml: Format Printf Txn
