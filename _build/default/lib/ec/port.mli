(** The non-blocking master interface shared by every bus model.

    The paper's master interfaces are non-blocking: the master invokes the
    bus every clock cycle until the bus answers ok or error.  We split the
    paper's single repeated call into [try_submit] (the first call, whose
    answer is the [Request]/[Wait] acceptance) and [poll] (the repeated
    calls, whose answer is [Wait]/[Ok]/[Error]).  Masters written against
    this record run unchanged on the RTL, layer-1 and layer-2 models. *)

type poll = Pending | Done | Failed

type t = {
  try_submit : Txn.t -> bool;
      (** [true] when the request was accepted (queue space available in
          its outstanding category); the master must retry next cycle
          otherwise. *)
  poll : int -> poll;
      (** Completion state of an accepted transaction by id.  For reads,
          [Done] implies the transaction's data array has been filled.
          Non-destructive: keeps answering until {!field-retire}. *)
  retire : int -> unit;
      (** Releases the bus-side completion record of a finished
          transaction.  Masters call it once they have consumed the
          result, keeping the bus bookkeeping bounded. *)
}

val submit_exn : t -> Txn.t -> unit
(** Submit that raises on back-pressure, for traffic known to fit. *)

val completed : t -> int -> bool
(** [completed p id] is true once [poll] answers [Done] or [Failed]. *)

val take : t -> int -> poll
(** [take p id] polls and, when finished, retires in one step. *)
