(** Bus transaction traces.

    The paper's second verification step traces the bus transactions of an
    assembly test program running on the register-transfer model and
    replays them as input sequences for the transaction-level models.  A
    trace item is a transaction description plus the idle gap (in cycles)
    between the completion of the previous item's issue opportunity and
    this one's. *)

type item = { gap : int; txn : Txn.t }
type t = item list

val item : ?gap:int -> Txn.t -> item

val instantiate : Txn.Id_gen.gen -> item -> item
(** Fresh copy with a new id and, for reads, a cleared data array, so one
    trace can be replayed into several models independently. *)

val total_txns : t -> int
val total_beats : t -> int

val to_lines : t -> string list
(** One-line-per-item text serialization. *)

val of_lines : string list -> t
(** Inverse of {!to_lines}; blank lines and [#] comments are skipped.
    @raise Failure on a malformed line. *)

val save : string -> t -> unit
val load : string -> t
