type t = Slave.t array

type access =
  | Mapped of int * Slave.t
  | Unmapped
  | Rights_violation of int * Slave.t

let create slaves =
  let arr = Array.of_list slaves in
  Array.iteri
    (fun i (a : Slave.t) ->
      Array.iteri
        (fun j (b : Slave.t) ->
          if i < j && Slave_cfg.overlaps a.cfg b.cfg then
            invalid_arg
              (Printf.sprintf "Ec.Decoder.create: %s overlaps %s"
                 a.cfg.Slave_cfg.name b.cfg.Slave_cfg.name))
        arr)
    arr;
  arr

let count t = Array.length t
let slave t i = t.(i)
let slaves t = Array.to_list t

let find t addr =
  let rec loop i =
    if i >= Array.length t then None
    else if Slave_cfg.contains t.(i).Slave.cfg addr then Some (i, t.(i))
    else loop (i + 1)
  in
  loop 0

let check t (txn : Txn.t) =
  match find t txn.addr with
  | None -> Unmapped
  | Some (i, s) ->
    let last = Txn.beat_addr txn (txn.burst - 1) + Txn.bytes_per_beat txn - 1 in
    if not (Slave_cfg.contains s.Slave.cfg last) then Unmapped
    else if Slave_cfg.allows s.Slave.cfg txn then Mapped (i, s)
    else Rights_violation (i, s)
