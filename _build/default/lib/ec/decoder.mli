(** Address decoder of the bus controller.

    The EC interface itself supports a single slave; the bus controller
    adds the address decoder and control logic so several slaves can be
    attached (paper, chapter 1 and 3).  The same decoder instance is shared
    by the RTL, layer-1 and layer-2 models. *)

type t

(** Outcome of decoding one transaction. *)
type access =
  | Mapped of int * Slave.t  (** slave select index and slave *)
  | Unmapped
  | Rights_violation of int * Slave.t

val create : Slave.t list -> t
(** @raise Invalid_argument if two slave ranges overlap. *)

val count : t -> int
val slave : t -> int -> Slave.t
val slaves : t -> Slave.t list

val find : t -> int -> (int * Slave.t) option
(** [find t addr] is the slave mapped at byte address [addr], if any. *)

val check : t -> Txn.t -> access
(** Full decode of a transaction including the access-right bits.  A burst
    must fit entirely inside one slave's range, otherwise it is
    [Unmapped]. *)
