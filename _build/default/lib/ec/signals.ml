type ctrl =
  | Avalid
  | Instr
  | Write
  | Burst
  | Bfirst
  | Blast
  | Ardy
  | Rdval
  | Wdrdy
  | Rberr
  | Wberr

type id = Addr of int | Be of int | Wdata of int | Rdata of int | Ctrl of ctrl

let addr_wires = 34
let be_wires = 4
let data_wires = 32

let all_ctrl =
  [ Avalid; Instr; Write; Burst; Bfirst; Blast; Ardy; Rdval; Wdrdy; Rberr;
    Wberr ]

let ctrl_index = function
  | Avalid -> 0
  | Instr -> 1
  | Write -> 2
  | Burst -> 3
  | Bfirst -> 4
  | Blast -> 5
  | Ardy -> 6
  | Rdval -> 7
  | Wdrdy -> 8
  | Rberr -> 9
  | Wberr -> 10

let ctrl_count = List.length all_ctrl
let count = addr_wires + be_wires + (2 * data_wires) + ctrl_count

let index = function
  | Addr i ->
    assert (i >= 0 && i < addr_wires);
    i
  | Be i ->
    assert (i >= 0 && i < be_wires);
    addr_wires + i
  | Wdata i ->
    assert (i >= 0 && i < data_wires);
    addr_wires + be_wires + i
  | Rdata i ->
    assert (i >= 0 && i < data_wires);
    addr_wires + be_wires + data_wires + i
  | Ctrl c -> addr_wires + be_wires + (2 * data_wires) + ctrl_index c

let of_index i =
  if i < 0 || i >= count then invalid_arg "Ec.Signals.of_index";
  if i < addr_wires then Addr i
  else if i < addr_wires + be_wires then Be (i - addr_wires)
  else if i < addr_wires + be_wires + data_wires then
    Wdata (i - addr_wires - be_wires)
  else if i < addr_wires + be_wires + (2 * data_wires) then
    Rdata (i - addr_wires - be_wires - data_wires)
  else Ctrl (List.nth all_ctrl (i - addr_wires - be_wires - (2 * data_wires)))

let ctrl_to_string = function
  | Avalid -> "EB_AValid"
  | Instr -> "EB_Instr"
  | Write -> "EB_Write"
  | Burst -> "EB_Burst"
  | Bfirst -> "EB_BFirst"
  | Blast -> "EB_BLast"
  | Ardy -> "EB_ARdy"
  | Rdval -> "EB_RdVal"
  | Wdrdy -> "EB_WDRdy"
  | Rberr -> "EB_RBErr"
  | Wberr -> "EB_WBErr"

let to_string = function
  | Addr i -> Printf.sprintf "EB_A[%d]" (i + 2)
  | Be i -> Printf.sprintf "EB_BE[%d]" i
  | Wdata i -> Printf.sprintf "EB_WData[%d]" i
  | Rdata i -> Printf.sprintf "EB_RData[%d]" i
  | Ctrl c -> ctrl_to_string c

let all = List.init count of_index

(* Effective switched capacitance per wire class.  Address wires fan out to
   every slave's decoder, data wires to the data muxes, control wires are
   short point-to-point nets. *)
let default_capacitance_ff = function
  | Addr _ -> 450.0
  | Be _ -> 300.0
  | Wdata _ -> 380.0
  | Rdata _ -> 360.0
  | Ctrl (Avalid | Ardy) -> 280.0
  | Ctrl _ -> 240.0

let vdd = 1.8
