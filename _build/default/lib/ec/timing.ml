let addr_phase_cycles (cfg : Slave_cfg.t) = cfg.addr_wait + 1

let data_wait (cfg : Slave_cfg.t) (txn : Txn.t) =
  match txn.dir with Txn.Read -> cfg.read_wait | Txn.Write -> cfg.write_wait

let data_phase_extra cfg (txn : Txn.t) =
  let w = data_wait cfg txn in
  w + ((txn.burst - 1) * (w + 1))

let isolated_latency cfg txn = addr_phase_cycles cfg + data_phase_extra cfg txn
