type poll = Pending | Done | Failed

type t = {
  try_submit : Txn.t -> bool;
  poll : int -> poll;
  retire : int -> unit;
}

let submit_exn t txn =
  if not (t.try_submit txn) then
    failwith (Format.asprintf "Ec.Port.submit_exn: bus refused %a" Txn.pp txn)

let completed t id =
  match t.poll id with Pending -> false | Done | Failed -> true

let take t id =
  match t.poll id with
  | Pending -> Pending
  | (Done | Failed) as outcome ->
    t.retire id;
    outcome
