type t = {
  cfg : Slave_cfg.t;
  read : addr:int -> width:Txn.width -> int;
  write : addr:int -> width:Txn.width -> value:int -> unit;
}

let make ~cfg ~read ~write = { cfg; read; write }

let read_beat s (txn : Txn.t) i =
  s.read ~addr:(Txn.beat_addr txn i) ~width:txn.width

let write_beat s (txn : Txn.t) i =
  s.write ~addr:(Txn.beat_addr txn i) ~width:txn.width ~value:txn.data.(i)

let read_block s (txn : Txn.t) =
  for i = 0 to txn.burst - 1 do
    Txn.set_beat txn i (read_beat s txn i)
  done

let write_block s (txn : Txn.t) =
  for i = 0 to txn.burst - 1 do
    write_beat s txn i
  done
