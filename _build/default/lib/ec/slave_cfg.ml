type t = {
  name : string;
  base : int;
  size : int;
  addr_wait : int;
  read_wait : int;
  write_wait : int;
  readable : bool;
  writable : bool;
  executable : bool;
}

let make ~name ~base ~size ?(addr_wait = 0) ?(read_wait = 0) ?(write_wait = 0)
    ?(readable = true) ?(writable = true) ?(executable = false) () =
  let fail msg = invalid_arg (Printf.sprintf "Ec.Slave_cfg.make %s: %s" name msg) in
  if size <= 0 then fail "non-positive size";
  if base < 0 || base + size > Txn.max_addr then fail "range outside 36-bit space";
  if base mod 4 <> 0 || size mod 4 <> 0 then fail "range not word aligned";
  if addr_wait < 0 || read_wait < 0 || write_wait < 0 then fail "negative wait count";
  { name; base; size; addr_wait; read_wait; write_wait; readable; writable;
    executable }

let contains t addr = addr >= t.base && addr < t.base + t.size

let allows t (txn : Txn.t) =
  match txn.dir, txn.kind with
  | Txn.Write, _ -> t.writable
  | Txn.Read, Txn.Instruction -> t.executable
  | Txn.Read, Txn.Data -> t.readable

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let pp ppf t =
  Format.fprintf ppf "%s[%#x..%#x) aw%d rw%d ww%d %s%s%s" t.name t.base
    (t.base + t.size) t.addr_wait t.read_wait t.write_wait
    (if t.readable then "r" else "-")
    (if t.writable then "w" else "-")
    (if t.executable then "x" else "-")
