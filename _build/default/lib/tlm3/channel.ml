type message = { addr : int; words : int }
type outcome = Ok_data of int array | Bus_error

type t = {
  decoder : Ec.Decoder.t;
  mutable messages : int;
  mutable words_moved : int;
}

let create decoder = { decoder; messages = 0; words_moved = 0 }

(* Mapping and rights of a [base, base + 4*words) window. *)
let locate t ~addr ~words ~dir =
  if words <= 0 || addr mod 4 <> 0 then None
  else
    match Ec.Decoder.find t.decoder addr with
    | None -> None
    | Some (_, slave) ->
      let cfg = slave.Ec.Slave.cfg in
      let last = addr + (4 * words) - 1 in
      let allowed =
        match dir with
        | Ec.Txn.Read -> cfg.Ec.Slave_cfg.readable
        | Ec.Txn.Write -> cfg.Ec.Slave_cfg.writable
      in
      if Ec.Slave_cfg.contains cfg last && allowed then Some slave else None

let read t message =
  t.messages <- t.messages + 1;
  match locate t ~addr:message.addr ~words:message.words ~dir:Ec.Txn.Read with
  | None -> Bus_error
  | Some slave ->
    t.words_moved <- t.words_moved + message.words;
    Ok_data
      (Array.init message.words (fun i ->
           slave.Ec.Slave.read ~addr:(message.addr + (4 * i)) ~width:Ec.Txn.W32))

let write t ~addr data =
  t.messages <- t.messages + 1;
  match locate t ~addr ~words:(Array.length data) ~dir:Ec.Txn.Write with
  | None -> Bus_error
  | Some slave ->
    t.words_moved <- t.words_moved + Array.length data;
    Array.iteri
      (fun i value ->
        slave.Ec.Slave.write ~addr:(addr + (4 * i)) ~width:Ec.Txn.W32 ~value)
      data;
    Ok_data [||]

let messages t = t.messages
let words_moved t = t.words_moved
