(** Transaction level layer 3 — the message layer.

    Per the OCP white paper the related work builds on (Haverinen et al.),
    layer-3 systems are untimed and event-driven; "data representation may
    be of a very abstract data type and several data items can be
    transferred by a single transaction".  This channel delivers whole
    messages of arbitrary word counts directly against the slave
    behaviours — zero simulated time, no protocol, no energy — and is the
    natural home of functional partitioning and algorithm-level
    experiments before any refinement. *)

type message = {
  addr : int;
  words : int;  (** any positive count; no burst restrictions *)
}

type outcome = Ok_data of int array | Bus_error

type t

val create : Ec.Decoder.t -> t

val read : t -> message -> outcome
val write : t -> addr:int -> int array -> outcome
(** Rights and mapping are still checked (the decoder is shared with the
    timed models); everything else is abstracted away. *)

val messages : t -> int
val words_moved : t -> int
