(** Layer-3 to cycle-accurate bridge.

    The layer taxonomy's stated use of layer 1 includes "bridging layer
    three or layer two components to cycle accurate systems"; this bridge
    is that adapter: it splits an arbitrary-size layer-3 message into
    legal EC transactions (4-word bursts plus single words), pushes them
    through a timed port, and blocks the caller while the clock advances
    — so an untimed component can talk to any of the timed bus models and
    be priced by their energy models. *)

type t

val create : kernel:Sim.Kernel.t -> port:Ec.Port.t -> t

val read : t -> addr:int -> words:int -> Channel.outcome * int
(** [(outcome, cycles)]; cycles is the simulated time the message took. *)

val write : t -> addr:int -> int array -> Channel.outcome * int

val transactions : t -> int
(** Timed bus transactions the bridge has issued. *)
