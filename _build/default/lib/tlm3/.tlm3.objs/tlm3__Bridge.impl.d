lib/tlm3/bridge.ml: Array Channel Ec Sim
