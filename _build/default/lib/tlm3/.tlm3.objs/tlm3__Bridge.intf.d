lib/tlm3/bridge.mli: Channel Ec Sim
