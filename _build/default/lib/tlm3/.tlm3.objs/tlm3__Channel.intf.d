lib/tlm3/channel.mli: Ec
