lib/tlm3/channel.ml: Array Ec
