(** Two-pass assembler for the {!Isa} instruction set.

    The assembly test programs of the paper's verification flow are kept
    as text; this assembler turns them into ROM images.

    Syntax, one statement per line, [#] starts a comment:
    {v
    start:  addi r1, r0, 10      # labels end with ':'
    loop:   lw   r2, 4(r3)       # loads/stores: off(base)
            beq  r1, r2, loop    # branch targets: label or word offset
            li   r4, 0x12345678  # pseudo: lui+ori (always two words)
            la   r4, table       # pseudo: address of label
            move r4, r2          # pseudo: add r4, r2, r0
            b    loop            # pseudo: beq r0, r0, loop
            j    start
    table:  .word 0xdeadbeef     # literal data word
            .space 16            # zero-filled bytes (multiple of 4)
            .org  0x40           # zero-fill up to a byte address
    v}

    Interrupt instructions: [ei], [di], [eret] (see {!Cpu}). *)

type program = {
  origin : int;  (** byte address the image is linked at *)
  words : int array;  (** instruction/data words *)
  labels : (string * int) list;  (** label name to byte address *)
}

exception Error of string
(** Raised with a message naming the offending line. *)

val assemble : ?origin:int -> string -> program
(** @raise Error on any syntax or range problem. *)

val assemble_lines : ?origin:int -> string list -> program

val label_addr : program -> string -> int
(** @raise Not_found if the label is not defined. *)

val disassemble : ?origin:int -> int array -> string list
(** Best-effort listing; data words appear as [.word]. *)
