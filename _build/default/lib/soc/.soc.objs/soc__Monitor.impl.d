lib/soc/monitor.ml: Ec List Sim
