lib/soc/trng.mli: Ec Power Sim
