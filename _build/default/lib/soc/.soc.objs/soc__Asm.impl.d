lib/soc/asm.ml: Array Hashtbl Isa List Printf String
