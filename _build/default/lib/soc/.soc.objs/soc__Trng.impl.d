lib/soc/trng.ml: Ec Power Sim
