lib/soc/memory.mli: Asm Ec Power Sim
