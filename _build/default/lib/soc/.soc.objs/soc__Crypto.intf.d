lib/soc/crypto.mli: Ec Power Sim
