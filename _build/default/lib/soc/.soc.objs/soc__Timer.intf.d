lib/soc/timer.mli: Ec Power Sim
