lib/soc/trace_master.mli: Ec Sim
