lib/soc/trace_master.ml: Ec Hashtbl List Sim
