lib/soc/dma.mli: Ec Power Sim
