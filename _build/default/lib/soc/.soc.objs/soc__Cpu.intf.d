lib/soc/cpu.mli: Ec Sim
