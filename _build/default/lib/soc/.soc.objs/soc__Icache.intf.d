lib/soc/icache.mli: Ec Power Sim
