lib/soc/crypto.ml: Array Ec Power Sim
