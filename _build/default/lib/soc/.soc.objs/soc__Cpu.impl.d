lib/soc/cpu.ml: Array Ec Isa Sim
