lib/soc/asm.mli:
