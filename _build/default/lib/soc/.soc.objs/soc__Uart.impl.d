lib/soc/uart.ml: Buffer Char Ec Power Queue Sim
