lib/soc/uart.mli: Ec Power Sim
