lib/soc/isa.mli:
