lib/soc/timer.ml: Array Ec Power Sim
