lib/soc/intc.mli: Ec Power Sim
