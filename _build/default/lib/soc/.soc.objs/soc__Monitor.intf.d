lib/soc/monitor.mli: Ec Sim
