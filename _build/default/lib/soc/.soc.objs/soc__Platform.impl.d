lib/soc/platform.ml: Asm Crypto Dma Ec Intc List Memory Power Printf Timer Trng Uart
