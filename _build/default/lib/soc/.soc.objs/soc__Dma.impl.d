lib/soc/dma.ml: Array Ec Power Sim
