lib/soc/memory.ml: Array Asm Bytes Ec Int32 Power Sim
