lib/soc/isa.ml: Printf
