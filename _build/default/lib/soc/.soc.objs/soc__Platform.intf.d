lib/soc/platform.mli: Asm Crypto Dma Ec Intc Memory Power Sim Timer Trng Uart
