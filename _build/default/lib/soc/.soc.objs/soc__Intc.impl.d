lib/soc/intc.ml: Ec Power Sim
