lib/soc/icache.ml: Array Ec Hashtbl Power Sim
