type program = {
  origin : int;
  words : int array;
  labels : (string * int) list;
}

exception Error of string

let error lineno fmt =
  Printf.ksprintf (fun msg -> raise (Error (Printf.sprintf "line %d: %s" lineno msg))) fmt

(* A statement after pass 1: its size is known, its encoding may still
   need label resolution in pass 2. *)
type stmt =
  | Instr of Isa.t
  | Branch of string * (Isa.reg * Isa.reg) * string  (* mnemonic, regs, label *)
  | Jump of string * string  (* j/jal, label *)
  | La of Isa.reg * string
  | Li of Isa.reg * int
  | Word of int
  | Space of int  (* words *)
  | Org of int  (* byte address; resolved to a Space in pass 1 *)

let stmt_words = function
  | Instr _ | Branch _ | Jump _ | Word _ -> 1
  | La _ | Li _ -> 2
  | Space n -> n
  | Org _ -> assert false  (* rewritten before sizing *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_int lineno s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> error lineno "bad integer %S" s

let parse_reg lineno s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && (s.[0] = 'r' || s.[0] = 'R') then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some r when r >= 0 && r <= 31 -> r
    | Some _ | None -> error lineno "bad register %S" s
  else error lineno "bad register %S" s

(* Either "imm(base)" or "imm" / label is rejected for memory operands. *)
let parse_mem lineno s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let off = if i = 0 then 0 else parse_int lineno (String.sub s 0 i) in
    let base = parse_reg lineno (String.sub s (i + 1) (String.length s - i - 2)) in
    (off, base)
  | Some _ | None -> error lineno "bad memory operand %S (want off(base))" s

let is_label_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_label s =
  String.length s > 0
  && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all is_label_char s

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_statement lineno mnemonic operands =
  let reg = parse_reg lineno and int_ = parse_int lineno in
  let mem = parse_mem lineno in
  let three f = function
    | [ a; b; c ] -> Instr (f (reg a) (reg b) (reg c))
    | _ -> error lineno "%s wants 3 registers" mnemonic
  in
  let shift f = function
    | [ a; b; c ] -> Instr (f (reg a) (reg b) (int_ c))
    | _ -> error lineno "%s wants rd, rs, shamt" mnemonic
  in
  let immediate f = function
    | [ a; b; c ] -> Instr (f (reg a) (reg b) (int_ c))
    | _ -> error lineno "%s wants rd, rs, imm" mnemonic
  in
  let load_store f = function
    | [ a; b ] ->
      let off, base = mem b in
      Instr (f (reg a) off base)
    | _ -> error lineno "%s wants rd, off(base)" mnemonic
  in
  let branch f = function
    | [ a; b; c ] ->
      if is_label c then Branch (mnemonic, (reg a, reg b), c)
      else Instr (f (reg a) (reg b) (int_ c))
    | _ -> error lineno "%s wants ra, rb, target" mnemonic
  in
  match mnemonic, operands with
  | "nop", [] -> Instr Isa.Nop
  | "halt", [] -> Instr Isa.Halt
  | "ei", [] -> Instr Isa.Ei
  | "di", [] -> Instr Isa.Di
  | "eret", [] -> Instr Isa.Eret
  | "wfi", [] -> Instr Isa.Wfi
  | "add", ops -> three (fun a b c -> Isa.Add (a, b, c)) ops
  | "sub", ops -> three (fun a b c -> Isa.Sub (a, b, c)) ops
  | "and", ops -> three (fun a b c -> Isa.And (a, b, c)) ops
  | "or", ops -> three (fun a b c -> Isa.Or (a, b, c)) ops
  | "xor", ops -> three (fun a b c -> Isa.Xor (a, b, c)) ops
  | "slt", ops -> three (fun a b c -> Isa.Slt (a, b, c)) ops
  | "mul", ops -> three (fun a b c -> Isa.Mul (a, b, c)) ops
  | "sll", ops -> shift (fun a b c -> Isa.Sll (a, b, c)) ops
  | "srl", ops -> shift (fun a b c -> Isa.Srl (a, b, c)) ops
  | "addi", ops -> immediate (fun a b c -> Isa.Addi (a, b, c)) ops
  | "andi", ops -> immediate (fun a b c -> Isa.Andi (a, b, c)) ops
  | "ori", ops -> immediate (fun a b c -> Isa.Ori (a, b, c)) ops
  | "xori", ops -> immediate (fun a b c -> Isa.Xori (a, b, c)) ops
  | "slti", ops -> immediate (fun a b c -> Isa.Slti (a, b, c)) ops
  | "lui", [ a; b ] -> Instr (Isa.Lui (reg a, int_ b))
  | "lw", ops -> load_store (fun a o b -> Isa.Lw (a, o, b)) ops
  | "lh", ops -> load_store (fun a o b -> Isa.Lh (a, o, b)) ops
  | "lhu", ops -> load_store (fun a o b -> Isa.Lhu (a, o, b)) ops
  | "lb", ops -> load_store (fun a o b -> Isa.Lb (a, o, b)) ops
  | "lbu", ops -> load_store (fun a o b -> Isa.Lbu (a, o, b)) ops
  | "sw", ops -> load_store (fun a o b -> Isa.Sw (a, o, b)) ops
  | "sh", ops -> load_store (fun a o b -> Isa.Sh (a, o, b)) ops
  | "sb", ops -> load_store (fun a o b -> Isa.Sb (a, o, b)) ops
  | "lw4", ops -> load_store (fun a o b -> Isa.Lw4 (a, o, b)) ops
  | "sw4", ops -> load_store (fun a o b -> Isa.Sw4 (a, o, b)) ops
  | "beq", ops -> branch (fun a b o -> Isa.Beq (a, b, o)) ops
  | "bne", ops -> branch (fun a b o -> Isa.Bne (a, b, o)) ops
  | "blt", ops -> branch (fun a b o -> Isa.Blt (a, b, o)) ops
  | "bge", ops -> branch (fun a b o -> Isa.Bge (a, b, o)) ops
  | "b", [ target ] ->
    if is_label target then Branch ("beq", (0, 0), target)
    else Instr (Isa.Beq (0, 0, int_ target))
  | "j", [ target ] ->
    if is_label target then Jump ("j", target) else Instr (Isa.J (int_ target))
  | "jal", [ target ] ->
    if is_label target then Jump ("jal", target)
    else Instr (Isa.Jal (int_ target))
  | "jr", [ s ] -> Instr (Isa.Jr (reg s))
  | "move", [ a; b ] -> Instr (Isa.Add (reg a, reg b, 0))
  | "li", [ a; b ] -> Li (reg a, int_ b)
  | "la", [ a; b ] ->
    if is_label b then La (reg a, b) else Li (reg a, int_ b)
  | ".word", [ v ] -> Word (int_ v land 0xFFFFFFFF)
  | ".space", [ n ] ->
    let bytes = int_ n in
    if bytes <= 0 || bytes mod 4 <> 0 then
      error lineno ".space wants a positive multiple of 4";
    Space (bytes / 4)
  | ".org", [ a ] -> Org (int_ a)
  | _ -> error lineno "cannot parse %S with %d operand(s)" mnemonic (List.length operands)

let assemble_lines ?(origin = 0) lines =
  if origin mod 4 <> 0 then raise (Error "origin not word aligned");
  (* Pass 1: parse, collect statements and label addresses. *)
  let stmts = ref [] and labels = Hashtbl.create 16 and word_count = ref 0 in
  let handle_line lineno raw =
    let line = String.trim (strip_comment raw) in
    let line =
      match String.index_opt line ':' with
      | Some i ->
        let name = String.trim (String.sub line 0 i) in
        if not (is_label name) then error lineno "bad label %S" name;
        if Hashtbl.mem labels name then error lineno "duplicate label %S" name;
        Hashtbl.add labels name (origin + (4 * !word_count));
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      | None -> line
    in
    if line <> "" then begin
      let mnemonic, rest =
        match String.index_opt line ' ' with
        | Some i ->
          ( String.lowercase_ascii (String.sub line 0 i),
            String.sub line i (String.length line - i) )
        | None -> (String.lowercase_ascii line, "")
      in
      let stmt =
        match parse_statement lineno mnemonic (split_operands rest) with
        | Org addr ->
          (* Advance the location counter with zero fill. *)
          if addr mod 4 <> 0 then error lineno ".org %#x not word aligned" addr;
          let target = (addr - origin) / 4 in
          if target < !word_count then
            error lineno ".org %#x behind location counter" addr;
          Space (target - !word_count)
        | stmt -> stmt
      in
      if stmt <> Space 0 then begin
        stmts := (lineno, !word_count, stmt) :: !stmts;
        word_count := !word_count + stmt_words stmt
      end
    end
  in
  List.iteri (fun i raw -> handle_line (i + 1) raw) lines;
  let stmts = List.rev !stmts in
  (* Pass 2: resolve labels and encode. *)
  let words = Array.make !word_count 0 in
  let find_label lineno name =
    match Hashtbl.find_opt labels name with
    | Some addr -> addr
    | None -> error lineno "undefined label %S" name
  in
  let emit (lineno, index, stmt) =
    let here_pc = origin + (4 * index) in
    match stmt with
    | Instr i -> words.(index) <- Isa.encode i
    | Word v -> words.(index) <- v
    | Space n -> Array.fill words index n 0
    | Org _ -> assert false  (* rewritten to Space in pass 1 *)
    | Branch (mnemonic, (a, b), label) ->
      let target = find_label lineno label in
      let offset = (target - (here_pc + 4)) / 4 in
      let instr =
        match mnemonic with
        | "beq" -> Isa.Beq (a, b, offset)
        | "bne" -> Isa.Bne (a, b, offset)
        | "blt" -> Isa.Blt (a, b, offset)
        | "bge" -> Isa.Bge (a, b, offset)
        | _ -> assert false
      in
      (try words.(index) <- Isa.encode instr
       with Invalid_argument _ -> error lineno "branch to %S out of range" label)
    | Jump (mnemonic, label) ->
      let target = find_label lineno label lsr 2 in
      let instr = match mnemonic with
        | "j" -> Isa.J target
        | "jal" -> Isa.Jal target
        | _ -> assert false
      in
      (try words.(index) <- Isa.encode instr
       with Invalid_argument _ -> error lineno "jump to %S out of range" label)
    | La (rd, label) ->
      let v = find_label lineno label in
      words.(index) <- Isa.encode (Isa.Lui (rd, (v lsr 16) land 0xFFFF));
      words.(index + 1) <- Isa.encode (Isa.Ori (rd, rd, v land 0xFFFF))
    | Li (rd, v) ->
      let v = v land 0xFFFFFFFF in
      words.(index) <- Isa.encode (Isa.Lui (rd, (v lsr 16) land 0xFFFF));
      words.(index + 1) <- Isa.encode (Isa.Ori (rd, rd, v land 0xFFFF))
  in
  List.iter emit stmts;
  { origin; words; labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [] }

let assemble ?origin text =
  assemble_lines ?origin (String.split_on_char '\n' text)

let label_addr p name = List.assoc name p.labels

let disassemble ?(origin = 0) words =
  Array.to_list
    (Array.mapi
       (fun i w ->
         let text =
           match Isa.decode w with
           | instr -> Isa.to_string instr
           | exception Failure _ -> Printf.sprintf ".word %#x" w
         in
         Printf.sprintf "%#08x: %s" (origin + (4 * i)) text)
       words)
