type reg = int

type t =
  | Nop
  | Halt
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Slt of reg * reg * reg
  | Sll of reg * reg * int
  | Srl of reg * reg * int
  | Mul of reg * reg * reg
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Lui of reg * int
  | Slti of reg * reg * int
  | Lw of reg * int * reg
  | Lh of reg * int * reg
  | Lhu of reg * int * reg
  | Lb of reg * int * reg
  | Lbu of reg * int * reg
  | Sw of reg * int * reg
  | Sh of reg * int * reg
  | Sb of reg * int * reg
  | Lw4 of reg * int * reg
  | Sw4 of reg * int * reg
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | J of int
  | Jal of int
  | Jr of reg
  | Ei
  | Di
  | Eret
  | Wfi

(* Opcode assignments. *)
let op_nop = 0
let op_halt = 1
let op_add = 2
let op_sub = 3
let op_and = 4
let op_or = 5
let op_xor = 6
let op_slt = 7
let op_sll = 8
let op_srl = 9
let op_mul = 10
let op_addi = 16
let op_andi = 17
let op_ori = 18
let op_xori = 19
let op_lui = 20
let op_slti = 21
let op_lw = 24
let op_lh = 25
let op_lhu = 26
let op_lb = 27
let op_lbu = 28
let op_sw = 29
let op_sh = 30
let op_sb = 31
let op_lw4 = 34
let op_sw4 = 35
let op_beq = 40
let op_bne = 41
let op_blt = 42
let op_bge = 43
let op_j = 48
let op_jal = 49
let op_jr = 50
let op_ei = 51
let op_di = 52
let op_eret = 53
let op_wfi = 54

let check_reg r =
  if r < 0 || r > 31 then invalid_arg (Printf.sprintf "Soc.Isa: register %d" r)

let check_shamt s =
  if s < 0 || s > 31 then invalid_arg (Printf.sprintf "Soc.Isa: shamt %d" s)

let check_imm16 v =
  if v < -32768 || v > 32767 then
    invalid_arg (Printf.sprintf "Soc.Isa: immediate %d" v)

let check_uimm16 v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Soc.Isa: unsigned immediate %d" v)

let check_target v =
  if v < 0 || v >= 1 lsl 26 then
    invalid_arg (Printf.sprintf "Soc.Isa: jump target %#x" v)

let r3 op rd rs rt =
  check_reg rd;
  check_reg rs;
  check_reg rt;
  (op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor (rt lsl 11)

let shift op rd rs shamt =
  check_reg rd;
  check_reg rs;
  check_shamt shamt;
  (op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor shamt

let imm_i op rd rs imm =
  check_reg rd;
  check_reg rs;
  check_imm16 imm;
  (op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor (imm land 0xFFFF)

let imm_u op rd rs imm =
  check_reg rd;
  check_reg rs;
  check_uimm16 imm;
  (op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor imm

let jump op target =
  check_target target;
  (op lsl 26) lor target

let encode = function
  | Nop -> op_nop lsl 26
  | Halt -> op_halt lsl 26
  | Add (d, s, t) -> r3 op_add d s t
  | Sub (d, s, t) -> r3 op_sub d s t
  | And (d, s, t) -> r3 op_and d s t
  | Or (d, s, t) -> r3 op_or d s t
  | Xor (d, s, t) -> r3 op_xor d s t
  | Slt (d, s, t) -> r3 op_slt d s t
  | Sll (d, s, sh) -> shift op_sll d s sh
  | Srl (d, s, sh) -> shift op_srl d s sh
  | Mul (d, s, t) -> r3 op_mul d s t
  | Addi (d, s, i) -> imm_i op_addi d s i
  | Andi (d, s, i) -> imm_u op_andi d s i
  | Ori (d, s, i) -> imm_u op_ori d s i
  | Xori (d, s, i) -> imm_u op_xori d s i
  | Lui (d, i) -> imm_u op_lui d 0 i
  | Slti (d, s, i) -> imm_i op_slti d s i
  | Lw (d, off, base) -> imm_i op_lw d base off
  | Lh (d, off, base) -> imm_i op_lh d base off
  | Lhu (d, off, base) -> imm_i op_lhu d base off
  | Lb (d, off, base) -> imm_i op_lb d base off
  | Lbu (d, off, base) -> imm_i op_lbu d base off
  | Sw (d, off, base) -> imm_i op_sw d base off
  | Sh (d, off, base) -> imm_i op_sh d base off
  | Sb (d, off, base) -> imm_i op_sb d base off
  | Lw4 (d, off, base) -> imm_i op_lw4 d base off
  | Sw4 (d, off, base) -> imm_i op_sw4 d base off
  | Beq (a, b, off) -> imm_i op_beq a b off
  | Bne (a, b, off) -> imm_i op_bne a b off
  | Blt (a, b, off) -> imm_i op_blt a b off
  | Bge (a, b, off) -> imm_i op_bge a b off
  | J target -> jump op_j target
  | Jal target -> jump op_jal target
  | Jr s ->
    check_reg s;
    (op_jr lsl 26) lor (s lsl 16)
  | Ei -> op_ei lsl 26
  | Di -> op_di lsl 26
  | Eret -> op_eret lsl 26
  | Wfi -> op_wfi lsl 26

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode word =
  let op = (word lsr 26) land 0x3F in
  let rd = (word lsr 21) land 0x1F in
  let rs = (word lsr 16) land 0x1F in
  let rt = (word lsr 11) land 0x1F in
  let imm = word land 0xFFFF in
  let simm = sign16 imm in
  let shamt = word land 0x1F in
  let target = word land 0x3FFFFFF in
  if op = op_nop then Nop
  else if op = op_halt then Halt
  else if op = op_add then Add (rd, rs, rt)
  else if op = op_sub then Sub (rd, rs, rt)
  else if op = op_and then And (rd, rs, rt)
  else if op = op_or then Or (rd, rs, rt)
  else if op = op_xor then Xor (rd, rs, rt)
  else if op = op_slt then Slt (rd, rs, rt)
  else if op = op_sll then Sll (rd, rs, shamt)
  else if op = op_srl then Srl (rd, rs, shamt)
  else if op = op_mul then Mul (rd, rs, rt)
  else if op = op_addi then Addi (rd, rs, simm)
  else if op = op_andi then Andi (rd, rs, imm)
  else if op = op_ori then Ori (rd, rs, imm)
  else if op = op_xori then Xori (rd, rs, imm)
  else if op = op_lui then Lui (rd, imm)
  else if op = op_slti then Slti (rd, rs, simm)
  else if op = op_lw then Lw (rd, simm, rs)
  else if op = op_lh then Lh (rd, simm, rs)
  else if op = op_lhu then Lhu (rd, simm, rs)
  else if op = op_lb then Lb (rd, simm, rs)
  else if op = op_lbu then Lbu (rd, simm, rs)
  else if op = op_sw then Sw (rd, simm, rs)
  else if op = op_sh then Sh (rd, simm, rs)
  else if op = op_sb then Sb (rd, simm, rs)
  else if op = op_lw4 then Lw4 (rd, simm, rs)
  else if op = op_sw4 then Sw4 (rd, simm, rs)
  else if op = op_beq then Beq (rd, rs, simm)
  else if op = op_bne then Bne (rd, rs, simm)
  else if op = op_blt then Blt (rd, rs, simm)
  else if op = op_bge then Bge (rd, rs, simm)
  else if op = op_j then J target
  else if op = op_jal then Jal target
  else if op = op_jr then Jr rs
  else if op = op_ei then Ei
  else if op = op_di then Di
  else if op = op_eret then Eret
  else if op = op_wfi then Wfi
  else failwith (Printf.sprintf "Soc.Isa.decode: unknown opcode %d" op)

let to_string =
  let r = Printf.sprintf "r%d" in
  function
  | Nop -> "nop"
  | Halt -> "halt"
  | Add (d, s, t) -> Printf.sprintf "add %s, %s, %s" (r d) (r s) (r t)
  | Sub (d, s, t) -> Printf.sprintf "sub %s, %s, %s" (r d) (r s) (r t)
  | And (d, s, t) -> Printf.sprintf "and %s, %s, %s" (r d) (r s) (r t)
  | Or (d, s, t) -> Printf.sprintf "or %s, %s, %s" (r d) (r s) (r t)
  | Xor (d, s, t) -> Printf.sprintf "xor %s, %s, %s" (r d) (r s) (r t)
  | Slt (d, s, t) -> Printf.sprintf "slt %s, %s, %s" (r d) (r s) (r t)
  | Sll (d, s, sh) -> Printf.sprintf "sll %s, %s, %d" (r d) (r s) sh
  | Srl (d, s, sh) -> Printf.sprintf "srl %s, %s, %d" (r d) (r s) sh
  | Mul (d, s, t) -> Printf.sprintf "mul %s, %s, %s" (r d) (r s) (r t)
  | Addi (d, s, i) -> Printf.sprintf "addi %s, %s, %d" (r d) (r s) i
  | Andi (d, s, i) -> Printf.sprintf "andi %s, %s, %d" (r d) (r s) i
  | Ori (d, s, i) -> Printf.sprintf "ori %s, %s, %d" (r d) (r s) i
  | Xori (d, s, i) -> Printf.sprintf "xori %s, %s, %d" (r d) (r s) i
  | Lui (d, i) -> Printf.sprintf "lui %s, %d" (r d) i
  | Slti (d, s, i) -> Printf.sprintf "slti %s, %s, %d" (r d) (r s) i
  | Lw (d, off, b) -> Printf.sprintf "lw %s, %d(%s)" (r d) off (r b)
  | Lh (d, off, b) -> Printf.sprintf "lh %s, %d(%s)" (r d) off (r b)
  | Lhu (d, off, b) -> Printf.sprintf "lhu %s, %d(%s)" (r d) off (r b)
  | Lb (d, off, b) -> Printf.sprintf "lb %s, %d(%s)" (r d) off (r b)
  | Lbu (d, off, b) -> Printf.sprintf "lbu %s, %d(%s)" (r d) off (r b)
  | Sw (d, off, b) -> Printf.sprintf "sw %s, %d(%s)" (r d) off (r b)
  | Sh (d, off, b) -> Printf.sprintf "sh %s, %d(%s)" (r d) off (r b)
  | Sb (d, off, b) -> Printf.sprintf "sb %s, %d(%s)" (r d) off (r b)
  | Lw4 (d, off, b) -> Printf.sprintf "lw4 %s, %d(%s)" (r d) off (r b)
  | Sw4 (d, off, b) -> Printf.sprintf "sw4 %s, %d(%s)" (r d) off (r b)
  | Beq (a, b, off) -> Printf.sprintf "beq %s, %s, %d" (r a) (r b) off
  | Bne (a, b, off) -> Printf.sprintf "bne %s, %s, %d" (r a) (r b) off
  | Blt (a, b, off) -> Printf.sprintf "blt %s, %s, %d" (r a) (r b) off
  | Bge (a, b, off) -> Printf.sprintf "bge %s, %s, %d" (r a) (r b) off
  | J t -> Printf.sprintf "j %#x" t
  | Jal t -> Printf.sprintf "jal %#x" t
  | Jr s -> Printf.sprintf "jr %s" (r s)
  | Ei -> "ei"
  | Di -> "di"
  | Eret -> "eret"
  | Wfi -> "wfi"

let is_branch = function
  | Beq _ | Bne _ | Blt _ | Bge _ | J _ | Jal _ | Jr _ | Eret -> true
  | Nop | Halt | Add _ | Sub _ | And _ | Or _ | Xor _ | Slt _ | Sll _ | Srl _
  | Mul _ | Addi _ | Andi _ | Ori _ | Xori _ | Lui _ | Slti _ | Lw _ | Lh _
  | Lhu _ | Lb _ | Lbu _ | Sw _ | Sh _ | Sb _ | Lw4 _ | Sw4 _ | Ei | Di
  | Wfi ->
    false

let writes_link = function Jal _ -> true | _ -> false
