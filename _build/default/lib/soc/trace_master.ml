type mode = [ `Serial | `Pipelined ]

type t = {
  port : Ec.Port.t;
  mode : mode;
  keep_results : bool;
  ids : Ec.Txn.Id_gen.gen;
  mutable remaining : Ec.Trace.item list;
  mutable gap_left : int;
  mutable to_submit : Ec.Txn.t option;  (* instantiated, not yet accepted *)
  outstanding : (int, Ec.Txn.t) Hashtbl.t;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable results_rev : Ec.Txn.t list;
}

let finished t =
  t.remaining = [] && t.to_submit = None && Hashtbl.length t.outstanding = 0

let record_completion t txn outcome =
  t.completed <- t.completed + 1;
  (match outcome with
  | Ec.Port.Failed -> t.errors <- t.errors + 1
  | Ec.Port.Done | Ec.Port.Pending -> ());
  if t.keep_results then t.results_rev <- txn :: t.results_rev

(* Collect finished outstanding transactions. *)
let sweep t =
  let done_ids =
    Hashtbl.fold
      (fun id txn acc ->
        match Ec.Port.take t.port id with
        | Ec.Port.Pending -> acc
        | (Ec.Port.Done | Ec.Port.Failed) as outcome ->
          record_completion t txn outcome;
          id :: acc)
      t.outstanding []
  in
  List.iter (Hashtbl.remove t.outstanding) done_ids

(* Load the next trace item into the submit slot, arming its gap. *)
let advance t =
  match t.remaining with
  | [] -> ()
  | item :: rest ->
    t.remaining <- rest;
    let it = Ec.Trace.instantiate t.ids item in
    t.gap_left <- it.Ec.Trace.gap;
    t.to_submit <- Some it.Ec.Trace.txn

let try_submit t =
  match t.to_submit with
  | None -> ()
  | Some txn ->
    if t.gap_left > 0 then t.gap_left <- t.gap_left - 1
    else if t.port.Ec.Port.try_submit txn then begin
      Hashtbl.replace t.outstanding txn.Ec.Txn.id txn;
      t.issued <- t.issued + 1;
      t.to_submit <- None;
      advance t
    end

let step t _kernel =
  sweep t;
  match t.mode with
  | `Pipelined -> try_submit t
  | `Serial -> if Hashtbl.length t.outstanding = 0 then try_submit t

let create ~kernel ~port ?(mode = `Pipelined) ?(keep_results = false) trace =
  let t =
    {
      port;
      mode;
      keep_results;
      ids = Ec.Txn.Id_gen.create ();
      remaining = trace;
      gap_left = 0;
      to_submit = None;
      outstanding = Hashtbl.create 8;
      issued = 0;
      completed = 0;
      errors = 0;
      results_rev = [];
    }
  in
  advance t;
  Sim.Kernel.on_rising kernel ~name:"trace-master" (step t);
  t

let issued t = t.issued
let completed t = t.completed
let errors t = t.errors
let results t = List.rev t.results_rev

let run t ~kernel ?(max_cycles = 2_000_000) () =
  Sim.Kernel.run_until kernel ~max_cycles (fun () -> finished t)
