(** Instruction set of the small RISC core standing in for the MIPS 4Ksc.

    A 32-bit load/store architecture with 32 general registers ([r0] wired
    to zero, [r31] the link register).  It exists to generate realistic
    instruction-fetch and data traffic on the EC bus — including the
    merge-pattern widths (byte/half/word accesses) and burst transfers
    (the [Lw4]/[Sw4] four-word instructions) — and to run the assembly
    test programs whose traced transactions feed the verification flow.

    Encoding: [op] in bits 31..26, [rd] 25..21, [rs] 20..16, [rt] 15..11,
    [imm] 15..0 (sign-extended unless noted), jump target in 25..0. *)

type reg = int
(** Register index 0..31. *)

type t =
  | Nop
  | Halt
  | Add of reg * reg * reg  (** [rd <- rs + rt] *)
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Slt of reg * reg * reg  (** signed set-on-less-than *)
  | Sll of reg * reg * int  (** [rd <- rs lsl shamt] *)
  | Srl of reg * reg * int
  | Mul of reg * reg * reg  (** low 32 bits of the product *)
  | Addi of reg * reg * int
  | Andi of reg * reg * int  (** zero-extended immediate *)
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Lui of reg * int
  | Slti of reg * reg * int
  | Lw of reg * int * reg  (** [rd <- mem32(rs + imm)] *)
  | Lh of reg * int * reg  (** sign-extending halfword load *)
  | Lhu of reg * int * reg
  | Lb of reg * int * reg
  | Lbu of reg * int * reg
  | Sw of reg * int * reg  (** [mem32(rs + imm) <- rd] *)
  | Sh of reg * int * reg
  | Sb of reg * int * reg
  | Lw4 of reg * int * reg  (** burst: [rd..rd+3 <- mem32x4(rs + imm)] *)
  | Sw4 of reg * int * reg  (** burst store of [rd..rd+3] *)
  | Beq of reg * reg * int  (** branch offset in words, relative to the
                                instruction after the branch *)
  | Bne of reg * reg * int
  | Blt of reg * reg * int  (** signed *)
  | Bge of reg * reg * int
  | J of int  (** absolute word address *)
  | Jal of int  (** link in r31 *)
  | Jr of reg
  | Ei  (** enable interrupts *)
  | Di  (** disable interrupts *)
  | Eret  (** return from interrupt: pc <- epc, re-enable *)
  | Wfi
      (** wait for interrupt: the core stops fetching until the interrupt
          request wire asserts; it then vectors if interrupts are enabled,
          or simply continues *)

val encode : t -> int
(** 32-bit instruction word.
    @raise Invalid_argument on field overflow (register, shift amount,
    immediate or target out of range). *)

val decode : int -> t
(** @raise Failure on an unknown opcode. *)

val to_string : t -> string
(** Assembly rendering accepted back by the assembler. *)

val is_branch : t -> bool
val writes_link : t -> bool
