type ctx = int

exception Security_violation of { from_ctx : int; obj : int }

type entry = { owner : ctx; mutable shared : bool }

type t = {
  objects : (int, entry) Hashtbl.t;
  mutable next_ctx : int;
  mutable denied : int;
}

let jcre = 0

let create () = { objects = Hashtbl.create 32; next_ctx = 1; denied = 0 }

let new_context t =
  let c = t.next_ctx in
  t.next_ctx <- c + 1;
  c

let context_count t = t.next_ctx - 1

let register_object t ~owner ~obj =
  if Hashtbl.mem t.objects obj then
    invalid_arg (Printf.sprintf "Jcvm.Firewall: object %d already registered" obj);
  Hashtbl.replace t.objects obj { owner; shared = false }

let entry t obj =
  match Hashtbl.find_opt t.objects obj with
  | Some e -> e
  | None ->
    invalid_arg (Printf.sprintf "Jcvm.Firewall: unregistered object %d" obj)

let share t ~obj = (entry t obj).shared <- true

let accessible t ~from_ctx ~obj =
  let e = entry t obj in
  from_ctx = jcre || e.owner = from_ctx || e.shared

let check t ~from_ctx ~obj =
  if not (accessible t ~from_ctx ~obj) then begin
    t.denied <- t.denied + 1;
    raise (Security_violation { from_ctx; obj })
  end

let owner t ~obj = Option.map (fun e -> e.owner) (Hashtbl.find_opt t.objects obj)
let denied_accesses t = t.denied
