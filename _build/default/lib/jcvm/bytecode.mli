(** Bytecode subset of the Java Card virtual machine.

    Java Card is 16-bit oriented: the operand stack, locals, statics and
    array elements hold signed shorts.  Branch targets are absolute
    instruction indices within the method.  The subset covers the stack,
    arithmetic, local/static variable, comparison, branch and short-array
    instruction groups — enough to express realistic applets whose only
    external dependency is the operand stack interface that the HW/SW
    exploration refines onto the bus. *)

type t =
  | Nop
  | Pop
  | Dup
  | Swap
  | Sspush of int  (** push immediate short *)
  | Bspush of int  (** push sign-extended byte *)
  | Sadd
  | Ssub
  | Smul
  | Sdiv  (** raises on division by zero *)
  | Sneg
  | Sand
  | Sor
  | Sxor
  | Sshl
  | Sshr  (** arithmetic shift right *)
  | Sload of int
  | Sstore of int
  | Sinc of int * int  (** local += immediate, no stack traffic *)
  | Goto of int
  | Ifeq of int  (** pop, branch if zero *)
  | Ifne of int
  | Iflt of int
  | Ifge of int
  | If_scmpeq of int  (** pop b, pop a, branch if a = b *)
  | If_scmpne of int
  | If_scmplt of int
  | If_scmpge of int
  | Getstatic of int
  | Putstatic of int
  | Newarray  (** pop length, push reference *)
  | Saload  (** pop index, pop ref, push element *)
  | Sastore  (** pop value, pop index, pop ref *)
  | Arraylength  (** pop ref, push length *)
  | Invokestatic of int
      (** call method [i] of the program's method table; arguments are
          passed on the operand stack (the callee pops them) *)
  | Sreturn  (** pop the result: return it to the caller's stack, or stop *)
  | Return  (** return without result, or stop *)

val to_string : t -> string

val encode : t array -> Bytes.t
(** CAP-style flat byte serialization (opcode byte plus big-endian
    operands).
    @raise Invalid_argument on an operand out of range. *)

val decode : Bytes.t -> t array
(** Inverse of {!encode}. @raise Failure on a malformed stream. *)

val max_locals : t array -> int
(** One past the highest local index used (0 when none). *)

val validate : t array -> (unit, string) Result.t
(** Static checks: branch targets in range, local/static indices
    non-negative, program ends with a return or an unconditional
    branch. *)
