(** The master adapter of the refined Java Card model (Figure 7b).

    "The bytecode interpreter invokes the same interface functions as in
    the pure functional model.  The master adapter translates them into
    bus transactions." — each push/pop becomes one or more blocking bus
    transactions towards the {!Hw_stack} special function registers,
    according to the interface {!Configs.t}; the adapter steps the
    simulation kernel until each transaction completes, bridging the
    untimed interpreter to the timed bus.

    Software-side optimizations the configurations enable:
    - packed 32-bit transfers buffer one pushed short and move two per
      transaction (and symmetrically for pops);
    - a pop that hits the push buffer is served without bus traffic. *)

type t

val create : kernel:Sim.Kernel.t -> port:Ec.Port.t -> Configs.t -> t

val ops : t -> Stack_intf.ops
(** The operand-stack interface to hand to the interpreter.  [reset]
    clears the adapter buffers only (the hardware stack is expected
    fresh); [depth] is tracked locally, without bus traffic. *)

val flush : t -> unit
(** Forces a buffered packed push out to the hardware. *)

val transactions : t -> int
(** Bus transactions issued so far. *)

val logical_depth : t -> int
(** Stack depth including adapter buffers. *)
