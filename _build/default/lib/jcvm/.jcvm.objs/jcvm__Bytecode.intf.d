lib/jcvm/bytecode.mli: Bytes Result
