lib/jcvm/interp.ml: Array Bytecode Firewall List Memmgr Printf Soft_stack Stack_intf
