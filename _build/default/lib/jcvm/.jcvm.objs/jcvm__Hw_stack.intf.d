lib/jcvm/hw_stack.mli: Configs Ec
