lib/jcvm/memmgr.mli: Firewall
