lib/jcvm/firewall.mli:
