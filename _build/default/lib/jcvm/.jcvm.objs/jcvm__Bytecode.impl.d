lib/jcvm/bytecode.ml: Array Buffer Bytes List Printf
