lib/jcvm/firewall.ml: Hashtbl Option Printf
