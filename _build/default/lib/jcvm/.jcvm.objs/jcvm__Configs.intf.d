lib/jcvm/configs.mli: Ec Format
