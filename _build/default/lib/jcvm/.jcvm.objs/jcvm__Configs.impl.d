lib/jcvm/configs.ml: Ec Format Soc
