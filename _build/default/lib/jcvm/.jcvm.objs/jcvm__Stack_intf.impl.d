lib/jcvm/stack_intf.ml:
