lib/jcvm/applets.ml: Array Bytecode Hashtbl List
