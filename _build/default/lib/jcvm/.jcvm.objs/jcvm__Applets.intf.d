lib/jcvm/applets.mli: Bytecode
