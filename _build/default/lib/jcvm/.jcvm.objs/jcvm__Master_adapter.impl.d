lib/jcvm/master_adapter.ml: Array Configs Ec Sim Stack_intf
