lib/jcvm/interp.mli: Bytecode Firewall Memmgr Stack_intf
