lib/jcvm/soft_stack.mli: Stack_intf
