lib/jcvm/hw_stack.ml: Array Configs Ec List
