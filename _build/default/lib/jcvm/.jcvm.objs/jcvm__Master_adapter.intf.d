lib/jcvm/master_adapter.mli: Configs Ec Sim Stack_intf
