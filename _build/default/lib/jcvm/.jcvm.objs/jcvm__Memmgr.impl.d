lib/jcvm/memmgr.ml: Array Firewall Hashtbl Printf
