lib/jcvm/stack_intf.mli:
