lib/jcvm/soft_stack.ml: Array List Stack_intf
