(* The builder lists below read like bytecode listings; open the
   instruction constructors wholesale. *)
open Bytecode

type t = {
  name : string;
  program : Bytecode.t array;
  methods : Bytecode.t array array;
  statics : int array;
  expected : int option;
}

let method_table t = Array.append [| t.program |] t.methods

(* Tiny label-resolving builder so applets stay readable: [L] defines a
   label, [I] emits an instruction, [B] emits a branch to a label. *)
type piece =
  | L of string
  | I of Bytecode.t
  | B of (int -> Bytecode.t) * string

let build pieces =
  let labels = Hashtbl.create 16 in
  let index = ref 0 in
  List.iter
    (fun piece ->
      match piece with
      | L name ->
        if Hashtbl.mem labels name then
          invalid_arg ("Jcvm.Applets: duplicate label " ^ name);
        Hashtbl.replace labels name !index
      | I _ | B _ -> incr index)
    pieces;
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some i -> i
    | None -> invalid_arg ("Jcvm.Applets: undefined label " ^ name)
  in
  let emit = function
    | L _ -> None
    | I instr -> Some instr
    | B (make, name) -> Some (make (resolve name))
  in
  Array.of_list (List.filter_map emit pieces)

let wallet =
  let program =
    build
      [
        I (Sspush 0); I (Sstore 0);
        L "loop";
        I (Sload 0); I (Sspush 10); B ((fun l -> If_scmpge l), "end");
        (* balance += 25 *)
        I (Getstatic 0); I (Sspush 25); I Sadd; I (Putstatic 0);
        (* if balance >= 200 then balance -= 60 *)
        I (Getstatic 0); I (Sspush 200); B ((fun l -> If_scmplt l), "skip");
        I (Getstatic 0); I (Sspush 60); I Ssub; I (Putstatic 0);
        L "skip";
        I (Sinc (0, 1)); B ((fun l -> Goto l), "loop");
        L "end";
        I (Getstatic 0); I Sreturn;
      ]
  in
  { name = "wallet"; program; methods = [||]; statics = [| 100 |];
    expected = Some 170 }

let to_short v =
  let v = v land 0xFFFF in
  if v > 32767 then v - 65536 else v

let crc16_message = List.init 16 (fun i -> ((i * 31) + 7) land 0xFF)

let crc16_reference bytes =
  let crc = ref 0xFFFF in
  List.iter
    (fun b ->
      crc := (!crc lxor (b lsl 8)) land 0xFFFF;
      for _ = 1 to 8 do
        if !crc land 0x8000 <> 0 then crc := (!crc lsl 1) lxor 0x1021 land 0xFFFF
        else crc := !crc lsl 1
      done;
      crc := !crc land 0xFFFF)
    bytes;
  to_short !crc

let crc16 =
  let program =
    build
      [
        (* locals: 0 crc, 1 array ref, 2 fill index, 3 byte index, 4 bit *)
        I (Sspush 16); I Newarray; I (Sstore 1);
        I (Sspush 0); I (Sstore 2);
        L "fill";
        I (Sload 2); I (Sspush 16); B ((fun l -> If_scmpge l), "fill_done");
        I (Sload 1); I (Sload 2);
        I (Sload 2); I (Sspush 31); I Smul; I (Sspush 7); I Sadd;
        I (Sspush 255); I Sand;
        I Sastore;
        I (Sinc (2, 1)); B ((fun l -> Goto l), "fill");
        L "fill_done";
        I (Sspush (-1)); I (Sstore 0);
        I (Sspush 0); I (Sstore 3);
        L "crc_loop";
        I (Sload 3); I (Sspush 16); B ((fun l -> If_scmpge l), "crc_done");
        I (Sload 1); I (Sload 3); I Saload; I (Sspush 8); I Sshl;
        I (Sload 0); I Sxor; I (Sstore 0);
        I (Sspush 0); I (Sstore 4);
        L "bit";
        I (Sload 4); I (Sspush 8); B ((fun l -> If_scmpge l), "bit_done");
        I (Sload 0); I (Sspush (-32768)); I Sand;
        B ((fun l -> Ifeq l), "no_xor");
        I (Sload 0); I (Sspush 1); I Sshl; I (Sspush 4129); I Sxor;
        I (Sstore 0); B ((fun l -> Goto l), "bit_next");
        L "no_xor";
        I (Sload 0); I (Sspush 1); I Sshl; I (Sstore 0);
        L "bit_next";
        I (Sinc (4, 1)); B ((fun l -> Goto l), "bit");
        L "bit_done";
        I (Sinc (3, 1)); B ((fun l -> Goto l), "crc_loop");
        L "crc_done";
        I (Sload 0); I Sreturn;
      ]
  in
  {
    name = "crc16";
    program;
    methods = [||];
    statics = [||];
    expected = Some (crc16_reference crc16_message);
  }

let sort_fill i = to_short (((i * 211) land 63) - 20)

let sort_reference () =
  let a = Array.init 12 sort_fill in
  Array.sort compare a;
  let sum = ref 0 in
  Array.iteri (fun i v -> sum := to_short (!sum + to_short (v * (i + 1)))) a;
  !sum

let sort_applet =
  let program =
    build
      [
        (* locals: 0 checksum, 1 ref, 2 i, 3 j, 4 key *)
        I (Sspush 12); I Newarray; I (Sstore 1);
        I (Sspush 0); I (Sstore 2);
        L "fill";
        I (Sload 2); I (Sspush 12); B ((fun l -> If_scmpge l), "fill_done");
        I (Sload 1); I (Sload 2);
        I (Sload 2); I (Sspush 211); I Smul; I (Sspush 63); I Sand;
        I (Sspush 20); I Ssub;
        I Sastore;
        I (Sinc (2, 1)); B ((fun l -> Goto l), "fill");
        L "fill_done";
        I (Sspush 1); I (Sstore 2);
        L "outer";
        I (Sload 2); I (Sspush 12); B ((fun l -> If_scmpge l), "outer_done");
        I (Sload 1); I (Sload 2); I Saload; I (Sstore 4);
        I (Sload 2); I (Sspush 1); I Ssub; I (Sstore 3);
        L "inner";
        I (Sload 3); B ((fun l -> Iflt l), "insert");
        I (Sload 4); I (Sload 1); I (Sload 3); I Saload;
        B ((fun l -> If_scmpge l), "insert");
        (* a[j+1] <- a[j] *)
        I (Sload 1); I (Sload 3); I (Sspush 1); I Sadd;
        I (Sload 1); I (Sload 3); I Saload;
        I Sastore;
        I (Sinc (3, -1)); B ((fun l -> Goto l), "inner");
        L "insert";
        I (Sload 1); I (Sload 3); I (Sspush 1); I Sadd; I (Sload 4); I Sastore;
        I (Sinc (2, 1)); B ((fun l -> Goto l), "outer");
        L "outer_done";
        I (Sspush 0); I (Sstore 0);
        I (Sspush 0); I (Sstore 2);
        L "check";
        I (Sload 2); I (Sspush 12); B ((fun l -> If_scmpge l), "check_done");
        I (Sload 1); I (Sload 2); I Saload;
        I (Sload 2); I (Sspush 1); I Sadd; I Smul;
        I (Sload 0); I Sadd; I (Sstore 0);
        I (Sinc (2, 1)); B ((fun l -> Goto l), "check");
        L "check_done";
        I (Sload 0); I Sreturn;
      ]
  in
  {
    name = "sort";
    program;
    methods = [||];
    statics = [||];
    expected = Some (sort_reference ());
  }

let fib =
  let program =
    build
      [
        I (Sspush 0); I (Sstore 0);
        I (Sspush 1); I (Sstore 1);
        I (Sspush 0); I (Sstore 2);
        L "loop";
        I (Sload 2); I (Sspush 20); B ((fun l -> If_scmpge l), "done");
        I (Sload 0); I (Sload 1); I Sadd; I (Sstore 3);
        I (Sload 1); I (Sstore 0);
        I (Sload 3); I (Sstore 1);
        I (Sinc (2, 1)); B ((fun l -> Goto l), "loop");
        L "done";
        I (Sload 0); I Sreturn;
      ]
  in
  { name = "fib"; program; methods = [||]; statics = [||]; expected = Some 6765 }

(* Recursive Euclid through a static method: exercises call frames over
   the shared (possibly hardware) operand stack. *)
let gcd =
  let helper =
    build
      [
        (* locals: 0 = a, 1 = b; arguments arrive b on top. *)
        I (Sstore 1); I (Sstore 0);
        I (Sload 1); B ((fun l -> Ifeq l), "base");
        (* recurse: gcd(b, a - (a/b)*b) *)
        I (Sload 1);
        I (Sload 0);
        I (Sload 0); I (Sload 1); I Sdiv;
        I (Sload 1); I Smul;
        I Ssub;
        I (Invokestatic 1);
        I Sreturn;
        L "base";
        I (Sload 0); I Sreturn;
      ]
  in
  let program =
    build [ I (Sspush 1071); I (Sspush 462); I (Invokestatic 1); I Sreturn ]
  in
  { name = "gcd"; program; methods = [| helper |]; statics = [||];
    expected = Some 21 }

let all = [ wallet; crc16; sort_applet; fib; gcd ]
