(** Software operand stack: the functional stack model of the untimed
    Java Card VM (Figure 7a). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 shorts. *)

val ops : t -> Stack_intf.ops
(** Push/pop raise {!Stack_intf.Overflow} / {!Stack_intf.Underflow}. *)

val depth : t -> int
val contents : t -> int list
(** Top first (test backdoor). *)

val max_depth_seen : t -> int
