(** Sample applets: the workloads of the HW/SW interface exploration.

    Each applet is a bytecode program plus its expected return value, so
    the exploration can check functional equivalence between the software
    stack and every hardware-stack configuration. *)

type t = {
  name : string;
  program : Bytecode.t array;  (** entry method (method 0) *)
  methods : Bytecode.t array array;  (** callee methods (1..) *)
  statics : int array;  (** initial static field values *)
  expected : int option;  (** reference return value *)
}

val method_table : t -> Bytecode.t array array
(** Entry method prepended to the callees. *)

val wallet : t
(** Electronic-purse flavour: repeated balance credits/debits with limit
    checks; returns the final balance. *)

val crc16 : t
(** CCITT CRC-16 over a 16-short message built into an array; returns the
    CRC.  Array- and shift-heavy. *)

val sort_applet : t
(** Insertion sort of a 12-element array; returns the checksum of the
    sorted sequence (order-sensitive). *)

val fib : t
(** Iterative Fibonacci (20 rounds, modulo short range); stack/local
    ping-pong. *)

val gcd : t
(** Recursive Euclid via a static helper method: method invocation frames
    over the shared operand stack. *)

val all : t list
