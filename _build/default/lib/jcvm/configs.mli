(** HW/SW interface configurations explored in the paper's section 4.3.

    "During HW/SW interface evaluation we change the address map,
    organization of these registers and used bus transactions to access
    them."  A configuration decides how the operand-stack interface calls
    are translated into bus transactions towards the hardware stack's
    special function registers:

    - access {e width}: 8-bit (two accesses per short), 16-bit (one
      access), or 32-bit with software packing (one access per {e two}
      shorts when traffic allows);
    - register {e organization}: dedicated push/pop data registers versus
      a shared data register plus a command register (two transactions per
      operation);
    - {e address map}: registers packed at consecutive word addresses
      versus spread across a wide SFR window (more address-bus toggling
      per access). *)

type reg_org =
  | Dedicated  (** write DATA pushes, read DATA pops *)
  | Shared_cmd_data  (** write DATA then CMD=push; CMD=pop then read DATA *)

type t = {
  name : string;
  width : Ec.Txn.width;
  reg_org : reg_org;
  base : int;  (** SFR window base address *)
  stride : int;  (** byte distance between consecutive registers *)
  packed32 : bool;  (** 32-bit accesses carry two shorts *)
}

val make :
  name:string ->
  ?width:Ec.Txn.width ->
  ?reg_org:reg_org ->
  ?base:int ->
  ?stride:int ->
  ?packed32:bool ->
  unit ->
  t
(** Defaults: 16-bit dedicated registers at {!Soc.Platform.Map.sfr_base}
    with stride 4, no packing.
    @raise Invalid_argument on [packed32] without 32-bit width, a stride
    below 4, or a misaligned base. *)

(** Register indices (multiply by [stride] for the byte offset). *)

val data_reg : int  (** 0 *)

val cmd_reg : int  (** 1, shared organization only *)

val count_reg : int  (** 2 *)

val top_reg : int  (** 3 *)

val window_size : t -> int
(** Bytes of SFR window the configuration occupies. *)

val cmd_push : int
val cmd_pop : int

val standard : t list
(** The design space evaluated by the exploration experiment. *)

val pp : Format.formatter -> t -> unit
