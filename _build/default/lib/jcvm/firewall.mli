(** Applet firewall (context isolation), one of the functional blocks of
    the paper's Figure 7 Java Card model.

    Every object belongs to the context (applet) that allocated it.  An
    access from a different context is denied unless the object has been
    explicitly shared, or the accessor is the Java Card runtime
    environment context. *)

type ctx = private int
type t

exception Security_violation of { from_ctx : int; obj : int }

val create : unit -> t

val jcre : ctx
(** The runtime-environment context (may access everything). *)

val new_context : t -> ctx
(** Registers a fresh applet context. *)

val context_count : t -> int

val register_object : t -> owner:ctx -> obj:int -> unit
(** @raise Invalid_argument if [obj] is already registered. *)

val share : t -> obj:int -> unit
(** Marks an object shareable across contexts. *)

val accessible : t -> from_ctx:ctx -> obj:int -> bool

val check : t -> from_ctx:ctx -> obj:int -> unit
(** @raise Security_violation when {!accessible} is false.
    @raise Invalid_argument for an unregistered object. *)

val owner : t -> obj:int -> ctx option
val denied_accesses : t -> int
(** Number of accesses {!check} has refused (a security statistic). *)
