type t = {
  kernel : Sim.Kernel.t;
  port : Ec.Port.t;
  config : Configs.t;
  ids : Ec.Txn.Id_gen.gen;
  mutable pending_push : int option;  (* packed32: buffered pushed short *)
  mutable pending_pop : int option;  (* packed32: prefetched popped short *)
  mutable depth : int;  (* logical stack depth including buffers *)
  mutable transactions : int;
}

let create ~kernel ~port config =
  {
    kernel;
    port;
    config;
    ids = Ec.Txn.Id_gen.create ();
    pending_push = None;
    pending_pop = None;
    depth = 0;
    transactions = 0;
  }

let reg_addr t reg = t.config.Configs.base + (reg * t.config.Configs.stride)

(* One blocking transaction: submit, then advance the clock until the bus
   reports completion. *)
let transact t txn =
  t.transactions <- t.transactions + 1;
  let accepted = ref (t.port.Ec.Port.try_submit txn) in
  ignore
    (Sim.Kernel.run_until t.kernel ~max_cycles:100_000 (fun () ->
         if not !accepted then accepted := t.port.Ec.Port.try_submit txn;
         !accepted && Ec.Port.completed t.port txn.Ec.Txn.id));
  t.port.Ec.Port.retire txn.Ec.Txn.id;
  txn.Ec.Txn.data.(0)

let write t ~reg ~lane ~width value =
  let txn =
    Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data
      ~dir:Ec.Txn.Write ~width
      ~addr:(reg_addr t reg + lane)
      ~burst:1 ~data:[| value |] ()
  in
  ignore (transact t txn)

let read t ~reg ~lane ~width =
  let txn =
    Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data
      ~dir:Ec.Txn.Read ~width
      ~addr:(reg_addr t reg + lane)
      ~burst:1 ()
  in
  transact t txn

let flush t =
  match t.pending_push with
  | None -> ()
  | Some v ->
    (* No partner short arrived: use the packed configuration's
       single-push register. *)
    write t ~reg:Configs.top_reg ~lane:0 ~width:Ec.Txn.W32 (v land 0xFFFF);
    t.pending_push <- None

let hw_push t v =
  let v16 = v land 0xFFFF in
  match t.config.Configs.width, t.config.Configs.reg_org with
  | _, Configs.Shared_cmd_data ->
    write t ~reg:Configs.data_reg ~lane:0 ~width:t.config.Configs.width v16;
    write t ~reg:Configs.cmd_reg ~lane:0 ~width:t.config.Configs.width
      Configs.cmd_push
  | Ec.Txn.W8, Configs.Dedicated ->
    write t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W8 (v16 land 0xFF);
    write t ~reg:Configs.data_reg ~lane:1 ~width:Ec.Txn.W8 (v16 lsr 8)
  | Ec.Txn.W16, Configs.Dedicated ->
    write t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W16 v16
  | Ec.Txn.W32, Configs.Dedicated ->
    if t.config.Configs.packed32 then begin
      match t.pending_push with
      | None -> t.pending_push <- Some v16
      | Some first ->
        (* Low half is pushed first (deeper), the newer short on top. *)
        write t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W32
          (first lor (v16 lsl 16));
        t.pending_push <- None
    end
    else write t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W32 v16

let to_short v =
  let v = v land 0xFFFF in
  if v > 32767 then v - 65536 else v

let hw_pop t ~hw_depth =
  match t.config.Configs.width, t.config.Configs.reg_org with
  | _, Configs.Shared_cmd_data ->
    write t ~reg:Configs.cmd_reg ~lane:0 ~width:t.config.Configs.width
      Configs.cmd_pop;
    to_short (read t ~reg:Configs.data_reg ~lane:0 ~width:t.config.Configs.width)
  | Ec.Txn.W8, Configs.Dedicated ->
    let lo = read t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W8 in
    let hi = read t ~reg:Configs.data_reg ~lane:1 ~width:Ec.Txn.W8 in
    to_short ((hi lsl 8) lor (lo land 0xFF))
  | Ec.Txn.W16, Configs.Dedicated ->
    to_short (read t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W16)
  | Ec.Txn.W32, Configs.Dedicated ->
    if t.config.Configs.packed32 then begin
      (* The hardware pops two shorts when it has them; keep the second
         (deeper) one prefetched for the next pop. *)
      let word = read t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W32 in
      if hw_depth >= 2 then t.pending_pop <- Some (to_short (word lsr 16));
      to_short word
    end
    else to_short (read t ~reg:Configs.data_reg ~lane:0 ~width:Ec.Txn.W32)

(* Invariant: pending_push and pending_pop are never both set; both are
   only used in packed mode. *)
let push t v =
  (match t.pending_pop with
  | Some prefetched ->
    (* The prefetched short is the element just below the new top; it can
       become the buffered half of the next packed write. *)
    assert (t.pending_push = None);
    t.pending_pop <- None;
    t.pending_push <- Some (prefetched land 0xFFFF)
  | None -> ());
  hw_push t v;
  t.depth <- t.depth + 1

let pop t =
  if t.depth <= 0 then raise Stack_intf.Underflow;
  let v =
    match t.pending_push with
    | Some buffered ->
      (* The buffered push is the logical top; serve it locally. *)
      t.pending_push <- None;
      to_short buffered
    | None -> begin
      match t.pending_pop with
      | Some prefetched ->
        t.pending_pop <- None;
        prefetched
      | None -> hw_pop t ~hw_depth:t.depth
    end
  in
  t.depth <- t.depth - 1;
  v

let ops t =
  {
    Stack_intf.push = push t;
    pop = (fun () -> pop t);
    depth = (fun () -> t.depth);
    reset =
      (fun () ->
        t.pending_push <- None;
        t.pending_pop <- None;
        t.depth <- 0);
  }

let transactions t = t.transactions
let logical_depth t = t.depth
