type t = {
  data : int array;
  mutable top : int;  (* number of valid entries *)
  mutable max_depth : int;
}

let create ?(capacity = 256) () =
  { data = Array.make capacity 0; top = 0; max_depth = 0 }

let push t v =
  if t.top >= Array.length t.data then raise Stack_intf.Overflow;
  t.data.(t.top) <- v;
  t.top <- t.top + 1;
  if t.top > t.max_depth then t.max_depth <- t.top

let pop t =
  if t.top = 0 then raise Stack_intf.Underflow;
  t.top <- t.top - 1;
  t.data.(t.top)

let ops t =
  {
    Stack_intf.push = push t;
    pop = (fun () -> pop t);
    depth = (fun () -> t.top);
    reset = (fun () -> t.top <- 0);
  }

let depth t = t.top
let contents t = List.init t.top (fun i -> t.data.(t.top - 1 - i))
let max_depth_seen t = t.max_depth
