exception Out_of_memory
exception Bounds of { obj : int; index : int; length : int }

type array_cell = { offset : int; len : int }

type t = {
  firewall : Firewall.t;
  statics : int array;
  heap : int array;
  arrays : (int, array_cell) Hashtbl.t;
  mutable next_ref : int;
  mutable brk : int;  (* first free heap slot *)
}

let to_short v =
  let v = v land 0xFFFF in
  if v > 32767 then v - 65536 else v

let create ?(statics = 64) ?(heap_shorts = 4096) firewall =
  {
    firewall;
    statics = Array.make statics 0;
    heap = Array.make heap_shorts 0;
    arrays = Hashtbl.create 32;
    next_ref = 1;
    brk = 0;
  }

let firewall t = t.firewall

let get_static t i =
  if i < 0 || i >= Array.length t.statics then
    invalid_arg (Printf.sprintf "Jcvm.Memmgr.get_static %d" i);
  t.statics.(i)

let set_static t i v =
  if i < 0 || i >= Array.length t.statics then
    invalid_arg (Printf.sprintf "Jcvm.Memmgr.set_static %d" i);
  t.statics.(i) <- to_short v

let alloc_array t ~ctx ~len =
  if len < 0 then invalid_arg "Jcvm.Memmgr.alloc_array: negative length";
  if t.brk + len > Array.length t.heap then raise Out_of_memory;
  let ref_ = t.next_ref in
  t.next_ref <- ref_ + 1;
  Hashtbl.replace t.arrays ref_ { offset = t.brk; len };
  t.brk <- t.brk + len;
  Firewall.register_object t.firewall ~owner:ctx ~obj:ref_;
  ref_

let cell t obj =
  match Hashtbl.find_opt t.arrays obj with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Jcvm.Memmgr: unknown array %d" obj)

let checked_cell t ~ctx ~obj ~index =
  Firewall.check t.firewall ~from_ctx:ctx ~obj;
  let c = cell t obj in
  if index < 0 || index >= c.len then
    raise (Bounds { obj; index; length = c.len });
  c

let load t ~ctx ~obj ~index =
  let c = checked_cell t ~ctx ~obj ~index in
  t.heap.(c.offset + index)

let store t ~ctx ~obj ~index v =
  let c = checked_cell t ~ctx ~obj ~index in
  t.heap.(c.offset + index) <- to_short v

let length t ~ctx ~obj =
  Firewall.check t.firewall ~from_ctx:ctx ~obj;
  (cell t obj).len

let allocated_shorts t = t.brk
let free_shorts t = Array.length t.heap - t.brk
