type t =
  | Nop
  | Pop
  | Dup
  | Swap
  | Sspush of int
  | Bspush of int
  | Sadd
  | Ssub
  | Smul
  | Sdiv
  | Sneg
  | Sand
  | Sor
  | Sxor
  | Sshl
  | Sshr
  | Sload of int
  | Sstore of int
  | Sinc of int * int
  | Goto of int
  | Ifeq of int
  | Ifne of int
  | Iflt of int
  | Ifge of int
  | If_scmpeq of int
  | If_scmpne of int
  | If_scmplt of int
  | If_scmpge of int
  | Getstatic of int
  | Putstatic of int
  | Newarray
  | Saload
  | Sastore
  | Arraylength
  | Invokestatic of int
  | Sreturn
  | Return

let to_string = function
  | Nop -> "nop"
  | Pop -> "pop"
  | Dup -> "dup"
  | Swap -> "swap"
  | Sspush v -> Printf.sprintf "sspush %d" v
  | Bspush v -> Printf.sprintf "bspush %d" v
  | Sadd -> "sadd"
  | Ssub -> "ssub"
  | Smul -> "smul"
  | Sdiv -> "sdiv"
  | Sneg -> "sneg"
  | Sand -> "sand"
  | Sor -> "sor"
  | Sxor -> "sxor"
  | Sshl -> "sshl"
  | Sshr -> "sshr"
  | Sload i -> Printf.sprintf "sload %d" i
  | Sstore i -> Printf.sprintf "sstore %d" i
  | Sinc (i, v) -> Printf.sprintf "sinc %d %d" i v
  | Goto l -> Printf.sprintf "goto %d" l
  | Ifeq l -> Printf.sprintf "ifeq %d" l
  | Ifne l -> Printf.sprintf "ifne %d" l
  | Iflt l -> Printf.sprintf "iflt %d" l
  | Ifge l -> Printf.sprintf "ifge %d" l
  | If_scmpeq l -> Printf.sprintf "if_scmpeq %d" l
  | If_scmpne l -> Printf.sprintf "if_scmpne %d" l
  | If_scmplt l -> Printf.sprintf "if_scmplt %d" l
  | If_scmpge l -> Printf.sprintf "if_scmpge %d" l
  | Getstatic i -> Printf.sprintf "getstatic %d" i
  | Putstatic i -> Printf.sprintf "putstatic %d" i
  | Newarray -> "newarray"
  | Saload -> "saload"
  | Sastore -> "sastore"
  | Arraylength -> "arraylength"
  | Invokestatic i -> Printf.sprintf "invokestatic %d" i
  | Sreturn -> "sreturn"
  | Return -> "return"

(* Opcode numbering for the flat serialization. *)
let opcode = function
  | Nop -> 0x00
  | Pop -> 0x01
  | Dup -> 0x02
  | Swap -> 0x03
  | Sspush _ -> 0x04
  | Bspush _ -> 0x05
  | Sadd -> 0x10
  | Ssub -> 0x11
  | Smul -> 0x12
  | Sdiv -> 0x13
  | Sneg -> 0x14
  | Sand -> 0x15
  | Sor -> 0x16
  | Sxor -> 0x17
  | Sshl -> 0x18
  | Sshr -> 0x19
  | Sload _ -> 0x20
  | Sstore _ -> 0x21
  | Sinc _ -> 0x22
  | Goto _ -> 0x30
  | Ifeq _ -> 0x31
  | Ifne _ -> 0x32
  | Iflt _ -> 0x33
  | Ifge _ -> 0x34
  | If_scmpeq _ -> 0x35
  | If_scmpne _ -> 0x36
  | If_scmplt _ -> 0x37
  | If_scmpge _ -> 0x38
  | Getstatic _ -> 0x40
  | Putstatic _ -> 0x41
  | Newarray -> 0x50
  | Saload -> 0x51
  | Sastore -> 0x52
  | Arraylength -> 0x53
  | Invokestatic _ -> 0x54
  | Sreturn -> 0x60
  | Return -> 0x61

let check_short v =
  if v < -32768 || v > 32767 then
    invalid_arg (Printf.sprintf "Jcvm.Bytecode: short %d" v)

let check_byte v =
  if v < -128 || v > 127 then
    invalid_arg (Printf.sprintf "Jcvm.Bytecode: byte %d" v)

let check_u16 v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Jcvm.Bytecode: index %d" v)

let encode program =
  let b = Buffer.create (Array.length program * 2) in
  let u8 v = Buffer.add_uint8 b (v land 0xFF) in
  let u16 v = Buffer.add_uint16_be b (v land 0xFFFF) in
  let emit instr =
    u8 (opcode instr);
    match instr with
    | Sspush v -> check_short v; u16 v
    | Bspush v -> check_byte v; u8 v
    | Sload i | Sstore i | Getstatic i | Putstatic i | Invokestatic i ->
      check_u16 i;
      u16 i
    | Sinc (i, v) ->
      check_u16 i;
      check_byte v;
      u16 i;
      u8 v
    | Goto l | Ifeq l | Ifne l | Iflt l | Ifge l | If_scmpeq l | If_scmpne l
    | If_scmplt l | If_scmpge l ->
      check_u16 l;
      u16 l
    | Nop | Pop | Dup | Swap | Sadd | Ssub | Smul | Sdiv | Sneg | Sand | Sor
    | Sxor | Sshl | Sshr | Newarray | Saload | Sastore | Arraylength | Sreturn
    | Return ->
      ()
  in
  Array.iter emit program;
  Buffer.to_bytes b

let decode bytes =
  let len = Bytes.length bytes in
  let pos = ref 0 in
  let u8 () =
    if !pos >= len then failwith "Jcvm.Bytecode.decode: truncated";
    let v = Bytes.get_uint8 bytes !pos in
    incr pos;
    v
  in
  let s8 () =
    let v = u8 () in
    if v > 127 then v - 256 else v
  in
  let u16 () =
    let hi = u8 () in
    let lo = u8 () in
    (hi lsl 8) lor lo
  in
  let s16 () =
    let v = u16 () in
    if v > 32767 then v - 65536 else v
  in
  let instrs = ref [] in
  while !pos < len do
    let instr =
      match u8 () with
      | 0x00 -> Nop
      | 0x01 -> Pop
      | 0x02 -> Dup
      | 0x03 -> Swap
      | 0x04 -> Sspush (s16 ())
      | 0x05 -> Bspush (s8 ())
      | 0x10 -> Sadd
      | 0x11 -> Ssub
      | 0x12 -> Smul
      | 0x13 -> Sdiv
      | 0x14 -> Sneg
      | 0x15 -> Sand
      | 0x16 -> Sor
      | 0x17 -> Sxor
      | 0x18 -> Sshl
      | 0x19 -> Sshr
      | 0x20 -> Sload (u16 ())
      | 0x21 -> Sstore (u16 ())
      | 0x22 ->
        let i = u16 () in
        let v = s8 () in
        Sinc (i, v)
      | 0x30 -> Goto (u16 ())
      | 0x31 -> Ifeq (u16 ())
      | 0x32 -> Ifne (u16 ())
      | 0x33 -> Iflt (u16 ())
      | 0x34 -> Ifge (u16 ())
      | 0x35 -> If_scmpeq (u16 ())
      | 0x36 -> If_scmpne (u16 ())
      | 0x37 -> If_scmplt (u16 ())
      | 0x38 -> If_scmpge (u16 ())
      | 0x40 -> Getstatic (u16 ())
      | 0x41 -> Putstatic (u16 ())
      | 0x50 -> Newarray
      | 0x51 -> Saload
      | 0x52 -> Sastore
      | 0x53 -> Arraylength
      | 0x54 -> Invokestatic (u16 ())
      | 0x60 -> Sreturn
      | 0x61 -> Return
      | op -> failwith (Printf.sprintf "Jcvm.Bytecode.decode: opcode %#x" op)
    in
    instrs := instr :: !instrs
  done;
  Array.of_list (List.rev !instrs)

let max_locals program =
  Array.fold_left
    (fun acc instr ->
      match instr with
      | Sload i | Sstore i | Sinc (i, _) -> max acc (i + 1)
      | _ -> acc)
    0 program

let validate program =
  let n = Array.length program in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  if n = 0 then fail "empty program";
  Array.iteri
    (fun at instr ->
      match instr with
      | Goto l | Ifeq l | Ifne l | Iflt l | Ifge l | If_scmpeq l | If_scmpne l
      | If_scmplt l | If_scmpge l ->
        if l < 0 || l >= n then fail "instruction %d: branch target %d out of range" at l
      | Sload i | Sstore i | Sinc (i, _) | Getstatic i | Putstatic i ->
        if i < 0 then fail "instruction %d: negative index %d" at i
      | _ -> ())
    program;
  (if n > 0 then
     match program.(n - 1) with
     | Sreturn | Return | Goto _ -> ()
     | _ -> fail "program can fall off the end");
  match !problem with None -> Ok () | Some msg -> Error msg
