exception Runtime_error of string

type result = { value : int option; steps : int; max_depth : int }

let to_short v =
  let v = v land 0xFFFF in
  if v > 32767 then v - 65536 else v

let max_call_depth = 64

(* One suspended caller. *)
type frame = { f_method : int; f_pc : int; f_locals : int array }

let run_methods ?(fuel = 1_000_000) ~stack ~memory ~ctx methods =
  if Array.length methods = 0 then raise (Runtime_error "no methods");
  Array.iteri
    (fun i m ->
      match Bytecode.validate m with
      | Ok () -> ()
      | Error msg -> raise (Runtime_error (Printf.sprintf "method %d: %s" i msg)))
    methods;
  let push = stack.Stack_intf.push and pop = stack.Stack_intf.pop in
  let fresh_locals m = Array.make (max 1 (Bytecode.max_locals methods.(m))) 0 in
  (* Current frame. *)
  let cur_method = ref 0 in
  let program = ref methods.(0) in
  let locals = ref (fresh_locals 0) in
  let pc = ref 0 in
  let callers : frame list ref = ref [] in
  let max_depth = ref 0 in
  let note_depth () =
    let d = stack.Stack_intf.depth () in
    if d > !max_depth then max_depth := d
  in
  let steps = ref 0 in
  let binop f =
    let b = pop () in
    let a = pop () in
    push (to_short (f a b))
  in
  let result = ref None in
  let finished = ref false in
  let return_from_method value =
    match !callers with
    | [] ->
      finished := true;
      result := value
    | frame :: rest ->
      callers := rest;
      cur_method := frame.f_method;
      program := methods.(frame.f_method);
      locals := frame.f_locals;
      pc := frame.f_pc;
      (* A value (if any) is already on the shared operand stack, where
         the caller expects it. *)
      (match value with Some v -> push v | None -> ())
  in
  while not !finished do
    if !steps >= fuel then raise (Runtime_error "fuel exhausted");
    incr steps;
    let here = !pc in
    pc := here + 1;
    match !program.(here) with
    | Bytecode.Nop -> ()
    | Bytecode.Pop -> ignore (pop ())
    | Bytecode.Dup ->
      let v = pop () in
      push v;
      push v;
      note_depth ()
    | Bytecode.Swap ->
      let b = pop () in
      let a = pop () in
      push b;
      push a
    | Bytecode.Sspush v ->
      push (to_short v);
      note_depth ()
    | Bytecode.Bspush v ->
      push (to_short v);
      note_depth ()
    | Bytecode.Sadd -> binop ( + )
    | Bytecode.Ssub -> binop ( - )
    | Bytecode.Smul -> binop ( * )
    | Bytecode.Sdiv ->
      binop (fun a b ->
          if b = 0 then raise (Runtime_error "division by zero") else a / b)
    | Bytecode.Sneg -> push (to_short (-pop ()))
    | Bytecode.Sand -> binop ( land )
    | Bytecode.Sor -> binop ( lor )
    | Bytecode.Sxor -> binop ( lxor )
    | Bytecode.Sshl -> binop (fun a b -> a lsl (b land 15))
    | Bytecode.Sshr -> binop (fun a b -> a asr (b land 15))
    | Bytecode.Sload i ->
      push !locals.(i);
      note_depth ()
    | Bytecode.Sstore i -> !locals.(i) <- pop ()
    | Bytecode.Sinc (i, v) -> !locals.(i) <- to_short (!locals.(i) + v)
    | Bytecode.Goto l -> pc := l
    | Bytecode.Ifeq l -> if pop () = 0 then pc := l
    | Bytecode.Ifne l -> if pop () <> 0 then pc := l
    | Bytecode.Iflt l -> if pop () < 0 then pc := l
    | Bytecode.Ifge l -> if pop () >= 0 then pc := l
    | Bytecode.If_scmpeq l ->
      let b = pop () in
      let a = pop () in
      if a = b then pc := l
    | Bytecode.If_scmpne l ->
      let b = pop () in
      let a = pop () in
      if a <> b then pc := l
    | Bytecode.If_scmplt l ->
      let b = pop () in
      let a = pop () in
      if a < b then pc := l
    | Bytecode.If_scmpge l ->
      let b = pop () in
      let a = pop () in
      if a >= b then pc := l
    | Bytecode.Getstatic i ->
      push (Memmgr.get_static memory i);
      note_depth ()
    | Bytecode.Putstatic i -> Memmgr.set_static memory i (pop ())
    | Bytecode.Newarray ->
      let len = pop () in
      if len < 0 then raise (Runtime_error "negative array length");
      push (Memmgr.alloc_array memory ~ctx ~len);
      note_depth ()
    | Bytecode.Saload ->
      let index = pop () in
      let obj = pop () in
      push (Memmgr.load memory ~ctx ~obj ~index)
    | Bytecode.Sastore ->
      let v = pop () in
      let index = pop () in
      let obj = pop () in
      Memmgr.store memory ~ctx ~obj ~index v
    | Bytecode.Arraylength ->
      let obj = pop () in
      push (Memmgr.length memory ~ctx ~obj)
    | Bytecode.Invokestatic m ->
      if m < 0 || m >= Array.length methods then
        raise (Runtime_error (Printf.sprintf "invokestatic: no method %d" m));
      if List.length !callers >= max_call_depth then
        raise (Runtime_error "call stack overflow");
      callers :=
        { f_method = !cur_method; f_pc = !pc; f_locals = !locals } :: !callers;
      cur_method := m;
      program := methods.(m);
      locals := fresh_locals m;
      pc := 0
    | Bytecode.Sreturn -> return_from_method (Some (pop ()))
    | Bytecode.Return -> return_from_method None
  done;
  { value = !result; steps = !steps; max_depth = !max_depth }

let run ?fuel ~stack ~memory ~ctx program =
  run_methods ?fuel ~stack ~memory ~ctx [| program |]

let run_soft ?fuel ?statics ?(methods = [||]) program =
  let firewall = Firewall.create () in
  let memory = Memmgr.create firewall in
  (match statics with
  | Some values -> Array.iteri (fun i v -> Memmgr.set_static memory i v) values
  | None -> ());
  let ctx = Firewall.new_context firewall in
  let soft = Soft_stack.create () in
  let result =
    run_methods ?fuel ~stack:(Soft_stack.ops soft) ~memory ~ctx
      (Array.append [| program |] methods)
  in
  { result with max_depth = max result.max_depth (Soft_stack.max_depth_seen soft) }
