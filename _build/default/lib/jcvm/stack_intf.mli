(** The operand stack interface of the Java Card VM model.

    The paper's exploration refines exactly this boundary: "the bytecode
    interpreter invokes the same interface functions as in the pure
    functional model" — once backed by the software stack ({!Soft_stack}),
    once by the master adapter that turns each call into bus transactions
    towards the hardware stack. *)

type ops = {
  push : int -> unit;
  pop : unit -> int;
  depth : unit -> int;
  reset : unit -> unit;
}

exception Overflow
exception Underflow

val counted : ops -> ops * (unit -> int * int)
(** [counted ops] wraps [ops]; the second component reports the
    accumulated (pushes, pops). *)
