(** The bytecode interpreter — the functional, untimed Java Card VM model
    of the paper's Figure 7(a).

    The interpreter is parameterized over the operand stack interface; it
    is otherwise pure bookkeeping over locals, the {!Memmgr} and the
    program counter, so plugging the bus-backed stack adapter in (Figure
    7(b)) refines only the communication, not the behaviour.  The test
    suite relies on that: both bindings must produce identical results. *)

exception Runtime_error of string
(** Division by zero, fuel exhaustion, malformed programs. *)

type result = {
  value : int option;  (** [Sreturn]'s operand, [None] after [Return] *)
  steps : int;  (** instructions executed *)
  max_depth : int;  (** high-water mark of the operand stack *)
}

val run_methods :
  ?fuel:int ->
  stack:Stack_intf.ops ->
  memory:Memmgr.t ->
  ctx:Firewall.ctx ->
  Bytecode.t array array ->
  result
(** Executes method 0 of the method table until it returns.
    [Invokestatic i] pushes a frame (per-method locals, shared operand
    stack — arguments and results travel on it) and enters method [i];
    call depth is bounded at 64.  [fuel] (default 1_000_000 steps) bounds
    runaway programs.

    @raise Runtime_error on dynamic errors (division by zero, fuel, call
    depth, unknown method, invalid bytecode).
    @raise Firewall.Security_violation and {!Memmgr.Bounds} are let
    through: they are the model's security-relevant outcomes. *)

val run :
  ?fuel:int ->
  stack:Stack_intf.ops ->
  memory:Memmgr.t ->
  ctx:Firewall.ctx ->
  Bytecode.t array ->
  result
(** {!run_methods} with a single method. *)

val run_soft :
  ?fuel:int ->
  ?statics:int array ->
  ?methods:Bytecode.t array array ->
  Bytecode.t array ->
  result
(** Convenience harness: fresh firewall, memory manager, one applet
    context and a software stack; [statics] pre-loads static fields,
    [methods] appends callee methods (the entry program is method 0). *)
