type reg_org = Dedicated | Shared_cmd_data

type t = {
  name : string;
  width : Ec.Txn.width;
  reg_org : reg_org;
  base : int;
  stride : int;
  packed32 : bool;
}

let data_reg = 0
let cmd_reg = 1
let count_reg = 2
let top_reg = 3
let cmd_push = 1
let cmd_pop = 2

let make ~name ?(width = Ec.Txn.W16) ?(reg_org = Dedicated)
    ?(base = Soc.Platform.Map.sfr_base) ?(stride = 4) ?(packed32 = false) () =
  if packed32 && width <> Ec.Txn.W32 then
    invalid_arg "Jcvm.Configs.make: packed32 needs 32-bit width";
  if stride < 4 || stride mod 4 <> 0 then
    invalid_arg "Jcvm.Configs.make: stride must be a positive word multiple";
  if base mod 4 <> 0 then invalid_arg "Jcvm.Configs.make: misaligned base";
  { name; width; reg_org; base; stride; packed32 }

let window_size t = 4 * t.stride

let standard =
  [
    make ~name:"w8-dedicated" ~width:Ec.Txn.W8 ();
    make ~name:"w16-dedicated" ();
    make ~name:"w16-cmd+data" ~reg_org:Shared_cmd_data ();
    (* Same organization, bad address map: CMD and DATA sit at addresses
       five Hamming-bits apart, so every operation toggles the address
       bus hard. *)
    make ~name:"w16-cmd+data-spread" ~reg_org:Shared_cmd_data ~stride:0xAA8 ();
    make ~name:"w32-plain" ~width:Ec.Txn.W32 ();
    make ~name:"w32-packed" ~width:Ec.Txn.W32 ~packed32:true ();
    make ~name:"w16-highbase" ~base:(Soc.Platform.Map.sfr_base + 0xAA8) ();
  ]

let pp ppf t =
  let org =
    match t.reg_org with
    | Dedicated -> "dedicated"
    | Shared_cmd_data -> "cmd+data"
  in
  Format.fprintf ppf "%s (w%d %s stride=%#x%s)" t.name
    (Ec.Txn.width_bits t.width) org t.stride
    (if t.packed32 then " packed" else "")
