(** Memory manager of the Java Card model (Figure 7): static fields and a
    bounds-checked short-array heap, with every array access vetted by the
    {!Firewall}. *)

type t

exception Out_of_memory
exception Bounds of { obj : int; index : int; length : int }

val create : ?statics:int -> ?heap_shorts:int -> Firewall.t -> t
(** Defaults: 64 static fields, 4096 heap shorts. *)

val firewall : t -> Firewall.t

val get_static : t -> int -> int
val set_static : t -> int -> int -> unit
(** Values are truncated to signed shorts.
    @raise Invalid_argument on an index outside the static area. *)

val alloc_array : t -> ctx:Firewall.ctx -> len:int -> int
(** Allocates a zeroed short array, registers it with the firewall and
    returns its reference.
    @raise Out_of_memory when the heap is exhausted.
    @raise Invalid_argument on a negative length. *)

val load : t -> ctx:Firewall.ctx -> obj:int -> index:int -> int
val store : t -> ctx:Firewall.ctx -> obj:int -> index:int -> int -> unit
val length : t -> ctx:Firewall.ctx -> obj:int -> int
(** @raise Firewall.Security_violation on a cross-context access.
    @raise Bounds on an out-of-range index. *)

val allocated_shorts : t -> int
val free_shorts : t -> int
