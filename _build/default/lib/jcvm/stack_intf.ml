type ops = {
  push : int -> unit;
  pop : unit -> int;
  depth : unit -> int;
  reset : unit -> unit;
}

exception Overflow
exception Underflow

let counted ops =
  let pushes = ref 0 and pops = ref 0 in
  let wrapped =
    {
      push =
        (fun v ->
          incr pushes;
          ops.push v);
      pop =
        (fun () ->
          incr pops;
          ops.pop ());
      depth = ops.depth;
      reset = ops.reset;
    }
  in
  (wrapped, fun () -> (!pushes, !pops))
