bin/smartcard.ml: Arg Buffer Bytes Cmd Cmdliner Core Ec Filename Format Fun Jcvm List Power Printf Soc Term
