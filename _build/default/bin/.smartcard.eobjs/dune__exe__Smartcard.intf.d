bin/smartcard.mli:
