(* Quickstart: build the Figure-1 smart card, run a small program on the
   energy-aware layer-1 bus, and inspect timing, energy and the per-cycle
   power profile.

   Run with:  dune exec examples/quickstart.exe *)

let program_source =
  (* Sum a small table from ROM into RAM and poke the result at the UART. *)
  "        la   r1, table\n\
  \        li   r2, 1048576      # RAM base\n\
  \        addi r3, r0, 8        # eight words\n\
  \        add  r4, r0, r0\n\
   loop:   lw   r5, 0(r1)\n\
  \        add  r4, r4, r5\n\
  \        addi r1, r1, 4\n\
  \        addi r3, r3, -1\n\
  \        bne  r3, r0, loop\n\
  \        sw   r4, 0(r2)\n\
  \        li   r6, 15728640     # UART base\n\
  \        sb   r4, 0(r6)\n\
  \        halt\n\
   table:  .word 1\n\
  \        .word 2\n\
  \        .word 3\n\
  \        .word 4\n\
  \        .word 5\n\
  \        .word 6\n\
  \        .word 7\n\
  \        .word 8\n"

let () =
  print_endline "== 1. Assemble the program ==";
  let program = Soc.Asm.assemble program_source in
  Printf.printf "%d words of code+data at %#x\n\n" (Array.length program.Soc.Asm.words)
    program.Soc.Asm.origin;

  print_endline "== 2. Run it at every abstraction level ==";
  let outcomes =
    List.map
      (fun level ->
        let run = Core.Runner.run_program ~level ~record_profile:true program in
        (level, run))
      Core.Level.all
  in
  List.iter
    (fun (level, run) ->
      let r = run.Core.Runner.result in
      Printf.printf "%-12s  cycles=%-5d  bus=%8.1f pJ  peripherals=%8.1f pJ\n"
        (Core.Level.to_string level) r.Core.Runner.cycles r.Core.Runner.bus_pj
        r.Core.Runner.component_pj)
    outcomes;
  print_newline ();

  print_endline "== 3. Check the architectural result ==";
  let _, l1_run = List.nth outcomes 1 in
  let ram = Soc.Platform.ram (Core.System.platform l1_run.Core.Runner.system) in
  Printf.printf "sum stored in RAM: %d (expected 36)\n\n"
    (Soc.Memory.peek32 ram ~addr:Soc.Platform.Map.ram_base);

  print_endline "== 4. Cycle-accurate power profile (layer 1) ==";
  (match l1_run.Core.Runner.result.Core.Runner.profile with
  | Some profile ->
    Printf.printf "peak %.2f pJ/cycle over %d cycles\n"
      (Power.Profile.max_value profile)
      (Power.Profile.length profile);
    Printf.printf "[%s]\n\n" (Power.Profile.sparkline ~width:72 profile)
  | None -> ());

  print_endline "== 5. The paper's power interface ==";
  let system = Core.System.create ~level:Core.Level.L1 () in
  let kernel = Core.System.kernel system in
  let port = Core.System.port system in
  let ids = Ec.Txn.Id_gen.create () in
  let submit_and_wait txn =
    Ec.Port.submit_exn port txn;
    ignore
      (Sim.Kernel.run_until kernel ~max_cycles:1000 (fun () ->
           Ec.Port.completed port txn.Ec.Txn.id));
    port.Ec.Port.retire txn.Ec.Txn.id
  in
  submit_and_wait
    (Ec.Txn.single_write ~id:(Ec.Txn.Id_gen.fresh ids) Soc.Platform.Map.ram_base
       ~value:0xDEADBEEF);
  Printf.printf "energy since last call after one write: %.2f pJ\n"
    (Core.System.energy_since_last_call_pj system);
  submit_and_wait
    (Ec.Txn.burst_read ~id:(Ec.Txn.Id_gen.fresh ids) Soc.Platform.Map.rom_base);
  Printf.printf "energy since last call after one burst read: %.2f pJ\n"
    (Core.System.energy_since_last_call_pj system)
