(* HW/SW trade-off study: copy a block of memory in software (lw/sw loop
   on the core) versus offloading to the DMA engine, with and without
   burst transactions — the kind of decision the paper's energy-aware bus
   models exist to support.

   Run with:  dune exec examples/dma_offload.exe *)

let words = 64

(* Pure software copy (same staging table, same amount of data). *)
let software_copy =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "  la r1, table";
  line "  li r2, %d" Soc.Platform.Map.ram_base;
  line "  addi r3, r0, %d" words;
  line "stage: lw r4, 0(r1)";
  line "  sw r4, 0(r2)";
  line "  addi r1, r1, 4";
  line "  addi r2, r2, 4";
  line "  addi r3, r3, -1";
  line "  bne r3, r0, stage";
  (* The copy under study: RAM -> RAM+0x800, word at a time. *)
  line "  li r1, %d" Soc.Platform.Map.ram_base;
  line "  li r2, %d" (Soc.Platform.Map.ram_base + 0x800);
  line "  addi r3, r0, %d" words;
  line "copy: lw r4, 0(r1)";
  line "  sw r4, 0(r2)";
  line "  addi r1, r1, 4";
  line "  addi r2, r2, 4";
  line "  addi r3, r3, -1";
  line "  bne r3, r0, copy";
  line "  halt";
  line "table:";
  for i = 0 to words - 1 do
    line "  .word %d" ((i * 0x01010101) land 0xFFFFFFFF)
  done;
  Buffer.contents b

(* Software copy using the burst instructions. *)
let software_burst_copy =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "  la r1, table";
  line "  li r2, %d" Soc.Platform.Map.ram_base;
  line "  addi r3, r0, %d" words;
  line "stage: lw r4, 0(r1)";
  line "  sw r4, 0(r2)";
  line "  addi r1, r1, 4";
  line "  addi r2, r2, 4";
  line "  addi r3, r3, -1";
  line "  bne r3, r0, stage";
  line "  li r1, %d" Soc.Platform.Map.ram_base;
  line "  li r2, %d" (Soc.Platform.Map.ram_base + 0x800);
  line "  addi r3, r0, %d" (words / 4);
  line "copy: lw4 r4, 0(r1)";
  line "  sw4 r4, 0(r2)";
  line "  addi r1, r1, 16";
  line "  addi r2, r2, 16";
  line "  addi r3, r3, -1";
  line "  bne r3, r0, copy";
  line "  halt";
  line "table:";
  for i = 0 to words - 1 do
    line "  .word %d" ((i * 0x01010101) land 0xFFFFFFFF)
  done;
  Buffer.contents b

let run name src =
  let program = Soc.Asm.assemble src in
  let run = Core.Runner.run_program ~level:Core.Level.L1 program in
  let r = run.Core.Runner.result in
  (match run.Core.Runner.fault with
  | None -> ()
  | Some _ -> failwith (name ^ ": fault"));
  Printf.printf "%-28s cycles=%-5d bus=%8.1f pJ  peripherals=%8.1f pJ  total=%8.1f pJ\n"
    name r.Core.Runner.cycles r.Core.Runner.bus_pj r.Core.Runner.component_pj
    (r.Core.Runner.bus_pj +. r.Core.Runner.component_pj)

let () =
  Printf.printf "Copying %d words RAM -> RAM, five implementations:\n\n" words;
  run "software (lw/sw)" software_copy;
  run "software (lw4/sw4 bursts)" software_burst_copy;
  run "dma (single transfers)" (Core.Test_programs.dma_copy ~words ~burst:false ());
  run "dma (4-word bursts)" (Core.Test_programs.dma_copy ~words ~burst:true ());
  run "dma (bursts + wfi sleep)"
    (Core.Test_programs.dma_copy ~wfi:true ~words ~burst:true ());
  print_newline ();
  print_endline
    "All variants stage the same table first; the difference is the copy\n\
     itself.  The DMA engine removes the instruction-fetch traffic of the\n\
     software loop, and bursts amortize the address phases - the bus\n\
     models quantify both effects before any RTL exists."
