(* The paper's section 4.3 case study: refining the communication of an
   untimed Java Card VM onto the energy-aware transaction-level bus and
   exploring HW/SW interface alternatives for the hardware operand stack.

   Run with:  dune exec examples/jcvm_exploration.exe *)

let () =
  print_endline "== 1. The functional, untimed model (Figure 7a) ==";
  let applet = Jcvm.Applets.crc16 in
  let reference =
    Jcvm.Interp.run_soft ~statics:applet.Jcvm.Applets.statics
      ~methods:applet.Jcvm.Applets.methods applet.Jcvm.Applets.program
  in
  Printf.printf
    "applet %s: %d bytecode steps, result %s, operand stack high-water %d\n\n"
    applet.Jcvm.Applets.name reference.Jcvm.Interp.steps
    (match reference.Jcvm.Interp.value with
    | Some v -> string_of_int v
    | None -> "-")
    reference.Jcvm.Interp.max_depth;

  print_endline "== 2. Communication refinement (Figure 7b) ==";
  print_endline
    "The interpreter keeps calling the same stack interface; the master\n\
     adapter turns each call into bus transactions against the hardware\n\
     stack's special function registers.\n";
  let config = List.hd Jcvm.Configs.standard in
  let row = Core.Exploration.run_one ~config applet in
  Printf.printf "under %s: %d bus transactions, %d cycles, %.1f pJ (check: %s)\n\n"
    config.Jcvm.Configs.name row.Core.Exploration.transactions
    row.Core.Exploration.cycles row.Core.Exploration.bus_pj
    (if row.Core.Exploration.correct then "ok" else "WRONG");

  print_endline "== 3. Exploring the interface design space ==";
  print_endline
    "Varying access width, register organization and address map\n\
     (the paper: \"we change the address map, organization of these\n\
     registers and used bus transactions to access them\"):\n";
  let rows = Core.Exploration.run ~applets:[ applet ] () in
  print_endline (Core.Exploration.render rows);
  print_newline ();

  print_endline "== 4. Fast estimation at layer 2 ==";
  print_endline
    "Layer 2 trades accuracy for speed but must preserve the ranking:\n";
  let l2_rows = Core.Exploration.run ~level:Core.Level.L2 ~applets:[ applet ] () in
  print_endline (Core.Exploration.render l2_rows);

  let best rows =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when b.Core.Exploration.bus_pj <= r.Core.Exploration.bus_pj -> acc
        | _ -> Some r)
      None rows
  in
  match best rows, best l2_rows with
  | Some b1, Some b2 ->
    Printf.printf "\nwinner at layer 1: %s; winner at layer 2: %s -> %s\n"
      b1.Core.Exploration.config.Jcvm.Configs.name
      b2.Core.Exploration.config.Jcvm.Configs.name
      (if b1.Core.Exploration.config.Jcvm.Configs.name
          = b2.Core.Exploration.config.Jcvm.Configs.name
       then "the fast model makes the same design decision"
       else "DISAGREEMENT - use layer 1 for the final call")
  | _ -> ()
