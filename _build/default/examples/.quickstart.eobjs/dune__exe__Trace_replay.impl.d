examples/trace_replay.ml: Array Core Ec Filename Format List Power Printf Soc Sys
