examples/quickstart.mli:
