examples/jcvm_exploration.mli:
