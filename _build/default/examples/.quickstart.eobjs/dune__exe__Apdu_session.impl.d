examples/apdu_session.ml: Core Format Iso7816 List Printf Soc
