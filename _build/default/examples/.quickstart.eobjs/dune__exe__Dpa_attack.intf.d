examples/dpa_attack.mli:
