examples/apdu_session.mli:
