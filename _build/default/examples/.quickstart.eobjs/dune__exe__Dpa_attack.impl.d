examples/dpa_attack.ml: Array Core Ec Fun List Power Printf Sim Soc
