examples/dma_offload.ml: Buffer Core Printf Soc
