examples/quickstart.ml: Array Core Ec List Power Printf Sim Soc
