examples/refinement_ladder.ml: Array Core List Printf Sim Soc Tlm3
