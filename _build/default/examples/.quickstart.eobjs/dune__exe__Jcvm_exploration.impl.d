examples/jcvm_exploration.ml: Core Jcvm List Printf
