examples/dma_offload.mli:
