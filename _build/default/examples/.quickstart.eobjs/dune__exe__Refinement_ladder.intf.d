examples/refinement_ladder.mli:
