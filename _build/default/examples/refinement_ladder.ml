(* The hierarchy in one picture: the same workload — read a 32-word
   table, transform it, write it back — descending the abstraction ladder
   the paper builds on:

     layer 3  untimed messages          (functional partitioning)
     layer 2  timed transactions        (fast estimation, +/-15% energy)
     layer 1  cycle-accurate transfers  (0% timing, -8% energy)
     layer 0  gate-level reference      (the golden numbers)

   Run with:  dune exec examples/refinement_ladder.exe *)

let words = 32
let src = Soc.Platform.Map.ram_base
let dst = Soc.Platform.Map.ram_base + 0x400

let fill system =
  let ram = Soc.Platform.ram (Core.System.platform system) in
  for w = 0 to words - 1 do
    Soc.Memory.poke32 ram ~addr:(src + (4 * w)) ((w * 0x2545F491) land 0xFFFFFF)
  done

let transform v = (v lxor 0x5A5A5A) land 0xFFFFFF

let check system =
  let ram = Soc.Platform.ram (Core.System.platform system) in
  let rec ok w =
    w >= words
    || (Soc.Memory.peek32 ram ~addr:(dst + (4 * w))
        = transform (Soc.Memory.peek32 ram ~addr:(src + (4 * w)))
       && ok (w + 1))
  in
  ok 0

let () =
  Printf.printf
    "One workload (read %d words, transform, write back), four rungs:\n\n" words;

  (* Layer 3: untimed messages straight at the slave behaviours. *)
  let system = Core.System.create () in
  fill system;
  let channel =
    Tlm3.Channel.create (Soc.Platform.decoder (Core.System.platform system))
  in
  (match Tlm3.Channel.read channel { Tlm3.Channel.addr = src; words } with
  | Tlm3.Channel.Ok_data data ->
    ignore (Tlm3.Channel.write channel ~addr:dst (Array.map transform data))
  | Tlm3.Channel.Bus_error -> failwith "layer 3 failed");
  Printf.printf "layer 3 (messages):      %d messages, 0 cycles, no energy model%s\n"
    (Tlm3.Channel.messages channel)
    (if check system then "" else "  [WRONG]");

  (* Layers 2, 1 and 0: the same traffic through the timed models via the
     layer-3 bridge. *)
  List.iter
    (fun (label, level) ->
      let system = Core.System.create ~level () in
      fill system;
      let bridge =
        Tlm3.Bridge.create ~kernel:(Core.System.kernel system)
          ~port:(Core.System.port system)
      in
      (match Tlm3.Bridge.read bridge ~addr:src ~words with
      | Tlm3.Channel.Ok_data data, _ ->
        ignore (Tlm3.Bridge.write bridge ~addr:dst (Array.map transform data))
      | Tlm3.Channel.Bus_error, _ -> failwith "bridge failed");
      Printf.printf "%-24s %d transactions, %d cycles, %8.1f pJ%s\n" label
        (Tlm3.Bridge.transactions bridge)
        (Sim.Kernel.now (Core.System.kernel system))
        (Core.System.bus_energy_pj system)
        (if check system then "" else "  [WRONG]"))
    [
      ("layer 2 (timed):", Core.Level.L2);
      ("layer 1 (cycle-true):", Core.Level.L1);
      ("layer 0 (gate-level):", Core.Level.Rtl);
    ];
  print_endline
    "\nSame function at every rung; each refinement adds timing and energy\n\
     fidelity and costs simulation speed - the trade the paper quantifies."
