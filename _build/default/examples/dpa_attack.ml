(* Power analysis on simulated traces (the paper's second motivation:
   "Estimation of power consumption over time is important to reduce the
   probability of a successful power analysis attack").

   The cycle-accurate layer-1 profile stands in for an oscilloscope: we
   encrypt random plaintexts on the crypto coprocessor, record one power
   trace per run, mount a correlation power analysis against the S-box
   output, and then show how a masked read-out protocol changes the
   picture — including the pitfall of reading mask and masked data
   back-to-back.

   Run with:  dune exec examples/dpa_attack.exe *)

let secret_key = 0x5A

(* One encryption on a fresh card; returns its per-cycle energy trace. *)
let encrypt_and_measure ~seed ~masked ~careless pt =
  let system =
    Core.System.create ~level:Core.Level.L1 ~record_profile:true ~seed ()
  in
  let kernel = Core.System.kernel system in
  let port = Core.System.port system in
  let ids = Ec.Txn.Id_gen.create () in
  let transact txn =
    Ec.Port.submit_exn port txn;
    ignore
      (Sim.Kernel.run_until kernel ~max_cycles:10_000 (fun () ->
           Ec.Port.completed port txn.Ec.Txn.id));
    port.Ec.Port.retire txn.Ec.Txn.id;
    txn.Ec.Txn.data.(0)
  in
  let base = Soc.Platform.Map.crypto_base in
  let write addr v =
    ignore
      (transact (Ec.Txn.single_write ~id:(Ec.Txn.Id_gen.fresh ids) addr ~value:v))
  in
  let read addr =
    transact (Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh ids) addr)
  in
  write (base + 0x00) secret_key;
  write (base + 0x04) pt;
  write (base + 0x08) (if masked then 0b11 else 0b01);
  let rec wait () = if read (base + 0x0C) land 2 = 0 then wait () in
  wait ();
  let ct = read (base + 0x10) in
  let ct =
    if masked then begin
      if not careless then
        (* Break the Hamming-distance chain between masked data and mask. *)
        ignore (read (base + 0x0C));
      ct lxor read (base + 0x14)
    end
    else ct
  in
  ignore ct;
  match Core.System.profile system with
  | Some p -> Power.Profile.to_array p
  | None -> assert false

let collect ~masked ~careless ~n =
  let rng = Sim.Rng.create ~seed:0xA77AC4 in
  let inputs = List.init n (fun _ -> Sim.Rng.bits rng 8) in
  let traces =
    List.mapi
      (fun i pt -> encrypt_and_measure ~seed:(i + 1) ~masked ~careless pt)
      inputs
  in
  (inputs, traces)

(* Leakage hypothesis: Hamming weight of the S-box output byte. *)
let model ~key ~input =
  float_of_int (Power.Dpa.hamming_weight (Soc.Crypto.sbox (input lxor key)))

let attack name (inputs, traces) =
  let scores =
    Power.Dpa.cpa_attack ~traces ~inputs ~model ~guesses:(List.init 256 Fun.id)
  in
  (match scores with
  | (best, s0) :: (second, s1) :: _ ->
    Printf.printf "%-28s best guess 0x%02X (r=%.3f), runner-up 0x%02X (r=%.3f)" name
      best s0 second s1;
    if best = secret_key && s0 > 1.5 *. s1 then
      print_endline "  -> KEY RECOVERED"
    else if best = secret_key then print_endline "  -> key first but not distinct"
    else print_endline "  -> attack failed"
  | _ -> ());
  scores

let () =
  Printf.printf "secret key byte: 0x%02X (the attacker does not know this)\n" secret_key;
  Printf.printf "collecting %d traces per scenario...\n\n" 150;

  print_endline "== 1. Unprotected read-out ==";
  print_endline
    "The ciphertext crosses the read-data bus in the clear; its Hamming\n\
     weight modulates the wire energy of that cycle.";
  ignore (attack "unprotected:" (collect ~masked:false ~careless:false ~n:150));
  print_newline ();

  print_endline "== 2. Masked read-out done WRONG ==";
  print_endline
    "DOUT returns ct^m and MASK returns m - but read back-to-back, the\n\
     read bus transitions from ct^m to m, and HD(ct^m, m) = HW(ct): the\n\
     mask cancels itself on the wires.";
  ignore (attack "masked, back-to-back:" (collect ~masked:true ~careless:true ~n:150));
  print_newline ();

  print_endline "== 3. Masked read-out done right ==";
  print_endline
    "Interposing a constant STATUS read between DOUT and MASK breaks the\n\
     Hamming-distance chain; every bus value is now blinded.";
  ignore (attack "masked, interposed:" (collect ~masked:true ~careless:false ~n:150));
  print_newline ();

  print_endline
    "Lesson: the hierarchical energy model is accurate enough at layer 1\n\
     to evaluate power-analysis countermeasures before RTL exists."
