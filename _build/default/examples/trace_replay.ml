(* The paper's verification methodology (section 4.1): run an assembly
   test program on the register-transfer model, trace its bus
   transactions, replay the trace into the transaction-level models and
   compare cycles and energy.

   Run with:  dune exec examples/trace_replay.exe *)

let () =
  print_endline "== 1. Assemble the bus-exercise test program ==";
  let program = Soc.Asm.assemble Core.Test_programs.bus_exercise in
  Printf.printf "%d words\n\n" (Array.length program.Soc.Asm.words);

  print_endline "== 2. Run it live on the gate-level model, tracing the bus ==";
  let live = Core.Runner.run_program ~level:Core.Level.Rtl program in
  let trace = Core.Runner.capture_cpu_trace program in
  Printf.printf "live run: %d instructions, %d cycles, %.1f pJ\n"
    live.Core.Runner.instructions live.Core.Runner.result.Core.Runner.cycles
    live.Core.Runner.result.Core.Runner.bus_pj;
  Printf.printf "captured trace: %d transactions, %d beats\n\n"
    (Ec.Trace.total_txns trace) (Ec.Trace.total_beats trace);

  print_endline "== 3. A few trace lines (the stimulus format) ==";
  List.iteri
    (fun i line -> if i < 6 then Printf.printf "   %s\n" line)
    (Ec.Trace.to_lines trace);
  Printf.printf "   ... (%d more)\n\n" (max 0 (Ec.Trace.total_txns trace - 6));

  print_endline "== 4. Characterize the energy table from a training run ==";
  let table = Core.Runner.characterize () in
  Format.printf "%a@.@." Power.Characterization.pp table;

  print_endline "== 5. Replay the trace into every model ==";
  let init system =
    Core.Runner.fill_memories system;
    Soc.Platform.load_program (Core.System.platform system) program
  in
  let results = Core.Runner.run_levels ~table ~mode:`Pipelined ~init trace in
  let reference = List.hd results in
  List.iter
    (fun (r : Core.Runner.result) ->
      Printf.printf "%-12s cycles=%-5d (%+5.1f%%)   energy=%8.1f pJ (%+5.1f%%)\n"
        (Core.Level.to_string r.Core.Runner.level) r.Core.Runner.cycles
        (float_of_int (r.Core.Runner.cycles - reference.Core.Runner.cycles)
        /. float_of_int reference.Core.Runner.cycles *. 100.0)
        r.Core.Runner.bus_pj
        (Power.Units.pct_error ~reference:reference.Core.Runner.bus_pj
           r.Core.Runner.bus_pj))
    results;
  print_newline ();

  print_endline "== 6. Save / reload the trace (file format) ==";
  let path = Filename.temp_file "smartcard" ".trace" in
  Ec.Trace.save path trace;
  let reloaded = Ec.Trace.load path in
  Printf.printf "round-tripped %d transactions through %s: %s\n"
    (Ec.Trace.total_txns reloaded) path
    (if
       List.for_all2
         (fun a b -> Ec.Txn.equal_payload a.Ec.Trace.txn b.Ec.Trace.txn)
         trace reloaded
     then "identical"
     else "MISMATCH");
  Sys.remove path
