(* A complete terminal session: ISO 7816 APDUs to a wallet applet over
   the simulated UART, with all card-side I/O as EC bus transactions —
   so every command gets a cycle count and an energy price from the
   layer-1 model.

   Run with:  dune exec examples/apdu_session.exe *)

let wallet_aid = [ 0xA0; 0x00; 0x00; 0x00; 0x02 ]

let commands =
  [
    ("SELECT wallet", Iso7816.Apdu.command ~ins:Iso7816.Apdu.ins_select ~p1:0x04 ~data:wallet_aid ());
    ("CREDIT 100", Iso7816.Apdu.command ~ins:0x30 ~data:[ 100 ] ());
    ("CREDIT 55", Iso7816.Apdu.command ~ins:0x30 ~data:[ 55 ] ());
    ("DEBIT 30", Iso7816.Apdu.command ~ins:0x31 ~data:[ 30 ] ());
    ("BALANCE", Iso7816.Apdu.command ~ins:0x32 ~le:2 ());
    ("DEBIT 9999 (too much)", Iso7816.Apdu.command ~ins:0x31 ~data:[ 255 ] ());
    ("UNKNOWN INS", Iso7816.Apdu.command ~ins:0x77 ());
    ("SELECT missing applet",
     Iso7816.Apdu.command ~ins:Iso7816.Apdu.ins_select ~p1:0x04
       ~data:[ 0xDE; 0xAD; 0xBE; 0xEF; 0x00 ] ());
  ]

let () =
  let system = Core.System.create ~level:Core.Level.L1 () in
  let kernel = Core.System.kernel system in
  let platform = Core.System.platform system in
  let card =
    Iso7816.Card.create
      [ Iso7816.Card.echo_applet; Iso7816.Card.wallet_applet ~initial:0 () ]
  in
  print_endline "Terminal session against the simulated card (layer-1 bus):\n";
  let stats =
    Iso7816.Session.run ~kernel ~port:(Core.System.port system)
      ~uart:(Soc.Platform.uart platform)
      ~energy_probe:(fun () -> Core.System.energy_since_last_call_pj system)
      ~card (List.map snd commands)
  in
  List.iter2
    (fun (label, _) (x : Iso7816.Session.exchange) ->
      Format.printf "%-24s -> %-18s %5d cycles  %8.1f pJ@."
        label
        (Format.asprintf "%a" Iso7816.Apdu.pp_response x.Iso7816.Session.response)
        x.Iso7816.Session.cycles x.Iso7816.Session.energy_pj)
    commands stats.Iso7816.Session.exchanges;
  Printf.printf
    "\nsession total: %d cycles, %d firmware bus transactions, %d commands\n"
    stats.Iso7816.Session.total_cycles stats.Iso7816.Session.firmware_txns
    (Iso7816.Card.commands_handled card);
  print_endline
    "\nEach row is a real bus workload: header/data bytes polled from the\n\
     UART, the response pushed back byte by byte - the traffic mix whose\n\
     energy a power-aware design has to budget per command."
