(* Instruction set, assembler and CPU core. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_sample_instrs =
  [
    Soc.Isa.Nop; Soc.Isa.Halt;
    Soc.Isa.Add (1, 2, 3); Soc.Isa.Sub (31, 30, 29); Soc.Isa.And (4, 5, 6);
    Soc.Isa.Or (7, 8, 9); Soc.Isa.Xor (10, 11, 12); Soc.Isa.Slt (13, 14, 15);
    Soc.Isa.Sll (1, 2, 31); Soc.Isa.Srl (3, 4, 0); Soc.Isa.Mul (5, 6, 7);
    Soc.Isa.Addi (1, 2, -32768); Soc.Isa.Andi (3, 4, 0xFFFF);
    Soc.Isa.Ori (5, 6, 0); Soc.Isa.Xori (7, 8, 0x5A5A);
    Soc.Isa.Lui (9, 0xABCD); Soc.Isa.Slti (10, 11, 32767);
    Soc.Isa.Lw (1, -4, 2); Soc.Isa.Lh (3, 100, 4); Soc.Isa.Lhu (5, 2, 6);
    Soc.Isa.Lb (7, 1, 8); Soc.Isa.Lbu (9, 3, 10);
    Soc.Isa.Sw (11, 0, 12); Soc.Isa.Sh (13, -2, 14); Soc.Isa.Sb (15, 255, 16);
    Soc.Isa.Lw4 (20, 16, 21); Soc.Isa.Sw4 (24, -16, 25);
    Soc.Isa.Beq (1, 2, -1); Soc.Isa.Bne (3, 4, 100); Soc.Isa.Blt (5, 6, 0);
    Soc.Isa.Bge (7, 8, -100);
    Soc.Isa.J 0x3FFFFFF; Soc.Isa.Jal 0; Soc.Isa.Jr 31;
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun instr ->
      let back = Soc.Isa.decode (Soc.Isa.encode instr) in
      check_bool (Soc.Isa.to_string instr) true (back = instr))
    all_sample_instrs

let test_encode_validation () =
  let invalid f =
    check_bool "rejected" true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  invalid (fun () -> Soc.Isa.encode (Soc.Isa.Add (32, 0, 0)));
  invalid (fun () -> Soc.Isa.encode (Soc.Isa.Addi (1, 0, 40000)));
  invalid (fun () -> Soc.Isa.encode (Soc.Isa.Ori (1, 0, -1)));
  invalid (fun () -> Soc.Isa.encode (Soc.Isa.Sll (1, 0, 32)));
  invalid (fun () -> Soc.Isa.encode (Soc.Isa.J (1 lsl 26)))

let test_decode_unknown () =
  check_bool "unknown opcode" true
    (match Soc.Isa.decode (63 lsl 26) with
    | _ -> false
    | exception Failure _ -> true)

let test_to_string_reassembles () =
  (* The textual form of every instruction is valid assembler input. *)
  List.iter
    (fun instr ->
      let text = Soc.Isa.to_string instr in
      let p = Soc.Asm.assemble text in
      check_int text (Soc.Isa.encode instr) p.Soc.Asm.words.(0))
    (List.filter
       (fun i -> not (Soc.Isa.is_branch i))
       all_sample_instrs)

let test_asm_labels_and_branches () =
  let p =
    Soc.Asm.assemble
      "start: addi r1, r0, 3\nloop: addi r1, r1, -1\n  bne r1, r0, loop\n  beq r0, r0, start\n  halt"
  in
  (* bne at index 2 branches to index 1: offset -2. *)
  check_int "backward branch" (Soc.Isa.encode (Soc.Isa.Bne (1, 0, -2)))
    p.Soc.Asm.words.(2);
  check_int "to start" (Soc.Isa.encode (Soc.Isa.Beq (0, 0, -4))) p.Soc.Asm.words.(3);
  check_int "label addr" 4 (Soc.Asm.label_addr p "loop")

let test_asm_origin_affects_jumps () =
  let p = Soc.Asm.assemble ~origin:0x1000 "target: nop\n j target" in
  check_int "absolute word target" (Soc.Isa.encode (Soc.Isa.J (0x1000 lsr 2)))
    p.Soc.Asm.words.(1)

let test_asm_pseudo_instructions () =
  let p = Soc.Asm.assemble "li r5, 0x12345678\nmove r2, r5\nhalt" in
  check_int "lui" (Soc.Isa.encode (Soc.Isa.Lui (5, 0x1234))) p.Soc.Asm.words.(0);
  check_int "ori" (Soc.Isa.encode (Soc.Isa.Ori (5, 5, 0x5678))) p.Soc.Asm.words.(1);
  check_int "move" (Soc.Isa.encode (Soc.Isa.Add (2, 5, 0))) p.Soc.Asm.words.(2)

let test_asm_directives () =
  let p = Soc.Asm.assemble ".word 0xDEADBEEF\n.space 8\n.word 42" in
  check_int "word" 0xDEADBEEF p.Soc.Asm.words.(0);
  check_int "space zeroed" 0 p.Soc.Asm.words.(1);
  check_int "after space" 42 p.Soc.Asm.words.(3);
  check_int "length" 4 (Array.length p.Soc.Asm.words)

let test_asm_errors () =
  let rejects src =
    check_bool src true
      (match Soc.Asm.assemble src with
      | _ -> false
      | exception Soc.Asm.Error _ -> true)
  in
  rejects "bogus r1, r2";
  rejects "addi r1, r2";
  rejects "addi r99, r0, 1";
  rejects "j missing_label";
  rejects "dup: nop\ndup: nop";
  rejects "lw r1, r2";
  rejects ".space 3"

let test_asm_comments_and_blank () =
  let p = Soc.Asm.assemble "# full comment\n\n  nop # trailing\nhalt" in
  check_int "two words" 2 (Array.length p.Soc.Asm.words)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_disassemble () =
  let p = Soc.Asm.assemble "addi r1, r0, 7\nhalt" in
  match Soc.Asm.disassemble p.Soc.Asm.words with
  | [ l0; l1 ] ->
    check_bool "first" true (contains l0 "addi r1, r0, 7");
    check_bool "second" true (contains l1 "halt")
  | _ -> Alcotest.fail "two lines"

(* CPU tests run against the layer-1 bus on the harness memory map, with
   the program in the executable fast memory. *)
let run_program ?(max_cycles = 100_000) src =
  let h = Bus_harness.build Bus_harness.L1_l in
  let program = Soc.Asm.assemble ~origin:Bus_harness.fast_base src in
  Soc.Memory.load_program h.Bus_harness.fast program;
  let cpu = Soc.Cpu.create ~kernel:h.Bus_harness.kernel ~port:h.Bus_harness.port () in
  let cycles = Soc.Cpu.run_to_halt cpu ~kernel:h.Bus_harness.kernel ~max_cycles () in
  (h, cpu, cycles)

let test_cpu_arithmetic () =
  let _, cpu, _ =
    run_program
      "addi r1, r0, 21\n\
       addi r2, r0, 2\n\
       mul r3, r1, r2\n\
       sub r4, r3, r1\n\
       xor r5, r3, r4\n\
       slt r6, r4, r3\n\
       halt"
  in
  check_int "mul" 42 (Soc.Cpu.reg cpu 3);
  check_int "sub" 21 (Soc.Cpu.reg cpu 4);
  check_int "xor" (42 lxor 21) (Soc.Cpu.reg cpu 5);
  check_int "slt" 1 (Soc.Cpu.reg cpu 6);
  check_int "r0 stays zero" 0 (Soc.Cpu.reg cpu 0)

let test_cpu_memory_ops () =
  let h, cpu, _ =
    run_program
      "li r1, 0x0100\n\
       li r2, 0x11223344\n\
       sw r2, 0(r1)\n\
       lb r3, 0(r1)\n\
       lbu r4, 3(r1)\n\
       lh r5, 0(r1)\n\
       sb r0, 1(r1)\n\
       lw r6, 0(r1)\n\
       halt"
  in
  check_int "lb sign extends 0x44" 0x44 (Soc.Cpu.reg cpu 3);
  check_int "lbu msb" 0x11 (Soc.Cpu.reg cpu 4);
  check_int "lh" 0x3344 (Soc.Cpu.reg cpu 5);
  check_int "sb cleared lane 1" 0x11220044 (Soc.Cpu.reg cpu 6);
  check_int "memory backdoor agrees" 0x11220044
    (Soc.Memory.peek32 h.Bus_harness.fast ~addr:0x100)

let test_cpu_sign_extension () =
  let _, cpu, _ =
    run_program
      "li r1, 0x0200\n\
       li r2, 0xFFFFFF80\n\
       sb r2, 0(r1)\n\
       lb r3, 0(r1)\n\
       lbu r4, 0(r1)\n\
       li r5, 0xFFFF8000\n\
       sh r5, 2(r1)\n\
       lh r6, 2(r1)\n\
       lhu r7, 2(r1)\n\
       halt"
  in
  check_int "lb negative" 0xFFFFFF80 (Soc.Cpu.reg cpu 3);
  check_int "lbu positive" 0x80 (Soc.Cpu.reg cpu 4);
  check_int "lh negative" 0xFFFF8000 (Soc.Cpu.reg cpu 6);
  check_int "lhu positive" 0x8000 (Soc.Cpu.reg cpu 7)

let test_cpu_branches_and_loop () =
  let _, cpu, _ =
    run_program
      "addi r1, r0, 10\n\
       add r2, r0, r0\n\
       loop: add r2, r2, r1\n\
       addi r1, r1, -1\n\
       bne r1, r0, loop\n\
       halt"
  in
  check_int "sum 10..1" 55 (Soc.Cpu.reg cpu 2);
  check_int "instructions" (2 + (3 * 10) + 1) (Soc.Cpu.instructions cpu)

let test_cpu_jal_jr () =
  let _, cpu, _ =
    run_program
      "  jal func\n\
       after: addi r2, r0, 7\n\
       halt\n\
       func: addi r1, r0, 5\n\
       jr r31"
  in
  check_int "function ran" 5 (Soc.Cpu.reg cpu 1);
  check_int "returned" 7 (Soc.Cpu.reg cpu 2)

let test_cpu_signed_compare () =
  let _, cpu, _ =
    run_program
      "li r1, 0xFFFFFFFF\n\
       addi r2, r0, 1\n\
       blt r1, r2, neg_less\n\
       addi r3, r0, 0\n\
       halt\n\
       neg_less: addi r3, r0, 1\n\
       halt"
  in
  check_int "-1 < 1 signed" 1 (Soc.Cpu.reg cpu 3)

let test_cpu_burst_instructions () =
  let h, cpu, _ =
    run_program
      "li r1, 0x0300\n\
       li r4, 0x0A0B0C0D\n\
       li r5, 0x11111111\n\
       li r6, 0x22222222\n\
       li r7, 0x33333333\n\
       sw4 r4, 0(r1)\n\
       lw4 r8, 0(r1)\n\
       halt"
  in
  check_int "burst r8" 0x0A0B0C0D (Soc.Cpu.reg cpu 8);
  check_int "burst r11" 0x33333333 (Soc.Cpu.reg cpu 11);
  check_int "memory word 2" 0x22222222
    (Soc.Memory.peek32 h.Bus_harness.fast ~addr:0x308);
  check_int "loads counted" 1 (Soc.Cpu.loads cpu);
  check_int "stores counted" 1 (Soc.Cpu.stores cpu)

let test_cpu_bus_error_fault () =
  let _, cpu, _ = run_program "li r1, 0x8000\nlw r2, 0(r1)\nhalt" in
  check_bool "halted on fault" true (Soc.Cpu.halted cpu);
  match Soc.Cpu.fault cpu with
  | Some (Soc.Cpu.Bus_error addr) -> check_int "fault addr" 0x8000 addr
  | _ -> Alcotest.fail "expected bus error"

let test_cpu_misaligned_fault () =
  let _, cpu, _ = run_program "li r1, 0x0101\nlw r2, 0(r1)\nhalt" in
  match Soc.Cpu.fault cpu with
  | Some (Soc.Cpu.Misaligned addr) -> check_int "fault addr" 0x101 addr
  | _ -> Alcotest.fail "expected misaligned"

let test_cpu_illegal_instruction () =
  let h = Bus_harness.build Bus_harness.L1_l in
  Soc.Memory.poke32 h.Bus_harness.fast ~addr:0 0xFFFFFFFF;
  let cpu = Soc.Cpu.create ~kernel:h.Bus_harness.kernel ~port:h.Bus_harness.port () in
  ignore (Soc.Cpu.run_to_halt cpu ~kernel:h.Bus_harness.kernel ());
  match Soc.Cpu.fault cpu with
  | Some (Soc.Cpu.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "expected illegal instruction"

let test_cpu_rom_write_faults () =
  let _, cpu, _ =
    run_program (Printf.sprintf "li r1, %d\nsw r1, 0(r1)\nhalt" Bus_harness.rom_base)
  in
  match Soc.Cpu.fault cpu with
  | Some (Soc.Cpu.Bus_error _) -> ()
  | _ -> Alcotest.fail "store to ROM must fault"

(* The store buffer overlaps stores with subsequent fetches: a
   store-heavy loop must be faster with the buffer than without. *)
let test_cpu_store_buffer_speedup () =
  (* Stores to the slow memory (four write wait states): without the
     buffer each store stalls the core through its data phase. *)
  let src =
    "li r1, 0x1400\n\
     addi r2, r0, 32\n\
     loop: sw r2, 0(r1)\n\
     addi r1, r1, 4\n\
     addi r2, r2, -1\n\
     bne r2, r0, loop\n\
     halt"
  in
  let run ~store_buffer =
    let h = Bus_harness.build Bus_harness.L1_l in
    let program = Soc.Asm.assemble ~origin:Bus_harness.fast_base src in
    Soc.Memory.load_program h.Bus_harness.fast program;
    let cpu =
      Soc.Cpu.create ~kernel:h.Bus_harness.kernel ~port:h.Bus_harness.port
        ~store_buffer ()
    in
    (Soc.Cpu.run_to_halt cpu ~kernel:h.Bus_harness.kernel (), h, cpu)
  in
  let fast, h_fast, _ = run ~store_buffer:true in
  let slow, _, _ = run ~store_buffer:false in
  check_bool
    (Printf.sprintf "buffered (%d) < blocking (%d)" fast slow)
    true (fast < slow);
  (* Final memory state must be identical regardless. *)
  check_int "last store landed" 1
    (Soc.Memory.peek32 h_fast.Bus_harness.slow ~addr:(0x1400 + (4 * 31)))

(* Load after store to the same address must see the stored value (the
   conservative load ordering drains the buffer). *)
let test_cpu_load_after_store () =
  let _, cpu, _ =
    run_program
      "li r1, 0x0500\n\
       li r2, 0xCAFEBABE\n\
       sw r2, 0(r1)\n\
       lw r3, 0(r1)\n\
       halt"
  in
  check_int "raw hazard respected" 0xCAFEBABE (Soc.Cpu.reg cpu 3)

(* Store buffer drains before halt completes so no writes are lost. *)
let test_cpu_halt_drains_store () =
  let h, _, _ = run_program "li r1, 0x0600\nli r2, 77\nsw r2, 0(r1)\nhalt" in
  check_int "store visible after halt" 77
    (Soc.Memory.peek32 h.Bus_harness.fast ~addr:0x600)

let suite =
  [
    Alcotest.test_case "isa roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "isa encode validation" `Quick test_encode_validation;
    Alcotest.test_case "isa decode unknown" `Quick test_decode_unknown;
    Alcotest.test_case "isa text reassembles" `Quick test_to_string_reassembles;
    Alcotest.test_case "asm labels and branches" `Quick test_asm_labels_and_branches;
    Alcotest.test_case "asm origin and jumps" `Quick test_asm_origin_affects_jumps;
    Alcotest.test_case "asm pseudo instructions" `Quick test_asm_pseudo_instructions;
    Alcotest.test_case "asm directives" `Quick test_asm_directives;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
    Alcotest.test_case "asm comments" `Quick test_asm_comments_and_blank;
    Alcotest.test_case "asm disassemble" `Quick test_disassemble;
    Alcotest.test_case "cpu arithmetic" `Quick test_cpu_arithmetic;
    Alcotest.test_case "cpu memory ops" `Quick test_cpu_memory_ops;
    Alcotest.test_case "cpu sign extension" `Quick test_cpu_sign_extension;
    Alcotest.test_case "cpu branches and loop" `Quick test_cpu_branches_and_loop;
    Alcotest.test_case "cpu jal/jr" `Quick test_cpu_jal_jr;
    Alcotest.test_case "cpu signed compare" `Quick test_cpu_signed_compare;
    Alcotest.test_case "cpu burst instructions" `Quick test_cpu_burst_instructions;
    Alcotest.test_case "cpu bus error fault" `Quick test_cpu_bus_error_fault;
    Alcotest.test_case "cpu misaligned fault" `Quick test_cpu_misaligned_fault;
    Alcotest.test_case "cpu illegal instruction" `Quick test_cpu_illegal_instruction;
    Alcotest.test_case "cpu rom write faults" `Quick test_cpu_rom_write_faults;
    Alcotest.test_case "cpu store buffer speedup" `Quick test_cpu_store_buffer_speedup;
    Alcotest.test_case "cpu load after store" `Quick test_cpu_load_after_store;
    Alcotest.test_case "cpu halt drains store buffer" `Quick
      test_cpu_halt_drains_store;
  ]

(* wfi: the core stops fetching until the interrupt wire asserts. *)
let test_cpu_wfi_sleeps_and_wakes () =
  let h = Bus_harness.build Bus_harness.L1_l in
  let program =
    Soc.Asm.assemble ~origin:Bus_harness.fast_base
      "addi r1, r0, 1\nwfi\naddi r1, r1, 1\nhalt"
  in
  Soc.Memory.load_program h.Bus_harness.fast program;
  let wire = ref false in
  let cpu =
    Soc.Cpu.create ~kernel:h.Bus_harness.kernel ~port:h.Bus_harness.port
      ~irq:(fun () -> !wire) ()
  in
  Sim.Kernel.run h.Bus_harness.kernel ~cycles:50;
  Alcotest.(check bool) "asleep" false (Soc.Cpu.halted cpu);
  Alcotest.(check int) "r1 before wake" 1 (Soc.Cpu.reg cpu 1);
  let fetches_asleep = Soc.Cpu.instructions cpu in
  Sim.Kernel.run h.Bus_harness.kernel ~cycles:50;
  Alcotest.(check int) "no instructions while asleep" fetches_asleep
    (Soc.Cpu.instructions cpu);
  wire := true;
  ignore (Soc.Cpu.run_to_halt cpu ~kernel:h.Bus_harness.kernel ());
  (* Interrupts disabled at the core: execution continues inline. *)
  Alcotest.(check int) "continued after wake" 2 (Soc.Cpu.reg cpu 1);
  Alcotest.(check int) "no vectoring" 0 (Soc.Cpu.interrupts_taken cpu)

let test_cpu_wfi_vectors_when_enabled () =
  let h = Bus_harness.build Bus_harness.L1_l in
  (* Vector at 0x40 stores a witness and returns. *)
  let program =
    Soc.Asm.assemble ~origin:Bus_harness.fast_base
      "  j main\n\
       .org 0x40\n\
       vec: addi r5, r0, 99\n\
       eret\n\
       main: ei\n\
       wfi\n\
       halt"
  in
  Soc.Memory.load_program h.Bus_harness.fast program;
  let wire = ref false in
  let fired = ref false in
  let cpu =
    Soc.Cpu.create ~kernel:h.Bus_harness.kernel ~port:h.Bus_harness.port
      ~irq:(fun () ->
        (* One-shot line: deasserts once taken. *)
        if !wire && not !fired then true else false)
      ()
  in
  Sim.Kernel.run h.Bus_harness.kernel ~cycles:30;
  wire := true;
  Sim.Kernel.on_rising h.Bus_harness.kernel ~name:"oneshot" (fun _ ->
      if Soc.Cpu.in_interrupt cpu then fired := true);
  ignore (Soc.Cpu.run_to_halt cpu ~kernel:h.Bus_harness.kernel ());
  Alcotest.(check int) "vectored once" 1 (Soc.Cpu.interrupts_taken cpu);
  Alcotest.(check int) "handler ran" 99 (Soc.Cpu.reg cpu 5)

let wfi_suite =
  [
    Alcotest.test_case "wfi sleeps and wakes inline" `Quick
      test_cpu_wfi_sleeps_and_wakes;
    Alcotest.test_case "wfi vectors when enabled" `Quick
      test_cpu_wfi_vectors_when_enabled;
  ]

let suite = suite @ wfi_suite
