test/suite_jcvm.ml: Alcotest Array Bytes Ec Jcvm List Printf Sim Tlm1
