test/suite_core.ml: Alcotest Core Ec Float Format Hashtbl List Power Printf Sim Soc String
