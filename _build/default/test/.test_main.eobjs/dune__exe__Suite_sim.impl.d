test/suite_sim.ml: Alcotest List Sim
