test/suite_iso7816.ml: Alcotest Core Fun Iso7816 List Soc
