test/suite_props.ml: Array Bus_harness Core Ec Float Format Iso7816 Jcvm List Power QCheck QCheck_alcotest Sim Soc String Tlm1 Tlm3
