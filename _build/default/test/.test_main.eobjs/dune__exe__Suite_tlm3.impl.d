test/suite_tlm3.ml: Alcotest Array Bus_harness Ec Sim Soc Tlm3
