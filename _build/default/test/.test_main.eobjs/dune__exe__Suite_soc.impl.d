test/suite_soc.ml: Alcotest Array Bus_harness Char Core Ec List Printf Sim Soc
