test/suite_ec.ml: Alcotest Array Ec Filename Fun Hashtbl List Sys
