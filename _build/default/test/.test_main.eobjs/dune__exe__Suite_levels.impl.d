test/suite_levels.ml: Alcotest Array Bus_harness Core Ec Filename Float Fun List Power Printf Rtl Sim Soc String Sys
