test/suite_isa.ml: Alcotest Array Bus_harness List Printf Sim Soc String
