test/suite_power.ml: Alcotest Array Core Ec Fun List Power Sim Soc String
