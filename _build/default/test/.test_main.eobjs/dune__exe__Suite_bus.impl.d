test/suite_bus.ml: Alcotest Array Bus_harness Ec Format List Printf Rtl Sim Soc Tlm1
