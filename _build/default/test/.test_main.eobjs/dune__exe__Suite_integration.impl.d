test/suite_integration.ml: Alcotest Array Core Ec Fun Jcvm Lazy List Power Printf Sim Soc
