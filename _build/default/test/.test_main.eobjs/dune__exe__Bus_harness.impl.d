test/bus_harness.ml: Ec List Power Rtl Sim Soc Tlm1 Tlm2
