(* Shared fixtures for the bus-model suites: a small three-slave system
   (fast RAM, slow EEPROM-like memory, read-only ROM) buildable at every
   abstraction level, plus run helpers. *)

type level = Rtl_l | L1_l | L2_l

let all_levels = [ Rtl_l; L1_l; L2_l ]

let level_name = function Rtl_l -> "rtl" | L1_l -> "l1" | L2_l -> "l2"

let fast_base = 0x0000
let slow_base = 0x1000
let rom_base = 0x2000

type t = {
  kernel : Sim.Kernel.t;
  port : Ec.Port.t;
  fast : Soc.Memory.t;
  slow : Soc.Memory.t;
  rom : Soc.Memory.t;
  busy : unit -> bool;
  completed : unit -> int;
  errors : unit -> int;
  energy_pj : unit -> float;
  transitions : unit -> int;
  profile : unit -> Power.Profile.t option;
  rtl_bus : Rtl.Bus.t option;
  l1_bus : Tlm1.Bus.t option;
}

let build ?(rtl_params = Rtl.Params.default)
    ?(table = Power.Characterization.default) ?(record_profile = false) level =
  let kernel = Sim.Kernel.create () in
  let fast =
    Soc.Memory.create
      (Ec.Slave_cfg.make ~name:"fast" ~base:fast_base ~size:0x1000
         ~executable:true ())
  in
  let slow =
    Soc.Memory.create
      (Ec.Slave_cfg.make ~name:"slow" ~base:slow_base ~size:0x1000 ~addr_wait:1
         ~read_wait:2 ~write_wait:4 ())
  in
  let rom =
    Soc.Memory.create
      (Ec.Slave_cfg.make ~name:"rom" ~base:rom_base ~size:0x1000
         ~writable:false ~executable:true ())
  in
  let decoder =
    Ec.Decoder.create [ Soc.Memory.slave fast; Soc.Memory.slave slow; Soc.Memory.slave rom ]
  in
  match level with
  | Rtl_l ->
    let bus = Rtl.Bus.create ~kernel ~decoder ~params:rtl_params ~record_profile () in
    {
      kernel;
      port = Rtl.Bus.port bus;
      fast;
      slow;
      rom;
      busy = (fun () -> Rtl.Bus.busy bus);
      completed = (fun () -> Rtl.Bus.completed_txns bus);
      errors = (fun () -> Rtl.Bus.error_txns bus);
      energy_pj = (fun () -> Rtl.Diesel.total_pj (Rtl.Bus.diesel bus));
      transitions = (fun () -> Rtl.Diesel.transitions_total (Rtl.Bus.diesel bus));
      profile = (fun () -> Power.Meter.profile (Rtl.Diesel.meter (Rtl.Bus.diesel bus)));
      rtl_bus = Some bus;
      l1_bus = None;
    }
  | L1_l ->
    let energy = Tlm1.Energy.create ~record_profile table in
    let bus = Tlm1.Bus.create ~kernel ~decoder ~energy () in
    {
      kernel;
      port = Tlm1.Bus.port bus;
      fast;
      slow;
      rom;
      busy = (fun () -> Tlm1.Bus.busy bus);
      completed = (fun () -> Tlm1.Bus.completed_txns bus);
      errors = (fun () -> Tlm1.Bus.error_txns bus);
      energy_pj = (fun () -> Tlm1.Energy.total_pj energy);
      transitions = (fun () -> Tlm1.Energy.transitions_total energy);
      profile = (fun () -> Power.Meter.profile (Tlm1.Energy.meter energy));
      rtl_bus = None;
      l1_bus = Some bus;
    }
  | L2_l ->
    let energy = Tlm2.Energy.create ~record_profile table in
    let bus = Tlm2.Bus.create ~kernel ~decoder ~energy () in
    {
      kernel;
      port = Tlm2.Bus.port bus;
      fast;
      slow;
      rom;
      busy = (fun () -> Tlm2.Bus.busy bus);
      completed = (fun () -> Tlm2.Bus.completed_txns bus);
      errors = (fun () -> Tlm2.Bus.error_txns bus);
      energy_pj = (fun () -> Tlm2.Energy.total_pj energy);
      transitions = (fun () -> 0);
      profile = (fun () -> Power.Meter.profile (Tlm2.Energy.meter energy));
      rtl_bus = None;
      l1_bus = None;
    }

(* Submits one transaction and runs to completion; returns the number of
   cycles from submission to the cycle in which the bus completed it. *)
let run_one h txn =
  assert (h.port.Ec.Port.try_submit txn);
  let start = Sim.Kernel.now h.kernel in
  ignore
    (Sim.Kernel.run_until h.kernel ~max_cycles:10_000 (fun () ->
         Ec.Port.completed h.port txn.Ec.Txn.id));
  h.port.Ec.Port.retire txn.Ec.Txn.id;
  Sim.Kernel.now h.kernel - start

(* Replays a trace through a fresh harness; returns (harness, cycles). *)
let run_trace ?rtl_params ?table ?record_profile ?(mode = `Pipelined) level trace =
  let h = build ?rtl_params ?table ?record_profile level in
  let master = Soc.Trace_master.create ~kernel:h.kernel ~port:h.port ~mode trace in
  let cycles = Soc.Trace_master.run master ~kernel:h.kernel ~max_cycles:200_000 () in
  (h, cycles)

(* Drives the same trace through every level and returns results in
   [Rtl_l; L1_l; L2_l] order. *)
let run_all_levels ?mode trace =
  List.map (fun level -> run_trace ?mode level trace) all_levels

let ids = Ec.Txn.Id_gen.create ()
let fresh () = Ec.Txn.Id_gen.fresh ids

let read ?(kind = Ec.Txn.Data) ?(width = Ec.Txn.W32) addr =
  Ec.Txn.single_read ~id:(fresh ()) ~kind ~width addr

let write ?(width = Ec.Txn.W32) addr value =
  Ec.Txn.single_write ~id:(fresh ()) ~width addr ~value

let bread ?(kind = Ec.Txn.Data) addr = Ec.Txn.burst_read ~id:(fresh ()) ~kind addr
let bwrite addr values = Ec.Txn.burst_write ~id:(fresh ()) addr ~values
