(* Core facade: system assembly, runners, workloads, verification
   sequences, report rendering. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_system_levels () =
  List.iter
    (fun level ->
      let s = Core.System.create ~level () in
      check_bool "level kept" true (Core.System.level s = level);
      check_bool "not busy" false (Core.System.bus_busy s);
      check_int "nothing done" 0 (Core.System.completed_txns s))
    Core.Level.all

let test_system_estimate_off () =
  let s = Core.System.create ~level:Core.Level.L1 ~estimate:false () in
  let kernel = Core.System.kernel s in
  let master =
    Soc.Trace_master.create ~kernel ~port:(Core.System.port s)
      [ Ec.Trace.item (Ec.Txn.single_read ~id:0 Soc.Platform.Map.rom_base) ]
  in
  ignore (Soc.Trace_master.run master ~kernel ());
  check_bool "no energy accounted" true (Core.System.bus_energy_pj s = 0.0);
  check_int "but traffic happened" 1 (Core.System.completed_txns s)

let test_system_profile_recording () =
  let s = Core.System.create ~level:Core.Level.L1 ~record_profile:true () in
  let kernel = Core.System.kernel s in
  Sim.Kernel.run kernel ~cycles:3;
  match Core.System.profile s with
  | Some p -> check_int "one sample per cycle" 3 (Power.Profile.length p)
  | None -> Alcotest.fail "profile expected"

let test_runner_trace_result_fields () =
  let r =
    Core.Runner.run_trace ~level:Core.Level.L1 Core.Verify_seqs.combined
  in
  check_int "txns" (Ec.Trace.total_txns Core.Verify_seqs.combined) r.Core.Runner.txns;
  check_int "beats" (Ec.Trace.total_beats Core.Verify_seqs.combined) r.Core.Runner.beats;
  check_int "no errors" 0 r.Core.Runner.errors;
  check_bool "cycles positive" true (r.Core.Runner.cycles > 0);
  check_bool "energy positive" true (r.Core.Runner.bus_pj > 0.0)

let test_runner_program () =
  let program = Soc.Asm.assemble (Core.Test_programs.checksum ~words:8) in
  let run = Core.Runner.run_program program in
  check_bool "halted cleanly" true (run.Core.Runner.fault = None);
  check_bool "instructions" true (run.Core.Runner.instructions > 10);
  (* The checksum ends up at the start of RAM. *)
  let ram = Soc.Platform.ram (Core.System.platform run.Core.Runner.system) in
  check_bool "sum stored" true
    (Soc.Memory.peek32 ram ~addr:Soc.Platform.Map.ram_base <> 0)

let test_runner_programs_all_clean () =
  List.iter
    (fun (name, src) ->
      let run = Core.Runner.run_program (Soc.Asm.assemble src) in
      check_bool (name ^ " clean") true (run.Core.Runner.fault = None))
    Core.Test_programs.all

let test_program_results_identical_across_levels () =
  (* The same program produces identical architectural results at every
     abstraction level. *)
  let program = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:8) in
  let ram_dump level =
    let run = Core.Runner.run_program ~level program in
    check_bool "clean" true (run.Core.Runner.fault = None);
    let ram = Soc.Platform.ram (Core.System.platform run.Core.Runner.system) in
    ( List.init 8 (fun i ->
          Soc.Memory.peek32 ram ~addr:(Soc.Platform.Map.ram_base + (4 * i))),
      run.Core.Runner.instructions )
  in
  let rtl = ram_dump Core.Level.Rtl in
  let l1 = ram_dump Core.Level.L1 in
  let l2 = ram_dump Core.Level.L2 in
  Alcotest.(check (pair (list int) int)) "rtl = l1" rtl l1;
  Alcotest.(check (pair (list int) int)) "rtl = l2" rtl l2;
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (fst rtl)

let test_capture_and_replay_cycles () =
  (* The traced program replayed on L1 takes about as long as the CPU run
     itself (same transactions, same gaps). *)
  let program = Soc.Asm.assemble (Core.Test_programs.memcpy ~words:8) in
  let live = Core.Runner.run_program ~level:Core.Level.Rtl program in
  let trace = Core.Runner.capture_cpu_trace program in
  check_bool "trace nonempty" true (Ec.Trace.total_txns trace > 20);
  let replay = Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Pipelined trace in
  let live_cycles = live.Core.Runner.result.Core.Runner.cycles in
  let diff = abs (replay.Core.Runner.cycles - live_cycles) in
  (* Gap-based replay cannot reproduce dependency stalls exactly; it must
     stay in the right ballpark. *)
  check_bool
    (Printf.sprintf "replay %d within 20%% of live %d" replay.Core.Runner.cycles
       live_cycles)
    true
    (float_of_int diff < 0.2 *. float_of_int live_cycles)

let test_characterize_reasonable () =
  let t = Core.Runner.characterize () in
  (* Derived averages exceed the naive 0.5*C*V^2 (coupling and slopes are
     folded in) but stay within a small factor. *)
  let default_addr = Power.Characterization.avg_addr_bit Power.Characterization.default in
  let derived_addr = Power.Characterization.avg_addr_bit t in
  check_bool "above default" true (derived_addr > default_addr);
  check_bool "below 2x" true (derived_addr < 2.0 *. default_addr)

let test_verify_seqs_complete () =
  (* The paper's list: single read/write with and without wait states,
     back-to-back, read/write ordering, bursts. *)
  List.iter
    (fun name ->
      check_bool name true (List.mem_assoc name Core.Verify_seqs.all))
    [
      "single-read-nowait"; "single-read-wait"; "single-write-nowait";
      "single-write-wait"; "back-to-back-reads"; "back-to-back-writes";
      "read-then-write"; "write-then-read-reorder"; "burst-reads";
      "burst-writes";
    ];
  check_int "combined covers all"
    (List.fold_left (fun acc (_, t) -> acc + List.length t) 0 Core.Verify_seqs.all)
    (List.length Core.Verify_seqs.combined)

let test_verify_seqs_error_free () =
  List.iter
    (fun (name, trace) ->
      let r = Core.Runner.run_trace ~level:Core.Level.L1 trace in
      check_int (name ^ " errors") 0 r.Core.Runner.errors)
    Core.Verify_seqs.all

let test_workload_random_error_free () =
  let rng = Sim.Rng.create ~seed:4242 in
  let trace = Core.Workloads.random_trace ~rng ~n:300 () in
  let r = Core.Runner.run_trace ~level:Core.Level.L1 trace in
  check_int "no decode errors" 0 r.Core.Runner.errors;
  check_int "all completed" 300 r.Core.Runner.txns

let test_workload_table3_covers_pairs () =
  let trace = Core.Workloads.table3_trace ~n:64 in
  let kind (txn : Ec.Txn.t) =
    match txn.Ec.Txn.dir, txn.Ec.Txn.burst with
    | Ec.Txn.Read, 1 -> 0
    | Ec.Txn.Write, 1 -> 1
    | Ec.Txn.Read, _ -> 2
    | Ec.Txn.Write, _ -> 3
  in
  let kinds = List.map (fun it -> kind it.Ec.Trace.txn) trace in
  let pairs = Hashtbl.create 16 in
  let rec note = function
    | a :: (b :: _ as rest) ->
      Hashtbl.replace pairs (a, b) ();
      note rest
    | [ _ ] | [] -> ()
  in
  note kinds;
  check_int "all 16 ordered pairs" 16 (Hashtbl.length pairs)

let test_report_table_layout () =
  let rendered =
    Core.Report.table ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  check_int "four lines" 4 (List.length lines);
  (match lines with
  | header :: _ ->
    check_bool "header formatted" true (String.length header > 0);
    List.iter
      (fun l -> check_int "equal width" (String.length header) (String.length l))
      lines
  | [] -> Alcotest.fail "empty table");
  Alcotest.(check string) "pct" "+14.7%" (Core.Report.pct 14.7);
  Alcotest.(check string) "pct negative" "-7.8%" (Core.Report.pct (-7.8));
  Alcotest.(check string) "ratio" "92.1%" (Core.Report.ratio_pct ~reference:1000.0 921.0)

let test_component_energy_accumulates () =
  let program = Soc.Asm.assemble Core.Test_programs.peripherals_tour in
  let run = Core.Runner.run_program program in
  check_bool "components consumed energy" true
    (run.Core.Runner.result.Core.Runner.component_pj > 0.0);
  check_bool "total above bus" true
    (Core.System.total_energy_pj run.Core.Runner.system
    > Core.System.bus_energy_pj run.Core.Runner.system)

let suite =
  [
    Alcotest.test_case "system levels" `Quick test_system_levels;
    Alcotest.test_case "system estimate off" `Quick test_system_estimate_off;
    Alcotest.test_case "system profile recording" `Quick test_system_profile_recording;
    Alcotest.test_case "runner trace results" `Quick test_runner_trace_result_fields;
    Alcotest.test_case "runner program" `Quick test_runner_program;
    Alcotest.test_case "runner all programs clean" `Slow test_runner_programs_all_clean;
    Alcotest.test_case "program results equal across levels" `Slow
      test_program_results_identical_across_levels;
    Alcotest.test_case "capture and replay cycles" `Quick
      test_capture_and_replay_cycles;
    Alcotest.test_case "characterize reasonable" `Slow test_characterize_reasonable;
    Alcotest.test_case "verify sequences complete" `Quick test_verify_seqs_complete;
    Alcotest.test_case "verify sequences error free" `Quick
      test_verify_seqs_error_free;
    Alcotest.test_case "random workload error free" `Quick
      test_workload_random_error_free;
    Alcotest.test_case "table3 covers pairs" `Quick test_workload_table3_covers_pairs;
    Alcotest.test_case "report rendering" `Quick test_report_table_layout;
    Alcotest.test_case "component energy accumulates" `Quick
      test_component_energy_accumulates;
  ]

(* Extensions: sampler-based coding study and ablation smoke checks. *)

let test_coding_study_program () =
  let program = Soc.Asm.assemble (Core.Test_programs.memcpy ~words:8) in
  let study = Core.Coding_study.run_program ~name:"memcpy" program in
  check_bool "cycles recorded" true (study.Core.Coding_study.cycles > 0);
  check_int "three buses" 3 (List.length study.Core.Coding_study.rows);
  List.iter
    (fun r ->
      check_bool (r.Core.Coding_study.bus ^ " best <= plain") true
        (r.Core.Coding_study.best_pj <= r.Core.Coding_study.plain_pj +. 1e-9))
    study.Core.Coding_study.rows;
  check_bool "renders" true (String.length (Core.Coding_study.render study) > 0)

let test_coding_study_sequential_fetch_gray_wins () =
  (* A long straight-line instruction stream has sequential addresses:
     Gray coding must save address-bus toggles. *)
  let body = String.concat "\n" (List.init 64 (fun _ -> "addi r1, r1, 1")) in
  let program = Soc.Asm.assemble (body ^ "\nhalt") in
  let study = Core.Coding_study.run_program program in
  let addr_row =
    List.find (fun r -> r.Core.Coding_study.bus = "address")
      study.Core.Coding_study.rows
  in
  check_bool "gray saves on sequential fetch" true
    (addr_row.Core.Coding_study.report.Power.Coding.gray_savings_pct > 10.0)

let test_ablation_store_buffer_rows () =
  let rows = Core.Ablations.store_buffer_effect () in
  check_int "three programs" 3 (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.Core.Ablations.label ^ " ratio >= 1") true
        (r.Core.Ablations.value >= 1.0))
    rows

let test_ablation_characterization_quality () =
  let rows = Core.Ablations.characterization_quality () in
  match rows with
  | [ default_row; derived_row ] ->
    check_bool "derived table more accurate" true
      (Float.abs derived_row.Core.Ablations.value
      < Float.abs default_row.Core.Ablations.value)
  | _ -> Alcotest.fail "two rows expected"

let extension_suite =
  [
    Alcotest.test_case "coding study on a program" `Slow test_coding_study_program;
    Alcotest.test_case "gray wins on sequential fetch" `Slow
      test_coding_study_sequential_fetch_gray_wins;
    Alcotest.test_case "ablation: store buffer rows" `Slow
      test_ablation_store_buffer_rows;
    Alcotest.test_case "ablation: characterization quality" `Slow
      test_ablation_characterization_quality;
  ]

let suite = suite @ extension_suite

(* Odds and ends across the facade. *)

let test_level_helpers () =
  check_int "three levels" 3 (List.length Core.Level.all);
  Alcotest.(check string) "names" "gate-level" (Core.Level.to_string Core.Level.Rtl);
  Alcotest.(check string) "pp" "TL layer 2"
    (Format.asprintf "%a" Core.Level.pp Core.Level.L2)

let test_verify_seqs_find () =
  check_int "burst-reads size" 4 (List.length (Core.Verify_seqs.find "burst-reads"));
  check_bool "unknown raises" true
    (match Core.Verify_seqs.find "no-such-sequence" with
    | _ -> false
    | exception Not_found -> true)

let test_units_formatting () =
  Alcotest.(check string) "pJ" "3.000 pJ"
    (Format.asprintf "%a" Power.Units.pp_pj 3.0);
  Alcotest.(check string) "nJ" "2.500 nJ"
    (Format.asprintf "%a" Power.Units.pp_pj 2500.0);
  Alcotest.(check string) "uJ" "1.200 uJ"
    (Format.asprintf "%a" Power.Units.pp_pj 1.2e6)

let test_workload_determinism () =
  let gen () =
    let rng = Sim.Rng.create ~seed:99 in
    Ec.Trace.to_lines (Core.Workloads.random_trace ~rng ~n:50 ())
  in
  Alcotest.(check (list string)) "same seed, same trace" (gen ()) (gen ())

let test_monitor_gap_recording () =
  (* A serial replay through a monitored port records non-trivial gaps. *)
  let system = Core.System.create () in
  let kernel = Core.System.kernel system in
  let monitor = Soc.Monitor.create ~kernel (Core.System.port system) in
  let trace =
    [
      Ec.Trace.item (Ec.Txn.single_read ~id:0 Soc.Platform.Map.rom_base);
      Ec.Trace.item ~gap:5 (Ec.Txn.single_read ~id:0 (Soc.Platform.Map.rom_base + 4));
    ]
  in
  let master =
    Soc.Trace_master.create ~kernel ~port:(Soc.Monitor.port monitor) ~mode:`Serial
      trace
  in
  ignore (Soc.Trace_master.run master ~kernel ());
  check_int "two recorded" 2 (Soc.Monitor.count monitor);
  match Soc.Monitor.trace monitor with
  | [ _; second ] ->
    check_bool "gap preserved-ish" true (second.Ec.Trace.gap >= 5)
  | _ -> Alcotest.fail "two items expected"

let test_uart_program_output () =
  (* Run the checksum program, then give the UART time to shift. *)
  let program = Soc.Asm.assemble (Core.Test_programs.checksum ~words:4) in
  let run = Core.Runner.run_program program in
  let kernel = Core.System.kernel run.Core.Runner.system in
  Sim.Kernel.run kernel ~cycles:400;
  let uart = Soc.Platform.uart (Core.System.platform run.Core.Runner.system) in
  check_int "one byte transmitted" 1 (String.length (Soc.Uart.transmitted uart))

let test_profile_csv_export () =
  let run =
    Core.Runner.run_program ~record_profile:true
      (Soc.Asm.assemble "addi r1, r0, 1\nhalt")
  in
  match run.Core.Runner.result.Core.Runner.profile with
  | Some p ->
    let lines = Power.Profile.to_csv_lines p in
    check_int "one line per cycle + header"
      (Power.Profile.length p + 1)
      (List.length lines)
  | None -> Alcotest.fail "profile expected"

let misc_suite =
  [
    Alcotest.test_case "level helpers" `Quick test_level_helpers;
    Alcotest.test_case "verify_seqs find" `Quick test_verify_seqs_find;
    Alcotest.test_case "units formatting" `Quick test_units_formatting;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "monitor gap recording" `Quick test_monitor_gap_recording;
    Alcotest.test_case "uart program output" `Quick test_uart_program_output;
    Alcotest.test_case "profile csv export" `Quick test_profile_csv_export;
  ]

let suite = suite @ misc_suite
