(* Power framework: units, characterization, profiles, components, DPA. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_units_pj_per_transition () =
  (* 0.5 * 400 fF * (2 V)^2 = 800 fJ = 0.8 pJ *)
  check_float "0.8 pJ" 0.8 (Power.Units.pj_per_transition ~capacitance_ff:400.0 ~vdd:2.0)

let test_units_power () =
  (* 1000 pJ over 100 cycles at 10 MHz: 1e-9 J / 1e-5 s = 1e-4 W = 100 uW. *)
  check_float "100 uW" 100.0
    (Power.Units.uw_of_pj_per_cycle ~pj:1000.0 ~cycles:100 ~clock_hz:1e7)

let test_units_pct_error () =
  check_float "-7.9" (-7.9) (Power.Units.pct_error ~reference:1000.0 921.0);
  check_bool "zero reference rejected" true
    (match Power.Units.pct_error ~reference:0.0 1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_characterization_default_positive () =
  List.iter
    (fun id ->
      check_bool "positive energy" true
        (Power.Characterization.energy_per_transition Power.Characterization.default id
        > 0.0))
    Ec.Signals.all

let test_characterization_derive () =
  let energy = Array.make Ec.Signals.count 0.0 in
  let transitions = Array.make Ec.Signals.count 0 in
  let idx = Ec.Signals.index (Ec.Signals.Addr 0) in
  energy.(idx) <- 12.0;
  transitions.(idx) <- 4;
  let t = Power.Characterization.derive ~name:"test" ~energy_pj:energy ~transitions in
  check_float "average" 3.0
    (Power.Characterization.energy_per_transition t (Ec.Signals.Addr 0));
  (* Untoggled wires fall back to the default. *)
  check_float "fallback"
    (Power.Characterization.energy_per_transition Power.Characterization.default
       (Ec.Signals.Wdata 0))
    (Power.Characterization.energy_per_transition t (Ec.Signals.Wdata 0))

let test_characterization_derive_validation () =
  check_bool "bad length rejected" true
    (match
       Power.Characterization.derive ~name:"bad" ~energy_pj:[| 1.0 |]
         ~transitions:[| 1 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_characterization_scale () =
  let t = Power.Characterization.scale Power.Characterization.default 2.0 in
  check_float "doubled"
    (2.0
    *. Power.Characterization.energy_per_transition Power.Characterization.default
         (Ec.Signals.Addr 3))
    (Power.Characterization.energy_per_transition t (Ec.Signals.Addr 3))

let test_characterization_averages () =
  let t = Power.Characterization.default in
  (* All address wires share the default capacitance, so the group average
     equals any single wire. *)
  check_float "addr avg"
    (Power.Characterization.energy_per_transition t (Ec.Signals.Addr 0))
    (Power.Characterization.avg_addr_bit t)

let test_profile_basics () =
  let p = Power.Profile.create () in
  List.iter (Power.Profile.push p) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "length" 4 (Power.Profile.length p);
  check_float "total" 10.0 (Power.Profile.total p);
  check_float "max" 4.0 (Power.Profile.max_value p);
  check_float "window" 5.0 (Power.Profile.window_sum p ~lo:1 ~hi:3);
  check_float "window clamps" 10.0 (Power.Profile.window_sum p ~lo:(-5) ~hi:100)

let test_profile_growth () =
  let p = Power.Profile.create () in
  for i = 1 to 1000 do
    Power.Profile.push p (float_of_int i)
  done;
  check_int "grows" 1000 (Power.Profile.length p);
  check_float "kept values" 500500.0 (Power.Profile.total p)

let test_profile_lumped () =
  let p = Power.Profile.create () in
  List.iter (Power.Profile.push p) [ 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 ];
  let lumps = Power.Profile.lumped p ~sample_points:[ 2; 4 ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "lumps cover profile"
    [ (2, 2.0); (4, 2.0); (6, 2.0) ]
    lumps

let test_profile_csv () =
  let p = Power.Profile.create () in
  Power.Profile.push p 1.5;
  match Power.Profile.to_csv_lines p with
  | [ header; row ] ->
    Alcotest.(check string) "header" "cycle,energy_pj" header;
    Alcotest.(check string) "row" "0,1.500000" row
  | _ -> Alcotest.fail "two lines expected"

let test_profile_sparkline () =
  let p = Power.Profile.create () in
  List.iter (Power.Profile.push p) [ 0.0; 8.0 ];
  let s = Power.Profile.sparkline p in
  check_int "two buckets" 2 (String.length s);
  check_bool "low then high" true (s.[0] = ' ' && s.[1] = '#')

let test_component_accounting () =
  let params =
    Power.Component.params ~idle_pj_per_cycle:0.5 ~active_pj_per_cycle:2.0
      ~access_pj:10.0 ()
  in
  let c = Power.Component.create ~name:"x" params in
  Power.Component.tick c ~active:true;
  Power.Component.tick c ~active:false;
  Power.Component.tick c ~active:false;
  Power.Component.access c;
  check_float "energy" (2.0 +. 1.0 +. 10.0) (Power.Component.energy_pj c);
  check_int "active" 1 (Power.Component.active_cycles c);
  check_int "idle" 2 (Power.Component.idle_cycles c);
  check_int "accesses" 1 (Power.Component.accesses c);
  Power.Component.reset c;
  check_float "reset" 0.0 (Power.Component.energy_pj c)

let test_component_validation () =
  check_bool "negative rejected" true
    (match Power.Component.params ~access_pj:(-1.0) () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_dpa_difference_of_means () =
  (* Selected traces carry a bump at sample 2. *)
  let traces =
    List.init 20 (fun i ->
        Array.init 5 (fun j ->
            (if j = 2 && i mod 2 = 0 then 3.0 else 1.0) +. (0.01 *. float_of_int i)))
  in
  let diff = Power.Dpa.difference_of_means ~traces ~select:(fun i -> i mod 2 = 0) in
  let peak_at, peak = Power.Dpa.peak_abs diff in
  check_int "peak sample" 2 peak_at;
  check_bool "peak magnitude" true (peak > 1.9)

let test_dpa_empty_partition () =
  check_bool "raises" true
    (match
       Power.Dpa.difference_of_means
         ~traces:[ [| 1.0 |]; [| 2.0 |] ]
         ~select:(fun _ -> true)
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_dpa_attack_recovers_key () =
  (* Synthetic leakage: trace sample 3 leaks bit0 of sbox(input xor key). *)
  let secret = 0x5A in
  let rng = Sim.Rng.create ~seed:77 in
  let inputs = List.init 256 (fun _ -> Sim.Rng.bits rng 8) in
  let traces =
    List.map
      (fun input ->
        let bit = Soc.Crypto.sbox (input lxor secret) land 1 in
        Array.init 6 (fun j ->
            (if j = 3 then float_of_int bit else 0.0)
            +. (0.3 *. Sim.Rng.float rng)))
      inputs
  in
  let model ~key ~input = Soc.Crypto.sbox (input lxor key) land 1 = 1 in
  let guesses = List.init 256 Fun.id in
  (match Power.Dpa.dpa_attack ~traces ~inputs ~model ~guesses with
  | (best, _) :: _ -> check_int "recovered key" secret best
  | [] -> Alcotest.fail "no guesses");
  let cpa_model ~key ~input =
    float_of_int (Power.Dpa.hamming_weight (Soc.Crypto.sbox (input lxor key)))
  in
  let hw_traces =
    List.map
      (fun input ->
        let hw = Power.Dpa.hamming_weight (Soc.Crypto.sbox (input lxor secret)) in
        Array.init 4 (fun j ->
            (if j = 1 then float_of_int hw else 0.0) +. (0.2 *. Sim.Rng.float rng)))
      inputs
  in
  match Power.Dpa.cpa_attack ~traces:hw_traces ~inputs ~model:cpa_model ~guesses with
  | (best, score) :: _ ->
    check_int "cpa recovered key" secret best;
    check_bool "high correlation" true (score > 0.8)
  | [] -> Alcotest.fail "no guesses"

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "self correlation" 1.0 (Power.Dpa.pearson xs xs);
  let ys = Array.map (fun v -> -.v) xs in
  check_float "anti correlation" (-1.0) (Power.Dpa.pearson xs ys);
  check_float "constant is zero" 0.0 (Power.Dpa.pearson xs [| 1.0; 1.0; 1.0; 1.0 |])

let test_hamming_helpers () =
  check_int "weight" 4 (Power.Dpa.hamming_weight 0xF0);
  check_int "distance" 8 (Power.Dpa.hamming_distance 0xFF 0x00)

let test_snr_separates () =
  let group_a = List.init 10 (fun _ -> [| 1.0; 5.0 |]) in
  let group_b = List.init 10 (fun _ -> [| 1.0; 9.0 |]) in
  let traces = group_a @ group_b in
  let groups = List.init 20 (fun i -> if i < 10 then 0 else 1) in
  (* Zero noise within groups: snr is huge where means differ. *)
  check_bool "snr positive" true (Power.Dpa.snr ~traces ~groups >= 0.0)

let suite =
  [
    Alcotest.test_case "units pj per transition" `Quick test_units_pj_per_transition;
    Alcotest.test_case "units average power" `Quick test_units_power;
    Alcotest.test_case "units pct error" `Quick test_units_pct_error;
    Alcotest.test_case "characterization default positive" `Quick
      test_characterization_default_positive;
    Alcotest.test_case "characterization derive" `Quick test_characterization_derive;
    Alcotest.test_case "characterization derive validation" `Quick
      test_characterization_derive_validation;
    Alcotest.test_case "characterization scale" `Quick test_characterization_scale;
    Alcotest.test_case "characterization group averages" `Quick
      test_characterization_averages;
    Alcotest.test_case "profile basics" `Quick test_profile_basics;
    Alcotest.test_case "profile growth" `Quick test_profile_growth;
    Alcotest.test_case "profile lumped sampling" `Quick test_profile_lumped;
    Alcotest.test_case "profile csv" `Quick test_profile_csv;
    Alcotest.test_case "profile sparkline" `Quick test_profile_sparkline;
    Alcotest.test_case "component accounting" `Quick test_component_accounting;
    Alcotest.test_case "component validation" `Quick test_component_validation;
    Alcotest.test_case "dpa difference of means" `Quick test_dpa_difference_of_means;
    Alcotest.test_case "dpa empty partition" `Quick test_dpa_empty_partition;
    Alcotest.test_case "dpa+cpa recover key" `Quick test_dpa_attack_recovers_key;
    Alcotest.test_case "pearson correlation" `Quick test_pearson;
    Alcotest.test_case "hamming helpers" `Quick test_hamming_helpers;
    Alcotest.test_case "snr" `Quick test_snr_separates;
  ]

(* Bus coding analysis. *)

let test_coding_transitions () =
  check_int "simple count" (1 + 2 + 1)
    (Power.Coding.transitions ~width:8 [| 0b1; 0b10; 0b0 |]);
  check_int "empty-ish" 0 (Power.Coding.transitions ~width:8 [| 0; 0; 0 |])

let test_coding_gray_roundtrip () =
  for v = 0 to 1023 do
    check_int "roundtrip" v (Power.Coding.gray_decode (Power.Coding.gray_encode v))
  done

let test_coding_gray_sequential () =
  (* Gray-coded consecutive integers toggle exactly one wire each. *)
  let values = Array.init 64 (fun i -> i + 1) in
  (* First value contributes popcount(gray 1) = 1 from the zero state. *)
  check_int "one toggle per step" 64
    (Power.Coding.gray_transitions ~width:8 values)

let test_coding_bus_invert_bound () =
  (* Including the invert line, no transfer toggles more than width/2+1
     wires. *)
  let rng = Sim.Rng.create ~seed:55 in
  let values = Array.init 200 (fun _ -> Sim.Rng.bits rng 16) in
  let coded, _ = Power.Coding.bus_invert ~width:16 values in
  check_bool "per-word bound" true (coded <= 200 * ((16 / 2) + 1));
  (* All-complement sequences are the best case: plain toggles everything,
     bus-invert only the invert line. *)
  let worst = Array.init 10 (fun i -> if i mod 2 = 0 then 0xFFFF else 0x0000) in
  let plain = Power.Coding.transitions ~width:16 worst in
  let coded, inversions = Power.Coding.bus_invert ~width:16 worst in
  check_int "plain is pathological" (16 * 9 + 16) plain;
  check_bool "bus invert collapses it" true (coded <= 10);
  check_bool "inversions happened" true (inversions > 0)

let test_coding_analyze_report () =
  let r = Power.Coding.analyze ~width:8 [| 0xFF; 0x00; 0xFF |] in
  check_int "plain" (8 * 3) r.Power.Coding.plain;
  check_bool "bus invert saves" true
    (r.Power.Coding.bus_invert_savings_pct > 50.0);
  check_bool "empty rejected" true
    (match Power.Coding.analyze ~width:8 [||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let coding_suite =
  [
    Alcotest.test_case "coding transitions" `Quick test_coding_transitions;
    Alcotest.test_case "coding gray roundtrip" `Quick test_coding_gray_roundtrip;
    Alcotest.test_case "coding gray sequential" `Quick test_coding_gray_sequential;
    Alcotest.test_case "coding bus-invert bounds" `Quick test_coding_bus_invert_bound;
    Alcotest.test_case "coding analyze report" `Quick test_coding_analyze_report;
  ]

let suite = suite @ coding_suite

(* Power budgets (the paper's section 1 motivation). *)

let test_budget_current_math () =
  (* 1000 pJ over 100 cycles at 10 MHz = 0.1 mW; at 5 V that is 0.02 mA. *)
  check_float "current" 0.02
    (Power.Budget.average_current_ma ~energy_pj:1000.0 ~cycles:100
       ~clock_hz:1e7 ~supply_v:5.0);
  check_float "empty interval" 0.0
    (Power.Budget.average_current_ma ~energy_pj:1.0 ~cycles:0 ~clock_hz:1e7
       ~supply_v:5.0)

let test_budget_verdicts () =
  let ok =
    Power.Budget.check Power.Budget.gsm_contact ~energy_pj:1000.0 ~cycles:100
  in
  check_bool "tiny workload within gsm" true ok.Power.Budget.within;
  check_bool "headroom positive" true (ok.Power.Budget.headroom_pct > 0.0);
  (* 5 J over one 100 ns cycle is absurd on purpose. *)
  let over =
    Power.Budget.check Power.Budget.contactless_rf ~energy_pj:5e12 ~cycles:1
  in
  check_bool "over budget detected" false over.Power.Budget.within

let test_budget_realistic_workload () =
  (* The bus-exercise program must fit the contact budget comfortably at
     10 MHz with our synthetic magnitudes. *)
  let run = Core.Runner.run_program (Soc.Asm.assemble Core.Test_programs.bus_exercise) in
  let r = run.Core.Runner.result in
  let verdict =
    Power.Budget.check Power.Budget.gsm_contact
      ~energy_pj:(r.Core.Runner.bus_pj +. r.Core.Runner.component_pj)
      ~cycles:r.Core.Runner.cycles
  in
  check_bool "within gsm budget" true verdict.Power.Budget.within

let budget_suite =
  [
    Alcotest.test_case "budget current math" `Quick test_budget_current_math;
    Alcotest.test_case "budget verdicts" `Quick test_budget_verdicts;
    Alcotest.test_case "budget realistic workload" `Quick
      test_budget_realistic_workload;
  ]

let suite = suite @ budget_suite
