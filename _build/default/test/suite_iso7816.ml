(* ISO 7816: APDU codecs, card OS dispatch, and the bus-level session. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let wallet_aid = [ 0xA0; 0x00; 0x00; 0x00; 0x02 ]
let echo_aid = [ 0xA0; 0x00; 0x00; 0x00; 0x01 ]

let select aid =
  Iso7816.Apdu.command ~ins:Iso7816.Apdu.ins_select ~p1:0x04 ~data:aid ()

(* --- APDU codec --- *)

let roundtrip c =
  match Iso7816.Apdu.decode_command (Iso7816.Apdu.encode_command c) with
  | Ok back -> back = c
  | Error _ -> false

let test_apdu_cases_roundtrip () =
  (* Case 1: header only. *)
  check_bool "case 1" true (roundtrip (Iso7816.Apdu.command ~ins:0x10 ()));
  (* Case 2: Le only. *)
  check_bool "case 2" true (roundtrip (Iso7816.Apdu.command ~ins:0x11 ~le:4 ()));
  (* Case 3: data only. *)
  check_bool "case 3" true
    (roundtrip (Iso7816.Apdu.command ~ins:0x12 ~data:[ 1; 2; 3 ] ()));
  (* Case 4: data + Le. *)
  check_bool "case 4" true
    (roundtrip (Iso7816.Apdu.command ~ins:0x13 ~data:[ 9 ] ~le:8 ()))

let test_apdu_le_256 () =
  let c = Iso7816.Apdu.command ~ins:0x20 ~le:256 () in
  (* Le = 256 is wire byte 0. *)
  (match List.rev (Iso7816.Apdu.encode_command c) with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "Le 256 must encode as 0");
  check_bool "roundtrip" true (roundtrip c)

let test_apdu_decode_errors () =
  let bad bytes =
    match Iso7816.Apdu.decode_command bytes with
    | Ok _ -> false
    | Error _ -> true
  in
  check_bool "short header" true (bad [ 0; 1; 2 ]);
  check_bool "lc mismatch" true (bad [ 0; 1; 2; 3; 5; 1; 2 ])

let test_apdu_validation () =
  let invalid f =
    check_bool "rejected" true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  invalid (fun () -> Iso7816.Apdu.command ~ins:0x100 ());
  invalid (fun () -> Iso7816.Apdu.command ~ins:0x10 ~data:[ 300 ] ());
  invalid (fun () -> Iso7816.Apdu.command ~ins:0x10 ~le:300 ());
  invalid (fun () -> Iso7816.Apdu.command ~ins:0x10 ~data:(List.init 256 Fun.id) ())

let test_response_roundtrip () =
  let r = Iso7816.Apdu.response ~data:[ 0xDE; 0xAD ] Iso7816.Apdu.sw_ok in
  (match Iso7816.Apdu.decode_response (Iso7816.Apdu.encode_response r) with
  | Ok back -> check_bool "roundtrip" true (back = r)
  | Error msg -> Alcotest.fail msg);
  check_bool "too short" true
    (match Iso7816.Apdu.decode_response [ 0x90 ] with
    | Ok _ -> false
    | Error _ -> true)

(* --- card OS --- *)

let fresh_card () =
  Iso7816.Card.create
    [ Iso7816.Card.echo_applet; Iso7816.Card.wallet_applet ~initial:10 () ]

let test_card_select_and_dispatch () =
  let card = fresh_card () in
  check_bool "nothing selected" true (Iso7816.Card.selected card = None);
  (* Command before selection. *)
  let r = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x32 ()) in
  check_int "needs selection" Iso7816.Apdu.sw_conditions_not_satisfied
    r.Iso7816.Apdu.sw;
  let r = Iso7816.Card.handle card (select wallet_aid) in
  check_int "selected ok" Iso7816.Apdu.sw_ok r.Iso7816.Apdu.sw;
  check_bool "wallet current" true (Iso7816.Card.selected card = Some wallet_aid);
  let r = Iso7816.Card.handle card (select [ 1; 2; 3; 4; 5 ]) in
  check_int "unknown aid" Iso7816.Apdu.sw_file_not_found r.Iso7816.Apdu.sw;
  (* Failed select keeps the previous applet (our card's behaviour). *)
  let r = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x32 ~le:2 ()) in
  check_int "wallet still answers" Iso7816.Apdu.sw_ok r.Iso7816.Apdu.sw

let test_card_cla_check () =
  let card = fresh_card () in
  let r = Iso7816.Card.handle card (Iso7816.Apdu.command ~cla:0xFF ~ins:0x00 ()) in
  check_int "cla rejected" Iso7816.Apdu.sw_cla_not_supported r.Iso7816.Apdu.sw

let test_card_echo () =
  let card = fresh_card () in
  ignore (Iso7816.Card.handle card (select echo_aid));
  let r =
    Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x42 ~data:[ 7; 8; 9 ] ())
  in
  Alcotest.(check (list int)) "echoed" [ 7; 8; 9 ] r.Iso7816.Apdu.data

let wallet_balance card =
  let r = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x32 ~le:2 ()) in
  check_int "balance sw" Iso7816.Apdu.sw_ok r.Iso7816.Apdu.sw;
  match r.Iso7816.Apdu.data with
  | [ hi; lo ] -> (hi lsl 8) lor lo
  | _ -> Alcotest.fail "two balance bytes expected"

let test_wallet_semantics () =
  let card = fresh_card () in
  ignore (Iso7816.Card.handle card (select wallet_aid));
  check_int "initial" 10 (wallet_balance card);
  let credit n = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x30 ~data:[ n ] ()) in
  let debit n = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x31 ~data:[ n ] ()) in
  check_int "credit ok" Iso7816.Apdu.sw_ok (credit 200).Iso7816.Apdu.sw;
  check_int "after credit" 210 (wallet_balance card);
  check_int "debit ok" Iso7816.Apdu.sw_ok (debit 10).Iso7816.Apdu.sw;
  check_int "after debit" 200 (wallet_balance card);
  check_int "insufficient funds" Iso7816.Apdu.sw_conditions_not_satisfied
    (debit 255).Iso7816.Apdu.sw;
  check_int "balance untouched" 200 (wallet_balance card);
  let r = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x30 ~data:[ 1; 2 ] ()) in
  check_int "wrong length" Iso7816.Apdu.sw_wrong_length r.Iso7816.Apdu.sw;
  let r = Iso7816.Card.handle card (Iso7816.Apdu.command ~ins:0x55 ()) in
  check_int "unknown ins" Iso7816.Apdu.sw_ins_not_supported r.Iso7816.Apdu.sw

let test_card_validation () =
  let invalid f =
    check_bool "rejected" true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  invalid (fun () -> Iso7816.Card.applet ~aid:[ 1; 2 ] (fun _ -> assert false));
  invalid (fun () ->
      Iso7816.Card.create [ Iso7816.Card.echo_applet; Iso7816.Card.echo_applet ])

(* --- bus-level session --- *)

let run_session ?(level = Core.Level.L1) commands =
  let system = Core.System.create ~level () in
  let kernel = Core.System.kernel system in
  let platform = Core.System.platform system in
  let card = fresh_card () in
  let stats =
    Iso7816.Session.run ~kernel ~port:(Core.System.port system)
      ~uart:(Soc.Platform.uart platform)
      ~energy_probe:(fun () -> Core.System.energy_since_last_call_pj system)
      ~card commands
  in
  (stats, card)

let test_session_matches_functional_model () =
  let commands =
    [
      select wallet_aid;
      Iso7816.Apdu.command ~ins:0x30 ~data:[ 42 ] ();
      Iso7816.Apdu.command ~ins:0x31 ~data:[ 2 ] ();
      Iso7816.Apdu.command ~ins:0x32 ~le:2 ();
      Iso7816.Apdu.command ~ins:0x99 ();
    ]
  in
  let stats, _ = run_session commands in
  (* The pure functional card on the same command list must agree. *)
  let reference = fresh_card () in
  List.iter2
    (fun command (x : Iso7816.Session.exchange) ->
      let expected = Iso7816.Card.handle reference command in
      check_bool "same response over the bus" true
        (expected = x.Iso7816.Session.response))
    commands stats.Iso7816.Session.exchanges;
  check_bool "cycles accounted" true (stats.Iso7816.Session.total_cycles > 0);
  check_bool "firmware used the bus" true (stats.Iso7816.Session.firmware_txns > 20);
  List.iter
    (fun (x : Iso7816.Session.exchange) ->
      check_bool "per-exchange energy" true (x.Iso7816.Session.energy_pj > 0.0))
    stats.Iso7816.Session.exchanges

let test_session_longer_data_costs_more () =
  let short = Iso7816.Apdu.command ~ins:0x42 ~data:[ 1 ] () in
  let long = Iso7816.Apdu.command ~ins:0x42 ~data:(List.init 32 Fun.id) () in
  let stats, _ = run_session [ select echo_aid; short; select echo_aid; long ] in
  match stats.Iso7816.Session.exchanges with
  | [ _; s; _; l ] ->
    check_bool "longer frame takes longer" true
      (l.Iso7816.Session.cycles > s.Iso7816.Session.cycles);
    check_bool "longer frame costs more" true
      (l.Iso7816.Session.energy_pj > s.Iso7816.Session.energy_pj)
  | _ -> Alcotest.fail "four exchanges expected"

let test_session_works_on_l2 () =
  let stats, _ =
    run_session ~level:Core.Level.L2 [ select wallet_aid; Iso7816.Apdu.command ~ins:0x32 ~le:2 () ]
  in
  match stats.Iso7816.Session.exchanges with
  | [ sel; bal ] ->
    check_int "select ok" Iso7816.Apdu.sw_ok sel.Iso7816.Session.response.Iso7816.Apdu.sw;
    Alcotest.(check (list int)) "balance bytes" [ 0; 10 ]
      bal.Iso7816.Session.response.Iso7816.Apdu.data
  | _ -> Alcotest.fail "two exchanges expected"

let suite =
  [
    Alcotest.test_case "apdu case 1-4 roundtrips" `Quick test_apdu_cases_roundtrip;
    Alcotest.test_case "apdu le=256" `Quick test_apdu_le_256;
    Alcotest.test_case "apdu decode errors" `Quick test_apdu_decode_errors;
    Alcotest.test_case "apdu validation" `Quick test_apdu_validation;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "card select and dispatch" `Quick test_card_select_and_dispatch;
    Alcotest.test_case "card cla check" `Quick test_card_cla_check;
    Alcotest.test_case "card echo applet" `Quick test_card_echo;
    Alcotest.test_case "wallet semantics" `Quick test_wallet_semantics;
    Alcotest.test_case "card validation" `Quick test_card_validation;
    Alcotest.test_case "session matches functional model" `Quick
      test_session_matches_functional_model;
    Alcotest.test_case "session data length scales cost" `Quick
      test_session_longer_data_costs_more;
    Alcotest.test_case "session on layer 2" `Quick test_session_works_on_l2;
  ]
