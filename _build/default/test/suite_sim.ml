(* Simulation kernel, signals and RNG. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_kernel_time_advances () =
  let k = Sim.Kernel.create () in
  check_int "starts at 0" 0 (Sim.Kernel.now k);
  Sim.Kernel.run k ~cycles:7;
  check_int "after 7" 7 (Sim.Kernel.now k)

let test_kernel_edge_order () =
  let k = Sim.Kernel.create () in
  let log = ref [] in
  Sim.Kernel.on_falling k ~name:"f" (fun _ -> log := "f" :: !log);
  Sim.Kernel.on_rising k ~name:"r" (fun _ -> log := "r" :: !log);
  Sim.Kernel.step k;
  Alcotest.(check (list string)) "rising then falling" [ "r"; "f" ] (List.rev !log)

let test_kernel_registration_order () =
  let k = Sim.Kernel.create () in
  let log = ref [] in
  Sim.Kernel.on_rising k ~name:"a" (fun _ -> log := 1 :: !log);
  Sim.Kernel.on_rising k ~name:"b" (fun _ -> log := 2 :: !log);
  Sim.Kernel.step k;
  Alcotest.(check (list int)) "in registration order" [ 1; 2 ] (List.rev !log)

let test_kernel_stop_mid_run () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.on_rising k ~name:"stopper" (fun k ->
      if Sim.Kernel.now k = 4 then Sim.Kernel.stop k);
  Sim.Kernel.run k ~cycles:100;
  check_bool "stopped" true (Sim.Kernel.stopped k);
  check_int "stopped after cycle 4 completed" 5 (Sim.Kernel.now k)

let test_kernel_run_until () =
  let k = Sim.Kernel.create () in
  let count = ref 0 in
  Sim.Kernel.on_rising k ~name:"count" (fun _ -> incr count);
  let consumed = Sim.Kernel.run_until k (fun () -> !count >= 10) in
  check_int "ten cycles" 10 consumed

let test_kernel_run_until_raises () =
  let k = Sim.Kernel.create () in
  Alcotest.check_raises "timeout"
    (Failure "Sim.Kernel.run_until: no completion after 5 cycles")
    (fun () -> ignore (Sim.Kernel.run_until k ~max_cycles:5 (fun () -> false)))

let test_kernel_late_registration () =
  let k = Sim.Kernel.create () in
  let hits = ref 0 in
  Sim.Kernel.run k ~cycles:3;
  Sim.Kernel.on_rising k ~name:"late" (fun _ -> incr hits);
  Sim.Kernel.run k ~cycles:2;
  check_int "late process runs" 2 !hits

let test_kernel_process_names () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.on_rising k ~name:"r1" (fun _ -> ());
  Sim.Kernel.on_falling k ~name:"f1" (fun _ -> ());
  Alcotest.(check (list string)) "names" [ "r1"; "f1" ] (Sim.Kernel.process_names k)

let test_signal_initial () =
  let s = Sim.Signal.create ~name:"s" ~width:8 in
  check_int "current 0" 0 (Sim.Signal.current s);
  check_int "next 0" 0 (Sim.Signal.next s);
  check_int "no transitions" 0 (Sim.Signal.transitions s)

let test_signal_commit_counts () =
  let s = Sim.Signal.create ~name:"s" ~width:8 in
  Sim.Signal.set s 0xFF;
  check_int "eight toggles" 8 (Sim.Signal.commit s);
  check_int "rises" 8 (Sim.Signal.rises s);
  check_int "falls" 0 (Sim.Signal.falls s);
  Sim.Signal.set s 0x0F;
  ignore (Sim.Signal.commit s);
  check_int "falls after clearing high nibble" 4 (Sim.Signal.falls s)

let test_signal_masking () =
  let s = Sim.Signal.create ~name:"s" ~width:4 in
  Sim.Signal.set s 0xFF;
  ignore (Sim.Signal.commit s);
  check_int "masked to width" 0xF (Sim.Signal.current s)

let test_signal_idempotent_commit () =
  let s = Sim.Signal.create ~name:"s" ~width:8 in
  Sim.Signal.set s 0xA5;
  ignore (Sim.Signal.commit s);
  check_int "no change, no toggle" 0 (Sim.Signal.commit s)

let test_signal_per_bit () =
  let s = Sim.Signal.create ~name:"s" ~width:4 in
  Sim.Signal.set s 0b0101;
  ignore (Sim.Signal.commit s);
  Sim.Signal.set s 0b0110;
  ignore (Sim.Signal.commit s);
  Alcotest.(check (array int)) "per bit" [| 2; 1; 1; 0 |] (Sim.Signal.bit_transitions s)

let test_signal_reset_counters () =
  let s = Sim.Signal.create ~name:"s" ~width:8 in
  Sim.Signal.set s 0xFF;
  ignore (Sim.Signal.commit s);
  Sim.Signal.reset_counters s;
  check_int "cleared" 0 (Sim.Signal.transitions s);
  check_int "value preserved" 0xFF (Sim.Signal.current s)

let test_signal_width_validation () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Sim.Signal.create s: width 0") (fun () ->
      ignore (Sim.Signal.create ~name:"s" ~width:0));
  Alcotest.check_raises "width 63"
    (Invalid_argument "Sim.Signal.create s: width 63") (fun () ->
      ignore (Sim.Signal.create ~name:"s" ~width:63))

let test_popcount () =
  check_int "zero" 0 (Sim.Signal.popcount 0);
  check_int "one bit" 1 (Sim.Signal.popcount 0x8000);
  check_int "byte" 8 (Sim.Signal.popcount 0xFF);
  check_int "alternating" 16 (Sim.Signal.popcount 0xAAAAAAAA)

let test_rng_determinism () =
  let a = Sim.Rng.create ~seed:42 and b = Sim.Rng.create ~seed:42 in
  for _ = 1 to 50 do
    check_int "same stream" (Sim.Rng.next64 a) (Sim.Rng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  check_bool "different seeds diverge" true
    (Sim.Rng.next64 a <> Sim.Rng.next64 b)

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Sim.Rng.bits rng 12 in
    check_bool "bits in range" true (v >= 0 && v < 4096)
  done;
  for _ = 1 to 100 do
    let f = Sim.Rng.float rng in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:9 in
  let b = Sim.Rng.split a in
  check_bool "split diverges from parent" true
    (Sim.Rng.next64 a <> Sim.Rng.next64 b)

let suite =
  [
    Alcotest.test_case "kernel time advances" `Quick test_kernel_time_advances;
    Alcotest.test_case "kernel rising before falling" `Quick test_kernel_edge_order;
    Alcotest.test_case "kernel registration order" `Quick test_kernel_registration_order;
    Alcotest.test_case "kernel stop mid run" `Quick test_kernel_stop_mid_run;
    Alcotest.test_case "kernel run_until" `Quick test_kernel_run_until;
    Alcotest.test_case "kernel run_until timeout" `Quick test_kernel_run_until_raises;
    Alcotest.test_case "kernel late registration" `Quick test_kernel_late_registration;
    Alcotest.test_case "kernel process names" `Quick test_kernel_process_names;
    Alcotest.test_case "signal initial state" `Quick test_signal_initial;
    Alcotest.test_case "signal commit counts edges" `Quick test_signal_commit_counts;
    Alcotest.test_case "signal masks to width" `Quick test_signal_masking;
    Alcotest.test_case "signal idempotent commit" `Quick test_signal_idempotent_commit;
    Alcotest.test_case "signal per-bit counters" `Quick test_signal_per_bit;
    Alcotest.test_case "signal reset counters" `Quick test_signal_reset_counters;
    Alcotest.test_case "signal width validation" `Quick test_signal_width_validation;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
  ]
