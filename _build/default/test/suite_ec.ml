(* EC protocol vocabulary: transactions, slave configs, decoder, signal
   map, timing rules, traces. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let invalid f = Alcotest.(check bool) "rejected" true
    (match f () with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* Transactions *)

let test_txn_single_read () =
  let txn = Ec.Txn.single_read ~id:1 0x100 in
  check_int "burst" 1 txn.Ec.Txn.burst;
  check_bool "read" true (txn.Ec.Txn.dir = Ec.Txn.Read);
  check_bool "data kind" true (txn.Ec.Txn.kind = Ec.Txn.Data);
  check_int "bytes per beat" 4 (Ec.Txn.bytes_per_beat txn)

let test_txn_burst_beats () =
  let txn = Ec.Txn.burst_read ~id:2 0x200 in
  check_int "beats" 4 txn.Ec.Txn.burst;
  check_int "beat 0" 0x200 (Ec.Txn.beat_addr txn 0);
  check_int "beat 3" 0x20C (Ec.Txn.beat_addr txn 3)

let test_txn_byte_enables () =
  let w8 at = Ec.Txn.single_read ~id:1 ~width:Ec.Txn.W8 at in
  check_int "byte 0" 0b0001 (Ec.Txn.byte_enables (w8 0x100) 0);
  check_int "byte 1" 0b0010 (Ec.Txn.byte_enables (w8 0x101) 0);
  check_int "byte 3" 0b1000 (Ec.Txn.byte_enables (w8 0x103) 0);
  let w16 at = Ec.Txn.single_read ~id:1 ~width:Ec.Txn.W16 at in
  check_int "half low" 0b0011 (Ec.Txn.byte_enables (w16 0x100) 0);
  check_int "half high" 0b1100 (Ec.Txn.byte_enables (w16 0x102) 0);
  let w32 = Ec.Txn.single_read ~id:1 0x100 in
  check_int "word" 0b1111 (Ec.Txn.byte_enables w32 0)

let test_txn_validation () =
  invalid (fun () -> Ec.Txn.single_read ~id:1 ~width:Ec.Txn.W16 0x101);
  invalid (fun () -> Ec.Txn.single_read ~id:1 0x102);
  invalid (fun () -> Ec.Txn.single_read ~id:1 (-4));
  invalid (fun () -> Ec.Txn.single_read ~id:1 Ec.Txn.max_addr);
  invalid (fun () ->
      Ec.Txn.create ~id:1 ~kind:Ec.Txn.Data ~dir:Ec.Txn.Read ~width:Ec.Txn.W32
        ~addr:0 ~burst:2 ());
  invalid (fun () ->
      Ec.Txn.create ~id:1 ~kind:Ec.Txn.Data ~dir:Ec.Txn.Read ~width:Ec.Txn.W16
        ~addr:0 ~burst:4 ());
  invalid (fun () ->
      Ec.Txn.create ~id:1 ~kind:Ec.Txn.Instruction ~dir:Ec.Txn.Write
        ~width:Ec.Txn.W32 ~addr:0 ~burst:1 ~data:[| 0 |] ());
  invalid (fun () ->
      Ec.Txn.create ~id:1 ~kind:Ec.Txn.Data ~dir:Ec.Txn.Write ~width:Ec.Txn.W32
        ~addr:0 ~burst:4 ~data:[| 1; 2 |] ());
  invalid (fun () ->
      Ec.Txn.create ~id:1 ~kind:Ec.Txn.Data ~dir:Ec.Txn.Write ~width:Ec.Txn.W32
        ~addr:0 ~burst:1 ())

let test_txn_category () =
  check_bool "instr read" true
    (Ec.Txn.category (Ec.Txn.single_read ~id:1 ~kind:Ec.Txn.Instruction 0)
    = Ec.Txn.Cat_instr_read);
  check_bool "data read" true
    (Ec.Txn.category (Ec.Txn.single_read ~id:1 0) = Ec.Txn.Cat_data_read);
  check_bool "write" true
    (Ec.Txn.category (Ec.Txn.single_write ~id:1 0 ~value:1) = Ec.Txn.Cat_write)

let test_txn_data_masking () =
  let txn = Ec.Txn.single_write ~id:1 0 ~value:0x1_FFFF_FFFF in
  check_int "payload masked to 32 bit" 0xFFFFFFFF txn.Ec.Txn.data.(0);
  Ec.Txn.set_beat txn 0 0x2_0000_0001;
  check_int "set_beat masks" 1 txn.Ec.Txn.data.(0)

let test_txn_id_gen () =
  let g = Ec.Txn.Id_gen.create () in
  let a = Ec.Txn.Id_gen.fresh g and b = Ec.Txn.Id_gen.fresh g in
  check_bool "monotonic" true (b > a)

(* Slave configuration *)

let test_cfg_contains () =
  let cfg = Ec.Slave_cfg.make ~name:"m" ~base:0x100 ~size:0x100 () in
  check_bool "start" true (Ec.Slave_cfg.contains cfg 0x100);
  check_bool "last" true (Ec.Slave_cfg.contains cfg 0x1FF);
  check_bool "before" false (Ec.Slave_cfg.contains cfg 0xFF);
  check_bool "after" false (Ec.Slave_cfg.contains cfg 0x200)

let test_cfg_rights () =
  let cfg =
    Ec.Slave_cfg.make ~name:"rom" ~base:0 ~size:0x100 ~writable:false
      ~executable:true ()
  in
  check_bool "read ok" true
    (Ec.Slave_cfg.allows cfg (Ec.Txn.single_read ~id:1 0));
  check_bool "fetch ok" true
    (Ec.Slave_cfg.allows cfg (Ec.Txn.single_read ~id:1 ~kind:Ec.Txn.Instruction 0));
  check_bool "write denied" false
    (Ec.Slave_cfg.allows cfg (Ec.Txn.single_write ~id:1 0 ~value:0))

let test_cfg_validation () =
  invalid (fun () -> Ec.Slave_cfg.make ~name:"x" ~base:0 ~size:0 ());
  invalid (fun () -> Ec.Slave_cfg.make ~name:"x" ~base:2 ~size:4 ());
  invalid (fun () -> Ec.Slave_cfg.make ~name:"x" ~base:0 ~size:4 ~addr_wait:(-1) ());
  invalid (fun () ->
      Ec.Slave_cfg.make ~name:"x" ~base:(Ec.Txn.max_addr - 4) ~size:8 ())

let test_cfg_overlap () =
  let a = Ec.Slave_cfg.make ~name:"a" ~base:0 ~size:0x100 () in
  let b = Ec.Slave_cfg.make ~name:"b" ~base:0x80 ~size:0x100 () in
  let c = Ec.Slave_cfg.make ~name:"c" ~base:0x100 ~size:0x100 () in
  check_bool "a overlaps b" true (Ec.Slave_cfg.overlaps a b);
  check_bool "a does not overlap c" false (Ec.Slave_cfg.overlaps a c)

(* Decoder *)

let make_mem name base size ?(writable = true) () =
  let store = Array.make (size / 4) 0 in
  let cfg = Ec.Slave_cfg.make ~name ~base ~size ~writable () in
  Ec.Slave.make ~cfg
    ~read:(fun ~addr ~width:_ -> store.((addr - base) / 4))
    ~write:(fun ~addr ~width:_ ~value -> store.((addr - base) / 4) <- value)

let test_decoder_find () =
  let d =
    Ec.Decoder.create [ make_mem "a" 0 0x100 (); make_mem "b" 0x200 0x100 () ]
  in
  check_int "two slaves" 2 (Ec.Decoder.count d);
  (match Ec.Decoder.find d 0x210 with
  | Some (1, s) -> check_bool "named b" true (s.Ec.Slave.cfg.Ec.Slave_cfg.name = "b")
  | Some _ | None -> Alcotest.fail "expected slave b");
  check_bool "hole unmapped" true (Ec.Decoder.find d 0x150 = None)

let test_decoder_overlap_rejected () =
  invalid (fun () ->
      Ec.Decoder.create [ make_mem "a" 0 0x100 (); make_mem "b" 0x80 0x100 () ])

let test_decoder_check_rights () =
  let d = Ec.Decoder.create [ make_mem "ro" 0 0x100 ~writable:false () ] in
  (match Ec.Decoder.check d (Ec.Txn.single_write ~id:1 0 ~value:1) with
  | Ec.Decoder.Rights_violation _ -> ()
  | Ec.Decoder.Mapped _ | Ec.Decoder.Unmapped -> Alcotest.fail "expected rights violation");
  match Ec.Decoder.check d (Ec.Txn.single_read ~id:1 0x400) with
  | Ec.Decoder.Unmapped -> ()
  | Ec.Decoder.Mapped _ | Ec.Decoder.Rights_violation _ ->
    Alcotest.fail "expected unmapped"

let test_decoder_burst_straddle () =
  let d = Ec.Decoder.create [ make_mem "a" 0 0x100 () ] in
  match Ec.Decoder.check d (Ec.Txn.burst_read ~id:1 0xF8) with
  | Ec.Decoder.Unmapped -> ()
  | Ec.Decoder.Mapped _ | Ec.Decoder.Rights_violation _ ->
    Alcotest.fail "burst leaving the range must be unmapped"

(* Signal map *)

let test_signals_count () =
  check_int "total wires" (34 + 4 + 32 + 32 + 11) Ec.Signals.count;
  check_int "all list" Ec.Signals.count (List.length Ec.Signals.all)

let test_signals_index_roundtrip () =
  List.iter
    (fun id ->
      let i = Ec.Signals.index id in
      check_bool "roundtrip" true (Ec.Signals.of_index i = id))
    Ec.Signals.all

let test_signals_index_dense_unique () =
  let seen = Hashtbl.create 128 in
  List.iter
    (fun id ->
      let i = Ec.Signals.index id in
      check_bool "in range" true (i >= 0 && i < Ec.Signals.count);
      check_bool "unique" false (Hashtbl.mem seen i);
      Hashtbl.replace seen i ())
    Ec.Signals.all

let test_signals_names () =
  Alcotest.(check string) "addr name" "EB_A[2]"
    (Ec.Signals.to_string (Ec.Signals.Addr 0));
  Alcotest.(check string) "ctrl name" "EB_ARdy"
    (Ec.Signals.to_string (Ec.Signals.Ctrl Ec.Signals.Ardy))

(* Timing rules *)

let test_timing_zero_wait () =
  let cfg = Ec.Slave_cfg.make ~name:"fast" ~base:0 ~size:0x100 () in
  let single = Ec.Txn.single_read ~id:1 0 in
  check_int "addr phase" 1 (Ec.Timing.addr_phase_cycles cfg);
  check_int "no data extra" 0 (Ec.Timing.data_phase_extra cfg single);
  check_int "isolated" 1 (Ec.Timing.isolated_latency cfg single)

let test_timing_waits () =
  let cfg =
    Ec.Slave_cfg.make ~name:"slow" ~base:0 ~size:0x100 ~addr_wait:1
      ~read_wait:2 ~write_wait:4 ()
  in
  let read = Ec.Txn.single_read ~id:1 0 in
  let write = Ec.Txn.single_write ~id:1 0 ~value:0 in
  let burst = Ec.Txn.burst_read ~id:1 0 in
  check_int "addr" 2 (Ec.Timing.addr_phase_cycles cfg);
  check_int "read extra" 2 (Ec.Timing.data_phase_extra cfg read);
  check_int "write extra" 4 (Ec.Timing.data_phase_extra cfg write);
  check_int "burst extra" (2 + (3 * 3)) (Ec.Timing.data_phase_extra cfg burst);
  check_int "isolated read" 4 (Ec.Timing.isolated_latency cfg read)

(* Traces *)

let sample_trace =
  [
    Ec.Trace.item ~gap:2 (Ec.Txn.single_read ~id:0 0x40);
    Ec.Trace.item (Ec.Txn.single_write ~id:0 ~width:Ec.Txn.W8 0x101 ~value:0xAB);
    Ec.Trace.item (Ec.Txn.burst_write ~id:0 0x80 ~values:[| 1; 2; 3; 4 |]);
    Ec.Trace.item (Ec.Txn.single_read ~id:0 ~kind:Ec.Txn.Instruction 0x0);
  ]

let test_trace_roundtrip () =
  let lines = Ec.Trace.to_lines sample_trace in
  let back = Ec.Trace.of_lines lines in
  check_int "same length" (List.length sample_trace) (List.length back);
  List.iter2
    (fun a b ->
      check_int "gap" a.Ec.Trace.gap b.Ec.Trace.gap;
      check_bool "payload" true (Ec.Txn.equal_payload a.Ec.Trace.txn b.Ec.Trace.txn))
    sample_trace back

let test_trace_comments_skipped () =
  let lines = [ "# comment"; ""; "0 RD 32 0x40 1" ] in
  check_int "one item" 1 (List.length (Ec.Trace.of_lines lines))

let test_trace_malformed () =
  check_bool "malformed rejected" true
    (match Ec.Trace.of_lines [ "bogus line" ] with
    | _ -> false
    | exception Failure _ -> true)

let test_trace_instantiate_fresh () =
  let gen = Ec.Txn.Id_gen.create () in
  let item = List.hd sample_trace in
  let a = Ec.Trace.instantiate gen item and b = Ec.Trace.instantiate gen item in
  check_bool "distinct ids" true (a.Ec.Trace.txn.Ec.Txn.id <> b.Ec.Trace.txn.Ec.Txn.id);
  check_bool "distinct data arrays" true
    (a.Ec.Trace.txn.Ec.Txn.data != b.Ec.Trace.txn.Ec.Txn.data)

let test_trace_totals () =
  check_int "txns" 4 (Ec.Trace.total_txns sample_trace);
  check_int "beats" 7 (Ec.Trace.total_beats sample_trace)

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ec.Trace.save path sample_trace;
      let back = Ec.Trace.load path in
      check_int "length" 4 (List.length back))

(* Port helpers *)

let test_port_take_retires () =
  let retired = ref [] in
  let state = Hashtbl.create 4 in
  Hashtbl.replace state 1 Ec.Port.Done;
  let port =
    {
      Ec.Port.try_submit = (fun _ -> true);
      poll =
        (fun id ->
          match Hashtbl.find_opt state id with
          | Some outcome -> outcome
          | None -> Ec.Port.Pending);
      retire = (fun id -> retired := id :: !retired);
    }
  in
  check_bool "pending passes through" true (Ec.Port.take port 2 = Ec.Port.Pending);
  check_bool "done" true (Ec.Port.take port 1 = Ec.Port.Done);
  Alcotest.(check (list int)) "retired once" [ 1 ] !retired

let suite =
  [
    Alcotest.test_case "txn single read" `Quick test_txn_single_read;
    Alcotest.test_case "txn burst beats" `Quick test_txn_burst_beats;
    Alcotest.test_case "txn byte enables" `Quick test_txn_byte_enables;
    Alcotest.test_case "txn validation" `Quick test_txn_validation;
    Alcotest.test_case "txn categories" `Quick test_txn_category;
    Alcotest.test_case "txn data masking" `Quick test_txn_data_masking;
    Alcotest.test_case "txn id generator" `Quick test_txn_id_gen;
    Alcotest.test_case "cfg contains" `Quick test_cfg_contains;
    Alcotest.test_case "cfg access rights" `Quick test_cfg_rights;
    Alcotest.test_case "cfg validation" `Quick test_cfg_validation;
    Alcotest.test_case "cfg overlap" `Quick test_cfg_overlap;
    Alcotest.test_case "decoder find" `Quick test_decoder_find;
    Alcotest.test_case "decoder rejects overlap" `Quick test_decoder_overlap_rejected;
    Alcotest.test_case "decoder rights and unmapped" `Quick test_decoder_check_rights;
    Alcotest.test_case "decoder burst straddle" `Quick test_decoder_burst_straddle;
    Alcotest.test_case "signal count" `Quick test_signals_count;
    Alcotest.test_case "signal index roundtrip" `Quick test_signals_index_roundtrip;
    Alcotest.test_case "signal index dense+unique" `Quick test_signals_index_dense_unique;
    Alcotest.test_case "signal names" `Quick test_signals_names;
    Alcotest.test_case "timing zero wait" `Quick test_timing_zero_wait;
    Alcotest.test_case "timing with waits" `Quick test_timing_waits;
    Alcotest.test_case "trace text roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace comments" `Quick test_trace_comments_skipped;
    Alcotest.test_case "trace malformed" `Quick test_trace_malformed;
    Alcotest.test_case "trace instantiate fresh" `Quick test_trace_instantiate_fresh;
    Alcotest.test_case "trace totals" `Quick test_trace_totals;
    Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
    Alcotest.test_case "port take retires" `Quick test_port_take_retires;
  ]
