(* Java Card VM: bytecode, interpreter, firewall, memory manager, stacks,
   adapters and the communication refinement of Figure 7. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let value_of (r : Jcvm.Interp.result) =
  match r.Jcvm.Interp.value with
  | Some v -> v
  | None -> Alcotest.fail "expected a return value"

let run ?statics program = Jcvm.Interp.run_soft ?statics (Array.of_list program)

(* Bytecode serialization *)

let test_bytecode_roundtrip () =
  List.iter
    (fun (a : Jcvm.Applets.t) ->
      let encoded = Jcvm.Bytecode.encode a.Jcvm.Applets.program in
      let back = Jcvm.Bytecode.decode encoded in
      check_bool (a.Jcvm.Applets.name ^ " roundtrip") true
        (back = a.Jcvm.Applets.program))
    Jcvm.Applets.all

let test_bytecode_operand_ranges () =
  let invalid instr =
    check_bool "rejected" true
      (match Jcvm.Bytecode.encode [| instr |] with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  invalid (Jcvm.Bytecode.Sspush 40000);
  invalid (Jcvm.Bytecode.Bspush 200);
  invalid (Jcvm.Bytecode.Sinc (0, 999))

let test_bytecode_decode_garbage () =
  check_bool "bad opcode" true
    (match Jcvm.Bytecode.decode (Bytes.of_string "\xFE") with
    | _ -> false
    | exception Failure _ -> true);
  check_bool "truncated operand" true
    (match Jcvm.Bytecode.decode (Bytes.of_string "\x04\x01") with
    | _ -> false
    | exception Failure _ -> true)

let test_bytecode_validate () =
  let bad target =
    match Jcvm.Bytecode.validate [| Jcvm.Bytecode.Goto target |] with
    | Ok () -> false
    | Error _ -> true
  in
  check_bool "oob branch" true (bad 5);
  check_bool "self loop ok" false (bad 0);
  (match Jcvm.Bytecode.validate [| Jcvm.Bytecode.Nop |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fall-off-end accepted");
  check_int "max locals" 8
    (Jcvm.Bytecode.max_locals [| Jcvm.Bytecode.Sload 7; Jcvm.Bytecode.Return |])

(* Interpreter semantics *)

let test_interp_arith () =
  let open Jcvm.Bytecode in
  check_int "add" 5 (value_of (run [ Sspush 2; Sspush 3; Sadd; Sreturn ]));
  check_int "sub order" (-1) (value_of (run [ Sspush 2; Sspush 3; Ssub; Sreturn ]));
  check_int "mul" 6 (value_of (run [ Sspush 2; Sspush 3; Smul; Sreturn ]));
  check_int "div" 3 (value_of (run [ Sspush 10; Sspush 3; Sdiv; Sreturn ]));
  check_int "neg" (-7) (value_of (run [ Sspush 7; Sneg; Sreturn ]));
  check_int "and" 0b1000 (value_of (run [ Sspush 0b1100; Sspush 0b1010; Sand; Sreturn ]));
  check_int "or" 0b1110 (value_of (run [ Sspush 0b1100; Sspush 0b1010; Sor; Sreturn ]));
  check_int "xor" 0b0110 (value_of (run [ Sspush 0b1100; Sspush 0b1010; Sxor; Sreturn ]));
  check_int "shl" 24 (value_of (run [ Sspush 3; Sspush 3; Sshl; Sreturn ]));
  check_int "shr arithmetic" (-2) (value_of (run [ Sspush (-8); Sspush 2; Sshr; Sreturn ]))

let test_interp_short_wraparound () =
  let open Jcvm.Bytecode in
  check_int "overflow wraps" (-32768)
    (value_of (run [ Sspush 32767; Sspush 1; Sadd; Sreturn ]));
  check_int "mul wraps" 0
    (value_of (run [ Sspush 1024; Sspush 64; Smul; Sreturn ]))

let test_interp_stack_ops () =
  let open Jcvm.Bytecode in
  check_int "dup" 8 (value_of (run [ Sspush 4; Dup; Sadd; Sreturn ]));
  check_int "swap" 1 (value_of (run [ Sspush 3; Sspush 4; Swap; Ssub; Sreturn ]));
  check_int "pop discards" 1 (value_of (run [ Sspush 1; Sspush 9; Pop; Sreturn ]))

let test_interp_locals () =
  let open Jcvm.Bytecode in
  check_int "store/load" 5
    (value_of (run [ Sspush 5; Sstore 3; Sload 3; Sreturn ]));
  check_int "sinc" 7
    (value_of (run [ Sspush 5; Sstore 0; Sinc (0, 2); Sload 0; Sreturn ]))

let test_interp_branches () =
  let open Jcvm.Bytecode in
  (* if (3 < 5) return 1 else return 0 *)
  check_int "scmplt taken" 1
    (value_of
       (run [ Sspush 3; Sspush 5; If_scmplt 5; Sspush 0; Sreturn; Sspush 1; Sreturn ]));
  check_int "ifeq on zero" 1
    (value_of (run [ Sspush 0; Ifeq 4; Sspush 0; Sreturn; Sspush 1; Sreturn ]));
  check_int "iflt on negative" 1
    (value_of (run [ Sspush (-1); Iflt 4; Sspush 0; Sreturn; Sspush 1; Sreturn ]))

let test_interp_statics () =
  let open Jcvm.Bytecode in
  check_int "getstatic initial" 42
    (value_of (run ~statics:[| 42 |] [ Getstatic 0; Sreturn ]));
  check_int "putstatic" 9
    (value_of (run [ Sspush 9; Putstatic 3; Getstatic 3; Sreturn ]))

let test_interp_arrays () =
  let open Jcvm.Bytecode in
  check_int "store/load element" 77
    (value_of
       (run
          [
            Sspush 4; Newarray; Sstore 0;
            Sload 0; Sspush 2; Sspush 77; Sastore;
            Sload 0; Sspush 2; Saload; Sreturn;
          ]));
  check_int "arraylength" 9
    (value_of (run [ Sspush 9; Newarray; Arraylength; Sreturn ]))

let test_interp_errors () =
  let open Jcvm.Bytecode in
  let raises_runtime program =
    match run program with
    | _ -> false
    | exception Jcvm.Interp.Runtime_error _ -> true
  in
  check_bool "div by zero" true
    (raises_runtime [ Sspush 1; Sspush 0; Sdiv; Sreturn ]);
  check_bool "fuel" true
    (match Jcvm.Interp.run_soft ~fuel:100 [| Jcvm.Bytecode.Goto 0 |] with
    | _ -> false
    | exception Jcvm.Interp.Runtime_error _ -> true);
  check_bool "bounds" true
    (match run [ Sspush 2; Newarray; Sspush 5; Saload; Sreturn ] with
    | _ -> false
    | exception Jcvm.Memmgr.Bounds _ -> true)

let test_interp_return_void () =
  let r = run [ Jcvm.Bytecode.Nop; Jcvm.Bytecode.Return ] in
  check_bool "void" true (r.Jcvm.Interp.value = None);
  check_int "steps" 2 r.Jcvm.Interp.steps

(* Firewall *)

let test_firewall_isolation () =
  let fw = Jcvm.Firewall.create () in
  let a = Jcvm.Firewall.new_context fw in
  let b = Jcvm.Firewall.new_context fw in
  Jcvm.Firewall.register_object fw ~owner:a ~obj:1;
  check_bool "owner ok" true (Jcvm.Firewall.accessible fw ~from_ctx:a ~obj:1);
  check_bool "other denied" false (Jcvm.Firewall.accessible fw ~from_ctx:b ~obj:1);
  check_bool "jcre allowed" true
    (Jcvm.Firewall.accessible fw ~from_ctx:Jcvm.Firewall.jcre ~obj:1);
  Jcvm.Firewall.share fw ~obj:1;
  check_bool "shared visible" true (Jcvm.Firewall.accessible fw ~from_ctx:b ~obj:1)

let test_firewall_check_raises_and_counts () =
  let fw = Jcvm.Firewall.create () in
  let a = Jcvm.Firewall.new_context fw in
  let b = Jcvm.Firewall.new_context fw in
  Jcvm.Firewall.register_object fw ~owner:a ~obj:7;
  check_bool "raises" true
    (match Jcvm.Firewall.check fw ~from_ctx:b ~obj:7 with
    | () -> false
    | exception Jcvm.Firewall.Security_violation _ -> true);
  check_int "denied counted" 1 (Jcvm.Firewall.denied_accesses fw);
  check_bool "owner recorded" true (Jcvm.Firewall.owner fw ~obj:7 = Some a)

let test_firewall_cross_context_array () =
  (* An applet touching another applet's array must be stopped. *)
  let fw = Jcvm.Firewall.create () in
  let mem = Jcvm.Memmgr.create fw in
  let a = Jcvm.Firewall.new_context fw in
  let b = Jcvm.Firewall.new_context fw in
  let arr = Jcvm.Memmgr.alloc_array mem ~ctx:a ~len:4 in
  Jcvm.Memmgr.store mem ~ctx:a ~obj:arr ~index:0 11;
  check_bool "foreign access blocked" true
    (match Jcvm.Memmgr.load mem ~ctx:b ~obj:arr ~index:0 with
    | _ -> false
    | exception Jcvm.Firewall.Security_violation _ -> true);
  Jcvm.Firewall.share fw ~obj:arr;
  check_int "shared read" 11 (Jcvm.Memmgr.load mem ~ctx:b ~obj:arr ~index:0)

(* Memory manager *)

let test_memmgr_statics_truncate () =
  let fw = Jcvm.Firewall.create () in
  let mem = Jcvm.Memmgr.create fw in
  Jcvm.Memmgr.set_static mem 0 0x12345;
  check_int "short truncation" 0x2345 (Jcvm.Memmgr.get_static mem 0);
  Jcvm.Memmgr.set_static mem 1 0xFFFF;
  check_int "negative short" (-1) (Jcvm.Memmgr.get_static mem 1)

let test_memmgr_oom () =
  let fw = Jcvm.Firewall.create () in
  let mem = Jcvm.Memmgr.create ~heap_shorts:8 fw in
  let ctx = Jcvm.Firewall.new_context fw in
  ignore (Jcvm.Memmgr.alloc_array mem ~ctx ~len:6);
  check_int "free tracked" 2 (Jcvm.Memmgr.free_shorts mem);
  check_bool "oom" true
    (match Jcvm.Memmgr.alloc_array mem ~ctx ~len:4 with
    | _ -> false
    | exception Jcvm.Memmgr.Out_of_memory -> true)

(* Software stack *)

let test_soft_stack_lifo () =
  let s = Jcvm.Soft_stack.create () in
  let ops = Jcvm.Soft_stack.ops s in
  List.iter ops.Jcvm.Stack_intf.push [ 1; 2; 3 ];
  Alcotest.(check (list int)) "contents" [ 3; 2; 1 ] (Jcvm.Soft_stack.contents s);
  check_int "pop" 3 (ops.Jcvm.Stack_intf.pop ());
  check_int "depth" 2 (ops.Jcvm.Stack_intf.depth ());
  check_int "max depth" 3 (Jcvm.Soft_stack.max_depth_seen s)

let test_soft_stack_bounds () =
  let s = Jcvm.Soft_stack.create ~capacity:2 () in
  let ops = Jcvm.Soft_stack.ops s in
  ops.Jcvm.Stack_intf.push 1;
  ops.Jcvm.Stack_intf.push 2;
  check_bool "overflow" true
    (match ops.Jcvm.Stack_intf.push 3 with
    | () -> false
    | exception Jcvm.Stack_intf.Overflow -> true);
  ops.Jcvm.Stack_intf.reset ();
  check_bool "underflow" true
    (match ops.Jcvm.Stack_intf.pop () with
    | _ -> false
    | exception Jcvm.Stack_intf.Underflow -> true)

let test_counted_ops () =
  let s = Jcvm.Soft_stack.create () in
  let ops, stats = Jcvm.Stack_intf.counted (Jcvm.Soft_stack.ops s) in
  ops.Jcvm.Stack_intf.push 1;
  ops.Jcvm.Stack_intf.push 2;
  ignore (ops.Jcvm.Stack_intf.pop ());
  check_bool "counts" true (stats () = (2, 1))

(* Applets against the reference interpreter *)

let test_applets_expected () =
  List.iter
    (fun (a : Jcvm.Applets.t) ->
      let r =
        Jcvm.Interp.run_soft ~statics:a.Jcvm.Applets.statics
          ~methods:a.Jcvm.Applets.methods a.Jcvm.Applets.program
      in
      check_bool (a.Jcvm.Applets.name ^ " expected") true
        (r.Jcvm.Interp.value = a.Jcvm.Applets.expected))
    Jcvm.Applets.all

let test_applets_validate () =
  List.iter
    (fun (a : Jcvm.Applets.t) ->
      Array.iter
        (fun m ->
          match Jcvm.Bytecode.validate m with
          | Ok () -> ()
          | Error msg -> Alcotest.fail (a.Jcvm.Applets.name ^ ": " ^ msg))
        (Jcvm.Applets.method_table a))
    Jcvm.Applets.all

(* Hardware stack + adapter refinement: every configuration must behave
   exactly like the software stack. *)

let adapter_fixture config =
  let kernel = Sim.Kernel.create () in
  let hw = Jcvm.Hw_stack.create config in
  let decoder = Ec.Decoder.create [ Jcvm.Hw_stack.slave hw ] in
  let bus = Tlm1.Bus.create ~kernel ~decoder () in
  let adapter = Jcvm.Master_adapter.create ~kernel ~port:(Tlm1.Bus.port bus) config in
  (kernel, hw, adapter)

let test_hw_stack_all_configs_lifo () =
  List.iter
    (fun config ->
      let _, hw, adapter = adapter_fixture config in
      let ops = Jcvm.Master_adapter.ops adapter in
      let values = [ 5; -3; 32767; -32768; 0; 1234 ] in
      List.iter ops.Jcvm.Stack_intf.push values;
      check_int (config.Jcvm.Configs.name ^ " depth") 6
        (ops.Jcvm.Stack_intf.depth ());
      let popped = List.init 6 (fun _ -> ops.Jcvm.Stack_intf.pop ()) in
      Alcotest.(check (list int))
        (config.Jcvm.Configs.name ^ " lifo")
        (List.rev values) popped;
      check_int (config.Jcvm.Configs.name ^ " empty") 0 (Jcvm.Hw_stack.depth hw))
    Jcvm.Configs.standard

let test_hw_stack_interleaved_ops () =
  List.iter
    (fun config ->
      let _, _, adapter = adapter_fixture config in
      let ops = Jcvm.Master_adapter.ops adapter in
      let soft = Jcvm.Soft_stack.create () in
      let soft_ops = Jcvm.Soft_stack.ops soft in
      let rng = Sim.Rng.create ~seed:31 in
      for _ = 1 to 200 do
        if Sim.Rng.bool rng || ops.Jcvm.Stack_intf.depth () = 0 then begin
          let v = Sim.Rng.bits rng 16 - 32768 in
          ops.Jcvm.Stack_intf.push v;
          soft_ops.Jcvm.Stack_intf.push v
        end
        else
          check_int
            (config.Jcvm.Configs.name ^ " interleaved pop")
            (soft_ops.Jcvm.Stack_intf.pop ())
            (ops.Jcvm.Stack_intf.pop ())
      done;
      check_int
        (config.Jcvm.Configs.name ^ " final depth")
        (soft_ops.Jcvm.Stack_intf.depth ())
        (ops.Jcvm.Stack_intf.depth ()))
    Jcvm.Configs.standard

let test_refinement_preserves_results () =
  (* Figure 7: functional model vs refined model, identical outcomes. *)
  List.iter
    (fun config ->
      List.iter
        (fun (a : Jcvm.Applets.t) ->
          let _, _, adapter = adapter_fixture config in
          let fw = Jcvm.Firewall.create () in
          let mem = Jcvm.Memmgr.create fw in
          Array.iteri (fun i v -> Jcvm.Memmgr.set_static mem i v) a.Jcvm.Applets.statics;
          let ctx = Jcvm.Firewall.new_context fw in
          let r =
            Jcvm.Interp.run_methods
              ~stack:(Jcvm.Master_adapter.ops adapter)
              ~memory:mem ~ctx
              (Jcvm.Applets.method_table a)
          in
          check_bool
            (Printf.sprintf "%s on %s" a.Jcvm.Applets.name config.Jcvm.Configs.name)
            true
            (r.Jcvm.Interp.value = a.Jcvm.Applets.expected))
        Jcvm.Applets.all)
    Jcvm.Configs.standard

let test_adapter_transaction_counts () =
  (* 16-bit dedicated: one transaction per operation.  cmd+data: two.
     8-bit: two.  packed 32: about half. *)
  let count config ops_count =
    let _, _, adapter = adapter_fixture config in
    let ops = Jcvm.Master_adapter.ops adapter in
    for i = 1 to ops_count do
      ops.Jcvm.Stack_intf.push i
    done;
    for _ = 1 to ops_count do
      ignore (ops.Jcvm.Stack_intf.pop ())
    done;
    Jcvm.Master_adapter.transactions adapter
  in
  let find name =
    List.find (fun c -> c.Jcvm.Configs.name = name) Jcvm.Configs.standard
  in
  check_int "w16 one per op" 20 (count (find "w16-dedicated") 10);
  check_int "cmd+data two per op" 40 (count (find "w16-cmd+data") 10);
  check_int "w8 two per op" 40 (count (find "w8-dedicated") 10);
  check_int "packed half" 10 (count (find "w32-packed") 10)

let test_packed_flush () =
  let find name =
    List.find (fun c -> c.Jcvm.Configs.name = name) Jcvm.Configs.standard
  in
  let _, hw, adapter = adapter_fixture (find "w32-packed") in
  let ops = Jcvm.Master_adapter.ops adapter in
  ops.Jcvm.Stack_intf.push 42;
  check_int "buffered, not yet in hw" 0 (Jcvm.Hw_stack.depth hw);
  Jcvm.Master_adapter.flush adapter;
  check_int "flushed" 1 (Jcvm.Hw_stack.depth hw);
  Alcotest.(check (list int)) "value" [ 42 ] (Jcvm.Hw_stack.contents hw)

let test_hw_stack_underflow_sticky () =
  let find name =
    List.find (fun c -> c.Jcvm.Configs.name = name) Jcvm.Configs.standard
  in
  let config = find "w16-dedicated" in
  let _, hw, _ = adapter_fixture config in
  let slave = Jcvm.Hw_stack.slave hw in
  (* Raw bus-level pop on an empty stack. *)
  check_int "returns zero" 0
    (slave.Ec.Slave.read ~addr:config.Jcvm.Configs.base ~width:Ec.Txn.W16);
  check_int "underflow recorded" 1 (Jcvm.Hw_stack.underflows hw)

let test_adapter_underflow_guard () =
  let _, _, adapter = adapter_fixture (List.hd Jcvm.Configs.standard) in
  let ops = Jcvm.Master_adapter.ops adapter in
  check_bool "adapter raises" true
    (match ops.Jcvm.Stack_intf.pop () with
    | _ -> false
    | exception Jcvm.Stack_intf.Underflow -> true)

let test_configs_validation () =
  let invalid f =
    check_bool "rejected" true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  invalid (fun () -> Jcvm.Configs.make ~name:"x" ~packed32:true ());
  invalid (fun () -> Jcvm.Configs.make ~name:"x" ~stride:2 ());
  invalid (fun () -> Jcvm.Configs.make ~name:"x" ~base:3 ())

let suite =
  [
    Alcotest.test_case "bytecode roundtrip" `Quick test_bytecode_roundtrip;
    Alcotest.test_case "bytecode operand ranges" `Quick test_bytecode_operand_ranges;
    Alcotest.test_case "bytecode decode garbage" `Quick test_bytecode_decode_garbage;
    Alcotest.test_case "bytecode validate" `Quick test_bytecode_validate;
    Alcotest.test_case "interp arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp short wraparound" `Quick test_interp_short_wraparound;
    Alcotest.test_case "interp stack ops" `Quick test_interp_stack_ops;
    Alcotest.test_case "interp locals" `Quick test_interp_locals;
    Alcotest.test_case "interp branches" `Quick test_interp_branches;
    Alcotest.test_case "interp statics" `Quick test_interp_statics;
    Alcotest.test_case "interp arrays" `Quick test_interp_arrays;
    Alcotest.test_case "interp errors" `Quick test_interp_errors;
    Alcotest.test_case "interp void return" `Quick test_interp_return_void;
    Alcotest.test_case "firewall isolation" `Quick test_firewall_isolation;
    Alcotest.test_case "firewall check raises" `Quick
      test_firewall_check_raises_and_counts;
    Alcotest.test_case "firewall cross-context array" `Quick
      test_firewall_cross_context_array;
    Alcotest.test_case "memmgr statics truncate" `Quick test_memmgr_statics_truncate;
    Alcotest.test_case "memmgr oom" `Quick test_memmgr_oom;
    Alcotest.test_case "soft stack lifo" `Quick test_soft_stack_lifo;
    Alcotest.test_case "soft stack bounds" `Quick test_soft_stack_bounds;
    Alcotest.test_case "counted ops" `Quick test_counted_ops;
    Alcotest.test_case "applets expected values" `Quick test_applets_expected;
    Alcotest.test_case "applets validate" `Quick test_applets_validate;
    Alcotest.test_case "hw stack lifo all configs" `Quick
      test_hw_stack_all_configs_lifo;
    Alcotest.test_case "hw stack interleaved" `Quick test_hw_stack_interleaved_ops;
    Alcotest.test_case "refinement preserves results" `Quick
      test_refinement_preserves_results;
    Alcotest.test_case "adapter transaction counts" `Quick
      test_adapter_transaction_counts;
    Alcotest.test_case "packed flush" `Quick test_packed_flush;
    Alcotest.test_case "hw stack underflow sticky" `Quick
      test_hw_stack_underflow_sticky;
    Alcotest.test_case "adapter underflow guard" `Quick test_adapter_underflow_guard;
    Alcotest.test_case "configs validation" `Quick test_configs_validation;
  ]

(* Method invocation. *)

let test_invokestatic_basic () =
  let open Jcvm.Bytecode in
  (* method 1: pops x, returns x*2 *)
  let double = [| Sstore 0; Sload 0; Sspush 2; Smul; Sreturn |] in
  let entry = [| Sspush 21; Invokestatic 1; Sreturn |] in
  let r = Jcvm.Interp.run_soft ~methods:[| double |] entry in
  check_bool "doubled" true (r.Jcvm.Interp.value = Some 42)

let test_invokestatic_locals_isolated () =
  let open Jcvm.Bytecode in
  (* The callee clobbers local 0; the caller's local 0 must survive. *)
  let clobber = [| Sspush 999; Sstore 0; Return |] in
  let entry =
    [| Sspush 5; Sstore 0; Invokestatic 1; Sload 0; Sreturn |]
  in
  let r = Jcvm.Interp.run_soft ~methods:[| clobber |] entry in
  check_bool "caller locals preserved" true (r.Jcvm.Interp.value = Some 5)

let test_invokestatic_errors () =
  let open Jcvm.Bytecode in
  let raises program methods =
    match Jcvm.Interp.run_soft ~methods program with
    | _ -> false
    | exception Jcvm.Interp.Runtime_error _ -> true
  in
  check_bool "unknown method" true (raises [| Invokestatic 9; Return |] [||]);
  (* Unbounded recursion exhausts the call-depth limit. *)
  check_bool "call depth" true
    (raises [| Invokestatic 1; Return |] [| [| Invokestatic 1; Return |] |])

let test_gcd_applet () =
  let a = Jcvm.Applets.gcd in
  let r =
    Jcvm.Interp.run_soft ~statics:a.Jcvm.Applets.statics
      ~methods:a.Jcvm.Applets.methods a.Jcvm.Applets.program
  in
  check_bool "gcd(1071,462)=21" true (r.Jcvm.Interp.value = Some 21)

let test_gcd_on_hardware_stack () =
  (* Recursion over the bus-backed stack on every configuration. *)
  List.iter
    (fun config ->
      let _, _, adapter = adapter_fixture config in
      let fw = Jcvm.Firewall.create () in
      let mem = Jcvm.Memmgr.create fw in
      let ctx = Jcvm.Firewall.new_context fw in
      let r =
        Jcvm.Interp.run_methods
          ~stack:(Jcvm.Master_adapter.ops adapter)
          ~memory:mem ~ctx
          (Jcvm.Applets.method_table Jcvm.Applets.gcd)
      in
      check_bool (config.Jcvm.Configs.name ^ " gcd") true
        (r.Jcvm.Interp.value = Some 21))
    Jcvm.Configs.standard

let method_suite =
  [
    Alcotest.test_case "invokestatic basic" `Quick test_invokestatic_basic;
    Alcotest.test_case "invokestatic locals isolated" `Quick
      test_invokestatic_locals_isolated;
    Alcotest.test_case "invokestatic errors" `Quick test_invokestatic_errors;
    Alcotest.test_case "gcd applet" `Quick test_gcd_applet;
    Alcotest.test_case "gcd on hardware stacks" `Quick test_gcd_on_hardware_stack;
  ]

let suite = suite @ method_suite
