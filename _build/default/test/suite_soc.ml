(* SoC peripherals: memories, UART, timers, TRNG, crypto, platform. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mem_cfg ?(writable = true) () =
  Ec.Slave_cfg.make ~name:"m" ~base:0x1000 ~size:0x100 ~writable ()

let test_memory_endianness () =
  let m = Soc.Memory.create (mem_cfg ()) in
  Soc.Memory.poke32 m ~addr:0x1000 0x11223344;
  check_int "byte 0 is LSB" 0x44 (Soc.Memory.peek8 m ~addr:0x1000);
  check_int "byte 3 is MSB" 0x11 (Soc.Memory.peek8 m ~addr:0x1003)

let test_memory_bus_widths () =
  let m = Soc.Memory.create (mem_cfg ()) in
  let s = Soc.Memory.slave m in
  s.Ec.Slave.write ~addr:0x1010 ~width:Ec.Txn.W32 ~value:0xAABBCCDD;
  check_int "w8 lane 1" 0xCC (s.Ec.Slave.read ~addr:0x1011 ~width:Ec.Txn.W8);
  check_int "w16 high" 0xAABB (s.Ec.Slave.read ~addr:0x1012 ~width:Ec.Txn.W16);
  s.Ec.Slave.write ~addr:0x1011 ~width:Ec.Txn.W8 ~value:0xEE;
  check_int "byte merge" 0xAABBEEDD (s.Ec.Slave.read ~addr:0x1010 ~width:Ec.Txn.W32);
  s.Ec.Slave.write ~addr:0x1012 ~width:Ec.Txn.W16 ~value:0x1234;
  check_int "half merge" 0x1234EEDD (s.Ec.Slave.read ~addr:0x1010 ~width:Ec.Txn.W32)

let test_memory_load_program () =
  let m = Soc.Memory.create (mem_cfg ()) in
  let program = Soc.Asm.assemble ~origin:0x1000 "addi r1, r0, 5\nhalt" in
  Soc.Memory.load_program m program;
  check_int "first word" (Soc.Isa.encode (Soc.Isa.Addi (1, 0, 5)))
    (Soc.Memory.peek32 m ~addr:0x1000)

let test_memory_stats () =
  let m = Soc.Memory.create (mem_cfg ()) in
  let s = Soc.Memory.slave m in
  ignore (s.Ec.Slave.read ~addr:0x1000 ~width:Ec.Txn.W32);
  s.Ec.Slave.write ~addr:0x1000 ~width:Ec.Txn.W32 ~value:0;
  check_int "reads" 1 (Soc.Memory.reads m);
  check_int "writes" 1 (Soc.Memory.writes m)

let with_kernel make =
  let kernel = Sim.Kernel.create () in
  (kernel, make kernel)

let uart_cfg = Ec.Slave_cfg.make ~name:"uart" ~base:0 ~size:0x20 ()

let test_uart_transmit () =
  let kernel, uart = with_kernel (fun kernel -> Soc.Uart.create ~kernel uart_cfg) in
  let s = Soc.Uart.slave uart in
  (* Speed the line up. *)
  s.Ec.Slave.write ~addr:0xC ~width:Ec.Txn.W32 ~value:1;
  s.Ec.Slave.write ~addr:0x0 ~width:Ec.Txn.W8 ~value:(Char.code 'H');
  s.Ec.Slave.write ~addr:0x0 ~width:Ec.Txn.W8 ~value:(Char.code 'i');
  Sim.Kernel.run kernel ~cycles:25;
  Alcotest.(check string) "transmitted" "Hi" (Soc.Uart.transmitted uart);
  check_bool "idle afterwards" false (Soc.Uart.tx_busy uart)

let test_uart_status_and_rx () =
  let kernel, uart = with_kernel (fun kernel -> Soc.Uart.create ~kernel uart_cfg) in
  let s = Soc.Uart.slave uart in
  check_int "empty status" 0 (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32);
  Soc.Uart.inject_rx uart 0x41;
  check_int "rx available" 2
    (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32 land 2);
  check_int "rx byte" 0x41 (s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W8);
  check_int "rx drained" 0 (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32 land 2);
  ignore kernel

let test_uart_busy_while_shifting () =
  let kernel, uart = with_kernel (fun kernel -> Soc.Uart.create ~kernel uart_cfg) in
  let s = Soc.Uart.slave uart in
  s.Ec.Slave.write ~addr:0x0 ~width:Ec.Txn.W8 ~value:0x55;
  Sim.Kernel.run kernel ~cycles:3;
  check_bool "busy" true (Soc.Uart.tx_busy uart);
  check_int "status busy bit" 1 (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32 land 1);
  (* Default baud 16: 160 cycles per byte. *)
  Sim.Kernel.run kernel ~cycles:200;
  Alcotest.(check string) "done" "\x55" (Soc.Uart.transmitted uart)

let timer_cfg = Ec.Slave_cfg.make ~name:"timer" ~base:0 ~size:0x20 ()

let test_timer_counts () =
  let kernel, timer = with_kernel (fun kernel -> Soc.Timer.create ~kernel timer_cfg) in
  let s = Soc.Timer.slave timer in
  s.Ec.Slave.write ~addr:0x8 ~width:Ec.Txn.W32 ~value:1;
  Sim.Kernel.run kernel ~cycles:10;
  check_int "counted" 10 (s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32);
  s.Ec.Slave.write ~addr:0x8 ~width:Ec.Txn.W32 ~value:0;
  Sim.Kernel.run kernel ~cycles:5;
  check_int "frozen" 10 (s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32)

let test_timer_channels_independent () =
  let kernel, timer = with_kernel (fun kernel -> Soc.Timer.create ~kernel timer_cfg) in
  let s = Soc.Timer.slave timer in
  s.Ec.Slave.write ~addr:0x18 ~width:Ec.Txn.W32 ~value:1;
  Sim.Kernel.run kernel ~cycles:4;
  check_int "ch0 idle" 0 (Soc.Timer.count timer 0);
  check_int "ch1 counts" 4 (Soc.Timer.count timer 1)

let test_timer_overflow_reload () =
  let kernel, timer = with_kernel (fun kernel -> Soc.Timer.create ~kernel timer_cfg) in
  let s = Soc.Timer.slave timer in
  s.Ec.Slave.write ~addr:0x4 ~width:Ec.Txn.W32 ~value:0xFFF0;
  s.Ec.Slave.write ~addr:0x8 ~width:Ec.Txn.W32 ~value:3;  (* enable + auto *)
  (* Count from 0 up to overflow once: 0x10000 steps, too slow; preload by
     poking through reload: first overflow needs full range, so instead
     run a bounded number of cycles after forcing count high via reload
     semantics: disable, set reload, enable and run past 0xFFFF. *)
  Sim.Kernel.run kernel ~cycles:70000;
  check_bool "overflowed" true (Soc.Timer.overflowed timer 0);
  check_bool "reloaded above 0xFFF0" true (Soc.Timer.count timer 0 >= 0xFFF0 || Soc.Timer.count timer 0 < 0x10000);
  s.Ec.Slave.write ~addr:0xC ~width:Ec.Txn.W32 ~value:1;
  check_bool "flag cleared" false (Soc.Timer.overflowed timer 0)

let trng_cfg = Ec.Slave_cfg.make ~name:"trng" ~base:0 ~size:0x10 ()

let test_trng_ready_and_refill () =
  let kernel, trng =
    with_kernel (fun kernel -> Soc.Trng.create ~kernel ~seed:1 ~refill_cycles:4 trng_cfg)
  in
  let s = Soc.Trng.slave trng in
  check_int "ready" 1 (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32);
  let first = s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32 in
  check_int "consumed" 0 (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32);
  check_int "stale until refill" first (s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32);
  Sim.Kernel.run kernel ~cycles:5;
  check_int "ready again" 1 (s.Ec.Slave.read ~addr:0x4 ~width:Ec.Txn.W32);
  let second = s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32 in
  check_bool "fresh word" true (first <> second);
  check_int "delivered" 2 (Soc.Trng.words_delivered trng)

let test_trng_determinism () =
  let run () =
    let kernel, trng =
      with_kernel (fun kernel -> Soc.Trng.create ~kernel ~seed:99 ~refill_cycles:1 trng_cfg)
    in
    let s = Soc.Trng.slave trng in
    List.init 5 (fun _ ->
        let v = s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32 in
        Sim.Kernel.run kernel ~cycles:2;
        v)
  in
  Alcotest.(check (list int)) "same seed same stream" (run ()) (run ())

let crypto_cfg = Ec.Slave_cfg.make ~name:"crypto" ~base:0 ~size:0x40 ()

let test_crypto_sbox_properties () =
  (* The AES S-box is a bijection with no fixed point at 0. *)
  let seen = Array.make 256 false in
  for b = 0 to 255 do
    let v = Soc.Crypto.sbox b in
    check_bool "in byte range" true (v >= 0 && v <= 255);
    check_bool "bijective" false seen.(v);
    seen.(v) <- true
  done;
  check_int "sbox(0)" 0x63 (Soc.Crypto.sbox 0)

let test_crypto_reference () =
  check_int "known value"
    (Soc.Crypto.sbox 0x00 lor (Soc.Crypto.sbox 0xFF lsl 8))
    (Soc.Crypto.reference ~key:0x0000FF00 (0x0000FF00 lxor 0x0000FF00) land 0xFFFF)

let test_crypto_operation () =
  let kernel, crypto =
    with_kernel (fun kernel -> Soc.Crypto.create ~kernel ~latency:8 crypto_cfg)
  in
  let s = Soc.Crypto.slave crypto in
  s.Ec.Slave.write ~addr:0x00 ~width:Ec.Txn.W32 ~value:0x01020304;
  s.Ec.Slave.write ~addr:0x04 ~width:Ec.Txn.W32 ~value:0xAABBCCDD;
  s.Ec.Slave.write ~addr:0x08 ~width:Ec.Txn.W32 ~value:1;
  Sim.Kernel.run kernel ~cycles:2;
  check_int "busy" 1 (s.Ec.Slave.read ~addr:0x0C ~width:Ec.Txn.W32 land 1);
  Sim.Kernel.run kernel ~cycles:10;
  check_int "done" 2 (s.Ec.Slave.read ~addr:0x0C ~width:Ec.Txn.W32 land 2);
  check_int "ciphertext"
    (Soc.Crypto.reference ~key:0x01020304 0xAABBCCDD)
    (s.Ec.Slave.read ~addr:0x10 ~width:Ec.Txn.W32);
  check_int "operations" 1 (Soc.Crypto.operations crypto)

let test_crypto_masked_readout () =
  let kernel, crypto =
    with_kernel (fun kernel -> Soc.Crypto.create ~kernel ~latency:4 crypto_cfg)
  in
  let s = Soc.Crypto.slave crypto in
  s.Ec.Slave.write ~addr:0x00 ~width:Ec.Txn.W32 ~value:0xDEADBEEF;
  s.Ec.Slave.write ~addr:0x04 ~width:Ec.Txn.W32 ~value:0x00112233;
  s.Ec.Slave.write ~addr:0x08 ~width:Ec.Txn.W32 ~value:0b11;  (* start+mask *)
  Sim.Kernel.run kernel ~cycles:6;
  let masked = s.Ec.Slave.read ~addr:0x10 ~width:Ec.Txn.W32 in
  let mask = s.Ec.Slave.read ~addr:0x14 ~width:Ec.Txn.W32 in
  check_int "mask recombines"
    (Soc.Crypto.reference ~key:0xDEADBEEF 0x00112233)
    (masked lxor mask);
  (* A second read uses a fresh mask. *)
  let masked2 = s.Ec.Slave.read ~addr:0x10 ~width:Ec.Txn.W32 in
  check_bool "fresh mask" true (masked2 <> masked)

let test_platform_decoder_complete () =
  let kernel = Sim.Kernel.create () in
  let p = Soc.Platform.create ~kernel () in
  let d = Soc.Platform.decoder p in
  check_int "ten slaves" 10 (Ec.Decoder.count d);
  List.iter
    (fun (addr, name) ->
      match Ec.Decoder.find d addr with
      | Some (_, s) -> Alcotest.(check string) "mapped" name s.Ec.Slave.cfg.Ec.Slave_cfg.name
      | None -> Alcotest.fail ("unmapped " ^ name))
    [
      (Soc.Platform.Map.rom_base, "rom");
      (Soc.Platform.Map.ram_base, "ram");
      (Soc.Platform.Map.eeprom_base, "eeprom");
      (Soc.Platform.Map.flash_base, "flash");
      (Soc.Platform.Map.uart_base, "uart");
      (Soc.Platform.Map.timer_base, "timer");
      (Soc.Platform.Map.trng_base, "trng");
      (Soc.Platform.Map.crypto_base, "crypto");
      (Soc.Platform.Map.intc_base, "intc");
      (Soc.Platform.Map.dma_base, "dma");
    ]

let test_platform_components_energy () =
  let kernel = Sim.Kernel.create () in
  let p = Soc.Platform.create ~kernel () in
  check_int "ten components" 10 (List.length (Soc.Platform.components p));
  Sim.Kernel.run kernel ~cycles:100;
  (* Idle leakage accumulates even without traffic. *)
  check_bool "idle energy" true (Soc.Platform.components_energy_pj p > 0.0)

let test_platform_load_program_routing () =
  let kernel = Sim.Kernel.create () in
  let p = Soc.Platform.create ~kernel () in
  let rom_prog = Soc.Asm.assemble ~origin:0 "halt" in
  Soc.Platform.load_program p rom_prog;
  check_int "in rom" (Soc.Isa.encode Soc.Isa.Halt)
    (Soc.Memory.peek32 (Soc.Platform.rom p) ~addr:0);
  let bad = Soc.Asm.assemble ~origin:0x900000 "halt" in
  check_bool "outside memories rejected" true
    (match Soc.Platform.load_program p bad with
    | () -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "memory endianness" `Quick test_memory_endianness;
    Alcotest.test_case "memory bus widths" `Quick test_memory_bus_widths;
    Alcotest.test_case "memory load program" `Quick test_memory_load_program;
    Alcotest.test_case "memory stats" `Quick test_memory_stats;
    Alcotest.test_case "uart transmit" `Quick test_uart_transmit;
    Alcotest.test_case "uart status and rx" `Quick test_uart_status_and_rx;
    Alcotest.test_case "uart busy while shifting" `Quick test_uart_busy_while_shifting;
    Alcotest.test_case "timer counts" `Quick test_timer_counts;
    Alcotest.test_case "timer channels independent" `Quick
      test_timer_channels_independent;
    Alcotest.test_case "timer overflow+reload" `Slow test_timer_overflow_reload;
    Alcotest.test_case "trng ready/refill" `Quick test_trng_ready_and_refill;
    Alcotest.test_case "trng determinism" `Quick test_trng_determinism;
    Alcotest.test_case "crypto sbox bijective" `Quick test_crypto_sbox_properties;
    Alcotest.test_case "crypto reference" `Quick test_crypto_reference;
    Alcotest.test_case "crypto operation over bus regs" `Quick test_crypto_operation;
    Alcotest.test_case "crypto masked readout" `Quick test_crypto_masked_readout;
    Alcotest.test_case "platform decoder" `Quick test_platform_decoder_complete;
    Alcotest.test_case "platform component energy" `Quick
      test_platform_components_energy;
    Alcotest.test_case "platform program routing" `Quick
      test_platform_load_program_routing;
  ]

(* Interrupt controller and CPU interrupt handling. *)

let intc_cfg = Ec.Slave_cfg.make ~name:"intc" ~base:0 ~size:0x10 ()

let test_intc_mask_and_ack () =
  let intc = Soc.Intc.create intc_cfg in
  let s = Soc.Intc.slave intc in
  check_bool "quiet initially" false (Soc.Intc.asserted intc);
  Soc.Intc.raise_line intc 3;
  check_bool "pending but masked" false (Soc.Intc.asserted intc);
  check_int "pending readable" 0b1000 (s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32);
  s.Ec.Slave.write ~addr:0x4 ~width:Ec.Txn.W32 ~value:0b1000;
  check_bool "asserted once enabled" true (Soc.Intc.asserted intc);
  check_int "active = pending&enable" 0b1000
    (s.Ec.Slave.read ~addr:0x8 ~width:Ec.Txn.W32);
  (* Write-one-to-clear acknowledges only the given lines. *)
  Soc.Intc.raise_line intc 0;
  s.Ec.Slave.write ~addr:0x0 ~width:Ec.Txn.W32 ~value:0b1000;
  check_int "line 0 still pending" 0b0001
    (s.Ec.Slave.read ~addr:0x0 ~width:Ec.Txn.W32);
  check_bool "line 0 masked" false (Soc.Intc.asserted intc);
  check_int "raised counted" 2 (Soc.Intc.raised_total intc)

let test_intc_line_validation () =
  let intc = Soc.Intc.create intc_cfg in
  check_bool "bad line rejected" true
    (match Soc.Intc.raise_line intc 16 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_cpu_interrupt_program () =
  let program = Soc.Asm.assemble (Core.Test_programs.timer_interrupts ~ticks:4) in
  let run = Core.Runner.run_program program in
  check_bool "clean halt" true (run.Core.Runner.fault = None);
  let ram = Soc.Platform.ram (Core.System.platform run.Core.Runner.system) in
  check_bool "at least 4 ticks" true
    (Soc.Memory.peek32 ram ~addr:Soc.Platform.Map.ram_base >= 4)

let test_cpu_interrupt_requires_ei () =
  (* Without ei the handler never runs; the program must spin forever. *)
  let src =
    Printf.sprintf
      "li r1, %d\n\
       li r2, 0xFFF0\n\
       sw r2, 0(r1)\n\
       sw r2, 4(r1)\n\
       addi r3, r0, 3\n\
       sw r3, 8(r1)\n\
       li r4, %d\n\
       addi r5, r0, 1\n\
       sw r5, 4(r4)\n\
       # no ei\n\
       spin_forever: j spin_forever"
      Soc.Platform.Map.timer_base Soc.Platform.Map.intc_base
  in
  let program = Soc.Asm.assemble src in
  let system = Core.System.create () in
  let kernel = Core.System.kernel system in
  let platform = Core.System.platform system in
  Soc.Platform.load_program platform program;
  let cpu =
    Soc.Cpu.create ~kernel ~port:(Core.System.port system)
      ~irq:(fun () -> Soc.Platform.irq_asserted platform)
      ()
  in
  Sim.Kernel.run kernel ~cycles:2000;
  check_bool "still spinning" false (Soc.Cpu.halted cpu);
  check_int "no interrupts taken" 0 (Soc.Cpu.interrupts_taken cpu);
  (* The line is pending at the controller nonetheless. *)
  check_bool "controller asserted" true (Soc.Platform.irq_asserted platform)

let test_cpu_interrupt_no_nesting () =
  (* While in the handler, a still-asserted line must not re-enter. *)
  let program = Soc.Asm.assemble (Core.Test_programs.timer_interrupts ~ticks:2) in
  let system = Core.System.create () in
  let kernel = Core.System.kernel system in
  let platform = Core.System.platform system in
  Soc.Platform.load_program platform program;
  let cpu =
    Soc.Cpu.create ~kernel ~port:(Core.System.port system)
      ~irq:(fun () -> Soc.Platform.irq_asserted platform)
      ()
  in
  let max_nested = ref 0 in
  let nested = ref 0 in
  Sim.Kernel.on_rising kernel ~name:"nesting-watch" (fun _ ->
      if Soc.Cpu.in_interrupt cpu then incr nested else nested := 0;
      if !nested > !max_nested then max_nested := !nested);
  ignore (Soc.Cpu.run_to_halt cpu ~kernel ());
  check_bool "interrupts happened" true (Soc.Cpu.interrupts_taken cpu >= 2);
  check_bool "handler bounded (no runaway nesting)" true (!max_nested < 200)

let interrupt_suite =
  [
    Alcotest.test_case "intc mask and ack" `Quick test_intc_mask_and_ack;
    Alcotest.test_case "intc line validation" `Quick test_intc_line_validation;
    Alcotest.test_case "cpu interrupt program" `Quick test_cpu_interrupt_program;
    Alcotest.test_case "interrupts require ei" `Quick test_cpu_interrupt_requires_ei;
    Alcotest.test_case "no interrupt nesting" `Quick test_cpu_interrupt_no_nesting;
  ]

let suite = suite @ interrupt_suite

(* DMA engine. *)

let test_dma_copies_data () =
  List.iter
    (fun burst ->
      let program =
        Soc.Asm.assemble (Core.Test_programs.dma_copy ~words:12 ~burst ())
      in
      let run = Core.Runner.run_program program in
      check_bool "clean" true (run.Core.Runner.fault = None);
      let platform = Core.System.platform run.Core.Runner.system in
      let ram = Soc.Platform.ram platform in
      for w = 0 to 11 do
        check_int
          (Printf.sprintf "word %d (burst=%b)" w burst)
          (Soc.Memory.peek32 ram ~addr:(Soc.Platform.Map.ram_base + (4 * w)))
          (Soc.Memory.peek32 ram
             ~addr:(Soc.Platform.Map.ram_base + 0x800 + (4 * w)))
      done;
      check_int "words counted" 12 (Soc.Dma.words_copied (Soc.Platform.dma platform));
      check_int "one transfer" 1 (Soc.Dma.transfers_done (Soc.Platform.dma platform)))
    [ true; false ]

let test_dma_burst_beats_single () =
  let cycles burst =
    let program =
      Soc.Asm.assemble (Core.Test_programs.dma_copy ~words:32 ~burst ())
    in
    (Core.Runner.run_program program).Core.Runner.result.Core.Runner.cycles
  in
  let burst = cycles true and single = cycles false in
  check_bool
    (Printf.sprintf "burst (%d) < single (%d)" burst single)
    true (burst < single)

let test_dma_unconnected_errors () =
  let kernel = Sim.Kernel.create () in
  let dma =
    Soc.Dma.create ~kernel
      (Ec.Slave_cfg.make ~name:"dma" ~base:0 ~size:0x20 ())
  in
  let s = Soc.Dma.slave dma in
  s.Ec.Slave.write ~addr:0x08 ~width:Ec.Txn.W32 ~value:4;
  s.Ec.Slave.write ~addr:0x0C ~width:Ec.Txn.W32 ~value:1;
  Sim.Kernel.run kernel ~cycles:3;
  check_int "error flag" 4 (s.Ec.Slave.read ~addr:0x10 ~width:Ec.Txn.W32 land 4);
  check_bool "not busy" false (Soc.Dma.busy dma)

let test_dma_bad_address_errors () =
  (* Copy targeting the ROM (not writable): the engine must stop with the
     error flag, not wedge the bus. *)
  let system = Core.System.create () in
  let kernel = Core.System.kernel system in
  let platform = Core.System.platform system in
  let dma = Soc.Platform.dma platform in
  let s = Soc.Dma.slave dma in
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x00) ~width:Ec.Txn.W32
    ~value:Soc.Platform.Map.ram_base;
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x04) ~width:Ec.Txn.W32
    ~value:Soc.Platform.Map.rom_base;
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x08) ~width:Ec.Txn.W32
    ~value:4;
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x0C) ~width:Ec.Txn.W32
    ~value:1;
  ignore (Sim.Kernel.run_until kernel ~max_cycles:1000 (fun () -> not (Soc.Dma.busy dma)));
  check_int "error flag" 4
    (s.Ec.Slave.read ~addr:(Soc.Platform.Map.dma_base + 0x10) ~width:Ec.Txn.W32
    land 4)

let test_dma_raises_irq () =
  let system = Core.System.create () in
  let kernel = Core.System.kernel system in
  let platform = Core.System.platform system in
  let dma = Soc.Platform.dma platform in
  Soc.Memory.poke32 (Soc.Platform.ram platform) ~addr:Soc.Platform.Map.ram_base 7;
  let s = Soc.Dma.slave dma in
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x00) ~width:Ec.Txn.W32
    ~value:Soc.Platform.Map.ram_base;
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x04) ~width:Ec.Txn.W32
    ~value:(Soc.Platform.Map.ram_base + 0x100);
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x08) ~width:Ec.Txn.W32
    ~value:1;
  s.Ec.Slave.write ~addr:(Soc.Platform.Map.dma_base + 0x0C) ~width:Ec.Txn.W32
    ~value:1;
  ignore (Sim.Kernel.run_until kernel ~max_cycles:1000 (fun () -> not (Soc.Dma.busy dma)));
  check_int "dma line pending" (1 lsl Soc.Platform.dma_irq_line)
    (Soc.Intc.pending (Soc.Platform.intc platform)
    land (1 lsl Soc.Platform.dma_irq_line))

let dma_suite =
  [
    Alcotest.test_case "dma copies data" `Quick test_dma_copies_data;
    Alcotest.test_case "dma burst beats single" `Quick test_dma_burst_beats_single;
    Alcotest.test_case "dma unconnected errors" `Quick test_dma_unconnected_errors;
    Alcotest.test_case "dma bad address errors" `Quick test_dma_bad_address_errors;
    Alcotest.test_case "dma raises irq" `Quick test_dma_raises_irq;
  ]

let suite = suite @ dma_suite

(* Instruction cache. *)

let test_icache_correctness_preserved () =
  (* Same architectural results with and without the cache. *)
  let program = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:8) in
  let ram_dump icache_lines =
    let run = Core.Runner.run_program ?icache_lines program in
    check_bool "clean" true (run.Core.Runner.fault = None);
    let ram = Soc.Platform.ram (Core.System.platform run.Core.Runner.system) in
    List.init 8 (fun i ->
        Soc.Memory.peek32 ram ~addr:(Soc.Platform.Map.ram_base + (4 * i)))
  in
  Alcotest.(check (list int)) "results equal" (ram_dump None) (ram_dump (Some 8))

let test_icache_hits_cut_bus_traffic () =
  let program = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:8) in
  let without = Core.Runner.run_program program in
  let cached = Core.Runner.run_program ~icache_lines:16 program in
  check_bool "fewer bus transactions" true
    (cached.Core.Runner.result.Core.Runner.txns
    < without.Core.Runner.result.Core.Runner.txns);
  check_bool "less bus energy" true
    (cached.Core.Runner.result.Core.Runner.bus_pj
    < without.Core.Runner.result.Core.Runner.bus_pj);
  match cached.Core.Runner.icache with
  | Some c ->
    check_bool "high hit rate" true
      (float_of_int (Soc.Icache.hits c)
      /. float_of_int (Soc.Icache.hits c + Soc.Icache.misses c)
      > 0.9)
  | None -> Alcotest.fail "icache expected"

let test_icache_invalidation_on_write () =
  (* Self-modifying code: a store over a cached instruction must refetch. *)
  let h = Bus_harness.build Bus_harness.L1_l in
  let icache =
    Soc.Icache.create ~kernel:h.Bus_harness.kernel ~lines:8
      ~inner:h.Bus_harness.port ()
  in
  let port = Soc.Icache.port icache in
  Soc.Memory.poke32 h.Bus_harness.fast ~addr:0x100 0xAAAA;
  let ids = Ec.Txn.Id_gen.create () in
  let fetch () =
    let txn =
      Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh ids) ~kind:Ec.Txn.Instruction
        0x100
    in
    assert (port.Ec.Port.try_submit txn);
    ignore
      (Sim.Kernel.run_until h.Bus_harness.kernel ~max_cycles:100 (fun () ->
           Ec.Port.completed port txn.Ec.Txn.id));
    port.Ec.Port.retire txn.Ec.Txn.id;
    txn.Ec.Txn.data.(0)
  in
  check_int "miss then value" 0xAAAA (fetch ());
  check_int "hit same value" 0xAAAA (fetch ());
  check_int "one miss so far" 1 (Soc.Icache.misses icache);
  (* Write through the cached line. *)
  let w = Ec.Txn.single_write ~id:(Ec.Txn.Id_gen.fresh ids) 0x100 ~value:0xBBBB in
  assert (port.Ec.Port.try_submit w);
  ignore
    (Sim.Kernel.run_until h.Bus_harness.kernel ~max_cycles:100 (fun () ->
         Ec.Port.completed port w.Ec.Txn.id));
  port.Ec.Port.retire w.Ec.Txn.id;
  check_int "invalidated" 1 (Soc.Icache.invalidations icache);
  check_int "refetched new value" 0xBBBB (fetch ());
  check_int "second miss" 2 (Soc.Icache.misses icache)

let test_icache_flush () =
  let h = Bus_harness.build Bus_harness.L1_l in
  let icache =
    Soc.Icache.create ~kernel:h.Bus_harness.kernel ~lines:4
      ~inner:h.Bus_harness.port ()
  in
  let port = Soc.Icache.port icache in
  let ids = Ec.Txn.Id_gen.create () in
  let fetch () =
    let txn =
      Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh ids) ~kind:Ec.Txn.Instruction 0x0
    in
    assert (port.Ec.Port.try_submit txn);
    ignore
      (Sim.Kernel.run_until h.Bus_harness.kernel ~max_cycles:100 (fun () ->
           Ec.Port.completed port txn.Ec.Txn.id));
    port.Ec.Port.retire txn.Ec.Txn.id
  in
  fetch ();
  fetch ();
  check_int "one miss" 1 (Soc.Icache.misses icache);
  Soc.Icache.flush icache;
  fetch ();
  check_int "miss after flush" 2 (Soc.Icache.misses icache)

let test_icache_validation () =
  let h = Bus_harness.build Bus_harness.L1_l in
  check_bool "non power of two rejected" true
    (match
       Soc.Icache.create ~kernel:h.Bus_harness.kernel ~lines:3
         ~inner:h.Bus_harness.port ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let icache_suite =
  [
    Alcotest.test_case "icache preserves results" `Quick
      test_icache_correctness_preserved;
    Alcotest.test_case "icache cuts bus traffic" `Quick
      test_icache_hits_cut_bus_traffic;
    Alcotest.test_case "icache invalidation on write" `Quick
      test_icache_invalidation_on_write;
    Alcotest.test_case "icache flush" `Quick test_icache_flush;
    Alcotest.test_case "icache validation" `Quick test_icache_validation;
  ]

let suite = suite @ icache_suite
