(* Cross-level relationships: the verification results of the paper's
   section 4.1 as executable checks. *)

open Bus_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mixed_trace ?(disjoint = false) n seed =
  (* Random traffic over the harness memory map (distinct from the
     platform map used by Core.Workloads).  With [disjoint], reads and
     writes target separate halves of each region so no read-after-write
     hazard exists: under pipelined replay the independent read and write
     buses may legitimately reorder a read around an earlier write, and
     layer 2 (serialized data phases) resolves such races differently. *)
  let rng = Sim.Rng.create ~seed in
  let wbase region = if disjoint then region + 0x800 else region in
  let item i =
    let gap = Sim.Rng.int rng 3 in
    let region = if Sim.Rng.bool rng then fast_base else slow_base in
    let addr4 = region + (4 * Sim.Rng.int rng 16) in
    let txn =
      match Sim.Rng.int rng 6 with
      | 0 -> read addr4
      | 1 -> write (wbase region + (4 * Sim.Rng.int rng 16)) (Sim.Rng.bits rng 32)
      | 2 -> bread (region + (16 * Sim.Rng.int rng 4))
      | 3 ->
        bwrite
          (wbase region + (16 * Sim.Rng.int rng 4))
          (Array.init 4 (fun _ -> Sim.Rng.bits rng 32))
      | 4 -> read ~width:Ec.Txn.W8 (region + Sim.Rng.int rng 64)
      | _ ->
        write ~width:Ec.Txn.W16
          (wbase region + (2 * Sim.Rng.int rng 32))
          (Sim.Rng.bits rng 16)
    in
    ignore i;
    Ec.Trace.item ~gap txn
  in
  List.init n item

(* Table 1's 0% row: the layer-1 model is cycle-identical to the RTL
   reference, serially and pipelined, across random traffic. *)
let test_l1_cycle_equality () =
  List.iter
    (fun seed ->
      List.iter
        (fun mode ->
          let trace = mixed_trace 60 seed in
          let _, rtl_cycles = run_trace ~mode Rtl_l trace in
          let _, l1_cycles = run_trace ~mode L1_l trace in
          check_int
            (Printf.sprintf "seed %d %s" seed
               (match mode with `Serial -> "serial" | `Pipelined -> "pipelined"))
            rtl_cycles l1_cycles)
        [ `Serial; `Pipelined ])
    [ 11; 22; 33; 44 ]

(* The layer-1 energy model sees exactly the interface transitions the
   RTL wires make. *)
let test_l1_transition_equality () =
  List.iter
    (fun seed ->
      let trace = mixed_trace 50 seed in
      let rtl, _ = run_trace Rtl_l trace in
      let l1, _ = run_trace L1_l trace in
      check_int (Printf.sprintf "seed %d" seed) (rtl.transitions ())
        (l1.transitions ()))
    [ 5; 6; 7 ]

(* With the idealized electrical parameters (no coupling, no slopes, no
   internal nets) the reference degenerates to the layer-1 estimate. *)
let test_l1_matches_ideal_rtl () =
  let trace = mixed_trace 50 99 in
  let rtl, _ = run_trace ~rtl_params:Rtl.Params.ideal Rtl_l trace in
  let l1, _ = run_trace L1_l trace in
  let e_rtl = rtl.energy_pj () and e_l1 = l1.energy_pj () in
  check_bool
    (Printf.sprintf "ideal rtl %.3f = l1 %.3f" e_rtl e_l1)
    true
    (Float.abs (e_rtl -. e_l1) < 1e-6 *. Float.max 1.0 e_rtl)

(* With realistic parameters the reference dissipates strictly more than
   the layer-1 estimate (internal nets are invisible at TL). *)
let test_l1_underestimates () =
  let trace = mixed_trace 80 123 in
  let rtl, _ = run_trace Rtl_l trace in
  let l1, _ = run_trace L1_l trace in
  check_bool "rtl above l1" true (rtl.energy_pj () > l1.energy_pj ());
  check_bool "l1 positive" true (l1.energy_pj () > 0.0)

(* Layer-2 timing never beats layer 1 (its data engine is serialized) and
   is exact on strictly serial traffic. *)
let test_l2_timing_bounds () =
  List.iter
    (fun seed ->
      let trace = mixed_trace 40 seed in
      let _, l1_serial = run_trace ~mode:`Serial L1_l trace in
      let _, l2_serial = run_trace ~mode:`Serial L2_l trace in
      check_int (Printf.sprintf "serial equal seed %d" seed) l1_serial l2_serial;
      let _, l1_pipe = run_trace ~mode:`Pipelined L1_l trace in
      let _, l2_pipe = run_trace ~mode:`Pipelined L2_l trace in
      check_bool "pipelined l2 >= l1" true (l2_pipe >= l1_pipe))
    [ 2; 3; 4 ]

(* Functional results are level-independent: read data identical. *)
let test_read_results_equal_across_levels () =
  let trace = mixed_trace ~disjoint:true 40 7 in
  let results =
    List.map
      (fun level ->
        let h = build level in
        (* Pre-fill memories identically. *)
        List.iter
          (fun m ->
            let base = (Soc.Memory.cfg m).Ec.Slave_cfg.base in
            for w = 0 to 63 do
              Soc.Memory.poke32 m ~addr:(base + (4 * w)) ((w * 0x01010101) land 0xFFFFFFFF)
            done)
          [ h.fast; h.slow; h.rom ];
        let master =
          Soc.Trace_master.create ~kernel:h.kernel ~port:h.port ~keep_results:true
            trace
        in
        ignore (Soc.Trace_master.run master ~kernel:h.kernel ());
        List.filter_map
          (fun (txn : Ec.Txn.t) ->
            match txn.Ec.Txn.dir with
            | Ec.Txn.Read -> Some (txn.Ec.Txn.addr, Array.to_list txn.Ec.Txn.data)
            | Ec.Txn.Write -> None)
          (Soc.Trace_master.results master)
        |> List.sort compare)
      all_levels
  in
  match results with
  | [ rtl; l1; l2 ] ->
    check_bool "rtl = l1" true (rtl = l1);
    check_bool "rtl = l2" true (rtl = l2)
  | _ -> assert false

(* Power interface semantics (paper 3.3): last-cycle energy and
   energy-since-last-call. *)
let test_meter_interface () =
  let m = Power.Meter.create ~record_profile:true () in
  Power.Meter.add m 2.0;
  Power.Meter.add m 3.0;
  Power.Meter.end_cycle m;
  Alcotest.(check (float 1e-9)) "last cycle" 5.0 (Power.Meter.last_cycle_pj m);
  Power.Meter.add m 1.0;
  Power.Meter.end_cycle m;
  Alcotest.(check (float 1e-9)) "since last call" 6.0 (Power.Meter.since_last_call_pj m);
  Power.Meter.add m 4.0;
  Power.Meter.end_cycle m;
  Alcotest.(check (float 1e-9)) "delta only" 4.0 (Power.Meter.since_last_call_pj m);
  Alcotest.(check int) "cycles" 3 (Power.Meter.cycles m);
  match Power.Meter.profile m with
  | Some p ->
    Alcotest.(check int) "profile length" 3 (Power.Profile.length p);
    Alcotest.(check (float 1e-9)) "profile total" 10.0 (Power.Profile.total p)
  | None -> Alcotest.fail "profile requested"

(* Figure 6 semantics: the layer-2 profile is phase-lumped (energy lands
   only in completion cycles), the layer-1 profile is cycle-accurate. *)
let test_l2_lumped_profile () =
  let trace = [ Ec.Trace.item (bread slow_base) ] in
  let nonzero_cycles h =
    match h.profile () with
    | None -> Alcotest.fail "profile expected"
    | Some p ->
      let n = ref 0 in
      for i = 0 to Power.Profile.length p - 1 do
        if Power.Profile.get p i > 0.0 then incr n
      done;
      !n
  in
  let h1, _ = run_trace ~record_profile:true L1_l trace in
  let h2, _ = run_trace ~record_profile:true L2_l trace in
  (* A slow burst read: layer 1 dissipates in the address cycles and in
     each of the four beat cycles; layer 2 lumps everything into the two
     phase-completion cycles. *)
  check_bool "l1 cycle-accurate spread" true (nonzero_cycles h1 >= 4);
  check_int "l2 two lumps" 2 (nonzero_cycles h2)

let suite =
  [
    Alcotest.test_case "l1 cycles == rtl cycles (Table 1)" `Quick
      test_l1_cycle_equality;
    Alcotest.test_case "l1 transitions == rtl transitions" `Quick
      test_l1_transition_equality;
    Alcotest.test_case "l1 == ideal rtl energy" `Quick test_l1_matches_ideal_rtl;
    Alcotest.test_case "l1 underestimates real rtl (Table 2 sign)" `Quick
      test_l1_underestimates;
    Alcotest.test_case "l2 timing bounds" `Quick test_l2_timing_bounds;
    Alcotest.test_case "read results equal across levels" `Quick
      test_read_results_equal_across_levels;
    Alcotest.test_case "power interface semantics" `Quick test_meter_interface;
    Alcotest.test_case "l2 lumped vs l1 profile" `Quick test_l2_lumped_profile;
  ]

(* VCD waveform dumping on the RTL model. *)
let test_vcd_dump () =
  let program = Soc.Asm.assemble (Core.Test_programs.memcpy ~words:4) in
  let path = Filename.temp_file "bus" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let run = Core.Runner.run_program ~level:Core.Level.Rtl ~vcd:path program in
      check_bool "clean" true (run.Core.Runner.fault = None);
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let contains needle =
        let h = String.length text and n = String.length needle in
        let rec loop i =
          i + n <= h && (String.sub text i n = needle || loop (i + 1))
        in
        loop 0
      in
      check_bool "header" true (contains "$enddefinitions $end");
      check_bool "declares the address bus" true (contains "$var wire 34");
      check_bool "declares data buses" true (contains "$var wire 32");
      check_bool "has vector changes" true (contains "\nb");
      check_bool "has timesteps" true (contains "\n#1"))

let test_vcd_rejected_on_tlm () =
  let program = Soc.Asm.assemble "halt" in
  check_bool "vcd needs rtl" true
    (match Core.Runner.run_program ~level:Core.Level.L1 ~vcd:"/tmp/x.vcd" program with
    | _ -> false
    | exception Invalid_argument _ -> true)

let vcd_suite =
  [
    Alcotest.test_case "vcd dump" `Quick test_vcd_dump;
    Alcotest.test_case "vcd rejected on tlm" `Quick test_vcd_rejected_on_tlm;
  ]

let suite = suite @ vcd_suite
