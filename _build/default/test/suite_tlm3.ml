(* Layer 3 (message layer) and the layer-3 to cycle-accurate bridge. *)

open Bus_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fixture () =
  let h = build L1_l in
  for w = 0 to 63 do
    Soc.Memory.poke32 h.fast ~addr:(fast_base + (4 * w)) ((w * 7) land 0xFFFF)
  done;
  h

let decoder_of h =
  Ec.Decoder.create
    [ Soc.Memory.slave h.fast; Soc.Memory.slave h.slow; Soc.Memory.slave h.rom ]

let test_channel_read_any_size () =
  let h = fixture () in
  let ch = Tlm3.Channel.create (decoder_of h) in
  (* 7 words: no legal EC transaction could do this in one go. *)
  match Tlm3.Channel.read ch { Tlm3.Channel.addr = fast_base; words = 7 } with
  | Tlm3.Channel.Ok_data data ->
    check_int "seven words" 7 (Array.length data);
    check_int "third word" (2 * 7) data.(2);
    check_int "one message" 1 (Tlm3.Channel.messages ch);
    check_int "words counted" 7 (Tlm3.Channel.words_moved ch)
  | Tlm3.Channel.Bus_error -> Alcotest.fail "mapped read failed"

let test_channel_write_then_read () =
  let h = fixture () in
  let ch = Tlm3.Channel.create (decoder_of h) in
  let payload = Array.init 5 (fun i -> 0x1000 + i) in
  (match Tlm3.Channel.write ch ~addr:(fast_base + 0x80) payload with
  | Tlm3.Channel.Ok_data _ -> ()
  | Tlm3.Channel.Bus_error -> Alcotest.fail "write failed");
  check_int "landed" 0x1003 (Soc.Memory.peek32 h.fast ~addr:(fast_base + 0x8C))

let test_channel_untimed () =
  let h = fixture () in
  let ch = Tlm3.Channel.create (decoder_of h) in
  ignore (Tlm3.Channel.read ch { Tlm3.Channel.addr = fast_base; words = 32 });
  check_int "zero simulated time" 0 (Sim.Kernel.now h.kernel)

let test_channel_errors () =
  let h = fixture () in
  let ch = Tlm3.Channel.create (decoder_of h) in
  let is_error = function
    | Tlm3.Channel.Bus_error -> true
    | Tlm3.Channel.Ok_data _ -> false
  in
  check_bool "unmapped" true
    (is_error (Tlm3.Channel.read ch { Tlm3.Channel.addr = 0x8000; words = 1 }));
  check_bool "rom write" true
    (is_error (Tlm3.Channel.write ch ~addr:rom_base [| 1 |]));
  check_bool "misaligned" true
    (is_error (Tlm3.Channel.read ch { Tlm3.Channel.addr = 2; words = 1 }));
  check_bool "window leaves slave" true
    (is_error
       (Tlm3.Channel.read ch
          { Tlm3.Channel.addr = fast_base + 0x1000 - 8; words = 4 }))

let test_bridge_matches_channel () =
  let h = fixture () in
  let ch = Tlm3.Channel.create (decoder_of h) in
  let bridge = Tlm3.Bridge.create ~kernel:h.kernel ~port:h.port in
  let expected =
    match Tlm3.Channel.read ch { Tlm3.Channel.addr = fast_base; words = 11 } with
    | Tlm3.Channel.Ok_data d -> d
    | Tlm3.Channel.Bus_error -> Alcotest.fail "channel read failed"
  in
  match Tlm3.Bridge.read bridge ~addr:fast_base ~words:11 with
  | Tlm3.Channel.Ok_data got, cycles ->
    Alcotest.(check (array int)) "same data" expected got;
    check_bool "took simulated time" true (cycles > 0);
    (* 11 words = two 4-word bursts + three singles = 5 transactions. *)
    check_int "chunking" 5 (Tlm3.Bridge.transactions bridge)
  | Tlm3.Channel.Bus_error, _ -> Alcotest.fail "bridge read failed"

let test_bridge_write_roundtrip () =
  let h = fixture () in
  let bridge = Tlm3.Bridge.create ~kernel:h.kernel ~port:h.port in
  let payload = Array.init 6 (fun i -> 0xA000 + i) in
  (match Tlm3.Bridge.write bridge ~addr:(slow_base + 0x40) payload with
  | Tlm3.Channel.Ok_data _, cycles ->
    (* Slow slave: each write beat costs wait states. *)
    check_bool "wait states priced in" true (cycles >= 6)
  | Tlm3.Channel.Bus_error, _ -> Alcotest.fail "write failed");
  match Tlm3.Bridge.read bridge ~addr:(slow_base + 0x40) ~words:6 with
  | Tlm3.Channel.Ok_data got, _ -> Alcotest.(check (array int)) "readback" payload got
  | Tlm3.Channel.Bus_error, _ -> Alcotest.fail "readback failed"

let test_bridge_error_propagates () =
  let h = fixture () in
  let bridge = Tlm3.Bridge.create ~kernel:h.kernel ~port:h.port in
  (match Tlm3.Bridge.write bridge ~addr:rom_base [| 1; 2 |] with
  | Tlm3.Channel.Bus_error, _ -> ()
  | Tlm3.Channel.Ok_data _, _ -> Alcotest.fail "rom write must fail");
  match Tlm3.Bridge.read bridge ~addr:6 ~words:1 with
  | Tlm3.Channel.Bus_error, cycles -> check_int "rejected instantly" 0 cycles
  | Tlm3.Channel.Ok_data _, _ -> Alcotest.fail "misaligned must fail"

let suite =
  [
    Alcotest.test_case "channel reads any size" `Quick test_channel_read_any_size;
    Alcotest.test_case "channel write then read" `Quick test_channel_write_then_read;
    Alcotest.test_case "channel is untimed" `Quick test_channel_untimed;
    Alcotest.test_case "channel errors" `Quick test_channel_errors;
    Alcotest.test_case "bridge matches channel" `Quick test_bridge_matches_channel;
    Alcotest.test_case "bridge write roundtrip" `Quick test_bridge_write_roundtrip;
    Alcotest.test_case "bridge error propagates" `Quick test_bridge_error_propagates;
  ]
