(* Protocol behaviour of the three bus models, checked against the
   analytic timing rules and against each other. *)

open Bus_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Isolated transaction latencies must match Ec.Timing on every model
   (layer 2 is exact on isolated transactions too). *)
let test_isolated_latencies () =
  let fast_cfg = Ec.Slave_cfg.make ~name:"f" ~base:fast_base ~size:0x1000 () in
  let slow_cfg =
    Ec.Slave_cfg.make ~name:"s" ~base:slow_base ~size:0x1000 ~addr_wait:1
      ~read_wait:2 ~write_wait:4 ()
  in
  let cases =
    [
      (read fast_base, fast_cfg);
      (write fast_base 0xAB, fast_cfg);
      (bread fast_base, fast_cfg);
      (bwrite fast_base [| 1; 2; 3; 4 |], fast_cfg);
      (read slow_base, slow_cfg);
      (write slow_base 0xCD, slow_cfg);
      (bread slow_base, slow_cfg);
      (bwrite slow_base [| 5; 6; 7; 8 |], slow_cfg);
      (read ~width:Ec.Txn.W8 (fast_base + 1), fast_cfg);
      (write ~width:Ec.Txn.W16 (slow_base + 2) 0x1234, slow_cfg);
    ]
  in
  List.iter
    (fun level ->
      List.iter
        (fun (txn, cfg) ->
          let h = build level in
          let expected = Ec.Timing.isolated_latency cfg txn in
          let txn = Ec.Trace.(instantiate ids (item txn)).Ec.Trace.txn in
          let got = run_one h txn in
          Alcotest.(check int)
            (Printf.sprintf "%s %s" (level_name level)
               (Format.asprintf "%a" Ec.Txn.pp txn))
            expected got)
        cases)
    all_levels

(* A stream of zero-wait single reads sustains one per cycle at the
   cycle-accurate levels. *)
let test_back_to_back_throughput () =
  let trace = List.init 16 (fun i -> Ec.Trace.item (read (fast_base + (4 * i)))) in
  List.iter
    (fun level ->
      let h, cycles = run_trace level trace in
      check_int (level_name level ^ " completed") 16 (h.completed ());
      check_bool
        (level_name level ^ " near one per cycle")
        true
        (cycles <= 16 + 4))
    all_levels

(* Read and write data phases overlap at RTL/L1 (separate buses) but are
   serialized at L2. *)
let test_read_write_overlap () =
  let trace =
    [
      Ec.Trace.item (write slow_base 0xAAAA);
      Ec.Trace.item (read fast_base);
    ]
  in
  let results = run_all_levels trace in
  match List.map snd results with
  | [ rtl; l1; l2 ] ->
    check_int "rtl equals l1" rtl l1;
    check_bool "l2 at least as long" true (l2 >= l1)
  | _ -> assert false

(* Data integrity through each model: writes land, reads return them,
   sub-word merge patterns hit the right byte lanes. *)
let test_data_integrity () =
  List.iter
    (fun level ->
      let h = build level in
      ignore (run_one h (write fast_base 0x11223344));
      ignore (run_one h (write ~width:Ec.Txn.W8 (fast_base + 1) 0xAB));
      ignore (run_one h (write ~width:Ec.Txn.W16 (fast_base + 6) 0xBEEF));
      let r1 = read fast_base in
      ignore (run_one h r1);
      check_int (level_name level ^ " byte merged") 0x1122AB44 r1.Ec.Txn.data.(0);
      let r2 = read ~width:Ec.Txn.W16 (fast_base + 6) in
      ignore (run_one h r2);
      check_int (level_name level ^ " half") 0xBEEF r2.Ec.Txn.data.(0);
      let r3 = read ~width:Ec.Txn.W8 (fast_base + 1) in
      ignore (run_one h r3);
      check_int (level_name level ^ " byte") 0xAB r3.Ec.Txn.data.(0))
    all_levels

let test_burst_data_integrity () =
  List.iter
    (fun level ->
      let h = build level in
      let values = [| 0xDEAD; 0xBEEF; 0xCAFE; 0xF00D |] in
      ignore (run_one h (bwrite slow_base values));
      let r = bread slow_base in
      ignore (run_one h r);
      Alcotest.(check (array int)) (level_name level ^ " burst") values r.Ec.Txn.data)
    all_levels

(* Bus errors: unmapped addresses and access-right violations complete
   with the error state; later traffic is unaffected. *)
let test_bus_errors () =
  List.iter
    (fun level ->
      let h = build level in
      let bad = read 0x8000 in
      assert (h.port.Ec.Port.try_submit bad);
      ignore
        (Sim.Kernel.run_until h.kernel ~max_cycles:100 (fun () ->
             Ec.Port.completed h.port bad.Ec.Txn.id));
      check_bool (level_name level ^ " unmapped fails") true
        (Ec.Port.take h.port bad.Ec.Txn.id = Ec.Port.Failed);
      let rom_write = write rom_base 1 in
      assert (h.port.Ec.Port.try_submit rom_write);
      ignore
        (Sim.Kernel.run_until h.kernel ~max_cycles:100 (fun () ->
             Ec.Port.completed h.port rom_write.Ec.Txn.id));
      check_bool (level_name level ^ " rom write fails") true
        (Ec.Port.take h.port rom_write.Ec.Txn.id = Ec.Port.Failed);
      check_int (level_name level ^ " error count") 2 (h.errors ());
      let ok = read fast_base in
      ignore (run_one h ok);
      check_int (level_name level ^ " still works") 1 (h.completed ()))
    all_levels

(* Execute-right enforcement: instruction fetch from a non-executable
   slave errors, from ROM succeeds. *)
let test_execute_rights () =
  List.iter
    (fun level ->
      let h = build level in
      let fetch_rom = read ~kind:Ec.Txn.Instruction rom_base in
      ignore (run_one h fetch_rom);
      check_int (level_name level ^ " rom fetch ok") 1 (h.completed ());
      let fetch_slow = read ~kind:Ec.Txn.Instruction slow_base in
      assert (h.port.Ec.Port.try_submit fetch_slow);
      ignore
        (Sim.Kernel.run_until h.kernel ~max_cycles:100 (fun () ->
             Ec.Port.completed h.port fetch_slow.Ec.Txn.id));
      check_bool (level_name level ^ " nx fetch fails") true
        (Ec.Port.take h.port fetch_slow.Ec.Txn.id = Ec.Port.Failed))
    all_levels

(* The EC interface limits each category to four outstanding
   transactions. *)
let test_outstanding_limit () =
  List.iter
    (fun level ->
      let h = build level in
      for i = 0 to 3 do
        check_bool
          (Printf.sprintf "%s read %d accepted" (level_name level) i)
          true
          (h.port.Ec.Port.try_submit (read (slow_base + (4 * i))))
      done;
      check_bool (level_name level ^ " fifth refused") false
        (h.port.Ec.Port.try_submit (read slow_base));
      (* A different category still has room. *)
      check_bool (level_name level ^ " write accepted") true
        (h.port.Ec.Port.try_submit (write fast_base 1));
      check_bool (level_name level ^ " instr accepted") true
        (h.port.Ec.Port.try_submit (read ~kind:Ec.Txn.Instruction rom_base));
      ignore (Sim.Kernel.run_until h.kernel ~max_cycles:1000 (fun () -> not (h.busy ())));
      check_int (level_name level ^ " all done") 6 (h.completed ()))
    all_levels

(* After completion the bus goes idle and stays idle. *)
let test_busy_clears () =
  List.iter
    (fun level ->
      let h = build level in
      check_bool "idle initially" false (h.busy ());
      ignore (run_one h (bread slow_base));
      check_bool "idle after" false (h.busy ());
      let before = Sim.Kernel.now h.kernel in
      Sim.Kernel.run h.kernel ~cycles:5;
      check_int "still no txns" 1 (h.completed ());
      check_int "time advanced" (before + 5) (Sim.Kernel.now h.kernel))
    all_levels

(* Pipelining: consecutive bursts overlap address and data phases, so the
   total is less than the sum of isolated latencies (RTL and L1). *)
let test_pipelining_gain () =
  let trace = List.init 4 (fun i -> Ec.Trace.item (bread (slow_base + (16 * i)))) in
  let slow_cfg =
    Ec.Slave_cfg.make ~name:"s" ~base:slow_base ~size:0x1000 ~addr_wait:1
      ~read_wait:2 ~write_wait:4 ()
  in
  let isolated = Ec.Timing.isolated_latency slow_cfg (bread slow_base) in
  List.iter
    (fun level ->
      let _, cycles = run_trace level trace in
      check_bool
        (level_name level ^ " pipelined faster than serial")
        true
        (cycles < 4 * isolated))
    [ Rtl_l; L1_l ]

(* L1 structural view (Figure 3): while a slow burst's data phase runs,
   later requests pile up in the request queue. *)
let test_l1_queue_depths () =
  let h = build L1_l in
  let bus = match h.l1_bus with Some b -> b | None -> assert false in
  assert (h.port.Ec.Port.try_submit (bread slow_base));
  assert (h.port.Ec.Port.try_submit (bread (slow_base + 16)));
  assert (h.port.Ec.Port.try_submit (bread (slow_base + 32)));
  (* After a few cycles the first is in its data phase and at least one
     other waits in the request queue. *)
  Sim.Kernel.run h.kernel ~cycles:3;
  let req, rd, _wr = Tlm1.Bus.queue_depths bus in
  check_bool "request queue occupied" true (req >= 1 || rd >= 1);
  ignore (Sim.Kernel.run_until h.kernel ~max_cycles:200 (fun () -> not (h.busy ())));
  let req, rd, wr = Tlm1.Bus.queue_depths bus in
  check_int "queues drained" 0 (req + rd + wr)

(* RTL wires: a single read pulses RdVal exactly once (two edge
   transitions), ARdy once, and leaves the data bus holding the value. *)
let test_rtl_strobes () =
  let h = build Rtl_l in
  let bus = match h.rtl_bus with Some b -> b | None -> assert false in
  Soc.Memory.poke32 h.fast ~addr:fast_base 0xFFFFFFFF;
  ignore (run_one h (read fast_base));
  Sim.Kernel.run h.kernel ~cycles:2;
  let wires = Rtl.Bus.wires bus in
  let transitions c = Sim.Signal.transitions (Rtl.Wires.ctrl wires c) in
  check_int "rdval pulses once" 2 (transitions Ec.Signals.Rdval);
  check_int "ardy pulses once" 2 (transitions Ec.Signals.Ardy);
  check_int "no write strobes" 0 (transitions Ec.Signals.Wdrdy);
  check_int "rdata holds value" 0xFFFFFFFF
    (Sim.Signal.current (Rtl.Wires.rdata wires))

(* The write data bus drives the pending beat during wait states. *)
let test_rtl_wdata_during_waits () =
  let h = build Rtl_l in
  let bus = match h.rtl_bus with Some b -> b | None -> assert false in
  let txn = write slow_base 0x12345678 in
  assert (h.port.Ec.Port.try_submit txn);
  (* Address phase takes 2 cycles; write waits follow.  After 4 cycles the
     data should be on the bus while WDRdy is still low. *)
  Sim.Kernel.run h.kernel ~cycles:4;
  let wires = Rtl.Bus.wires bus in
  check_int "wdata driven early" 0x12345678
    (Sim.Signal.current (Rtl.Wires.wdata wires));
  check_bool "write not yet done" true
    (Ec.Port.completed h.port txn.Ec.Txn.id = false);
  ignore
    (Sim.Kernel.run_until h.kernel ~max_cycles:100 (fun () ->
         Ec.Port.completed h.port txn.Ec.Txn.id))

let suite =
  [
    Alcotest.test_case "isolated latencies match timing rules" `Quick
      test_isolated_latencies;
    Alcotest.test_case "back-to-back throughput" `Quick test_back_to_back_throughput;
    Alcotest.test_case "read/write overlap by level" `Quick test_read_write_overlap;
    Alcotest.test_case "data integrity" `Quick test_data_integrity;
    Alcotest.test_case "burst data integrity" `Quick test_burst_data_integrity;
    Alcotest.test_case "bus errors" `Quick test_bus_errors;
    Alcotest.test_case "execute rights" `Quick test_execute_rights;
    Alcotest.test_case "outstanding limit" `Quick test_outstanding_limit;
    Alcotest.test_case "busy clears" `Quick test_busy_clears;
    Alcotest.test_case "pipelining gain" `Quick test_pipelining_gain;
    Alcotest.test_case "l1 queue structure" `Quick test_l1_queue_depths;
    Alcotest.test_case "rtl strobe wires" `Quick test_rtl_strobes;
    Alcotest.test_case "rtl wdata during waits" `Quick test_rtl_wdata_during_waits;
  ]
