(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (section 4), then measures the simulation kernels
   with Bechamel (one benchmark group per table/figure).

   Usage:
     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- tables     -- only the paper tables
     dune exec bench/main.exe -- micro      -- only the Bechamel runs
     dune exec bench/main.exe -- ablations  -- only the sensitivity studies *)

open Bechamel
open Toolkit

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Paper tables and figures (measured, not sampled).                   *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  section "Section 4.1 - Verification and Evaluation";
  let rows = Core.Experiments.run_accuracy () in
  print_endline (Core.Experiments.render_table1 rows);
  print_newline ();
  print_endline (Core.Experiments.render_table2 rows);
  section "Section 4.2 - Simulation Performance";
  let perf = Core.Experiments.run_performance () in
  print_endline (Core.Experiments.render_table3 perf);
  section "Figure 6 - Energy sampling semantics of the layer-2 interface";
  print_endline (Core.Experiments.render_figure6 (Core.Experiments.run_figure6 ()));
  section "Section 4.3 / Figure 7 - HW/SW interface exploration (JCVM)";
  let rows = Core.Exploration.run () in
  print_endline (Core.Exploration.render rows)

let print_ablations () =
  section "Ablations - sensitivity of the reproduction to modelling choices";
  print_endline (Core.Ablations.run_all ())

let print_extensions () =
  section "Extensions - cache/bus and bus-coding explorations";
  let sort = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:10) in
  print_endline
    (Core.Cache_study.render (Core.Cache_study.run ~name:"bubble-sort" sort));
  print_newline ();
  let exercise = Soc.Asm.assemble Core.Test_programs.bus_exercise in
  print_endline
    (Core.Coding_study.render
       (Core.Coding_study.run_program ~name:"bus-exercise" exercise))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: cost of one workload unit per model.     *)
(* ------------------------------------------------------------------ *)

(* Tables 1 and 2 are produced by running the verification sequences
   through each abstraction level. *)
let bench_accuracy =
  let run level () =
    ignore (Core.Runner.run_trace ~level ~mode:`Serial Core.Verify_seqs.combined)
  in
  Test.make_grouped ~name:"table1+2/accuracy-stimulus"
    [
      Test.make ~name:"gate-level" (Staged.stage (run Core.Level.Rtl));
      Test.make ~name:"tl-layer-1" (Staged.stage (run Core.Level.L1));
      Test.make ~name:"tl-layer-2" (Staged.stage (run Core.Level.L2));
    ]

(* Table 3: 256 transactions of the de-Bruijn mix per run. *)
let bench_performance =
  let trace = Core.Workloads.table3_trace ~n:256 in
  let run level estimate () =
    ignore (Core.Runner.run_trace ~level ~estimate ~mode:`Serial trace)
  in
  Test.make_grouped ~name:"table3/256-transactions"
    [
      Test.make ~name:"l1-with-estimation" (Staged.stage (run Core.Level.L1 true));
      Test.make ~name:"l1-without-estimation"
        (Staged.stage (run Core.Level.L1 false));
      Test.make ~name:"l2-with-estimation" (Staged.stage (run Core.Level.L2 true));
      Test.make ~name:"l2-without-estimation"
        (Staged.stage (run Core.Level.L2 false));
      Test.make ~name:"gate-level" (Staged.stage (run Core.Level.Rtl true));
    ]

(* Figure 6: cycle-accurate profiling cost. *)
let bench_figure6 =
  Test.make_grouped ~name:"figure6/profiled-run"
    [
      Test.make ~name:"l1-profiled"
        (Staged.stage (fun () -> ignore (Core.Experiments.run_figure6 ())));
    ]

(* Figure 7 / section 4.3: one applet on representative configurations. *)
let bench_exploration =
  let run name () =
    let config =
      List.find (fun c -> c.Jcvm.Configs.name = name) Jcvm.Configs.standard
    in
    ignore (Core.Exploration.run_one ~config Jcvm.Applets.fib)
  in
  Test.make_grouped ~name:"figure7/fib-applet"
    [
      Test.make ~name:"w16-dedicated" (Staged.stage (run "w16-dedicated"));
      Test.make ~name:"w32-packed" (Staged.stage (run "w32-packed"));
      Test.make ~name:"w16-cmd+data" (Staged.stage (run "w16-cmd+data"));
    ]

let run_micro () =
  section "Bechamel micro-benchmarks (wall time per workload unit)";
  let tests =
    [ bench_accuracy; bench_performance; bench_figure6; bench_exploration ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg instances group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
      |> List.sort compare
      |> List.iter (fun (name, ols) ->
             let ns =
               match Analyze.OLS.estimates ols with
               | Some [ v ] -> v
               | Some _ | None -> nan
             in
             Printf.printf "  %-55s %12.1f us/run\n" name (ns /. 1000.0)))
    tests

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "tables" -> print_tables ()
  | "micro" -> run_micro ()
  | "ablations" -> print_ablations ()
  | "extensions" -> print_extensions ()
  | _ ->
    print_tables ();
    run_micro ();
    print_ablations ();
    print_extensions ());
  print_newline ()
