(** Per-cycle energy profiles.

    A profile is the time series of energy dissipated in each clock cycle.
    Cycle-accurate profiles (layer 1 and below) are the basis for power
    analysis considerations; phase-lumped sampling (layer 2, the paper's
    Figure 6) is reconstructed by {!resample_lumped}. *)

type t

val create : unit -> t
val push : t -> float -> unit
(** Appends the energy of the next cycle. *)

val length : t -> int

val reset : t -> unit
(** Empties the profile; capacity is kept for reuse. *)

val get : t -> int -> float
val total : t -> float
val max_value : t -> float
val to_array : t -> float array

val window_sum : t -> lo:int -> hi:int -> float
(** Sum over cycles [lo..hi-1], clamped to the recorded range. *)

val lumped : t -> sample_points:int list -> (int * float) list
(** [lumped t ~sample_points] models the layer-2 power interface: the
    energy-since-last-call method sampled at the given cycles (paper
    Figure 6).  Returns [(cycle, lump)] pairs covering the profile; a
    final implicit sample at the profile end closes the series. *)

val to_csv_lines : t -> string list
(** ["cycle,energy_pj"] header plus one line per cycle. *)

val to_jsonl_lines : t -> string list
(** JSON-lines rendering: one [{"cycle":12,"pj":3.25}] object per cycle,
    no header.  Streams into log processors next to the Chrome trace
    export. *)

val sparkline : ?width:int -> t -> string
(** Coarse ASCII rendering for terminal reports. *)
