(** Per-signal energy characterization tables.

    The paper characterizes the bus with the Diesel gate-level power
    estimator and abstracts "the average energy per transition for each
    signal considered for our power estimation".  A table maps every EC
    interface wire to that average (picojoules); the layer-1 and layer-2
    energy models consume nothing else.

    Tables come from two sources: {!default} computes them from the wire
    capacitances of {!Ec.Signals} (top-down estimation before layout data
    exist), and {!derive} plays the role of the Diesel flow by averaging a
    reference-model measurement over a training workload. *)

type t

val name : t -> string

val default : t
(** [0.5 * C * Vdd^2] per wire from {!Ec.Signals.default_capacitance_ff}. *)

val make : name:string -> (Ec.Signals.id -> float) -> t

val derive : name:string -> energy_pj:float array -> transitions:int array -> t
(** [derive ~name ~energy_pj ~transitions] averages measured per-wire
    energy over measured per-wire transition counts (both indexed by
    {!Ec.Signals.index}).  Wires that never toggled in the training run
    fall back to the {!default} value.

    @raise Invalid_argument if the arrays are not of length
    {!Ec.Signals.count}. *)

val energy_per_transition : t -> Ec.Signals.id -> float
(** Average energy per transition of one wire, picojoules. *)

val scale : t -> float -> t
(** [scale t k] multiplies every entry (for sensitivity studies). *)

val avg_over : t -> Ec.Signals.id list -> float
(** Mean energy per transition over a wire group. *)

(** The per-class averages are precomputed at table construction; reading
    them is free. *)

val avg_addr_bit : t -> float
val avg_wdata_bit : t -> float
val avg_rdata_bit : t -> float
val avg_be_bit : t -> float
val avg_ctrl_bit : t -> float

val pp : Format.formatter -> t -> unit
(** Summary rendering (per-group averages). *)
