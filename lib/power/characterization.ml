type t = {
  name : string;
  per_signal : float array;
  (* Per-class average energies, precomputed at construction so the
     transaction-level models' [create] paths do a field read instead of
     rebuilding id lists and folding over them. *)
  avg_addr : float;
  avg_wdata : float;
  avg_rdata : float;
  avg_be : float;
  avg_ctrl : float;
}

let name t = t.name

(* Average over a contiguous index range, summing in ascending index
   order (the same order the old list-based fold used). *)
let range_avg per_signal first count =
  let sum = ref 0.0 in
  for i = first to first + count - 1 do
    sum := !sum +. per_signal.(i)
  done;
  !sum /. float_of_int count

let of_per_signal ~name per_signal =
  let open Ec.Signals in
  {
    name;
    per_signal;
    avg_addr = range_avg per_signal (index (Addr 0)) addr_wires;
    avg_wdata = range_avg per_signal (index (Wdata 0)) data_wires;
    avg_rdata = range_avg per_signal (index (Rdata 0)) data_wires;
    avg_be = range_avg per_signal (index (Be 0)) be_wires;
    avg_ctrl = range_avg per_signal (index (Ctrl Avalid)) ctrl_count;
  }

let make ~name f =
  of_per_signal ~name
    (Array.init Ec.Signals.count (fun i -> f (Ec.Signals.of_index i)))

let default =
  make ~name:"default(capacitance)" (fun id ->
      Units.pj_per_transition
        ~capacitance_ff:(Ec.Signals.default_capacitance_ff id)
        ~vdd:Ec.Signals.vdd)

let derive ~name ~energy_pj ~transitions =
  if Array.length energy_pj <> Ec.Signals.count
     || Array.length transitions <> Ec.Signals.count
  then invalid_arg "Power.Characterization.derive: bad array length";
  let per_signal =
    Array.init Ec.Signals.count (fun i ->
        if transitions.(i) = 0 then default.per_signal.(i)
        else energy_pj.(i) /. float_of_int transitions.(i))
  in
  of_per_signal ~name per_signal

let energy_per_transition t id = t.per_signal.(Ec.Signals.index id)

let scale t k =
  of_per_signal
    ~name:(Printf.sprintf "%s*%.3f" t.name k)
    (Array.map (fun e -> e *. k) t.per_signal)

let avg_over t ids =
  match ids with
  | [] -> 0.0
  | _ ->
    let sum = List.fold_left (fun acc id -> acc +. energy_per_transition t id) 0.0 ids in
    sum /. float_of_int (List.length ids)

let avg_addr_bit t = t.avg_addr
let avg_wdata_bit t = t.avg_wdata
let avg_rdata_bit t = t.avg_rdata
let avg_be_bit t = t.avg_be
let avg_ctrl_bit t = t.avg_ctrl

let pp ppf t =
  Format.fprintf ppf
    "@[<v>characterization %s:@ addr %.3f pJ/t  wdata %.3f  rdata %.3f  be %.3f@]"
    t.name t.avg_addr t.avg_wdata t.avg_rdata t.avg_be
