(** The power interface of the paper's bus models.

    A meter accumulates energy contributions during a cycle and exposes the
    two methods of the paper's power interface: the energy dissipated
    during the last clock cycle (layer 1 only, cycle-accurate profiling)
    and the energy dissipated since the last call (both layers).  A meter
    can optionally record the full per-cycle profile. *)

type t

val create : ?record_profile:bool -> unit -> t
(** Profile recording defaults to off (it costs simulation speed, which
    Table 3 measures). *)

val add : t -> float -> unit
(** Contributes energy (pJ) to the cycle being simulated. *)

val in_cycle_acc : t -> float array
(** The unboxed in-cycle accumulator; index 0 is the energy of the cycle
    being simulated.  Estimator hot loops add into it directly because a
    cross-module [add] boxes its float argument on every call (no
    flambda); everyone else should use {!add}. *)

val end_cycle : t -> unit
(** Closes the current cycle: commits its energy to the totals and to the
    profile when recording. *)

val total_pj : t -> float
val cycles : t -> int

val last_cycle_pj : t -> float
(** Energy of the most recently closed cycle. *)

val since_last_call_pj : t -> float
(** Energy since the previous invocation of this method (or since
    creation).  Matches the paper's sampling interface of Figure 6. *)

val profile : t -> Profile.t option
(** The recorded per-cycle profile, when enabled. *)

val reset : t -> unit
(** Back to the freshly created state: accumulators, cycle count, the
    since-last-call marker and the recorded profile (if any) all clear. *)
