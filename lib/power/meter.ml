(* The accumulators live in an unboxed float array rather than mutable
   float fields: in a record that also holds non-float fields, every store
   to a mutable float field allocates a fresh box, and [add] runs hundreds
   of times per simulated cycle on the estimation hot path. *)

let current_ = 0
let total_ = 1
let last_cycle_ = 2
let marker_ = 3

type t = {
  acc : float array;  (* current, total, last_cycle, marker *)
  mutable cycles : int;
  profile : Profile.t option;
}

let create ?(record_profile = false) () =
  {
    acc = Array.make 4 0.0;
    cycles = 0;
    profile = (if record_profile then Some (Profile.create ()) else None);
  }

let[@inline] add t e =
  Array.unsafe_set t.acc current_ (Array.unsafe_get t.acc current_ +. e)

(* Without flambda a cross-module [add] boxes its float argument on every
   call; estimator hot loops instead accumulate straight into the array. *)
let in_cycle_acc t = t.acc

let end_cycle t =
  let current = t.acc.(current_) in
  t.acc.(total_) <- t.acc.(total_) +. current;
  t.acc.(last_cycle_) <- current;
  (match t.profile with
  | Some p -> Profile.push p current
  | None -> ());
  t.acc.(current_) <- 0.0;
  t.cycles <- t.cycles + 1

let total_pj t = t.acc.(total_)
let cycles t = t.cycles
let last_cycle_pj t = t.acc.(last_cycle_)

let since_last_call_pj t =
  let delta = t.acc.(total_) -. t.acc.(marker_) in
  t.acc.(marker_) <- t.acc.(total_);
  delta

let profile t = t.profile

let reset t =
  Array.fill t.acc 0 4 0.0;
  t.cycles <- 0;
  match t.profile with
  | Some p -> Profile.reset p
  | None -> ()
