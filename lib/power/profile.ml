type t = { mutable data : float array; mutable len : int }

let create () = { data = Array.make 256 0.0; len = 0 }

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len
let reset t = t.len <- 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Power.Profile.get";
  t.data.(i)

let total t =
  let sum = ref 0.0 in
  for i = 0 to t.len - 1 do
    sum := !sum +. t.data.(i)
  done;
  !sum

let max_value t =
  let m = ref 0.0 in
  for i = 0 to t.len - 1 do
    if t.data.(i) > !m then m := t.data.(i)
  done;
  !m

let to_array t = Array.sub t.data 0 t.len

let window_sum t ~lo ~hi =
  let lo = max 0 lo and hi = min t.len hi in
  let sum = ref 0.0 in
  for i = lo to hi - 1 do
    sum := !sum +. t.data.(i)
  done;
  !sum

let lumped t ~sample_points =
  let points = List.sort_uniq compare (List.filter (fun p -> p > 0) sample_points) in
  let points =
    match List.rev points with
    | last :: _ when last >= t.len -> points
    | _ -> points @ [ t.len ]
  in
  let rec loop lo = function
    | [] -> []
    | p :: rest -> (p, window_sum t ~lo ~hi:p) :: loop p rest
  in
  loop 0 points

let to_csv_lines t =
  let line i = Printf.sprintf "%d,%.6f" i t.data.(i) in
  "cycle,energy_pj" :: List.init t.len line

let to_jsonl_lines t =
  let line i = Printf.sprintf {|{"cycle":%d,"pj":%.6f}|} i t.data.(i) in
  List.init t.len line

let sparkline ?(width = 64) t =
  if t.len = 0 then ""
  else begin
    let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
    let buckets = min width t.len in
    let per = float_of_int t.len /. float_of_int buckets in
    let bucket_avg b =
      let lo = int_of_float (float_of_int b *. per) in
      let hi = max (lo + 1) (int_of_float (float_of_int (b + 1) *. per)) in
      window_sum t ~lo ~hi /. float_of_int (hi - lo)
    in
    let values = Array.init buckets bucket_avg in
    let peak = Array.fold_left max 0.0 values in
    let glyph v =
      if peak = 0.0 then glyphs.(0)
      else glyphs.(min 7 (int_of_float (v /. peak *. 7.99)))
    in
    String.init buckets (fun b -> glyph values.(b))
  end
