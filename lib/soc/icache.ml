let line_bytes = 16
let words_per_line = line_bytes / 4

type fill = {
  outer : Ec.Txn.t;  (* the core's fetch *)
  inner_txn : Ec.Txn.t;  (* the line-fill burst *)
}

type t = {
  inner : Ec.Port.t;
  component : Power.Component.t;
  lines : int;
  tags : int array;
  valid : bool array;
  data : int array;  (* lines * words_per_line *)
  ids : Ec.Txn.Id_gen.gen;
  done_tbl : (int, Ec.Port.poll) Hashtbl.t;
  fills : (int, fill) Hashtbl.t;  (* outer id -> in-flight fill *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable busy_fill : bool;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~kernel
    ?(lines = 16)
    ?(component =
      Power.Component.params ~idle_pj_per_cycle:0.02 ~active_pj_per_cycle:0.3
        ~access_pj:0.9 ()) ~inner () =
  if not (is_power_of_two lines) then
    invalid_arg "Soc.Icache.create: lines must be a power of two";
  let t =
    {
      inner;
      component = Power.Component.create ~name:"icache" component;
      lines;
      tags = Array.make lines 0;
      valid = Array.make lines false;
      data = Array.make (lines * words_per_line) 0;
      ids = Ec.Txn.Id_gen.create ();
      done_tbl = Hashtbl.create 16;
      fills = Hashtbl.create 4;
      hits = 0;
      misses = 0;
      invalidations = 0;
      busy_fill = false;
    }
  in
  Sim.Kernel.on_rising kernel ~name:"icache-power" (fun _ ->
      Power.Component.tick t.component ~active:t.busy_fill);
  t

let line_index t addr = addr / line_bytes mod t.lines
let line_tag t addr = addr / line_bytes / t.lines
let line_base addr = addr land lnot (line_bytes - 1)

let lookup t addr =
  let idx = line_index t addr in
  if t.valid.(idx) && t.tags.(idx) = line_tag t addr then Some idx else None

let invalidate_on_write t addr =
  match lookup t addr with
  | Some idx ->
    t.valid.(idx) <- false;
    t.invalidations <- t.invalidations + 1
  | None -> ()

(* A plain single-word instruction fetch is cacheable. *)
let cacheable (txn : Ec.Txn.t) =
  txn.Ec.Txn.kind = Ec.Txn.Instruction
  && txn.Ec.Txn.dir = Ec.Txn.Read
  && txn.Ec.Txn.burst = 1
  && txn.Ec.Txn.width = Ec.Txn.W32

let try_submit t (txn : Ec.Txn.t) =
  if cacheable txn then begin
    Power.Component.access t.component;
    let addr = txn.Ec.Txn.addr in
    match lookup t addr with
    | Some idx ->
      t.hits <- t.hits + 1;
      let word = (addr land (line_bytes - 1)) / 4 in
      Ec.Txn.set_beat txn 0 t.data.((idx * words_per_line) + word);
      Hashtbl.replace t.done_tbl txn.Ec.Txn.id Ec.Port.Done;
      true
    | None -> begin
      let fill_txn =
        Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Instruction
          ~dir:Ec.Txn.Read ~width:Ec.Txn.W32 ~addr:(line_base addr)
          ~burst:words_per_line ()
      in
      if t.inner.Ec.Port.try_submit fill_txn then begin
        t.misses <- t.misses + 1;
        t.busy_fill <- true;
        Hashtbl.replace t.fills txn.Ec.Txn.id { outer = txn; inner_txn = fill_txn };
        true
      end
      else false
    end
  end
  else begin
    (match txn.Ec.Txn.dir with
    | Ec.Txn.Write ->
      for beat = 0 to txn.Ec.Txn.burst - 1 do
        invalidate_on_write t (Ec.Txn.beat_addr txn beat)
      done
    | Ec.Txn.Read -> ());
    t.inner.Ec.Port.try_submit txn
  end

let finish_fill t outer_id (fill : fill) outcome =
  (match outcome with
  | Ec.Port.Done ->
    let inner_txn = fill.inner_txn in
    let base = inner_txn.Ec.Txn.addr in
    let idx = line_index t base in
    for w = 0 to words_per_line - 1 do
      t.data.((idx * words_per_line) + w) <- inner_txn.Ec.Txn.data.(w)
    done;
    t.tags.(idx) <- line_tag t base;
    t.valid.(idx) <- true;
    let word = (fill.outer.Ec.Txn.addr land (line_bytes - 1)) / 4 in
    Ec.Txn.set_beat fill.outer 0 inner_txn.Ec.Txn.data.(word);
    Hashtbl.replace t.done_tbl outer_id Ec.Port.Done
  | Ec.Port.Failed -> Hashtbl.replace t.done_tbl outer_id Ec.Port.Failed
  | Ec.Port.Pending -> assert false);
  t.inner.Ec.Port.retire fill.inner_txn.Ec.Txn.id;
  Hashtbl.remove t.fills outer_id;
  t.busy_fill <- Hashtbl.length t.fills > 0

let poll t id =
  match Hashtbl.find_opt t.done_tbl id with
  | Some outcome -> outcome
  | None -> begin
    match Hashtbl.find_opt t.fills id with
    | Some fill -> begin
      match t.inner.Ec.Port.poll fill.inner_txn.Ec.Txn.id with
      | Ec.Port.Pending -> Ec.Port.Pending
      | (Ec.Port.Done | Ec.Port.Failed) as outcome ->
        finish_fill t id fill outcome;
        (match Hashtbl.find_opt t.done_tbl id with
        | Some o -> o
        | None -> assert false)
    end
    | None -> t.inner.Ec.Port.poll id
  end

let retire t id =
  if Hashtbl.mem t.done_tbl id then Hashtbl.remove t.done_tbl id
  else t.inner.Ec.Port.retire id

let port t =
  { Ec.Port.try_submit = try_submit t; poll = poll t; retire = retire t }

let component t = t.component
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations

let flush t =
  Array.fill t.valid 0 t.lines false

let reset t =
  Array.fill t.tags 0 t.lines 0;
  Array.fill t.valid 0 t.lines false;
  Array.fill t.data 0 (Array.length t.data) 0;
  Ec.Txn.Id_gen.reset t.ids;
  Hashtbl.reset t.done_tbl;
  Hashtbl.reset t.fills;
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0;
  t.busy_fill <- false;
  Power.Component.reset t.component
