(** Bus monitor: records the transactions a master issues, as a replayable
    trace.

    Wraps an {!Ec.Port.t}; accepted submissions are logged together with
    the idle gap (in cycles) since the previous acceptance.  This is the
    paper's trace flow: "We traced the bus transactions and used them as
    input test sequences for the transaction level models."

    Refused submissions (bus state [wait] at the master, i.e. the
    outstanding-category limit was hit) are counted too: {!rejected}
    reports every retried attempt, so the back-pressure observed while
    tracing can be reconciled with the rejected counts an instrumented
    replay ({!Obs.Metrics.rejected}) reports for the same traffic. *)

type t

val create : kernel:Sim.Kernel.t -> Ec.Port.t -> t
(** The kernel is only used as the clock for gap computation. *)

val port : t -> Ec.Port.t
(** The instrumented port to hand to the master. *)

val trace : t -> Ec.Trace.t
(** Everything recorded so far, in issue order. *)

val count : t -> int

val rejected : t -> int
(** Submissions the bus refused (each refusal is one retried attempt by
    the master on a later cycle). *)

val reset : t -> unit
(** Drops the recorded trace and counters so the monitor can record a new
    run. *)
