let lines = 16
let pending_off = 0x0
let enable_off = 0x4
let active_off = 0x8

type t = {
  cfg : Ec.Slave_cfg.t;
  component : Power.Component.t;
  mutable pending : int;
  mutable enable : int;
  mutable raised_total : int;
}

let create ?(component = Power.Component.params ~idle_pj_per_cycle:0.02
                ~active_pj_per_cycle:0.15 ~access_pj:1.0 ()) ?kernel cfg =
  let t =
    {
      cfg;
      component = Power.Component.create ~name:cfg.Ec.Slave_cfg.name component;
      pending = 0;
      enable = 0;
      raised_total = 0;
    }
  in
  (match kernel with
  | Some k ->
    Sim.Kernel.on_rising k ~name:(cfg.Ec.Slave_cfg.name ^ "-power") (fun _ ->
        Power.Component.tick t.component ~active:(t.pending land t.enable <> 0))
  | None -> ());
  t

let raise_line t n =
  if n < 0 || n >= lines then invalid_arg "Soc.Intc.raise_line";
  t.pending <- t.pending lor (1 lsl n);
  t.raised_total <- t.raised_total + 1

let asserted t = t.pending land t.enable <> 0

let read t ~addr ~width:_ =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = pending_off -> t.pending
  | off when off = enable_off -> t.enable
  | off when off = active_off -> t.pending land t.enable
  | _ -> 0

let write t ~addr ~width:_ ~value =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = pending_off -> t.pending <- t.pending land lnot value
  | off when off = enable_off -> t.enable <- value land ((1 lsl lines) - 1)
  | _ -> ()

let slave t = Ec.Slave.make ~cfg:t.cfg ~read:(read t) ~write:(write t)
let component t = t.component
let pending t = t.pending
let enabled t = t.enable
let raised_total t = t.raised_total

let reset t =
  t.pending <- 0;
  t.enable <- 0;
  t.raised_total <- 0;
  Power.Component.reset t.component
