(** Cryptographic coprocessor.

    The paper's motivation: "Algorithms with high computational effort,
    like cryptographic algorithms, are often supported by dedicated
    coprocessors", and the HW/SW interface to them is what the bus models
    evaluate.  This block implements a deliberately simple S-box cipher —
    each output byte is [sbox(input_byte xor key_byte)] — which is the
    textbook first-order DPA target used by the power-analysis study.

    Register map:
    - [0x00] KEY (write only; reads as 0);
    - [0x04] DIN: plaintext word;
    - [0x08] CTRL: bit0 start, bit1 masked-readout countermeasure;
    - [0x0C] STATUS: bit0 busy, bit1 done (cleared by a new start);
    - [0x10] DOUT: ciphertext word — with the countermeasure enabled it
      returns [ct xor m] for a fresh random [m] readable once at MASK;
    - [0x14] MASK: the mask paired with the last DOUT read.

    An operation takes [latency] cycles (default 16). *)

type t

val create :
  kernel:Sim.Kernel.t ->
  ?component:Power.Component.params ->
  ?latency:int ->
  ?seed:int ->
  ?done_irq:(unit -> unit) ->
  Ec.Slave_cfg.t ->
  t
(** [done_irq] fires when an operation completes. *)

val slave : t -> Ec.Slave.t
val component : t -> Power.Component.t

val sbox : int -> int
(** The AES S-box, byte in, byte out. *)

val reference : key:int -> int -> int
(** Pure-function reference of the cipher (32-bit words). *)

val busy : t -> bool
val operations : t -> int

val reset : t -> unit
(** Reseeds the mask generator with the creation seed and clears all
    registers, state and counters. *)

val block_trace : base:int -> blocks:int -> ?latency:int -> unit -> Ec.Trace.t
(** The register rhythm of driving the coprocessor for [blocks]
    operations, as a replayable trace: KEY once, then per block DIN,
    CTRL-start, a [latency]-cycle gap (default 16, the engine default),
    STATUS poll and DOUT read — all single-word register accesses with
    breathing room, the opposite traffic shape to
    {!Dma.descriptor_trace}.  Use it to model the driving CPU's bus
    footprint on an {!Ec.Fabric} port. *)
