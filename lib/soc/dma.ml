let src_off = 0x00
let dst_off = 0x04
let len_off = 0x08
let ctrl_off = 0x0C
let status_off = 0x10

type state =
  | Idle
  | Issue_read of Ec.Txn.t
  | Reading of Ec.Txn.t
  | Issue_write of Ec.Txn.t
  | Writing of Ec.Txn.t * int  (* chunk words *)

type t = {
  cfg : Ec.Slave_cfg.t;
  component : Power.Component.t;
  done_irq : unit -> unit;
  ids : Ec.Txn.Id_gen.gen;
  mutable port : Ec.Port.t option;
  mutable src : int;
  mutable dst : int;
  mutable len : int;
  mutable use_burst : bool;
  mutable remaining : int;
  mutable cur_src : int;
  mutable cur_dst : int;
  mutable state : state;
  mutable active : bool;
  mutable done_ : bool;
  mutable error : bool;
  mutable words_copied : int;
  mutable transfers_done : int;
}

let busy t = t.active
let words_copied t = t.words_copied
let transfers_done t = t.transfers_done

let finish t ~error =
  t.active <- false;
  t.state <- Idle;
  t.error <- error;
  if not error then begin
    t.done_ <- true;
    t.transfers_done <- t.transfers_done + 1;
    t.done_irq ()
  end

let chunk_words t = if t.use_burst && t.remaining >= 4 then 4 else 1

let read_txn t chunk =
  Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data
    ~dir:Ec.Txn.Read ~width:Ec.Txn.W32 ~addr:t.cur_src ~burst:chunk ()

let write_txn t chunk data =
  Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data
    ~dir:Ec.Txn.Write ~width:Ec.Txn.W32 ~addr:t.cur_dst ~burst:chunk ~data ()

let step t _kernel =
  Power.Component.tick t.component ~active:t.active;
  match t.port with
  | None -> if t.active then finish t ~error:true
  | Some port -> begin
    match t.state with
    | Idle ->
      if t.active then begin
        if t.remaining = 0 then finish t ~error:false
        else begin
          match read_txn t (chunk_words t) with
          | txn -> t.state <- Issue_read txn
          | exception Invalid_argument _ -> finish t ~error:true
        end
      end
    | Issue_read txn ->
      if port.Ec.Port.try_submit txn then t.state <- Reading txn
    | Reading txn -> begin
      match Ec.Port.take port txn.Ec.Txn.id with
      | Ec.Port.Pending -> ()
      | Ec.Port.Failed -> finish t ~error:true
      | Ec.Port.Done -> begin
        let chunk = txn.Ec.Txn.burst in
        match write_txn t chunk (Array.copy txn.Ec.Txn.data) with
        | wtxn -> t.state <- Issue_write wtxn
        | exception Invalid_argument _ -> finish t ~error:true
      end
    end
    | Issue_write txn ->
      if port.Ec.Port.try_submit txn then
        t.state <- Writing (txn, txn.Ec.Txn.burst)
    | Writing (txn, chunk) -> begin
      match Ec.Port.take port txn.Ec.Txn.id with
      | Ec.Port.Pending -> ()
      | Ec.Port.Failed -> finish t ~error:true
      | Ec.Port.Done ->
        t.remaining <- t.remaining - chunk;
        t.cur_src <- t.cur_src + (4 * chunk);
        t.cur_dst <- t.cur_dst + (4 * chunk);
        t.words_copied <- t.words_copied + chunk;
        t.state <- Idle
    end
  end

let create ~kernel
    ?(component =
      Power.Component.params ~idle_pj_per_cycle:0.04 ~active_pj_per_cycle:0.9
        ~access_pj:1.2 ()) ?(done_irq = fun () -> ()) cfg =
  let t =
    {
      cfg;
      component = Power.Component.create ~name:cfg.Ec.Slave_cfg.name component;
      done_irq;
      ids = Ec.Txn.Id_gen.create ();
      port = None;
      src = 0;
      dst = 0;
      len = 0;
      use_burst = true;
      remaining = 0;
      cur_src = 0;
      cur_dst = 0;
      state = Idle;
      active = false;
      done_ = false;
      error = false;
      words_copied = 0;
      transfers_done = 0;
    }
  in
  Sim.Kernel.on_rising kernel ~name:(cfg.Ec.Slave_cfg.name ^ "-engine") (step t);
  t

let connect t port = t.port <- Some port

let read t ~addr ~width:_ =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = src_off -> t.src
  | off when off = dst_off -> t.dst
  | off when off = len_off -> t.len
  | off when off = ctrl_off -> if t.use_burst then 2 else 0
  | off when off = status_off ->
    (if t.active then 1 else 0)
    lor (if t.done_ then 2 else 0)
    lor if t.error then 4 else 0
  | _ -> 0

let write t ~addr ~width:_ ~value =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = src_off -> t.src <- value
  | off when off = dst_off -> t.dst <- value
  | off when off = len_off -> t.len <- value
  | off when off = ctrl_off ->
    t.use_burst <- value land 2 = 2;
    if value land 1 = 1 && not t.active then begin
      t.remaining <- t.len;
      t.cur_src <- t.src;
      t.cur_dst <- t.dst;
      t.active <- true;
      t.done_ <- false;
      t.error <- false;
      t.state <- Idle
    end
  | _ -> ()

let slave t = Ec.Slave.make ~cfg:t.cfg ~read:(read t) ~write:(write t)
let component t = t.component

(* The bus connection belongs to the session wiring, so [reset] keeps
   [port]. *)
let reset t =
  Ec.Txn.Id_gen.reset t.ids;
  t.src <- 0;
  t.dst <- 0;
  t.len <- 0;
  t.use_burst <- true;
  t.remaining <- 0;
  t.cur_src <- 0;
  t.cur_dst <- 0;
  t.state <- Idle;
  t.active <- false;
  t.done_ <- false;
  t.error <- false;
  t.words_copied <- 0;
  t.transfers_done <- 0;
  Power.Component.reset t.component

let descriptor_trace ~src ~dst ~words ?(burst = true) () =
  if words < 0 then invalid_arg "Soc.Dma.descriptor_trace: words < 0";
  if src mod 4 <> 0 || dst mod 4 <> 0 then
    invalid_arg "Soc.Dma.descriptor_trace: unaligned descriptor";
  let rec go off left acc =
    if left = 0 then List.rev acc
    else if burst && left >= 4 then
      let rd = Ec.Txn.burst_read ~id:0 (src + off) in
      let wr =
        Ec.Txn.burst_write ~id:0 (dst + off)
          ~values:(Array.make 4 0xD0D0_D0D0)
      in
      go (off + 16) (left - 4)
        (Ec.Trace.item ~gap:0 wr :: Ec.Trace.item ~gap:0 rd :: acc)
    else
      let rd = Ec.Txn.single_read ~id:0 (src + off) in
      let wr = Ec.Txn.single_write ~id:0 (dst + off) ~value:0xD0D0_D0D0 in
      go (off + 4) (left - 1)
        (Ec.Trace.item ~gap:0 wr :: Ec.Trace.item ~gap:0 rd :: acc)
  in
  go 0 words []
