(** DMA engine: a second bus master.

    Offloads memory-to-memory copies from the core — the classic HW/SW
    trade-off the paper's interface-evaluation methodology is meant to
    judge (do it in software over the bus, or add hardware that uses the
    bus better, e.g. with bursts).

    Slave registers (word offsets from base):
    - [0x00] SRC: source byte address;
    - [0x04] DST: destination byte address;
    - [0x08] LEN: words to copy;
    - [0x0C] CTRL: bit0 start, bit1 use 4-word bursts;
    - [0x10] STATUS: bit0 busy, bit1 done (cleared by a new start).

    The engine issues its transfers through its own master port on the
    same bus, honouring the bus's outstanding limits; with bursts enabled
    it moves four words per transaction pair.  [done_irq] fires on
    completion. *)

type t

val create :
  kernel:Sim.Kernel.t ->
  ?component:Power.Component.params ->
  ?done_irq:(unit -> unit) ->
  Ec.Slave_cfg.t ->
  t

val connect : t -> Ec.Port.t -> unit
(** [connect t port] attaches the engine's master side to a bus port.
    Must be called once before any transfer starts; transfers started
    unconnected fail with the engine's error flag. *)

val slave : t -> Ec.Slave.t
val component : t -> Power.Component.t

val busy : t -> bool
val words_copied : t -> int
val transfers_done : t -> int

val reset : t -> unit
(** Registers, engine state, id supply and counters back to the freshly
    created state.  The bus connection made by {!connect} is kept: it is
    part of the session wiring, not of the run state. *)

val descriptor_trace :
  src:int -> dst:int -> words:int -> ?burst:bool -> unit -> Ec.Trace.t
(** The bus traffic one copy descriptor generates, as a replayable trace:
    read-from-[src] / write-to-[dst] pairs, four-word bursts when [burst]
    (the default) with single-word transactions for the tail.  This is
    the DMA engine as a {e trace-driven requester}: feed it to a
    {!Trace_master} on an {!Ec.Fabric} port to model the engine
    contending with other masters without instantiating the register
    machinery. *)
