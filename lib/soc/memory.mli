(** Memory slaves: ROM, scratchpad RAM, EEPROM and FLASH.

    A byte-addressed backing store behind an EC slave interface,
    little-endian within a word, with an attached component energy model
    (per-access plus idle/active cycle energies).  Wait states and access
    rights live in the slave configuration and are enforced by the bus
    models, not here. *)

type t

val create :
  ?kernel:Sim.Kernel.t ->
  ?component:Power.Component.params ->
  Ec.Slave_cfg.t ->
  t
(** Passing [kernel] registers the per-cycle component accounting tick
    (a cycle is active when the memory was accessed in it). *)

val slave : t -> Ec.Slave.t
val cfg : t -> Ec.Slave_cfg.t
val component : t -> Power.Component.t

(** Backdoor access (no bus traffic, no energy), for loading images and
    checking results in tests. *)

val poke8 : t -> addr:int -> int -> unit
val peek8 : t -> addr:int -> int
val poke32 : t -> addr:int -> int -> unit
val peek32 : t -> addr:int -> int
val copy_contents : src:t -> dst:t -> unit
(** Whole-array backdoor copy between same-size memories — the
    architectural state handoff of a mixed-level switch point.
    @raise Invalid_argument on a size mismatch. *)

val load_words : t -> addr:int -> int array -> unit
val load_program : t -> Asm.program -> unit
(** @raise Invalid_argument if the image does not fit the mapped range. *)

val reads : t -> int
val writes : t -> int

val reset : t -> unit
(** Restores the creation state: contents zeroed (only the written byte
    range is re-filled, tracked by dirty watermarks), access counters and
    the power component cleared.  Reload any image afterwards. *)
