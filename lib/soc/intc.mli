(** Interrupt controller ("Interrupt system" of Figure 1).

    Sixteen level lines.  Peripherals raise a line through {!raise_line};
    software observes and acknowledges over the bus:
    - [0x0] PENDING: read the pending lines; writing 1-bits clears them;
    - [0x4] ENABLE: per-line interrupt enable mask;
    - [0x8] ACTIVE: read-only, [pending land enable].

    The CPU samples {!asserted} directly (the dedicated interrupt request
    wire, not a bus access). *)

type t

val lines : int  (** 16 *)

val create :
  ?component:Power.Component.params -> ?kernel:Sim.Kernel.t -> Ec.Slave_cfg.t -> t

val slave : t -> Ec.Slave.t
val component : t -> Power.Component.t

val raise_line : t -> int -> unit
(** Peripheral side: latch line [n] pending.
    @raise Invalid_argument for a line outside [0, lines). *)

val asserted : t -> bool
(** True while any enabled line is pending (the CPU's irq input). *)

val pending : t -> int
val enabled : t -> int
val raised_total : t -> int

val reset : t -> unit
(** Pending/enable bits and counters back to the freshly created state. *)
