(** In-order blocking CPU master (stand-in for the MIPS 4Ksc core).

    Runs {!Isa} programs by fetching every instruction over the bus
    (instruction reads) and issuing loads/stores as data transactions,
    through the abstract {!Ec.Port.t} — so the same core drives the RTL,
    layer-1 and layer-2 bus models.  The core is not pipelined, but it
    issues the next instruction fetch in the same cycle it retires the
    previous transaction, producing back-to-back bus traffic on fast
    slaves.

    The core registers its process on the rising clock edge.  It stops on
    [halt], on a bus error, on a misaligned access or on an illegal
    opcode; the cause is reported by {!fault}. *)

type fault =
  | Bus_error of int  (** faulting address *)
  | Misaligned of int
  | Illegal_instruction of int  (** instruction word *)

type t

val create :
  kernel:Sim.Kernel.t ->
  port:Ec.Port.t ->
  ?pc:int ->
  ?store_buffer:bool ->
  ?irq:(unit -> bool) ->
  ?irq_vector:int ->
  unit ->
  t
(** [store_buffer] (default true) posts stores through a one-entry write
    buffer so they overlap the following instruction fetches, as on the
    real core; loads still drain the buffer first (conservative
    load-after-store ordering).  With [store_buffer:false] every memory
    operation blocks the core.

    [irq] is sampled at instruction boundaries; when it holds, interrupts
    are enabled ([ei]) and no interrupt is already in service, the core
    saves the pc to EPC and jumps to [irq_vector] (default 0x40).  The
    handler returns with [eret]. *)

val halted : t -> bool
(** True after [halt] or a fault. *)

val fault : t -> fault option
val pc : t -> int
val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
(** Backdoor register access ([r0] stays 0). *)

val instructions : t -> int
(** Instructions retired. *)

val loads : t -> int
val stores : t -> int

val interrupts_taken : t -> int
val in_interrupt : t -> bool
val epc : t -> int

val run_to_halt : t -> kernel:Sim.Kernel.t -> ?max_cycles:int -> unit -> int
(** Steps the kernel until the core halts; returns the cycles consumed.
    @raise Failure if [max_cycles] (default 2_000_000) elapse first. *)

val reset : t -> pc:int -> unit
(** Architectural state (registers, store buffer, interrupt state, fault,
    counters, id supply) back to the freshly created state, with the
    program counter pointed at [pc].  The port, interrupt wiring and
    kernel registration are kept for session reuse. *)
