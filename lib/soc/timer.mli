(** Dual 16-bit timer block (T0/T1 of Figure 1).

    Each channel occupies 16 bytes ([channel * 0x10] from the base):
    - [0x0] COUNT: current value (writable, to shorten test periods);
    - [0x4] RELOAD: value loaded on overflow in auto-reload mode;
    - [0x8] CTRL: bit0 enable, bit1 auto-reload;
    - [0xC] FLAGS: bit0 overflow, write 1 to clear.

    Enabled channels count up each clock cycle; on wrapping past 0xFFFF
    the overflow flag is set and, in auto-reload mode, COUNT restarts from
    RELOAD. *)

type t

val channels : int  (** 2 *)

val create :
  kernel:Sim.Kernel.t ->
  ?component:Power.Component.params ->
  ?irq:(int -> unit) ->
  Ec.Slave_cfg.t ->
  t
(** [irq ch] fires on every overflow of channel [ch]. *)

val slave : t -> Ec.Slave.t
val component : t -> Power.Component.t

val count : t -> int -> int
(** Backdoor: current COUNT of a channel. *)

val overflowed : t -> int -> bool

val reset : t -> unit
(** Both channels and the power component back to the freshly created
    state. *)
