let data_off = 0x0
let status_off = 0x4
let ctrl_off = 0x8
let baud_off = 0xC
let tx_fifo_capacity = 16

type t = {
  cfg : Ec.Slave_cfg.t;
  component : Power.Component.t;
  rx_irq : unit -> unit;
  tx_fifo : int Queue.t;
  rx_fifo : int Queue.t;
  out : Buffer.t;
  mutable enabled : bool;
  mutable baud : int;
  mutable shifting : int option;  (* byte on the wire *)
  mutable bit_cycles_left : int;
}

let create ~kernel ?(component = Power.Component.Presets.uart)
    ?(rx_irq = fun () -> ()) cfg =
  let t =
    {
      cfg;
      component = Power.Component.create ~name:cfg.Ec.Slave_cfg.name component;
      rx_irq;
      tx_fifo = Queue.create ();
      rx_fifo = Queue.create ();
      out = Buffer.create 64;
      enabled = true;
      baud = 16;
      shifting = None;
      bit_cycles_left = 0;
    }
  in
  let tick _ =
    (match t.shifting with
    | Some byte ->
      t.bit_cycles_left <- t.bit_cycles_left - 1;
      if t.bit_cycles_left <= 0 then begin
        Buffer.add_char t.out (Char.chr (byte land 0xFF));
        t.shifting <- None
      end
    | None ->
      if t.enabled && not (Queue.is_empty t.tx_fifo) then begin
        t.shifting <- Some (Queue.pop t.tx_fifo);
        t.bit_cycles_left <- 10 * t.baud
      end);
    Power.Component.tick t.component ~active:(t.shifting <> None)
  in
  Sim.Kernel.on_rising kernel ~name:(cfg.Ec.Slave_cfg.name ^ "-tick") tick;
  t

let status t =
  (if t.shifting <> None then 1 else 0)
  lor (if not (Queue.is_empty t.rx_fifo) then 2 else 0)
  lor if Queue.length t.tx_fifo >= tx_fifo_capacity then 4 else 0

let read t ~addr ~width:_ =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = data_off ->
    if Queue.is_empty t.rx_fifo then 0 else Queue.pop t.rx_fifo
  | off when off = status_off -> status t
  | off when off = ctrl_off -> if t.enabled then 1 else 0
  | off when off = baud_off -> t.baud
  | _ -> 0

let write t ~addr ~width:_ ~value =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = data_off ->
    if Queue.length t.tx_fifo < tx_fifo_capacity then
      Queue.push (value land 0xFF) t.tx_fifo
  | off when off = ctrl_off -> t.enabled <- value land 1 = 1
  | off when off = baud_off -> t.baud <- max 1 (value land 0xFFFF)
  | _ -> ()

let slave t = Ec.Slave.make ~cfg:t.cfg ~read:(read t) ~write:(write t)
let component t = t.component
let inject_rx t byte =
  Queue.push (byte land 0xFF) t.rx_fifo;
  t.rx_irq ()
let transmitted t = Buffer.contents t.out
let tx_busy t = t.shifting <> None
let rx_pending t = Queue.length t.rx_fifo

let reset t =
  Queue.clear t.tx_fifo;
  Queue.clear t.rx_fifo;
  Buffer.clear t.out;
  t.enabled <- true;
  t.baud <- 16;
  t.shifting <- None;
  t.bit_cycles_left <- 0;
  Power.Component.reset t.component
