(** Direct-mapped instruction cache (the I-cache of Figure 1).

    Sits between the core and the bus as a port wrapper: instruction
    fetches that hit are answered from the cache in one cycle with no bus
    traffic; misses fetch the whole 16-byte line with one burst
    transaction.  Data accesses pass through untouched, except that
    writes invalidate a matching line (conservative self-modifying-code
    handling).

    This is the cache/bus interplay of Givargis-Vahid's parametrized
    cache-and-bus exploration (the paper's reference [1]): growing the
    cache trades component energy for bus energy; {!Core.Cache_study}
    quantifies the trade-off. *)

type t

val line_bytes : int
(** 16: one 4-word burst per fill. *)

val create :
  kernel:Sim.Kernel.t ->
  ?lines:int ->
  ?component:Power.Component.params ->
  inner:Ec.Port.t ->
  unit ->
  t
(** [lines] (default 16) must be a power of two.  The default component
    model charges a small energy per lookup and per line fill.

    @raise Invalid_argument on a non-power-of-two line count. *)

val port : t -> Ec.Port.t
(** The port to hand to the core. *)

val component : t -> Power.Component.t
val hits : t -> int
val misses : t -> int
val invalidations : t -> int

val flush : t -> unit
(** Invalidates every line. *)

val reset : t -> unit
(** Beyond {!flush}: also clears tags/data, in-flight fills, the id
    supply, the hit/miss/invalidation counters and the power component —
    the freshly created state, keeping inner port and kernel
    registration. *)
