(** The target smart-card platform of the paper's Figure 1.

    Instantiates every slave of the architecture — 256 KiB program ROM,
    8 KiB scratchpad RAM, 32 KiB EEPROM, 64 KiB FLASH, UART, dual 16-bit
    timer, true random number generator and the crypto coprocessor — with
    their memory map, wait states, access rights and component energy
    models.  The bus model (RTL, layer 1 or layer 2) is attached
    separately; see {!Core.System}. *)

(** Byte addresses of the memory map. *)
module Map : sig
  val rom_base : int
  val rom_size : int  (** 256 KiB, read/execute *)

  val ram_base : int
  val ram_size : int  (** 8 KiB scratchpad, read/write/execute *)

  val eeprom_base : int
  val eeprom_size : int  (** 32 KiB, read/write, slow writes *)

  val flash_base : int
  val flash_size : int  (** 64 KiB, read/execute *)

  val uart_base : int
  val timer_base : int
  val trng_base : int
  val crypto_base : int

  val sfr_base : int
  (** Free special-function-register window used by the Java Card VM
      refinement experiments. *)

  val dma_base : int
  val intc_base : int
end

(** Interrupt line assignment of the platform. *)

val timer0_irq_line : int
val timer1_irq_line : int
val uart_rx_irq_line : int
val crypto_irq_line : int
val dma_irq_line : int

type t

val create :
  kernel:Sim.Kernel.t ->
  ?seed:int ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  unit ->
  t
(** [seed] derives the TRNG and crypto-mask random streams (vary it when
    simulating many card instances); [extra_slaves] join the address map
    (e.g. the JCVM stack SFRs).

    [peripheral_clock] (default [`Running]) picks the clock tree the
    peripherals' per-cycle processes run on.  [`Gated] registers them on
    a private kernel that never steps — the power-aware card's clock
    gating: timers do not count, the UART does not shift, leakage meters
    freeze — while every slave still answers bus transactions normally.
    Bus-only workloads (the adaptive exploration sweeps) gate the
    peripherals to stop paying their per-cycle simulation cost. *)

val rom : t -> Memory.t
val ram : t -> Memory.t
val eeprom : t -> Memory.t
val flash : t -> Memory.t
val uart : t -> Uart.t
val timer : t -> Timer.t
val trng : t -> Trng.t
val crypto : t -> Crypto.t
val intc : t -> Intc.t
val dma : t -> Dma.t

val connect_bus : t -> Ec.Port.t -> unit
(** Attaches the bus-mastering peripherals (the DMA engine) to the bus.
    {!Core.System.create} calls this after the bus model exists; DMA
    transfers started before fail with the engine's error flag. *)

val irq_asserted : t -> bool
(** The interrupt request wire towards the CPU ({!Intc.asserted}). *)

val decoder : t -> Ec.Decoder.t
(** Decoder over all slaves, ready for any bus model. *)

val components : t -> Power.Component.t list
val components_energy_pj : t -> float
(** Energy of all peripheral component models (the extension announced in
    the paper's conclusion), excluding the bus itself. *)

val load_program : t -> Asm.program -> unit
(** Loads an image into ROM, RAM, EEPROM or FLASH depending on origin.
    @raise Invalid_argument when the origin falls in no memory. *)

val reset : t -> unit
(** Every memory and peripheral back to the freshly created state (the
    TRNG and crypto mask streams replay their creation seeds; the DMA
    keeps its bus connection).  Extra slaves passed to {!create} are the
    caller's to reset. *)
