module Map = struct
  let rom_base = 0x000_0000
  let rom_size = 256 * 1024
  let ram_base = 0x010_0000
  let ram_size = 8 * 1024
  let eeprom_base = 0x020_0000
  let eeprom_size = 32 * 1024
  let flash_base = 0x030_0000
  let flash_size = 64 * 1024
  let uart_base = 0x0F0_0000
  let timer_base = 0x0F0_1000
  let trng_base = 0x0F0_2000
  let crypto_base = 0x0F0_3000
  let sfr_base = 0x0F0_4000
  let dma_base = 0x0F0_7000
  let intc_base = 0x0F0_8000
end

(* Interrupt line assignment. *)
let timer0_irq_line = 0
let timer1_irq_line = 1
let uart_rx_irq_line = 2
let crypto_irq_line = 3
let dma_irq_line = 4

type t = {
  rom : Memory.t;
  ram : Memory.t;
  eeprom : Memory.t;
  flash : Memory.t;
  uart : Uart.t;
  timer : Timer.t;
  trng : Trng.t;
  crypto : Crypto.t;
  intc : Intc.t;
  dma : Dma.t;
  decoder : Ec.Decoder.t;
}

let create ~kernel ?(seed = 0x0C0FFEE) ?(extra_slaves = [])
    ?(peripheral_clock = `Running) () =
  (* Gating registers every peripheral's per-cycle process on a private
     kernel that is never stepped: zero simulation cost, frozen
     timers/leakage, bus-facing behaviour unchanged. *)
  let kernel =
    match peripheral_clock with
    | `Running -> kernel
    | `Gated -> Sim.Kernel.create ()
  in
  let cfg = Ec.Slave_cfg.make in
  let intc =
    Intc.create ~kernel (cfg ~name:"intc" ~base:Map.intc_base ~size:0x10 ())
  in
  let rom =
    Memory.create ~kernel ~component:Power.Component.Presets.rom
      (cfg ~name:"rom" ~base:Map.rom_base ~size:Map.rom_size ~writable:false
         ~executable:true ())
  in
  let ram =
    Memory.create ~kernel ~component:Power.Component.Presets.sram
      (cfg ~name:"ram" ~base:Map.ram_base ~size:Map.ram_size ~executable:true ())
  in
  let eeprom =
    Memory.create ~kernel ~component:Power.Component.Presets.eeprom
      (cfg ~name:"eeprom" ~base:Map.eeprom_base ~size:Map.eeprom_size
         ~addr_wait:1 ~read_wait:2 ~write_wait:4 ())
  in
  let flash =
    Memory.create ~kernel ~component:Power.Component.Presets.flash
      (cfg ~name:"flash" ~base:Map.flash_base ~size:Map.flash_size ~addr_wait:1
         ~read_wait:1 ~write_wait:3 ~writable:false ~executable:true ())
  in
  let uart =
    Uart.create ~kernel
      ~rx_irq:(fun () -> Intc.raise_line intc uart_rx_irq_line)
      (cfg ~name:"uart" ~base:Map.uart_base ~size:0x20 ~read_wait:1
         ~write_wait:1 ())
  in
  let timer =
    Timer.create ~kernel
      ~irq:(fun ch ->
        Intc.raise_line intc
          (if ch = 0 then timer0_irq_line else timer1_irq_line))
      (cfg ~name:"timer" ~base:Map.timer_base ~size:0x20 ())
  in
  let trng =
    Trng.create ~kernel ~seed:(seed lxor 0x7126)
      (cfg ~name:"trng" ~base:Map.trng_base ~size:0x10 ~read_wait:2
         ~writable:true ())
  in
  let crypto =
    Crypto.create ~kernel ~seed:(seed lxor 0xC217)
      ~done_irq:(fun () -> Intc.raise_line intc crypto_irq_line)
      (cfg ~name:"crypto" ~base:Map.crypto_base ~size:0x40 ())
  in
  let dma =
    Dma.create ~kernel
      ~done_irq:(fun () -> Intc.raise_line intc dma_irq_line)
      (cfg ~name:"dma" ~base:Map.dma_base ~size:0x20 ())
  in
  let slaves =
    [
      Memory.slave rom; Memory.slave ram; Memory.slave eeprom;
      Memory.slave flash; Uart.slave uart; Timer.slave timer; Trng.slave trng;
      Crypto.slave crypto; Intc.slave intc; Dma.slave dma;
    ]
    @ extra_slaves
  in
  { rom; ram; eeprom; flash; uart; timer; trng; crypto; intc; dma;
    decoder = Ec.Decoder.create slaves }

let rom t = t.rom
let ram t = t.ram
let eeprom t = t.eeprom
let flash t = t.flash
let uart t = t.uart
let timer t = t.timer
let trng t = t.trng
let crypto t = t.crypto
let intc t = t.intc
let dma t = t.dma
let connect_bus t port = Dma.connect t.dma port
let irq_asserted t = Intc.asserted t.intc
let decoder t = t.decoder

let components t =
  [
    Memory.component t.rom; Memory.component t.ram; Memory.component t.eeprom;
    Memory.component t.flash; Uart.component t.uart; Timer.component t.timer;
    Trng.component t.trng; Crypto.component t.crypto; Intc.component t.intc;
    Dma.component t.dma;
  ]

let components_energy_pj t =
  List.fold_left (fun acc c -> acc +. Power.Component.energy_pj c) 0.0
    (components t)

let load_program t (p : Asm.program) =
  let origin = p.Asm.origin in
  let target =
    if origin >= Map.rom_base && origin < Map.rom_base + Map.rom_size then
      Some t.rom
    else if origin >= Map.ram_base && origin < Map.ram_base + Map.ram_size then
      Some t.ram
    else if
      origin >= Map.eeprom_base && origin < Map.eeprom_base + Map.eeprom_size
    then Some t.eeprom
    else if
      origin >= Map.flash_base && origin < Map.flash_base + Map.flash_size
    then Some t.flash
    else None
  in
  match target with
  | Some memory -> Memory.load_program memory p
  | None ->
    invalid_arg
      (Printf.sprintf "Soc.Platform.load_program: origin %#x not in a memory"
         origin)

let reset t =
  Memory.reset t.rom;
  Memory.reset t.ram;
  Memory.reset t.eeprom;
  Memory.reset t.flash;
  Uart.reset t.uart;
  Timer.reset t.timer;
  Trng.reset t.trng;
  Crypto.reset t.crypto;
  Intc.reset t.intc;
  Dma.reset t.dma
