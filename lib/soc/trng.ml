let data_off = 0x0
let status_off = 0x4
let ctrl_off = 0x8

type t = {
  cfg : Ec.Slave_cfg.t;
  component : Power.Component.t;
  rng : Sim.Rng.t;
  seed : int;  (* creation seed, replayed by [reset] *)
  refill_cycles : int;
  mutable current : int;
  mutable refill_left : int;
  mutable enabled : bool;
  mutable delivered : int;
}

let create ~kernel ?(component = Power.Component.Presets.trng) ?(seed = 0x5EED)
    ?(refill_cycles = 8) cfg =
  let rng = Sim.Rng.create ~seed in
  let t =
    {
      cfg;
      component = Power.Component.create ~name:cfg.Ec.Slave_cfg.name component;
      rng;
      seed;
      refill_cycles;
      current = Sim.Rng.bits rng 32;
      refill_left = 0;
      enabled = true;
      delivered = 0;
    }
  in
  let tick _ =
    if t.enabled && t.refill_left > 0 then begin
      t.refill_left <- t.refill_left - 1;
      if t.refill_left = 0 then t.current <- Sim.Rng.bits t.rng 32
    end;
    Power.Component.tick t.component ~active:(t.enabled && t.refill_left > 0)
  in
  Sim.Kernel.on_rising kernel ~name:(cfg.Ec.Slave_cfg.name ^ "-tick") tick;
  t

let ready t = t.refill_left = 0

let read t ~addr ~width:_ =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = data_off ->
    let v = t.current in
    if ready t && t.enabled then begin
      t.refill_left <- t.refill_cycles;
      t.delivered <- t.delivered + 1
    end;
    v
  | off when off = status_off -> if ready t then 1 else 0
  | off when off = ctrl_off -> if t.enabled then 1 else 0
  | _ -> 0

let write t ~addr ~width:_ ~value =
  Power.Component.access t.component;
  match addr - t.cfg.Ec.Slave_cfg.base with
  | off when off = ctrl_off -> t.enabled <- value land 1 = 1
  | _ -> ()

let slave t = Ec.Slave.make ~cfg:t.cfg ~read:(read t) ~write:(write t)
let component t = t.component
let words_delivered t = t.delivered

let reset t =
  Sim.Rng.reseed t.rng ~seed:t.seed;
  t.current <- Sim.Rng.bits t.rng 32;
  t.refill_left <- 0;
  t.enabled <- true;
  t.delivered <- 0;
  Power.Component.reset t.component
