(** UART peripheral (Figure 1).

    Register map (word offsets from the slave base):
    - [0x0] DATA: write queues a byte for transmission, read pops the
      receive FIFO (0 when empty);
    - [0x4] STATUS: bit0 transmitter busy, bit1 receive data available,
      bit2 transmit FIFO full;
    - [0x8] CTRL: bit0 enable;
    - [0xC] BAUD: clock cycles per bit (default 16).

    Transmission takes [10 * baud] cycles per byte (start + 8 data + stop).
    Transmitted bytes accumulate in a host-visible buffer. *)

type t

val create :
  kernel:Sim.Kernel.t ->
  ?component:Power.Component.params ->
  ?rx_irq:(unit -> unit) ->
  Ec.Slave_cfg.t ->
  t
(** [rx_irq] fires when a byte enters the receive FIFO. *)

val slave : t -> Ec.Slave.t
val component : t -> Power.Component.t

val inject_rx : t -> int -> unit
(** Host side: makes a byte available in the receive FIFO. *)

val transmitted : t -> string
(** All bytes fully shifted out so far. *)

val tx_busy : t -> bool
val rx_pending : t -> int

val reset : t -> unit
(** FIFOs, captured output, line state, control registers and the power
    component back to the freshly created state. *)
