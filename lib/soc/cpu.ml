type fault =
  | Bus_error of int
  | Misaligned of int
  | Illegal_instruction of int

(* What to do when the pending data transaction completes. *)
type continuation =
  | Writeback of Isa.reg * (int -> int)  (* destination, extension *)
  | Writeback4 of Isa.reg
  | Store_done

type state =
  | Issue_fetch
  | Fetch_pending of Ec.Txn.t
  | Issue_mem of Ec.Txn.t * continuation * [ `Load | `Store ]
  | Mem_pending of Ec.Txn.t * continuation
  | Wait_for_interrupt
  | Draining  (* halt seen, store buffer not yet empty *)
  | Halted

type t = {
  port : Ec.Port.t;
  ids : Ec.Txn.Id_gen.gen;
  regs : int array;
  store_buffer : bool;
  irq : unit -> bool;
  irq_vector : int;
  mutable pending_store : Ec.Txn.t option;
  mutable pc : int;
  mutable epc : int;
  mutable irq_enabled : bool;
  mutable in_irq : bool;
  mutable interrupts_taken : int;
  mutable state : state;
  mutable fault : fault option;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
}

let mask32 v = v land 0xFFFFFFFF
let sext8 v = if v land 0x80 <> 0 then mask32 (v - 0x100) else v land 0xFF
let sext16 v = if v land 0x8000 <> 0 then mask32 (v - 0x10000) else v land 0xFFFF

(* Signed view of a 32-bit value, for comparisons. *)
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let get t r = if r = 0 then 0 else t.regs.(r)
let set t r v = if r <> 0 then t.regs.(r) <- mask32 v

let stop_with_fault t f =
  t.fault <- Some f;
  t.state <- Halted

let rec try_issue t =
  match t.state with
  | Issue_fetch ->
    if t.pc mod 4 <> 0 then stop_with_fault t (Misaligned t.pc)
    else begin
      let txn =
        Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh t.ids)
          ~kind:Ec.Txn.Instruction t.pc
      in
      if t.port.Ec.Port.try_submit txn then t.state <- Fetch_pending txn
    end
  | Issue_mem (txn, continuation, `Load) ->
    (* Conservative load-after-store ordering: the read bus is independent
       of the write bus, so a load could overtake a buffered store; drain
       the buffer first. *)
    if t.pending_store = None && t.port.Ec.Port.try_submit txn then begin
      t.loads <- t.loads + 1;
      t.state <- Mem_pending (txn, continuation)
    end
  | Issue_mem (txn, continuation, `Store) ->
    if t.store_buffer then begin
      (* One-entry store buffer: the store is posted and the core moves on
         to the next fetch in the same cycle (write traffic overlaps
         instruction reads, as on the real core's write buffer). *)
      if t.pending_store = None && t.port.Ec.Port.try_submit txn then begin
        t.stores <- t.stores + 1;
        t.pending_store <- Some txn;
        t.state <- Issue_fetch;
        try_issue t
      end
    end
    else if t.port.Ec.Port.try_submit txn then begin
      t.stores <- t.stores + 1;
      t.state <- Mem_pending (txn, continuation)
    end
  | Fetch_pending _ | Mem_pending _ | Wait_for_interrupt | Draining
  | Halted ->
    ()

(* Builds the data transaction of a load/store; Error is a misaligned
   address. *)
let mem_txn t ~dir ~width ~addr ?data () =
  match
    Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data ~dir ~width
      ~addr ~burst:1 ?data ()
  with
  | txn -> Ok txn
  | exception Invalid_argument _ -> Error addr

let burst_txn t ~dir ~addr ?data () =
  match
    Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data ~dir
      ~width:Ec.Txn.W32 ~addr ~burst:4 ?data ()
  with
  | txn -> Ok txn
  | exception Invalid_argument _ -> Error addr

let start_mem t kind result continuation =
  match result with
  | Ok txn ->
    t.state <- Issue_mem (txn, continuation, kind);
    try_issue t
  | Error addr -> stop_with_fault t (Misaligned addr)

let take_interrupt t =
  t.epc <- t.pc;
  t.pc <- t.irq_vector;
  t.in_irq <- true;
  t.interrupts_taken <- t.interrupts_taken + 1

(* Instruction boundary: pending interrupts preempt the next fetch. *)
let next_fetch t =
  if t.irq_enabled && (not t.in_irq) && t.irq () then take_interrupt t;
  t.state <- Issue_fetch;
  try_issue t

let execute t instr =
  let load ~width ~addr ext =
    start_mem t `Load (mem_txn t ~dir:Ec.Txn.Read ~width ~addr ()) ext
  in
  let store ~width ~addr value =
    start_mem t `Store
      (mem_txn t ~dir:Ec.Txn.Write ~width ~addr ~data:[| value |] ())
      Store_done
  in
  t.instructions <- t.instructions + 1;
  t.pc <- t.pc + 4;
  match instr with
  | Isa.Nop -> next_fetch t
  | Isa.Halt ->
    t.state <- (if t.pending_store = None then Halted else Draining)
  | Isa.Add (d, s, r) -> set t d (get t s + get t r); next_fetch t
  | Isa.Sub (d, s, r) -> set t d (get t s - get t r); next_fetch t
  | Isa.And (d, s, r) -> set t d (get t s land get t r); next_fetch t
  | Isa.Or (d, s, r) -> set t d (get t s lor get t r); next_fetch t
  | Isa.Xor (d, s, r) -> set t d (get t s lxor get t r); next_fetch t
  | Isa.Slt (d, s, r) ->
    set t d (if signed (get t s) < signed (get t r) then 1 else 0);
    next_fetch t
  | Isa.Sll (d, s, sh) -> set t d (get t s lsl sh); next_fetch t
  | Isa.Srl (d, s, sh) -> set t d (get t s lsr sh); next_fetch t
  | Isa.Mul (d, s, r) -> set t d (get t s * get t r); next_fetch t
  | Isa.Addi (d, s, i) -> set t d (get t s + i); next_fetch t
  | Isa.Andi (d, s, i) -> set t d (get t s land i); next_fetch t
  | Isa.Ori (d, s, i) -> set t d (get t s lor i); next_fetch t
  | Isa.Xori (d, s, i) -> set t d (get t s lxor i); next_fetch t
  | Isa.Lui (d, i) -> set t d (i lsl 16); next_fetch t
  | Isa.Slti (d, s, i) ->
    set t d (if signed (get t s) < i then 1 else 0);
    next_fetch t
  | Isa.Lw (d, off, b) -> load ~width:Ec.Txn.W32 ~addr:(get t b + off) (Writeback (d, mask32))
  | Isa.Lh (d, off, b) -> load ~width:Ec.Txn.W16 ~addr:(get t b + off) (Writeback (d, sext16))
  | Isa.Lhu (d, off, b) ->
    load ~width:Ec.Txn.W16 ~addr:(get t b + off) (Writeback (d, fun v -> v land 0xFFFF))
  | Isa.Lb (d, off, b) -> load ~width:Ec.Txn.W8 ~addr:(get t b + off) (Writeback (d, sext8))
  | Isa.Lbu (d, off, b) ->
    load ~width:Ec.Txn.W8 ~addr:(get t b + off) (Writeback (d, fun v -> v land 0xFF))
  | Isa.Sw (d, off, b) -> store ~width:Ec.Txn.W32 ~addr:(get t b + off) (get t d)
  | Isa.Sh (d, off, b) ->
    store ~width:Ec.Txn.W16 ~addr:(get t b + off) (get t d land 0xFFFF)
  | Isa.Sb (d, off, b) ->
    store ~width:Ec.Txn.W8 ~addr:(get t b + off) (get t d land 0xFF)
  | Isa.Lw4 (d, off, b) ->
    if d > 28 then stop_with_fault t (Illegal_instruction (Isa.encode instr))
    else
      start_mem t `Load
        (burst_txn t ~dir:Ec.Txn.Read ~addr:(get t b + off) ())
        (Writeback4 d)
  | Isa.Sw4 (d, off, b) ->
    if d > 28 then stop_with_fault t (Illegal_instruction (Isa.encode instr))
    else begin
      let data = Array.init 4 (fun i -> get t (d + i)) in
      start_mem t `Store
        (burst_txn t ~dir:Ec.Txn.Write ~addr:(get t b + off) ~data ())
        Store_done
    end
  | Isa.Beq (a, b, off) ->
    if get t a = get t b then t.pc <- t.pc + (4 * off);
    next_fetch t
  | Isa.Bne (a, b, off) ->
    if get t a <> get t b then t.pc <- t.pc + (4 * off);
    next_fetch t
  | Isa.Blt (a, b, off) ->
    if signed (get t a) < signed (get t b) then t.pc <- t.pc + (4 * off);
    next_fetch t
  | Isa.Bge (a, b, off) ->
    if signed (get t a) >= signed (get t b) then t.pc <- t.pc + (4 * off);
    next_fetch t
  | Isa.J target -> t.pc <- target lsl 2; next_fetch t
  | Isa.Jal target ->
    set t 31 t.pc;
    t.pc <- target lsl 2;
    next_fetch t
  | Isa.Jr s -> t.pc <- get t s; next_fetch t
  | Isa.Ei ->
    t.irq_enabled <- true;
    next_fetch t
  | Isa.Di ->
    t.irq_enabled <- false;
    next_fetch t
  | Isa.Eret ->
    t.pc <- t.epc;
    t.in_irq <- false;
    next_fetch t
  | Isa.Wfi -> t.state <- Wait_for_interrupt

let writeback t continuation (txn : Ec.Txn.t) =
  (match continuation with
  | Writeback (d, ext) -> set t d (ext txn.Ec.Txn.data.(0))
  | Writeback4 d ->
    for i = 0 to 3 do
      set t (d + i) txn.Ec.Txn.data.(i)
    done
  | Store_done -> ());
  next_fetch t

let sweep_store_buffer t =
  match t.pending_store with
  | None -> ()
  | Some txn -> begin
    match Ec.Port.take t.port txn.Ec.Txn.id with
    | Ec.Port.Pending -> ()
    | Ec.Port.Done -> t.pending_store <- None
    | Ec.Port.Failed ->
      t.pending_store <- None;
      stop_with_fault t (Bus_error txn.Ec.Txn.addr)
  end

(* A fetch stalled on bus back-pressure is also an instruction boundary. *)
let maybe_take_interrupt t =
  match t.state with
  | Issue_fetch when t.irq_enabled && (not t.in_irq) && t.irq () ->
    take_interrupt t
  | Issue_fetch | Fetch_pending _ | Issue_mem _ | Mem_pending _
  | Wait_for_interrupt | Draining | Halted ->
    ()

let step t _kernel =
  sweep_store_buffer t;
  maybe_take_interrupt t;
  match t.state with
  | Halted -> ()
  | Draining -> if t.pending_store = None then t.state <- Halted
  | Wait_for_interrupt ->
    (* Wake on the request wire regardless of the core's enable bit;
       next_fetch vectors when interrupts are enabled. *)
    if t.irq () then next_fetch t
  | Issue_fetch | Issue_mem _ -> try_issue t
  | Fetch_pending txn -> begin
    match Ec.Port.take t.port txn.Ec.Txn.id with
    | Ec.Port.Pending -> ()
    | Ec.Port.Failed -> stop_with_fault t (Bus_error txn.Ec.Txn.addr)
    | Ec.Port.Done -> begin
      match Isa.decode txn.Ec.Txn.data.(0) with
      | instr -> execute t instr
      | exception Failure _ ->
        stop_with_fault t (Illegal_instruction txn.Ec.Txn.data.(0))
    end
  end
  | Mem_pending (txn, continuation) -> begin
    match Ec.Port.take t.port txn.Ec.Txn.id with
    | Ec.Port.Pending -> ()
    | Ec.Port.Failed -> stop_with_fault t (Bus_error txn.Ec.Txn.addr)
    | Ec.Port.Done -> writeback t continuation txn
  end

let create ~kernel ~port ?(pc = 0) ?(store_buffer = true)
    ?(irq = fun () -> false) ?(irq_vector = 0x40) () =
  let t =
    {
      port;
      ids = Ec.Txn.Id_gen.create ();
      regs = Array.make 32 0;
      store_buffer;
      irq;
      irq_vector;
      pending_store = None;
      pc;
      epc = 0;
      irq_enabled = false;
      in_irq = false;
      interrupts_taken = 0;
      state = Issue_fetch;
      fault = None;
      instructions = 0;
      loads = 0;
      stores = 0;
    }
  in
  Sim.Kernel.on_rising kernel ~name:"cpu" (step t);
  t

let halted t =
  match t.state with
  | Halted -> true
  | Issue_fetch | Fetch_pending _ | Issue_mem _ | Mem_pending _
  | Wait_for_interrupt | Draining ->
    false
let fault t = t.fault
let pc t = t.pc
let reg t r = get t r
let set_reg t r v = set t r v
let instructions t = t.instructions
let loads t = t.loads
let stores t = t.stores

let run_to_halt t ~kernel ?(max_cycles = 2_000_000) () =
  Sim.Kernel.run_until kernel ~max_cycles (fun () -> halted t)

let interrupts_taken t = t.interrupts_taken
let in_interrupt t = t.in_irq
let epc t = t.epc

let reset t ~pc =
  Ec.Txn.Id_gen.reset t.ids;
  Array.fill t.regs 0 (Array.length t.regs) 0;
  t.pending_store <- None;
  t.pc <- pc;
  t.epc <- 0;
  t.irq_enabled <- false;
  t.in_irq <- false;
  t.interrupts_taken <- 0;
  t.state <- Issue_fetch;
  t.fault <- None;
  t.instructions <- 0;
  t.loads <- 0;
  t.stores <- 0
