type t = {
  cfg : Ec.Slave_cfg.t;
  bytes : Bytes.t;
  component : Power.Component.t;
  mutable accessed_this_cycle : bool;
  mutable reads : int;
  mutable writes : int;
  (* Watermarks of the written byte range, so [reset] zero-fills only
     what was touched instead of the whole image (a 256 KiB ROM would
     otherwise dominate pooled-session reset cost).  [dirty_hi] is
     exclusive; an untouched memory has [dirty_lo > dirty_hi]. *)
  mutable dirty_lo : int;
  mutable dirty_hi : int;
}

let create ?kernel ?(component = Power.Component.params ()) cfg =
  let t =
    {
      cfg;
      bytes = Bytes.make cfg.Ec.Slave_cfg.size '\000';
      component = Power.Component.create ~name:cfg.Ec.Slave_cfg.name component;
      accessed_this_cycle = false;
      reads = 0;
      writes = 0;
      dirty_lo = max_int;
      dirty_hi = 0;
    }
  in
  (match kernel with
  | Some k ->
    Sim.Kernel.on_rising k ~name:(cfg.Ec.Slave_cfg.name ^ "-power")
      (fun _ ->
        Power.Component.tick t.component ~active:t.accessed_this_cycle;
        t.accessed_this_cycle <- false)
  | None -> ());
  t

let offset t addr =
  let off = addr - t.cfg.Ec.Slave_cfg.base in
  assert (off >= 0 && off < t.cfg.Ec.Slave_cfg.size);
  off

let[@inline] mark_dirty t lo hi =
  if lo < t.dirty_lo then t.dirty_lo <- lo;
  if hi > t.dirty_hi then t.dirty_hi <- hi

let poke8 t ~addr v =
  let off = offset t addr in
  mark_dirty t off (off + 1);
  Bytes.set_uint8 t.bytes off (v land 0xFF)

let peek8 t ~addr = Bytes.get_uint8 t.bytes (offset t addr)

let poke32 t ~addr v =
  assert (addr mod 4 = 0);
  let off = offset t addr in
  mark_dirty t off (off + 4);
  Bytes.set_int32_le t.bytes off (Int32.of_int (v land 0xFFFFFFFF))

let peek32 t ~addr =
  assert (addr mod 4 = 0);
  Int32.to_int (Bytes.get_int32_le t.bytes (offset t addr)) land 0xFFFFFFFF

let copy_contents ~src ~dst =
  if Bytes.length src.bytes <> Bytes.length dst.bytes then
    invalid_arg "Soc.Memory.copy_contents: size mismatch";
  Bytes.blit src.bytes 0 dst.bytes 0 (Bytes.length src.bytes);
  mark_dirty dst 0 (Bytes.length dst.bytes)

let load_words t ~addr words =
  Array.iteri (fun i w -> poke32 t ~addr:(addr + (4 * i)) w) words

let load_program t (p : Asm.program) = load_words t ~addr:p.Asm.origin p.Asm.words

let mark_access t =
  t.accessed_this_cycle <- true;
  Power.Component.access t.component

let bus_read t ~addr ~width =
  mark_access t;
  t.reads <- t.reads + 1;
  match (width : Ec.Txn.width) with
  | Ec.Txn.W8 -> peek8 t ~addr
  | Ec.Txn.W16 ->
    assert (addr mod 2 = 0);
    peek8 t ~addr lor (peek8 t ~addr:(addr + 1) lsl 8)
  | Ec.Txn.W32 -> peek32 t ~addr

let bus_write t ~addr ~width ~value =
  mark_access t;
  t.writes <- t.writes + 1;
  match (width : Ec.Txn.width) with
  | Ec.Txn.W8 -> poke8 t ~addr value
  | Ec.Txn.W16 ->
    assert (addr mod 2 = 0);
    poke8 t ~addr (value land 0xFF);
    poke8 t ~addr:(addr + 1) ((value lsr 8) land 0xFF)
  | Ec.Txn.W32 -> poke32 t ~addr value

let slave t = Ec.Slave.make ~cfg:t.cfg ~read:(bus_read t) ~write:(bus_write t)
let cfg t = t.cfg
let component t = t.component
let reads t = t.reads
let writes t = t.writes

let reset t =
  if t.dirty_lo < t.dirty_hi then
    Bytes.fill t.bytes t.dirty_lo (t.dirty_hi - t.dirty_lo) '\000';
  t.dirty_lo <- max_int;
  t.dirty_hi <- 0;
  t.accessed_this_cycle <- false;
  t.reads <- 0;
  t.writes <- 0;
  Power.Component.reset t.component
