(** Bus master replaying a recorded transaction trace.

    This is the paper's verification vehicle: transactions traced from the
    register-transfer model (or written by hand from the EC specification
    examples) are used as input test sequences for the transaction-level
    models.  Two issue disciplines:

    - [`Serial]: wait for each transaction to finish before issuing the
      next (after its idle gap) — the shape of blocking CPU traffic;
    - [`Pipelined]: issue as fast as the bus accepts, keeping several
      transactions outstanding — exercises address/data pipelining,
      back-to-back transfers and read/write overlap. *)

type mode = [ `Serial | `Pipelined ]

type t

val create :
  kernel:Sim.Kernel.t ->
  port:Ec.Port.t ->
  ?name:string ->
  ?mode:mode ->
  ?keep_results:bool ->
  ?sink:Obs.Sink.t ->
  Ec.Trace.t ->
  t
(** [name] labels the kernel process (default ["trace-master"]); give
    each master a distinct name when several share one kernel, or
    process gating will conflate them.
    [mode] defaults to [`Pipelined].  With [keep_results] the completed
    transactions (with read data) are retained for inspection.  [sink]
    records the master-side outstanding-transaction occupancy on every
    accepted submission (the bus-side events come from the bus's own
    sink argument). *)

val finished : t -> bool
val issued : t -> int
val completed : t -> int
val errors : t -> int
val results : t -> Ec.Txn.t list
(** Completed transactions in completion order (requires
    [keep_results]). *)

val run : t -> kernel:Sim.Kernel.t -> ?max_cycles:int -> unit -> int
(** Steps the kernel until the trace is fully processed; returns the
    cycles consumed by this call. *)

val reset : ?mode:mode -> t -> Ec.Trace.t -> unit
(** Re-arms the master with a new trace exactly as {!create} would: id
    supply restarted, in-flight bookkeeping cleared, first item loaded
    into the submit slot.  [mode] switches the issue discipline for the
    new run (kept otherwise); the kernel registration and port stay. *)
