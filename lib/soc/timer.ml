let channels = 2

type channel = {
  mutable count : int;
  mutable reload : int;
  mutable enable : bool;
  mutable auto_reload : bool;
  mutable overflow : bool;
}

type t = {
  cfg : Ec.Slave_cfg.t;
  component : Power.Component.t;
  irq : int -> unit;
  chan : channel array;
}

let create ~kernel ?(component = Power.Component.Presets.timer)
    ?(irq = fun _ -> ()) cfg =
  let fresh_channel () =
    { count = 0; reload = 0; enable = false; auto_reload = false;
      overflow = false }
  in
  let t =
    {
      cfg;
      component = Power.Component.create ~name:cfg.Ec.Slave_cfg.name component;
      irq;
      chan = Array.init channels (fun _ -> fresh_channel ());
    }
  in
  let tick _ =
    let any_enabled = ref false in
    Array.iteri
      (fun ch c ->
        if c.enable then begin
          any_enabled := true;
          c.count <- c.count + 1;
          if c.count > 0xFFFF then begin
            c.overflow <- true;
            c.count <- (if c.auto_reload then c.reload else 0);
            t.irq ch
          end
        end)
      t.chan;
    Power.Component.tick t.component ~active:!any_enabled
  in
  Sim.Kernel.on_rising kernel ~name:(cfg.Ec.Slave_cfg.name ^ "-tick") tick;
  t

let locate t addr =
  let off = addr - t.cfg.Ec.Slave_cfg.base in
  let ch = off / 0x10 and reg = off mod 0x10 in
  if ch >= 0 && ch < channels then Some (t.chan.(ch), reg) else None

let read t ~addr ~width:_ =
  Power.Component.access t.component;
  match locate t addr with
  | Some (c, 0x0) -> c.count
  | Some (c, 0x4) -> c.reload
  | Some (c, 0x8) -> (if c.enable then 1 else 0) lor if c.auto_reload then 2 else 0
  | Some (c, 0xC) -> if c.overflow then 1 else 0
  | Some _ | None -> 0

let write t ~addr ~width:_ ~value =
  Power.Component.access t.component;
  match locate t addr with
  | Some (c, 0x0) -> c.count <- value land 0xFFFF
  | Some (c, 0x4) -> c.reload <- value land 0xFFFF
  | Some (c, 0x8) ->
    c.enable <- value land 1 = 1;
    c.auto_reload <- value land 2 = 2
  | Some (c, 0xC) -> if value land 1 = 1 then c.overflow <- false
  | Some _ | None -> ()

let slave t = Ec.Slave.make ~cfg:t.cfg ~read:(read t) ~write:(write t)
let component t = t.component
let count t ch = t.chan.(ch).count
let overflowed t ch = t.chan.(ch).overflow

let reset t =
  Array.iter
    (fun c ->
      c.count <- 0;
      c.reload <- 0;
      c.enable <- false;
      c.auto_reload <- false;
      c.overflow <- false)
    t.chan;
  Power.Component.reset t.component
