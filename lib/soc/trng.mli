(** True random number generator peripheral (Figure 1), deterministic in
    simulation through an explicit seed.

    Register map: [0x0] DATA (reading consumes the current word; a fresh
    one becomes ready after the refill delay), [0x4] STATUS (bit0 ready),
    [0x8] CTRL (bit0 enable).  Reading DATA while not ready returns the
    stale word without consuming entropy. *)

type t

val create :
  kernel:Sim.Kernel.t ->
  ?component:Power.Component.params ->
  ?seed:int ->
  ?refill_cycles:int ->
  Ec.Slave_cfg.t ->
  t
(** [refill_cycles] defaults to 8. *)

val slave : t -> Ec.Slave.t
val component : t -> Power.Component.t
val ready : t -> bool
val words_delivered : t -> int

val reset : t -> unit
(** Reseeds the generator with the creation seed and restores every
    register, so a reused TRNG delivers the exact word sequence of a
    fresh one. *)
