type mode = [ `Serial | `Pipelined ]

type t = {
  port : Ec.Port.t;
  sink : Obs.Sink.t option;
  mutable mode : mode;
  keep_results : bool;
  ids : Ec.Txn.Id_gen.gen;
  mutable remaining : Ec.Trace.item list;
  mutable gap_left : int;
  mutable to_submit : Ec.Txn.t option;  (* instantiated, not yet accepted *)
  outstanding : Ec.Txn.t Ec.Id_store.t;  (* by transaction id *)
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable results_rev : Ec.Txn.t list;
}

let finished t =
  t.remaining = [] && t.to_submit = None && Ec.Id_store.is_empty t.outstanding

let record_completion t txn outcome =
  t.completed <- t.completed + 1;
  (match outcome with
  | Ec.Port.Failed -> t.errors <- t.errors + 1
  | Ec.Port.Done | Ec.Port.Pending -> ());
  if t.keep_results then t.results_rev <- txn :: t.results_rev

(* Collect finished outstanding transactions.  In-place sweep: a removal
   swaps the last entry into the vacated slot, so the index only advances
   past entries that stay. *)
let sweep t =
  let i = ref 0 in
  while !i < Ec.Id_store.length t.outstanding do
    let txn = Ec.Id_store.value_at t.outstanding !i in
    match Ec.Port.take t.port txn.Ec.Txn.id with
    | Ec.Port.Pending -> incr i
    | (Ec.Port.Done | Ec.Port.Failed) as outcome ->
      record_completion t txn outcome;
      Ec.Id_store.remove_at t.outstanding !i
  done

(* Load the next trace item into the submit slot, arming its gap. *)
let advance t =
  match t.remaining with
  | [] -> ()
  | item :: rest ->
    t.remaining <- rest;
    let it = Ec.Trace.instantiate t.ids item in
    t.gap_left <- it.Ec.Trace.gap;
    t.to_submit <- Some it.Ec.Trace.txn

let try_submit t =
  match t.to_submit with
  | None -> ()
  | Some txn ->
    if t.gap_left > 0 then t.gap_left <- t.gap_left - 1
    else if t.port.Ec.Port.try_submit txn then begin
      Ec.Id_store.set t.outstanding txn.Ec.Txn.id txn;
      t.issued <- t.issued + 1;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.master_outstanding s ~depth:(Ec.Id_store.length t.outstanding));
      t.to_submit <- None;
      advance t
    end

let step t _kernel =
  sweep t;
  match t.mode with
  | `Pipelined -> try_submit t
  | `Serial -> if Ec.Id_store.is_empty t.outstanding then try_submit t

let create ~kernel ~port ?(name = "trace-master") ?(mode = `Pipelined)
    ?(keep_results = false) ?sink trace =
  let t =
    {
      port;
      sink;
      mode;
      keep_results;
      ids = Ec.Txn.Id_gen.create ();
      remaining = trace;
      gap_left = 0;
      to_submit = None;
      outstanding =
        Ec.Id_store.create ~dummy:(Ec.Txn.single_read ~id:(-1) 0) ();
      issued = 0;
      completed = 0;
      errors = 0;
      results_rev = [];
    }
  in
  advance t;
  Sim.Kernel.on_rising kernel ~name (step t);
  t

let issued t = t.issued
let completed t = t.completed
let errors t = t.errors
let results t = List.rev t.results_rev

let reset ?mode t trace =
  (match mode with Some m -> t.mode <- m | None -> ());
  Ec.Txn.Id_gen.reset t.ids;
  t.remaining <- trace;
  t.gap_left <- 0;
  t.to_submit <- None;
  Ec.Id_store.clear t.outstanding;
  t.issued <- 0;
  t.completed <- 0;
  t.errors <- 0;
  t.results_rev <- [];
  (* Re-arm exactly like [create]: the first item moves into the submit
     slot before the first step. *)
  advance t

let run t ~kernel ?(max_cycles = 2_000_000) () =
  Sim.Kernel.run_until kernel ~max_cycles (fun () -> finished t)
