type t = {
  inner : Ec.Port.t;
  kernel : Sim.Kernel.t;
  mutable items_rev : Ec.Trace.item list;
  mutable last_accept : int option;
  mutable count : int;
  mutable rejected : int;
}

let create ~kernel inner =
  {
    inner;
    kernel;
    items_rev = [];
    last_accept = None;
    count = 0;
    rejected = 0;
  }

let port t =
  let try_submit txn =
    let accepted = t.inner.Ec.Port.try_submit txn in
    if accepted then begin
      let now = Sim.Kernel.now t.kernel in
      let gap =
        match t.last_accept with
        | None -> now
        | Some prev -> max 0 (now - prev - 1)
      in
      t.last_accept <- Some now;
      t.items_rev <- Ec.Trace.item ~gap txn :: t.items_rev;
      t.count <- t.count + 1
    end
    else
      (* Bus state `wait`: the master retries the same submission next
         cycle.  Count every refused attempt so back-pressure seen while
         tracing matches the rejected counts a replay's metrics report. *)
      t.rejected <- t.rejected + 1;
    accepted
  in
  { t.inner with Ec.Port.try_submit }

let trace t = List.rev t.items_rev
let count t = t.count
let rejected t = t.rejected

let reset t =
  t.items_rev <- [];
  t.last_accept <- None;
  t.count <- 0;
  t.rejected <- 0
