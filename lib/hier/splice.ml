type provenance = Cycle_accurate | Lumped | Bridged

type seg = {
  level : Level.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
}

type window = {
  index : int;
  level : Level.t;
  start_cycle : int;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
  provenance : provenance;
  err_bound_pj : float;
}

type t = {
  windows : window list;
  total_cycles : int;
  total_txns : int;
  total_beats : int;
  total_errors : int;
  total_bus_pj : float;
  total_component_pj : float;
  error_bound_pj : float;
  switches : int;
}

(* Per-level fractional energy-error bounds vs the gate-level reference.
   The defaults envelope the Table 2 error bands of the reproduction
   (layer 1 down to -12%, layer 2 up to +25%, depending on the burst
   mix); runs that characterize their own table can tighten them. *)
let default_budget = function
  | Level.Rtl -> 0.0
  | Level.L1 -> 0.12
  | Level.L2 -> 0.25
  | Level.L3 -> 0.35

let provenance_of_level = function
  | Level.Rtl | Level.L1 -> Cycle_accurate
  | Level.L2 -> Lumped
  | Level.L3 -> Bridged

let provenance_string = function
  | Cycle_accurate -> "cycle-accurate"
  | Lumped -> "lumped"
  | Bridged -> "bridged"

let splice ?(budget = default_budget) segs =
  let _, windows_rev =
    List.fold_left
      (fun (start_cycle, acc) (i, (s : seg)) ->
        let w =
          {
            index = i;
            level = s.level;
            start_cycle;
            cycles = s.cycles;
            txns = s.txns;
            beats = s.beats;
            errors = s.errors;
            bus_pj = s.bus_pj;
            component_pj = s.component_pj;
            profile = s.profile;
            provenance = provenance_of_level s.level;
            err_bound_pj = Float.abs s.bus_pj *. budget s.level;
          }
        in
        (start_cycle + s.cycles, w :: acc))
      (0, [])
      (List.mapi (fun i s -> (i, s)) segs)
  in
  let windows = List.rev windows_rev in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 windows in
  let sumf f = List.fold_left (fun acc w -> acc +. f w) 0.0 windows in
  let switches =
    match windows with
    | [] -> 0
    | first :: rest ->
      snd
        (List.fold_left
           (fun (prev, n) w -> (w.level, if w.level <> prev then n + 1 else n))
           (first.level, 0) rest)
  in
  {
    windows;
    total_cycles = sum (fun w -> w.cycles);
    total_txns = sum (fun w -> w.txns);
    total_beats = sum (fun w -> w.beats);
    total_errors = sum (fun w -> w.errors);
    total_bus_pj = sumf (fun w -> w.bus_pj);
    total_component_pj = sumf (fun w -> w.component_pj);
    error_bound_pj = sumf (fun w -> w.err_bound_pj);
    switches;
  }

(* The reconciled profile: recorded per-cycle series are copied through
   (padded with trailing idle cycles if the recording stopped early);
   windows without a recording contribute their lump spread uniformly, so
   the spliced series always spans the full spliced timeline and its
   total equals the spliced energy exactly up to float summation. *)
let profile t =
  let out = Power.Profile.create () in
  List.iter
    (fun w ->
      match w.profile with
      | Some p ->
        let recorded = min (Power.Profile.length p) w.cycles in
        for i = 0 to recorded - 1 do
          Power.Profile.push out (Power.Profile.get p i)
        done;
        for _ = recorded to w.cycles - 1 do
          Power.Profile.push out 0.0
        done
      | None ->
        if w.cycles > 0 then begin
          let per_cycle = w.bus_pj /. float_of_int w.cycles in
          for _ = 1 to w.cycles do
            Power.Profile.push out per_cycle
          done
        end)
    t.windows;
  out

let error_vs_reference t ~reference_pj =
  let err_pct =
    if reference_pj = 0.0 then 0.0
    else (t.total_bus_pj -. reference_pj) /. reference_pj *. 100.0
  in
  let within = Float.abs (t.total_bus_pj -. reference_pj) <= t.error_bound_pj in
  (err_pct, within)

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Spliced profile: %d windows, %d switches, %d cycles, %.1f pJ (+/- %.1f pJ budget)\n"
       (List.length t.windows) t.switches t.total_cycles t.total_bus_pj
       t.error_bound_pj);
  Buffer.add_string buf
    "| window | level         | cycles [start..) | txns | bus pJ | +/- pJ | provenance     |\n";
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "| %6d | %-13s | %7d @%7d | %4d | %6.1f | %6.1f | %-14s |\n"
           w.index (Level.to_string w.level) w.cycles w.start_cycle w.txns
           w.bus_pj w.err_bound_pj
           (provenance_string w.provenance)))
    t.windows;
  Buffer.contents buf
