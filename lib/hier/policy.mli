(** Level-selection policies for mixed-level simulation.

    The policy decides which abstraction level of the hierarchy simulates
    the next window of a run.  Decisions are taken at switch
    opportunities — window boundaries where the bus has been quiesced —
    from an {!observation} of the run so far.  Three shapes:

    - {!constant}: one level for the whole run.  The degenerate case; the
      engine pins it to the corresponding pure run bit-for-bit.
    - {!script}: an explicit [(txn_count, level)] schedule, for
      reproducible experiments ("simulate the first 1000 transactions at
      layer 2, the next 200 at layer 1, ...").
    - {!triggered}: a base level refined by triggers — address ranges
      (e.g. DPA-sensitive peripherals), cycle windows, and
      transaction-rate or energy-rate thresholds evaluated against the
      previous window. *)

type trigger =
  | Addr_range of { lo : int; hi : int; level : Level.t }
      (** Fires while the next transaction's address lies in [\[lo, hi)]. *)
  | Cycle_window of { lo : int; hi : int; level : Level.t }
      (** Fires while the cumulative cycle count lies in [\[lo, hi)].
          Evaluated at window boundaries only, so its edges are as sharp
          as the surrounding windows ([max_window] bounds the slack). *)
  | Txn_window of { lo : int; hi : int; level : Level.t }
      (** Fires while the next transaction's index lies in [\[lo, hi)] —
          a position-scheduled refinement, e.g. a warm-up window. *)
  | Every of { period : int; length : int; level : Level.t }
      (** Fires while [txn_index mod period < length]: periodic
          refinement sampling, the duty-cycled probe that keeps an
          adaptive run's fast windows calibrated. *)
  | Txn_rate_above of { txns_per_kcycle : float; level : Level.t }
      (** Fires when the previous window's transaction rate exceeded the
          threshold (transactions per 1000 cycles). *)
  | Energy_rate_above of { pj_per_cycle : float; level : Level.t }
      (** Fires when the previous window's bus power exceeded the
          threshold. *)

type observation = {
  txn_index : int;  (** index of the next transaction in the trace *)
  addr : int;  (** its byte address *)
  cycle : int;  (** cumulative cycles simulated so far *)
  txns_per_kcycle : float;  (** previous window's transaction rate *)
  pj_per_cycle : float;  (** previous window's bus power *)
}

type t = private
  | Constant of Level.t
  | Script of (int * Level.t) list
  | Triggered of {
      base : Level.t;
      triggers : trigger list;
      min_window : int;
      max_window : int option;
    }

val constant : Level.t -> t

val script : (int * Level.t) list -> t
(** @raise Invalid_argument on an empty script or a non-positive count.
    Past the scripted transactions the last level holds. *)

val triggered :
  ?min_window:int -> ?max_window:int -> base:Level.t -> trigger list -> t
(** First matching trigger wins; [base] applies when none fires.
    [min_window] (default 1) is the minimum window length in
    transactions, bounding switch overhead; [max_window] (default
    unbounded) forces a switch opportunity — and thus a re-evaluation of
    cycle- and rate-triggers — at least every that many transactions.
    @raise Invalid_argument if [min_window < 1] or
    [max_window < min_window]. *)

val for_exploration :
  ?warmup:int ->
  ?period:int ->
  ?refine:int ->
  ?refine_above:float ->
  ?min_window:int ->
  ?max_window:int ->
  ?sensitive:(int * int) list ->
  unit ->
  t
(** The exploration preset (DESIGN.md section 12): layer 2 as the base
    sweep level, refined to layer 1

    - for the first [warmup] transactions (default 512) — the
      calibration window that seeds the layer-2 lump constants;
    - for [refine] transactions (default 192) every [period] (default
      768) — periodic refinement sampling that keeps the calibration
      tracking the workload;
    - whenever the previous window's bus power exceeded [refine_above]
      pJ/cycle (default 8.0) — the paper's "sensitive window" rule;
    - while the transaction address lies in one of the [sensitive]
      [(lo, hi)] byte ranges (default none), e.g. the hardware-stack SFR
      window when every stack access must be cycle-accurate.

    [min_window]/[max_window] (defaults 64/512) bound switch overhead
    exactly as in {!triggered}.  The defaults are tuned on the section
    4.3 JCVM sweep: about 1.4x faster than a pure layer-1 sweep with the
    spliced energy inside the default budgets (EXPERIMENTS.md).
    @raise Invalid_argument if [warmup < 0], [period < 1] or [refine]
    lies outside [\[0, period]]. *)

val decide : t -> observation -> Level.t

val needs_cycle : t -> bool
(** Whether any decision depends on the current cycle (a
    [Cycle_window] trigger exists) — callers on hot paths skip
    reading the clock otherwise. *)

val compile_window :
  t ->
  txns_per_kcycle:float ->
  pj_per_cycle:float ->
  txn_index:int ->
  addr:int ->
  cycle:int ->
  Level.t
(** [compile_window t ~txns_per_kcycle ~pj_per_cycle] partially
    evaluates the policy for one window: rate triggers compare against
    the {e previous} window's rates, so their verdicts are fixed for the
    whole window and the returned function decides from the three
    per-transaction integers alone — no observation record, no float
    compares on the per-transaction path.  Agrees with {!decide} on
    every observation carrying the same rates. *)

val to_string : t -> string
