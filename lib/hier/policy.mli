(** Level-selection policies for mixed-level simulation.

    The policy decides which abstraction level of the hierarchy simulates
    the next window of a run.  Decisions are taken at switch
    opportunities — window boundaries where the bus has been quiesced —
    from an {!observation} of the run so far.  Three shapes:

    - {!constant}: one level for the whole run.  The degenerate case; the
      engine pins it to the corresponding pure run bit-for-bit.
    - {!script}: an explicit [(txn_count, level)] schedule, for
      reproducible experiments ("simulate the first 1000 transactions at
      layer 2, the next 200 at layer 1, ...").
    - {!triggered}: a base level refined by triggers — address ranges
      (e.g. DPA-sensitive peripherals), cycle windows, and
      transaction-rate or energy-rate thresholds evaluated against the
      previous window. *)

type trigger =
  | Addr_range of { lo : int; hi : int; level : Level.t }
      (** Fires while the next transaction's address lies in [\[lo, hi)]. *)
  | Cycle_window of { lo : int; hi : int; level : Level.t }
      (** Fires while the cumulative cycle count lies in [\[lo, hi)].
          Evaluated at window boundaries only, so its edges are as sharp
          as the surrounding windows ([max_window] bounds the slack). *)
  | Txn_rate_above of { txns_per_kcycle : float; level : Level.t }
      (** Fires when the previous window's transaction rate exceeded the
          threshold (transactions per 1000 cycles). *)
  | Energy_rate_above of { pj_per_cycle : float; level : Level.t }
      (** Fires when the previous window's bus power exceeded the
          threshold. *)

type observation = {
  txn_index : int;  (** index of the next transaction in the trace *)
  addr : int;  (** its byte address *)
  cycle : int;  (** cumulative cycles simulated so far *)
  txns_per_kcycle : float;  (** previous window's transaction rate *)
  pj_per_cycle : float;  (** previous window's bus power *)
}

type t = private
  | Constant of Level.t
  | Script of (int * Level.t) list
  | Triggered of {
      base : Level.t;
      triggers : trigger list;
      min_window : int;
      max_window : int option;
    }

val constant : Level.t -> t

val script : (int * Level.t) list -> t
(** @raise Invalid_argument on an empty script or a non-positive count.
    Past the scripted transactions the last level holds. *)

val triggered :
  ?min_window:int -> ?max_window:int -> base:Level.t -> trigger list -> t
(** First matching trigger wins; [base] applies when none fires.
    [min_window] (default 1) is the minimum window length in
    transactions, bounding switch overhead; [max_window] (default
    unbounded) forces a switch opportunity — and thus a re-evaluation of
    cycle- and rate-triggers — at least every that many transactions.
    @raise Invalid_argument if [min_window < 1] or
    [max_window < min_window]. *)

val decide : t -> observation -> Level.t
val to_string : t -> string
