(** Energy splicing: stitching per-window energy measurements taken at
    different abstraction levels into one reconciled profile.

    Every window of a mixed-level run contributes a {!seg}: its level,
    duration, traffic counters, estimated bus and component energy, and —
    when the level records one — a per-cycle energy profile.  {!splice}
    lays the windows end to end on a single spliced timeline and
    accounts an error budget per window: the window's estimated bus
    energy times the fractional bound for its level (vs the gate-level
    reference), so the cumulative bound states how far the spliced total
    may sit from a pure gate-level estimate of the same run. *)

type provenance =
  | Cycle_accurate  (** per-cycle energies (gate level, layer 1) *)
  | Lumped  (** phase-lumped estimates spread over the window (layer 2) *)
  | Bridged
      (** message-layer replay priced through a timed carrier bus (layer
          3 windows; DESIGN.md section 17.4) *)

type seg = {
  level : Level.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
}

type window = {
  index : int;
  level : Level.t;
  start_cycle : int;  (** position on the spliced timeline *)
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
  provenance : provenance;
  err_bound_pj : float;  (** |bus_pj| x budget(level) *)
}

type t = {
  windows : window list;
  total_cycles : int;
  total_txns : int;
  total_beats : int;
  total_errors : int;
  total_bus_pj : float;
  total_component_pj : float;
  error_bound_pj : float;  (** cumulative: sum of per-window bounds *)
  switches : int;  (** adjacent window pairs with different levels *)
}

val default_budget : Level.t -> float
(** Fractional error bound per level: 0 for the reference, 12% for layer
    1, 25% for layer 2 and 35% for the bridged layer 3 — enveloping the
    Table 2 error bands with margin. *)

val splice : ?budget:(Level.t -> float) -> seg list -> t
(** Windows are laid out in list order; totals are exact sums of the
    window figures. *)

val profile : t -> Power.Profile.t
(** The reconciled per-cycle series over the whole spliced timeline:
    recorded profiles verbatim, unrecorded windows as a uniform spread of
    their lump. *)

val error_vs_reference : t -> reference_pj:float -> float * bool
(** [(signed error %, within budget?)] of the spliced total against a
    reference estimate of the same run. *)

val provenance_string : provenance -> string

val render : t -> string
(** Per-window provenance table plus the cumulative budget line. *)
