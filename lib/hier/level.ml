type t = Rtl | L1 | L2 | L3

let all = [ Rtl; L1; L2 ]
let timed = [ Rtl; L1; L2 ]
let adaptive = [ L1; L2; L3 ]

let to_string = function
  | Rtl -> "gate-level"
  | L1 -> "TL layer 1"
  | L2 -> "TL layer 2"
  | L3 -> "TL layer 3"

let to_code = function Rtl -> 0 | L1 -> 1 | L2 -> 2 | L3 -> 3

let pp ppf t = Format.pp_print_string ppf (to_string t)
