(** The abstraction-level hierarchy of the paper.

    [Rtl] is the register-transfer/gate-level reference ("layer 0", the
    role Diesel plays in the paper), [L1] the cycle-accurate transaction
    level layer one, [L2] the timing-estimation layer two, and [L3] the
    untimed message layer (the OCP taxonomy's layer three), first-class
    in adaptive runs: an [L3] window replays its transactions through the
    {!Tlm3} bridge onto a timed carrier bus (DESIGN.md section 17.4).

    This is the home of the type; {!Core.Level} re-exports it so existing
    call sites keep working while the mixed-level machinery in [Hier] can
    name levels without depending on [Core]. *)

type t = Rtl | L1 | L2 | L3

val all : t list
(** The three directly comparable estimation levels of the paper's
    tables, [Rtl; L1; L2] — [L3] estimates through a carrier bus and is
    deliberately excluded from table sweeps (use {!adaptive} for the
    levels a policy may select). *)

val timed : t list
(** Levels with their own timed bus model: [Rtl; L1; L2]. *)

val adaptive : t list
(** Levels an adaptive policy may choose for a window: [L1; L2; L3]
    ([Rtl] systems exist but policies refine {e towards} the reference,
    they do not run it mid-sweep). *)

val to_string : t -> string

val to_code : t -> int
(** Dense code (0/1/2/3) carried in {!Obs.Event} payload slots; renders
    back through [Obs.Event.level_name]. *)

val pp : Format.formatter -> t -> unit
