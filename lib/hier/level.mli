(** The abstraction-level hierarchy of the paper.

    [Rtl] is the register-transfer/gate-level reference ("layer 0", the
    role Diesel plays in the paper), [L1] the cycle-accurate transaction
    level layer one, [L2] the timing-estimation layer two.

    This is the home of the type; {!Core.Level} re-exports it so existing
    call sites keep working while the mixed-level machinery in [Hier] can
    name levels without depending on [Core]. *)

type t = Rtl | L1 | L2

val all : t list
val to_string : t -> string

val to_code : t -> int
(** Dense code (0/1/2) carried in {!Obs.Event} payload slots; renders
    back through [Obs.Event.level_name]. *)

val pp : Format.formatter -> t -> unit
