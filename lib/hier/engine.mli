(** The mixed-level switch controller.

    The engine partitions a transaction trace into windows, asks the
    {!Policy} which level simulates each window, and drives one system
    per window through the backend [ops], splicing the per-window energy
    measurements with {!Splice}.

    Switch points are quiescent by construction: a segment runs until its
    share of the trace has drained {e and} every outstanding EC burst has
    completed (the 4+4+4 outstanding-category limits make this a finite
    wait), so the only state crossing a switch is architectural —
    memories, decoder configuration, wait-state parameters — which
    [ops.handoff] copies into the next system.  A policy that never
    switches yields exactly one window driven exactly like the pure run,
    which is what pins the degenerate cases bit-for-bit.

    The engine is backend-polymorphic so it can live below [Core]:
    [Core.Runner.run_adaptive] instantiates ['sys] with [Core.System.t]. *)

type stats = {
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
}

type 'sys ops = {
  create : Level.t -> 'sys;  (** fresh system at the window's level *)
  init : 'sys -> unit;  (** user initialisation, first system only *)
  handoff : prev:'sys -> next:'sys -> unit;
      (** copy architectural state across a switch point *)
  run_segment : 'sys -> Ec.Trace.t -> stats;
      (** replay the window's slice of the trace to quiescence and
          report the window's measurements *)
}

type 'sys result = {
  splice : Splice.t;
  last_system : 'sys option;  (** the final window's system, for inspection *)
}

val run :
  ?budget:(Level.t -> float) ->
  ?sink:Obs.Sink.t ->
  ?retire:('sys -> unit) ->
  ops:'sys ops ->
  policy:Policy.t ->
  Ec.Trace.t ->
  'sys result
(** [budget] is passed to {!Splice.splice}.

    [retire] is called on each window's system right after its
    architectural state has been handed off to the next window — the
    hook a session pool uses to reclaim systems mid-run.  The final
    window's system is never retired; it escapes via [last_system].

    When [sink] is given the engine records the window lifecycle on it:
    a [Window_open]/[Window_close] pair per window (the close carries
    the window's beat count and spliced bus energy in pJ), a
    [Level_switch] instant whenever consecutive windows simulate at
    different levels, and one [Energy_sample] per window at its end
    cycle.  Each window runs on a fresh kernel starting at cycle 0, so
    the engine moves the sink's base offset ({!Obs.Sink.set_base}) to
    the window's spliced start before running the segment — bus- and
    master-recorded events land on the global spliced timeline.  The
    base is restored to 0 afterwards. *)

(** A live mixed-level session: the switch controller for runs where the
    traffic is {e generated}, not replayed — e.g. a JCVM interpreter
    pushing hardware-stack operations through a master adapter while the
    sweep is still deciding what happens next.

    Where {!run} owns the systems (one fresh kernel per window), a live
    session owns nothing: the caller keeps {e one} shared kernel with a
    bus front-end per level attached to it, and asks {!Live.next_level}
    before every transaction which front-end to route it through.  The
    session does the policy bookkeeping — window lengths, level
    decisions, per-window measurement diffs — and {!Live.finish} splices
    the windows exactly as the trace engine would.

    Because every level shares the one kernel, all windows already live
    on a single timeline: sink events are recorded at true kernel cycles
    and no {!Obs.Sink.set_base} shifting happens (contrast with {!run}).
    Per-window figures are differences of the [measure] snapshots taken
    when the window opens and closes, so [measure] must report
    {e cumulative} counters for the requested level plus the shared
    global cycle count. *)
module Live : sig
  type t

  val create :
    ?budget:(Level.t -> float) ->
    ?sink:Obs.Sink.t ->
    ?now:(unit -> int) ->
    ?on_close:(Splice.seg -> unit) ->
    policy:Policy.t ->
    measure:(Level.t -> stats) ->
    unit ->
    t
  (** [measure level] must return the cumulative traffic and energy
      counters of [level]'s bus front-end, with [cycles] the shared
      kernel's current cycle (identical whichever level is asked).
      [budget] is passed to {!Splice.splice} at {!finish}.

      [now] is the cheap clock for per-transaction policy observations
      (cycle-window and rate triggers).  Without it the session derives
      the cycle from a full [measure] snapshot on every transaction —
      correct, but [measure] typically sums energy meters, so pass the
      kernel's own counter when the policy is consulted per transaction
      on a hot path.

      [on_close] is invoked with each window's segment the moment the
      window closes — the hook live calibration hangs off: a refined
      window's measured energy re-derives the fast level's lump
      parameters before the next fast window opens. *)

  val next_level : t -> addr:int -> Level.t
  (** Ask which level simulates the next transaction (to [addr]).  May
      close the current window and open a new one first — at a level
      switch once the window has [min_window] transactions, or
      unconditionally at [max_window] (mirroring {!run}'s window
      splitting).  The caller routes the transaction through the
      returned level's front-end before calling again. *)

  val level : t -> Level.t
  (** The level of the currently open window. *)

  val switches : t -> int
  (** Completed adjacent window pairs that changed level. *)

  val windows : t -> int
  (** Windows opened so far, including the currently open one. *)

  val txns : t -> int
  (** Transactions routed so far. *)

  val finish : t -> Splice.t
  (** Close the open window and splice.  Call once, after the last
      transaction has completed on the bus. *)
end
