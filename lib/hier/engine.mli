(** The mixed-level switch controller.

    The engine partitions a transaction trace into windows, asks the
    {!Policy} which level simulates each window, and drives one system
    per window through the backend [ops], splicing the per-window energy
    measurements with {!Splice}.

    Switch points are quiescent by construction: a segment runs until its
    share of the trace has drained {e and} every outstanding EC burst has
    completed (the 4+4+4 outstanding-category limits make this a finite
    wait), so the only state crossing a switch is architectural —
    memories, decoder configuration, wait-state parameters — which
    [ops.handoff] copies into the next system.  A policy that never
    switches yields exactly one window driven exactly like the pure run,
    which is what pins the degenerate cases bit-for-bit.

    The engine is backend-polymorphic so it can live below [Core]:
    [Core.Runner.run_adaptive] instantiates ['sys] with [Core.System.t]. *)

type stats = {
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
}

type 'sys ops = {
  create : Level.t -> 'sys;  (** fresh system at the window's level *)
  init : 'sys -> unit;  (** user initialisation, first system only *)
  handoff : prev:'sys -> next:'sys -> unit;
      (** copy architectural state across a switch point *)
  run_segment : 'sys -> Ec.Trace.t -> stats;
      (** replay the window's slice of the trace to quiescence and
          report the window's measurements *)
}

type 'sys result = {
  splice : Splice.t;
  last_system : 'sys option;  (** the final window's system, for inspection *)
}

val run :
  ?budget:(Level.t -> float) ->
  ?sink:Obs.Sink.t ->
  ops:'sys ops ->
  policy:Policy.t ->
  Ec.Trace.t ->
  'sys result
(** [budget] is passed to {!Splice.splice}.

    When [sink] is given the engine records the window lifecycle on it:
    a [Window_open]/[Window_close] pair per window (the close carries
    the window's beat count and spliced bus energy in pJ), a
    [Level_switch] instant whenever consecutive windows simulate at
    different levels, and one [Energy_sample] per window at its end
    cycle.  Each window runs on a fresh kernel starting at cycle 0, so
    the engine moves the sink's base offset ({!Obs.Sink.set_base}) to
    the window's spliced start before running the segment — bus- and
    master-recorded events land on the global spliced timeline.  The
    base is restored to 0 afterwards. *)
