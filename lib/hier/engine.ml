type stats = {
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
}

type 'sys ops = {
  create : Level.t -> 'sys;
  init : 'sys -> unit;
  handoff : prev:'sys -> next:'sys -> unit;
  run_segment : 'sys -> Ec.Trace.t -> stats;
}

type 'sys result = {
  splice : Splice.t;
  last_system : 'sys option;
}

(* Exclusive end of the window starting at [i], given the level decided
   there.  Address-based decisions are re-evaluated per item (with the
   window-start cycle and rates, the only ones known before simulating);
   cycle- and rate-triggers change decisions only at window boundaries,
   which [max_window] forces often enough to matter. *)
let window_end policy level items i obs =
  let n = Array.length items in
  match (policy : Policy.t) with
  | Policy.Constant _ -> n
  | Policy.Script _ ->
    let j = ref (i + 1) in
    while !j < n && Policy.decide policy (obs !j) = level do
      incr j
    done;
    !j
  | Policy.Triggered { min_window; max_window; _ } ->
    let cap = match max_window with Some m -> min n (i + m) | None -> n in
    let j = ref (i + 1) in
    while
      !j < cap
      && (!j - i < min_window || Policy.decide policy (obs !j) = level)
    do
      incr j
    done;
    min cap (max !j (min n (i + min_window)))

let run ?budget ?sink ~ops ~policy trace =
  let items = Array.of_list trace in
  let n = Array.length items in
  let segs_rev = ref [] in
  let prev_sys = ref None in
  let prev_level = ref None in
  let window = ref 0 in
  let cycle = ref 0 in
  let txns_per_kcycle = ref 0.0 in
  let pj_per_cycle = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let obs j =
      {
        Policy.txn_index = j;
        addr = items.(j).Ec.Trace.txn.Ec.Txn.addr;
        cycle = !cycle;
        txns_per_kcycle = !txns_per_kcycle;
        pj_per_cycle = !pj_per_cycle;
      }
    in
    let level = Policy.decide policy (obs !i) in
    let stop = window_end policy level items !i obs in
    let seg_trace = Array.to_list (Array.sub items !i (stop - !i)) in
    (match sink with
    | None -> ()
    | Some s ->
      (* Every window runs on a fresh kernel from cycle 0; shift its
         events onto the spliced timeline.  Set the base first so the
         window bookkeeping below lands at the window start. *)
      Obs.Sink.set_base s !cycle;
      (match !prev_level with
      | Some prev when prev <> level ->
        Obs.Sink.level_switch s ~cycle:0 ~index:!window
          ~prev:(Level.to_code prev) ~next:(Level.to_code level)
      | Some _ | None -> ());
      Obs.Sink.window_open s ~cycle:0 ~index:!window
        ~level:(Level.to_code level));
    prev_level := Some level;
    let sys = ops.create level in
    (* Quiescence is structural: the previous segment ran until its
       trace drained and all outstanding bursts completed, so the
       architectural state handed off here is the whole state. *)
    (match !prev_sys with
    | None -> ops.init sys
    | Some prev -> ops.handoff ~prev ~next:sys);
    prev_sys := Some sys;
    let st = ops.run_segment sys seg_trace in
    cycle := !cycle + st.cycles;
    (match sink with
    | None -> ()
    | Some s ->
      Obs.Sink.set_base s 0;
      Obs.Sink.window_close s ~cycle:!cycle ~index:!window
        ~level:(Level.to_code level) ~beats:st.beats ~pj:st.bus_pj;
      Obs.Sink.energy_sample s ~cycle:!cycle ~pj:st.bus_pj);
    incr window;
    if st.cycles > 0 then begin
      txns_per_kcycle := float_of_int st.txns *. 1000.0 /. float_of_int st.cycles;
      pj_per_cycle := st.bus_pj /. float_of_int st.cycles
    end;
    segs_rev :=
      {
        Splice.level;
        cycles = st.cycles;
        txns = st.txns;
        beats = st.beats;
        errors = st.errors;
        bus_pj = st.bus_pj;
        component_pj = st.component_pj;
        profile = st.profile;
      }
      :: !segs_rev;
    i := stop
  done;
  { splice = Splice.splice ?budget (List.rev !segs_rev); last_system = !prev_sys }
