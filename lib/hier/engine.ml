type stats = {
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  profile : Power.Profile.t option;
}

type 'sys ops = {
  create : Level.t -> 'sys;
  init : 'sys -> unit;
  handoff : prev:'sys -> next:'sys -> unit;
  run_segment : 'sys -> Ec.Trace.t -> stats;
}

type 'sys result = {
  splice : Splice.t;
  last_system : 'sys option;
}

(* Exclusive end of the window starting at [i], given the level decided
   there.  Address-based decisions are re-evaluated per item (with the
   window-start cycle and rates, the only ones known before simulating);
   cycle- and rate-triggers change decisions only at window boundaries,
   which [max_window] forces often enough to matter. *)
let window_end policy level items i obs =
  let n = Array.length items in
  match (policy : Policy.t) with
  | Policy.Constant _ -> n
  | Policy.Script _ ->
    let j = ref (i + 1) in
    while !j < n && Policy.decide policy (obs !j) = level do
      incr j
    done;
    !j
  | Policy.Triggered { min_window; max_window; _ } ->
    let cap = match max_window with Some m -> min n (i + m) | None -> n in
    let j = ref (i + 1) in
    while
      !j < cap
      && (!j - i < min_window || Policy.decide policy (obs !j) = level)
    do
      incr j
    done;
    min cap (max !j (min n (i + min_window)))

let run ?budget ?sink ?retire ~ops ~policy trace =
  let items = Array.of_list trace in
  let n = Array.length items in
  let segs_rev = ref [] in
  let prev_sys = ref None in
  let prev_level = ref None in
  let window = ref 0 in
  let cycle = ref 0 in
  let txns_per_kcycle = ref 0.0 in
  let pj_per_cycle = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let obs j =
      {
        Policy.txn_index = j;
        addr = items.(j).Ec.Trace.txn.Ec.Txn.addr;
        cycle = !cycle;
        txns_per_kcycle = !txns_per_kcycle;
        pj_per_cycle = !pj_per_cycle;
      }
    in
    let level = Policy.decide policy (obs !i) in
    let stop = window_end policy level items !i obs in
    let seg_trace = Array.to_list (Array.sub items !i (stop - !i)) in
    (match sink with
    | None -> ()
    | Some s ->
      (* Every window runs on a fresh kernel from cycle 0; shift its
         events onto the spliced timeline.  Set the base first so the
         window bookkeeping below lands at the window start. *)
      Obs.Sink.set_base s !cycle;
      (match !prev_level with
      | Some prev when prev <> level ->
        Obs.Sink.level_switch s ~cycle:0 ~index:!window
          ~prev:(Level.to_code prev) ~next:(Level.to_code level)
      | Some _ | None -> ());
      Obs.Sink.window_open s ~cycle:0 ~index:!window
        ~level:(Level.to_code level));
    prev_level := Some level;
    let sys = ops.create level in
    (* Quiescence is structural: the previous segment ran until its
       trace drained and all outstanding bursts completed, so the
       architectural state handed off here is the whole state. *)
    (match !prev_sys with
    | None -> ops.init sys
    | Some prev ->
      ops.handoff ~prev ~next:sys;
      (* The previous window's state has been copied out; its system can
         go back to a session pool. *)
      (match retire with None -> () | Some r -> r prev));
    prev_sys := Some sys;
    let st = ops.run_segment sys seg_trace in
    cycle := !cycle + st.cycles;
    (match sink with
    | None -> ()
    | Some s ->
      Obs.Sink.set_base s 0;
      Obs.Sink.window_close s ~cycle:!cycle ~index:!window
        ~level:(Level.to_code level) ~beats:st.beats ~pj:st.bus_pj;
      Obs.Sink.energy_sample s ~cycle:!cycle ~pj:st.bus_pj);
    incr window;
    if st.cycles > 0 then begin
      txns_per_kcycle := float_of_int st.txns *. 1000.0 /. float_of_int st.cycles;
      pj_per_cycle := st.bus_pj /. float_of_int st.cycles
    end;
    segs_rev :=
      {
        Splice.level;
        cycles = st.cycles;
        txns = st.txns;
        beats = st.beats;
        errors = st.errors;
        bus_pj = st.bus_pj;
        component_pj = st.component_pj;
        profile = st.profile;
      }
      :: !segs_rev;
    i := stop
  done;
  { splice = Splice.splice ?budget (List.rev !segs_rev); last_system = !prev_sys }

module Live = struct
  type t = {
    policy : Policy.t;
    budget : (Level.t -> float) option;
    sink : Obs.Sink.t option;
    measure : Level.t -> stats;
    now : (unit -> int) option;
    on_close : (Splice.seg -> unit) option;
    min_window : int;
    max_window : int;
    mutable started : bool;
    mutable cur_level : Level.t;
    mutable prev_level : Level.t option;
    mutable open_snap : stats;
    mutable win_len : int;
    mutable total_txns : int;
    mutable window : int;
    mutable txns_per_kcycle : float;
    mutable pj_per_cycle : float;
    mutable segs_rev : Splice.seg list;
    mutable switch_count : int;
    needs_cycle : bool;
    mutable decide_win : txn_index:int -> addr:int -> cycle:int -> Level.t;
  }

  let zero_stats =
    {
      cycles = 0;
      txns = 0;
      beats = 0;
      errors = 0;
      bus_pj = 0.0;
      component_pj = 0.0;
      profile = None;
    }

  let diff a b =
    {
      cycles = b.cycles - a.cycles;
      txns = b.txns - a.txns;
      beats = b.beats - a.beats;
      errors = b.errors - a.errors;
      bus_pj = b.bus_pj -. a.bus_pj;
      component_pj = b.component_pj -. a.component_pj;
      profile = None;
    }

  let create ?budget ?sink ?now ?on_close ~policy ~measure () =
    let min_window, max_window =
      match (policy : Policy.t) with
      | Policy.Constant _ -> (max_int, max_int)
      | Policy.Script _ -> (1, max_int)
      | Policy.Triggered { min_window; max_window; _ } ->
        (min_window, Option.value max_window ~default:max_int)
    in
    {
      policy;
      budget;
      sink;
      measure;
      now;
      on_close;
      min_window;
      max_window;
      started = false;
      cur_level = Level.L1;
      prev_level = None;
      open_snap = zero_stats;
      win_len = 0;
      total_txns = 0;
      window = 0;
      txns_per_kcycle = 0.0;
      pj_per_cycle = 0.0;
      segs_rev = [];
      switch_count = 0;
      needs_cycle = Policy.needs_cycle policy;
      decide_win =
        Policy.compile_window policy ~txns_per_kcycle:0.0 ~pj_per_cycle:0.0;
    }

  let close_window t =
    if t.win_len > 0 then begin
      let now = t.measure t.cur_level in
      let d = diff t.open_snap now in
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.window_close s ~cycle:now.cycles ~index:t.window
          ~level:(Level.to_code t.cur_level) ~beats:d.beats ~pj:d.bus_pj;
        Obs.Sink.energy_sample s ~cycle:now.cycles ~pj:d.bus_pj);
      if d.cycles > 0 then begin
        t.txns_per_kcycle <-
          float_of_int d.txns *. 1000.0 /. float_of_int d.cycles;
        t.pj_per_cycle <- d.bus_pj /. float_of_int d.cycles;
        (* Rates feed the rate triggers; recompile the window decision
           function they are baked into. *)
        t.decide_win <-
          Policy.compile_window t.policy ~txns_per_kcycle:t.txns_per_kcycle
            ~pj_per_cycle:t.pj_per_cycle
      end;
      let seg =
        {
          Splice.level = t.cur_level;
          cycles = d.cycles;
          txns = d.txns;
          beats = d.beats;
          errors = d.errors;
          bus_pj = d.bus_pj;
          component_pj = d.component_pj;
          profile = None;
        }
      in
      t.segs_rev <- seg :: t.segs_rev;
      t.window <- t.window + 1;
      t.win_len <- 0;
      match t.on_close with None -> () | Some f -> f seg
    end

  let open_window t level =
    let snap = t.measure level in
    (match t.sink with
    | None -> ()
    | Some s ->
      (match t.prev_level with
      | Some prev when prev <> level ->
        Obs.Sink.level_switch s ~cycle:snap.cycles ~index:t.window
          ~prev:(Level.to_code prev) ~next:(Level.to_code level)
      | Some _ | None -> ());
      Obs.Sink.window_open s ~cycle:snap.cycles ~index:t.window
        ~level:(Level.to_code level));
    (match t.prev_level with
    | Some prev when prev <> level -> t.switch_count <- t.switch_count + 1
    | Some _ | None -> ());
    t.prev_level <- Some level;
    t.cur_level <- level;
    t.open_snap <- snap

  let next_level t ~addr =
    let cycle =
      if (not t.needs_cycle) || not t.started then 0
      else
        match t.now with
        | Some f -> f ()
        | None -> (t.measure t.cur_level).cycles
    in
    let want = t.decide_win ~txn_index:t.total_txns ~addr ~cycle in
    if not t.started then begin
      t.started <- true;
      open_window t want
    end
    else if
      t.win_len >= t.max_window
      || (t.win_len >= t.min_window && want <> t.cur_level)
    then begin
      close_window t;
      open_window t want
    end;
    t.total_txns <- t.total_txns + 1;
    t.win_len <- t.win_len + 1;
    t.cur_level

  let level t = t.cur_level
  let switches t = t.switch_count
  let windows t = t.window + if t.win_len > 0 then 1 else 0
  let txns t = t.total_txns

  let finish t =
    close_window t;
    Splice.splice ?budget:t.budget (List.rev t.segs_rev)
end
