type trigger =
  | Addr_range of { lo : int; hi : int; level : Level.t }
  | Cycle_window of { lo : int; hi : int; level : Level.t }
  | Txn_window of { lo : int; hi : int; level : Level.t }
  | Every of { period : int; length : int; level : Level.t }
  | Txn_rate_above of { txns_per_kcycle : float; level : Level.t }
  | Energy_rate_above of { pj_per_cycle : float; level : Level.t }

type observation = {
  txn_index : int;
  addr : int;
  cycle : int;
  txns_per_kcycle : float;
  pj_per_cycle : float;
}

type t =
  | Constant of Level.t
  | Script of (int * Level.t) list
  | Triggered of {
      base : Level.t;
      triggers : trigger list;
      min_window : int;
      max_window : int option;
    }

let constant level = Constant level

let script segments =
  if segments = [] then invalid_arg "Hier.Policy.script: empty script";
  List.iter
    (fun (n, _) ->
      if n <= 0 then invalid_arg "Hier.Policy.script: non-positive segment")
    segments;
  Script segments

let triggered ?(min_window = 1) ?max_window ~base triggers =
  if min_window < 1 then invalid_arg "Hier.Policy.triggered: min_window < 1";
  (match max_window with
  | Some m when m < min_window ->
    invalid_arg "Hier.Policy.triggered: max_window < min_window"
  | _ -> ());
  Triggered { base; triggers; min_window; max_window }

let trigger_fires obs = function
  | Addr_range { lo; hi; _ } -> obs.addr >= lo && obs.addr < hi
  | Cycle_window { lo; hi; _ } -> obs.cycle >= lo && obs.cycle < hi
  | Txn_window { lo; hi; _ } -> obs.txn_index >= lo && obs.txn_index < hi
  | Every { period; length; _ } -> obs.txn_index mod period < length
  | Txn_rate_above { txns_per_kcycle; _ } ->
    obs.txns_per_kcycle > txns_per_kcycle
  | Energy_rate_above { pj_per_cycle; _ } -> obs.pj_per_cycle > pj_per_cycle

let trigger_level = function
  | Addr_range { level; _ }
  | Cycle_window { level; _ }
  | Txn_window { level; _ }
  | Every { level; _ }
  | Txn_rate_above { level; _ }
  | Energy_rate_above { level; _ } -> level

let script_level segments index =
  let rec walk acc = function
    | [] -> assert false
    | [ (_, level) ] -> level (* past the script end: hold the last level *)
    | (n, level) :: rest ->
      if index < acc + n then level else walk (acc + n) rest
  in
  walk 0 segments

let decide t obs =
  match t with
  | Constant level -> level
  | Script segments -> script_level segments obs.txn_index
  | Triggered { base; triggers; _ } -> (
    match List.find_opt (trigger_fires obs) triggers with
    | Some trig -> trigger_level trig
    | None -> base)

let needs_cycle = function
  | Constant _ | Script _ -> false
  | Triggered { triggers; _ } ->
    List.exists (function Cycle_window _ -> true | _ -> false) triggers

let compile_window t ~txns_per_kcycle ~pj_per_cycle =
  let const level ~txn_index:_ ~addr:_ ~cycle:_ = level in
  match t with
  | Constant level -> const level
  | Script segments ->
    fun ~txn_index ~addr:_ ~cycle:_ -> script_level segments txn_index
  | Triggered { base; triggers; _ } ->
    (* First firing trigger wins, as in [decide].  Rate triggers compare
       against the previous window's rates, so within one window each
       either always fires (a constant decision shadowing the rest of
       the list) or never (dropped). *)
    let rec build = function
      | [] -> const base
      | trigger :: rest -> (
        let tail = build rest in
        match trigger with
        | Addr_range { lo; hi; level } ->
          fun ~txn_index ~addr ~cycle ->
            if addr >= lo && addr < hi then level
            else tail ~txn_index ~addr ~cycle
        | Cycle_window { lo; hi; level } ->
          fun ~txn_index ~addr ~cycle ->
            if cycle >= lo && cycle < hi then level
            else tail ~txn_index ~addr ~cycle
        | Txn_window { lo; hi; level } ->
          fun ~txn_index ~addr ~cycle ->
            if txn_index >= lo && txn_index < hi then level
            else tail ~txn_index ~addr ~cycle
        | Every { period; length; level } ->
          fun ~txn_index ~addr ~cycle ->
            if txn_index mod period < length then level
            else tail ~txn_index ~addr ~cycle
        | Txn_rate_above { txns_per_kcycle = threshold; level } ->
          if txns_per_kcycle > threshold then const level else tail
        | Energy_rate_above { pj_per_cycle = threshold; level } ->
          if pj_per_cycle > threshold then const level else tail)
    in
    build triggers

let to_string = function
  | Constant level -> Printf.sprintf "constant(%s)" (Level.to_string level)
  | Script segments ->
    Printf.sprintf "script(%s)"
      (String.concat ","
         (List.map
            (fun (n, l) -> Printf.sprintf "%dx%s" n (Level.to_string l))
            segments))
  | Triggered { base; triggers; min_window; max_window } ->
    Printf.sprintf "triggered(base=%s, %d triggers, window=%d..%s)"
      (Level.to_string base) (List.length triggers) min_window
      (match max_window with Some m -> string_of_int m | None -> "inf")

let for_exploration ?(warmup = 512) ?(period = 768) ?(refine = 192)
    ?(refine_above = 8.0) ?(min_window = 64) ?(max_window = 512)
    ?(sensitive = []) () =
  if warmup < 0 then invalid_arg "Hier.Policy.for_exploration: warmup < 0";
  if period < 1 then invalid_arg "Hier.Policy.for_exploration: period < 1";
  if refine < 0 || refine > period then
    invalid_arg "Hier.Policy.for_exploration: refine outside [0, period]";
  let refinements =
    List.map
      (fun (lo, hi) -> Addr_range { lo; hi; level = Level.L1 })
      sensitive
    @ (if warmup > 0 then
         [ Txn_window { lo = 0; hi = warmup; level = Level.L1 } ]
       else [])
    @ (if refine > 0 then [ Every { period; length = refine; level = Level.L1 } ]
       else [])
    @ [ Energy_rate_above { pj_per_cycle = refine_above; level = Level.L1 } ]
  in
  triggered ~min_window ~max_window ~base:Level.L2 refinements
