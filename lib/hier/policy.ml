type trigger =
  | Addr_range of { lo : int; hi : int; level : Level.t }
  | Cycle_window of { lo : int; hi : int; level : Level.t }
  | Txn_rate_above of { txns_per_kcycle : float; level : Level.t }
  | Energy_rate_above of { pj_per_cycle : float; level : Level.t }

type observation = {
  txn_index : int;
  addr : int;
  cycle : int;
  txns_per_kcycle : float;
  pj_per_cycle : float;
}

type t =
  | Constant of Level.t
  | Script of (int * Level.t) list
  | Triggered of {
      base : Level.t;
      triggers : trigger list;
      min_window : int;
      max_window : int option;
    }

let constant level = Constant level

let script segments =
  if segments = [] then invalid_arg "Hier.Policy.script: empty script";
  List.iter
    (fun (n, _) ->
      if n <= 0 then invalid_arg "Hier.Policy.script: non-positive segment")
    segments;
  Script segments

let triggered ?(min_window = 1) ?max_window ~base triggers =
  if min_window < 1 then invalid_arg "Hier.Policy.triggered: min_window < 1";
  (match max_window with
  | Some m when m < min_window ->
    invalid_arg "Hier.Policy.triggered: max_window < min_window"
  | _ -> ());
  Triggered { base; triggers; min_window; max_window }

let trigger_fires obs = function
  | Addr_range { lo; hi; _ } -> obs.addr >= lo && obs.addr < hi
  | Cycle_window { lo; hi; _ } -> obs.cycle >= lo && obs.cycle < hi
  | Txn_rate_above { txns_per_kcycle; _ } ->
    obs.txns_per_kcycle > txns_per_kcycle
  | Energy_rate_above { pj_per_cycle; _ } -> obs.pj_per_cycle > pj_per_cycle

let trigger_level = function
  | Addr_range { level; _ }
  | Cycle_window { level; _ }
  | Txn_rate_above { level; _ }
  | Energy_rate_above { level; _ } -> level

let script_level segments index =
  let rec walk acc = function
    | [] -> assert false
    | [ (_, level) ] -> level (* past the script end: hold the last level *)
    | (n, level) :: rest ->
      if index < acc + n then level else walk (acc + n) rest
  in
  walk 0 segments

let decide t obs =
  match t with
  | Constant level -> level
  | Script segments -> script_level segments obs.txn_index
  | Triggered { base; triggers; _ } -> (
    match List.find_opt (trigger_fires obs) triggers with
    | Some trig -> trigger_level trig
    | None -> base)

let to_string = function
  | Constant level -> Printf.sprintf "constant(%s)" (Level.to_string level)
  | Script segments ->
    Printf.sprintf "script(%s)"
      (String.concat ","
         (List.map
            (fun (n, l) -> Printf.sprintf "%dx%s" n (Level.to_string l))
            segments))
  | Triggered { base; triggers; min_window; max_window } ->
    Printf.sprintf "triggered(base=%s, %d triggers, window=%d..%s)"
      (Level.to_string base) (List.length triggers) min_window
      (match max_window with Some m -> string_of_int m | None -> "inf")
