let to_short v =
  let v = v land 0xFFFF in
  if v > 32767 then v - 65536 else v

type t = {
  config : Configs.t;
  data : int array;
  mutable top : int;
  mutable byte_lo_latch : int;  (* W8 push: pending low byte *)
  mutable byte_hi_latch : int;  (* W8 pop: high byte of the popped short *)
  mutable data_latch : int;  (* shared cmd/data organization *)
  mutable underflows : int;
  mutable overflows : int;
  mutable accesses : int;
}

let create ?(capacity = 256) config =
  {
    config;
    data = Array.make capacity 0;
    top = 0;
    byte_lo_latch = 0;
    byte_hi_latch = 0;
    data_latch = 0;
    underflows = 0;
    overflows = 0;
    accesses = 0;
  }

let config t = t.config
let depth t = t.top
let contents t = List.init t.top (fun i -> t.data.(t.top - 1 - i))
let underflows t = t.underflows
let overflows t = t.overflows
let bus_accesses t = t.accesses

let push t v =
  if t.top >= Array.length t.data then t.overflows <- t.overflows + 1
  else begin
    t.data.(t.top) <- to_short v;
    t.top <- t.top + 1
  end

let pop t =
  if t.top = 0 then begin
    t.underflows <- t.underflows + 1;
    0
  end
  else begin
    t.top <- t.top - 1;
    t.data.(t.top)
  end

let peek t = if t.top = 0 then 0 else t.data.(t.top - 1)

(* Register index and byte lane of a bus access. *)
let locate t addr =
  let off = addr - t.config.Configs.base in
  (off / t.config.Configs.stride, off mod t.config.Configs.stride)

let read t ~addr ~width:_ =
  t.accesses <- t.accesses + 1;
  let reg, lane = locate t addr in
  let cfg = t.config in
  if reg = Configs.data_reg then begin
    match cfg.Configs.width, cfg.Configs.reg_org with
    | _, Configs.Shared_cmd_data -> t.data_latch land 0xFFFF
    | Ec.Txn.W8, Configs.Dedicated ->
      if lane = 0 then begin
        (* Reading the low byte pops and latches the high byte. *)
        let v = pop t land 0xFFFF in
        t.byte_hi_latch <- v lsr 8;
        v land 0xFF
      end
      else t.byte_hi_latch
    | Ec.Txn.W16, Configs.Dedicated -> pop t land 0xFFFF
    | Ec.Txn.W32, Configs.Dedicated ->
      if cfg.Configs.packed32 then begin
        if t.top >= 2 then begin
          (* Packed double pop: top short in the low half. *)
          let first = pop t land 0xFFFF in
          let second = pop t land 0xFFFF in
          first lor (second lsl 16)
        end
        else pop t land 0xFFFF
      end
      else pop t land 0xFFFF
  end
  else if reg = Configs.count_reg then t.top
  else if reg = Configs.top_reg then peek t land 0xFFFF
  else 0

let write t ~addr ~width:_ ~value =
  t.accesses <- t.accesses + 1;
  let reg, lane = locate t addr in
  let cfg = t.config in
  if reg = Configs.data_reg then begin
    match cfg.Configs.width, cfg.Configs.reg_org with
    | _, Configs.Shared_cmd_data -> t.data_latch <- value land 0xFFFF
    | Ec.Txn.W8, Configs.Dedicated ->
      if lane = 0 then t.byte_lo_latch <- value land 0xFF
      else push t (((value land 0xFF) lsl 8) lor t.byte_lo_latch)
    | Ec.Txn.W16, Configs.Dedicated -> push t value
    | Ec.Txn.W32, Configs.Dedicated ->
      if cfg.Configs.packed32 then begin
        (* Packed double push: low half first (deeper), high half on top. *)
        push t (value land 0xFFFF);
        push t ((value lsr 16) land 0xFFFF)
      end
      else push t (value land 0xFFFF)
  end
  else if reg = Configs.cmd_reg then begin
    match cfg.Configs.reg_org with
    | Configs.Shared_cmd_data ->
      if value land 0xFF = Configs.cmd_push then push t t.data_latch
      else if value land 0xFF = Configs.cmd_pop then
        t.data_latch <- pop t land 0xFFFF
    | Configs.Dedicated -> ()
  end
  else if reg = Configs.top_reg && cfg.Configs.packed32 then
    (* Single-push register of the packed configuration: only the low
       short enters the stack (used to flush a lone buffered value). *)
    push t (value land 0xFFFF)

let slave t =
  let cfg =
    Ec.Slave_cfg.make ~name:("hwstack:" ^ t.config.Configs.name)
      ~base:t.config.Configs.base
      ~size:(Configs.window_size t.config)
      ()
  in
  Ec.Slave.make ~cfg ~read:(read t) ~write:(write t)

let reset t =
  Array.fill t.data 0 (Array.length t.data) 0;
  t.top <- 0;
  t.byte_lo_latch <- 0;
  t.byte_hi_latch <- 0;
  t.data_latch <- 0;
  t.underflows <- 0;
  t.overflows <- 0;
  t.accesses <- 0
