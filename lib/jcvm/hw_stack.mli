(** The hardware operand stack: an EC bus slave whose special function
    registers expose push/pop to the refined Java Card VM.

    This is the paper's "slave adapter + functional stack model" in one
    unit: bus accesses are decoded according to the interface
    {!Configs.t} and forwarded to an internal stack storage.  Underflow
    and overflow do not raise across the bus; they set sticky status
    counters that the exploration checks afterwards. *)

type t

val create : ?capacity:int -> Configs.t -> t
val config : t -> Configs.t

val slave : t -> Ec.Slave.t
(** Slave with the configuration's SFR window (zero wait states). *)

val depth : t -> int
val contents : t -> int list  (** top first *)

val underflows : t -> int
val overflows : t -> int
val bus_accesses : t -> int

val reset : t -> unit
(** Empties the stack and clears latches and counters, as freshly
    created. *)
