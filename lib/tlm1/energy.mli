(** Layer-1 energy model (paper section 3.3, Figure 5).

    "The power estimation unit is implemented as a dedicated module.  It
    defines for each bus interface signal a member variable for the new
    and old value.  The new values for all signals are set by the
    different bus phases.  The bus process calls the energy calculation
    method after the write phase" — at which point bit transitions are
    recognized and multiplied with the characterized average energy per
    transition per signal.

    Only the EC interface signals are modelled: internal controller nets
    (decoder, select, FSM) and analog effects (slopes, coupling
    combinations) are invisible at this layer, which is precisely the
    systematic error against the gate-level reference. *)

type t

val create : ?record_profile:bool -> Power.Characterization.t -> t

(** Signal-update methods invoked by the bus phases. *)

val drive_addr_phase : t -> Ec.Txn.t -> unit
(** Address, byte enables, AValid/Instr/Write/Burst attributes. *)

val strobe : t -> Ec.Signals.ctrl -> unit
(** Asserts a one-cycle control strobe (ARdy, RdVal, WDRdy, errors,
    BFirst/BLast). *)

val set_avalid : t -> bool -> unit
val drive_rdata : t -> int -> unit
val drive_wdata : t -> int -> unit

val end_cycle : t -> unit
(** The energy calculation method: counts transitions between the old and
    new signal values, accumulates energy, re-arms the strobes. *)

(** The paper's power interface. *)

val energy_last_cycle_pj : t -> float
val energy_since_last_call_pj : t -> float
val total_pj : t -> float
val meter : t -> Power.Meter.t
val transitions_total : t -> int

val reset : t -> unit
(** Old/new signal images, the transition count and the meter back to
    their created state (the per-bit energy tables are immutable).  Any
    attached observer is detached. *)

(** {1 Compilation taps} *)

val set_observer :
  t -> (addr:int -> be:int -> wdata:int -> rdata:int -> ctrl:int -> unit) -> unit
(** Registers a per-cycle delta tap for the trace compiler: on every
    {!end_cycle} the observer receives the old-xor-new transition word of
    each signal group, before the commit.  The taps are pure integers —
    an observed run is bit-identical to an unobserved one. *)

val clear_observer : t -> unit
