(* The four-queue, four-phase structure of the paper's Figure 3: requests
   enter the request queue; the address phase FSM consumes them and passes
   them to the read or write queue; the data phases complete beats and
   deliver finished transactions to the finish store, where the master's
   next interface call picks them up. *)

type addr_state = {
  a_txn : Ec.Txn.t;
  a_slave : Ec.Slave.t;
  a_sel : int;  (* slave select index *)
  mutable a_wait : int;
}

type data_state = {
  d_txn : Ec.Txn.t;
  d_slave : Ec.Slave.t;
  d_sel : int;
  d_wait_states : int;
  mutable d_beat : int;
  mutable d_wait : int;
}

type t = {
  kernel : Sim.Kernel.t;
  sink : Obs.Sink.t option;
  decoder : Ec.Decoder.t;
  energy : Energy.t option;
  request_q : Ec.Txn.t Queue.t;
  read_q : data_state Queue.t;
  write_q : data_state Queue.t;
  finish : (int, Ec.Port.poll) Hashtbl.t;
  mutable addr_cur : addr_state option;
  mutable read_cur : data_state option;
  mutable write_cur : data_state option;
  outstanding : int array;
  mutable completed_txns : int;
  mutable completed_beats : int;
  mutable error_txns : int;
  mutable busy_cycles : int;
}

let cat_index = function
  | Ec.Txn.Cat_instr_read -> 0
  | Ec.Txn.Cat_data_read -> 1
  | Ec.Txn.Cat_write -> 2

let max_outstanding = 4

let with_energy t f = match t.energy with Some e -> f e | None -> ()

let finish_txn t (txn : Ec.Txn.t) outcome =
  let c = cat_index (Ec.Txn.category txn) in
  t.outstanding.(c) <- t.outstanding.(c) - 1;
  Hashtbl.replace t.finish txn.Ec.Txn.id outcome;
  match outcome with
  | Ec.Port.Done ->
    t.completed_txns <- t.completed_txns + 1;
    t.completed_beats <- t.completed_beats + txn.Ec.Txn.burst;
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_finished s ~cycle:(Sim.Kernel.now t.kernel)
        ~id:txn.Ec.Txn.id ~beats:txn.Ec.Txn.burst)
  | Ec.Port.Failed ->
    t.error_txns <- t.error_txns + 1;
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_error s ~cycle:(Sim.Kernel.now t.kernel) ~id:txn.Ec.Txn.id)
  | Ec.Port.Pending -> assert false

(* Phase 2 of the bus process: the address phase finite state machine. *)
let address_phase t =
  let progressed = ref false in
  let complete (st : addr_state) =
    with_energy t (fun e -> Energy.strobe e Ec.Signals.Ardy);
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_granted s ~cycle:(Sim.Kernel.now t.kernel)
        ~id:st.a_txn.Ec.Txn.id ~slave:st.a_sel);
    let cfg = st.a_slave.Ec.Slave.cfg in
    let txn = st.a_txn in
    let data_state wait_states =
      { d_txn = txn; d_slave = st.a_slave; d_sel = st.a_sel;
        d_wait_states = wait_states; d_beat = 0; d_wait = wait_states }
    in
    (match txn.Ec.Txn.dir with
    | Ec.Txn.Read -> Queue.push (data_state cfg.Ec.Slave_cfg.read_wait) t.read_q
    | Ec.Txn.Write ->
      Queue.push (data_state cfg.Ec.Slave_cfg.write_wait) t.write_q);
    t.addr_cur <- None;
    progressed := true
  in
  (* AValid mirrors the address channel: high from request pop through the
     completion cycle, low when the channel idles. *)
  with_energy t (fun e -> Energy.set_avalid e (t.addr_cur <> None));
  (match t.addr_cur with
  | Some st ->
    if st.a_wait > 0 then begin
      st.a_wait <- st.a_wait - 1;
      (match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:st.a_sel);
      progressed := true
    end
    else complete st
  | None -> ());
  if t.addr_cur = None && not !progressed then begin
    match Queue.take_opt t.request_q with
    | None -> ()
    | Some txn -> begin
      progressed := true;
      with_energy t (fun e -> Energy.drive_addr_phase e txn);
      (* Phase 1, getSlaveState: the slave control interface provides the
         address range, wait states and access rights used here. *)
      match Ec.Decoder.check t.decoder txn with
      | Ec.Decoder.Unmapped | Ec.Decoder.Rights_violation _ ->
        with_energy t (fun e ->
            Energy.strobe e Ec.Signals.Ardy;
            Energy.strobe e
              (match txn.Ec.Txn.dir with
              | Ec.Txn.Read -> Ec.Signals.Rberr
              | Ec.Txn.Write -> Ec.Signals.Wberr));
        finish_txn t txn Ec.Port.Failed
      | Ec.Decoder.Mapped (i, slave) ->
        let st =
          { a_txn = txn; a_slave = slave; a_sel = i;
            a_wait = slave.Ec.Slave.cfg.Ec.Slave_cfg.addr_wait }
        in
        (* The pop cycle counts as the first wait cycle (the address
           phase occupies addr_wait + 1 cycles in total). *)
        if st.a_wait = 0 then begin
          t.addr_cur <- Some st;
          complete st
        end
        else begin
          st.a_wait <- st.a_wait - 1;
          t.addr_cur <- Some st
        end
    end
  end;
  !progressed

(* Phase 3: read phase.  One data item (beat) per cycle. *)
let read_phase t =
  if t.read_cur = None then t.read_cur <- Queue.take_opt t.read_q;
  match t.read_cur with
  | None -> false
  | Some st ->
    if st.d_wait > 0 then begin
      st.d_wait <- st.d_wait - 1;
      match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:st.d_sel
    end
    else begin
      let txn = st.d_txn in
      let value = Ec.Slave.read_beat st.d_slave txn st.d_beat in
      Ec.Txn.set_beat txn st.d_beat value;
      with_energy t (fun e ->
          Energy.drive_rdata e value;
          Energy.strobe e Ec.Signals.Rdval;
          if txn.Ec.Txn.burst > 1 then begin
            if st.d_beat = 0 then Energy.strobe e Ec.Signals.Bfirst;
            if st.d_beat = txn.Ec.Txn.burst - 1 then
              Energy.strobe e Ec.Signals.Blast
          end);
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.data_beat s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~beat:st.d_beat ~slave:st.d_sel);
      st.d_beat <- st.d_beat + 1;
      if st.d_beat = txn.Ec.Txn.burst then begin
        finish_txn t txn Ec.Port.Done;
        t.read_cur <- None
      end
      else st.d_wait <- st.d_wait_states
    end;
    true

(* Phase 4: write phase, symmetric to the read phase. *)
let write_phase t =
  if t.write_cur = None then begin
    t.write_cur <- Queue.take_opt t.write_q;
    match t.write_cur with
    | Some st ->
      with_energy t (fun e -> Energy.drive_wdata e st.d_txn.Ec.Txn.data.(0))
    | None -> ()
  end;
  match t.write_cur with
  | None -> false
  | Some st ->
    if st.d_wait > 0 then begin
      st.d_wait <- st.d_wait - 1;
      match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:st.d_sel
    end
    else begin
      let txn = st.d_txn in
      with_energy t (fun e ->
          Energy.drive_wdata e txn.Ec.Txn.data.(st.d_beat);
          Energy.strobe e Ec.Signals.Wdrdy;
          if txn.Ec.Txn.burst > 1 then begin
            if st.d_beat = 0 then Energy.strobe e Ec.Signals.Bfirst;
            if st.d_beat = txn.Ec.Txn.burst - 1 then
              Energy.strobe e Ec.Signals.Blast
          end);
      Ec.Slave.write_beat st.d_slave txn st.d_beat;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.data_beat s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~beat:st.d_beat ~slave:st.d_sel);
      st.d_beat <- st.d_beat + 1;
      if st.d_beat = txn.Ec.Txn.burst then begin
        finish_txn t txn Ec.Port.Done;
        t.write_cur <- None
      end
      else begin
        st.d_wait <- st.d_wait_states;
        with_energy t (fun e ->
            Energy.drive_wdata e txn.Ec.Txn.data.(st.d_beat))
      end
    end;
    true

let bus_process t _kernel =
  let a = address_phase t in
  let r = read_phase t in
  let w = write_phase t in
  if a || r || w then t.busy_cycles <- t.busy_cycles + 1;
  (* "The bus process calls the energy calculation method after the write
     phase.  At this time, all new signal values have been updated." *)
  with_energy t Energy.end_cycle

let create ~kernel ~decoder ?energy ?sink () =
  let t =
    {
      kernel;
      sink;
      decoder;
      energy;
      request_q = Queue.create ();
      read_q = Queue.create ();
      write_q = Queue.create ();
      finish = Hashtbl.create 64;
      addr_cur = None;
      read_cur = None;
      write_cur = None;
      outstanding = Array.make 3 0;
      completed_txns = 0;
      completed_beats = 0;
      error_txns = 0;
      busy_cycles = 0;
    }
  in
  Sim.Kernel.on_falling kernel ~name:"tlm1-bus" (bus_process t);
  t

let port t =
  let try_submit txn =
    let c = cat_index (Ec.Txn.category txn) in
    if t.outstanding.(c) >= max_outstanding then begin
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_rejected s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~cat:c);
      false
    end
    else begin
      t.outstanding.(c) <- t.outstanding.(c) + 1;
      Queue.push txn t.request_q;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_issued s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~cat:c ~queue_depth:(Queue.length t.request_q));
      true
    end
  in
  let poll id =
    match Hashtbl.find_opt t.finish id with
    | None -> Ec.Port.Pending
    | Some outcome -> outcome
  in
  let retire id = Hashtbl.remove t.finish id in
  { Ec.Port.try_submit; poll; retire }

let energy t = t.energy
let decoder t = t.decoder

let busy t =
  t.addr_cur <> None || t.read_cur <> None || t.write_cur <> None
  || not (Queue.is_empty t.request_q)
  || not (Queue.is_empty t.read_q)
  || not (Queue.is_empty t.write_q)

let completed_txns t = t.completed_txns
let completed_beats t = t.completed_beats
let error_txns t = t.error_txns
let busy_cycles t = t.busy_cycles

let queue_depths t =
  (Queue.length t.request_q, Queue.length t.read_q, Queue.length t.write_q)

let reset t =
  Queue.clear t.request_q;
  Queue.clear t.read_q;
  Queue.clear t.write_q;
  Hashtbl.reset t.finish;
  t.addr_cur <- None;
  t.read_cur <- None;
  t.write_cur <- None;
  Array.fill t.outstanding 0 3 0;
  t.completed_txns <- 0;
  t.completed_beats <- 0;
  t.error_txns <- 0;
  t.busy_cycles <- 0;
  with_energy t Energy.reset
