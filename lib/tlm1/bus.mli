(** EC bus model at transaction level layer 1 (paper section 3.1).

    Cycle-accurate ("transfer layer"): the bus process runs on every clock
    edge in four phases — slave state query, address phase FSM, read
    phase, write phase — moving requests through the internal request,
    read, write and finish queues.  Master and slave interfaces are
    non-blocking; a transaction transports one data item per interface
    call.  The optional layer-1 {!Energy} model is updated by the phases
    and closed after the write phase, exactly as in the paper's Figure 5.

    The timing realized here is the micro-protocol of DESIGN.md section 3;
    it must agree cycle-for-cycle with {!Rtl.Bus} (Table 1's 0% error),
    which the test suite checks on random traffic. *)

type t

val create :
  kernel:Sim.Kernel.t ->
  decoder:Ec.Decoder.t ->
  ?energy:Energy.t ->
  ?sink:Obs.Sink.t ->
  unit ->
  t
(** Registers the bus process with [kernel].  When [energy] is omitted the
    model runs without estimation (the faster configuration of Table 3).
    [sink] attaches lifecycle/stall/occupancy instrumentation; estimation
    results are bit-identical with or without it. *)

val port : t -> Ec.Port.t
val energy : t -> Energy.t option
val decoder : t -> Ec.Decoder.t

val busy : t -> bool
val completed_txns : t -> int
val completed_beats : t -> int
val error_txns : t -> int
val busy_cycles : t -> int

val queue_depths : t -> int * int * int
(** Current (request, read, write) queue depths, for structural tests. *)

val reset : t -> unit
(** Queues, in-flight phases, outstanding counters, completion store,
    traffic counters and the attached energy model back to the freshly
    created state; the kernel registration and decoder are kept so the
    session can be reused. *)
