type t = {
  (* Old (committed) and new values per signal group; control signals are
     packed into one bit set ordered like Ec.Signals.all_ctrl. *)
  mutable old_addr : int;
  mutable new_addr : int;
  mutable old_be : int;
  mutable new_be : int;
  mutable old_wdata : int;
  mutable new_wdata : int;
  mutable old_rdata : int;
  mutable new_rdata : int;
  mutable old_ctrl : int;
  mutable new_ctrl : int;
  (* Energy per transition per bit, precomputed from the table. *)
  addr_pj : float array;
  be_pj : float array;
  wdata_pj : float array;
  rdata_pj : float array;
  ctrl_pj : float array;
  meter : Power.Meter.t;
  (* The meter's unboxed in-cycle accumulator plus a scratch cell for the
     per-group energy fold: mutable float fields or cross-module float
     calls would box on every store in the per-cycle path. *)
  meter_acc : float array;
  scratch : float array;
  mutable transitions : int;
  (* Per-cycle delta observer for the trace compiler: called once per
     [end_cycle] with the old-xor-new word of every signal group, before
     the commit.  Pure integer taps — the float path is untouched, so an
     observed run stays bit-identical to an unobserved one. *)
  mutable observer :
    (addr:int -> be:int -> wdata:int -> rdata:int -> ctrl:int -> unit) option;
}

let ctrl_bit c =
  let rec loop i = function
    | [] -> assert false
    | c' :: rest -> if c = c' then i else loop (i + 1) rest
  in
  loop 0 Ec.Signals.all_ctrl

let create ?(record_profile = false) table =
  let per id = Power.Characterization.energy_per_transition table id in
  let meter = Power.Meter.create ~record_profile () in
  {
    old_addr = 0;
    new_addr = 0;
    old_be = 0;
    new_be = 0;
    old_wdata = 0;
    new_wdata = 0;
    old_rdata = 0;
    new_rdata = 0;
    old_ctrl = 0;
    new_ctrl = 0;
    addr_pj = Array.init Ec.Signals.addr_wires (fun i -> per (Ec.Signals.Addr i));
    be_pj = Array.init Ec.Signals.be_wires (fun i -> per (Ec.Signals.Be i));
    wdata_pj = Array.init Ec.Signals.data_wires (fun i -> per (Ec.Signals.Wdata i));
    rdata_pj = Array.init Ec.Signals.data_wires (fun i -> per (Ec.Signals.Rdata i));
    ctrl_pj = Array.of_list (List.map (fun c -> per (Ec.Signals.Ctrl c)) Ec.Signals.all_ctrl);
    meter;
    meter_acc = Power.Meter.in_cycle_acc meter;
    scratch = Array.make 1 0.0;
    transitions = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None

let set_ctrl_bit t c v =
  let bit = 1 lsl ctrl_bit c in
  if v then t.new_ctrl <- t.new_ctrl lor bit
  else t.new_ctrl <- t.new_ctrl land lnot bit

let drive_addr_phase t (txn : Ec.Txn.t) =
  t.new_addr <- txn.Ec.Txn.addr lsr 2;
  t.new_be <- Ec.Txn.byte_enables txn 0;
  set_ctrl_bit t Ec.Signals.Avalid true;
  set_ctrl_bit t Ec.Signals.Instr (txn.Ec.Txn.kind = Ec.Txn.Instruction);
  set_ctrl_bit t Ec.Signals.Write (txn.Ec.Txn.dir = Ec.Txn.Write);
  set_ctrl_bit t Ec.Signals.Burst (txn.Ec.Txn.burst > 1)

let strobe t c = set_ctrl_bit t c true
let set_avalid t v = set_ctrl_bit t Ec.Signals.Avalid v
let drive_rdata t v = t.new_rdata <- v land 0xFFFFFFFF
let drive_wdata t v = t.new_wdata <- v land 0xFFFFFFFF

(* Top-level with the energy accumulated into a scratch float array cell:
   a local [let rec] with a float accumulator would allocate a closure and
   box the float on every recursive call.  Addition order (ascending bit,
   fold from 0.0 per group) matches the original exactly. *)
let rec scan_bits per_bit scratch bits i n =
  if bits = 0 then n
  else begin
    let n =
      if bits land 1 = 1 then begin
        Array.unsafe_set scratch 0
          (Array.unsafe_get scratch 0 +. Array.unsafe_get per_bit i);
        n + 1
      end
      else n
    in
    scan_bits per_bit scratch (bits lsr 1) (i + 1) n
  end

(* Energy of the toggled bits of one signal group. *)
let group_energy t changed per_bit =
  if changed = 0 then 0.0
  else begin
    t.scratch.(0) <- 0.0;
    let n = scan_bits per_bit t.scratch changed 0 0 in
    t.transitions <- t.transitions + n;
    t.scratch.(0)
  end

let strobes_mask =
  List.fold_left
    (fun acc c -> acc lor (1 lsl ctrl_bit c))
    0
    [ Ec.Signals.Ardy; Ec.Signals.Rdval; Ec.Signals.Wdrdy; Ec.Signals.Rberr;
      Ec.Signals.Wberr; Ec.Signals.Bfirst; Ec.Signals.Blast ]

let end_cycle t =
  (match t.observer with
  | None -> ()
  | Some f ->
    f
      ~addr:(t.old_addr lxor t.new_addr)
      ~be:(t.old_be lxor t.new_be)
      ~wdata:(t.old_wdata lxor t.new_wdata)
      ~rdata:(t.old_rdata lxor t.new_rdata)
      ~ctrl:(t.old_ctrl lxor t.new_ctrl));
  let pj =
    group_energy t (t.old_addr lxor t.new_addr) t.addr_pj
    +. group_energy t (t.old_be lxor t.new_be) t.be_pj
    +. group_energy t (t.old_wdata lxor t.new_wdata) t.wdata_pj
    +. group_energy t (t.old_rdata lxor t.new_rdata) t.rdata_pj
    +. group_energy t (t.old_ctrl lxor t.new_ctrl) t.ctrl_pj
  in
  Array.unsafe_set t.meter_acc 0 (Array.unsafe_get t.meter_acc 0 +. pj);
  Power.Meter.end_cycle t.meter;
  t.old_addr <- t.new_addr;
  t.old_be <- t.new_be;
  t.old_wdata <- t.new_wdata;
  t.old_rdata <- t.new_rdata;
  t.old_ctrl <- t.new_ctrl;
  (* One-cycle strobes fall back to zero unless re-asserted next cycle. *)
  t.new_ctrl <- t.new_ctrl land lnot strobes_mask

let reset t =
  t.old_addr <- 0;
  t.new_addr <- 0;
  t.old_be <- 0;
  t.new_be <- 0;
  t.old_wdata <- 0;
  t.new_wdata <- 0;
  t.old_rdata <- 0;
  t.new_rdata <- 0;
  t.old_ctrl <- 0;
  t.new_ctrl <- 0;
  t.scratch.(0) <- 0.0;
  t.transitions <- 0;
  t.observer <- None;
  Power.Meter.reset t.meter

let energy_last_cycle_pj t = Power.Meter.last_cycle_pj t.meter
let energy_since_last_call_pj t = Power.Meter.since_last_call_pj t.meter
let total_pj t = Power.Meter.total_pj t.meter
let meter t = t.meter
let transitions_total t = t.transitions
