(** Compiled trace plans (DESIGN.md section 14).

    A plan is the one-shot residue of an interpreted replay: slave
    routing ({!Ec.Decoder}), wait-state schedules ({!Ec.Timing},
    {!Ec.Slave_cfg}) and burst decisions have already been played out by
    the bus model, and the plan keeps the flat integer record of what
    the energy estimator saw — per-cycle transition words at layer 1,
    the lump event stream at layer 2 — plus the table-independent scalar
    results of the run.  {!Eval} sweeps a plan under any number of
    parameter points without a kernel, queues or slave calls. *)

type meta = {
  level : [ `L1 | `L2 ];
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  transitions : int;  (** layer 1 only; 0 at layer 2, as interpreted *)
  component_pj : float;
      (** platform component energy of the run — independent of the
          characterization table, so captured once at compile time *)
}

(** Layer-1 body: sparse parallel arrays, one entry per cycle with at
    least one signal transition.  Quiet cycles dissipate exactly 0.0 pJ
    in the interpreted model, so eliding them keeps totals bit-exact. *)
type l1_data = {
  d_cycle : int array;  (** ascending cycle index of each entry *)
  d_addr : int array;  (** old [lxor] new, per signal group *)
  d_be : int array;
  d_wdata : int array;
  d_rdata : int array;
  d_ctrl : int array;
}

(** Layer-2 body: the lump event stream, cycle-adjacent so the evaluator
    reproduces the meter's cycle grouping exactly.  Data lumps carry the
    burst shape and exact inter-beat Hamming distances. *)
type l2_data = {
  ev_cycle : int array;
  ev_kind : int array;  (** 0 = address lump, 1 = data lump *)
  ev_dir : int array;  (** 0 = read, 1 = write *)
  ev_burst : int array;
  ev_pop_off : int array;  (** start of this event's run in [pops] *)
  pops : int array;  (** burst-1 inter-beat popcounts per data lump *)
}

type body = L1 of l1_data | L2 of l2_data
type t = { meta : meta; body : body }

val meta : t -> meta
val make : meta:meta -> body:body -> t

(** {1 Recorders}

    Attach {!l1_observe} as a {!Tlm1.Energy.set_observer} tap (or
    {!l2_observe} as a {!Tlm2.Energy.set_observer} tap), run the
    workload once interpreted, then take the finished body. *)

type l1_recorder

val l1_recorder : unit -> l1_recorder

val l1_observe :
  l1_recorder ->
  addr:int -> be:int -> wdata:int -> rdata:int -> ctrl:int -> unit

val l1_finish : l1_recorder -> body

type l2_recorder

val l2_recorder : unit -> l2_recorder
val l2_observe : l2_recorder -> Tlm2.Energy.event -> unit
val l2_finish : l2_recorder -> body

(** {1 Fabric plans (DESIGN.md section 18)}

    A fabric plan extends the single-bus plan with the
    arbitration-resolved residue of a multi-master run: the near (and,
    bridged, far) bus bodies recorded by the buses' own energy
    observers, plus one integer {e op stream} per master replaying the
    exact order of that master's bucket adds — bridge crossings (the
    burst length) and sampled closed bus cycles (the cycle index into
    the body).  The schedule is parameter-independent once the workload,
    arbiter policy and topology are fixed, so one recording pass serves
    every characterization table ({!Eval.eval_fabric_multi}). *)

val op_near : int
(** Op kinds of the stream: a sampled near-bus cycle (arg = closed cycle
    index), a sampled far-bus cycle, an accepted bridge crossing (arg =
    burst beats). *)

val op_far : int
val op_cross : int

type fabric_meta = {
  f_masters : int;
  f_cycles : int;
  f_txns : int array;  (** per master, as the fabric counters report *)
  f_beats : int array;
  f_errors : int array;
  f_grants : int array;
  f_crossings : int;
  f_cross_pj_per_beat : float;
      (** topology configuration captured at compile time — not a swept
          parameter *)
  f_component_pj : float;
}

type fabric = {
  f_meta : fabric_meta;
  near : t;
  far_plan : t option;
  op_kind : int array;  (** per-master streams, concatenated *)
  op_arg : int array;
  op_off : int array;  (** [f_masters + 1] offsets into the streams *)
  cross_bursts : int array;
      (** all crossings in global acceptance order — the fold behind the
          interpreted [bridge_pj] total *)
}

type fabric_recorder

val fabric_recorder : masters:int -> fabric_recorder

val fabric_observer : fabric_recorder -> Ec.Fabric.observer
(** The {!Ec.Fabric.set_observer} tap feeding the recorder; attach it
    together with the bus energy observers for one interpreted pass. *)

val fabric_finish :
  fabric_recorder -> meta:fabric_meta -> near:t -> far_plan:t option -> fabric
