(* Multi-point plan evaluation (DESIGN.md section 14).

   A lane is one parameter point — a characterization table at layer 1,
   a table plus lump parameters at layer 2.  The evaluator decodes the
   plan's transition words once per pass and folds every lane's energy
   off the shared decode, so N points cost one walk of the plan instead
   of N interpreted replays.

   Bit-exactness contract: for each lane, every float operation happens
   in exactly the order the interpreted estimator performs it — per-bit
   sums ascend from bit 0, signal groups add left-associatively in
   addr/be/wdata/rdata/ctrl order, lumps of one cycle group into the
   meter's in-cycle accumulator before joining the total.  Elided quiet
   cycles add a literal 0.0 in the interpreted model, a float identity
   for the non-negative energies involved. *)

type point = {
  table : Power.Characterization.t;
  l2_params : Tlm2.Energy.params option;
      (** layer-2 lanes only; [None] means {!Tlm2.Energy.default_params},
          exactly as an interpreted run without [?l2_params] *)
}

type outcome = { bus_pj : float; profile : Power.Profile.t option }

(* --- layer 1 lanes: per-bit pJ arrays, as Tlm1.Energy builds them ---- *)

type l1_lane = {
  a_pj : float array;
  b_pj : float array;
  w_pj : float array;
  r_pj : float array;
  c_pj : float array;
}

let l1_lane table =
  let per id = Power.Characterization.energy_per_transition table id in
  {
    a_pj = Array.init Ec.Signals.addr_wires (fun i -> per (Ec.Signals.Addr i));
    b_pj = Array.init Ec.Signals.be_wires (fun i -> per (Ec.Signals.Be i));
    w_pj = Array.init Ec.Signals.data_wires (fun i -> per (Ec.Signals.Wdata i));
    r_pj = Array.init Ec.Signals.data_wires (fun i -> per (Ec.Signals.Rdata i));
    c_pj =
      Array.of_list
        (List.map (fun c -> per (Ec.Signals.Ctrl c)) Ec.Signals.all_ctrl);
  }

(* --- layer 2 lanes: parameters plus the cached averages --------------- *)

type l2_lane = {
  p : Tlm2.Energy.params;
  avg_wdata : float;
  avg_rdata : float;
  avg_ctrl : float;
  addr_lump : float;  (* the address-phase lump is lane-constant *)
}

let l2_lane table params =
  let avg_addr = Power.Characterization.avg_addr_bit table in
  let avg_be = Power.Characterization.avg_be_bit table in
  let avg_ctrl = Power.Characterization.avg_ctrl_bit table in
  {
    p = params;
    avg_wdata = Power.Characterization.avg_wdata_bit table;
    avg_rdata = Power.Characterization.avg_rdata_bit table;
    avg_ctrl;
    addr_lump =
      (params.Tlm2.Energy.boundary_addr_toggles *. avg_addr)
      +. (params.Tlm2.Energy.attr_toggles *. avg_be)
      +. (3.0 *. params.Tlm2.Energy.attr_toggles *. avg_ctrl)
      +. (2.0 *. params.Tlm2.Energy.strobe_pulses_per_phase *. avg_ctrl);
  }

(* --- evaluation ------------------------------------------------------- *)

let finish totals profs l =
  {
    bus_pj = totals.(l);
    profile =
      (match profs with
      | None -> None
      | Some ps ->
        let p = Power.Profile.create () in
        Array.iter (Power.Profile.push p) ps.(l);
        Some p);
  }

(* Both body evaluators share one shape: walk the plan once, fold each
   lane's totals, and optionally keep the per-cycle energies in a dense
   array (cycle index -> that cycle's pJ, 0.0 for elided quiet cycles).
   The dense array doubles as the per-cycle profile and as the lookup
   table fabric op streams sample from. *)

let eval_l1 (meta : Plan.meta) (d : Plan.l1_data) lanes ~dense =
  let k = Array.length lanes in
  let totals = Array.make k 0.0 in
  let profs =
    if dense then
      Some (Array.init k (fun _ -> Array.make meta.Plan.cycles 0.0))
    else None
  in
  let n = Array.length d.Plan.d_cycle in
  (* Shared decode: the set-bit positions of one group's transition word,
     found once and reused by every lane. *)
  let idx = Array.make Ec.Signals.addr_wires 0 in
  let pj = Array.make k 0.0 in
  let group w sel =
    if w <> 0 then begin
      let m = ref 0 and bits = ref w and i = ref 0 in
      while !bits <> 0 do
        if !bits land 1 = 1 then begin
          idx.(!m) <- !i;
          incr m
        end;
        bits := !bits lsr 1;
        incr i
      done;
      for l = 0 to k - 1 do
        let arr = sel lanes.(l) in
        let s = ref 0.0 in
        for j = 0 to !m - 1 do
          s := !s +. Array.unsafe_get arr (Array.unsafe_get idx j)
        done;
        pj.(l) <- pj.(l) +. !s
      done
    end
  in
  for e = 0 to n - 1 do
    Array.fill pj 0 k 0.0;
    group d.Plan.d_addr.(e) (fun l -> l.a_pj);
    group d.Plan.d_be.(e) (fun l -> l.b_pj);
    group d.Plan.d_wdata.(e) (fun l -> l.w_pj);
    group d.Plan.d_rdata.(e) (fun l -> l.r_pj);
    group d.Plan.d_ctrl.(e) (fun l -> l.c_pj);
    let c = d.Plan.d_cycle.(e) in
    for l = 0 to k - 1 do
      totals.(l) <- totals.(l) +. pj.(l);
      match profs with Some ps -> ps.(l).(c) <- pj.(l) | None -> ()
    done
  done;
  (totals, profs)

let eval_l2 (meta : Plan.meta) (d : Plan.l2_data) lanes ~dense =
  let k = Array.length lanes in
  let totals = Array.make k 0.0 in
  let profs =
    if dense then
      Some (Array.init k (fun _ -> Array.make meta.Plan.cycles 0.0))
    else None
  in
  let n = Array.length d.Plan.ev_cycle in
  let cur = Array.make k 0.0 in
  let i = ref 0 in
  while !i < n do
    let c = d.Plan.ev_cycle.(!i) in
    Array.fill cur 0 k 0.0;
    while !i < n && d.Plan.ev_cycle.(!i) = c do
      let e = !i in
      if d.Plan.ev_kind.(e) = 0 then
        for l = 0 to k - 1 do
          cur.(l) <- cur.(l) +. lanes.(l).addr_lump
        done
      else begin
        let burst = d.Plan.ev_burst.(e) in
        let off = d.Plan.ev_pop_off.(e) in
        let dir = d.Plan.ev_dir.(e) in
        for l = 0 to k - 1 do
          let ln = lanes.(l) in
          let toggles = ref ln.p.Tlm2.Energy.boundary_data_toggles in
          for j = 0 to burst - 2 do
            toggles := !toggles +. float_of_int d.Plan.pops.(off + j)
          done;
          let strobes =
            ln.p.Tlm2.Energy.strobe_pulses_per_beat *. float_of_int burst
            +. (if burst > 1 then 4.0 else 0.0)
          in
          let avg_bit = if dir = 0 then ln.avg_rdata else ln.avg_wdata in
          cur.(l) <- cur.(l) +. ((!toggles *. avg_bit) +. (strobes *. ln.avg_ctrl))
        done
      end;
      incr i
    done;
    for l = 0 to k - 1 do
      totals.(l) <- totals.(l) +. cur.(l);
      match profs with Some ps -> ps.(l).(c) <- cur.(l) | None -> ()
    done
  done;
  (totals, profs)

(* One pass over a body plan: per-lane totals, plus the dense per-cycle
   energies when asked for. *)
let eval_raw plan ~points ~dense =
  match plan.Plan.body with
  | Plan.L1 d ->
    let lanes =
      Array.of_list (List.map (fun pt -> l1_lane pt.table) points)
    in
    eval_l1 plan.Plan.meta d lanes ~dense
  | Plan.L2 d ->
    let lanes =
      Array.of_list
        (List.map
           (fun pt ->
             l2_lane pt.table
               (Option.value pt.l2_params
                  ~default:Tlm2.Energy.default_params))
           points)
    in
    eval_l2 plan.Plan.meta d lanes ~dense

let eval_multi ?(record_profile = false) plan ~points =
  if points = [] then []
  else
    let totals, profs = eval_raw plan ~points ~dense:record_profile in
    List.init (List.length points) (finish totals profs)

let eval ?(record_profile = false) ?l2_params ~table plan =
  match eval_multi ~record_profile plan ~points:[ { table; l2_params } ] with
  | [ o ] -> o
  | _ -> assert false

(* --- fabric plans (DESIGN.md section 18) ------------------------------ *)

type fabric_outcome = {
  buckets : float array;
  fabric_pj : float;
  near_bus_pj : float;
  far_bus_pj : float;
  fabric_bridge_pj : float;
}

(* Per-master buckets replayed off the op streams.  Bit-exactness: each
   op adds exactly the float the interpreted fabric added, in the same
   per-master order — a crossing adds [cross_pj_per_beat *. burst], a
   sample adds the dense per-cycle energy of the sampled bus cycle
   (0.0 for a cycle the body elided, exactly what the interpreted tap
   read from the meter).  The fabric total is the bucket sum in index
   order and [bridge_pj] refolds the global crossing order, both as the
   interpreted accessors compute them. *)
let eval_fabric_multi (f : Plan.fabric) ~points =
  if points = [] then []
  else begin
    let k = List.length points in
    let m = f.Plan.f_meta in
    let near_totals, near_dense =
      eval_raw f.Plan.near ~points ~dense:true
    in
    let near_dense = Option.get near_dense in
    let far_totals, far_dense =
      match f.Plan.far_plan with
      | Some p ->
        let t, d = eval_raw p ~points ~dense:true in
        (t, Option.get d)
      | None -> (Array.make k 0.0, Array.make k [||])
    in
    let cross = m.Plan.f_cross_pj_per_beat in
    let bridge_pj =
      Array.fold_left
        (fun acc burst -> acc +. (cross *. float_of_int burst))
        0.0 f.Plan.cross_bursts
    in
    List.init k (fun l ->
        let near_c = near_dense.(l) and far_c = far_dense.(l) in
        let buckets = Array.make m.Plan.f_masters 0.0 in
        for mi = 0 to m.Plan.f_masters - 1 do
          let acc = ref 0.0 in
          for i = f.Plan.op_off.(mi) to f.Plan.op_off.(mi + 1) - 1 do
            let arg = Array.unsafe_get f.Plan.op_arg i in
            let kind = Array.unsafe_get f.Plan.op_kind i in
            if kind = Plan.op_near then
              acc := !acc +. Array.unsafe_get near_c arg
            else if kind = Plan.op_far then
              acc := !acc +. Array.unsafe_get far_c arg
            else acc := !acc +. (cross *. float_of_int arg)
          done;
          buckets.(mi) <- !acc
        done;
        let fabric_pj = Array.fold_left ( +. ) 0.0 buckets in
        {
          buckets;
          fabric_pj;
          near_bus_pj = near_totals.(l);
          far_bus_pj = far_totals.(l);
          fabric_bridge_pj = bridge_pj;
        })
  end

let eval_fabric ?l2_params ~table f =
  match eval_fabric_multi f ~points:[ { table; l2_params } ] with
  | [ o ] -> o
  | _ -> assert false
