(** Multi-point evaluation of compiled trace plans (DESIGN.md §14).

    A {!point} is one parameter point of the exploration space — a
    characterization table at layer 1, a table plus lump parameters at
    layer 2.  {!eval_multi} decodes the plan's transition words once and
    folds every point's energy off the shared decode, so N points cost
    one walk of the plan instead of N interpreted replays.

    Bit-exactness: for each point, every float operation happens in the
    order the interpreted estimator performs it (per-bit sums ascend
    from bit 0; groups add in addr/be/wdata/rdata/ctrl order; one
    cycle's lumps group before joining the total), so the returned
    energy — and the per-cycle profile, when requested — equals the
    interpreted figure bit for bit. *)

type point = {
  table : Power.Characterization.t;
  l2_params : Tlm2.Energy.params option;
      (** layer-2 plans only; [None] means {!Tlm2.Energy.default_params},
          exactly as an interpreted run without [?l2_params] *)
}

type outcome = { bus_pj : float; profile : Power.Profile.t option }

val eval_multi :
  ?record_profile:bool -> Plan.t -> points:point list -> outcome list
(** One pass over the plan, one outcome per point, in order. *)

val eval :
  ?record_profile:bool ->
  ?l2_params:Tlm2.Energy.params ->
  table:Power.Characterization.t ->
  Plan.t ->
  outcome
(** Single-point convenience; identical to a one-element {!eval_multi}. *)

(** {1 Fabric plans (DESIGN.md §18)} *)

type fabric_outcome = {
  buckets : float array;  (** per-master attributed energy, pJ *)
  fabric_pj : float;
      (** bucket sum in index order — the interpreted
          {!Ec.Fabric.total_pj} *)
  near_bus_pj : float;  (** the near bus meter's total *)
  far_bus_pj : float;  (** the far bus meter's total; 0.0 unbridged *)
  fabric_bridge_pj : float;
      (** crossing energy in global acceptance order — the interpreted
          {!Ec.Fabric.bridge_pj}; already inside the buckets *)
}

val eval_fabric_multi :
  Plan.fabric -> points:point list -> fabric_outcome list
(** One walk of the fabric plan per bus body, one outcome per point, in
    order.  Each master's bucket replays that master's op stream — the
    exact float-add order of the interpreted fabric — off dense per-cycle
    energies evaluated from the shared decode, so buckets, totals and
    bridge energy are bit-identical to an interpreted run at each
    point. *)

val eval_fabric :
  ?l2_params:Tlm2.Energy.params ->
  table:Power.Characterization.t ->
  Plan.fabric ->
  fabric_outcome
(** Single-point convenience over {!eval_fabric_multi}. *)
