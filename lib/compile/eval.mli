(** Multi-point evaluation of compiled trace plans (DESIGN.md §14).

    A {!point} is one parameter point of the exploration space — a
    characterization table at layer 1, a table plus lump parameters at
    layer 2.  {!eval_multi} decodes the plan's transition words once and
    folds every point's energy off the shared decode, so N points cost
    one walk of the plan instead of N interpreted replays.

    Bit-exactness: for each point, every float operation happens in the
    order the interpreted estimator performs it (per-bit sums ascend
    from bit 0; groups add in addr/be/wdata/rdata/ctrl order; one
    cycle's lumps group before joining the total), so the returned
    energy — and the per-cycle profile, when requested — equals the
    interpreted figure bit for bit. *)

type point = {
  table : Power.Characterization.t;
  l2_params : Tlm2.Energy.params option;
      (** layer-2 plans only; [None] means {!Tlm2.Energy.default_params},
          exactly as an interpreted run without [?l2_params] *)
}

type outcome = { bus_pj : float; profile : Power.Profile.t option }

val eval_multi :
  ?record_profile:bool -> Plan.t -> points:point list -> outcome list
(** One pass over the plan, one outcome per point, in order. *)

val eval :
  ?record_profile:bool ->
  ?l2_params:Tlm2.Energy.params ->
  table:Power.Characterization.t ->
  Plan.t ->
  outcome
(** Single-point convenience; identical to a one-element {!eval_multi}. *)
