(* Compiled trace plans (DESIGN.md section 14).

   A plan is the one-shot residue of an interpreted replay: routing,
   wait-state schedules and burst decisions have already been played out
   by the bus model, and what remains is the flat integer record of what
   the energy estimator would see — per-cycle signal transition words at
   layer 1, the lump event stream at layer 2 — plus the table-independent
   scalar results of the run.  Re-evaluating a plan under a new
   characterization table or parameter point is then a branch-free array
   sweep (see Eval), with no kernel, queues or slave calls involved. *)

module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let to_array v = Array.sub v.a 0 v.n
end

type meta = {
  level : [ `L1 | `L2 ];
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  transitions : int;  (** layer 1 only; 0 at layer 2, as interpreted *)
  component_pj : float;
      (** platform component energy of the run — independent of the
          characterization table, so captured once at compile time *)
}

(* Layer 1: sparse parallel arrays, one entry per cycle with at least one
   signal transition.  Quiet cycles contribute exactly 0.0 pJ in the
   interpreted model, so eliding them preserves bit-exact totals. *)
type l1_data = {
  d_cycle : int array;  (* ascending cycle index of each entry *)
  d_addr : int array;  (* old lxor new, per group *)
  d_be : int array;
  d_wdata : int array;
  d_rdata : int array;
  d_ctrl : int array;
}

(* Layer 2: the lump event stream.  Address lumps depend only on the
   parameter point; data lumps additionally carry the burst shape and
   the exact inter-beat Hamming distances (flattened into [pops]).
   Events of one cycle stay adjacent so the evaluator can reproduce the
   meter's cycle grouping exactly. *)
type l2_data = {
  ev_cycle : int array;
  ev_kind : int array;  (* 0 = address lump, 1 = data lump *)
  ev_dir : int array;  (* 0 = read, 1 = write *)
  ev_burst : int array;
  ev_pop_off : int array;  (* start of this event's run in [pops] *)
  pops : int array;  (* burst-1 inter-beat popcounts per data lump *)
}

type body = L1 of l1_data | L2 of l2_data
type t = { meta : meta; body : body }

let meta t = t.meta
let make ~meta ~body = { meta; body }

(* --- recorders: what the energy-model observers feed ------------------ *)

type l1_recorder = {
  mutable l1_cycle : int;
  r_cycle : Ivec.t;
  r_addr : Ivec.t;
  r_be : Ivec.t;
  r_wdata : Ivec.t;
  r_rdata : Ivec.t;
  r_ctrl : Ivec.t;
}

let l1_recorder () =
  {
    l1_cycle = 0;
    r_cycle = Ivec.create ();
    r_addr = Ivec.create ();
    r_be = Ivec.create ();
    r_wdata = Ivec.create ();
    r_rdata = Ivec.create ();
    r_ctrl = Ivec.create ();
  }

(* The Tlm1.Energy observer: one call per falling edge, deltas of the
   closing cycle. *)
let l1_observe r ~addr ~be ~wdata ~rdata ~ctrl =
  if addr lor be lor wdata lor rdata lor ctrl <> 0 then begin
    Ivec.push r.r_cycle r.l1_cycle;
    Ivec.push r.r_addr addr;
    Ivec.push r.r_be be;
    Ivec.push r.r_wdata wdata;
    Ivec.push r.r_rdata rdata;
    Ivec.push r.r_ctrl ctrl
  end;
  r.l1_cycle <- r.l1_cycle + 1

let l1_finish r =
  L1
    {
      d_cycle = Ivec.to_array r.r_cycle;
      d_addr = Ivec.to_array r.r_addr;
      d_be = Ivec.to_array r.r_be;
      d_wdata = Ivec.to_array r.r_wdata;
      d_rdata = Ivec.to_array r.r_rdata;
      d_ctrl = Ivec.to_array r.r_ctrl;
    }

type l2_recorder = {
  mutable l2_cycle : int;
  e_cycle : Ivec.t;
  e_kind : Ivec.t;
  e_dir : Ivec.t;
  e_burst : Ivec.t;
  e_pop_off : Ivec.t;
  e_pops : Ivec.t;
}

let l2_recorder () =
  {
    l2_cycle = 0;
    e_cycle = Ivec.create ();
    e_kind = Ivec.create ();
    e_dir = Ivec.create ();
    e_burst = Ivec.create ();
    e_pop_off = Ivec.create ();
    e_pops = Ivec.create ();
  }

let l2_observe r (ev : Tlm2.Energy.event) =
  match ev with
  | Tlm2.Energy.Cycle -> r.l2_cycle <- r.l2_cycle + 1
  | Tlm2.Energy.Addr_lump _ ->
    Ivec.push r.e_cycle r.l2_cycle;
    Ivec.push r.e_kind 0;
    Ivec.push r.e_dir 0;
    Ivec.push r.e_burst 0;
    Ivec.push r.e_pop_off r.e_pops.Ivec.n
  | Tlm2.Energy.Data_lump txn ->
    Ivec.push r.e_cycle r.l2_cycle;
    Ivec.push r.e_kind 1;
    Ivec.push r.e_dir (match txn.Ec.Txn.dir with Ec.Txn.Read -> 0 | Ec.Txn.Write -> 1);
    Ivec.push r.e_burst txn.Ec.Txn.burst;
    Ivec.push r.e_pop_off r.e_pops.Ivec.n;
    for i = 1 to txn.Ec.Txn.burst - 1 do
      Ivec.push r.e_pops
        (Sim.Signal.popcount (txn.Ec.Txn.data.(i) lxor txn.Ec.Txn.data.(i - 1)))
    done

let l2_finish r =
  L2
    {
      ev_cycle = Ivec.to_array r.e_cycle;
      ev_kind = Ivec.to_array r.e_kind;
      ev_dir = Ivec.to_array r.e_dir;
      ev_burst = Ivec.to_array r.e_burst;
      ev_pop_off = Ivec.to_array r.e_pop_off;
      pops = Ivec.to_array r.e_pops;
    }

(* --- fabric plans (DESIGN.md section 18) ------------------------------ *)

(* The per-master bucket of an interpreted fabric run is an ordered float
   fold over three kinds of add: bridge-crossing energy on acceptance,
   one closed near-bus cycle per falling edge, one closed far-bus cycle.
   The op stream records that fold per master as pure integers — a
   crossing's burst, a sample's closed-cycle index into the bus body —
   so evaluation replays the identical float sequence from any
   characterization table. *)

let op_near = 0
let op_far = 1
let op_cross = 2

type fabric_meta = {
  f_masters : int;
  f_cycles : int;
  f_txns : int array;
  f_beats : int array;
  f_errors : int array;
  f_grants : int array;
  f_crossings : int;
  f_cross_pj_per_beat : float;
  f_component_pj : float;
}

type fabric = {
  f_meta : fabric_meta;
  near : t;
  far_plan : t option;
  op_kind : int array;  (* per-master streams, concatenated *)
  op_arg : int array;
  op_off : int array;  (* masters + 1 offsets into op_kind/op_arg *)
  cross_bursts : int array;  (* chronological, for the bridge_pj fold *)
}

type fabric_recorder = {
  fo_kind : Ivec.t array;  (* one stream per master *)
  fo_arg : Ivec.t array;
  fo_cross : Ivec.t;
}

let fabric_recorder ~masters =
  {
    fo_kind = Array.init masters (fun _ -> Ivec.create ());
    fo_arg = Array.init masters (fun _ -> Ivec.create ());
    fo_cross = Ivec.create ();
  }

let fabric_observer r =
  {
    Ec.Fabric.obs_cross =
      (fun ~master ~burst ->
        Ivec.push r.fo_kind.(master) op_cross;
        Ivec.push r.fo_arg.(master) burst;
        Ivec.push r.fo_cross burst);
    obs_near =
      (fun ~owner ~cycle ->
        Ivec.push r.fo_kind.(owner) op_near;
        Ivec.push r.fo_arg.(owner) cycle);
    obs_far =
      (fun ~owner ~cycle ->
        Ivec.push r.fo_kind.(owner) op_far;
        Ivec.push r.fo_arg.(owner) cycle);
  }

let fabric_finish r ~meta ~near ~far_plan =
  let masters = Array.length r.fo_kind in
  let off = Array.make (masters + 1) 0 in
  for m = 0 to masters - 1 do
    off.(m + 1) <- off.(m) + r.fo_kind.(m).Ivec.n
  done;
  let op_kind = Array.make off.(masters) 0 in
  let op_arg = Array.make off.(masters) 0 in
  for m = 0 to masters - 1 do
    Array.blit r.fo_kind.(m).Ivec.a 0 op_kind off.(m) r.fo_kind.(m).Ivec.n;
    Array.blit r.fo_arg.(m).Ivec.a 0 op_arg off.(m) r.fo_arg.(m).Ivec.n
  done;
  {
    f_meta = meta;
    near;
    far_plan;
    op_kind;
    op_arg;
    op_off = off;
    cross_bursts = Ivec.to_array r.fo_cross;
  }
