(** Bus-grant arbitration policies for multi-master fabrics.

    The EC interface itself is a single-master specification; when several
    masters share one bus controller, the controller's front end must
    decide, cycle by cycle, whose request wins the submission slot.  This
    module is that decision logic, kept free of any clocking or port
    plumbing so the same arbiter state machine serves every abstraction
    level (the {!Fabric} wires it to the RTL, layer-1 and layer-2 models
    unchanged).

    The arbiter grants at most one submission per clock cycle.  Within a
    cycle, masters attempt in their simulation process order; a master is
    refused when the grant is already taken or when another master that is
    {e known to be waiting} (it was refused earlier and is still retrying)
    outranks it under the active policy.  Because refused masters retry
    every cycle, the waiting set is exact one cycle after contention
    appears, which gives the classic arbitration behaviours: strict
    preemption under fixed priority, single-cycle rotation under
    round-robin, and burst-weighted rotation under weighted round-robin. *)

(** Grant policy.

    - [Fixed_priority]: the lowest master index always outranks higher
      ones.  Starvation-prone by design — the policy the contention
      studies use as the worst-case fairness baseline.
    - [Round_robin]: the master after the last-granted index (cyclically)
      ranks first; each grant rotates the pointer, so every continuously
      requesting master is granted within [masters] grants of its first
      refusal (the no-starvation property of the test suite).
    - [Weighted]: round-robin over grant {e bursts}: the holder keeps top
      rank for up to its weight of consecutive grants before the pointer
      rotates.  Weights must be positive; a weight of 1 for every master
      degenerates to [Round_robin]. *)
type policy = Fixed_priority | Round_robin | Weighted of int array

val policy_to_string : policy -> string
(** ["fixed"], ["rr"], or ["wrr:w0,w1,..."] — the CLI spelling. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}; [None] on an unknown spelling. *)

type t

val create : masters:int -> policy:policy -> t
(** A fresh arbiter for master indices [0 .. masters-1].

    @raise Invalid_argument if [masters < 1], or a [Weighted] policy
    carries a weight vector whose length differs from [masters] or a
    non-positive weight. *)

val masters : t -> int
val policy : t -> policy

val rank : t -> int -> int
(** Current precedence of a master, lower is stronger.  Deterministic in
    the arbiter state: fixed priority ranks by index, round-robin by
    cyclic distance from the pointer, weighted round-robin gives the
    credit-holding master rank 0. *)

val attempt : t -> int -> bool
(** [attempt t m] is the per-cycle arbitration query: may master [m] try
    the submission slot now?  [false] (slot already taken this cycle, or
    a known-waiting master outranks [m]) records [m] as waiting, so its
    claim outranks later-arriving weaker masters.  [true] commits
    nothing: the caller forwards the submission downstream and reports
    the outcome with {!commit} or {!note_refused}.  The arbiter is
    work-conserving — a master refused by downstream back-pressure does
    not consume the cycle's slot, so a weaker master with queue space may
    still proceed in the same cycle.  Callers must bracket cycles with
    {!new_cycle}. *)

val commit : t -> int -> unit
(** The downstream bus accepted [m]'s submission: consume the cycle's
    slot, rotate the round-robin pointer / weighted credits, clear [m]'s
    waiting flag and count the grant. *)

val note_refused : t -> int -> unit
(** Records [m] as waiting without consuming the slot — the refusal came
    from downstream back-pressure (bus queues full) rather than from
    arbitration, so [m]'s fairness claim still accumulates. *)

val new_cycle : t -> unit
(** Opens the next cycle's submission slot.  Waiting flags persist — they
    are cleared individually by a successful {!request}. *)

val granted_this_cycle : t -> bool
val waiting : t -> int -> bool

val grants : t -> int -> int
(** Submissions granted to a master so far. *)

val total_grants : t -> int

val reset : t -> unit
(** Back to the freshly created state: pointer, credits, waiting flags
    and grant counters all clear.  The policy is immutable. *)
