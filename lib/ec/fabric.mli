(** Multi-master bus fabric: N master ports multiplexed onto one (or, with
    a bridge, two) single-master EC bus models.

    The paper's bus controllers are single-master: each exposes exactly
    one {!Port.t}.  The fabric is the controller front end that lets
    several masters share that port — an {!Arbiter} decides per cycle
    whose submission proceeds, transaction ids are remapped into a
    fabric-owned id space (masters keep their private id supplies; read
    data still lands in the master's own arrays, which the remapped
    transaction shares by pointer), and completions are routed back to
    the submitting master.  Because the underlying bus model is reused
    unchanged, the same fabric code runs on the RTL reference, layer 1
    and layer 2 — a degenerate fabric (one master, any policy) is
    bit-exact with the bare bus, which is what pins its correctness.

    {b Bridged topologies.}  An optional far-side bus port models a
    second bus behind a bridge: transactions whose address falls in the
    bridge window are accepted by the fabric, held for the bridge's
    crossing latency, then replayed onto the far port in FIFO order.
    Each crossing is priced at a configurable energy per beat, accounted
    to the crossing master.

    {b Per-master energy attribution.}  The fabric samples each bus's
    per-cycle energy through an abstract {!tap} and attributes every
    closed cycle to that bus's {e sticky owner} — the master whose
    submission the bus most recently accepted (master 0 before any
    grant).  Idle and drain cycles therefore bill to the last active
    requester, a deliberate modeling decision (DESIGN.md section 17):
    every picojoule lands in exactly one bucket, so the per-master
    energies sum to the fabric total {e by construction}, and a
    single-master fabric accumulates the identical float sequence as the
    bare bus's meter — bit-exact attribution in the degenerate case.

    The fabric is clocked by its owner: call {!on_rising} before the
    masters' rising-edge processes (it forwards matured bridge
    crossings) and {!on_falling} after the bus processes (it samples the
    energy taps and reopens the arbitration slot). *)

(** Per-cycle energy tap of one bus model, read on the falling edge after
    the bus process has closed its meter cycle: [cycles] is the meter's
    closed-cycle count and [last_cycle_pj] the energy of the most
    recently closed cycle.  The fabric samples only when [cycles]
    advanced, so buses that skip idle cycles are never double-counted. *)
type tap = { cycles : unit -> int; last_cycle_pj : unit -> float }

(** Far-side (bridged) bus attachment. *)
type far = {
  far_port : Port.t;  (** the far bus's master port *)
  far_tap : tap option;  (** its energy tap, when estimating *)
  window : int * int;
      (** \[lo, hi) byte-address window routed across the bridge *)
  latency : int;  (** crossing latency in cycles, at least 1 *)
  crossing_pj_per_beat : float;
      (** bridge energy per transferred beat, billed to the crossing
          master on acceptance *)
}

type t

val create :
  masters:int ->
  policy:Arbiter.policy ->
  bus:Port.t ->
  ?tap:tap ->
  ?far:far ->
  unit ->
  t
(** A fabric for master indices [0 .. masters-1] over near bus [bus].
    Without [tap] the energy buckets stay zero (an estimator-less run).
    @raise Invalid_argument if [masters < 1], the policy is malformed
    (see {!Arbiter.create}), or a [far] attachment has [latency < 1] or
    an empty window. *)

val port : t -> int -> Port.t
(** Master [m]'s view of the fabric: a {!Port.t} whose [try_submit]
    passes arbitration and id remapping, and whose [poll]/[retire]
    route by the master's own transaction ids. *)

val arbiter : t -> Arbiter.t
val masters : t -> int

(** {1 Integer observer (compiled fabric plans)}

    Mirrors the {!Tlm1.Energy}/{!Tlm2.Energy} observer hooks: a pure
    integer tap at each point where a float lands in a master bucket,
    carrying exactly the integers that determine the add.  The float
    path itself is untouched, so an observed run is bit-identical to an
    unobserved one (DESIGN.md section 18). *)
type observer = {
  obs_cross : master:int -> burst:int -> unit;
      (** a bridge crossing accepted by the fabric — the
          [crossing_pj_per_beat *. burst] add to [master]'s bucket, in
          the order the bucket receives it *)
  obs_near : owner:int -> cycle:int -> unit;
      (** the near tap advanced: closed meter cycle [cycle] (0-based in
          the energy observers' numbering) sampled into [owner]'s
          bucket *)
  obs_far : owner:int -> cycle:int -> unit;
      (** same, for the far (bridged) bus tap *)
}

val set_observer : t -> observer -> unit
val clear_observer : t -> unit

val on_rising : t -> unit
(** Clock hook, before the masters' processes: decrements crossing
    countdowns and forwards matured bridge transactions to the far bus
    (FIFO, as many as the far bus accepts). *)

val on_falling : t -> unit
(** Clock hook, after the bus processes: samples the energy taps into
    the sticky owners' buckets and opens the next cycle's arbitration
    slot. *)

val busy : t -> bool
(** True while any remapped transaction is still tracked (submitted or
    mid-crossing). *)

(** {1 Per-master accounting} *)

val master_pj : t -> int -> float
(** Master [m]'s attributed energy: its sticky-owner cycle samples plus
    its bridge-crossing energy. *)

val total_pj : t -> float
(** The fabric total, {e defined} as the sum of the master buckets in
    index order — per-master attribution is conservative by
    construction. *)

val master_txns : t -> int -> int
(** Completed transactions of master [m]. *)

val master_beats : t -> int -> int
val master_errors : t -> int -> int

val master_grants : t -> int -> int
(** Accepted submissions (near-side bus grants plus bridge crossings). *)

val crossings : t -> int
(** Bridge transactions forwarded to the far bus so far. *)

val bridge_pj : t -> float
(** Total bridge-crossing energy (already included in the master
    buckets and hence in {!total_pj}). *)

val reset : t -> unit
(** Buckets, counters, id maps, crossing queue, sticky owners, tap
    positions and the arbiter back to the freshly created state.  The
    ports and taps are wiring and stay; a set observer is cleared, as
    the energy-model resets do. *)
