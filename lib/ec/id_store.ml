type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  dummy : 'a;
  mutable len : int;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max 1 capacity in
  { keys = Array.make capacity 0; vals = Array.make capacity dummy; dummy;
    len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Top-level tail recursion on purpose: a [ref] loop counter (or a local
   closure) would put one minor block on every lookup, and this sits on
   the per-transaction path. *)
let rec index_from t key i =
  if i >= t.len then -1
  else if t.keys.(i) = key then i
  else index_from t key (i + 1)

let index t key = index_from t key 0

let mem t key = index t key >= 0

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) 0 in
  let vals = Array.make (2 * cap) t.dummy in
  Array.blit t.keys 0 keys 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.keys <- keys;
  t.vals <- vals

let set t key value =
  match index t key with
  | -1 ->
    if t.len = Array.length t.keys then grow t;
    t.keys.(t.len) <- key;
    t.vals.(t.len) <- value;
    t.len <- t.len + 1
  | i -> t.vals.(i) <- value

let find_default t key ~default =
  match index t key with -1 -> default | i -> t.vals.(i)

let key_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ec.Id_store.key_at";
  t.keys.(i)

let value_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ec.Id_store.value_at";
  t.vals.(i)

let remove_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ec.Id_store.remove_at";
  let last = t.len - 1 in
  t.keys.(i) <- t.keys.(last);
  t.vals.(i) <- t.vals.(last);
  t.vals.(last) <- t.dummy;
  t.len <- last

let remove t key =
  match index t key with -1 -> () | i -> remove_at t i

let clear t =
  Array.fill t.vals 0 t.len t.dummy;
  t.len <- 0
