type policy = Fixed_priority | Round_robin | Weighted of int array

let policy_to_string = function
  | Fixed_priority -> "fixed"
  | Round_robin -> "rr"
  | Weighted ws ->
    "wrr:"
    ^ String.concat "," (Array.to_list (Array.map string_of_int ws))

let policy_of_string s =
  match s with
  | "fixed" -> Some Fixed_priority
  | "rr" -> Some Round_robin
  | _ ->
    if String.length s > 4 && String.sub s 0 4 = "wrr:" then
      try
        let ws =
          String.sub s 4 (String.length s - 4)
          |> String.split_on_char ','
          |> List.map (fun w -> int_of_string (String.trim w))
          |> Array.of_list
        in
        Some (Weighted ws)
      with _ -> None
    else None

type t = {
  masters : int;
  policy : policy;
  waiting : bool array;
  grants : int array;
  mutable last_granted : int;  (* -1 before the first grant *)
  mutable credits : int;  (* remaining consecutive grants for the holder *)
  mutable granted_this_cycle : bool;
  mutable total_grants : int;
}

let create ~masters ~policy =
  if masters < 1 then invalid_arg "Arbiter.create: masters < 1";
  (match policy with
  | Weighted ws ->
    if Array.length ws <> masters then
      invalid_arg "Arbiter.create: weight vector length <> masters";
    Array.iter (fun w -> if w < 1 then invalid_arg "Arbiter.create: weight < 1") ws
  | Fixed_priority | Round_robin -> ());
  {
    masters;
    policy;
    waiting = Array.make masters false;
    grants = Array.make masters 0;
    last_granted = -1;
    credits = 0;
    granted_this_cycle = false;
    total_grants = 0;
  }

let masters t = t.masters
let policy t = t.policy

(* Cyclic distance of [m] behind the round-robin pointer: the master just
   after the last-granted index ranks 0. *)
let rr_rank t m = (m - t.last_granted - 1 + t.masters) mod t.masters

let rank t m =
  match t.policy with
  | Fixed_priority -> m
  | Round_robin -> rr_rank t m
  | Weighted _ ->
    if t.credits > 0 then
      (* The credit holder keeps the slot; everyone else queues behind it
         in round-robin order. *)
      if m = t.last_granted then 0 else rr_rank t m + 1
    else rr_rank t m

(* Is some other waiting master strictly stronger than [m]? *)
let outranked t m =
  let rm = rank t m in
  let blocked = ref false in
  for w = 0 to t.masters - 1 do
    if w <> m && t.waiting.(w) && rank t w < rm then blocked := true
  done;
  !blocked

let commit_grant t m =
  (match t.policy with
  | Fixed_priority -> ()
  | Round_robin -> t.last_granted <- m
  | Weighted ws ->
    if m = t.last_granted && t.credits > 0 then t.credits <- t.credits - 1
    else begin
      t.last_granted <- m;
      t.credits <- ws.(m) - 1
    end);
  t.waiting.(m) <- false;
  t.grants.(m) <- t.grants.(m) + 1;
  t.total_grants <- t.total_grants + 1;
  t.granted_this_cycle <- true

let attempt t m =
  if m < 0 || m >= t.masters then invalid_arg "Arbiter.attempt: bad master";
  if t.granted_this_cycle || outranked t m then begin
    t.waiting.(m) <- true;
    false
  end
  else true

let commit t m =
  if m < 0 || m >= t.masters then invalid_arg "Arbiter.commit: bad master";
  commit_grant t m

let note_refused t m =
  if m < 0 || m >= t.masters then invalid_arg "Arbiter.note_refused: bad master";
  t.waiting.(m) <- true

let new_cycle t = t.granted_this_cycle <- false
let granted_this_cycle t = t.granted_this_cycle
let waiting t m = t.waiting.(m)
let grants t m = t.grants.(m)
let total_grants t = t.total_grants

let reset t =
  Array.fill t.waiting 0 t.masters false;
  Array.fill t.grants 0 t.masters 0;
  t.last_granted <- -1;
  t.credits <- 0;
  t.granted_this_cycle <- false;
  t.total_grants <- 0
