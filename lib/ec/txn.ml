type direction = Read | Write
type kind = Instruction | Data
type width = W8 | W16 | W32
type category = Cat_instr_read | Cat_data_read | Cat_write
type bus_state = Request | Wait | Ok | Error

type t = {
  id : int;
  kind : kind;
  dir : direction;
  width : width;
  addr : int;
  burst : int;
  data : int array;
}

let max_addr = 1 lsl 36

let width_bits = function W8 -> 8 | W16 -> 16 | W32 -> 32

let alignment = function W8 -> 1 | W16 -> 2 | W32 -> 4

let create ~id ~kind ~dir ~width ~addr ~burst ?data () =
  let fail msg = invalid_arg (Printf.sprintf "Ec.Txn.create: %s" msg) in
  if burst <> 1 && burst <> 4 then fail "burst must be 1 or 4";
  if burst = 4 && width <> W32 then fail "sub-word bursts are not allowed";
  if addr < 0 || addr >= max_addr then fail "address outside 36-bit range";
  if addr mod alignment width <> 0 then fail "misaligned address";
  if kind = Instruction && dir = Write then fail "instruction writes";
  if kind = Instruction && width <> W32 then fail "sub-word instruction fetch";
  let data =
    match data, dir with
    | Some d, Write ->
      if Array.length d <> burst then fail "write payload length <> burst";
      Array.map (fun v -> v land 0xFFFFFFFF) d
    | None, Write -> fail "write without payload"
    | Some _, Read -> fail "read with payload"
    | None, Read -> Array.make burst 0
  in
  { id; kind; dir; width; addr; burst; data }

let single_read ~id ?(kind = Data) ?(width = W32) addr =
  create ~id ~kind ~dir:Read ~width ~addr ~burst:1 ()

let single_write ~id ?(width = W32) addr ~value =
  create ~id ~kind:Data ~dir:Write ~width ~addr ~burst:1 ~data:[| value |] ()

let burst_read ~id ?(kind = Data) addr =
  create ~id ~kind ~dir:Read ~width:W32 ~addr ~burst:4 ()

let burst_write ~id addr ~values =
  create ~id ~kind:Data ~dir:Write ~width:W32 ~addr ~burst:4 ~data:values ()

let category t =
  match t.dir, t.kind with
  | Write, _ -> Cat_write
  | Read, Instruction -> Cat_instr_read
  | Read, Data -> Cat_data_read

let bytes_per_beat t = alignment t.width

let beat_addr t i =
  assert (i >= 0 && i < t.burst);
  t.addr + (i * 4)

let byte_enables t i =
  match t.width with
  | W32 -> 0b1111
  | W16 -> if beat_addr t i land 2 = 0 then 0b0011 else 0b1100
  | W8 -> 1 lsl (beat_addr t i land 3)

let set_beat t i v =
  assert (i >= 0 && i < t.burst);
  t.data.(i) <- v land 0xFFFFFFFF

let pp ppf t =
  let dir = match t.dir with Read -> "R" | Write -> "W" in
  let kind = match t.kind with Instruction -> "I" | Data -> "D" in
  Format.fprintf ppf "#%d %s%s w%d @%#x x%d" t.id dir kind
    (width_bits t.width) t.addr t.burst

let equal_payload a b =
  a.kind = b.kind && a.dir = b.dir && a.width = b.width && a.addr = b.addr
  && a.burst = b.burst
  && (a.dir = Read || a.data = b.data)

module Id_gen = struct
  type gen = int ref

  let create () = ref 0

  let fresh g =
    incr g;
    !g

  let reset g = g := 0
end
