(** Map of the EC interface signals.

    All signals are unidirectional; read and write use separate data buses
    with their own error indications.  This enumeration is the common
    vocabulary of the RTL reference model (one wire set per signal), the
    layer-1 power model (old/new value per signal) and the power
    characterization tables (average energy per transition per signal). *)

(** Control wires of the interface (single bit each).  Master driven:
    [Avalid] (address valid), [Instr] (instruction fetch), [Write],
    [Burst], [Bfirst], [Blast].  Slave/controller driven: [Ardy] (address
    accepted), [Rdval] (read data valid), [Wdrdy] (write data accepted),
    [Rberr] and [Wberr] (read/write bus error). *)
type ctrl =
  | Avalid
  | Instr
  | Write
  | Burst
  | Bfirst
  | Blast
  | Ardy
  | Rdval
  | Wdrdy
  | Rberr
  | Wberr

(** One interface wire.  [Addr i] is address bit [35 - .. 2]+[i] of the
    word-address bus EB_A[35:2] (34 wires), [Be i] a byte enable,
    [Wdata i]/[Rdata i] a write/read data bit. *)
type id = Addr of int | Be of int | Wdata of int | Rdata of int | Ctrl of ctrl

val addr_wires : int  (** 34 *)

val be_wires : int  (** 4 *)

val data_wires : int  (** 32 *)

val count : int
(** Total number of interface wires. *)

val all : id list
(** Every wire, in dense index order. *)

val all_ctrl : ctrl list
val ctrl_count : int

val index : id -> int
(** Dense index in [0, count). *)

val of_index : int -> id
val to_string : id -> string

val default_capacitance_ff : id -> float
(** Effective switched capacitance per wire in femtofarads, the physical
    basis of the default power characterization (long, heavily loaded
    address wires; somewhat lighter data wires; short control wires). *)

val vdd : float
(** Core supply voltage in volts (1.8 V smart-card core). *)
