type tap = { cycles : unit -> int; last_cycle_pj : unit -> float }

(* Integer observer for compiled fabric plans (DESIGN.md section 18):
   fires at exactly the points where the float buckets accumulate, with
   the integers that determine each add — never touching the float path,
   so an observed run is bit-identical to an unobserved one. *)
type observer = {
  obs_cross : master:int -> burst:int -> unit;
      (* a bridge crossing accepted: the crossing-energy add *)
  obs_near : owner:int -> cycle:int -> unit;
      (* a closed near-bus cycle sampled into [owner]'s bucket *)
  obs_far : owner:int -> cycle:int -> unit;
}

type far = {
  far_port : Port.t;
  far_tap : tap option;
  window : int * int;
  latency : int;
  crossing_pj_per_beat : float;
}

(* One tracked transaction.  [bus_txn] is the remapped copy living in the
   fabric id space; read results are blitted back into the master's own
   transaction on the first completed poll. *)
type entry = {
  master : int;
  orig : Txn.t;
  bus_txn : Txn.t;
  mutable pending_cross : int;  (* crossing countdown; 0 = mature *)
  mutable submitted : bool;  (* handed to a bus port *)
  mutable on_far : bool;
  mutable counted : bool;  (* completion recorded in the counters *)
}

type t = {
  masters : int;
  arbiter : Arbiter.t;
  bus : Port.t;
  tap : tap option;
  far : far option;
  ids : Txn.Id_gen.gen;  (* fabric-owned bus-side id space *)
  maps : entry Id_store.t array;  (* per master, keyed by the master's id *)
  crossing : entry Queue.t;  (* FIFO towards the far bus *)
  buckets : float array;  (* per-master attributed energy, pJ *)
  txns : int array;
  beats : int array;
  errors : int array;
  mutable sticky_near : int;
  mutable sticky_far : int;
  mutable near_seen : int;  (* last sampled meter cycle count *)
  mutable far_seen : int;
  mutable crossings : int;
  mutable bridge_pj : float;
  mutable observer : observer option;
}

let dummy_entry =
  {
    master = -1;
    orig = Txn.single_read ~id:(-1) 0;
    bus_txn = Txn.single_read ~id:(-1) 0;
    pending_cross = 0;
    submitted = false;
    on_far = false;
    counted = false;
  }

let create ~masters ~policy ~bus ?tap ?far () =
  (match far with
  | Some f ->
    let lo, hi = f.window in
    if f.latency < 1 then invalid_arg "Fabric.create: far latency < 1";
    if hi <= lo then invalid_arg "Fabric.create: empty far window"
  | None -> ());
  {
    masters;
    arbiter = Arbiter.create ~masters ~policy;
    bus;
    tap;
    far;
    ids = Txn.Id_gen.create ();
    maps = Array.init masters (fun _ -> Id_store.create ~dummy:dummy_entry ());
    crossing = Queue.create ();
    buckets = Array.make masters 0.0;
    txns = Array.make masters 0;
    beats = Array.make masters 0;
    errors = Array.make masters 0;
    sticky_near = 0;
    sticky_far = 0;
    near_seen = 0;
    far_seen = 0;
    crossings = 0;
    bridge_pj = 0.0;
    observer = None;
  }

let arbiter t = t.arbiter
let masters t = t.masters
let set_observer t o = t.observer <- Some o
let clear_observer t = t.observer <- None

let remap t txn =
  let open Txn in
  create ~id:(Id_gen.fresh t.ids) ~kind:txn.kind ~dir:txn.dir ~width:txn.width
    ~addr:txn.addr ~burst:txn.burst
    ?data:(match txn.dir with Write -> Some txn.data | Read -> None)
    ()

let routes_far t txn =
  match t.far with
  | None -> false
  | Some f ->
    let lo, hi = f.window in
    txn.Txn.addr >= lo && txn.Txn.addr < hi

let try_submit t m txn =
  if not (Arbiter.attempt t.arbiter m) then false
  else begin
    let entry =
      {
        master = m;
        orig = txn;
        bus_txn = remap t txn;
        pending_cross = 0;
        submitted = false;
        on_far = false;
        counted = false;
      }
    in
    if routes_far t txn then begin
      (* The bridge accepts immediately; the transaction matures in the
         crossing queue and reaches the far bus [latency] cycles later. *)
      let f = Option.get t.far in
      entry.pending_cross <- f.latency;
      Queue.push entry t.crossing;
      Id_store.set t.maps.(m) txn.Txn.id entry;
      let cost = f.crossing_pj_per_beat *. float_of_int txn.Txn.burst in
      t.buckets.(m) <- t.buckets.(m) +. cost;
      t.bridge_pj <- t.bridge_pj +. cost;
      (match t.observer with
      | Some o -> o.obs_cross ~master:m ~burst:txn.Txn.burst
      | None -> ());
      Arbiter.commit t.arbiter m;
      true
    end
    else if t.bus.Port.try_submit entry.bus_txn then begin
      entry.submitted <- true;
      Id_store.set t.maps.(m) txn.Txn.id entry;
      t.sticky_near <- m;
      Arbiter.commit t.arbiter m;
      true
    end
    else begin
      Arbiter.note_refused t.arbiter m;
      false
    end
  end

let record_completion t entry outcome =
  if not entry.counted then begin
    entry.counted <- true;
    let m = entry.master in
    t.txns.(m) <- t.txns.(m) + 1;
    match outcome with
    | Port.Done ->
      t.beats.(m) <- t.beats.(m) + entry.bus_txn.Txn.burst;
      (* Read results live in the remapped copy; hand them back. *)
      if entry.orig.Txn.dir = Txn.Read then
        Array.blit entry.bus_txn.Txn.data 0 entry.orig.Txn.data 0
          entry.orig.Txn.burst
    | Port.Failed -> t.errors.(m) <- t.errors.(m) + 1
    | Port.Pending -> ()
  end

let poll t m id =
  let entry = Id_store.find_default t.maps.(m) id ~default:dummy_entry in
  if entry.master < 0 || not entry.submitted then Port.Pending
  else begin
    let port = if entry.on_far then (Option.get t.far).far_port else t.bus in
    let outcome = port.Port.poll entry.bus_txn.Txn.id in
    (match outcome with
    | Port.Done | Port.Failed -> record_completion t entry outcome
    | Port.Pending -> ());
    outcome
  end

let retire t m id =
  let entry = Id_store.find_default t.maps.(m) id ~default:dummy_entry in
  if entry.master < 0 then ()
  else if not entry.submitted then
    invalid_arg "Fabric.retire: transaction still crossing the bridge"
  else begin
    let port = if entry.on_far then (Option.get t.far).far_port else t.bus in
    port.Port.retire entry.bus_txn.Txn.id;
    Id_store.remove t.maps.(m) id
  end

let port t m =
  if m < 0 || m >= t.masters then invalid_arg "Fabric.port: bad master";
  {
    Port.try_submit = (fun txn -> try_submit t m txn);
    poll = (fun id -> poll t m id);
    retire = (fun id -> retire t m id);
  }

let on_rising t =
  match t.far with
  | None -> ()
  | Some f ->
    Queue.iter
      (fun e -> if e.pending_cross > 0 then e.pending_cross <- e.pending_cross - 1)
      t.crossing;
    let continue = ref true in
    while !continue && not (Queue.is_empty t.crossing) do
      let head = Queue.peek t.crossing in
      if head.pending_cross = 0 && f.far_port.Port.try_submit head.bus_txn
      then begin
        ignore (Queue.pop t.crossing);
        head.submitted <- true;
        head.on_far <- true;
        t.sticky_far <- head.master;
        t.crossings <- t.crossings + 1
      end
      else continue := false
    done

let sample t tap owner seen notify =
  let c = tap.cycles () in
  if c > seen then begin
    t.buckets.(owner) <- t.buckets.(owner) +. tap.last_cycle_pj ();
    (* The just-closed meter cycle has index [c - 1] in the energy
       observers' numbering — what a compiled plan keys the sample by. *)
    match t.observer with
    | Some o -> notify o ~owner ~cycle:(c - 1)
    | None -> ()
  end;
  c

let on_falling t =
  (match t.tap with
  | Some tap ->
    t.near_seen <-
      sample t tap t.sticky_near t.near_seen (fun o -> o.obs_near)
  | None -> ());
  (match t.far with
  | Some { far_tap = Some tap; _ } ->
    t.far_seen <- sample t tap t.sticky_far t.far_seen (fun o -> o.obs_far)
  | Some { far_tap = None; _ } | None -> ());
  Arbiter.new_cycle t.arbiter

let busy t =
  (not (Queue.is_empty t.crossing))
  || Array.exists (fun map -> not (Id_store.is_empty map)) t.maps

let master_pj t m = t.buckets.(m)

let total_pj t =
  let acc = ref 0.0 in
  for m = 0 to t.masters - 1 do
    acc := !acc +. t.buckets.(m)
  done;
  !acc

let master_txns t m = t.txns.(m)
let master_beats t m = t.beats.(m)
let master_errors t m = t.errors.(m)
let master_grants t m = Arbiter.grants t.arbiter m
let crossings t = t.crossings
let bridge_pj t = t.bridge_pj

let reset t =
  Arbiter.reset t.arbiter;
  Txn.Id_gen.reset t.ids;
  Array.iter Id_store.clear t.maps;
  Queue.clear t.crossing;
  Array.fill t.buckets 0 t.masters 0.0;
  Array.fill t.txns 0 t.masters 0;
  Array.fill t.beats 0 t.masters 0;
  Array.fill t.errors 0 t.masters 0;
  t.sticky_near <- 0;
  t.sticky_far <- 0;
  t.near_seen <- 0;
  t.far_seen <- 0;
  t.crossings <- 0;
  t.bridge_pj <- 0.0;
  t.observer <- None
