(** EC interface bus transactions.

    The EC interface (the paper's target, MIPS EC spec rev 1.05) carries
    36-bit byte addresses and 32-bit data over separate unidirectional read
    and write buses.  A transaction is a single transfer or a burst of four
    words, of one of the merge-pattern widths 8/16/32 bit (sub-word widths
    apply to single transfers only). *)

type direction = Read | Write
type kind = Instruction | Data

type width = W8 | W16 | W32
(** Merge patterns defined by the EC interface specification. *)

(** Outstanding-transaction category: the EC interface limits the core to
    four outstanding burst instruction reads, four burst data reads and
    four burst writes. *)
type category = Cat_instr_read | Cat_data_read | Cat_write

(** Bus state returned by the non-blocking interfaces: [Request] means the
    request has just been accepted, [Wait] that it is in progress, [Ok]
    that it finished, [Error] indicates a bus error. *)
type bus_state = Request | Wait | Ok | Error

type t = private {
  id : int;
  kind : kind;
  dir : direction;
  width : width;
  addr : int;  (** byte address, 36 bit *)
  burst : int;  (** number of beats: 1, or 4 for bursts *)
  data : int array;  (** [burst] words: write payload, or read results *)
}

val create :
  id:int ->
  kind:kind ->
  dir:direction ->
  width:width ->
  addr:int ->
  burst:int ->
  ?data:int array ->
  unit ->
  t
(** Builds a well-formed transaction.

    @raise Invalid_argument if the combination violates the EC rules:
    burst not 1 or 4, sub-word burst, address out of 36-bit range or
    misaligned for the width, instruction writes, or write payload length
    not matching [burst]. *)

val single_read : id:int -> ?kind:kind -> ?width:width -> int -> t
(** [single_read ~id addr] is a 32-bit single data read by default. *)

val single_write : id:int -> ?width:width -> int -> value:int -> t
val burst_read : id:int -> ?kind:kind -> int -> t
val burst_write : id:int -> int -> values:int array -> t

val category : t -> category
val bytes_per_beat : t -> int
val beat_addr : t -> int -> int
(** [beat_addr t i] is the byte address of beat [i], [0 <= i < t.burst]. *)

val byte_enables : t -> int -> int
(** [byte_enables t i] is the 4-bit lane mask driven during beat [i],
    derived from width and address as per the merge patterns. *)

val set_beat : t -> int -> int -> unit
(** [set_beat t i v] stores read-result word [v] for beat [i]. *)

val width_bits : width -> int
val pp : Format.formatter -> t -> unit
val equal_payload : t -> t -> bool
(** Structural equality ignoring [id]. *)

(** Monotonic transaction id supply (one per master). *)
module Id_gen : sig
  type gen

  val create : unit -> gen
  val fresh : gen -> int

  val reset : gen -> unit
  (** Restart the supply at its creation point, so a reused master hands
      out the exact id sequence of a fresh one. *)
end

val max_addr : int
(** Exclusive upper bound of the 36-bit address space. *)
