(** Preallocated FIFO over a circular buffer.

    A drop-in replacement for the unbounded [Queue.t]s on the bus
    datapaths: pushes write into preallocated slots instead of allocating
    a cell per element, so steady-state simulation does not allocate.
    The buffer doubles (one allocation) if it ever fills; the bus queues
    are bounded by the outstanding-transaction limits, so with the
    default capacity they never do.

    [dummy] fills empty slots so popped elements do not leak through the
    backing array. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] defaults to 16 slots. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail; grows the buffer when full. *)

val pop : 'a t -> 'a
(** Remove and return the head.  @raise Invalid_argument when empty. *)

val pop_opt : 'a t -> 'a option

val clear : 'a t -> unit
