(** Flat integer-keyed store over parallel preallocated arrays.

    Replaces the per-transaction-id [Hashtbl.t]s on the bus completion
    path.  The population is bounded by the outstanding-transaction
    limits (a handful of entries), where a linear scan over an int array
    beats hashing and allocates nothing; lookups with a default avoid
    the [option] allocation of [Hashtbl.find_opt].  Removal swaps with
    the last entry, so sweeping with [value_at]/[remove_at] is
    allocation-free too (do not advance the index after removing).

    [dummy] fills vacated value slots so removed values do not leak
    through the backing array. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] defaults to 16 entries; the store doubles if it fills. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val mem : 'a t -> int -> bool

val set : 'a t -> int -> 'a -> unit
(** Insert, or replace the value bound to an existing key. *)

val find_default : 'a t -> int -> default:'a -> 'a

val remove : 'a t -> int -> unit
(** No-op when the key is absent. *)

val key_at : 'a t -> int -> int
val value_at : 'a t -> int -> 'a
(** Positional access for sweep loops; positions are stable only until
    the next [remove]/[remove_at].  @raise Invalid_argument out of
    range. *)

val remove_at : 'a t -> int -> unit
(** Remove the entry at a position by swapping the last entry into it. *)

val clear : 'a t -> unit
(** Drop every entry (vacated value slots are re-filled with [dummy] so
    nothing leaks through the backing array); capacity is kept. *)
