type 'a t = {
  mutable slots : 'a array;
  dummy : 'a;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let create ?(capacity = 16) ~dummy () =
  { slots = Array.make (max 1 capacity) dummy; dummy; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.slots in
  let slots = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    slots.(i) <- t.slots.((t.head + i) mod cap)
  done;
  t.slots <- slots;
  t.head <- 0

let push t x =
  if t.len = Array.length t.slots then grow t;
  t.slots.((t.head + t.len) mod Array.length t.slots) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Ec.Ring.pop: empty";
  let x = t.slots.(t.head) in
  (* Drop the reference so popped elements can be collected. *)
  t.slots.(t.head) <- t.dummy;
  t.head <- (t.head + 1) mod Array.length t.slots;
  t.len <- t.len - 1;
  x

let pop_opt t = if t.len = 0 then None else Some (pop t)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) t.dummy;
  t.head <- 0;
  t.len <- 0
