(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the repository (workload generators, the TRNG
    peripheral, DPA plaintexts) draw from explicit [Rng.t] instances so
    that every experiment is reproducible from its seed. *)

type t

val create : seed:int -> t

val reseed : t -> seed:int -> unit
(** [reseed t ~seed] rewinds [t] to the state [create ~seed] produces, so
    a pooled peripheral replays the exact sequence of a fresh one. *)

val next64 : t -> int
(** Next raw 62-bit value (OCaml native [int], non-negative). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val bits : t -> int -> int
(** [bits t n] is a uniform [n]-bit value, [1 <= n <= 62]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** Derives an independent generator (useful for parallel workloads). *)
