type t = {
  name : string;
  width : int;
  mask : int;
  mutable cur : int;
  mutable nxt : int;
  mutable rises : int;
  mutable falls : int;
  per_bit : int array;
}

(* SWAR popcount over OCaml's 63-bit non-negative ints. *)
let popcount v =
  let v = v - ((v lsr 1) land 0x5555_5555_5555_5555) in
  let v = (v land 0x3333_3333_3333_3333) + ((v lsr 2) land 0x3333_3333_3333_3333) in
  let v = (v + (v lsr 4)) land 0x0F0F_0F0F_0F0F_0F0F in
  (v * 0x0101_0101_0101_0101) lsr 56

let create ~name ~width =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Sim.Signal.create %s: width %d" name width);
  let mask = (1 lsl width) - 1 in
  { name; width; mask; cur = 0; nxt = 0; rises = 0; falls = 0;
    per_bit = Array.make width 0 }

let name s = s.name
let width s = s.width
let current s = s.cur
let next s = s.nxt
let set s v = s.nxt <- v land s.mask

(* Top-level so [commit] allocates no closure on the per-cycle path. *)
let rec mark_bits per_bit bits i =
  if bits <> 0 then begin
    if bits land 1 = 1 then per_bit.(i) <- per_bit.(i) + 1;
    mark_bits per_bit (bits lsr 1) (i + 1)
  end

let commit s =
  let changed = s.cur lxor s.nxt in
  if changed <> 0 then begin
    let rose = changed land s.nxt and fell = changed land s.cur in
    s.rises <- s.rises + popcount rose;
    s.falls <- s.falls + popcount fell;
    mark_bits s.per_bit changed 0
  end;
  s.cur <- s.nxt;
  popcount changed

let rises s = s.rises
let falls s = s.falls
let transitions s = s.rises + s.falls
let bit_transitions s = Array.copy s.per_bit

let reset_counters s =
  s.rises <- 0;
  s.falls <- 0;
  Array.fill s.per_bit 0 s.width 0

let reset s =
  s.cur <- 0;
  s.nxt <- 0;
  reset_counters s
