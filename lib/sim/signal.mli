(** Multi-bit hardware signals with two-phase (next/commit) update and
    per-bit transition accounting.

    Used by the register-transfer-level reference model: during a cycle,
    drivers write the {e next} value; at the end of the cycle the kernel
    commits it, at which point rising and falling bit transitions are
    recorded.  The power estimator inspects [current]/[next] pairs just
    before the commit to attribute energy per transition. *)

type t

val create : name:string -> width:int -> t
(** [create ~name ~width] is a signal of [width] bits (1..62), initially 0.

    @raise Invalid_argument if [width] is outside 1..62. *)

val name : t -> string
val width : t -> int

val current : t -> int
(** Value visible during the present cycle. *)

val next : t -> int
(** Value scheduled for the next cycle (defaults to [current]). *)

val set : t -> int -> unit
(** [set s v] schedules [v] (masked to the signal width) as next value. *)

val commit : t -> int
(** [commit s] makes the next value current and returns the number of bits
    that toggled.  Updates transition counters. *)

val rises : t -> int
(** Total number of 0 to 1 bit transitions committed so far. *)

val falls : t -> int
(** Total number of 1 to 0 bit transitions committed so far. *)

val transitions : t -> int
(** [transitions s] is [rises s + falls s]. *)

val bit_transitions : t -> int array
(** Per-bit committed transition counts (length [width s]). *)

val reset_counters : t -> unit
(** Zeroes all transition counters (values are preserved). *)

val reset : t -> unit
(** Full reset to the freshly created state: current and next values back
    to 0 and all transition counters cleared. *)

val popcount : int -> int
(** Number of set bits in a non-negative [int]. *)
