type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let reseed t ~seed = t.state <- Int64.of_int seed

(* splitmix64, Steele et al.; result truncated to OCaml's 63-bit int. *)
let next_raw t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Keep 62 bits so the result always fits OCaml's native non-negative
   int range. *)
let next64 t = Int64.to_int (Int64.shift_right_logical (next_raw t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Sim.Rng.int: bound <= 0";
  next64 t mod bound

let bits t n =
  if n < 1 || n > 62 then invalid_arg "Sim.Rng.bits";
  next64 t land ((1 lsl n) - 1)

let bool t = next64 t land 1 = 1
let float t = float_of_int (next64 t) /. 4611686018427387904.0

let split t = { state = next_raw t }
