type process = { name : string; body : t -> unit; mutable gated : bool }

and t = {
  mutable now : int;
  mutable rising_rev : process list;
  mutable falling_rev : process list;
  (* Caches rebuilt when the process lists change, so the hot loop only
     iterates over arrays. *)
  mutable rising : process array;
  mutable falling : process array;
  mutable dirty : bool;
  mutable stop_requested : bool;
}

let create () =
  {
    now = 0;
    rising_rev = [];
    falling_rev = [];
    rising = [||];
    falling = [||];
    dirty = false;
    stop_requested = false;
  }

let now k = k.now

let on_rising k ~name body =
  k.rising_rev <- { name; body; gated = false } :: k.rising_rev;
  k.dirty <- true

let on_falling k ~name body =
  k.falling_rev <- { name; body; gated = false } :: k.falling_rev;
  k.dirty <- true

let set_gated k ~name ~gated =
  let hit = ref false in
  let apply p =
    if p.name = name && p.gated <> gated then begin
      p.gated <- gated;
      hit := true
    end
  in
  List.iter apply k.rising_rev;
  List.iter apply k.falling_rev;
  if !hit then k.dirty <- true

let stop k = k.stop_requested <- true
let stopped k = k.stop_requested

let reset k =
  k.now <- 0;
  k.stop_requested <- false;
  let ungate p =
    if p.gated then begin
      p.gated <- false;
      k.dirty <- true
    end
  in
  List.iter ungate k.rising_rev;
  List.iter ungate k.falling_rev

let refresh k =
  if k.dirty then begin
    let live l = List.filter (fun p -> not p.gated) (List.rev l) in
    k.rising <- Array.of_list (live k.rising_rev);
    k.falling <- Array.of_list (live k.falling_rev);
    k.dirty <- false
  end

let step k =
  refresh k;
  let rising = k.rising and falling = k.falling in
  for i = 0 to Array.length rising - 1 do
    (Array.unsafe_get rising i).body k
  done;
  for i = 0 to Array.length falling - 1 do
    (Array.unsafe_get falling i).body k
  done;
  k.now <- k.now + 1

let run k ~cycles =
  let rec loop remaining =
    if remaining > 0 && not k.stop_requested then begin
      step k;
      loop (remaining - 1)
    end
  in
  loop cycles

let run_until k ?(max_cycles = 1_000_000) done_ =
  let start = k.now in
  let rec loop () =
    if done_ () || k.stop_requested then k.now - start
    else if k.now - start >= max_cycles then
      failwith
        (Printf.sprintf "Sim.Kernel.run_until: no completion after %d cycles"
           max_cycles)
    else begin
      step k;
      loop ()
    end
  in
  loop ()

let process_names k =
  List.map (fun p -> p.name) (List.rev k.rising_rev)
  @ List.map (fun p -> p.name) (List.rev k.falling_rev)
