(** Cycle-based simulation kernel.

    A minimal substitute for the SystemC 2.0 kernel used in the paper: the
    only scheduling semantics the bus models need are clocked processes
    sensitive to the rising or the falling edge of a single system clock
    ([SC_METHOD] style, re-evaluated on every edge), plus run control.

    Each simulated clock cycle executes all rising-edge processes (masters
    and slaves in the paper's models), then all falling-edge processes (the
    bus processes).  Processes registered on the same edge run in
    registration order. *)

type t
(** A simulation kernel instance with its own clock. *)

val create : unit -> t
(** [create ()] is a fresh kernel at time 0 with no processes. *)

val now : t -> int
(** [now k] is the number of completed clock cycles. *)

val on_rising : t -> name:string -> (t -> unit) -> unit
(** [on_rising k ~name f] registers [f] to run on every rising clock edge.
    [name] is used in diagnostics only. *)

val on_falling : t -> name:string -> (t -> unit) -> unit
(** Same as {!on_rising} for the falling edge. *)

val set_gated : t -> name:string -> gated:bool -> unit
(** [set_gated k ~name ~gated] gates (or un-gates) the clock of every
    process registered under [name]: a gated process is skipped by
    {!step} until un-gated, keeping its registration slot — edge and
    order are unchanged when the clock comes back.  Gating a quiescent
    process is behaviour-neutral; the adaptive live sessions use it to
    stop paying for the inactive bus front-end's idle ticks.  Unknown
    names are ignored. *)

val stop : t -> unit
(** [stop k] requests run termination; the current cycle still completes. *)

val reset : t -> unit
(** [reset k] rewinds the clock to 0, clears any pending {!stop} request
    and un-gates every process.  Registered processes are kept — the whole
    point of resetting is reusing the wired-up system — so the processes
    themselves must be reset by their owners. *)

val stopped : t -> bool
(** [stopped k] is [true] once {!stop} has been called. *)

val step : t -> unit
(** [step k] simulates one full clock cycle (rising then falling edge) and
    advances time by one. *)

val run : t -> cycles:int -> unit
(** [run k ~cycles] simulates at most [cycles] cycles, stopping early if
    {!stop} is requested. *)

val run_until : t -> ?max_cycles:int -> (unit -> bool) -> int
(** [run_until k ~max_cycles done_] steps until [done_ ()] holds, [stop]
    is requested, or [max_cycles] (default [1_000_000]) elapse.  Returns
    the number of cycles simulated by this call.

    @raise Failure if [max_cycles] elapse before [done_ ()] holds. *)

val process_names : t -> string list
(** Registered process names, rising edge first, in registration order. *)
