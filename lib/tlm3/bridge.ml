type t = {
  kernel : Sim.Kernel.t;
  port : Ec.Port.t;
  ids : Ec.Txn.Id_gen.gen;
  mutable transactions : int;
}

let create ~kernel ~port = { kernel; port; ids = Ec.Txn.Id_gen.create (); transactions = 0 }

let idle t ~cycles =
  for _ = 1 to cycles do
    Sim.Kernel.step t.kernel
  done

let reset t =
  Ec.Txn.Id_gen.reset t.ids;
  t.transactions <- 0

let transact t txn =
  t.transactions <- t.transactions + 1;
  let accepted = ref (t.port.Ec.Port.try_submit txn) in
  ignore
    (Sim.Kernel.run_until t.kernel ~max_cycles:100_000 (fun () ->
         if not !accepted then accepted := t.port.Ec.Port.try_submit txn;
         !accepted && Ec.Port.completed t.port txn.Ec.Txn.id));
  let outcome = t.port.Ec.Port.poll txn.Ec.Txn.id in
  t.port.Ec.Port.retire txn.Ec.Txn.id;
  outcome

(* Chop a [words]-long window into 4-word bursts plus single words. *)
let rec chunks addr words =
  if words = 0 then []
  else if words >= 4 then (addr, 4) :: chunks (addr + 16) (words - 4)
  else (addr, 1) :: chunks (addr + 4) (words - 1)

let read t ~addr ~words =
  let t0 = Sim.Kernel.now t.kernel in
  let out = Array.make words 0 in
  let rec go = function
    | [] ->
      (Channel.Ok_data out, Sim.Kernel.now t.kernel - t0)
    | (chunk_addr, chunk_words) :: rest -> begin
      let txn =
        Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data
          ~dir:Ec.Txn.Read ~width:Ec.Txn.W32 ~addr:chunk_addr
          ~burst:chunk_words ()
      in
      match transact t txn with
      | Ec.Port.Done ->
        Array.blit txn.Ec.Txn.data 0 out ((chunk_addr - addr) / 4) chunk_words;
        go rest
      | Ec.Port.Failed | Ec.Port.Pending ->
        (Channel.Bus_error, Sim.Kernel.now t.kernel - t0)
    end
  in
  if words <= 0 || addr mod 4 <> 0 then (Channel.Bus_error, 0)
  else go (chunks addr words)

let write t ~addr data =
  let t0 = Sim.Kernel.now t.kernel in
  let words = Array.length data in
  let rec go = function
    | [] -> (Channel.Ok_data [||], Sim.Kernel.now t.kernel - t0)
    | (chunk_addr, chunk_words) :: rest -> begin
      let payload = Array.sub data ((chunk_addr - addr) / 4) chunk_words in
      let txn =
        Ec.Txn.create ~id:(Ec.Txn.Id_gen.fresh t.ids) ~kind:Ec.Txn.Data
          ~dir:Ec.Txn.Write ~width:Ec.Txn.W32 ~addr:chunk_addr
          ~burst:chunk_words ~data:payload ()
      in
      match transact t txn with
      | Ec.Port.Done -> go rest
      | Ec.Port.Failed | Ec.Port.Pending ->
        (Channel.Bus_error, Sim.Kernel.now t.kernel - t0)
    end
  in
  if words = 0 || addr mod 4 <> 0 then (Channel.Bus_error, 0)
  else go (chunks addr words)

let transactions t = t.transactions
