(** Layer-3 to cycle-accurate bridge.

    The layer taxonomy's stated use of layer 1 includes "bridging layer
    three or layer two components to cycle accurate systems"; this bridge
    is that adapter: it splits an arbitrary-size layer-3 message into
    legal EC transactions (4-word bursts plus single words), pushes them
    through a timed port, and blocks the caller while the clock advances
    — so an untimed component can talk to any of the timed bus models and
    be priced by their energy models. *)

type t

val create : kernel:Sim.Kernel.t -> port:Ec.Port.t -> t

val read : t -> addr:int -> words:int -> Channel.outcome * int
(** [(outcome, cycles)]; cycles is the simulated time the message took. *)

val write : t -> addr:int -> int array -> Channel.outcome * int

val transact : t -> Ec.Txn.t -> Ec.Port.poll
(** Blocking replay of one prepared EC transaction through the timed
    port: retries submission until accepted, steps the clock to
    completion, retires, and returns the outcome.  This is the primitive
    behind first-class [L3] adaptive windows (DESIGN.md section 17.4):
    a trace's transactions pushed one by one keep their widths, kinds
    and bursts, but issue serially — the message layer has no
    pipelining, which is exactly its timing abstraction. *)

val idle : t -> cycles:int -> unit
(** Steps the shared clock through an idle gap (trace-gap cycles between
    replayed messages). *)

val transactions : t -> int
(** Timed bus transactions the bridge has issued. *)

val reset : t -> unit
(** Id supply and transaction counter back to creation state, so a
    pooled carrier system can host a fresh replay.  The kernel and port
    are wiring and stay. *)
