type hist = {
  h_name : string;
  bounds : float array;
  counts : int array;
  mutable h_total : int;
  (* One-element float array: a mutable float field in this mixed record
     would box on every write, and observe sits on the recording path. *)
  h_sum : float array;
}

let hist name bounds =
  {
    h_name = name;
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    h_total = 0;
    h_sum = [| 0.0 |];
  }

(* Linear scan: the bucket lists are a dozen entries, and a scan over a
   small float array allocates nothing. *)
let rec bucket_index bounds v i =
  if i >= Array.length bounds || v <= bounds.(i) then i
  else bucket_index bounds v (i + 1)

(* Int-valued observations avoid the boxed-float argument a call to
   [observe] would cost under the non-flambda compiler: the conversion
   stays in unboxed comparison/addition context. *)
let rec bucket_index_int bounds n i =
  if i >= Array.length bounds || float_of_int n <= bounds.(i) then i
  else bucket_index_int bounds n (i + 1)

let observe_int h n =
  let i = bucket_index_int h.bounds n 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_total <- h.h_total + 1;
  h.h_sum.(0) <- h.h_sum.(0) +. float_of_int n

let observe h v =
  let i = bucket_index h.bounds v 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_total <- h.h_total + 1;
  h.h_sum.(0) <- h.h_sum.(0) +. v

let hist_reset h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.h_total <- 0;
  h.h_sum.(0) <- 0.0

let max_slaves = 32

type t = {
  mutable issued : int;
  mutable rejected : int;
  mutable finished : int;
  mutable errored : int;
  mutable beats : int;
  mutable wait_stalls : int;
  (* Events the sink could not retain because its ring was full.  A
     truncated trace that does not say so is worse than no trace. *)
  mutable dropped : int;
  wait_by_slave : int array;
  latency : hist;
  occupancy : hist;
  outstanding : hist;
  pj_per_beat : hist;
}

let latency_bounds = [| 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
let occupancy_bounds = [| 0.; 1.; 2.; 4.; 8.; 16. |]
let outstanding_bounds = [| 1.; 2.; 4.; 8.; 12. |]
let pj_bounds = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500. |]

let create () =
  {
    issued = 0;
    rejected = 0;
    finished = 0;
    errored = 0;
    beats = 0;
    wait_stalls = 0;
    dropped = 0;
    wait_by_slave = Array.make max_slaves 0;
    latency = hist "txn-latency-cycles" latency_bounds;
    occupancy = hist "request-queue-depth" occupancy_bounds;
    outstanding = hist "master-outstanding" outstanding_bounds;
    pj_per_beat = hist "bus-pj-per-beat" pj_bounds;
  }

let reset t =
  t.issued <- 0;
  t.rejected <- 0;
  t.finished <- 0;
  t.errored <- 0;
  t.beats <- 0;
  t.wait_stalls <- 0;
  t.dropped <- 0;
  Array.fill t.wait_by_slave 0 max_slaves 0;
  hist_reset t.latency;
  hist_reset t.occupancy;
  hist_reset t.outstanding;
  hist_reset t.pj_per_beat

let incr_issued t = t.issued <- t.issued + 1
let incr_rejected t = t.rejected <- t.rejected + 1
let incr_finished t = t.finished <- t.finished + 1
let incr_errored t = t.errored <- t.errored + 1
let incr_beats t = t.beats <- t.beats + 1
let incr_dropped t = t.dropped <- t.dropped + 1

let add_wait_stall t ~slave =
  t.wait_stalls <- t.wait_stalls + 1;
  if slave >= 0 && slave < max_slaves then
    t.wait_by_slave.(slave) <- t.wait_by_slave.(slave) + 1

let observe_latency t ~cycles = observe_int t.latency cycles
let observe_occupancy t ~depth = observe_int t.occupancy depth
let observe_outstanding t ~depth = observe_int t.outstanding depth
let observe_pj_per_beat t v = observe t.pj_per_beat v

let issued t = t.issued
let rejected t = t.rejected
let finished t = t.finished
let errored t = t.errored
let beats t = t.beats
let wait_stalls t = t.wait_stalls
let dropped t = t.dropped

let wait_stalls_for_slave t i =
  if i >= 0 && i < max_slaves then t.wait_by_slave.(i) else 0

type hist_view = {
  name : string;
  bounds : float array;
  counts : int array;
  total : int;
  sum : float;
  mean : float;
}

type view = { counters : (string * int) list; hists : hist_view list }

let hist_view h =
  {
    name = h.h_name;
    bounds = Array.copy h.bounds;
    counts = Array.copy h.counts;
    total = h.h_total;
    sum = h.h_sum.(0);
    mean =
      (if h.h_total = 0 then 0.0 else h.h_sum.(0) /. float_of_int h.h_total);
  }

let view t =
  let slave_counters =
    List.filter_map
      (fun i ->
        if t.wait_by_slave.(i) > 0 then
          Some (Printf.sprintf "wait-stalls/slave%d" i, t.wait_by_slave.(i))
        else None)
      (List.init max_slaves Fun.id)
  in
  {
    counters =
      [
        ("txns-issued", t.issued);
        ("txns-rejected", t.rejected);
        ("txns-finished", t.finished);
        ("txns-errored", t.errored);
        ("beats", t.beats);
        ("wait-stalls", t.wait_stalls);
        ("events-dropped", t.dropped);
      ]
      @ slave_counters;
    hists =
      [
        hist_view t.latency;
        hist_view t.occupancy;
        hist_view t.outstanding;
        hist_view t.pj_per_beat;
      ];
  }

let bucket_label bounds i =
  let n = Array.length bounds in
  let num v =
    if Float.is_integer v then string_of_int (int_of_float v)
    else Printf.sprintf "%g" v
  in
  if i = 0 then Printf.sprintf "<=%s" (num bounds.(0))
  else if i = n then Printf.sprintf ">%s" (num bounds.(n - 1))
  else Printf.sprintf "%s-%s" (num bounds.(i - 1)) (num bounds.(i))

let hist_view_to_json (h : hist_view) =
  Json.Obj
    [
      ("name", Json.String h.name);
      ("total", Json.Int h.total);
      ("sum", Json.Float h.sum);
      ("mean", Json.Float h.mean);
      ( "buckets",
        Json.List
          (List.init (Array.length h.counts) (fun i ->
               Json.Obj
                 [
                   ("le", Json.String (bucket_label h.bounds i));
                   ("count", Json.Int h.counts.(i));
                 ])) );
    ]

(* Upper-bound estimate of the p-th percentile (p in 0..100): the bound
   of the bucket where the cumulative count crosses the rank.  The
   overflow bucket has no upper bound; report twice the last bound so
   the estimate stays finite and visibly saturated. *)
let percentile (h : hist_view) p =
  if h.total = 0 then 0.0
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.total)))
    in
    let n = Array.length h.bounds in
    let rec go i acc =
      if i >= Array.length h.counts then h.bounds.(n - 1) *. 2.0
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then
          if i < n then h.bounds.(i) else h.bounds.(n - 1) *. 2.0
        else go (i + 1) acc
    in
    go 0 0
  end

let to_json t =
  let v = view t in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) v.counters) );
      ("histograms", Json.List (List.map hist_view_to_json v.hists));
    ]

let pp ppf t =
  let v = view t in
  List.iter
    (fun (name, n) -> Format.fprintf ppf "%-24s %d@." name n)
    v.counters;
  List.iter
    (fun (h : hist_view) ->
      Format.fprintf ppf "%-24s total=%d mean=%.2f@." h.name h.total h.mean;
      Array.iteri
        (fun i c ->
          if c > 0 then
            Format.fprintf ppf "  %-12s %d@." (bucket_label h.bounds i) c)
        h.counts)
    v.hists
