(** Typed lifecycle events of a simulation run.

    Every instrumentation point in the bus models, the trace master and
    the mixed-level engine reduces to one of these shapes.  An event is a
    flat record of scalars — kind, timestamp and three payload slots —
    so the {!Sink} can keep them in preallocated parallel arrays and
    recording never allocates.

    Payload conventions per kind (unused slots are [-1] / [0.0]):

    - [Txn_issued]: [id] = transaction id, [arg] = outstanding category
      (0 instr-read, 1 data-read, 2 write), [arg2] = request-queue depth
      at acceptance.
    - [Txn_rejected]: a submission the bus refused (bus state [Wait] at
      the master); [id], [arg] as for [Txn_issued].
    - [Txn_granted]: address phase completed; [arg] = slave index.
    - [Data_beat]: one data beat transferred; [arg] = beat index,
      [arg2] = slave index.
    - [Txn_finished]: [arg] = beats moved, [value] = latency in cycles
      from issue (negative when the issue event was not seen).
    - [Txn_error]: the bus terminated the transaction with an error.
    - [Window_open] / [Window_close]: mixed-level window span; [id] =
      window index, [arg] = level code, and on close [value] = the
      window's spliced bus energy \[pJ\], [arg2] = beats.
    - [Level_switch]: [id] = window index opening, [arg] = previous
      level code, [arg2] = next level code.
    - [Energy_sample]: [value] = bus energy \[pJ\] accumulated since the
      previous sample. *)

type kind =
  | Txn_issued
  | Txn_rejected
  | Txn_granted
  | Data_beat
  | Txn_finished
  | Txn_error
  | Window_open
  | Window_close
  | Level_switch
  | Energy_sample

type t = {
  kind : kind;
  cycle : int;  (** timestamp on the run's (spliced) cycle timeline *)
  id : int;
  arg : int;
  arg2 : int;
  value : float;
}

val kind_code : kind -> int
(** Dense code, stable across a session; inverse {!kind_of_code}. *)

val kind_of_code : int -> kind
(** @raise Invalid_argument on an unknown code. *)

val kind_name : kind -> string

val level_name : int -> string
(** Conventional names for the level codes carried in [arg]/[arg2]:
    0 = "gate-level", 1 = "l1", 2 = "l2"; other codes render as
    ["level-N"].  The codes are assigned by the recording layer
    ({!Hier.Level.to_code}). *)

val category_name : int -> string
(** Outstanding-category names: 0 = "instr-read", 1 = "data-read",
    2 = "write". *)

val pp : Format.formatter -> t -> unit
