type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf v =
  if Float.is_nan v || v = infinity || v = neg_infinity then
    (* JSON has no NaN/inf; null is the conventional stand-in. *)
    Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" v)
  else begin
    let text = Printf.sprintf "%.17g" v in
    Buffer.add_string buf text;
    (* %.17g renders integral magnitudes in [1e15, 1e17) as bare digits,
       which would re-parse as Int — keep the value a float on the wire. *)
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') text then
      Buffer.add_string buf ".0"
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> add_float buf v
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  to_buffer buf t;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %C, got %C" c got)
    | None -> error (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then error "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then error "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (* Validate by hand: [int_of_string "0x..."] is laxer than
             JSON (it accepts underscores and signs). *)
          let is_hex c =
            (c >= '0' && c <= '9')
            || (c >= 'a' && c <= 'f')
            || (c >= 'A' && c <= 'F')
          in
          if not (String.for_all is_hex hex) then error "bad \\u escape";
          let code = int_of_string ("0x" ^ hex) in
          (* Keep it simple: BMP code points as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> error (Printf.sprintf "bad escape \\%C" c));
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None
let string_opt = function String s -> Some s | _ -> None

let number_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b ->
    (* Bit-compare rather than [=]: NaN equals itself, and 0. vs -0.
       (distinct documents) stay distinct. *)
    Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | String a, String b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
    List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false
