(* Track (tid) layout: 1 = levels/windows, 2 = rejected submissions,
   10 + cat*8 + lane = master category lanes, 100 + i = slave i. *)

let pid = 1
let tid_levels = 1
let tid_rejected = 2
let tid_master cat lane = 10 + (cat * 8) + lane
let tid_slave i = 100 + i

type span = {
  s_start : int;
  s_end : int;
  s_id : int;
  s_cat : int;
  s_slave : int;
  s_ok : bool;
  s_beats : int;
  s_latency : float;
}

(* Reconstruct issue->finish intervals per transaction id.  Only spans
   with both endpoints inside the ring are kept, so B/E stay balanced. *)
let txn_spans events =
  let open_txns : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  (* id -> (issue cycle, cat, slave) *)
  let spans = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Txn_issued ->
        Hashtbl.replace open_txns e.Event.id (e.Event.cycle, e.Event.arg, -1)
      | Event.Txn_granted -> (
        match Hashtbl.find_opt open_txns e.Event.id with
        | Some (start, cat, _) ->
          Hashtbl.replace open_txns e.Event.id (start, cat, e.Event.arg)
        | None -> ())
      | Event.Txn_finished | Event.Txn_error -> (
        match Hashtbl.find_opt open_txns e.Event.id with
        | Some (start, cat, slave) ->
          Hashtbl.remove open_txns e.Event.id;
          spans :=
            {
              s_start = start;
              s_end = max start e.Event.cycle;
              s_id = e.Event.id;
              s_cat = cat;
              s_slave = slave;
              s_ok = e.Event.kind = Event.Txn_finished;
              s_beats = (if e.Event.kind = Event.Txn_finished then e.Event.arg else 0);
              s_latency = e.Event.value;
            }
            :: !spans
        | None -> ())
      | _ -> ())
    events;
  List.sort (fun a b -> compare (a.s_start, a.s_id) (b.s_start, b.s_id)) !spans

(* Greedy lane assignment: within one category, a lane is reusable once
   its previous span ended strictly before the new span starts, so each
   (category, lane) track carries non-overlapping spans in time order. *)
let assign_lanes spans =
  let lanes : (int, int array) Hashtbl.t = Hashtbl.create 4 in
  (* cat -> last end cycle per lane *)
  List.map
    (fun s ->
      let ends =
        match Hashtbl.find_opt lanes s.s_cat with
        | Some a -> a
        | None ->
          let a = Array.make 8 (-1) in
          Hashtbl.add lanes s.s_cat a;
          a
      in
      let lane = ref 0 in
      while !lane < Array.length ends - 1 && ends.(!lane) >= s.s_start do
        incr lane
      done;
      ends.(!lane) <- s.s_end;
      (s, !lane))
    spans

let ev ?(args = []) ~name ~ph ~ts ~tid () =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String "sim");
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let counter ~name ~ts ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ (name, Json.Float value) ]);
    ]

let meta ~name ~tid ~label =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("ts", Json.Int 0);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String label) ]);
    ]

let profile_counters profile =
  let len = Power.Profile.length profile in
  if len = 0 then []
  else begin
    let stride = max 1 ((len + 2047) / 2048) in
    let rec loop lo acc =
      if lo >= len then List.rev acc
      else begin
        let hi = min len (lo + stride) in
        let v = Power.Profile.window_sum profile ~lo ~hi in
        loop hi (counter ~name:"pj_per_cycle" ~ts:lo ~value:v :: acc)
      end
    in
    loop 0 []
  end

let trace_json ?profile ?(slave_names = [||]) sink =
  let events = Sink.events sink in
  let slave_name i =
    if i >= 0 && i < Array.length slave_names then slave_names.(i)
    else Printf.sprintf "slave%d" i
  in
  let used_tids = Hashtbl.create 16 in
  let use tid label = if not (Hashtbl.mem used_tids tid) then Hashtbl.add used_tids tid label in
  use tid_levels "levels";
  (* Transaction spans on master lanes. *)
  let span_events =
    List.concat_map
      (fun (s, lane) ->
        let tid = tid_master s.s_cat lane in
        use tid (Printf.sprintf "%s#%d" (Event.category_name s.s_cat) lane);
        let args =
          [ ("id", Json.Int s.s_id); ("ok", Json.Bool s.s_ok) ]
          @ (if s.s_beats > 0 then [ ("beats", Json.Int s.s_beats) ] else [])
          @ (if s.s_latency >= 0.0 then
               [ ("latency_cycles", Json.Float s.s_latency) ]
             else [])
          @
          if s.s_slave >= 0 then [ ("slave", Json.String (slave_name s.s_slave)) ]
          else []
        in
        let name =
          Printf.sprintf "txn %s%s" (Event.category_name s.s_cat)
            (if s.s_ok then "" else " (error)")
        in
        [
          ev ~name ~ph:"B" ~ts:s.s_start ~tid ~args ();
          ev ~name ~ph:"E" ~ts:s.s_end ~tid ();
        ])
      (assign_lanes (txn_spans events))
  in
  (* Everything that maps 1:1 from the ring. *)
  let direct_events =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Data_beat ->
          let tid = tid_slave e.Event.arg2 in
          use tid (slave_name e.Event.arg2);
          Some
            (ev ~name:"beat" ~ph:"i" ~ts:e.Event.cycle ~tid
               ~args:[ ("txn", Json.Int e.Event.id); ("beat", Json.Int e.Event.arg) ]
               ())
        | Event.Txn_rejected ->
          use tid_rejected "rejected submissions";
          Some
            (ev ~name:"reject" ~ph:"i" ~ts:e.Event.cycle ~tid:tid_rejected
               ~args:
                 [
                   ("txn", Json.Int e.Event.id);
                   ("category", Json.String (Event.category_name e.Event.arg));
                 ]
               ())
        | Event.Window_open ->
          Some
            (ev
               ~name:(Printf.sprintf "window %s" (Event.level_name e.Event.arg))
               ~ph:"B" ~ts:e.Event.cycle ~tid:tid_levels
               ~args:
                 [
                   ("window", Json.Int e.Event.id);
                   ("level", Json.String (Event.level_name e.Event.arg));
                 ]
               ())
        | Event.Window_close ->
          Some
            (ev
               ~name:(Printf.sprintf "window %s" (Event.level_name e.Event.arg))
               ~ph:"E" ~ts:e.Event.cycle ~tid:tid_levels
               ~args:
                 [
                   ("window", Json.Int e.Event.id);
                   ("spliced_pj", Json.Float e.Event.value);
                   ("beats", Json.Int e.Event.arg2);
                 ]
               ())
        | Event.Level_switch ->
          Some
            (ev
               ~name:
                 (Printf.sprintf "switch %s->%s"
                    (Event.level_name e.Event.arg)
                    (Event.level_name e.Event.arg2))
               ~ph:"i" ~ts:e.Event.cycle ~tid:tid_levels
               ~args:[ ("window", Json.Int e.Event.id) ]
               ())
        | Event.Energy_sample ->
          Some (counter ~name:"bus_pj" ~ts:e.Event.cycle ~value:e.Event.value)
        | Event.Txn_issued | Event.Txn_granted | Event.Txn_finished
        | Event.Txn_error ->
          None)
      events
  in
  let energy_track = match profile with None -> [] | Some p -> profile_counters p in
  (* Balanced windows: a run cut short can leave the last window open. *)
  let opens, closes =
    List.fold_left
      (fun (o, c) (e : Event.t) ->
        match e.Event.kind with
        | Event.Window_open -> (o + 1, c)
        | Event.Window_close -> (o, c + 1)
        | _ -> (o, c))
      (0, 0) events
  in
  let close_dangling =
    if opens > closes then begin
      let last_ts =
        List.fold_left (fun m (e : Event.t) -> max m e.Event.cycle) 0 events
      in
      List.init (opens - closes) (fun _ ->
          ev ~name:"window (open at export)" ~ph:"E" ~ts:last_ts ~tid:tid_levels ())
    end
    else []
  in
  let timed =
    List.stable_sort
      (fun a b ->
        match (Json.member "ts" a, Json.member "ts" b) with
        | Some (Json.Int ta), Some (Json.Int tb) -> compare ta tb
        | _ -> 0)
      (span_events @ direct_events @ energy_track @ close_dangling)
  in
  let metadata =
    meta ~name:"process_name" ~tid:0 ~label:"smartcard-sim"
    :: (Hashtbl.fold (fun tid label acc -> (tid, label) :: acc) used_tids []
       |> List.sort compare
       |> List.map (fun (tid, label) -> meta ~name:"thread_name" ~tid ~label))
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ timed));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("cycles_per_us", Json.Int 1);
            ("events_recorded", Json.Int (Sink.length sink));
            ("events_dropped", Json.Int (Sink.dropped sink));
          ] );
    ]

let to_string ?profile ?slave_names sink =
  Json.to_string (trace_json ?profile ?slave_names sink)

let write ?profile ?slave_names ~path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (trace_json ?profile ?slave_names sink);
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)
