type t = {
  capacity : int;
  kinds : int array;
  cycles : int array;
  ids : int array;
  args : int array;
  args2 : int array;
  values : float array;
  mutable len : int;
  mutable dropped : int;
  mutable base : int;
  issue_cycles : int Ec.Id_store.t;
  metrics : Metrics.t;
}

let create ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  {
    capacity;
    kinds = Array.make capacity 0;
    cycles = Array.make capacity 0;
    ids = Array.make capacity 0;
    args = Array.make capacity 0;
    args2 = Array.make capacity 0;
    values = Array.make capacity 0.0;
    len = 0;
    dropped = 0;
    base = 0;
    issue_cycles = Ec.Id_store.create ~dummy:0 ();
    metrics = Metrics.create ();
  }

let metrics t = t.metrics

let reset t =
  t.len <- 0;
  t.dropped <- 0;
  t.base <- 0;
  (* The issue store is bounded by the outstanding limits; drain it. *)
  while Ec.Id_store.length t.issue_cycles > 0 do
    Ec.Id_store.remove_at t.issue_cycles 0
  done;
  Metrics.reset t.metrics

let set_base t base = t.base <- base
let base t = t.base
let length t = t.len
let dropped t = t.dropped

(* Inlined so the float [value] stays unboxed at the call sites. *)
let[@inline] record t kind ~cycle ~id ~arg ~arg2 ~value =
  if t.len = t.capacity then begin
    t.dropped <- t.dropped + 1;
    Metrics.incr_dropped t.metrics
  end
  else begin
    let i = t.len in
    t.kinds.(i) <- Event.kind_code kind;
    t.cycles.(i) <- cycle + t.base;
    t.ids.(i) <- id;
    t.args.(i) <- arg;
    t.args2.(i) <- arg2;
    t.values.(i) <- value;
    t.len <- i + 1
  end

let event_at t i =
  {
    Event.kind = Event.kind_of_code t.kinds.(i);
    cycle = t.cycles.(i);
    id = t.ids.(i);
    arg = t.args.(i);
    arg2 = t.args2.(i);
    value = t.values.(i);
  }

let events t = List.init t.len (event_at t)

let iter f t =
  for i = 0 to t.len - 1 do
    f (event_at t i)
  done

let txn_issued t ~cycle ~id ~cat ~queue_depth =
  Metrics.incr_issued t.metrics;
  Metrics.observe_occupancy t.metrics ~depth:queue_depth;
  Ec.Id_store.set t.issue_cycles id (cycle + t.base);
  record t Event.Txn_issued ~cycle ~id ~arg:cat ~arg2:queue_depth ~value:0.0

let txn_rejected t ~cycle ~id ~cat =
  Metrics.incr_rejected t.metrics;
  record t Event.Txn_rejected ~cycle ~id ~arg:cat ~arg2:(-1) ~value:0.0

let txn_granted t ~cycle ~id ~slave =
  record t Event.Txn_granted ~cycle ~id ~arg:slave ~arg2:(-1) ~value:0.0

let data_beat t ~cycle ~id ~beat ~slave =
  Metrics.incr_beats t.metrics;
  record t Event.Data_beat ~cycle ~id ~arg:beat ~arg2:slave ~value:0.0

let finish_latency t ~cycle ~id =
  let issue = Ec.Id_store.find_default t.issue_cycles id ~default:(-1) in
  Ec.Id_store.remove t.issue_cycles id;
  if issue < 0 then -1
  else begin
    let latency = cycle + t.base - issue in
    Metrics.observe_latency t.metrics ~cycles:latency;
    latency
  end

let txn_finished t ~cycle ~id ~beats =
  Metrics.incr_finished t.metrics;
  let latency = finish_latency t ~cycle ~id in
  record t Event.Txn_finished ~cycle ~id ~arg:beats ~arg2:(-1)
    ~value:(float_of_int latency)

let txn_error t ~cycle ~id =
  Metrics.incr_errored t.metrics;
  let latency = finish_latency t ~cycle ~id in
  record t Event.Txn_error ~cycle ~id ~arg:(-1) ~arg2:(-1)
    ~value:(float_of_int latency)

let wait_stall t ~slave = Metrics.add_wait_stall t.metrics ~slave
let master_outstanding t ~depth = Metrics.observe_outstanding t.metrics ~depth

let window_open t ~cycle ~index ~level =
  record t Event.Window_open ~cycle ~id:index ~arg:level ~arg2:(-1) ~value:0.0

let window_close t ~cycle ~index ~level ~beats ~pj =
  if beats > 0 then
    Metrics.observe_pj_per_beat t.metrics (pj /. float_of_int beats);
  record t Event.Window_close ~cycle ~id:index ~arg:level ~arg2:beats ~value:pj

let level_switch t ~cycle ~index ~prev ~next =
  record t Event.Level_switch ~cycle ~id:index ~arg:prev ~arg2:next ~value:0.0

let energy_sample t ~cycle ~pj =
  record t Event.Energy_sample ~cycle ~id:(-1) ~arg:(-1) ~arg2:(-1) ~value:pj
