(** Minimal JSON tree, printer and parser.

    Just enough for the Chrome trace exporter and the metrics snapshots:
    no external dependency, round-trips the documents this library emits.
    The parser exists so tests (and the bench smoke run) can re-read an
    exported trace and check it structurally. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict parse of one document; [Error msg] carries the byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other shapes. *)

val to_list_opt : t -> t list option
val string_opt : t -> string option
val number_opt : t -> float option
(** [Int] and [Float] both answer. *)

val int_opt : t -> int option
(** [Int], plus [Float] values that are exact small integers (a peer's
    encoder may not keep the distinction). *)

val bool_opt : t -> bool option

val equal : t -> t -> bool
(** Structural equality.  Floats compare by bit pattern, so NaN equals
    itself and [0.] differs from [-0.] — the equality a print/parse
    round-trip preserves. *)
