(** Fixed-shape simulator metrics: counters and fixed-bucket histograms.

    All storage is preallocated at creation; recording increments
    scalars or array cells and never allocates, so a metrics-carrying
    {!Sink} can sit on the per-cycle bus paths.  The shape is fixed to
    the quantities the bus models expose: issue/finish/error/reject
    counters, wait-state stalls (total and per slave), and histograms of
    transaction latency, request-queue occupancy at issue, master-side
    outstanding transactions and bus energy per beat. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Recording} (allocation-free) *)

val incr_issued : t -> unit
val incr_rejected : t -> unit
val incr_finished : t -> unit
val incr_errored : t -> unit
val incr_beats : t -> unit

val add_wait_stall : t -> slave:int -> unit
(** One data- or address-phase stall cycle attributed to [slave]
    (out-of-range slave indices count only toward the total). *)

val observe_latency : t -> cycles:int -> unit
val observe_occupancy : t -> depth:int -> unit
val observe_outstanding : t -> depth:int -> unit
val observe_pj_per_beat : t -> float -> unit

(** {1 Reading} *)

val issued : t -> int
val rejected : t -> int
val finished : t -> int
val errored : t -> int
val beats : t -> int
val wait_stalls : t -> int
val wait_stalls_for_slave : t -> int -> int

type hist_view = {
  name : string;
  bounds : float array;  (** inclusive upper bucket bounds, ascending *)
  counts : int array;  (** [Array.length bounds + 1]; last is overflow *)
  total : int;
  sum : float;
  mean : float;  (** 0 when empty *)
}

type view = {
  counters : (string * int) list;
      (** includes one ["wait-stalls/<slave>"] entry per slave index
          that recorded at least one stall *)
  hists : hist_view list;
}

val view : t -> view
(** Snapshot; independent of later recording. *)

val bucket_label : float array -> int -> string
(** Human label of bucket [i] of a {!hist_view} ("<=4", "4-8", ">1024"). *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
(** Plain multi-line text rendering (the tabular rendering lives in
    [Core.Report.metrics]). *)
