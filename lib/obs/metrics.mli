(** Fixed-shape simulator metrics: counters and fixed-bucket histograms.

    All storage is preallocated at creation; recording increments
    scalars or array cells and never allocates, so a metrics-carrying
    {!Sink} can sit on the per-cycle bus paths.  The shape is fixed to
    the quantities the bus models expose: issue/finish/error/reject
    counters, wait-state stalls (total and per slave), and histograms of
    transaction latency, request-queue occupancy at issue, master-side
    outstanding transactions and bus energy per beat. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Recording} (allocation-free) *)

val incr_issued : t -> unit
val incr_rejected : t -> unit
val incr_finished : t -> unit
val incr_errored : t -> unit
val incr_beats : t -> unit

val incr_dropped : t -> unit
(** An event the recording sink had to discard (ring full) — surfaced as
    the ["events-dropped"] counter so truncated traces are detectable. *)

val add_wait_stall : t -> slave:int -> unit
(** One data- or address-phase stall cycle attributed to [slave]
    (out-of-range slave indices count only toward the total). *)

val observe_latency : t -> cycles:int -> unit
val observe_occupancy : t -> depth:int -> unit
val observe_outstanding : t -> depth:int -> unit
val observe_pj_per_beat : t -> float -> unit

(** {1 Reading} *)

val issued : t -> int
val rejected : t -> int
val finished : t -> int
val errored : t -> int
val beats : t -> int
val wait_stalls : t -> int
val dropped : t -> int
val wait_stalls_for_slave : t -> int -> int

(** {1 Standalone histograms}

    The same preallocated fixed-bucket histogram the metrics record
    uses, for callers that track their own quantities (e.g. the service
    telemetry registry).  Recording never allocates. *)

type hist

val hist : string -> float array -> hist
(** [hist name bounds]: [bounds] are inclusive upper bucket bounds in
    ascending order; one overflow bucket is added past the last. *)

val observe : hist -> float -> unit
val observe_int : hist -> int -> unit
val hist_reset : hist -> unit

type hist_view = {
  name : string;
  bounds : float array;  (** inclusive upper bucket bounds, ascending *)
  counts : int array;  (** [Array.length bounds + 1]; last is overflow *)
  total : int;
  sum : float;
  mean : float;  (** 0 when empty *)
}

type view = {
  counters : (string * int) list;
      (** includes one ["wait-stalls/<slave>"] entry per slave index
          that recorded at least one stall *)
  hists : hist_view list;
}

val view : t -> view
(** Snapshot; independent of later recording. *)

val hist_view : hist -> hist_view
(** Snapshot of a standalone histogram. *)

val bucket_label : float array -> int -> string
(** Human label of bucket [i] of a {!hist_view} ("<=4", "4-8", ">1024"). *)

val percentile : hist_view -> float -> float
(** Upper-bound estimate of the [p]-th percentile (p in 0..100): the
    bound of the bucket where the cumulative count crosses the rank; the
    unbounded overflow bucket reports twice the last bound.  0 when
    empty. *)

val hist_view_to_json : hist_view -> Json.t

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
(** Plain multi-line text rendering (the tabular rendering lives in
    [Core.Report.metrics]). *)
