(** Chrome trace-event JSON export (Perfetto / chrome://tracing).

    Renders a {!Sink}'s event timeline as a Chrome trace-event document
    ({"traceEvents": [...]}) with one cycle mapped to one microsecond:

    - one duration track per master category lane (issue → finish spans;
      concurrent transactions of a category spread over lanes so every
      track carries strictly sequential, balanced B/E pairs),
    - one instant track per slave (data beats),
    - a level track with one B/E span per mixed-level window, the close
      event carrying the window's spliced energy in its [args], plus
      level-switch instants,
    - [bus_pj] counter samples from {!Event.Energy_sample} events and an
      optional per-cycle [pj_per_cycle] counter from a recorded
      {!Power.Profile.t} (downsampled to at most 2048 points).

    Spans whose begin or end fell outside the ring (dropped events) are
    omitted, keeping B/E pairs balanced by construction. *)

val trace_json :
  ?profile:Power.Profile.t -> ?slave_names:string array -> Sink.t -> Json.t
(** [slave_names.(i)] names slave track [i] (defaults to ["slave<i>"]). *)

val to_string :
  ?profile:Power.Profile.t -> ?slave_names:string array -> Sink.t -> string

val write :
  ?profile:Power.Profile.t ->
  ?slave_names:string array ->
  path:string ->
  Sink.t ->
  unit
