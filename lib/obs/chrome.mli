(** Chrome trace-event JSON export (Perfetto / chrome://tracing).

    Renders a {!Sink}'s event timeline as a Chrome trace-event document
    ({"traceEvents": [...]}) with one cycle mapped to one microsecond:

    - one duration track per master category lane (issue → finish spans;
      concurrent transactions of a category spread over lanes so every
      track carries strictly sequential, balanced B/E pairs),
    - one instant track per slave (data beats),
    - a level track with one B/E span per mixed-level window, the close
      event carrying the window's spliced energy in its [args], plus
      level-switch instants,
    - [bus_pj] counter samples from {!Event.Energy_sample} events and an
      optional per-cycle [pj_per_cycle] counter from a recorded
      {!Power.Profile.t} (downsampled to at most 2048 points).

    Spans whose begin or end fell outside the ring (dropped events) are
    omitted, keeping B/E pairs balanced by construction. *)

(** {1 Event constructors}

    The raw trace-event builders, shared with other exporters (the
    service telemetry plane builds its worker-lane trace from these). *)

val ev :
  ?args:(string * Json.t) list ->
  name:string ->
  ph:string ->
  ts:int ->
  tid:int ->
  unit ->
  Json.t
(** One trace event: [ph] is the Chrome phase ("B"/"E"/"i"/...). *)

val counter : name:string -> ts:int -> value:float -> Json.t
(** A counter-track sample (ph "C", tid 0). *)

val meta : name:string -> tid:int -> label:string -> Json.t
(** A metadata event (ph "M"): [name] is ["process_name"] or
    ["thread_name"], [label] the displayed name. *)

(** {1 Sink export} *)

val trace_json :
  ?profile:Power.Profile.t -> ?slave_names:string array -> Sink.t -> Json.t
(** [slave_names.(i)] names slave track [i] (defaults to ["slave<i>"]). *)

val to_string :
  ?profile:Power.Profile.t -> ?slave_names:string array -> Sink.t -> string

val write :
  ?profile:Power.Profile.t ->
  ?slave_names:string array ->
  path:string ->
  Sink.t ->
  unit
