(** The instrumentation sink: a preallocated event ring plus metrics.

    One sink is threaded (as a single optional argument) through the bus
    models, the trace master and the mixed-level engine.  Recording
    writes scalars into preallocated parallel arrays and updates the
    {!Metrics} — no allocation on any recording call, and the no-sink
    path in the instrumented models is a single immediate [match] on an
    option, so disabled instrumentation costs nothing measurable.

    The ring keeps the first [capacity] events of a run and counts the
    rest as dropped (metrics keep aggregating regardless), which
    preserves the start of the timeline for span reconstruction.

    Timestamps: recording sites pass their kernel-local cycle; {!set_base}
    lets the mixed-level engine shift each window onto the spliced
    timeline, since every window runs on a fresh kernel starting at
    cycle 0. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the event-ring size, default 65536. *)

val metrics : t -> Metrics.t

val reset : t -> unit
(** Drop all events, metrics and the timeline base. *)

val set_base : t -> int -> unit
(** Cycle offset added to every subsequently recorded timestamp. *)

val base : t -> int

val length : t -> int
(** Events currently held (at most [capacity]). *)

val dropped : t -> int
(** Events discarded because the ring was full. *)

val events : t -> Event.t list
(** The held events in record order.  Allocates (one record per event);
    meant for export and tests, not for the hot path. *)

val iter : (Event.t -> unit) -> t -> unit

(** {1 Recording}

    All cycle arguments are kernel-local; the sink adds {!base}. *)

val txn_issued : t -> cycle:int -> id:int -> cat:int -> queue_depth:int -> unit
(** Also feeds the occupancy histogram and stamps the issue cycle used
    for the latency histogram at {!txn_finished}. *)

val txn_rejected : t -> cycle:int -> id:int -> cat:int -> unit
val txn_granted : t -> cycle:int -> id:int -> slave:int -> unit
val data_beat : t -> cycle:int -> id:int -> beat:int -> slave:int -> unit

val txn_finished : t -> cycle:int -> id:int -> beats:int -> unit
(** Computes the issue-to-finish latency when the issue was recorded. *)

val txn_error : t -> cycle:int -> id:int -> unit

val wait_stall : t -> slave:int -> unit
(** Metrics only (one stall cycle); too frequent to carry as events. *)

val master_outstanding : t -> depth:int -> unit
(** Metrics only: master-side outstanding transactions after a submit. *)

val window_open : t -> cycle:int -> index:int -> level:int -> unit

val window_close :
  t -> cycle:int -> index:int -> level:int -> beats:int -> pj:float -> unit
(** Also feeds the pJ-per-beat histogram. *)

val level_switch : t -> cycle:int -> index:int -> prev:int -> next:int -> unit
val energy_sample : t -> cycle:int -> pj:float -> unit
