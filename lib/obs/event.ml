type kind =
  | Txn_issued
  | Txn_rejected
  | Txn_granted
  | Data_beat
  | Txn_finished
  | Txn_error
  | Window_open
  | Window_close
  | Level_switch
  | Energy_sample

type t = {
  kind : kind;
  cycle : int;
  id : int;
  arg : int;
  arg2 : int;
  value : float;
}

let kind_code = function
  | Txn_issued -> 0
  | Txn_rejected -> 1
  | Txn_granted -> 2
  | Data_beat -> 3
  | Txn_finished -> 4
  | Txn_error -> 5
  | Window_open -> 6
  | Window_close -> 7
  | Level_switch -> 8
  | Energy_sample -> 9

let kind_of_code = function
  | 0 -> Txn_issued
  | 1 -> Txn_rejected
  | 2 -> Txn_granted
  | 3 -> Data_beat
  | 4 -> Txn_finished
  | 5 -> Txn_error
  | 6 -> Window_open
  | 7 -> Window_close
  | 8 -> Level_switch
  | 9 -> Energy_sample
  | c -> invalid_arg (Printf.sprintf "Obs.Event.kind_of_code: %d" c)

let kind_name = function
  | Txn_issued -> "txn-issued"
  | Txn_rejected -> "txn-rejected"
  | Txn_granted -> "txn-granted"
  | Data_beat -> "data-beat"
  | Txn_finished -> "txn-finished"
  | Txn_error -> "txn-error"
  | Window_open -> "window-open"
  | Window_close -> "window-close"
  | Level_switch -> "level-switch"
  | Energy_sample -> "energy-sample"

let level_name = function
  | 0 -> "gate-level"
  | 1 -> "l1"
  | 2 -> "l2"
  | c -> Printf.sprintf "level-%d" c

let category_name = function
  | 0 -> "instr-read"
  | 1 -> "data-read"
  | 2 -> "write"
  | c -> Printf.sprintf "cat-%d" c

let pp ppf t =
  Format.fprintf ppf "@[<h>%8d %-13s id=%d arg=%d arg2=%d value=%.3f@]"
    t.cycle (kind_name t.kind) t.id t.arg t.arg2 t.value
