(** Register-transfer-level EC bus controller (reference, "layer 0").

    Implements the micro-protocol of DESIGN.md section 3 cycle by cycle
    over the physical wire set: a serialized address channel with slave
    wait states, independent in-order read and write data engines (one
    beat per cycle each, separate buses), per-category outstanding limits
    of four, pipelined address/data phases, and bus errors on unmapped or
    right-violating accesses.  The attached {!Diesel} estimator provides
    the golden timing and energy reference for the transaction-level
    models.

    The bus process runs on the falling clock edge; masters drive the
    {!Ec.Port.t} on the rising edge. *)

type t

val create :
  kernel:Sim.Kernel.t ->
  decoder:Ec.Decoder.t ->
  ?params:Params.t ->
  ?record_profile:bool ->
  ?sink:Obs.Sink.t ->
  unit ->
  t
(** Creates the bus, its wires and its estimator, and registers the bus
    process with [kernel].  [sink] attaches instrumentation: transaction
    lifecycle events (issue/reject/grant/beat/finish/error), wait-state
    stalls per slave and request-queue occupancy.  Without a sink the
    per-cycle path is untouched (a single option match, no allocation),
    and energy figures are bit-identical either way. *)

val port : t -> Ec.Port.t
val wires : t -> Wires.t
val diesel : t -> Diesel.t
val decoder : t -> Ec.Decoder.t

val busy : t -> bool
(** True while any transaction is queued or in flight. *)

val completed_txns : t -> int
val completed_beats : t -> int
val error_txns : t -> int

val busy_cycles : t -> int
(** Cycles in which at least one phase made progress. *)

val reset : t -> unit
(** Back to the freshly created state: queues, in-flight phases,
    outstanding counters, completion store, traffic counters, wires and
    the estimator all clear.  The kernel registration and the decoder are
    kept — reset exists so a wired-up session can be reused. *)
