type addr_job = {
  a_txn : Ec.Txn.t;
  a_sel : int;
  a_slave : Ec.Slave.t;
  mutable a_wait : int;
}

type data_job = {
  d_txn : Ec.Txn.t;
  d_slave : Ec.Slave.t;
  d_sel : int;  (* slave select index, -1 for placeholder slots *)
  d_wait_states : int;  (* per beat *)
  mutable d_beat : int;
  mutable d_wait : int;
}

type t = {
  kernel : Sim.Kernel.t;
  sink : Obs.Sink.t option;
  decoder : Ec.Decoder.t;
  wires : Wires.t;
  diesel : Diesel.t;
  requests : Ec.Txn.t Ec.Ring.t;
  read_q : data_job Ec.Ring.t;
  write_q : data_job Ec.Ring.t;
  mutable addr_cur : addr_job option;
  mutable read_cur : data_job option;
  mutable write_cur : data_job option;
  outstanding : int array;  (* per Txn.category *)
  finished : Ec.Port.poll Ec.Id_store.t;  (* by transaction id *)
  mutable completed_txns : int;
  mutable completed_beats : int;
  mutable error_txns : int;
  mutable busy_cycles : int;
}

let cat_index = function
  | Ec.Txn.Cat_instr_read -> 0
  | Ec.Txn.Cat_data_read -> 1
  | Ec.Txn.Cat_write -> 2

let max_outstanding = 4

let pop_opt q = Ec.Ring.pop_opt q

let release t (txn : Ec.Txn.t) outcome =
  let c = cat_index (Ec.Txn.category txn) in
  t.outstanding.(c) <- t.outstanding.(c) - 1;
  Ec.Id_store.set t.finished txn.Ec.Txn.id outcome;
  (match outcome with
  | Ec.Port.Done ->
    t.completed_txns <- t.completed_txns + 1;
    t.completed_beats <- t.completed_beats + txn.Ec.Txn.burst;
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_finished s ~cycle:(Sim.Kernel.now t.kernel)
        ~id:txn.Ec.Txn.id ~beats:txn.Ec.Txn.burst)
  | Ec.Port.Failed ->
    t.error_txns <- t.error_txns + 1;
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_error s ~cycle:(Sim.Kernel.now t.kernel) ~id:txn.Ec.Txn.id)
  | Ec.Port.Pending -> assert false)

(* Drive the address-group wires with a transaction's attributes. *)
let drive_addr_wires t (txn : Ec.Txn.t) =
  let w = t.wires in
  Sim.Signal.set (Wires.addr w) (txn.Ec.Txn.addr lsr 2);
  Sim.Signal.set (Wires.be w) (Ec.Txn.byte_enables txn 0);
  Wires.set_ctrl w Ec.Signals.Avalid true;
  Wires.set_ctrl w Ec.Signals.Instr (txn.Ec.Txn.kind = Ec.Txn.Instruction);
  Wires.set_ctrl w Ec.Signals.Write (txn.Ec.Txn.dir = Ec.Txn.Write);
  Wires.set_ctrl w Ec.Signals.Burst (txn.Ec.Txn.burst > 1)

let dispatch t (job : addr_job) =
  let txn = job.a_txn and slave = job.a_slave in
  let cfg = slave.Ec.Slave.cfg in
  let make wait_states =
    { d_txn = txn; d_slave = slave; d_sel = job.a_sel;
      d_wait_states = wait_states; d_beat = 0; d_wait = wait_states }
  in
  match txn.Ec.Txn.dir with
  | Ec.Txn.Read -> Ec.Ring.push t.read_q (make cfg.Ec.Slave_cfg.read_wait)
  | Ec.Txn.Write -> Ec.Ring.push t.write_q (make cfg.Ec.Slave_cfg.write_wait)

let addr_phase t =
  let w = t.wires in
  let progressed = ref false in
  let complete job =
    Wires.set_ctrl w Ec.Signals.Ardy true;
    Sim.Signal.set (Wires.sel w) (1 lsl job.a_sel);
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_granted s ~cycle:(Sim.Kernel.now t.kernel)
        ~id:job.a_txn.Ec.Txn.id ~slave:job.a_sel);
    dispatch t job;
    t.addr_cur <- None;
    progressed := true
  in
  (match t.addr_cur with
  | Some job ->
    if job.a_wait > 0 then begin
      job.a_wait <- job.a_wait - 1;
      (match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:job.a_sel);
      progressed := true
    end
    else complete job
  | None -> ());
  if t.addr_cur = None && not !progressed then begin
    match pop_opt t.requests with
    | None -> ()
    | Some txn -> begin
      progressed := true;
      drive_addr_wires t txn;
      match Ec.Decoder.check t.decoder txn with
      | Ec.Decoder.Unmapped | Ec.Decoder.Rights_violation _ ->
        (* Bus error: the controller terminates the transaction in its
           initiation cycle with the matching error strobe. *)
        Wires.set_ctrl w Ec.Signals.Ardy true;
        let err =
          match txn.Ec.Txn.dir with
          | Ec.Txn.Read -> Ec.Signals.Rberr
          | Ec.Txn.Write -> Ec.Signals.Wberr
        in
        Wires.set_ctrl w err true;
        release t txn Ec.Port.Failed
      | Ec.Decoder.Mapped (i, slave) ->
        let job =
          { a_txn = txn; a_sel = i; a_slave = slave;
            a_wait = slave.Ec.Slave.cfg.Ec.Slave_cfg.addr_wait }
        in
        (* The pop cycle is the first wait cycle, so an address phase
           occupies exactly addr_wait + 1 cycles. *)
        if job.a_wait = 0 then complete job
        else begin
          job.a_wait <- job.a_wait - 1;
          t.addr_cur <- Some job
        end
    end
  end;
  !progressed

let read_phase t =
  let w = t.wires in
  if t.read_cur = None then t.read_cur <- pop_opt t.read_q;
  match t.read_cur with
  | None -> false
  | Some job ->
    if job.d_wait > 0 then begin
      job.d_wait <- job.d_wait - 1;
      match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:job.d_sel
    end
    else begin
      let txn = job.d_txn in
      let value = Ec.Slave.read_beat job.d_slave txn job.d_beat in
      Ec.Txn.set_beat txn job.d_beat value;
      Sim.Signal.set (Wires.rdata w) value;
      Wires.set_ctrl w Ec.Signals.Rdval true;
      if txn.Ec.Txn.burst > 1 then begin
        if job.d_beat = 0 then Wires.set_ctrl w Ec.Signals.Bfirst true;
        if job.d_beat = txn.Ec.Txn.burst - 1 then
          Wires.set_ctrl w Ec.Signals.Blast true
      end;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.data_beat s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~beat:job.d_beat ~slave:job.d_sel);
      job.d_beat <- job.d_beat + 1;
      if job.d_beat = txn.Ec.Txn.burst then begin
        release t txn Ec.Port.Done;
        t.read_cur <- None
      end
      else job.d_wait <- job.d_wait_states
    end;
    true

let write_phase t =
  let w = t.wires in
  if t.write_cur = None then begin
    t.write_cur <- pop_opt t.write_q;
    match t.write_cur with
    | Some job -> Sim.Signal.set (Wires.wdata w) job.d_txn.Ec.Txn.data.(0)
    | None -> ()
  end;
  match t.write_cur with
  | None -> false
  | Some job ->
    if job.d_wait > 0 then begin
      job.d_wait <- job.d_wait - 1;
      match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:job.d_sel
    end
    else begin
      let txn = job.d_txn in
      Sim.Signal.set (Wires.wdata w) txn.Ec.Txn.data.(job.d_beat);
      Wires.set_ctrl w Ec.Signals.Wdrdy true;
      Ec.Slave.write_beat job.d_slave txn job.d_beat;
      if txn.Ec.Txn.burst > 1 then begin
        if job.d_beat = 0 then Wires.set_ctrl w Ec.Signals.Bfirst true;
        if job.d_beat = txn.Ec.Txn.burst - 1 then
          Wires.set_ctrl w Ec.Signals.Blast true
      end;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.data_beat s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~beat:job.d_beat ~slave:job.d_sel);
      job.d_beat <- job.d_beat + 1;
      if job.d_beat = txn.Ec.Txn.burst then begin
        release t txn Ec.Port.Done;
        t.write_cur <- None
      end
      else begin
        job.d_wait <- job.d_wait_states;
        (* The master presents the next beat's data during its waits. *)
        Sim.Signal.set (Wires.wdata w) txn.Ec.Txn.data.(job.d_beat)
      end
    end;
    true

let strobe_defaults t =
  let w = t.wires in
  Wires.set_ctrl w Ec.Signals.Avalid false;
  Wires.set_ctrl w Ec.Signals.Ardy false;
  Wires.set_ctrl w Ec.Signals.Rdval false;
  Wires.set_ctrl w Ec.Signals.Wdrdy false;
  Wires.set_ctrl w Ec.Signals.Rberr false;
  Wires.set_ctrl w Ec.Signals.Wberr false;
  Wires.set_ctrl w Ec.Signals.Bfirst false;
  Wires.set_ctrl w Ec.Signals.Blast false

let cycle t _kernel =
  strobe_defaults t;
  (match t.addr_cur with
  | Some _ -> Wires.set_ctrl t.wires Ec.Signals.Avalid true
  | None -> ());
  let a = addr_phase t in
  let r = read_phase t in
  let wr = write_phase t in
  if a || r || wr then t.busy_cycles <- t.busy_cycles + 1;
  Diesel.observe_and_commit t.diesel

(* Inert placeholders for the preallocated ring slots.  The category
   limits cap each queue at 3 * max_outstanding entries, so a capacity of
   16 means the rings never grow. *)
let dummy_txn = Ec.Txn.single_read ~id:(-1) 0

let dummy_slave =
  Ec.Slave.make
    ~cfg:(Ec.Slave_cfg.make ~name:"(empty slot)" ~base:0 ~size:4 ())
    ~read:(fun ~addr:_ ~width:_ -> 0)
    ~write:(fun ~addr:_ ~width:_ ~value:_ -> ())

let dummy_job =
  { d_txn = dummy_txn; d_slave = dummy_slave; d_sel = -1; d_wait_states = 0;
    d_beat = 0; d_wait = 0 }

let create ~kernel ~decoder ?params ?record_profile ?sink () =
  let wires = Wires.create ~n_slaves:(max 1 (Ec.Decoder.count decoder)) in
  let diesel = Diesel.create ?params ?record_profile wires in
  let t =
    {
      kernel;
      sink;
      decoder;
      wires;
      diesel;
      requests = Ec.Ring.create ~dummy:dummy_txn ();
      read_q = Ec.Ring.create ~dummy:dummy_job ();
      write_q = Ec.Ring.create ~dummy:dummy_job ();
      addr_cur = None;
      read_cur = None;
      write_cur = None;
      outstanding = Array.make 3 0;
      finished = Ec.Id_store.create ~dummy:Ec.Port.Pending ();
      completed_txns = 0;
      completed_beats = 0;
      error_txns = 0;
      busy_cycles = 0;
    }
  in
  Sim.Kernel.on_falling kernel ~name:"rtl-bus" (cycle t);
  t

let port t =
  let try_submit txn =
    let c = cat_index (Ec.Txn.category txn) in
    if t.outstanding.(c) >= max_outstanding then begin
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_rejected s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~cat:c);
      false
    end
    else begin
      t.outstanding.(c) <- t.outstanding.(c) + 1;
      Ec.Ring.push t.requests txn;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_issued s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~cat:c ~queue_depth:(Ec.Ring.length t.requests));
      true
    end
  in
  let poll id = Ec.Id_store.find_default t.finished id ~default:Ec.Port.Pending in
  let retire id = Ec.Id_store.remove t.finished id in
  { Ec.Port.try_submit; poll; retire }

let wires t = t.wires
let diesel t = t.diesel
let decoder t = t.decoder

let busy t =
  t.addr_cur <> None || t.read_cur <> None || t.write_cur <> None
  || not (Ec.Ring.is_empty t.requests)
  || not (Ec.Ring.is_empty t.read_q)
  || not (Ec.Ring.is_empty t.write_q)

let completed_txns t = t.completed_txns
let completed_beats t = t.completed_beats
let error_txns t = t.error_txns
let busy_cycles t = t.busy_cycles

let reset t =
  Ec.Ring.clear t.requests;
  Ec.Ring.clear t.read_q;
  Ec.Ring.clear t.write_q;
  t.addr_cur <- None;
  t.read_cur <- None;
  t.write_cur <- None;
  Array.fill t.outstanding 0 3 0;
  Ec.Id_store.clear t.finished;
  t.completed_txns <- 0;
  t.completed_beats <- 0;
  t.error_txns <- 0;
  t.busy_cycles <- 0;
  Wires.reset t.wires;
  Diesel.reset t.diesel
