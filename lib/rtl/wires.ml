type t = {
  addr : Sim.Signal.t;
  be : Sim.Signal.t;
  wdata : Sim.Signal.t;
  rdata : Sim.Signal.t;
  ctrl : Sim.Signal.t array;  (* indexed like Ec.Signals.all_ctrl *)
  sel : Sim.Signal.t;
}

let ctrl_position c =
  let rec loop i = function
    | [] -> assert false
    | c' :: rest -> if c = c' then i else loop (i + 1) rest
  in
  loop 0 Ec.Signals.all_ctrl

let create ~n_slaves =
  if n_slaves < 1 || n_slaves > 62 then invalid_arg "Rtl.Wires.create";
  {
    addr = Sim.Signal.create ~name:"EB_A" ~width:Ec.Signals.addr_wires;
    be = Sim.Signal.create ~name:"EB_BE" ~width:Ec.Signals.be_wires;
    wdata = Sim.Signal.create ~name:"EB_WData" ~width:Ec.Signals.data_wires;
    rdata = Sim.Signal.create ~name:"EB_RData" ~width:Ec.Signals.data_wires;
    ctrl =
      Array.of_list
        (List.map
           (fun c -> Sim.Signal.create ~name:(Ec.Signals.to_string (Ec.Signals.Ctrl c)) ~width:1)
           Ec.Signals.all_ctrl);
    sel = Sim.Signal.create ~name:"SEL" ~width:n_slaves;
  }

let addr t = t.addr
let be t = t.be
let wdata t = t.wdata
let rdata t = t.rdata
let sel t = t.sel
let ctrl t c = t.ctrl.(ctrl_position c)
let set_ctrl t c v = Sim.Signal.set (ctrl t c) (if v then 1 else 0)
let ctrl_value t c = Sim.Signal.current (ctrl t c) = 1

let interface_groups t =
  [
    (Ec.Signals.Addr 0, t.addr);
    (Ec.Signals.Be 0, t.be);
    (Ec.Signals.Wdata 0, t.wdata);
    (Ec.Signals.Rdata 0, t.rdata);
  ]
  @ List.map (fun c -> (Ec.Signals.Ctrl c, ctrl t c)) Ec.Signals.all_ctrl

let commit_all t =
  ignore (Sim.Signal.commit t.addr);
  ignore (Sim.Signal.commit t.be);
  ignore (Sim.Signal.commit t.wdata);
  ignore (Sim.Signal.commit t.rdata);
  Array.iter (fun s -> ignore (Sim.Signal.commit s)) t.ctrl;
  ignore (Sim.Signal.commit t.sel)

let reset t =
  Sim.Signal.reset t.addr;
  Sim.Signal.reset t.be;
  Sim.Signal.reset t.wdata;
  Sim.Signal.reset t.rdata;
  Array.iter Sim.Signal.reset t.ctrl;
  Sim.Signal.reset t.sel

let value_of t = function
  | Ec.Signals.Addr i -> Sim.Signal.current t.addr land (1 lsl i) <> 0
  | Ec.Signals.Be i -> Sim.Signal.current t.be land (1 lsl i) <> 0
  | Ec.Signals.Wdata i -> Sim.Signal.current t.wdata land (1 lsl i) <> 0
  | Ec.Signals.Rdata i -> Sim.Signal.current t.rdata land (1 lsl i) <> 0
  | Ec.Signals.Ctrl c -> ctrl_value t c
