(** Gate-level-style power estimator (substitute for the Diesel tool).

    Observes the RTL wire set once per cycle, just before the commit, and
    attributes energy per wire: slope-dependent edge energies from the wire
    capacitances, lateral coupling between adjacent wires of the same bus,
    internal decoder/mux/FSM net activity, address decoder glitches and
    static leakage.  The internal contributions are deliberately invisible
    to the transaction-level characterization — they are the systematic
    part of the layer-1 estimation error the paper measures.

    The per-cycle observation is allocation-free: all per-wire edge and
    coupling energies are precomputed into lookup tables at creation, and
    toggled bits are found by scanning [cur lxor nxt] words.  The original
    naive path (a movements array per signal group per cycle, capacitance
    math per toggle) is retained behind [~reference:true] as the validation
    oracle; both paths accumulate floats in the same order and are
    bit-for-bit equal. *)

type t

val create :
  ?params:Params.t -> ?record_profile:bool -> ?reference:bool -> Wires.t -> t
(** [reference] (default false) selects the naive per-bit observation
    path instead of the precomputed-table one. *)

val observe_and_commit : t -> unit
(** Performs the per-cycle estimation over the old/new values of every
    wire, then commits the wires and closes the meter cycle. *)

val total_pj : t -> float
(** Interface plus internal plus leakage energy. *)

val interface_pj : t -> float
(** Energy attributed to EC interface wires only (self + coupling). *)

val internal_pj : t -> float
(** Energy of internal nets, glitches and leakage. *)

val meter : t -> Power.Meter.t
(** Cycle-accurate meter over the total energy. *)

val per_signal_energy_pj : t -> float array
(** Accumulated interface energy per wire, indexed by
    {!Ec.Signals.index}. *)

val per_signal_transitions : t -> int array

val transitions_total : t -> int
(** Total committed interface wire transitions. *)

val characterize : name:string -> t -> Power.Characterization.t
(** Derives a characterization table from the accumulated measurement, the
    equivalent of the paper's Diesel-based flow. *)

val reset : t -> unit
(** Clears every accumulator (per-signal energies and transitions, the
    interface/internal totals and the meter).  The precomputed energy
    tables and parameters are immutable and stay; the wires are owned by
    the bus and are reset by {!Bus.reset}. *)
