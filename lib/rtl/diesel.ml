(* Per-wire signal classes, in Wires.interface_groups order. *)
type group_class = Gaddr | Gbe | Gwdata | Grdata | Gctrl

type group = {
  g_base : int;  (* Ec.Signals.index of the group's bit 0 *)
  g_width : int;
  g_signal : Sim.Signal.t;
  g_class : group_class;
}

type t = {
  params : Params.t;
  wires : Wires.t;
  meter : Power.Meter.t;
  reference : bool;
  (* Precomputed per-wire energy tables, indexed by Ec.Signals.index.
     Built once in [create] so the per-cycle observation never touches
     Power.Units, Ec.Signals.of_index or the capacitance table. *)
  rise_pj : float array;
  fall_pj : float array;
  lat_pj : float array;  (* exactly one wire of the pair toggles *)
  lat_same_pj : float array;  (* both toggle, same direction *)
  lat_opp_pj : float array;  (* both toggle, opposite directions *)
  groups : group array;
  (* The meter's in-cycle accumulator (index 0), shared so the hot path
     adds without a cross-module call boxing the float. *)
  meter_acc : float array;
  per_signal_pj : float array;
  per_signal_transitions : int array;
  (* interface total, internal total: an unboxed float pair — mutable
     float fields of this mixed record would box on every store. *)
  totals : float array;
}

let class_of = function
  | Ec.Signals.Addr _ -> Gaddr
  | Ec.Signals.Be _ -> Gbe
  | Ec.Signals.Wdata _ -> Gwdata
  | Ec.Signals.Rdata _ -> Grdata
  | Ec.Signals.Ctrl _ -> Gctrl

let create ?(params = Params.default) ?(record_profile = false)
    ?(reference = false) wires =
  let meter = Power.Meter.create ~record_profile () in
  let self i =
    Power.Units.pj_per_transition
      ~capacitance_ff:(Ec.Signals.default_capacitance_ff (Ec.Signals.of_index i))
      ~vdd:params.Params.vdd
  in
  let lat i = self i *. params.Params.coupling_ratio in
  {
    params;
    wires;
    meter;
    meter_acc = Power.Meter.in_cycle_acc meter;
    reference;
    rise_pj = Array.init Ec.Signals.count (fun i -> self i *. params.Params.slope_rise);
    fall_pj = Array.init Ec.Signals.count (fun i -> self i *. params.Params.slope_fall);
    lat_pj = Array.init Ec.Signals.count lat;
    lat_same_pj = Array.init Ec.Signals.count (fun i -> lat i *. params.Params.same_relief);
    lat_opp_pj = Array.init Ec.Signals.count (fun i -> lat i *. params.Params.opposite_factor);
    groups =
      Array.of_list
        (List.map
           (fun (id, signal) ->
             {
               g_base = Ec.Signals.index id;
               g_width = Sim.Signal.width signal;
               g_signal = signal;
               g_class = class_of id;
             })
           (Wires.interface_groups wires));
    per_signal_pj = Array.make Ec.Signals.count 0.0;
    per_signal_transitions = Array.make Ec.Signals.count 0;
    totals = Array.make 2 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Reference (naive) observation path, kept verbatim for validation.   *)
(* ------------------------------------------------------------------ *)

(* Self energy of one edge on one wire. *)
let edge_pj t id ~rising =
  let base =
    Power.Units.pj_per_transition
      ~capacitance_ff:(Ec.Signals.default_capacitance_ff id)
      ~vdd:t.params.Params.vdd
  in
  base *. (if rising then t.params.Params.slope_rise else t.params.Params.slope_fall)

(* Coupling energy between one adjacent wire pair of a bus.  [a] and [b]
   are -1 (falling), 0 (stable) or 1 (rising). *)
let coupling_pj t id a b =
  if a = 0 && b = 0 then 0.0
  else begin
    let self =
      Power.Units.pj_per_transition
        ~capacitance_ff:(Ec.Signals.default_capacitance_ff id)
        ~vdd:t.params.Params.vdd
    in
    let lateral = self *. t.params.Params.coupling_ratio in
    if a <> 0 && b <> 0 then
      if a = b then lateral *. t.params.Params.same_relief
      else lateral *. t.params.Params.opposite_factor
    else lateral
  end

(* Per-bit movement of a signal before commit: -1, 0 or 1 per bit. *)
let movements signal =
  let cur = Sim.Signal.current signal and nxt = Sim.Signal.next signal in
  let w = Sim.Signal.width signal in
  Array.init w (fun i ->
      let c = (cur lsr i) land 1 and n = (nxt lsr i) land 1 in
      n - c)

let[@inline] add_interface t index pj =
  Array.unsafe_set t.per_signal_pj index
    (Array.unsafe_get t.per_signal_pj index +. pj);
  Array.unsafe_set t.totals 0 (Array.unsafe_get t.totals 0 +. pj);
  Array.unsafe_set t.meter_acc 0 (Array.unsafe_get t.meter_acc 0 +. pj)

let observe_group_reference t (base_id, signal) =
  let base = Ec.Signals.index base_id in
  let moves = movements signal in
  let w = Array.length moves in
  let transitions = ref 0 in
  for i = 0 to w - 1 do
    if moves.(i) <> 0 then begin
      incr transitions;
      t.per_signal_transitions.(base + i) <- t.per_signal_transitions.(base + i) + 1;
      add_interface t (base + i)
        (edge_pj t (Ec.Signals.of_index (base + i)) ~rising:(moves.(i) > 0))
    end
  done;
  (* Lateral coupling between adjacent wires of multi-bit buses, half
     attributed to each wire of the pair. *)
  if w > 1 then
    for i = 0 to w - 2 do
      let pj = coupling_pj t (Ec.Signals.of_index (base + i)) moves.(i) moves.(i + 1) in
      if pj > 0.0 then begin
        add_interface t (base + i) (pj /. 2.0);
        add_interface t (base + i + 1) (pj /. 2.0)
      end
    done;
  !transitions

(* ------------------------------------------------------------------ *)
(* Optimized observation path: zero allocation, word-level scanning.   *)
(* ------------------------------------------------------------------ *)

(* Identical arithmetic to the reference path, in the identical order
   (self energies by ascending bit, then coupling by ascending pair, the
   pair energy halved onto the lower then the upper wire), so the
   accumulated floats are bit-for-bit equal.  Only the derivation of each
   addend changed: table lookups instead of capacitance math, and a
   [cur lxor nxt] word scan instead of a movements array. *)
(* The scan loops are top-level with explicit arguments: a local
   [let rec] would capture its environment and allocate a closure per
   group per cycle. *)
let rec self_scan t base nxt bits i n =
  if bits = 0 then n
  else begin
    let n =
      if bits land 1 = 1 then begin
        let gi = base + i in
        t.per_signal_transitions.(gi) <- t.per_signal_transitions.(gi) + 1;
        add_interface t gi
          (if (nxt lsr i) land 1 = 1 then
             Array.unsafe_get t.rise_pj gi
           else Array.unsafe_get t.fall_pj gi);
        n + 1
      end
      else n
    in
    self_scan t base nxt (bits lsr 1) (i + 1) n
  end

let rec pair_scan t base nxt changed last i =
  if i <= last then begin
    let rel = changed lsr i in
    (* No toggles at or above bit i: every remaining pair is stable. *)
    if rel <> 0 then begin
      (if rel land 3 <> 0 then begin
         let gi = base + i in
         let pj =
           if rel land 3 = 3 then
             if (nxt lsr i) land 1 = (nxt lsr (i + 1)) land 1 then
               Array.unsafe_get t.lat_same_pj gi
             else Array.unsafe_get t.lat_opp_pj gi
           else Array.unsafe_get t.lat_pj gi
         in
         if pj > 0.0 then begin
           add_interface t gi (pj /. 2.0);
           add_interface t (gi + 1) (pj /. 2.0)
         end
       end);
      pair_scan t base nxt changed last (i + 1)
    end
  end

(* Identical arithmetic to the reference path, in the identical order
   (self energies by ascending bit, then coupling by ascending pair, the
   pair energy halved onto the lower then the upper wire), so the
   accumulated floats are bit-for-bit equal.  Only the derivation of each
   addend changed: table lookups instead of capacitance math, and a
   [cur lxor nxt] word scan instead of a movements array. *)
let observe_group_fast t g =
  let s = g.g_signal in
  let cur = Sim.Signal.current s and nxt = Sim.Signal.next s in
  let changed = cur lxor nxt in
  if changed = 0 then 0
  else begin
    let base = g.g_base in
    let transitions = self_scan t base nxt changed 0 0 in
    let w = g.g_width in
    if w > 1 then pair_scan t base nxt changed (w - 2) 0;
    transitions
  end

let[@inline] add_internal t pj =
  Array.unsafe_set t.totals 1 (Array.unsafe_get t.totals 1 +. pj);
  Array.unsafe_set t.meter_acc 0 (Array.unsafe_get t.meter_acc 0 +. pj)

let observe_and_commit t =
  let p = t.params in
  let addr_toggles = ref 0 and rdata_toggles = ref 0 and ctrl_toggles = ref 0 in
  if t.reference then
    List.iter
      (fun ((id, _) as group) ->
        let n = observe_group_reference t group in
        match id with
        | Ec.Signals.Addr _ -> addr_toggles := !addr_toggles + n
        | Ec.Signals.Rdata _ -> rdata_toggles := !rdata_toggles + n
        | Ec.Signals.Ctrl _ -> ctrl_toggles := !ctrl_toggles + n
        | Ec.Signals.Be _ | Ec.Signals.Wdata _ -> ())
      (Wires.interface_groups t.wires)
  else begin
    let groups = t.groups in
    for gi = 0 to Array.length groups - 1 do
      let g = Array.unsafe_get groups gi in
      let n = observe_group_fast t g in
      match g.g_class with
      | Gaddr -> addr_toggles := !addr_toggles + n
      | Grdata -> rdata_toggles := !rdata_toggles + n
      | Gctrl -> ctrl_toggles := !ctrl_toggles + n
      | Gbe | Gwdata -> ()
    done
  end;
  (* Internal nets: decoder activity plus transient glitching follow the
     address bus, the read mux follows the read data bus, the control FSM
     follows the handshake wires, the select lines are explicit. *)
  add_internal t
    (float_of_int !addr_toggles
    *. (p.Params.decoder_pj_per_addr_toggle +. p.Params.glitch_pj_per_hamming));
  add_internal t (float_of_int !rdata_toggles *. p.Params.mux_pj_per_rdata_toggle);
  add_internal t (float_of_int !ctrl_toggles *. p.Params.fsm_pj_per_ctrl_toggle);
  let sel = Wires.sel t.wires in
  let sel_toggles =
    Sim.Signal.popcount (Sim.Signal.current sel lxor Sim.Signal.next sel)
  in
  add_internal t (float_of_int sel_toggles *. p.Params.sel_pj_per_toggle);
  add_internal t p.Params.leakage_pj_per_cycle;
  Wires.commit_all t.wires;
  Power.Meter.end_cycle t.meter

let total_pj t = t.totals.(0) +. t.totals.(1)
let interface_pj t = t.totals.(0)
let internal_pj t = t.totals.(1)
let meter t = t.meter
let per_signal_energy_pj t = Array.copy t.per_signal_pj
let per_signal_transitions t = Array.copy t.per_signal_transitions
let transitions_total t = Array.fold_left ( + ) 0 t.per_signal_transitions

let reset t =
  Array.fill t.per_signal_pj 0 (Array.length t.per_signal_pj) 0.0;
  Array.fill t.per_signal_transitions 0 (Array.length t.per_signal_transitions) 0;
  Array.fill t.totals 0 2 0.0;
  Power.Meter.reset t.meter

let characterize ~name t =
  Power.Characterization.derive ~name ~energy_pj:t.per_signal_pj
    ~transitions:t.per_signal_transitions
