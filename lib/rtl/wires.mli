(** The physical wire set of the register-transfer-level bus model.

    One {!Sim.Signal} per EC interface signal group, plus the internal
    one-hot slave select lines of the bus controller.  All drivers write
    next values during the falling-edge bus process; {!commit_all} then
    commits every signal at the end of the cycle (after the power
    estimator has observed the old/new pairs). *)

type t

val create : n_slaves:int -> t
(** @raise Invalid_argument if [n_slaves] is outside 1..62. *)

val addr : t -> Sim.Signal.t  (** EB_A[35:2], 34 bits *)

val be : t -> Sim.Signal.t  (** EB_BE, 4 bits *)

val wdata : t -> Sim.Signal.t  (** EB_WData, 32 bits *)

val rdata : t -> Sim.Signal.t  (** EB_RData, 32 bits *)

val sel : t -> Sim.Signal.t  (** internal one-hot slave selects *)

val ctrl : t -> Ec.Signals.ctrl -> Sim.Signal.t

val set_ctrl : t -> Ec.Signals.ctrl -> bool -> unit
val ctrl_value : t -> Ec.Signals.ctrl -> bool
(** Committed (current-cycle) value. *)

val interface_groups : t -> (Ec.Signals.id * Sim.Signal.t) list
(** Every interface signal paired with the {!Ec.Signals.id} of its bit 0,
    in dense index order; excludes the internal select lines. *)

val commit_all : t -> unit

val reset : t -> unit
(** Every wire (values and transition counters) back to the created
    state. *)

val value_of : t -> Ec.Signals.id -> bool
(** Committed value of one individual interface wire. *)
