type params = {
  boundary_addr_toggles : float;
  boundary_data_toggles : float;
  attr_toggles : float;
  strobe_pulses_per_phase : float;
  strobe_pulses_per_beat : float;
}

(* Calibrated on the verification suite against the gate-level reference;
   see EXPERIMENTS.md.  The boundary toggles are characterized averages of
   real (locality-heavy) traffic, not the uniform-random worst case. *)
let default_params =
  {
    boundary_addr_toggles = 3.7;
    boundary_data_toggles = 14.2;
    attr_toggles = 0.5;
    strobe_pulses_per_phase = 2.0;
    strobe_pulses_per_beat = 1.5;
  }

(* What the trace compiler needs to replay a lump stream: which phase
   finished on which transaction, and where the cycle boundaries fall.
   The data phase is tapped while the transaction's data is live, so the
   observer can take exact inter-beat Hamming distances. *)
type event = Addr_lump of Ec.Txn.t | Data_lump of Ec.Txn.t | Cycle

type t = {
  mutable p : params;
  created_params : params;  (* what [reset] restores after calibration *)
  table : Power.Characterization.t;
  avg_addr : float;
  avg_wdata : float;
  avg_rdata : float;
  avg_be : float;
  avg_ctrl : float;
  meter : Power.Meter.t;
  mutable observer : (event -> unit) option;
}

let create ?(record_profile = false) ?(params = default_params) table =
  {
    p = params;
    created_params = params;
    table;
    avg_addr = Power.Characterization.avg_addr_bit table;
    avg_wdata = Power.Characterization.avg_wdata_bit table;
    avg_rdata = Power.Characterization.avg_rdata_bit table;
    avg_be = Power.Characterization.avg_be_bit table;
    avg_ctrl = Power.Characterization.avg_ctrl_bit table;
    meter = Power.Meter.create ~record_profile ();
    observer = None;
  }

let set_params t params = t.p <- params
let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None

let observe t ev =
  match t.observer with None -> () | Some f -> f ev

let reset t =
  t.p <- t.created_params;
  t.observer <- None;
  Power.Meter.reset t.meter

let address_phase_pj t (txn : Ec.Txn.t) =
  observe t (Addr_lump txn);
  let p = t.p in
  let pj =
    (p.boundary_addr_toggles *. t.avg_addr)
    +. (p.attr_toggles *. t.avg_be)
    (* Instr, Write, Burst attribute wires. *)
    +. (3.0 *. p.attr_toggles *. t.avg_ctrl)
    (* AValid and ARdy handshake pulses. *)
    +. (2.0 *. p.strobe_pulses_per_phase *. t.avg_ctrl)
  in
  ignore txn;
  Power.Meter.add t.meter pj;
  pj

let data_phase_pj t (txn : Ec.Txn.t) =
  observe t (Data_lump txn);
  let p = t.p in
  let avg_bit =
    match txn.Ec.Txn.dir with
    | Ec.Txn.Read -> t.avg_rdata
    | Ec.Txn.Write -> t.avg_wdata
  in
  (* First beat against an unknown bus state, then exact Hamming distances
     between consecutive beats of the burst (data is available by
     pointer). *)
  let toggles = ref p.boundary_data_toggles in
  for i = 1 to txn.Ec.Txn.burst - 1 do
    toggles :=
      !toggles
      +. float_of_int
           (Sim.Signal.popcount
              (txn.Ec.Txn.data.(i) lxor txn.Ec.Txn.data.(i - 1)))
  done;
  let strobes =
    p.strobe_pulses_per_beat *. float_of_int txn.Ec.Txn.burst
    +. (if txn.Ec.Txn.burst > 1 then 4.0 else 0.0)
    (* BFirst and BLast pulses on bursts. *)
  in
  let pj = (!toggles *. avg_bit) +. (strobes *. t.avg_ctrl) in
  Power.Meter.add t.meter pj;
  pj

let end_cycle t =
  observe t Cycle;
  Power.Meter.end_cycle t.meter
let energy_since_last_call_pj t = Power.Meter.since_last_call_pj t.meter
let total_pj t = Power.Meter.total_pj t.meter
let meter t = t.meter
