(** Layer-2 energy model (paper section 3.3, "Layer 2 Energy Model").

    Energy estimation is split into an address-phase and a data-phase
    method; the bus process passes the whole transaction to the matching
    method when that phase finishes, so "the entire address phase for a
    burst read or write is calculated at once".  The transaction carries
    the data by pointer, so within-burst data-bus transitions are counted
    exactly; what the model cannot know, it assumes:

    - the bus state left behind by the {e previous} transaction ("it
      considers each transaction phase on its own but does not consider
      interactions between following transactions") — replaced by the
      boundary-toggle assumptions of {!params};
    - the cycle-level slave handshake ("does not allow an accurate count
      of transitions for control signals") — replaced by fixed per-phase
      and per-beat strobe pulse counts.

    Merged strobes and address locality make real traffic cheaper than
    these assumptions, which is the overestimation the paper reports
    (+14.7%).  The power interface only offers the energy-since-last-call
    method; sampling therefore lumps whole phases (Figure 6). *)

type params = {
  boundary_addr_toggles : float;
      (** assumed address-bus toggles at an address-phase start *)
  boundary_data_toggles : float;
      (** assumed data-bus toggles at the first beat of a data phase *)
  attr_toggles : float;
      (** assumed toggles of each attribute signal (Instr, Write, Burst)
          and of the byte-enable bus per transaction *)
  strobe_pulses_per_phase : float;
      (** AValid and ARdy transition count per address phase *)
  strobe_pulses_per_beat : float;
      (** RdVal or WDRdy transition count per data beat *)
}

val default_params : params

type t

val create :
  ?record_profile:bool -> ?params:params -> Power.Characterization.t -> t

val set_params : t -> params -> unit
(** Replaces the boundary-assumption parameters for energy estimated from
    now on; already-accumulated energy is untouched.  The hierarchical
    calibration of adaptive runs uses this to re-derive the lump
    constants from refined windows mid-run (DESIGN.md section 12). *)

val address_phase_pj : t -> Ec.Txn.t -> float
(** Lump estimate of one finished address phase (also accumulates it). *)

val data_phase_pj : t -> Ec.Txn.t -> float
(** Lump estimate of one finished data phase; reads the transferred data
    through the transaction's pointer. *)

val end_cycle : t -> unit
(** Advances the meter clock (layer 2 is still clocked; lumps land in the
    cycle their phase completes). *)

val energy_since_last_call_pj : t -> float
(** The single method of the layer-2 power interface. *)

val total_pj : t -> float
val meter : t -> Power.Meter.t

val reset : t -> unit
(** Restores the parameters passed to {!create} (undoing any in-run
    {!set_params} calibration), detaches any observer and clears the
    meter. *)

(** {1 Compilation taps} *)

type event =
  | Addr_lump of Ec.Txn.t  (** an address phase finished this cycle *)
  | Data_lump of Ec.Txn.t
      (** a data phase finished this cycle; the transaction's data is
          live, so inter-beat Hamming distances can be taken exactly *)
  | Cycle  (** a falling edge closed (every cycle, lumps or not) *)

val set_observer : t -> (event -> unit) -> unit
(** Registers a lump-stream tap for the trace compiler.  The taps carry
    no floats — an observed run is bit-identical to an unobserved one. *)

val clear_observer : t -> unit
