(** EC bus model at transaction level layer 2 (paper section 3.2).

    Timed but not cycle accurate: a burst is a single transaction, data is
    passed by pointer, and the detailed timing of layer 1 is replaced by
    wait-state counters snapshot from the slave "when the transaction is
    created during the first interface call".  The bus process decrements
    the address wait counter each cycle, then the data wait counter; at
    the end of the data phase the slave's block interface is invoked once
    for the whole transaction.

    Two deliberate abstractions produce the small timing error of Table 1:
    data phases of all transactions are serialized in one engine (layer 1
    overlaps independent read and write data phases), while address phases
    still pipeline ahead of data phases. *)

type t

val create :
  kernel:Sim.Kernel.t ->
  decoder:Ec.Decoder.t ->
  ?energy:Energy.t ->
  ?sink:Obs.Sink.t ->
  unit ->
  t
(** [sink] attaches lifecycle/stall instrumentation.  Layer 2 moves a
    burst in one block call, so its {!Obs.Event.Data_beat} events for a
    burst share one timestamp; beat counts still match the other
    levels. *)

val port : t -> Ec.Port.t
val energy : t -> Energy.t option
val decoder : t -> Ec.Decoder.t

val busy : t -> bool
val completed_txns : t -> int
val completed_beats : t -> int
val error_txns : t -> int
val busy_cycles : t -> int

val reset : t -> unit
(** Queues, outstanding counters, completion store, traffic counters and
    the attached energy model back to the freshly created state; kernel
    registration and decoder are kept for reuse. *)
