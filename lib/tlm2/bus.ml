(* One shared transaction structure, as in the paper's Figure 4: the
   interface call snapshots the slave wait states into the job; the bus
   process then only decrements counters and finally invokes the slave's
   block interface. *)

type job = {
  txn : Ec.Txn.t;
  slave : Ec.Slave.t option;  (* [None] for a decode error *)
  sel : int;  (* slave select index, -1 for a decode error *)
  mutable addr_left : int;
  mutable data_left : int;
}

type t = {
  kernel : Sim.Kernel.t;
  sink : Obs.Sink.t option;
  decoder : Ec.Decoder.t;
  energy : Energy.t option;
  pending : job Queue.t;  (* awaiting or inside their address phase *)
  data_q : job Queue.t;  (* address phase finished, data phase pending *)
  finish : (int, Ec.Port.poll) Hashtbl.t;
  outstanding : int array;
  mutable completed_txns : int;
  mutable completed_beats : int;
  mutable error_txns : int;
  mutable busy_cycles : int;
}

let cat_index = function
  | Ec.Txn.Cat_instr_read -> 0
  | Ec.Txn.Cat_data_read -> 1
  | Ec.Txn.Cat_write -> 2

let max_outstanding = 4

let with_energy t f = match t.energy with Some e -> f e | None -> ()

let finish_txn t (txn : Ec.Txn.t) outcome =
  let c = cat_index (Ec.Txn.category txn) in
  t.outstanding.(c) <- t.outstanding.(c) - 1;
  Hashtbl.replace t.finish txn.Ec.Txn.id outcome;
  match outcome with
  | Ec.Port.Done ->
    t.completed_txns <- t.completed_txns + 1;
    t.completed_beats <- t.completed_beats + txn.Ec.Txn.burst;
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_finished s ~cycle:(Sim.Kernel.now t.kernel)
        ~id:txn.Ec.Txn.id ~beats:txn.Ec.Txn.burst)
  | Ec.Port.Failed ->
    t.error_txns <- t.error_txns + 1;
    (match t.sink with
    | None -> ()
    | Some s ->
      Obs.Sink.txn_error s ~cycle:(Sim.Kernel.now t.kernel) ~id:txn.Ec.Txn.id)
  | Ec.Port.Pending -> assert false

let address_phase t =
  match Queue.peek_opt t.pending with
  | None -> false
  | Some job ->
    if job.addr_left > 0 then begin
      job.addr_left <- job.addr_left - 1;
      match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:job.sel
    end
    else begin
      ignore (Queue.pop t.pending);
      with_energy t (fun e -> ignore (Energy.address_phase_pj e job.txn));
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_granted s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:job.txn.Ec.Txn.id ~slave:job.sel);
      Queue.push job t.data_q
    end;
    true

let data_phase t =
  match Queue.peek_opt t.data_q with
  | None -> false
  | Some job ->
    if job.data_left > 0 then begin
      job.data_left <- job.data_left - 1;
      match t.sink with
      | None -> ()
      | Some s -> Obs.Sink.wait_stall s ~slave:job.sel
    end
    else begin
      ignore (Queue.pop t.data_q);
      match job.slave with
      | None -> finish_txn t job.txn Ec.Port.Failed
      | Some slave ->
        (* Pointer passing: the whole burst moves in one interface call. *)
        (match job.txn.Ec.Txn.dir with
        | Ec.Txn.Read -> Ec.Slave.read_block slave job.txn
        | Ec.Txn.Write -> Ec.Slave.write_block slave job.txn);
        with_energy t (fun e -> ignore (Energy.data_phase_pj e job.txn));
        (match t.sink with
        | None -> ()
        | Some s ->
          let cycle = Sim.Kernel.now t.kernel in
          for beat = 0 to job.txn.Ec.Txn.burst - 1 do
            Obs.Sink.data_beat s ~cycle ~id:job.txn.Ec.Txn.id ~beat
              ~slave:job.sel
          done);
        finish_txn t job.txn Ec.Port.Done
    end;
    true

let bus_process t _kernel =
  let a = address_phase t in
  let d = data_phase t in
  if a || d then t.busy_cycles <- t.busy_cycles + 1;
  with_energy t Energy.end_cycle

let create ~kernel ~decoder ?energy ?sink () =
  let t =
    {
      kernel;
      sink;
      decoder;
      energy;
      pending = Queue.create ();
      data_q = Queue.create ();
      finish = Hashtbl.create 64;
      outstanding = Array.make 3 0;
      completed_txns = 0;
      completed_beats = 0;
      error_txns = 0;
      busy_cycles = 0;
    }
  in
  Sim.Kernel.on_falling kernel ~name:"tlm2-bus" (bus_process t);
  t

let port t =
  let try_submit txn =
    let c = cat_index (Ec.Txn.category txn) in
    if t.outstanding.(c) >= max_outstanding then begin
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_rejected s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~cat:c);
      false
    end
    else begin
      t.outstanding.(c) <- t.outstanding.(c) + 1;
      (* The wait states of the addressed slave are read when the
         transaction is created, during this first interface call. *)
      let job =
        match Ec.Decoder.check t.decoder txn with
        | Ec.Decoder.Mapped (i, slave) ->
          let cfg = slave.Ec.Slave.cfg in
          {
            txn;
            slave = Some slave;
            sel = i;
            addr_left = cfg.Ec.Slave_cfg.addr_wait;
            data_left = Ec.Timing.data_phase_extra cfg txn;
          }
        | Ec.Decoder.Unmapped | Ec.Decoder.Rights_violation _ ->
          { txn; slave = None; sel = -1; addr_left = 0; data_left = 0 }
      in
      Queue.push job t.pending;
      (match t.sink with
      | None -> ()
      | Some s ->
        Obs.Sink.txn_issued s ~cycle:(Sim.Kernel.now t.kernel)
          ~id:txn.Ec.Txn.id ~cat:c ~queue_depth:(Queue.length t.pending));
      true
    end
  in
  let poll id =
    match Hashtbl.find_opt t.finish id with
    | None -> Ec.Port.Pending
    | Some outcome -> outcome
  in
  let retire id = Hashtbl.remove t.finish id in
  { Ec.Port.try_submit; poll; retire }

let energy t = t.energy
let decoder t = t.decoder

let busy t = not (Queue.is_empty t.pending && Queue.is_empty t.data_q)

let completed_txns t = t.completed_txns
let completed_beats t = t.completed_beats
let error_txns t = t.error_txns
let busy_cycles t = t.busy_cycles

let reset t =
  Queue.clear t.pending;
  Queue.clear t.data_q;
  Hashtbl.reset t.finish;
  Array.fill t.outstanding 0 3 0;
  t.completed_txns <- 0;
  t.completed_beats <- 0;
  t.error_txns <- 0;
  t.busy_cycles <- 0;
  with_energy t Energy.reset
