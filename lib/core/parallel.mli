(** Multicore fan-out over independent simulations.

    The experiment definitions (accuracy tables, exploration sweeps,
    ablations) are lists of fully independent [System.create]-rooted
    simulations; this module maps over them with a pool of OCaml 5
    domains.  Every simulation is deterministic and self-contained, and
    results are collected by input index, so a parallel map returns
    exactly the list the serial map would — domain scheduling can never
    change a reported number.

    [?domains] bounds the pool; it defaults to
    [Domain.recommended_domain_count ()] and is additionally capped by the
    list length.  [~domains:1] (or a one-core machine) degrades to plain
    [List.map] with no domain spawned. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  If any application raises, the first
    failure (in claim order) is re-raised after all workers have
    stopped. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
