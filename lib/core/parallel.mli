(** Multicore fan-out over independent simulations.

    The experiment definitions (accuracy tables, exploration sweeps,
    ablations) are lists of fully independent [System.create]-rooted
    simulations; this module maps over them with a pool of OCaml 5
    domains.  Every simulation is deterministic and self-contained, and
    results are collected by input index, so a parallel map returns
    exactly the list the serial map would — domain scheduling can never
    change a reported number.

    [?domains] bounds the pool; it defaults to
    [Domain.recommended_domain_count ()] and is additionally capped by the
    list length.  [~domains:1] (or a one-core machine) degrades to plain
    [List.map] with no domain spawned. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

type pool
(** A persistent set of worker domains.  Spawning a domain dwarfs the
    cost of a small simulation, so drivers that issue many maps (the
    exploration grid, adaptive sweeps) create one pool and pass it to
    every {!map} — batches reuse the same domains, which also keeps any
    [Domain.DLS]-held session caches ({!Pool}) warm across batches. *)

val with_pool : ?domains:int -> (pool -> 'a) -> 'a
(** Runs [f] with a live pool of [domains] total participants (the
    calling domain included; default {!default_domains}), then shuts the
    workers down — also when [f] raises.  Maps over the pool must not be
    nested: [f] passed to an inner {!map} must not itself map over the
    same pool. *)

val pool_size : pool -> int

val map : ?domains:int -> ?pool:pool -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  If any application raises, the first
    failure (in claim order) is re-raised after all workers have
    stopped.  With [?pool] the batch runs on the pool's persistent
    domains and [?domains] is ignored; results, ordering and failure
    semantics are identical. *)

val iter : ?domains:int -> ?pool:pool -> ('a -> unit) -> 'a list -> unit
