(** Plain-text rendering of the paper's tables.

    Fixed-width tables with a header row, matching the way results are
    presented in the paper and in EXPERIMENTS.md. *)

val table : header:string list -> string list list -> string
(** [table ~header rows] lays out columns to the widest cell.  Cells that
    parse as numbers are right-aligned. *)

val metrics : Obs.Metrics.t -> string
(** Tabular snapshot of simulator metrics: one counters table followed by
    one table per histogram that observed anything, with {!table}
    alignment and human bucket labels.  The machine-readable form is
    [Obs.Metrics.to_json]. *)

val pool_stats : Pool.t -> string
(** Session and compiled-plan cache effectiveness of a {!Pool}: hits,
    builds and hit rate for the resettable-session free-lists
    ({!Pool.hits}/{!Pool.builds}) and for the plan memo
    ({!Pool.memo_hits}/{!Pool.memo_builds}), followed by one
    ["plans:<tag>"] row per plan kind that passed a tag to {!Pool.memo}
    (trace vs fabric plans, {!Pool.memo_tag_stats}). *)

val pct : float -> string
(** Signed percentage with one decimal ("+14.7%", "-7.8%", "0.0%"). *)

val ratio_pct : reference:float -> float -> string
(** Value as percent of a reference ("92.1%"). *)

val pj : float -> string
val float1 : float -> string
