(** A complete simulated smart card: the Figure-1 platform attached to a
    bus model at a chosen abstraction level, sharing one clock. *)

type bus =
  | Rtl_bus of Rtl.Bus.t
  | L1_bus of Tlm1.Bus.t
  | L2_bus of Tlm2.Bus.t

type t

val create :
  ?level:Level.t ->
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?rtl_params:Rtl.Params.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?seed:int ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  ?sink:Obs.Sink.t ->
  unit ->
  t
(** [peripheral_clock] is forwarded to {!Soc.Platform.create}: [`Gated]
    freezes the peripherals' per-cycle processes (and their leakage
    meters) while keeping every slave bus-addressable — the cheap
    platform for bus-only workloads.

    [sink] attaches the instrumentation sink to whichever bus model the
    level selects; the bus then records transaction lifecycle events and
    metrics on it.  Without it the buses skip instrumentation entirely.

    Defaults: [level = L1], energy estimation on, no profile recording,
    the capacitance-based default characterization table for the
    transaction-level energy models, default electrical parameters for the
    reference estimator.  [estimate:false] runs the bus without an energy
    model (the faster configuration of Table 3); it does not affect the
    RTL reference, whose estimator is integral. *)

val kernel : t -> Sim.Kernel.t
val platform : t -> Soc.Platform.t
val bus : t -> bus
val level : t -> Level.t
val port : t -> Ec.Port.t

val bus_busy : t -> bool
val completed_txns : t -> int
val completed_beats : t -> int
val error_txns : t -> int

val bus_energy_pj : t -> float
(** Estimated bus energy at this system's level (0 without estimation). *)

val bus_transitions : t -> int
(** Interface signal transitions counted by the bus energy model (0 for
    layer 2 and for estimation-off runs). *)

val component_energy_pj : t -> float
val total_energy_pj : t -> float

val meter : t -> Power.Meter.t option
(** The per-cycle accumulator behind this system's bus energy estimate
    ([None] when estimation is off).  {!Ec.Fabric} taps it for sticky-owner
    per-master attribution (DESIGN.md section 17.3). *)

val profile : t -> Power.Profile.t option
(** Per-cycle bus energy profile, when recording was requested. *)

val energy_since_last_call_pj : t -> float
(** The paper's sampling method on whichever power interface the level
    provides. *)

val reset : t -> unit
(** Puts the whole session back to its creation state in place: kernel
    clock and gating, every platform memory and peripheral, and the bus
    model with its energy estimator.  The wiring (decoder, registered
    processes, connected masters) is kept, so a reset system replays any
    workload bit-identically to a freshly built one.  Sessions built
    with a [sink] keep the sink attached; reset does not clear it. *)
