(* Per-domain pools of resettable simulation sessions.

   A pool maps a configuration key (a string fingerprint of everything
   that shapes a session: level, estimator params, platform options) to
   a free-list of previously built sessions.  [with_session] checks one
   out, resets it, runs the workload, and returns it to the free list on
   success.  The store lives in [Domain.DLS], so each worker domain of
   [Parallel.map] owns a private free-list and the hot path takes no
   lock — pooled reuse composes with domain parallelism for free, at the
   cost of one warmup build per (domain, key). *)

type entry = { kind_id : int; value : exn }

type t = {
  id : int;
  capacity : int;  (* per (domain, key) free-list cap *)
  hits : int Atomic.t;
  builds : int Atomic.t;
  memo_hits : int Atomic.t;
  memo_builds : int Atomic.t;
  (* Per-kind breakout of the memo counters (trace plans vs fabric
     plans, see Report.pool_stats).  The table only ever grows by a
     handful of tags, so a mutex around the lookup is cheap; the
     counters themselves are atomics, bumped lock-free once found. *)
  memo_tags : (string, int Atomic.t * int Atomic.t) Hashtbl.t;
  memo_tags_lock : Mutex.t;
}

(* Sessions are arbitrary, session-kind-specific records.  They are
   stored behind the classic universal type built from a local
   exception: each [kind] gets a fresh exception constructor, so a
   projection can never confuse two kinds even if their keys collide. *)
type 'a kind = {
  kind_id : int;
  inj : 'a -> exn;
  prj : exn -> 'a option;
}

let next_kind_id = Atomic.make 0

let kind (type a) () =
  let module M = struct
    exception E of a
  end in
  {
    kind_id = Atomic.fetch_and_add next_kind_id 1;
    inj = (fun x -> M.E x);
    prj = (function M.E x -> Some x | _ -> None);
  }

let next_pool_id = Atomic.make 0

let create ?(capacity = 4) () =
  if capacity < 1 then invalid_arg "Core.Pool.create: capacity < 1";
  {
    id = Atomic.fetch_and_add next_pool_id 1;
    capacity;
    hits = Atomic.make 0;
    builds = Atomic.make 0;
    memo_hits = Atomic.make 0;
    memo_builds = Atomic.make 0;
    memo_tags = Hashtbl.create 4;
    memo_tags_lock = Mutex.create ();
  }

(* Domain-local store: pool id -> key -> free entries.  One flat
   hashtable per domain; distinct pools and keys never interfere. *)
let store : (int * string, entry list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let slot t ~key =
  let tbl = Domain.DLS.get store in
  let k = (t.id, key) in
  match Hashtbl.find_opt tbl k with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl k r;
    r

let take t kind ~key =
  let r = slot t ~key in
  let rec pick acc = function
    | [] -> None
    | (e : entry) :: rest -> (
      match if e.kind_id = kind.kind_id then kind.prj e.value else None with
      | Some v ->
        r := List.rev_append acc rest;
        Some v
      | None -> pick (e :: acc) rest)
  in
  pick [] !r

let put t kind ~key v =
  let r = slot t ~key in
  if List.length !r < t.capacity then
    r := { kind_id = kind.kind_id; value = kind.inj v } :: !r

let acquire t kind ~key ~build ~reset =
  match take t kind ~key with
  | Some s ->
    Atomic.incr t.hits;
    reset s;
    s
  | None ->
    Atomic.incr t.builds;
    build ()

let release t kind ~key v = put t kind ~key v

let with_session t kind ~key ~build ~reset f =
  let session = acquire t kind ~key ~build ~reset in
  let result = f session in
  (* Release only on success: a raising workload may leave the session
     in an arbitrary half-run state that [reset] was never validated
     against, so the entry is dropped and rebuilt on next demand. *)
  release t kind ~key session;
  result

let hits t = Atomic.get t.hits
let builds t = Atomic.get t.builds

(* Memoized values (compiled trace plans, mostly): unlike sessions they
   are immutable, so a hit reads the entry without checking it out and
   the entry lives for the pool's lifetime — no capacity bound.  The
   namespace byte keeps memo keys from ever colliding with free-list
   keys. *)
let tag_counters t tag =
  Mutex.lock t.memo_tags_lock;
  let c =
    match Hashtbl.find_opt t.memo_tags tag with
    | Some c -> c
    | None ->
      let c = (Atomic.make 0, Atomic.make 0) in
      Hashtbl.add t.memo_tags tag c;
      c
  in
  Mutex.unlock t.memo_tags_lock;
  c

let memo t kind ?tag ~key build =
  let r = slot t ~key:("memo\x00" ^ key) in
  let rec find = function
    | [] -> None
    | (e : entry) :: rest -> (
      match if e.kind_id = kind.kind_id then kind.prj e.value else None with
      | Some v -> Some v
      | None -> find rest)
  in
  let bump sel =
    match tag with
    | None -> ()
    | Some tag -> Atomic.incr (sel (tag_counters t tag))
  in
  match find !r with
  | Some v ->
    Atomic.incr t.memo_hits;
    bump fst;
    v
  | None ->
    Atomic.incr t.memo_builds;
    bump snd;
    let v = build () in
    r := { kind_id = kind.kind_id; value = kind.inj v } :: !r;
    v

let memo_hits t = Atomic.get t.memo_hits
let memo_builds t = Atomic.get t.memo_builds

let memo_tag_stats t =
  Mutex.lock t.memo_tags_lock;
  let rows =
    Hashtbl.fold
      (fun tag (h, b) acc -> (tag, Atomic.get h, Atomic.get b) :: acc)
      t.memo_tags []
  in
  Mutex.unlock t.memo_tags_lock;
  List.sort compare rows

(* Pool keys fingerprint configuration values (characterization tables,
   electrical parameter records, interface configurations) — pure data,
   for which Marshal is a faithful structural identity. *)
let fingerprint v = Digest.to_hex (Digest.string (Marshal.to_string v []))
