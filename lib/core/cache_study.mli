(** Parametrized cache-and-bus exploration.

    The paper's reference [1] (Givargis/Vahid/Henkel) evaluates power of
    parametrized cache and bus architectures; this study reproduces that
    flavour of experiment on our platform: sweep the instruction cache
    size and measure, per workload, the cycles, the bus energy the cache
    saves, the cache's own energy, and the hit rate — the classic
    find-the-knee curve. *)

type row = {
  lines : int option;  (** [None] = no cache *)
  cycles : int;
  bus_pj : float;
  cache_pj : float;
  total_pj : float;  (** bus + cache + other peripherals *)
  hit_rate_pct : float;
  splice : Hier.Splice.t option;
      (** adaptive rows only: the spliced provenance of [bus_pj] *)
}

type t = { workload : string; rows : row list }

val run :
  ?level:Level.t ->
  ?policy:Hier.Policy.t ->
  ?table:Power.Characterization.t ->
  ?sizes:int option list ->
  ?name:string ->
  ?pool:bool ->
  Soc.Asm.program ->
  t
(** Defaults: layer-1 bus; sizes [none; 1; 2; 4; 16] lines.  [pool]
    (default [true]) runs the sweep on a session pool — fixed-level rows
    keep one session per cache size, adaptive rows reuse one system per
    level across windows; rows are bit-identical either way.

    [policy] switches each size to the adaptive route: the program runs
    once on the gate-level system behind the candidate cache
    ({!Runner.capture_with_icache}) and the captured post-cache bus
    traffic replays through {!Runner.run_adaptive} under the policy —
    rows then carry the splice provenance, and [cycles] count the
    spliced bus-replay timeline rather than a CPU run. *)

val render : t -> string
