type bus_row = {
  bus : string;
  width : int;
  report : Power.Coding.report;
  plain_pj : float;
  best_scheme : string;
  best_pj : float;
}

type t = { workload : string; cycles : int; rows : bus_row list }

let analyze_sampler ~table sampler cycles workload =
  let row bus width values avg_pj =
    let report = Power.Coding.analyze ~width values in
    let pj transitions = float_of_int transitions *. avg_pj in
    let plain_pj = pj report.Power.Coding.plain in
    let candidates =
      [
        ("plain", plain_pj);
        ("bus-invert", pj report.Power.Coding.bus_inverted);
        ("gray", pj report.Power.Coding.gray);
      ]
    in
    let best_scheme, best_pj =
      List.fold_left
        (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
        (List.hd candidates) (List.tl candidates)
    in
    { bus; width; report; plain_pj; best_scheme; best_pj }
  in
  {
    workload;
    cycles;
    rows =
      [
        row "address" Ec.Signals.addr_wires
          (Rtl.Sampler.addr_values sampler)
          (Power.Characterization.avg_addr_bit table);
        row "write data" Ec.Signals.data_wires
          (Rtl.Sampler.wdata_values sampler)
          (Power.Characterization.avg_wdata_bit table);
        row "read data" Ec.Signals.data_wires
          (Rtl.Sampler.rdata_values sampler)
          (Power.Characterization.avg_rdata_bit table);
      ];
  }

let instrumented_system () =
  let system = System.create ~level:Level.Rtl () in
  let sampler =
    match System.bus system with
    | System.Rtl_bus bus ->
      Rtl.Sampler.create ~kernel:(System.kernel system) (Rtl.Bus.wires bus)
    | System.L1_bus _ | System.L2_bus _ -> assert false
  in
  (system, sampler)

(* One characterization shared by every run.  A top-level [lazy] is not
   domain-safe — two domains forcing it at once race on the thunk (one
   raises [Lazy.Undefined]) — so the memo is a mutex-guarded ref; the
   loser of the race blocks and reuses the winner's table. *)
let table_lock = Mutex.create ()
let table_memo = ref None

let characterization_table () =
  Mutex.protect table_lock (fun () ->
      match !table_memo with
      | Some t -> t
      | None ->
        let t = Runner.characterize () in
        table_memo := Some t;
        t)

let run_program ?name program =
  let system, sampler = instrumented_system () in
  let kernel = System.kernel system in
  Runner.fill_memories system;
  Soc.Platform.load_program (System.platform system) program;
  let platform = System.platform system in
  let cpu =
    Soc.Cpu.create ~kernel ~port:(System.port system) ~pc:program.Soc.Asm.origin
      ~irq:(fun () -> Soc.Platform.irq_asserted platform)
      ()
  in
  let cycles = Soc.Cpu.run_to_halt cpu ~kernel () in
  analyze_sampler ~table:(characterization_table ()) sampler cycles
    (Option.value name ~default:"program")

let run_trace ?name trace =
  let system, sampler = instrumented_system () in
  let kernel = System.kernel system in
  Runner.fill_memories system;
  let master =
    Soc.Trace_master.create ~kernel ~port:(System.port system) trace
  in
  let cycles = Soc.Trace_master.run master ~kernel () in
  analyze_sampler ~table:(characterization_table ()) sampler cycles
    (Option.value name ~default:"trace")

let render t =
  let body =
    List.map
      (fun r ->
        [
          r.bus;
          string_of_int r.report.Power.Coding.plain;
          Printf.sprintf "%d (%+.1f%%)" r.report.Power.Coding.bus_inverted
            (-.r.report.Power.Coding.bus_invert_savings_pct);
          Printf.sprintf "%d (%+.1f%%)" r.report.Power.Coding.gray
            (-.r.report.Power.Coding.gray_savings_pct);
          Printf.sprintf "%s (%.1f pJ vs %.1f pJ)" r.best_scheme r.best_pj
            r.plain_pj;
        ])
      t.rows
  in
  Printf.sprintf "Bus coding study: %s (%d cycles)\n%s" t.workload t.cycles
    (Report.table
       ~header:[ "bus"; "plain toggles"; "bus-invert"; "gray"; "best" ]
       body)
