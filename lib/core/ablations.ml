type row = { label : string; value : float; note : string }

(* Layer energy error (%) vs the gate-level reference over the accuracy
   stimulus, with a specific electrical parameter set and table. *)
let energy_error ?(level = Level.L1) ?pool ~rtl_params ~table () =
  let segments = Experiments.accuracy_stimulus () in
  let total lvl =
    List.fold_left
      (fun acc (_, trace, mode, init) ->
        let r =
          Runner.run_trace ~level:lvl ~rtl_params ~table ~mode ~init ?pool
            trace
        in
        acc +. r.Runner.bus_pj)
      0.0 segments
  in
  let reference = total Level.Rtl in
  Power.Units.pct_error ~reference (total level)

let coupling_sensitivity ?pool () =
  List.map
    (fun ratio ->
      let rtl_params = { Rtl.Params.default with Rtl.Params.coupling_ratio = ratio } in
      let table = Runner.characterize ~rtl_params () in
      {
        label = Printf.sprintf "coupling ratio %.2f" ratio;
        value = energy_error ?pool ~rtl_params ~table ();
        note = (if ratio = Rtl.Params.default.Rtl.Params.coupling_ratio then "default" else "");
      })
    [ 0.0; 0.10; Rtl.Params.default.Rtl.Params.coupling_ratio; 0.40 ]

let scale_internal (p : Rtl.Params.t) k =
  {
    p with
    Rtl.Params.decoder_pj_per_addr_toggle = p.Rtl.Params.decoder_pj_per_addr_toggle *. k;
    glitch_pj_per_hamming = p.Rtl.Params.glitch_pj_per_hamming *. k;
    mux_pj_per_rdata_toggle = p.Rtl.Params.mux_pj_per_rdata_toggle *. k;
    fsm_pj_per_ctrl_toggle = p.Rtl.Params.fsm_pj_per_ctrl_toggle *. k;
    sel_pj_per_toggle = p.Rtl.Params.sel_pj_per_toggle *. k;
    leakage_pj_per_cycle = p.Rtl.Params.leakage_pj_per_cycle *. k;
  }

let internal_nets_sensitivity ?pool () =
  List.map
    (fun k ->
      let rtl_params = scale_internal Rtl.Params.default k in
      let table = Runner.characterize ~rtl_params () in
      {
        label = Printf.sprintf "internal nets x%.1f" k;
        value = energy_error ?pool ~rtl_params ~table ();
        note = (if k = 1.0 then "default" else "");
      })
    [ 0.0; 0.5; 1.0; 2.0 ]

(* The gate-level reference total over the accuracy stimulus — the
   denominator every table/parameter variant shares. *)
let rtl_reference ?pool ?rtl_params segments =
  List.fold_left
    (fun acc (_, trace, mode, init) ->
      acc
      +. (Runner.run_trace ~level:Level.Rtl ?rtl_params ~mode ~init ?pool trace)
           .Runner.bus_pj)
    0.0 segments

(* Table variants are a pure evaluation sweep: each stimulus segment
   compiles once (the plan is table-independent) and both tables fold
   off it in a single multi-point replay — the interpreted layer-1 run
   happens twice fewer times, bit-identically. *)
let characterization_quality ?pool () =
  let rtl_params = Rtl.Params.default in
  let derived = Runner.characterize () in
  let segments = Experiments.accuracy_stimulus () in
  let tables =
    [
      (Power.Characterization.default, "default capacitance table",
       "top-down, pre-layout");
      (derived, "derived (gate-level) table", "the paper's Diesel flow");
    ]
  in
  let points =
    List.map (fun (t, _, _) -> { Compile.Eval.table = t; l2_params = None }) tables
  in
  let totals = Array.make (List.length tables) 0.0 in
  List.iter
    (fun (_, trace, mode, init) ->
      let plan = Runner.compile_trace ~level:Level.L1 ~mode ~init ?pool trace in
      List.iteri
        (fun i (r : Runner.result) -> totals.(i) <- totals.(i) +. r.Runner.bus_pj)
        (Runner.replay_multi ~points plan))
    segments;
  let reference = rtl_reference ?pool ~rtl_params segments in
  List.mapi
    (fun i (_, label, note) ->
      { label; value = Power.Units.pct_error ~reference totals.(i); note })
    tables

(* The boundary-toggle sweep is the multi-point evaluator's home
   ground: the four parameter variants share one layer-2 plan per
   stimulus segment, so the whole curve costs one interpreted run per
   segment plus four float folds. *)
let l2_boundary_sensitivity ?pool () =
  let table = Runner.characterize () in
  let segments = Experiments.accuracy_stimulus () in
  let bds =
    [ 6.0; 10.0; Tlm2.Energy.default_params.Tlm2.Energy.boundary_data_toggles; 18.0 ]
  in
  let points =
    List.map
      (fun bd ->
        {
          Compile.Eval.table;
          l2_params =
            Some
              {
                Tlm2.Energy.default_params with
                Tlm2.Energy.boundary_data_toggles = bd;
              };
        })
      bds
  in
  let totals = Array.make (List.length bds) 0.0 in
  List.iter
    (fun (_, trace, mode, init) ->
      let plan = Runner.compile_trace ~level:Level.L2 ~mode ~init ?pool trace in
      List.iteri
        (fun i (r : Runner.result) -> totals.(i) <- totals.(i) +. r.Runner.bus_pj)
        (Runner.replay_multi ~points plan))
    segments;
  let reference = rtl_reference ?pool segments in
  List.mapi
    (fun i bd ->
      {
        label = Printf.sprintf "boundary data toggles %.1f" bd;
        value = Power.Units.pct_error ~reference totals.(i);
        note =
          (if bd = Tlm2.Energy.default_params.Tlm2.Energy.boundary_data_toggles
           then "default"
           else "");
      })
    bds

let store_buffer_effect () =
  List.concat_map
    (fun (name, src) ->
      let program = Soc.Asm.assemble src in
      let cycles ~store_buffer =
        let system = System.create ~level:Level.L1 () in
        let kernel = System.kernel system in
        let platform = System.platform system in
        Soc.Platform.load_program platform program;
        let cpu =
          Soc.Cpu.create ~kernel ~port:(System.port system)
            ~pc:program.Soc.Asm.origin ~store_buffer
            ~irq:(fun () -> Soc.Platform.irq_asserted platform)
            ()
        in
        Soc.Cpu.run_to_halt cpu ~kernel ()
      in
      let buffered = cycles ~store_buffer:true in
      let blocking = cycles ~store_buffer:false in
      [
        {
          label = name;
          value = float_of_int blocking /. float_of_int buffered;
          note = Printf.sprintf "%d vs %d cycles" buffered blocking;
        };
      ])
    [
      ("memcpy", Test_programs.memcpy ~words:16);
      ("bubble-sort", Test_programs.bubble_sort ~n:10);
      ("bus-exercise", Test_programs.bus_exercise);
    ]

let render ~title rows =
  let body =
    List.map (fun r -> [ r.label; Printf.sprintf "%+.2f" r.value; r.note ]) rows
  in
  title ^ "\n" ^ Report.table ~header:[ "variant"; "value"; "note" ] body

let run_all ?domains ?(pool = true) () =
  (* The five studies are independent (each characterizes and simulates
     its own systems); fan them out on the domain pool.  One session
     pool is shared: its free-lists are domain-local, so studies on
     different domains never contend. *)
  let spool = if pool then Some (Pool.create ()) else None in
  String.concat "\n\n"
    (Parallel.map ?domains
       (fun (title, study) -> render ~title (study ()))
       [
         ( "Ablation: reference coupling ratio -> layer-1 energy error [%]",
           coupling_sensitivity ?pool:spool );
         ( "Ablation: internal-net energy scale -> layer-1 energy error [%]",
           internal_nets_sensitivity ?pool:spool );
         ( "Ablation: characterization table -> layer-1 energy error [%]",
           characterization_quality ?pool:spool );
         ( "Ablation: layer-2 boundary data-toggle assumption -> layer-2 error [%]",
           l2_boundary_sensitivity ?pool:spool );
         ( "Ablation: CPU store buffer (blocking/buffered cycle ratio per program)",
           store_buffer_effect );
       ])
