type row = { label : string; value : float; note : string }

(* Layer energy error (%) vs the gate-level reference over the accuracy
   stimulus, with a specific electrical parameter set and table. *)
let energy_error ?(level = Level.L1) ?pool ~rtl_params ~table () =
  let segments = Experiments.accuracy_stimulus () in
  let total lvl =
    List.fold_left
      (fun acc (_, trace, mode, init) ->
        let r =
          Runner.run_trace ~level:lvl ~rtl_params ~table ~mode ~init ?pool
            trace
        in
        acc +. r.Runner.bus_pj)
      0.0 segments
  in
  let reference = total Level.Rtl in
  Power.Units.pct_error ~reference (total level)

let coupling_sensitivity ?pool () =
  List.map
    (fun ratio ->
      let rtl_params = { Rtl.Params.default with Rtl.Params.coupling_ratio = ratio } in
      let table = Runner.characterize ~rtl_params () in
      {
        label = Printf.sprintf "coupling ratio %.2f" ratio;
        value = energy_error ?pool ~rtl_params ~table ();
        note = (if ratio = Rtl.Params.default.Rtl.Params.coupling_ratio then "default" else "");
      })
    [ 0.0; 0.10; Rtl.Params.default.Rtl.Params.coupling_ratio; 0.40 ]

let scale_internal (p : Rtl.Params.t) k =
  {
    p with
    Rtl.Params.decoder_pj_per_addr_toggle = p.Rtl.Params.decoder_pj_per_addr_toggle *. k;
    glitch_pj_per_hamming = p.Rtl.Params.glitch_pj_per_hamming *. k;
    mux_pj_per_rdata_toggle = p.Rtl.Params.mux_pj_per_rdata_toggle *. k;
    fsm_pj_per_ctrl_toggle = p.Rtl.Params.fsm_pj_per_ctrl_toggle *. k;
    sel_pj_per_toggle = p.Rtl.Params.sel_pj_per_toggle *. k;
    leakage_pj_per_cycle = p.Rtl.Params.leakage_pj_per_cycle *. k;
  }

let internal_nets_sensitivity ?pool () =
  List.map
    (fun k ->
      let rtl_params = scale_internal Rtl.Params.default k in
      let table = Runner.characterize ~rtl_params () in
      {
        label = Printf.sprintf "internal nets x%.1f" k;
        value = energy_error ?pool ~rtl_params ~table ();
        note = (if k = 1.0 then "default" else "");
      })
    [ 0.0; 0.5; 1.0; 2.0 ]

let characterization_quality ?pool () =
  let rtl_params = Rtl.Params.default in
  let derived = Runner.characterize () in
  [
    {
      label = "default capacitance table";
      value =
        energy_error ?pool ~rtl_params ~table:Power.Characterization.default ();
      note = "top-down, pre-layout";
    };
    {
      label = "derived (gate-level) table";
      value = energy_error ?pool ~rtl_params ~table:derived ();
      note = "the paper's Diesel flow";
    };
  ]

let l2_boundary_sensitivity ?pool () =
  let table = Runner.characterize () in
  let segments = Experiments.accuracy_stimulus () in
  List.map
    (fun bd ->
      let params =
        { Tlm2.Energy.default_params with Tlm2.Energy.boundary_data_toggles = bd }
      in
      let total_l2 =
        List.fold_left
          (fun acc (_, trace, mode, init) ->
            let r =
              Runner.run_trace ~level:Level.L2 ~table ~l2_params:params ~mode
                ~init ?pool trace
            in
            acc +. r.Runner.bus_pj)
          0.0 segments
      in
      let reference =
        List.fold_left
          (fun acc (_, trace, mode, init) ->
            acc
            +. (Runner.run_trace ~level:Level.Rtl ~mode ~init ?pool trace)
                 .Runner.bus_pj)
          0.0 segments
      in
      {
        label = Printf.sprintf "boundary data toggles %.1f" bd;
        value = Power.Units.pct_error ~reference total_l2;
        note =
          (if bd = Tlm2.Energy.default_params.Tlm2.Energy.boundary_data_toggles
           then "default"
           else "");
      })
    [ 6.0; 10.0; Tlm2.Energy.default_params.Tlm2.Energy.boundary_data_toggles; 18.0 ]

let store_buffer_effect () =
  List.concat_map
    (fun (name, src) ->
      let program = Soc.Asm.assemble src in
      let cycles ~store_buffer =
        let system = System.create ~level:Level.L1 () in
        let kernel = System.kernel system in
        let platform = System.platform system in
        Soc.Platform.load_program platform program;
        let cpu =
          Soc.Cpu.create ~kernel ~port:(System.port system)
            ~pc:program.Soc.Asm.origin ~store_buffer
            ~irq:(fun () -> Soc.Platform.irq_asserted platform)
            ()
        in
        Soc.Cpu.run_to_halt cpu ~kernel ()
      in
      let buffered = cycles ~store_buffer:true in
      let blocking = cycles ~store_buffer:false in
      [
        {
          label = name;
          value = float_of_int blocking /. float_of_int buffered;
          note = Printf.sprintf "%d vs %d cycles" buffered blocking;
        };
      ])
    [
      ("memcpy", Test_programs.memcpy ~words:16);
      ("bubble-sort", Test_programs.bubble_sort ~n:10);
      ("bus-exercise", Test_programs.bus_exercise);
    ]

let render ~title rows =
  let body =
    List.map (fun r -> [ r.label; Printf.sprintf "%+.2f" r.value; r.note ]) rows
  in
  title ^ "\n" ^ Report.table ~header:[ "variant"; "value"; "note" ] body

let run_all ?domains ?(pool = true) () =
  (* The five studies are independent (each characterizes and simulates
     its own systems); fan them out on the domain pool.  One session
     pool is shared: its free-lists are domain-local, so studies on
     different domains never contend. *)
  let spool = if pool then Some (Pool.create ()) else None in
  String.concat "\n\n"
    (Parallel.map ?domains
       (fun (title, study) -> render ~title (study ()))
       [
         ( "Ablation: reference coupling ratio -> layer-1 energy error [%]",
           coupling_sensitivity ?pool:spool );
         ( "Ablation: internal-net energy scale -> layer-1 energy error [%]",
           internal_nets_sensitivity ?pool:spool );
         ( "Ablation: characterization table -> layer-1 energy error [%]",
           characterization_quality ?pool:spool );
         ( "Ablation: layer-2 boundary data-toggle assumption -> layer-2 error [%]",
           l2_boundary_sensitivity ?pool:spool );
         ( "Ablation: CPU store buffer (blocking/buffered cycle ratio per program)",
           store_buffer_effect );
       ])
