let accuracy_stimulus () =
  let program = Soc.Asm.assemble Test_programs.bus_exercise in
  let traced = Runner.capture_cpu_trace program in
  let load_image system =
    (* Pattern first, program image on top: replayed fetches then read the
       same words the core fetched at capture time. *)
    Runner.fill_memories system;
    Soc.Platform.load_program (System.platform system) program
  in
  [
    ( "ec-spec sequences",
      Verify_seqs.combined,
      (`Serial :> Soc.Trace_master.mode),
      Runner.fill_memories );
    ("traced test program", traced, `Pipelined, load_image);
  ]

type accuracy_row = {
  level : Level.t;
  cycles : int;
  cycle_err_pct : float;
  energy_pj : float;
  energy_err_pct : float;
}

let run_accuracy ?table ?domains ?(pool = true) () =
  let table = match table with Some t -> t | None -> Runner.characterize () in
  let spool = if pool then Some (Pool.create ()) else None in
  let segments = accuracy_stimulus () in
  let totals level =
    List.fold_left
      (fun (cycles, pj) (_, trace, mode, init) ->
        let r = Runner.run_trace ~level ~table ~mode ~init ?pool:spool trace in
        (cycles + r.Runner.cycles, pj +. r.Runner.bus_pj))
      (0, 0.0) segments
  in
  (* One independent simulation chain per level, fanned out on the domain
     pool.  The gate-level reference is the head of [Level.all]. *)
  let per_level = Parallel.map ?domains totals Level.all in
  let ref_cycles, ref_pj =
    match per_level with r :: _ -> r | [] -> assert false
  in
  List.map2
    (fun level (cycles, pj) ->
      {
        level;
        cycles;
        cycle_err_pct =
          float_of_int (cycles - ref_cycles) /. float_of_int ref_cycles *. 100.0;
        energy_pj = pj;
        energy_err_pct = (pj -. ref_pj) /. ref_pj *. 100.0;
      })
    Level.all per_level

let render_table1 rows =
  let body =
    List.map
      (fun r ->
        [
          Level.to_string r.level;
          Printf.sprintf "%d" r.cycles;
          Report.ratio_pct
            ~reference:(float_of_int (List.hd rows).cycles)
            (float_of_int r.cycles);
          (match r.level with
          | Level.Rtl -> "-"
          | Level.L1 | Level.L2 | Level.L3 -> Report.pct r.cycle_err_pct);
        ])
      rows
  in
  "Table 1: timing error vs gate-level model\n"
  ^ Report.table ~header:[ "Abstraction level"; "Cycles"; "Relative"; "Error" ] body

let render_table2 rows =
  let reference = (List.hd rows).energy_pj in
  let body =
    List.map
      (fun r ->
        [
          Level.to_string r.level;
          Printf.sprintf "%.1f" r.energy_pj;
          Report.ratio_pct ~reference r.energy_pj;
          (match r.level with
          | Level.Rtl -> "-"
          | Level.L1 | Level.L2 | Level.L3 -> Report.pct r.energy_err_pct);
        ])
      rows
  in
  "Table 2: energy estimation error vs gate-level estimation\n"
  ^ Report.table
      ~header:[ "Abstraction level"; "Energy [pJ]"; "Relative"; "Error" ]
      body

type perf_row = {
  label : string;
  kilo_txns_per_s : float;
  factor_vs_l1_estimating : float;
}

let run_performance ?(txns = 20_000) ?(repetitions = 3) ?(domains = 1)
    ?(pool = true) () =
  let trace = Workloads.table3_trace ~n:txns in
  let spool = if pool then Some (Pool.create ()) else None in
  (* Transactions are issued one at a time, as the paper's testbench does:
     all models then simulate the same cycle count and the measurement
     isolates the per-cycle cost of each abstraction.  Best of
     [repetitions] filters wall-clock noise; the session pool keeps the
     repetitions from rebuilding the system (the timed region never
     includes setup either way). *)
  let measure (label, level, estimate) =
    let best = ref 0.0 in
    for _ = 1 to repetitions do
      let r = Runner.run_trace ~level ~estimate ~mode:`Serial ?pool:spool trace in
      let kts = Runner.txns_per_second r /. 1000.0 in
      if kts > !best then best := kts
    done;
    (label, !best)
  in
  let raw =
    (* Wall-clock measurements: [domains] defaults to 1 because concurrent
       runs contend for cores and distort the per-model factors.  Raise it
       only for quick smoke sweeps where the factors do not matter. *)
    Parallel.map ~domains measure
      [
        ("TL layer 1, with estimation", Level.L1, true);
        ("TL layer 1, without estimation", Level.L1, false);
        ("TL layer 2, with estimation", Level.L2, true);
        ("TL layer 2, without estimation", Level.L2, false);
        ("gate-level reference", Level.Rtl, true);
      ]
  in
  let base =
    match raw with
    | (_, kts) :: _ -> kts
    | [] -> assert false
  in
  List.map
    (fun (label, kts) ->
      { label; kilo_txns_per_s = kts; factor_vs_l1_estimating = kts /. base })
    raw

let render_table3 rows =
  let body =
    List.map
      (fun r ->
        [
          r.label;
          Printf.sprintf "%.1f" r.kilo_txns_per_s;
          Printf.sprintf "%.2f" r.factor_vs_l1_estimating;
        ])
      rows
  in
  "Table 3: simulation performance (bus transactions per second)\n"
  ^ Report.table ~header:[ "Model"; "kT/s"; "Factor" ] body

(* --- adaptive mixed-level comparison (the new-subsystem table) --- *)

type adaptive_row = {
  label : string;
  cycles : int;
  bus_pj : float;
  energy_err_pct : float;  (* vs the gate-level reference *)
  kilo_txns_per_s : float;
  speedup_vs_l1 : float;
}

type adaptive_summary = {
  rows : adaptive_row list;
  windows : int;
  switches : int;
  l1_txn_share_pct : float;
  error_bound_pj : float;
  within_bound : bool;
}

let adaptive_policy =
  Hier.Policy.triggered ~base:Hier.Level.L2
    [
      Hier.Policy.Addr_range
        {
          lo = Soc.Platform.Map.eeprom_base;
          hi = Soc.Platform.Map.eeprom_base + Soc.Platform.Map.eeprom_size;
          level = Hier.Level.L1;
        };
    ]

let run_adaptive_comparison ?(txns = 8_000) ?(repetitions = 3) ?(pool = true)
    () =
  let trace = Workloads.mixed_phase_trace ~n:txns () in
  let spool = if pool then Some (Pool.create ()) else None in
  (* Characterize once (outside the timed region) and feed every run the
     same table and memory image, as the accuracy experiments do, so the
     error columns land in the Table 2 bands. *)
  let table = Runner.characterize () in
  (* Serial wall-clock measurements, best-of like Table 3. *)
  let best measure =
    let best = ref None in
    for _ = 1 to repetitions do
      let r, kts = measure () in
      match !best with
      | Some (_, b) when b >= kts -> ()
      | _ -> best := Some (r, kts)
    done;
    match !best with Some rb -> rb | None -> assert false
  in
  let pure level =
    best (fun () ->
        let r =
          Runner.run_trace ~level ~table ~mode:`Serial
            ~init:Runner.fill_memories ?pool:spool trace
        in
        (r, Runner.txns_per_second r /. 1000.0))
  in
  let gate, gate_kts = pure Level.Rtl in
  let l1, l1_kts = pure Level.L1 in
  let l2, l2_kts = pure Level.L2 in
  let adaptive, adaptive_kts =
    best (fun () ->
        let r =
          Runner.run_adaptive ~table ~mode:`Serial ~init:Runner.fill_memories
            ?pool:spool ~policy:adaptive_policy trace
        in
        (`A r, Runner.adaptive_txns_per_second r /. 1000.0))
  in
  let adaptive = match adaptive with `A r -> r in
  let err pj = (pj -. gate.Runner.bus_pj) /. gate.Runner.bus_pj *. 100.0 in
  let row label cycles bus_pj kts =
    {
      label;
      cycles;
      bus_pj;
      energy_err_pct = err bus_pj;
      kilo_txns_per_s = kts;
      speedup_vs_l1 = (if l1_kts > 0.0 then kts /. l1_kts else 0.0);
    }
  in
  let splice = adaptive.Runner.splice in
  let l1_txns =
    List.fold_left
      (fun acc w ->
        if w.Hier.Splice.level = Hier.Level.L1 then acc + w.Hier.Splice.txns
        else acc)
      0 splice.Hier.Splice.windows
  in
  let _, within =
    Hier.Splice.error_vs_reference splice ~reference_pj:gate.Runner.bus_pj
  in
  {
    rows =
      [
        row "gate-level reference" gate.Runner.cycles gate.Runner.bus_pj gate_kts;
        row "pure TL layer 1" l1.Runner.cycles l1.Runner.bus_pj l1_kts;
        row "pure TL layer 2" l2.Runner.cycles l2.Runner.bus_pj l2_kts;
        row "adaptive (L2 base, L1 on EEPROM)" adaptive.Runner.cycles
          adaptive.Runner.bus_pj adaptive_kts;
      ];
    windows = List.length splice.Hier.Splice.windows;
    switches = splice.Hier.Splice.switches;
    l1_txn_share_pct =
      (if txns = 0 then 0.0
       else float_of_int l1_txns /. float_of_int txns *. 100.0);
    error_bound_pj = splice.Hier.Splice.error_bound_pj;
    within_bound = within;
  }

let render_adaptive s =
  let body =
    List.map
      (fun r ->
        [
          r.label;
          Printf.sprintf "%d" r.cycles;
          Printf.sprintf "%.1f" r.bus_pj;
          Report.pct r.energy_err_pct;
          Printf.sprintf "%.1f" r.kilo_txns_per_s;
          Printf.sprintf "%.2f" r.speedup_vs_l1;
        ])
      s.rows
  in
  Printf.sprintf
    "Adaptive mixed-level run vs pure runs\n%s\n\
     windows %d, switches %d, %.1f%% of txns at layer 1; spliced error \
     budget +/- %.1f pJ (%s)"
    (Report.table
       ~header:[ "Run"; "Cycles"; "Bus [pJ]"; "Err"; "kT/s"; "vs L1" ]
       body)
    s.windows s.switches s.l1_txn_share_pct s.error_bound_pj
    (if s.within_bound then "error within budget" else "BUDGET EXCEEDED")

(* --- adaptive exploration comparison (DESIGN.md section 12) --- *)

type exploration_mode = {
  mode : string;
  wall_s : float;
  grid_pj : float;
  pj_delta_pct : float;  (* vs the pure layer-1 sweep *)
  speedup_vs_l1 : float;  (* wall-clock ratio, layer-1 sweep / this sweep *)
}

type exploration_comparison = {
  applets : string list;
  cells : int;
  modes : exploration_mode list;
  bit_exact : bool;
  compiled_exact : bool;
  within_budget : bool;
}

let run_exploration_comparison ?(applets = Jcvm.Applets.all)
    ?(configs = Jcvm.Configs.standard) ?policy ?(pool = true) () =
  let policy =
    match policy with Some p -> p | None -> Hier.Policy.for_exploration ()
  in
  (* Serial sweeps: these are wall-clock measurements, and concurrent grid
     cells contend for cores and distort the ratio (cf. Table 3). *)
  let timed sweep =
    let t0 = Unix.gettimeofday () in
    let rows = sweep () in
    (rows, Unix.gettimeofday () -. t0)
  in
  let l1_rows, l1_wall =
    timed (fun () ->
        Exploration.run ~level:Level.L1 ~configs ~applets ~domains:1 ~pool ())
  in
  (* The same sweep again: with [pool] every cell's compiled plan is now
     warm, so this pass is pure energy folding — the compile-once-
     sweep-many figure the trace compiler exists for.  Rows must be
     bit-identical to the cold sweep. *)
  let l1_warm_rows, l1_warm_wall =
    timed (fun () ->
        Exploration.run ~level:Level.L1 ~configs ~applets ~domains:1 ~pool ())
  in
  let l2_rows, l2_wall =
    timed (fun () ->
        Exploration.run ~level:Level.L2 ~configs ~applets ~domains:1 ~pool ())
  in
  let ad_rows, ad_wall =
    timed (fun () ->
        Exploration.run ~policy ~configs ~applets ~domains:1 ~pool ())
  in
  let grid_pj rows =
    List.fold_left (fun acc r -> acc +. r.Exploration.bus_pj) 0.0 rows
  in
  let l1_pj = grid_pj l1_rows in
  let mode name rows wall =
    let pj = grid_pj rows in
    {
      mode = name;
      wall_s = wall;
      grid_pj = pj;
      pj_delta_pct = (if l1_pj > 0.0 then (pj -. l1_pj) /. l1_pj *. 100.0 else 0.0);
      speedup_vs_l1 = (if wall > 0.0 then l1_wall /. wall else 0.0);
    }
  in
  (* The adaptive sweep's acceptance contract: every functional field
     bit-identical to pure layer 1, the spliced energy within its own
     declared budget of the layer-1 figure. *)
  let bit_exact =
    List.for_all2
      (fun (a : Exploration.row) (b : Exploration.row) ->
        a.Exploration.cycles = b.Exploration.cycles
        && a.Exploration.transactions = b.Exploration.transactions
        && a.Exploration.value = b.Exploration.value
        && a.Exploration.correct = b.Exploration.correct)
      l1_rows ad_rows
  in
  let within_budget =
    List.for_all2
      (fun (l1 : Exploration.row) (ad : Exploration.row) ->
        match ad.Exploration.provenance with
        | None -> false
        | Some splice ->
          snd
            (Hier.Splice.error_vs_reference splice
               ~reference_pj:l1.Exploration.bus_pj))
      l1_rows ad_rows
  in
  {
    applets = List.map (fun a -> a.Jcvm.Applets.name) applets;
    cells = List.length l1_rows;
    modes =
      [
        mode "pure TL layer 1" l1_rows l1_wall;
        mode "TL layer 1, warm compiled plans" l1_warm_rows l1_warm_wall;
        mode "pure TL layer 2" l2_rows l2_wall;
        mode "adaptive (for_exploration)" ad_rows ad_wall;
      ];
    bit_exact;
    compiled_exact = l1_warm_rows = l1_rows;
    within_budget;
  }

let render_exploration_comparison c =
  let body =
    List.map
      (fun m ->
        [
          m.mode;
          Printf.sprintf "%.1f" (m.wall_s *. 1000.0);
          Printf.sprintf "%.1f" m.grid_pj;
          Report.pct m.pj_delta_pct;
          Printf.sprintf "%.2f" m.speedup_vs_l1;
        ])
      c.modes
  in
  Printf.sprintf
    "Adaptive exploration sweep vs pure-level sweeps (%d cells: %s)
%s
     adaptive rows %s vs pure layer 1; spliced energy %s
     warm compiled sweep %s vs the cold layer-1 sweep"
    c.cells
    (String.concat ", " c.applets)
    (Report.table
       ~header:[ "Sweep"; "Wall [ms]"; "Grid [pJ]"; "pJ vs L1"; "Speedup" ]
       body)
    (if c.bit_exact then "bit-exact (cycles/txns/value/check)"
     else "NOT BIT-EXACT")
    (if c.within_budget then "within the declared budget"
     else "OUTSIDE THE DECLARED BUDGET")
    (if c.compiled_exact then "bit-exact" else "NOT BIT-EXACT")

type figure6 = {
  l1_profile : Power.Profile.t;
  l2_lumps : (int * float) list;
  l1_total : float;
  l2_total : float;
}

(* Three wait-state transactions on the EEPROM: read, write, read. *)
let figure6_trace =
  let base = Soc.Platform.Map.eeprom_base in
  [
    Ec.Trace.item (Ec.Txn.single_read ~id:0 base);
    Ec.Trace.item (Ec.Txn.single_write ~id:0 (base + 4) ~value:0xA5A5_5A5A);
    Ec.Trace.item (Ec.Txn.single_read ~id:0 (base + 8));
  ]

let run_figure6 () =
  let l1 =
    Runner.run_trace ~level:Level.L1 ~record_profile:true ~mode:`Pipelined
      ~init:Runner.fill_memories figure6_trace
  in
  let l2 =
    Runner.run_trace ~level:Level.L2 ~record_profile:true ~mode:`Pipelined
      ~init:Runner.fill_memories figure6_trace
  in
  let l1_profile =
    match l1.Runner.profile with Some p -> p | None -> assert false
  in
  let l2_profile =
    match l2.Runner.profile with Some p -> p | None -> assert false
  in
  (* The paper samples at t1 (the first two address phases done) and t2
     (end): find the cycle after the second phase-completion event. *)
  let events = ref [] in
  for i = 0 to Power.Profile.length l2_profile - 1 do
    if Power.Profile.get l2_profile i > 0.0 then events := i :: !events
  done;
  let t1 =
    match List.rev !events with
    | _ :: second :: _ -> second + 1
    | _ -> 2
  in
  {
    l1_profile;
    l2_lumps =
      Power.Profile.lumped l2_profile
        ~sample_points:[ t1; Power.Profile.length l2_profile ];
    l1_total = l1.Runner.bus_pj;
    l2_total = l2.Runner.bus_pj;
  }

let render_figure6 f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 6: energy sampling using the layer-2 power interface\n";
  Buffer.add_string buf
    (Printf.sprintf "layer-1 cycle profile (total %.1f pJ):\n  [%s]\n"
       f.l1_total
       (Power.Profile.sparkline ~width:48 f.l1_profile));
  let cycles = Power.Profile.length f.l1_profile in
  for i = 0 to cycles - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  cycle %2d: %6.2f pJ\n" i (Power.Profile.get f.l1_profile i))
  done;
  Buffer.add_string buf
    (Printf.sprintf "layer-2 sampled lumps (total %.1f pJ):\n" f.l2_total);
  List.iter
    (fun (t, pj) ->
      Buffer.add_string buf (Printf.sprintf "  sample@%2d: %6.2f pJ\n" t pj))
    f.l2_lumps;
  Buffer.contents buf
