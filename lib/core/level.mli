(** The abstraction-level hierarchy of the paper.

    [Rtl] is the register-transfer/gate-level reference ("layer 0", the
    role Diesel plays in the paper), [L1] the cycle-accurate transaction
    level layer one, [L2] the timing-estimation layer two, and [L3] the
    untimed message layer replaying through the {!Tlm3} bridge onto a
    timed carrier bus (DESIGN.md section 17.4).

    The type itself lives in {!Hier.Level} (the mixed-level subsystem
    names levels without depending on [Core]); this module re-exports it,
    so [Core.Level.L1] and [Hier.Level.L1] are the same constructor. *)

type t = Hier.Level.t = Rtl | L1 | L2 | L3

val all : t list
(** The three directly comparable estimation levels of the paper's
    tables, [Rtl; L1; L2]; see {!Hier.Level.all}. *)

val timed : t list
(** Levels with their own timed bus model: [Rtl; L1; L2]. *)

val adaptive : t list
(** Levels an adaptive policy may choose for a window: [L1; L2; L3]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
