let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Work-stealing by atomic index: workers pull the next unclaimed item, so
   an expensive item (a gate-level run) does not serialize a whole chunk.
   Results land by index, which makes the output order — and therefore
   every reported number — independent of domain scheduling. *)
let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let wanted = match domains with Some d -> d | None -> default_domains () in
  let workers = min (max 1 wanted) n in
  if workers <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
          (* Keep the first failure; let other workers drain and exit. *)
          ignore
            (Atomic.compare_and_set failure None
               (Some (e, Printexc.get_raw_backtrace ())));
          Atomic.set next n);
        worker ()
      end
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all indices claimed *))
         results)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x; ()) xs)
