let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Persistent worker pool.  Spawning a domain costs far more than a
   small simulation, so sweep drivers that issue many parallel maps
   (the exploration grid, the accuracy tables) keep one set of domains
   alive and push batches at them.  A batch is a closure that every
   member runs to completion; the work-stealing index inside it makes
   joint execution safe.  Generations tell a worker whether the current
   batch is new to it: a worker that oversleeps a whole batch simply
   sees a later generation and runs that instead — the stolen-index loop
   it missed has no items left, so nothing is lost or run twice. *)
type pool = {
  size : int;  (* total participants, including the submitting caller *)
  mutex : Mutex.t;
  work : Condition.t;  (* new batch published *)
  idle : Condition.t;  (* a worker left the batch; caller waits active=0 *)
  mutable gen : int;
  mutable batch : (unit -> unit) option;  (* kept set; gen is the signal *)
  mutable active : int;
  mutable shutdown : bool;
}

let pool_size p = p.size

let rec worker_loop p ~seen =
  Mutex.lock p.mutex;
  while (not p.shutdown) && p.gen = seen do
    Condition.wait p.work p.mutex
  done;
  if p.shutdown then Mutex.unlock p.mutex
  else begin
    let seen = p.gen in
    let body = Option.get p.batch in
    p.active <- p.active + 1;
    Mutex.unlock p.mutex;
    (* The batch bodies built by [map] never raise (failures are routed
       through an atomic); the handler only keeps [active] honest if
       that invariant is ever broken. *)
    (try body () with _ -> ());
    Mutex.lock p.mutex;
    p.active <- p.active - 1;
    if p.active = 0 then Condition.broadcast p.idle;
    Mutex.unlock p.mutex;
    worker_loop p ~seen
  end

(* Publish [body], run it as the caller's own share, then wait for every
   worker that joined to leave.  Completion is airtight because a worker
   claims work only after incrementing [active]: when the caller's own
   run of [body] returns, all items are claimed, and each claim belongs
   to the caller or to a counted worker. *)
let run_batch p body =
  Mutex.lock p.mutex;
  p.batch <- Some body;
  p.gen <- p.gen + 1;
  Condition.broadcast p.work;
  Mutex.unlock p.mutex;
  body ();
  Mutex.lock p.mutex;
  while p.active > 0 do
    Condition.wait p.idle p.mutex
  done;
  Mutex.unlock p.mutex

let with_pool ?domains f =
  let size =
    max 1 (match domains with Some d -> d | None -> default_domains ())
  in
  let p =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      gen = 0;
      batch = None;
      active = 0;
      shutdown = false;
    }
  in
  let spawned =
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p ~seen:0))
  in
  let finish () =
    Mutex.lock p.mutex;
    p.shutdown <- true;
    Condition.broadcast p.work;
    Mutex.unlock p.mutex;
    Array.iter Domain.join spawned
  in
  match f p with
  | v ->
    finish ();
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    finish ();
    Printexc.raise_with_backtrace e bt

(* Work-stealing by atomic index: workers pull the next unclaimed item, so
   an expensive item (a gate-level run) does not serialize a whole chunk.
   Results land by index, which makes the output order — and therefore
   every reported number — independent of domain scheduling. *)
let map ?domains ?pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let wanted =
    match (pool, domains) with
    | Some p, _ -> p.size
    | None, Some d -> d
    | None, None -> default_domains ()
  in
  let workers = min (max 1 wanted) n in
  if workers <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec body () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
          (* Keep the first failure; let other workers drain and exit. *)
          ignore
            (Atomic.compare_and_set failure None
               (Some (e, Printexc.get_raw_backtrace ())));
          Atomic.set next n);
        body ()
      end
    in
    (match pool with
    | Some p -> run_batch p body
    | None ->
      let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn body) in
      body ();
      Array.iter Domain.join spawned);
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all indices claimed *))
         results)
  end

let iter ?domains ?pool f xs = ignore (map ?domains ?pool (fun x -> f x; ()) xs)
