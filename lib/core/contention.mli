(** Multi-master contention runs and the arbitration/topology study.

    Builds a {!System} at a timed level, wraps its bus port in an
    {!Ec.Fabric} (arbitration, per-master energy attribution, optional
    bridged far bus) and drives one {!Soc.Trace_master} per master
    through the fabric's ports.  This is the measurement harness behind
    the contention tables in EXPERIMENTS.md and the
    [smartcard run --masters] command line (DESIGN.md section 17). *)

(** Bus topology under test. *)
type topology =
  | Single  (** every master shares the one platform bus *)
  | Bridged
      (** a second bus of the same level behind a bridge, holding a far
          RAM at {!far_window}; traffic addressed there crosses over *)

val topology_to_string : topology -> string

val topology_of_string : string -> topology option
(** Accepts ["single"] and ["bridged"]. *)

(** Who a master models; purely a label for reports (any master may
    replay any trace). *)
type kind = Cpu | Dma | Crypto

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val far_window : int * int
(** Byte-address half-open range [\[lo, hi)] of the far RAM in bridged
    topologies — outside the Figure-1 platform map, so single-bus runs
    never touch it. *)

(** Per-master outcome of a contention run. *)
type master_row = {
  kind : kind;
  txns : int;  (** transactions completed through the fabric *)
  beats : int;  (** data beats of successful transactions *)
  errors : int;
  grants : int;  (** arbitration grants won *)
  energy_pj : float;  (** fabric-attributed share, see DESIGN.md 17.3 *)
}

type result = {
  level : Level.t;
  policy : Ec.Arbiter.policy;
  topology : topology;
  cycles : int;
  fabric_pj : float;
      (** total attributed energy — by construction the exact float sum
          of the rows' [energy_pj] *)
  bus_pj : float;
      (** what the bus energy models themselves report (near plus far),
          for cross-checking the attribution against the meters *)
  bridge_pj : float;  (** crossing energy, included in [fabric_pj] *)
  crossings : int;
  rows : master_row list;
  wall_seconds : float;
}

val run :
  ?level:Level.t ->
  ?policy:Ec.Arbiter.policy ->
  ?topology:topology ->
  ?mode:Soc.Trace_master.mode ->
  ?estimate:bool ->
  ?max_cycles:int ->
  ?bridge_latency:int ->
  ?bridge_pj_per_beat:float ->
  ?table:Power.Characterization.t ->
  ?compiled:bool ->
  ?pool:Pool.t ->
  (kind * Ec.Trace.t) list ->
  result
(** Replays each listed trace on its own fabric port until every master
    drains.  Master 0 is highest priority under [Fixed_priority] and the
    weight vector of a [Weighted] policy is in list order.

    Defaults: [level = L1] (any timed level works), [policy =
    Round_robin], [topology = Single], pipelined masters, estimation on,
    bridge latency 2 cycles at 1.5 pJ/beat.

    [~compiled:true] routes layer-1/2 estimation runs through a fabric
    plan ({!compile}) and evaluates [table] over it — bit-identical to
    the interpreted run, orders of magnitude faster once the plan is
    memoized; gate-level and estimation-off runs fall back to
    interpretation.  With [?pool], interpreted runs check out a pooled
    fabric session (keyed by level, policy, topology, bridge parameters
    and master kinds; traces and issue mode re-arm per checkout) and
    compiled runs memoize their plans in the pool under the ["fabric"]
    plan tag.

    @raise Invalid_argument on an empty master list, on [level = L3]
    (the message layer replays serially through a carrier — there is
    nothing to arbitrate; see DESIGN.md 17.4), or on a [Weighted] vector
    whose length differs from the master count. *)

val compile :
  ?level:Level.t ->
  ?policy:Ec.Arbiter.policy ->
  ?topology:topology ->
  ?mode:Soc.Trace_master.mode ->
  ?max_cycles:int ->
  ?bridge_latency:int ->
  ?bridge_pj_per_beat:float ->
  ?pool:Pool.t ->
  (kind * Ec.Trace.t) list ->
  Compile.Plan.fabric
(** One instrumented interpreted pass (DESIGN.md section 18): the bus
    energy observers record the near/far bodies, the fabric's integer
    observer records the arbitration-resolved per-master bucket-add
    order, and the result is a {!Compile.Plan.fabric} replayable under
    any characterization table.  Asserts the schedule's
    parameter-independence with a replay cross-check — the fresh plan
    evaluated at the capture table must reproduce the interpreted
    buckets bit for bit.  With [?pool] the plan is memoized under the
    ["fabric"] tag.

    @raise Invalid_argument on [level = Rtl] (Diesel has no integer tap)
    or [level = L3], and as {!run} otherwise.
    @raise Failure if the cross-check diverges. *)

val replay_plan :
  ?table:Power.Characterization.t ->
  level:Level.t ->
  policy:Ec.Arbiter.policy ->
  topology:topology ->
  kinds:kind list ->
  Compile.Plan.fabric ->
  result
(** Evaluates one parameter point over a compiled fabric plan and shapes
    it as a {!result} (wall time is the evaluation only).  [kinds]
    labels the rows, in master-index order. *)

val default_masters : ?n:int -> topology -> (kind * Ec.Trace.t) list
(** The standard three-master stimulus: a CPU replaying the Table-3 mix
    ([n] transactions, default 512), a DMA block move ([n] words — from
    the far window when [Bridged], FLASH otherwise) and a crypto driver
    ([n/8] blocks). *)

val study :
  ?n:int ->
  ?levels:Level.t list ->
  ?policies:Ec.Arbiter.policy list ->
  ?compiled:bool ->
  ?pool:Pool.t ->
  ?domains:int ->
  unit ->
  result list
(** The full exploration grid: arbiter policy x topology x level (default
    levels {!Level.timed}, default policies fixed / rr / wrr 4:2:1) over
    {!default_masters}.  Cells are independent simulations mapped across
    [?domains] {!Parallel} domains; [?compiled] and [?pool] forward to
    {!run}, so a pooled compiled sweep replays its grid from memoized
    plans on the second pass. *)

val render_study : result list -> string
(** Markdown-ish table of a {!study}, one row per run with per-master
    energy shares — the source of the contention table in
    EXPERIMENTS.md. *)
