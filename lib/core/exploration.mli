(** HW/SW interface exploration of the paper's section 4.3.

    For each interface configuration, the hardware stack joins the
    platform as an extra slave, the master adapter binds the Java Card
    interpreter's stack calls to bus transactions, and the applet runs on
    the energy-aware transaction-level bus.  Rows report cycles, bus
    energy, transaction count and functional correctness against the
    software-stack reference — the data on which the "best HW/SW
    interface between the java card interpreter and the hardware stack"
    is chosen.

    The sweep runs either at one fixed level or adaptively
    ([~policy], DESIGN.md section 12): a {!Runner.live_adaptive} session
    routes the adapter's traffic between the layer-1 and layer-2
    front-ends window by window, and the row carries the spliced
    provenance of its energy figure. *)

type row = {
  config : Jcvm.Configs.t;
  applet : string;
  level : Level.t;
      (** the fixed level, or an adaptive policy's resting level *)
  cycles : int;  (** kernel cycles consumed by the applet's bus traffic *)
  bus_pj : float;
  transactions : int;  (** bus transactions the adapter issued *)
  steps : int;  (** bytecode instructions interpreted *)
  value : int option;
  correct : bool;  (** matches the software-stack reference *)
  provenance : Hier.Splice.t option;
      (** adaptive rows only: what the spliced [bus_pj] is made of —
          per-level windows, cycles, energies and the error budget *)
}

val run_one :
  ?level:Level.t ->
  ?compiled:bool ->
  ?table:Power.Characterization.t ->
  ?policy:Hier.Policy.t ->
  ?sink:Obs.Sink.t ->
  ?pool:Pool.t ->
  config:Jcvm.Configs.t ->
  Jcvm.Applets.t ->
  row
(** One grid cell.  [level] (default [L1]) picks a fixed-level system;
    [policy] instead runs the cell through a live adaptive session —
    the two are mutually exclusive.  [cycles], [transactions], [value]
    and [correct] are bit-identical between [~level:l] and
    [~policy:(Hier.Policy.constant l)] (and the adaptive preset — only
    [bus_pj] moves, within the splice's error budget).  [sink] records
    the cell's bus traffic and, on the adaptive path, its window
    lifecycle — feed it to {!Obs.Chrome} for a per-row Perfetto trace.
    [pool] reuses a reset session (hardware stack + system, or live
    materials) for the cell's configuration shape; rows are
    bit-identical to fresh builds.  Cells with a [sink] never pool.

    [compiled] (default [true]) applies to pooled fixed-level cells:
    the cell's interpretation is captured once into a
    {!Compile.Plan.t} memoized in [pool] per (level, applet,
    configuration) — the characterization table folds off the plan
    afterwards, so repeating a cell (or sweeping tables over it) skips
    the JCVM interpretation entirely.  Rows are bit-identical to the
    interpreted cell.  Cells without a [pool], with a [sink], at
    {!Level.Rtl} or under a [policy] always interpret.
    @raise Invalid_argument if both [level] and [policy] are given. *)

val run :
  ?level:Level.t ->
  ?compiled:bool ->
  ?table:Power.Characterization.t ->
  ?policy:Hier.Policy.t ->
  ?configs:Jcvm.Configs.t list ->
  ?applets:Jcvm.Applets.t list ->
  ?domains:int ->
  ?workers:Parallel.pool ->
  ?pool:bool ->
  unit ->
  row list
(** Full sweep; defaults: layer 1 bus, default table, the standard
    configuration space and all sample applets.  The applet x
    configuration grid runs on the {!Parallel} pool; row order and
    contents match the serial sweep.  [policy] makes every cell
    adaptive, e.g. [Hier.Policy.for_exploration ()].

    [pool] (default [true]) draws sessions — and compiled cell plans,
    see [compiled] on {!run_one} — from a process-wide pool shared by
    every [run] call, so after warmup the grid rebuilds nothing and a
    {e repeated} grid reruns nothing but the energy fold; rows are
    bit-identical either way.  [workers] runs the grid on a persistent
    {!Parallel.with_pool} crew instead of spawning domains — pooled
    sessions and plans live in domain-local storage, so the crew's warm
    state also persists across sweeps. *)

val render : row list -> string
(** One table per applet: best correct configuration (energy) marked
    with [*], functionally wrong rows flagged with [!] (they are never
    best).  When any row is adaptive, three provenance columns show the
    per-level window/cycle/pJ split and the row's error budget. *)
