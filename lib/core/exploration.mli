(** HW/SW interface exploration of the paper's section 4.3.

    For each interface configuration, the hardware stack joins the
    platform as an extra slave, the master adapter binds the Java Card
    interpreter's stack calls to bus transactions, and the applet runs on
    the energy-aware transaction-level bus.  Rows report cycles, bus
    energy, transaction count and functional correctness against the
    software-stack reference — the data on which the "best HW/SW
    interface between the java card interpreter and the hardware stack"
    is chosen. *)

type row = {
  config : Jcvm.Configs.t;
  applet : string;
  level : Level.t;
  cycles : int;  (** kernel cycles consumed by the applet's bus traffic *)
  bus_pj : float;
  transactions : int;  (** bus transactions the adapter issued *)
  steps : int;  (** bytecode instructions interpreted *)
  value : int option;
  correct : bool;  (** matches the software-stack reference *)
}

val run_one :
  ?level:Level.t ->
  ?table:Power.Characterization.t ->
  config:Jcvm.Configs.t ->
  Jcvm.Applets.t ->
  row

val run :
  ?level:Level.t ->
  ?table:Power.Characterization.t ->
  ?configs:Jcvm.Configs.t list ->
  ?applets:Jcvm.Applets.t list ->
  ?domains:int ->
  unit ->
  row list
(** Full sweep; defaults: layer 1 bus, default table, the standard
    configuration space and all sample applets.  The applet x
    configuration grid runs on the {!Parallel} pool; row order and
    contents match the serial sweep. *)

val render : row list -> string
(** One table per applet, best configuration (energy) marked. *)
