(** Per-domain pools of resettable simulation sessions.

    Building a session ({!System.create} and friends) allocates a
    kernel, the full platform, a bus model and its energy estimator —
    thousands of allocations per exploration grid cell.  With the reset
    protocol ({!System.reset}, [Soc.*.reset], the bus resets) a session
    can instead be rewound to its creation state in place, so a sweep
    rebuilds nothing after the first cell of each configuration shape.

    Check-out is keyed by a caller-supplied string fingerprinting the
    configuration shape (level, estimator parameters, platform options —
    everything {i not} undone by reset).  Free-lists are domain-local
    ([Domain.DLS]): each worker of {!Parallel.map} keeps its own
    sessions, the hot path takes no lock, and a session is never shared
    across domains concurrently.  The price is one warmup build per
    (domain, key). *)

type t

type 'a kind
(** A type witness for one shape of pooled session record.  Create one
    per session type at module initialisation ([let k : foo kind =
    kind ()]) and use the same witness for every access; entries stored
    under a different witness are never returned, even on key collision. *)

val kind : unit -> 'a kind

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the free-list per (domain, key) — beyond it,
    released sessions are dropped for the GC.  Default 4. *)

val with_session :
  t ->
  'a kind ->
  key:string ->
  build:(unit -> 'a) ->
  reset:('a -> unit) ->
  ('a -> 'b) ->
  'b
(** [with_session t k ~key ~build ~reset f] runs [f] on a session for
    configuration [key]: a pooled one after [reset], else a fresh
    [build ()].  On normal return the session goes back to the
    free-list; if [f] raises, the session is dropped (its half-run
    state is not trusted to reset) and the exception propagates. *)

val acquire :
  t -> 'a kind -> key:string -> build:(unit -> 'a) -> reset:('a -> unit) -> 'a
(** Unscoped checkout, for sessions whose lifetime is not lexical (the
    adaptive engine retires a window's system only after the next
    window's handoff).  Pair with {!release} on the same domain; a
    session that errors should simply not be released. *)

val release : t -> 'a kind -> key:string -> 'a -> unit

val hits : t -> int
(** Checkouts served from the pool (across all domains). *)

val builds : t -> int
(** Checkouts that had to build fresh (across all domains). *)

val memo : t -> 'a kind -> ?tag:string -> key:string -> (unit -> 'a) -> 'a
(** [memo t k ~key build] caches an immutable value (a compiled trace
    plan, typically) in the pool's domain-local store: the first call
    per (domain, key) runs [build], later calls return the cached value
    without checkout or reset.  Memo entries are exempt from the
    capacity bound and live for the pool's lifetime; their keys never
    collide with session keys.  Since the value is shared, callers must
    not mutate it.

    [tag] names the plan kind (["trace"], ["fabric"]) for the per-kind
    hit/build breakout of {!memo_tag_stats}; untagged calls count only
    in the totals. *)

val memo_hits : t -> int
(** Memo lookups served from cache (across all domains). *)

val memo_builds : t -> int
(** Memo lookups that ran their build (across all domains). *)

val memo_tag_stats : t -> (string * int * int) list
(** Per-tag memo counters as [(tag, hits, builds)], sorted by tag.  The
    tag totals only cover tagged {!memo} calls; {!memo_hits} and
    {!memo_builds} remain the authoritative overall counts. *)

val fingerprint : 'a -> string
(** Structural fingerprint for pool keys, via [Marshal] + [Digest].
    Apply to pure-data configuration values only (no closures). *)
