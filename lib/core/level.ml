type t = Hier.Level.t = Rtl | L1 | L2

let all = Hier.Level.all
let to_string = Hier.Level.to_string
let pp = Hier.Level.pp
