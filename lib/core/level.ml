type t = Hier.Level.t = Rtl | L1 | L2 | L3

let all = Hier.Level.all
let timed = Hier.Level.timed
let adaptive = Hier.Level.adaptive
let to_string = Hier.Level.to_string
let pp = Hier.Level.pp
