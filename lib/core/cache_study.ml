type row = {
  lines : int option;
  cycles : int;
  bus_pj : float;
  cache_pj : float;
  total_pj : float;
  hit_rate_pct : float;
  splice : Hier.Splice.t option;
}

type t = { workload : string; rows : row list }

let cache_figures icache =
  match icache with
  | None -> (0.0, 0.0)
  | Some c ->
    let hits = Soc.Icache.hits c and misses = Soc.Icache.misses c in
    let accesses = hits + misses in
    ( Power.Component.energy_pj (Soc.Icache.component c),
      if accesses = 0 then 0.0
      else float_of_int hits /. float_of_int accesses *. 100.0 )

(* Adaptive variant: capture the post-cache bus traffic once at the gate
   level (that run also yields the cache's own figures), then replay it
   through the mixed-level engine.  Cycles are the spliced bus-replay
   timeline, not a CPU run. *)
let run_adaptive_one ?pool ~policy ~table program lines =
  let trace, icache = Runner.capture_with_icache ?icache_lines:lines program in
  let ar =
    Runner.run_adaptive ?table ?pool ~policy
      ~init:(fun system ->
        Runner.fill_memories system;
        Soc.Platform.load_program (System.platform system) program)
      trace
  in
  let cache_pj, hit_rate_pct = cache_figures icache in
  {
    lines;
    cycles = ar.Runner.cycles;
    bus_pj = ar.Runner.bus_pj;
    cache_pj;
    total_pj = ar.Runner.bus_pj +. ar.Runner.component_pj +. cache_pj;
    hit_rate_pct;
    splice = Some ar.Runner.splice;
  }

(* This study stays on the interpreted paths deliberately: every row is
   a CPU-driven run (the bus traffic depends on the cache size under
   test), and the adaptive variant switches levels mid-run — neither is
   a fixed trace that a {!Compile.Plan.t} could capture once and
   re-evaluate.  Session pooling is the applicable reuse here. *)
let run ?(level = Level.L1) ?policy ?table
    ?(sizes = [ None; Some 1; Some 2; Some 4; Some 16 ]) ?(name = "program")
    ?(pool = true) program =
  let spool = if pool then Some (Pool.create ()) else None in
  let one lines =
    let run =
      Runner.run_program ~level ?table ?icache_lines:lines ?pool:spool program
    in
    (match run.Runner.fault with
    | None -> ()
    | Some _ -> failwith "Core.Cache_study: workload faulted");
    let r = run.Runner.result in
    let cache_pj, hit_rate_pct = cache_figures run.Runner.icache in
    {
      lines;
      cycles = r.Runner.cycles;
      bus_pj = r.Runner.bus_pj;
      cache_pj;
      total_pj = r.Runner.bus_pj +. r.Runner.component_pj +. cache_pj;
      hit_rate_pct;
      splice = None;
    }
  in
  let one =
    match policy with
    | None -> one
    | Some policy -> run_adaptive_one ?pool:spool ~policy ~table program
  in
  { workload = name; rows = List.map one sizes }

let render t =
  let body =
    List.map
      (fun r ->
        [
          (match r.lines with
          | None -> "no cache"
          | Some n -> Printf.sprintf "%d lines (%d B)" n (n * Soc.Icache.line_bytes));
          string_of_int r.cycles;
          Printf.sprintf "%.1f" r.bus_pj;
          Printf.sprintf "%.1f" r.cache_pj;
          Printf.sprintf "%.1f" r.total_pj;
          Printf.sprintf "%.1f%%" r.hit_rate_pct;
        ])
      t.rows
  in
  Printf.sprintf "Instruction cache exploration: %s\n%s" t.workload
    (Report.table
       ~header:[ "i-cache"; "cycles"; "bus pJ"; "cache pJ"; "total pJ"; "hit rate" ]
       body)
