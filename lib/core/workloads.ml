module Map = Soc.Platform.Map

(* Word-aligned random address inside [base, base+size). *)
let random_word_addr rng base size =
  base + (4 * Sim.Rng.int rng (size / 4))

let random_trace ~rng ~n ?(max_gap = 3) ?(write_ratio = 0.4)
    ?(burst_ratio = 0.25) ?(subword_ratio = 0.2) ?(instr_ratio = 0.2) () =
  let item _ =
    let gap = Sim.Rng.int rng (max_gap + 1) in
    let is_write = Sim.Rng.float rng < write_ratio in
    let is_burst = Sim.Rng.float rng < burst_ratio in
    let txn =
      if is_write then begin
        (* Writable targets: RAM or EEPROM. *)
        let base, size =
          if Sim.Rng.bool rng then (Map.ram_base, Map.ram_size)
          else (Map.eeprom_base, Map.eeprom_size)
        in
        if is_burst then begin
          let addr = base + (4 * Sim.Rng.int rng ((size / 4) - 4)) in
          Ec.Txn.burst_write ~id:0 addr
            ~values:(Array.init 4 (fun _ -> Sim.Rng.bits rng 32))
        end
        else if Sim.Rng.float rng < subword_ratio then begin
          let width = if Sim.Rng.bool rng then Ec.Txn.W8 else Ec.Txn.W16 in
          let align = match width with Ec.Txn.W8 -> 1 | _ -> 2 in
          let addr = base + (align * Sim.Rng.int rng (size / align)) in
          let bits = Ec.Txn.width_bits width in
          Ec.Txn.single_write ~id:0 ~width addr ~value:(Sim.Rng.bits rng bits)
        end
        else
          Ec.Txn.single_write ~id:0
            (random_word_addr rng base size)
            ~value:(Sim.Rng.bits rng 32)
      end
      else begin
        let is_instr = Sim.Rng.float rng < instr_ratio in
        if is_instr then begin
          (* Executable targets: ROM or FLASH. *)
          let base, size =
            if Sim.Rng.bool rng then (Map.rom_base, Map.rom_size)
            else (Map.flash_base, Map.flash_size)
          in
          if is_burst then
            Ec.Txn.burst_read ~id:0 ~kind:Ec.Txn.Instruction
              (base + (4 * Sim.Rng.int rng ((size / 4) - 4)))
          else
            Ec.Txn.single_read ~id:0 ~kind:Ec.Txn.Instruction
              (random_word_addr rng base size)
        end
        else begin
          (* Readable targets: any memory. *)
          let base, size =
            match Sim.Rng.int rng 4 with
            | 0 -> (Map.rom_base, Map.rom_size)
            | 1 -> (Map.ram_base, Map.ram_size)
            | 2 -> (Map.eeprom_base, Map.eeprom_size)
            | _ -> (Map.flash_base, Map.flash_size)
          in
          if is_burst then
            Ec.Txn.burst_read ~id:0 (base + (4 * Sim.Rng.int rng ((size / 4) - 4)))
          else if Sim.Rng.float rng < subword_ratio then begin
            let width = if Sim.Rng.bool rng then Ec.Txn.W8 else Ec.Txn.W16 in
            let align = match width with Ec.Txn.W8 -> 1 | _ -> 2 in
            Ec.Txn.single_read ~id:0 ~width
              (base + (align * Sim.Rng.int rng (size / align)))
          end
          else Ec.Txn.single_read ~id:0 (random_word_addr rng base size)
        end
      end
    in
    Ec.Trace.item ~gap txn
  in
  List.init n item

let characterization_trace =
  let rng = Sim.Rng.create ~seed:0xCAFE in
  random_trace ~rng ~n:2000 ()

(* De Bruijn cycle over {single read, single write, burst read, burst
   write}: consecutive elements (with wrap-around) realize every ordered
   pair of transaction kinds exactly once per period. *)
let de_bruijn = [| 0; 0; 1; 2; 0; 3; 1; 1; 0; 2; 2; 1; 3; 3; 2; 3 |]

let value_of_index i = (i * 0x9E3779B9) land 0xFFFFFFFF

let table3_txn i =
  let kinds = [| `Sr; `Sw; `Br; `Bw |] in
  match kinds.(de_bruijn.(i mod 16)) with
  | `Sr -> Ec.Txn.single_read ~id:0 (Map.rom_base + (4 * (i mod 64)))
  | `Sw ->
    Ec.Txn.single_write ~id:0
      (Map.ram_base + (4 * (i mod 64)))
      ~value:(value_of_index i)
  | `Br -> Ec.Txn.burst_read ~id:0 (Map.rom_base + (16 * (i mod 16)))
  | `Bw ->
    Ec.Txn.burst_write ~id:0
      (Map.ram_base + (16 * (i mod 16)))
      ~values:(Array.init 4 (fun j -> value_of_index (i + j)))

let table3_trace ~n = List.init n (fun i -> Ec.Trace.item ~gap:0 (table3_txn i))

(* A single "sensitive" transaction: EEPROM traffic (the wait-state
   non-volatile memory where a card keeps keys and counters), same
   read/write/burst rotation as the bulk mix. *)
let sensitive_txn i =
  match i mod 4 with
  | 0 -> Ec.Txn.single_read ~id:0 (Map.eeprom_base + (4 * (i mod 64)))
  | 1 ->
    Ec.Txn.single_write ~id:0
      (Map.eeprom_base + (4 * (i mod 64)))
      ~value:(value_of_index i)
  | 2 -> Ec.Txn.burst_read ~id:0 (Map.eeprom_base + (16 * (i mod 16)))
  | _ ->
    Ec.Txn.burst_write ~id:0
      (Map.eeprom_base + (16 * (i mod 16)))
      ~values:(Array.init 4 (fun j -> value_of_index (i + j)))

let mixed_phase_trace ?(phase = 256) ?(sensitive_every = 8) ~n () =
  if phase <= 0 then invalid_arg "Workloads.mixed_phase_trace: phase <= 0";
  if sensitive_every <= 1 then
    invalid_arg "Workloads.mixed_phase_trace: sensitive_every <= 1";
  let make i =
    let sensitive = (i / phase) mod sensitive_every = sensitive_every - 1 in
    Ec.Trace.item ~gap:0 (if sensitive then sensitive_txn i else table3_txn i)
  in
  List.init n make

let dma_trace ~words ?(src = Map.flash_base) ?(dst = Map.ram_base) () =
  Soc.Dma.descriptor_trace ~src ~dst ~words ()

let crypto_trace ~blocks () =
  Soc.Crypto.block_trace ~base:Map.crypto_base ~blocks ()
