(** Synthetic workload generators.

    Random but reproducible traffic for characterization (the training run
    behind {!Runner.characterize}), for the simulation-performance
    measurements of Table 3 ("all combinations between single read, single
    write, burst read, and burst write transactions"), and for
    property-based tests. *)

val random_trace :
  rng:Sim.Rng.t ->
  n:int ->
  ?max_gap:int ->
  ?write_ratio:float ->
  ?burst_ratio:float ->
  ?subword_ratio:float ->
  ?instr_ratio:float ->
  unit ->
  Ec.Trace.t
(** [n] transactions over the Figure-1 memory map, error-free by
    construction (writes only target writable slaves, fetches executable
    ones).  Ratios default to 0.4 writes, 0.25 bursts, 0.2 sub-word
    singles, 0.2 instruction fetches among reads; gaps uniform in
    [0, max_gap] (default 3). *)

val characterization_trace : Ec.Trace.t
(** The standard training workload (seeded, 2000 transactions). *)

val table3_trace : n:int -> Ec.Trace.t
(** Deterministic mix cycling through every ordered pair of {single read,
    single write, burst read, burst write}, zero gaps — the Table 3
    stimulus. *)

val mixed_phase_trace :
  ?phase:int -> ?sensitive_every:int -> n:int -> unit -> Ec.Trace.t
(** The adaptive-run stimulus: Table-3 bulk traffic on ROM/RAM in phases
    of [phase] transactions (default 256), with every
    [sensitive_every]-th phase (default 8th) redirected to the EEPROM —
    the DPA-sensitive window an address-range policy refines to a
    cycle-accurate level.  Deterministic, zero gaps. *)

val dma_trace : words:int -> ?src:int -> ?dst:int -> unit -> Ec.Trace.t
(** Burst-heavy block-move traffic, the DMA engine's bus footprint:
    {!Soc.Dma.descriptor_trace} from [src] (default FLASH) to [dst]
    (default RAM).  Point [src] into {!Contention.far_window} to send the
    read half across a bridged fabric. *)

val crypto_trace : blocks:int -> unit -> Ec.Trace.t
(** Register-rhythm traffic, the crypto driver's bus footprint:
    {!Soc.Crypto.block_trace} against the platform's coprocessor
    registers — single-word accesses separated by the engine latency,
    the opposite contention profile to {!dma_trace}. *)
