let is_numberish s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || String.contains "+-.,%xkMG " c)
       s

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    let cell c =
      let text = Option.value (List.nth_opt row c) ~default:"" in
      let w = List.nth widths c in
      if is_numberish text then Printf.sprintf "%*s" w text
      else Printf.sprintf "%-*s" w text
    in
    "| " ^ String.concat " | " (List.init cols cell) ^ " |"
  in
  let rule =
    "|"
    ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let metrics m =
  let v = Obs.Metrics.view m in
  let counter_rows =
    List.map (fun (name, n) -> [ name; string_of_int n ]) v.Obs.Metrics.counters
  in
  let counters =
    table ~header:[ "counter"; "value" ] counter_rows
  in
  let hist h =
    let rows =
      List.mapi
        (fun i count ->
          [
            Obs.Metrics.bucket_label h.Obs.Metrics.bounds i;
            string_of_int count;
          ])
        (Array.to_list h.Obs.Metrics.counts)
    in
    let rows =
      rows
      @ [
          [ "total"; string_of_int h.Obs.Metrics.total ];
          [ "mean"; Printf.sprintf "%.2f" h.Obs.Metrics.mean ];
        ]
    in
    table ~header:[ h.Obs.Metrics.name; "count" ] rows
  in
  let non_empty h = h.Obs.Metrics.total > 0 in
  String.concat "\n\n"
    (counters :: List.map hist (List.filter non_empty v.Obs.Metrics.hists))

let pool_stats p =
  let rate hits builds =
    let total = hits + builds in
    if total = 0 then "n/a"
    else Printf.sprintf "%.1f%%" (float_of_int hits /. float_of_int total *. 100.0)
  in
  let sh = Pool.hits p and sb = Pool.builds p in
  let mh = Pool.memo_hits p and mb = Pool.memo_builds p in
  let tag_rows =
    List.map
      (fun (tag, h, b) ->
        [ "plans:" ^ tag; string_of_int h; string_of_int b; rate h b ])
      (Pool.memo_tag_stats p)
  in
  table
    ~header:[ "pool"; "hits"; "builds"; "hit rate" ]
    ([
       [ "sessions"; string_of_int sh; string_of_int sb; rate sh sb ];
       [ "plans"; string_of_int mh; string_of_int mb; rate mh mb ];
     ]
    @ tag_rows)

let pct v = Printf.sprintf "%+.1f%%" v
let ratio_pct ~reference v =
  if reference = 0.0 then "n/a" else Printf.sprintf "%.1f%%" (v /. reference *. 100.0)

let pj v = Format.asprintf "%a" Power.Units.pp_pj v
let float1 v = Printf.sprintf "%.1f" v
