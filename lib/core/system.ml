type bus =
  | Rtl_bus of Rtl.Bus.t
  | L1_bus of Tlm1.Bus.t
  | L2_bus of Tlm2.Bus.t

type t = {
  kernel : Sim.Kernel.t;
  platform : Soc.Platform.t;
  bus : bus;
  level : Level.t;
}

let create ?(level = Level.L1) ?(estimate = true) ?(record_profile = false)
    ?(table = Power.Characterization.default) ?rtl_params ?l2_params ?seed
    ?extra_slaves ?peripheral_clock ?sink () =
  let kernel = Sim.Kernel.create () in
  let platform =
    Soc.Platform.create ~kernel ?seed ?extra_slaves ?peripheral_clock ()
  in
  let decoder = Soc.Platform.decoder platform in
  let bus =
    match level with
    | Level.Rtl ->
      Rtl_bus
        (Rtl.Bus.create ~kernel ~decoder ?params:rtl_params ~record_profile
           ?sink ())
    | Level.L1 ->
      let energy =
        if estimate then Some (Tlm1.Energy.create ~record_profile table)
        else None
      in
      L1_bus (Tlm1.Bus.create ~kernel ~decoder ?energy ?sink ())
    | Level.L2 | Level.L3 ->
      (* Layer 3 has no bus model of its own: an L3 system is the layer-2
         carrier bus driven through the Tlm3 bridge (DESIGN.md 17.4). *)
      let energy =
        if estimate then
          Some (Tlm2.Energy.create ~record_profile ?params:l2_params table)
        else None
      in
      L2_bus (Tlm2.Bus.create ~kernel ~decoder ?energy ?sink ())
  in
  let t = { kernel; platform; bus; level } in
  let port =
    match bus with
    | Rtl_bus b -> Rtl.Bus.port b
    | L1_bus b -> Tlm1.Bus.port b
    | L2_bus b -> Tlm2.Bus.port b
  in
  Soc.Platform.connect_bus platform port;
  t

let kernel t = t.kernel
let platform t = t.platform
let bus t = t.bus
let level t = t.level

let port t =
  match t.bus with
  | Rtl_bus b -> Rtl.Bus.port b
  | L1_bus b -> Tlm1.Bus.port b
  | L2_bus b -> Tlm2.Bus.port b

let bus_busy t =
  match t.bus with
  | Rtl_bus b -> Rtl.Bus.busy b
  | L1_bus b -> Tlm1.Bus.busy b
  | L2_bus b -> Tlm2.Bus.busy b

let completed_txns t =
  match t.bus with
  | Rtl_bus b -> Rtl.Bus.completed_txns b
  | L1_bus b -> Tlm1.Bus.completed_txns b
  | L2_bus b -> Tlm2.Bus.completed_txns b

let completed_beats t =
  match t.bus with
  | Rtl_bus b -> Rtl.Bus.completed_beats b
  | L1_bus b -> Tlm1.Bus.completed_beats b
  | L2_bus b -> Tlm2.Bus.completed_beats b

let error_txns t =
  match t.bus with
  | Rtl_bus b -> Rtl.Bus.error_txns b
  | L1_bus b -> Tlm1.Bus.error_txns b
  | L2_bus b -> Tlm2.Bus.error_txns b

let bus_energy_pj t =
  match t.bus with
  | Rtl_bus b -> Rtl.Diesel.total_pj (Rtl.Bus.diesel b)
  | L1_bus b -> begin
    match Tlm1.Bus.energy b with
    | Some e -> Tlm1.Energy.total_pj e
    | None -> 0.0
  end
  | L2_bus b -> begin
    match Tlm2.Bus.energy b with
    | Some e -> Tlm2.Energy.total_pj e
    | None -> 0.0
  end

let bus_transitions t =
  match t.bus with
  | Rtl_bus b -> Rtl.Diesel.transitions_total (Rtl.Bus.diesel b)
  | L1_bus b -> begin
    match Tlm1.Bus.energy b with
    | Some e -> Tlm1.Energy.transitions_total e
    | None -> 0
  end
  | L2_bus _ -> 0

let component_energy_pj t = Soc.Platform.components_energy_pj t.platform
let total_energy_pj t = bus_energy_pj t +. component_energy_pj t

let meter t =
  match t.bus with
  | Rtl_bus b -> Some (Rtl.Diesel.meter (Rtl.Bus.diesel b))
  | L1_bus b -> Option.map Tlm1.Energy.meter (Tlm1.Bus.energy b)
  | L2_bus b -> Option.map Tlm2.Energy.meter (Tlm2.Bus.energy b)

let profile t = Option.bind (meter t) Power.Meter.profile

let energy_since_last_call_pj t =
  match meter t with
  | Some m -> Power.Meter.since_last_call_pj m
  | None -> 0.0

let reset t =
  Sim.Kernel.reset t.kernel;
  Soc.Platform.reset t.platform;
  match t.bus with
  | Rtl_bus b -> Rtl.Bus.reset b
  | L1_bus b -> Tlm1.Bus.reset b
  | L2_bus b -> Tlm2.Bus.reset b
