(** Ablation studies for the design choices behind the reproduction.

    Each study varies one modelling decision and reports its effect on
    the paper's headline metrics, answering "how much of the result
    depends on this choice?":

    - electrical detail of the reference estimator (coupling, internal
      nets) → the layer-1 error band;
    - characterization quality (capacitance-based default table versus
      the table derived from the gate-level model) → layer-1 accuracy;
    - the layer-2 boundary-toggle assumption → the layer-2 error curve;
    - the CPU store buffer → cycles of the traced test program. *)

type row = { label : string; value : float; note : string }

val coupling_sensitivity : ?pool:Pool.t -> unit -> row list
(** Layer-1 energy error (%) as the reference's lateral coupling ratio
    sweeps 0.0 → 0.4 (default 0.22); the characterization is re-derived
    per point, as the real flow would. *)

val internal_nets_sensitivity : ?pool:Pool.t -> unit -> row list
(** Layer-1 energy error (%) as the internal-net energies scale 0x → 2x:
    demonstrates the error is (almost exactly) the invisible internal
    share. *)

val characterization_quality : ?pool:Pool.t -> unit -> row list
(** Layer-1 error with the default capacitance table vs the derived
    table, on the accuracy stimulus.  Each stimulus segment compiles
    into a replay plan once and both tables fold off it in one
    multi-point pass ({!Runner.replay_multi}); figures are
    bit-identical to two interpreted runs. *)

val l2_boundary_sensitivity : ?pool:Pool.t -> unit -> row list
(** Layer-2 energy error (%) as the boundary data-toggle assumption
    sweeps; shows the over/underestimation crossover.  The four
    parameter variants share one compiled plan per stimulus segment
    (one interpreted run plus four float folds), bit-identical to four
    interpreted runs. *)

val store_buffer_effect : unit -> row list
(** Program cycles with and without the CPU store buffer, per test
    program (layer-1 bus). *)

val render : title:string -> row list -> string

val run_all : ?domains:int -> ?pool:bool -> unit -> string
(** Every study, rendered; the five studies are independent and run on
    the {!Parallel} pool.  [pool] (default [true]) shares one session
    pool across the studies, so each study's reference and layer runs
    reuse reset sessions; values are bit-identical either way. *)
