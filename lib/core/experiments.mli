(** Canonical definitions of the paper's experiments (section 4).

    Each [run_*] executes the experiment and returns structured results;
    each [render_*] lays them out like the paper's table.  The benchmark
    harness and the CLI both call these, so EXPERIMENTS.md numbers are
    reproducible from a single place. *)

(** {1 Tables 1 and 2: timing and energy accuracy} *)

val accuracy_stimulus :
  unit ->
  (string * Ec.Trace.t * Soc.Trace_master.mode * (System.t -> unit)) list
(** The paper's two verification steps: the EC-specification sequences
    (replayed serially) and the transactions traced from the assembly test
    program running on the gate-level model (replayed pipelined, as the
    core issued them). *)

type accuracy_row = {
  level : Level.t;
  cycles : int;
  cycle_err_pct : float;  (** vs the gate-level reference *)
  energy_pj : float;
  energy_err_pct : float;
}

val run_accuracy :
  ?table:Power.Characterization.t ->
  ?domains:int ->
  ?pool:bool ->
  unit ->
  accuracy_row list
(** Characterizes on the training workload (unless [table] is given),
    then runs the accuracy stimulus through all three levels — one
    {!Parallel} domain per level; the rows are identical to a serial
    run.  [pool] (default [true]) reuses one reset session per level
    across the stimulus segments; rows are bit-identical either way. *)

val render_table1 : accuracy_row list -> string
val render_table2 : accuracy_row list -> string

(** {1 Table 3: simulation performance} *)

type perf_row = {
  label : string;
  kilo_txns_per_s : float;
  factor_vs_l1_estimating : float;
}

val run_performance :
  ?txns:int ->
  ?repetitions:int ->
  ?domains:int ->
  ?pool:bool ->
  unit ->
  perf_row list
(** Replays the Table 3 mix ("all combinations between single read,
    single write, burst read and burst write"), issued serially as in the
    paper's testbench, through layer 1 and layer 2 — each with and
    without energy estimation — plus the gate-level reference for the
    acceleration context.  [txns] defaults to 20000; the best of
    [repetitions] (default 3) wall-clock runs is reported per model.
    [domains] defaults to 1: these are wall-clock measurements, and
    concurrent runs contend for cores and distort the factors.  [pool]
    (default [true]) reuses one reset session per model across the
    repetitions; the timed region never includes setup, so the reported
    factors are unaffected. *)

val render_table3 : perf_row list -> string

(** {1 Adaptive mixed-level comparison} *)

type adaptive_row = {
  label : string;
  cycles : int;
  bus_pj : float;
  energy_err_pct : float;  (** vs the gate-level reference *)
  kilo_txns_per_s : float;
  speedup_vs_l1 : float;
}

type adaptive_summary = {
  rows : adaptive_row list;
      (** gate reference, pure L1, pure L2, adaptive — in that order *)
  windows : int;
  switches : int;
  l1_txn_share_pct : float;  (** share of transactions refined to layer 1 *)
  error_bound_pj : float;  (** the splicer's cumulative budget *)
  within_bound : bool;  (** spliced total vs gate reference within budget *)
}

val adaptive_policy : Hier.Policy.t
(** The experiment's policy: layer 2 everywhere, layer 1 while traffic
    targets the EEPROM (the DPA-sensitive window). *)

val run_adaptive_comparison :
  ?txns:int -> ?repetitions:int -> ?pool:bool -> unit -> adaptive_summary
(** Replays {!Workloads.mixed_phase_trace} (default 8000 transactions)
    pipelined through the gate-level reference, pure layer 1, pure
    layer 2 and the adaptive engine, best of [repetitions] (default 3)
    wall-clock runs each.  The table the new subsystem is judged by:
    accuracy vs the reference and T/s vs pure layer 1. *)

val render_adaptive : adaptive_summary -> string

(** {1 Adaptive exploration comparison} *)

type exploration_mode = {
  mode : string;
  wall_s : float;  (** wall time of the whole serial sweep *)
  grid_pj : float;  (** sum of the grid's row energies *)
  pj_delta_pct : float;  (** vs the pure layer-1 sweep *)
  speedup_vs_l1 : float;  (** wall-clock ratio, layer-1 sweep / this sweep *)
}

type exploration_comparison = {
  applets : string list;
  cells : int;  (** applet x configuration grid size *)
  modes : exploration_mode list;
      (** pure layer 1 (cold), layer 1 with warm compiled plans, pure
          layer 2, adaptive — in that order *)
  bit_exact : bool;
      (** adaptive rows match layer 1 on cycles, transactions, value and
          correctness *)
  compiled_exact : bool;
      (** the warm compiled layer-1 sweep reproduced the cold sweep's
          rows exactly, energies included *)
  within_budget : bool;
      (** every adaptive row's spliced energy lies within its own
          declared error budget of the layer-1 figure *)
}

val run_exploration_comparison :
  ?applets:Jcvm.Applets.t list ->
  ?configs:Jcvm.Configs.t list ->
  ?policy:Hier.Policy.t ->
  ?pool:bool ->
  unit ->
  exploration_comparison
(** Runs the section 4.3 sweep three ways — pure layer 1, pure layer 2,
    and adaptively under [policy] (default
    [Hier.Policy.for_exploration ()]) — serially, so the wall-clock
    ratios are honest, and checks the adaptive sweep's acceptance
    contract (DESIGN.md section 12): functional fields bit-exact against
    layer 1 and spliced energies within budget. *)

val render_exploration_comparison : exploration_comparison -> string

(** {1 Figure 6: energy sampling semantics} *)

type figure6 = {
  l1_profile : Power.Profile.t;  (** cycle-accurate energy over time *)
  l2_lumps : (int * float) list;  (** (sample cycle, energy since last) *)
  l1_total : float;
  l2_total : float;
}

val run_figure6 : unit -> figure6
(** Three wait-state transactions (read, write, read): layer 1 yields the
    true per-cycle profile; layer 2's power interface only produces
    phase-lumped samples at the two paper sampling points. *)

val render_figure6 : figure6 -> string
