(** Experiment runners: one call builds a fresh system at a given level,
    drives a workload through it and collects the measurements the
    paper's tables are made of. *)

type result = {
  level : Level.t;
  cycles : int;  (** simulated clock cycles until the workload drained *)
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  transitions : int;
  profile : Power.Profile.t option;
  wall_seconds : float;  (** host time spent simulating *)
}

val txns_per_second : result -> float
(** Simulation performance in bus transactions per wall-clock second (the
    T/s metric of Table 3). *)

val run_trace :
  ?level:Level.t ->
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?rtl_params:Rtl.Params.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?mode:Soc.Trace_master.mode ->
  ?max_cycles:int ->
  ?init:(System.t -> unit) ->
  ?sink:Obs.Sink.t ->
  Ec.Trace.t ->
  result
(** [init] runs against the fresh system before simulation starts (load
    images, fill memories).  [sink] attaches the instrumentation sink to
    the bus and the trace master and records one final [Energy_sample]
    (plus the run's pJ/beat) when the workload drains; simulated results
    are bit-identical with and without it. *)

val run_levels :
  ?estimate:bool ->
  ?table:Power.Characterization.t ->
  ?mode:Soc.Trace_master.mode ->
  ?init:(System.t -> unit) ->
  ?domains:int ->
  Ec.Trace.t ->
  result list
(** The same trace through the gate-level reference, layer 1 and layer 2
    (Tables 1 and 2 in one call).  The three runs are independent systems
    and execute on the {!Parallel} pool; results are in {!Level.all}
    order and identical to three serial calls. *)

val fill_memories : System.t -> unit
(** Writes a deterministic pattern into the first KiBs of every memory, so
    replayed read traffic carries realistic data values. *)

(** {1 Adaptive mixed-level runs} *)

type adaptive_run = {
  splice : Hier.Splice.t;  (** per-window provenance and error budget *)
  cycles : int;  (** spliced-timeline totals, as in {!result} *)
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  switches : int;
  wall_seconds : float;
  final_system : System.t option;
      (** the last window's system (memories reflect the whole run);
          [None] only for an empty trace *)
}

val adaptive_txns_per_second : adaptive_run -> float

val run_adaptive :
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?rtl_params:Rtl.Params.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  ?mode:Soc.Trace_master.mode ->
  ?max_cycles:int ->
  ?init:(System.t -> unit) ->
  ?budget:(Level.t -> float) ->
  ?sink:Obs.Sink.t ->
  policy:Hier.Policy.t ->
  Ec.Trace.t ->
  adaptive_run
(** Mixed-level replay: {!Hier.Engine} partitions the trace into windows
    per [policy], runs each window on a fresh system at the decided
    level (same configuration arguments as {!run_trace}; [extra_slaves]
    and [peripheral_clock] reach every window's {!System.create}), hands
    the memory state across each quiesced switch point and splices the
    per-window energies.  [max_cycles] bounds each window.  With a
    {!Hier.Policy.constant} policy the single window is driven exactly
    like {!run_trace} at that level: cycles, transaction counts and
    energies match bit-for-bit.

    [sink] is shared by every window's system: the engine shifts the
    sink's timeline base so bus events from each fresh kernel land on
    the spliced timeline, and brackets each window with
    [Window_open]/[Window_close] events (see {!Hier.Engine.run}). *)

type live = {
  kernel : Sim.Kernel.t;  (** the one kernel every level shares *)
  port : Ec.Port.t;
      (** the switching master port: drive any bus master through it *)
  platform : Soc.Platform.t;
  session : Hier.Engine.Live.t;
  finish : unit -> adaptive_run;
      (** call once, after the driving master has drained (its
          [final_system] is always [None]: the session owns no
          {!System.t}) *)
}

val live_adaptive :
  ?table:Power.Characterization.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?budget:(Level.t -> float) ->
  ?sink:Obs.Sink.t ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  ?calibrate:bool ->
  policy:Hier.Policy.t ->
  unit ->
  live
(** A mixed-level session for {e generated} traffic (DESIGN.md
    section 12): one shared kernel carries a platform plus a bus
    front-end per level ([Rtl] is not available live), and the returned
    {!live.port} routes each submitted transaction through the level a
    {!Hier.Engine.Live} session decides — so a master (the JCVM adapter,
    a CPU) can run a workload whose future depends on read results while
    still paying layer-1 cost only inside refined windows.  Cycle and
    transaction counts are bit-identical to running the same master
    against a single fixed-level system.

    [peripheral_clock] defaults to [`Gated]: exploration traffic never
    reaches the peripherals, so their per-cycle processes are parked on
    the gated clock tree (pass [`Running] to keep timers/UART/leakage
    live).

    [calibrate] (default [true]) enables hierarchical in-run calibration
    of the layer-2 lump parameters: during refined windows each
    completed transaction is replayed into scratch layer-2 models, and
    at every refined-window close the scale [f = (E_L1 - X) / A] —
    measured layer-1 energy against the traffic-driven ([X]) and
    assumption-driven ([A]) parts of the layer-2 estimate — rescales the
    {!Tlm2.Energy} parameters ({!Tlm2.Energy.set_params}) for the fast
    windows that follow.  The blend is latest-window-dominant so the
    calibration tracks workload phases. *)

type program_run = {
  result : result;
  instructions : int;
  fault : Soc.Cpu.fault option;
  uart_output : string;
  system : System.t;
  cpu : Soc.Cpu.t;
  icache : Soc.Icache.t option;
}

val run_program :
  ?level:Level.t ->
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?max_cycles:int ->
  ?icache_lines:int ->
  ?vcd:string ->
  ?sink:Obs.Sink.t ->
  Soc.Asm.program ->
  program_run
(** Loads the image, runs the CPU to halt.  The program must reside in a
    memory of the Figure-1 map.  With [icache_lines] the core fetches
    through an instruction cache of that many 16-byte lines.  [vcd]
    writes a waveform dump of the run (gate-level systems only:
    @raise Invalid_argument otherwise). *)

val capture_cpu_trace :
  ?icache_lines:int -> ?max_cycles:int -> Soc.Asm.program -> Ec.Trace.t
(** The paper's tracing step: runs the program on the gate-level system
    with a bus monitor and returns the recorded transaction trace.
    [icache_lines] puts an instruction cache between the CPU and the
    monitor, so the trace is the post-cache bus traffic of that cache
    configuration. *)

val capture_with_icache :
  ?icache_lines:int ->
  ?max_cycles:int ->
  Soc.Asm.program ->
  Ec.Trace.t * Soc.Icache.t option
(** {!capture_cpu_trace} plus the capture run's cache (its hit/miss
    counters and energy), for studies that replay the trace but report
    the cache's figures — {!Cache_study} with a policy. *)

val characterize :
  ?rtl_params:Rtl.Params.t ->
  ?training:Ec.Trace.t ->
  unit ->
  Power.Characterization.t
(** Runs the training workload (default
    {!Workloads.characterization_trace}) on the gate-level reference and
    derives the per-signal table, mirroring the Diesel-based flow. *)
