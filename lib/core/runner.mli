(** Experiment runners: one call builds a fresh system at a given level,
    drives a workload through it and collects the measurements the
    paper's tables are made of. *)

type result = {
  level : Level.t;
  cycles : int;  (** simulated clock cycles until the workload drained *)
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  transitions : int;
  profile : Power.Profile.t option;
  wall_seconds : float;  (** host time spent simulating *)
}

val txns_per_second : result -> float
(** Simulation performance in bus transactions per wall-clock second (the
    T/s metric of Table 3). *)

val run_trace :
  ?level:Level.t ->
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?rtl_params:Rtl.Params.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?mode:Soc.Trace_master.mode ->
  ?max_cycles:int ->
  ?init:(System.t -> unit) ->
  ?sink:Obs.Sink.t ->
  ?pool:Pool.t ->
  ?compiled:bool ->
  Ec.Trace.t ->
  result
(** [init] runs against the fresh system before simulation starts (load
    images, fill memories).  [sink] attaches the instrumentation sink to
    the bus and the trace master and records one final [Energy_sample]
    (plus the run's pJ/beat) when the workload drains; simulated results
    are bit-identical with and without it.

    [pool] reuses a reset session of the same configuration instead of
    building one — results are bit-identical to a fresh build.  Sessions
    with a [sink] are never pooled (the sink wires in at creation).
    When pooling, [init] runs once per checkout, after the reset; it
    must set state (fill memories, poke registers), not register kernel
    processes.

    [compiled] (default [false]) routes the run through
    {!compile_trace} + {!replay_compiled}: one resolution pass builds a
    replay plan (cached in [pool] when given), and the energy for this
    run's [table]/[l2_params] point is folded off the plan.  Results are
    bit-identical to the interpreted run, including the per-cycle
    profile.  Compiled mode is sink-free by design — the plan carries no
    event stream — so a run with a [sink] (or at {!Level.Rtl}) silently
    takes the interpreted path even when [compiled] is set. *)

(** {1 Compiled trace replay}

    A {!Compile.Plan.t} is the one-shot resolution of a trace at a
    level: routing, wait states and merge/burst decisions are already
    taken, and what remains is pure integer transition data plus the
    table-independent scalar results.  Replaying it costs microseconds,
    and a multi-point replay evaluates many characterization points off
    one shared decode (DESIGN.md section 14). *)

val compile_trace :
  ?level:Level.t ->
  ?mode:Soc.Trace_master.mode ->
  ?max_cycles:int ->
  ?init:(System.t -> unit) ->
  ?pool:Pool.t ->
  Ec.Trace.t ->
  Compile.Plan.t
(** One interpreted resolution run with integer observers tapped into
    the level's energy model; the characterization table plays no role,
    so one plan serves every parameter point.  With [pool] the plan is
    memoized under the (level, mode, max_cycles, trace) fingerprint —
    see {!Pool.memo} — unless [init] is given (closures cannot be
    fingerprinted, so such runs always compile fresh).

    @raise Invalid_argument at {!Level.Rtl} — the gate-level reference
    has no transition-word tap. *)

val replay_compiled :
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?l2_params:Tlm2.Energy.params ->
  Compile.Plan.t ->
  result
(** Evaluates one parameter point over the plan.  [cycles], [txns],
    [beats], [errors], [transitions] and [component_pj] come from the
    plan's capture run; [bus_pj] and the optional [profile] are folded
    for this [table]/[l2_params] — all bit-identical to
    {!run_trace} with the same arguments.  [estimate:false] skips the
    fold ([bus_pj = 0.], [transitions = 0]), like an estimator-less
    system. *)

val replay_multi :
  ?record_profile:bool ->
  points:Compile.Eval.point list ->
  Compile.Plan.t ->
  result list
(** One {!result} per point, in order, from a single walk of the plan —
    the sweep primitive.  [wall_seconds] of every result is the wall
    time of the whole batch. *)

val run_levels :
  ?estimate:bool ->
  ?table:Power.Characterization.t ->
  ?mode:Soc.Trace_master.mode ->
  ?init:(System.t -> unit) ->
  ?domains:int ->
  ?pool:Pool.t ->
  Ec.Trace.t ->
  result list
(** The same trace through the gate-level reference, layer 1 and layer 2
    (Tables 1 and 2 in one call).  The three runs are independent systems
    and execute on the {!Parallel} pool; results are in {!Level.all}
    order and identical to three serial calls. *)

val fill_memories : System.t -> unit
(** Writes a deterministic pattern into the first KiBs of every memory, so
    replayed read traffic carries realistic data values. *)

(** {1 Adaptive mixed-level runs} *)

type adaptive_run = {
  splice : Hier.Splice.t;  (** per-window provenance and error budget *)
  cycles : int;  (** spliced-timeline totals, as in {!result} *)
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  switches : int;
  wall_seconds : float;
  final_system : System.t option;
      (** the last window's system (memories reflect the whole run);
          [None] only for an empty trace *)
}

val adaptive_txns_per_second : adaptive_run -> float

val run_adaptive :
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?rtl_params:Rtl.Params.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  ?mode:Soc.Trace_master.mode ->
  ?max_cycles:int ->
  ?init:(System.t -> unit) ->
  ?budget:(Level.t -> float) ->
  ?sink:Obs.Sink.t ->
  ?pool:Pool.t ->
  policy:Hier.Policy.t ->
  Ec.Trace.t ->
  adaptive_run
(** Mixed-level replay: {!Hier.Engine} partitions the trace into windows
    per [policy], runs each window on a fresh system at the decided
    level (same configuration arguments as {!run_trace}; [extra_slaves]
    and [peripheral_clock] reach every window's {!System.create}), hands
    the memory state across each quiesced switch point and splices the
    per-window energies.  [max_cycles] bounds each window.  With a
    {!Hier.Policy.constant} policy the single window is driven exactly
    like {!run_trace} at that level: cycles, transaction counts and
    energies match bit-for-bit.

    [sink] is shared by every window's system: the engine shifts the
    sink's timeline base so bus events from each fresh kernel land on
    the spliced timeline, and brackets each window with
    [Window_open]/[Window_close] events (see {!Hier.Engine.run}).

    [pool] draws each window's system from the session pool (keyed per
    level) and returns it right after the next window's handoff, so a
    long mixed-level run allocates at most one system per level; the
    final window's system escapes via [final_system] and stays out of
    the pool.  Runs with a [sink] or [extra_slaves] always build fresh
    (the former wires in at creation, the latter is caller-owned state
    the reset protocol cannot see). *)

type live = {
  kernel : Sim.Kernel.t;  (** the one kernel every level shares *)
  port : Ec.Port.t;
      (** the switching master port: drive any bus master through it *)
  platform : Soc.Platform.t;
  session : Hier.Engine.Live.t;
  finish : unit -> adaptive_run;
      (** call once, after the driving master has drained (its
          [final_system] is always [None]: the session owns no
          {!System.t}) *)
}

type live_materials
(** The durable hardware of a live session — kernel, platform, and an
    eagerly built bus front-end per level — separated out so a pool can
    reuse it across {!live_adaptive} runs.  The eager layer-2 front-end
    is measurement-neutral: an idle bus process steps to no effect and
    adds no energy, so a materials-backed session reports exactly what a
    one-shot session (which builds layer 2 on demand) reports. *)

val live_materials :
  ?table:Power.Characterization.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?sink:Obs.Sink.t ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  ?extra_reset:(unit -> unit) ->
  unit ->
  live_materials
(** Same construction arguments as {!live_adaptive}.  [extra_reset] is
    the caller's hook for rewinding its [extra_slaves] (e.g.
    [Jcvm.Hw_stack.reset]); {!reset_live_materials} calls it last. *)

val reset_live_materials : live_materials -> unit
(** Rewinds kernel, platform, both bus front-ends (including their
    energy models — the layer-2 model returns to its creation
    parameters, undoing in-run calibration) and finally the caller's
    extra slaves, so the next {!live_adaptive} run on these materials is
    bit-identical to one on freshly built materials. *)

val live_adaptive :
  ?table:Power.Characterization.t ->
  ?l2_params:Tlm2.Energy.params ->
  ?budget:(Level.t -> float) ->
  ?sink:Obs.Sink.t ->
  ?extra_slaves:Ec.Slave.t list ->
  ?peripheral_clock:[ `Running | `Gated ] ->
  ?calibrate:bool ->
  ?materials:live_materials ->
  policy:Hier.Policy.t ->
  unit ->
  live
(** A mixed-level session for {e generated} traffic (DESIGN.md
    section 12): one shared kernel carries a platform plus a bus
    front-end per level ([Rtl] is not available live), and the returned
    {!live.port} routes each submitted transaction through the level a
    {!Hier.Engine.Live} session decides — so a master (the JCVM adapter,
    a CPU) can run a workload whose future depends on read results while
    still paying layer-1 cost only inside refined windows.  Cycle and
    transaction counts are bit-identical to running the same master
    against a single fixed-level system.

    [peripheral_clock] defaults to [`Gated]: exploration traffic never
    reaches the peripherals, so their per-cycle processes are parked on
    the gated clock tree (pass [`Running] to keep timers/UART/leakage
    live).

    [calibrate] (default [true]) enables hierarchical in-run calibration
    of the layer-2 lump parameters: during refined windows each
    completed transaction is replayed into scratch layer-2 models, and
    at every refined-window close the scale [f = (E_L1 - X) / A] —
    measured layer-1 energy against the traffic-driven ([X]) and
    assumption-driven ([A]) parts of the layer-2 estimate — rescales the
    {!Tlm2.Energy} parameters ({!Tlm2.Energy.set_params}) for the fast
    windows that follow.  The blend is latest-window-dominant so the
    calibration tracks workload phases.

    [materials] runs the session on pre-built (typically pooled and
    reset) hardware instead of constructing its own; [table],
    [l2_params], [extra_slaves] and [peripheral_clock] are then taken
    from the materials and the same-named arguments are ignored.  Each
    run still gets fresh calibration state and a fresh
    {!Hier.Engine.Live} session. *)

type program_run = {
  result : result;
  instructions : int;
  fault : Soc.Cpu.fault option;
  uart_output : string;
  system : System.t;
  cpu : Soc.Cpu.t;
  icache : Soc.Icache.t option;
}

val run_program :
  ?level:Level.t ->
  ?estimate:bool ->
  ?record_profile:bool ->
  ?table:Power.Characterization.t ->
  ?max_cycles:int ->
  ?icache_lines:int ->
  ?vcd:string ->
  ?sink:Obs.Sink.t ->
  ?pool:Pool.t ->
  Soc.Asm.program ->
  program_run
(** Loads the image, runs the CPU to halt.  The program must reside in a
    memory of the Figure-1 map.  With [icache_lines] the core fetches
    through an instruction cache of that many 16-byte lines.  [vcd]
    writes a waveform dump of the run (gate-level systems only:
    @raise Invalid_argument otherwise).

    [pool] reuses a reset CPU session (system + core + optional cache);
    runs with [vcd] or [sink] always build fresh.  The [system], [cpu]
    and [icache] handles in the returned record then stay valid only
    until the next pooled run with the same configuration on the calling
    domain — read any per-run figures off them before starting another
    run. *)

val capture_cpu_trace :
  ?icache_lines:int -> ?max_cycles:int -> Soc.Asm.program -> Ec.Trace.t
(** The paper's tracing step: runs the program on the gate-level system
    with a bus monitor and returns the recorded transaction trace.
    [icache_lines] puts an instruction cache between the CPU and the
    monitor, so the trace is the post-cache bus traffic of that cache
    configuration. *)

val capture_with_icache :
  ?icache_lines:int ->
  ?max_cycles:int ->
  Soc.Asm.program ->
  Ec.Trace.t * Soc.Icache.t option
(** {!capture_cpu_trace} plus the capture run's cache (its hit/miss
    counters and energy), for studies that replay the trace but report
    the cache's figures — {!Cache_study} with a policy. *)

val characterize :
  ?rtl_params:Rtl.Params.t ->
  ?training:Ec.Trace.t ->
  unit ->
  Power.Characterization.t
(** Runs the training workload (default
    {!Workloads.characterization_trace}) on the gate-level reference and
    derives the per-signal table, mirroring the Diesel-based flow. *)
