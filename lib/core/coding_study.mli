(** Bus coding exploration over simulated traffic.

    An architecture-exploration extension in the spirit of the bus-coding
    work the paper's related-work section surveys: record the address,
    write-data and read-data bus value sequences of a workload on the
    gate-level model, then evaluate bus-invert and Gray coding offline
    with {!Power.Coding}, including the estimated energy per scheme. *)

type bus_row = {
  bus : string;  (** "address", "write data", "read data" *)
  width : int;
  report : Power.Coding.report;
  plain_pj : float;  (** transition count x characterized pJ/transition *)
  best_scheme : string;
  best_pj : float;
}

type t = {
  workload : string;
  cycles : int;
  rows : bus_row list;
}

val characterization_table : unit -> Power.Characterization.t
(** The characterization shared by every run, computed on first use.
    Domain-safe: concurrent callers block until the single computation
    finishes and then share its table.  Call it once up front to keep
    the (expensive) characterization out of timed or parallel regions. *)

val run_program : ?name:string -> Soc.Asm.program -> t
(** Runs the program on an instrumented gate-level system. *)

val run_trace : ?name:string -> Ec.Trace.t -> t

val render : t -> string
