type result = {
  level : Level.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  transitions : int;
  profile : Power.Profile.t option;
  wall_seconds : float;
}

let txns_per_second r =
  if r.wall_seconds <= 0.0 then 0.0 else float_of_int r.txns /. r.wall_seconds

let collect system ~cycles ~wall_seconds =
  {
    level = System.level system;
    cycles;
    txns = System.completed_txns system;
    beats = System.completed_beats system;
    errors = System.error_txns system;
    bus_pj = System.bus_energy_pj system;
    component_pj = System.component_energy_pj system;
    transitions = System.bus_transitions system;
    profile = System.profile system;
    wall_seconds;
  }

(* End-of-run bookkeeping shared by the single-level runners: one
   energy sample at the final cycle plus the run's pJ/beat. *)
let record_run_energy sink system ~cycles =
  match sink with
  | None -> ()
  | Some s ->
    let pj = System.bus_energy_pj system in
    Obs.Sink.energy_sample s ~cycle:cycles ~pj;
    let beats = System.completed_beats system in
    if beats > 0 then
      Obs.Metrics.observe_pj_per_beat (Obs.Sink.metrics s)
        (pj /. float_of_int beats)

let run_trace ?level ?estimate ?record_profile ?table ?rtl_params ?l2_params
    ?(mode = `Pipelined) ?max_cycles ?init ?sink trace =
  let system =
    System.create ?level ?estimate ?record_profile ?table ?rtl_params
      ?l2_params ?sink ()
  in
  (match init with Some f -> f system | None -> ());
  let kernel = System.kernel system in
  let master =
    Soc.Trace_master.create ~kernel ~port:(System.port system) ~mode ?sink
      trace
  in
  let t0 = Unix.gettimeofday () in
  let cycles = Soc.Trace_master.run master ~kernel ?max_cycles () in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  record_run_energy sink system ~cycles;
  collect system ~cycles ~wall_seconds

let run_levels ?estimate ?table ?mode ?init ?domains trace =
  Parallel.map ?domains
    (fun level -> run_trace ~level ?estimate ?table ?mode ?init trace)
    Level.all

(* Deterministic content for memories read by replayed traces, so the
   read-data bus carries realistic values instead of zeros. *)
let fill_memories system =
  let pattern i = (((i * 2654435761) lxor 0x0F0F_F0F0) + (i lsl 7)) land 0xFFFFFFFF in
  let fill memory bytes =
    for w = 0 to (bytes / 4) - 1 do
      let base = (Soc.Memory.cfg memory).Ec.Slave_cfg.base in
      Soc.Memory.poke32 memory ~addr:(base + (4 * w)) (pattern w)
    done
  in
  let p = System.platform system in
  fill (Soc.Platform.rom p) 4096;
  fill (Soc.Platform.ram p) 4096;
  fill (Soc.Platform.eeprom p) 4096;
  fill (Soc.Platform.flash p) 4096

type adaptive_run = {
  splice : Hier.Splice.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  switches : int;
  wall_seconds : float;
  final_system : System.t option;
}

let adaptive_txns_per_second r =
  if r.wall_seconds <= 0.0 then 0.0 else float_of_int r.txns /. r.wall_seconds

(* Architectural state handoff across a switch point: the previous
   system is quiescent (trace drained, no outstanding bursts), so the
   memories are the whole state the replayed traffic can observe.  The
   decoder map and wait-state parameters are configuration, rebuilt
   identically by System.create; peripheral-internal registers reset —
   see DESIGN.md section 10 for the rule. *)
let handoff_state ~prev ~next =
  let copy get =
    Soc.Memory.copy_contents
      ~src:(get (System.platform prev))
      ~dst:(get (System.platform next))
  in
  copy Soc.Platform.rom;
  copy Soc.Platform.ram;
  copy Soc.Platform.eeprom;
  copy Soc.Platform.flash

let run_adaptive ?estimate ?record_profile ?table ?rtl_params ?l2_params
    ?(mode = `Pipelined) ?max_cycles ?init ?budget ?sink ~policy trace =
  let ops =
    {
      Hier.Engine.create =
        (fun level ->
          System.create ~level ?estimate ?record_profile ?table ?rtl_params
            ?l2_params ?sink ());
      init = (fun system -> match init with Some f -> f system | None -> ());
      handoff = (fun ~prev ~next -> handoff_state ~prev ~next);
      run_segment =
        (fun system seg ->
          let kernel = System.kernel system in
          let master =
            Soc.Trace_master.create ~kernel ~port:(System.port system) ~mode
              ?sink seg
          in
          let cycles = Soc.Trace_master.run master ~kernel ?max_cycles () in
          {
            Hier.Engine.cycles;
            txns = System.completed_txns system;
            beats = System.completed_beats system;
            errors = System.error_txns system;
            bus_pj = System.bus_energy_pj system;
            component_pj = System.component_energy_pj system;
            profile = System.profile system;
          });
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Hier.Engine.run ?budget ?sink ~ops ~policy trace in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let s = r.Hier.Engine.splice in
  {
    splice = s;
    cycles = s.Hier.Splice.total_cycles;
    txns = s.Hier.Splice.total_txns;
    beats = s.Hier.Splice.total_beats;
    errors = s.Hier.Splice.total_errors;
    bus_pj = s.Hier.Splice.total_bus_pj;
    component_pj = s.Hier.Splice.total_component_pj;
    switches = s.Hier.Splice.switches;
    wall_seconds;
    final_system = r.Hier.Engine.last_system;
  }

type program_run = {
  result : result;
  instructions : int;
  fault : Soc.Cpu.fault option;
  uart_output : string;
  system : System.t;
  cpu : Soc.Cpu.t;
  icache : Soc.Icache.t option;
}

let run_program ?level ?estimate ?record_profile ?table ?max_cycles
    ?icache_lines ?vcd ?sink program =
  let system =
    System.create ?level ?estimate ?record_profile ?table ?sink ()
  in
  let kernel = System.kernel system in
  let vcd_dump =
    match vcd, System.bus system with
    | Some path, System.Rtl_bus bus ->
      Some (path, Rtl.Vcd.create ~kernel (Rtl.Bus.wires bus))
    | Some _, (System.L1_bus _ | System.L2_bus _) ->
      invalid_arg "Core.Runner.run_program: vcd needs the rtl level"
    | None, _ -> None
  in
  Soc.Platform.load_program (System.platform system) program;
  let platform = System.platform system in
  let bus_port = System.port system in
  let icache =
    Option.map
      (fun lines -> Soc.Icache.create ~kernel ~lines ~inner:bus_port ())
      icache_lines
  in
  let cpu_port =
    match icache with Some c -> Soc.Icache.port c | None -> bus_port
  in
  let cpu =
    Soc.Cpu.create ~kernel ~port:cpu_port ~pc:program.Soc.Asm.origin
      ~irq:(fun () -> Soc.Platform.irq_asserted platform)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let cycles = Soc.Cpu.run_to_halt cpu ~kernel ?max_cycles () in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (match vcd_dump with
  | Some (path, recorder) -> Rtl.Vcd.write recorder path
  | None -> ());
  record_run_energy sink system ~cycles;
  {
    result = collect system ~cycles ~wall_seconds;
    instructions = Soc.Cpu.instructions cpu;
    fault = Soc.Cpu.fault cpu;
    uart_output = Soc.Uart.transmitted (Soc.Platform.uart (System.platform system));
    system;
    cpu;
    icache;
  }

let capture_cpu_trace ?max_cycles program =
  let system = System.create ~level:Level.Rtl () in
  let kernel = System.kernel system in
  fill_memories system;
  Soc.Platform.load_program (System.platform system) program;
  let monitor = Soc.Monitor.create ~kernel (System.port system) in
  let cpu =
    Soc.Cpu.create ~kernel ~port:(Soc.Monitor.port monitor)
      ~pc:program.Soc.Asm.origin ()
  in
  ignore (Soc.Cpu.run_to_halt cpu ~kernel ?max_cycles ());
  Soc.Monitor.trace monitor

let characterize ?rtl_params ?(training = Workloads.characterization_trace) () =
  let system = System.create ~level:Level.Rtl ?rtl_params () in
  fill_memories system;
  let kernel = System.kernel system in
  let master =
    Soc.Trace_master.create ~kernel ~port:(System.port system) training
  in
  ignore (Soc.Trace_master.run master ~kernel ());
  match System.bus system with
  | System.Rtl_bus bus ->
    Rtl.Diesel.characterize ~name:"derived(gate-level)" (Rtl.Bus.diesel bus)
  | System.L1_bus _ | System.L2_bus _ -> assert false
