type result = {
  level : Level.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  transitions : int;
  profile : Power.Profile.t option;
  wall_seconds : float;
}

let txns_per_second r =
  if r.wall_seconds <= 0.0 then 0.0 else float_of_int r.txns /. r.wall_seconds

let collect system ~cycles ~wall_seconds =
  {
    level = System.level system;
    cycles;
    txns = System.completed_txns system;
    beats = System.completed_beats system;
    errors = System.error_txns system;
    bus_pj = System.bus_energy_pj system;
    component_pj = System.component_energy_pj system;
    transitions = System.bus_transitions system;
    profile = System.profile system;
    wall_seconds;
  }

(* End-of-run bookkeeping shared by the single-level runners: one
   energy sample at the final cycle plus the run's pJ/beat. *)
let record_run_energy sink system ~cycles =
  match sink with
  | None -> ()
  | Some s ->
    let pj = System.bus_energy_pj system in
    Obs.Sink.energy_sample s ~cycle:cycles ~pj;
    let beats = System.completed_beats system in
    if beats > 0 then
      Obs.Metrics.observe_pj_per_beat (Obs.Sink.metrics s)
        (pj /. float_of_int beats)

(* Pooled session records.  The [Pool.kind] witnesses live at module
   level so every call site shares them. *)
type trace_session = { ts_system : System.t; ts_master : Soc.Trace_master.t }

let trace_kind : trace_session Pool.kind = Pool.kind ()
let system_kind : System.t Pool.kind = Pool.kind ()

(* ------------------------------------------------------------------ *)
(* Compiled replay (DESIGN.md section 14)                              *)

let plan_kind : Compile.Plan.t Pool.kind = Pool.kind ()

(* One interpreted resolution run with the energy model's integer taps
   attached; everything the evaluator needs — transition words, lump
   events, the table-independent scalar results — lands in the plan.
   The capture table is irrelevant: the taps never see a float. *)
let compile_trace ?(level = Level.L1) ?(mode = `Pipelined) ?max_cycles ?init
    ?pool trace =
  if level = Level.Rtl then
    invalid_arg "Core.Runner.compile_trace: gate-level plans are not supported";
  if level = Level.L3 then
    invalid_arg
      "Core.Runner.compile_trace: bridged layer-3 replay is interpreted";
  let build () =
    let system = System.create ~level ~estimate:true () in
    let finish =
      match System.bus system with
      | System.L1_bus b ->
        let e = Option.get (Tlm1.Bus.energy b) in
        let r = Compile.Plan.l1_recorder () in
        Tlm1.Energy.set_observer e (Compile.Plan.l1_observe r);
        fun () ->
          Tlm1.Energy.clear_observer e;
          Compile.Plan.l1_finish r
      | System.L2_bus b ->
        let e = Option.get (Tlm2.Bus.energy b) in
        let r = Compile.Plan.l2_recorder () in
        Tlm2.Energy.set_observer e (Compile.Plan.l2_observe r);
        fun () ->
          Tlm2.Energy.clear_observer e;
          Compile.Plan.l2_finish r
      | System.Rtl_bus _ -> assert false
    in
    (match init with Some f -> f system | None -> ());
    let kernel = System.kernel system in
    let master =
      Soc.Trace_master.create ~kernel ~port:(System.port system) ~mode trace
    in
    let cycles = Soc.Trace_master.run master ~kernel ?max_cycles () in
    let body = finish () in
    Compile.Plan.make
      ~meta:
        {
          Compile.Plan.level =
            (match level with
            | Level.L1 -> `L1
            | Level.L2 -> `L2
            | Level.Rtl | Level.L3 -> assert false);
          cycles;
          txns = System.completed_txns system;
          beats = System.completed_beats system;
          errors = System.error_txns system;
          transitions = System.bus_transitions system;
          component_pj = System.component_energy_pj system;
        }
      ~body
  in
  match (pool, init) with
  | Some p, None ->
    (* The plan is independent of the characterization table and the
       layer-2 parameters (pure integers), so the key is only what
       shapes the resolution run.  [init] closures cannot be
       fingerprinted — runs with one compile fresh. *)
    let key =
      Printf.sprintf "plan:%s:%s:%s" (Level.to_string level)
        (match mode with `Serial -> "serial" | `Pipelined -> "pipelined")
        (Pool.fingerprint (max_cycles, trace))
    in
    Pool.memo p plan_kind ~tag:"trace" ~key build
  | _ -> build ()

let replay_compiled ?(estimate = true) ?(record_profile = false) ?table
    ?l2_params plan =
  let t0 = Unix.gettimeofday () in
  let o =
    if estimate then
      let table = Option.value table ~default:Power.Characterization.default in
      Some (Compile.Eval.eval ~record_profile ?l2_params ~table plan)
    else None
  in
  let m = Compile.Plan.meta plan in
  {
    level = (match m.Compile.Plan.level with `L1 -> Level.L1 | `L2 -> Level.L2);
    cycles = m.Compile.Plan.cycles;
    txns = m.Compile.Plan.txns;
    beats = m.Compile.Plan.beats;
    errors = m.Compile.Plan.errors;
    bus_pj = (match o with Some o -> o.Compile.Eval.bus_pj | None -> 0.0);
    component_pj = m.Compile.Plan.component_pj;
    transitions = (if estimate then m.Compile.Plan.transitions else 0);
    profile = (match o with Some o -> o.Compile.Eval.profile | None -> None);
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let replay_multi ?(record_profile = false) ~points plan =
  let t0 = Unix.gettimeofday () in
  let outs = Compile.Eval.eval_multi ~record_profile plan ~points in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let m = Compile.Plan.meta plan in
  List.map
    (fun (o : Compile.Eval.outcome) ->
      {
        level =
          (match m.Compile.Plan.level with `L1 -> Level.L1 | `L2 -> Level.L2);
        cycles = m.Compile.Plan.cycles;
        txns = m.Compile.Plan.txns;
        beats = m.Compile.Plan.beats;
        errors = m.Compile.Plan.errors;
        bus_pj = o.Compile.Eval.bus_pj;
        component_pj = m.Compile.Plan.component_pj;
        transitions = m.Compile.Plan.transitions;
        profile = o.Compile.Eval.profile;
        wall_seconds;
      })
    outs

(* Message-layer replay (DESIGN.md section 17.4): the trace's
   transactions pushed one by one through the Tlm3 bridge onto the
   system's layer-2 carrier bus.  Gaps are honoured as idle cycles;
   issue is inherently serial — the bridge blocks per message — which is
   the layer-3 timing abstraction (no pipelining, no read/write
   overlap).  Energy comes from the carrier's layer-2 model. *)
let replay_bridged system ?max_cycles trace =
  let kernel = System.kernel system in
  let bridge = Tlm3.Bridge.create ~kernel ~port:(System.port system) in
  let ids = Ec.Txn.Id_gen.create () in
  let t0 = Sim.Kernel.now kernel in
  let deadline = Option.map (fun m -> t0 + m) max_cycles in
  List.iter
    (fun item ->
      (match deadline with
      | Some d when Sim.Kernel.now kernel >= d ->
        failwith "Core.Runner: bridged replay exceeded max_cycles"
      | Some _ | None -> ());
      let item = Ec.Trace.instantiate ids item in
      Tlm3.Bridge.idle bridge ~cycles:item.Ec.Trace.gap;
      ignore (Tlm3.Bridge.transact bridge item.Ec.Trace.txn))
    trace;
  Sim.Kernel.now kernel - t0

let run_trace ?(level = Level.L1) ?(estimate = true) ?(record_profile = false)
    ?table ?rtl_params ?l2_params ?(mode = `Pipelined) ?max_cycles ?init ?sink
    ?pool ?(compiled = false) trace =
  if compiled && level <> Level.Rtl && level <> Level.L3 && sink = None then
    (* Compiled route: resolve (or fetch) the plan, then evaluate the
       requested parameter point over it.  Gate-level runs and runs with
       a sink fall back to interpretation — the plan carries no event
       stream, and Diesel has no integer tap. *)
    let plan = compile_trace ~level ~mode ?max_cycles ?init ?pool trace in
    replay_compiled ~estimate ~record_profile ?table ?l2_params plan
  else if level = Level.L3 then begin
    (* Bridged replay needs no kernel-registered master, so a pooled L3
       run reuses a bare carrier system and rebuilds the (stateless
       beyond its counters) bridge per run. *)
    let execute system =
      (match init with Some f -> f system | None -> ());
      let t0 = Unix.gettimeofday () in
      let cycles = replay_bridged system ?max_cycles trace in
      let wall_seconds = Unix.gettimeofday () -. t0 in
      record_run_energy sink system ~cycles;
      collect system ~cycles ~wall_seconds
    in
    match pool with
    | Some p when sink = None ->
      let key =
        Printf.sprintf "trace:%s:%b:%b:%s" (Level.to_string level) estimate
          record_profile
          (Pool.fingerprint (table, rtl_params, l2_params))
      in
      Pool.with_session p system_kind ~key
        ~build:(fun () ->
          System.create ~level ~estimate ~record_profile ?table ?rtl_params
            ?l2_params ())
        ~reset:System.reset execute
    | Some _ | None ->
      let system =
        System.create ~level ~estimate ~record_profile ?table ?rtl_params
          ?l2_params ?sink ()
      in
      execute system
  end
  else
  let execute system master =
    (match init with Some f -> f system | None -> ());
    let kernel = System.kernel system in
    let t0 = Unix.gettimeofday () in
    let cycles = Soc.Trace_master.run master ~kernel ?max_cycles () in
    let wall_seconds = Unix.gettimeofday () -. t0 in
    record_run_energy sink system ~cycles;
    collect system ~cycles ~wall_seconds
  in
  match pool with
  | Some p when sink = None ->
    (* Everything reset does not undo goes into the key; issue mode and
       the trace itself are re-armed per checkout. *)
    let key =
      Printf.sprintf "trace:%s:%b:%b:%s" (Level.to_string level) estimate
        record_profile
        (Pool.fingerprint (table, rtl_params, l2_params))
    in
    Pool.with_session p trace_kind ~key
      ~build:(fun () ->
        let system =
          System.create ~level ~estimate ~record_profile ?table ?rtl_params
            ?l2_params ()
        in
        let kernel = System.kernel system in
        let master =
          Soc.Trace_master.create ~kernel ~port:(System.port system) ~mode
            trace
        in
        { ts_system = system; ts_master = master })
      ~reset:(fun s ->
        System.reset s.ts_system;
        Soc.Trace_master.reset ~mode s.ts_master trace)
      (fun s -> execute s.ts_system s.ts_master)
  | Some _ | None ->
    (* Sessions with a sink are never pooled: the sink is wired into the
       bus at creation and its event stream spans the session. *)
    let system =
      System.create ~level ~estimate ~record_profile ?table ?rtl_params
        ?l2_params ?sink ()
    in
    (match init with Some f -> f system | None -> ());
    let kernel = System.kernel system in
    let master =
      Soc.Trace_master.create ~kernel ~port:(System.port system) ~mode ?sink
        trace
    in
    let t0 = Unix.gettimeofday () in
    let cycles = Soc.Trace_master.run master ~kernel ?max_cycles () in
    let wall_seconds = Unix.gettimeofday () -. t0 in
    record_run_energy sink system ~cycles;
    collect system ~cycles ~wall_seconds

let run_levels ?estimate ?table ?mode ?init ?domains ?pool trace =
  Parallel.map ?domains
    (fun level -> run_trace ~level ?estimate ?table ?mode ?init ?pool trace)
    Level.all

(* Deterministic content for memories read by replayed traces, so the
   read-data bus carries realistic values instead of zeros. *)
let fill_memories system =
  let pattern i = (((i * 2654435761) lxor 0x0F0F_F0F0) + (i lsl 7)) land 0xFFFFFFFF in
  let fill memory bytes =
    for w = 0 to (bytes / 4) - 1 do
      let base = (Soc.Memory.cfg memory).Ec.Slave_cfg.base in
      Soc.Memory.poke32 memory ~addr:(base + (4 * w)) (pattern w)
    done
  in
  let p = System.platform system in
  fill (Soc.Platform.rom p) 4096;
  fill (Soc.Platform.ram p) 4096;
  fill (Soc.Platform.eeprom p) 4096;
  fill (Soc.Platform.flash p) 4096

type adaptive_run = {
  splice : Hier.Splice.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  switches : int;
  wall_seconds : float;
  final_system : System.t option;
}

let adaptive_txns_per_second r =
  if r.wall_seconds <= 0.0 then 0.0 else float_of_int r.txns /. r.wall_seconds

(* Architectural state handoff across a switch point: the previous
   system is quiescent (trace drained, no outstanding bursts), so the
   memories are the whole state the replayed traffic can observe.  The
   decoder map and wait-state parameters are configuration, rebuilt
   identically by System.create; peripheral-internal registers reset —
   see DESIGN.md section 10 for the rule. *)
let handoff_state ~prev ~next =
  let copy get =
    Soc.Memory.copy_contents
      ~src:(get (System.platform prev))
      ~dst:(get (System.platform next))
  in
  copy Soc.Platform.rom;
  copy Soc.Platform.ram;
  copy Soc.Platform.eeprom;
  copy Soc.Platform.flash

let run_adaptive ?estimate ?record_profile ?table ?rtl_params ?l2_params
    ?extra_slaves ?peripheral_clock ?(mode = `Pipelined) ?max_cycles ?init
    ?budget ?sink ?pool ~policy trace =
  (* Pooling covers the self-contained configurations only: a sink is
     wired in at creation, and extra slaves are caller-owned state the
     reset protocol cannot see. *)
  let pool =
    match (pool, sink, extra_slaves) with
    | Some p, None, None -> Some p
    | _ -> None
  in
  let key_of level =
    Printf.sprintf "adaptive:%s:%s" (Level.to_string level)
      (Pool.fingerprint
         ( estimate,
           record_profile,
           table,
           rtl_params,
           l2_params,
           peripheral_clock ))
  in
  let build level () =
    System.create ~level ?estimate ?record_profile ?table ?rtl_params
      ?l2_params ?extra_slaves ?peripheral_clock ?sink ()
  in
  let ops =
    {
      Hier.Engine.create =
        (fun level ->
          match pool with
          | None -> build level ()
          | Some p ->
            Pool.acquire p system_kind ~key:(key_of level)
              ~build:(build level) ~reset:System.reset);
      init = (fun system -> match init with Some f -> f system | None -> ());
      handoff = (fun ~prev ~next -> handoff_state ~prev ~next);
      run_segment =
        (fun system seg ->
          let kernel = System.kernel system in
          let cycles =
            if System.level system = Level.L3 then
              (* L3 window: message-layer replay through the Tlm3 bridge
                 onto this window's layer-2 carrier bus. *)
              replay_bridged system ?max_cycles seg
            else
              let master =
                Soc.Trace_master.create ~kernel ~port:(System.port system)
                  ~mode ?sink seg
              in
              Soc.Trace_master.run master ~kernel ?max_cycles ()
          in
          {
            Hier.Engine.cycles;
            txns = System.completed_txns system;
            beats = System.completed_beats system;
            errors = System.error_txns system;
            bus_pj = System.bus_energy_pj system;
            component_pj = System.component_energy_pj system;
            profile = System.profile system;
          });
    }
  in
  let retire =
    Option.map
      (fun p sys ->
        Pool.release p system_kind ~key:(key_of (System.level sys)) sys)
      pool
  in
  let t0 = Unix.gettimeofday () in
  let r = Hier.Engine.run ?budget ?sink ?retire ~ops ~policy trace in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let s = r.Hier.Engine.splice in
  {
    splice = s;
    cycles = s.Hier.Splice.total_cycles;
    txns = s.Hier.Splice.total_txns;
    beats = s.Hier.Splice.total_beats;
    errors = s.Hier.Splice.total_errors;
    bus_pj = s.Hier.Splice.total_bus_pj;
    component_pj = s.Hier.Splice.total_component_pj;
    switches = s.Hier.Splice.switches;
    wall_seconds;
    final_system = r.Hier.Engine.last_system;
  }

type program_run = {
  result : result;
  instructions : int;
  fault : Soc.Cpu.fault option;
  uart_output : string;
  system : System.t;
  cpu : Soc.Cpu.t;
  icache : Soc.Icache.t option;
}

type program_session = {
  ps_system : System.t;
  ps_cpu : Soc.Cpu.t;
  ps_icache : Soc.Icache.t option;
}

let program_kind : program_session Pool.kind = Pool.kind ()

let run_program ?(level = Level.L1) ?(estimate = true) ?(record_profile = false)
    ?table ?max_cycles ?icache_lines ?vcd ?sink ?pool program =
  let build () =
    let system = System.create ~level ~estimate ~record_profile ?table () in
    let kernel = System.kernel system in
    Soc.Platform.load_program (System.platform system) program;
    let platform = System.platform system in
    let bus_port = System.port system in
    let icache =
      Option.map
        (fun lines -> Soc.Icache.create ~kernel ~lines ~inner:bus_port ())
        icache_lines
    in
    let cpu_port =
      match icache with Some c -> Soc.Icache.port c | None -> bus_port
    in
    let cpu =
      Soc.Cpu.create ~kernel ~port:cpu_port ~pc:program.Soc.Asm.origin
        ~irq:(fun () -> Soc.Platform.irq_asserted platform)
        ()
    in
    { ps_system = system; ps_cpu = cpu; ps_icache = icache }
  in
  let execute s =
    let system = s.ps_system in
    let kernel = System.kernel system in
    let t0 = Unix.gettimeofday () in
    let cycles = Soc.Cpu.run_to_halt s.ps_cpu ~kernel ?max_cycles () in
    let wall_seconds = Unix.gettimeofday () -. t0 in
    record_run_energy sink system ~cycles;
    {
      result = collect system ~cycles ~wall_seconds;
      instructions = Soc.Cpu.instructions s.ps_cpu;
      fault = Soc.Cpu.fault s.ps_cpu;
      uart_output =
        Soc.Uart.transmitted (Soc.Platform.uart (System.platform system));
      system;
      cpu = s.ps_cpu;
      icache = s.ps_icache;
    }
  in
  match pool with
  | Some p when sink = None && vcd = None ->
    let key =
      Printf.sprintf "program:%s:%b:%b:%s" (Level.to_string level) estimate
        record_profile
        (Pool.fingerprint (table, icache_lines))
    in
    Pool.with_session p program_kind ~key ~build
      ~reset:(fun s ->
        System.reset s.ps_system;
        Option.iter Soc.Icache.reset s.ps_icache;
        Soc.Cpu.reset s.ps_cpu ~pc:program.Soc.Asm.origin;
        Soc.Platform.load_program (System.platform s.ps_system) program)
      execute
  | Some _ | None ->
    (* VCD recording and sinks hook the session at creation — such runs
       always build fresh. *)
    let system =
      System.create ~level ~estimate ~record_profile ?table ?sink ()
    in
    let kernel = System.kernel system in
    let vcd_dump =
      match (vcd, System.bus system) with
      | Some path, System.Rtl_bus bus ->
        Some (path, Rtl.Vcd.create ~kernel (Rtl.Bus.wires bus))
      | Some _, (System.L1_bus _ | System.L2_bus _) ->
        invalid_arg "Core.Runner.run_program: vcd needs the rtl level"
      | None, _ -> None
    in
    Soc.Platform.load_program (System.platform system) program;
    let platform = System.platform system in
    let bus_port = System.port system in
    let icache =
      Option.map
        (fun lines -> Soc.Icache.create ~kernel ~lines ~inner:bus_port ())
        icache_lines
    in
    let cpu_port =
      match icache with Some c -> Soc.Icache.port c | None -> bus_port
    in
    let cpu =
      Soc.Cpu.create ~kernel ~port:cpu_port ~pc:program.Soc.Asm.origin
        ~irq:(fun () -> Soc.Platform.irq_asserted platform)
        ()
    in
    let t0 = Unix.gettimeofday () in
    let cycles = Soc.Cpu.run_to_halt cpu ~kernel ?max_cycles () in
    let wall_seconds = Unix.gettimeofday () -. t0 in
    (match vcd_dump with
    | Some (path, recorder) -> Rtl.Vcd.write recorder path
    | None -> ());
    record_run_energy sink system ~cycles;
    {
      result = collect system ~cycles ~wall_seconds;
      instructions = Soc.Cpu.instructions cpu;
      fault = Soc.Cpu.fault cpu;
      uart_output =
        Soc.Uart.transmitted (Soc.Platform.uart (System.platform system));
      system;
      cpu;
      icache;
    }

let capture_with_icache ?icache_lines ?max_cycles program =
  let system = System.create ~level:Level.Rtl () in
  let kernel = System.kernel system in
  fill_memories system;
  Soc.Platform.load_program (System.platform system) program;
  let monitor = Soc.Monitor.create ~kernel (System.port system) in
  (* The monitor sits between the cache and the bus, so the captured
     trace is the post-cache bus traffic — what an adaptive replay of
     this cache configuration must reproduce. *)
  let icache =
    Option.map
      (fun lines ->
        Soc.Icache.create ~kernel ~lines ~inner:(Soc.Monitor.port monitor) ())
      icache_lines
  in
  let cpu_port =
    match icache with Some c -> Soc.Icache.port c | None -> Soc.Monitor.port monitor
  in
  let cpu =
    Soc.Cpu.create ~kernel ~port:cpu_port ~pc:program.Soc.Asm.origin ()
  in
  ignore (Soc.Cpu.run_to_halt cpu ~kernel ?max_cycles ());
  (Soc.Monitor.trace monitor, icache)

let capture_cpu_trace ?icache_lines ?max_cycles program =
  fst (capture_with_icache ?icache_lines ?max_cycles program)

let characterize ?rtl_params ?(training = Workloads.characterization_trace) () =
  let system = System.create ~level:Level.Rtl ?rtl_params () in
  fill_memories system;
  let kernel = System.kernel system in
  let master =
    Soc.Trace_master.create ~kernel ~port:(System.port system) training
  in
  ignore (Soc.Trace_master.run master ~kernel ());
  match System.bus system with
  | System.Rtl_bus bus ->
    Rtl.Diesel.characterize ~name:"derived(gate-level)" (Rtl.Bus.diesel bus)
  | System.L1_bus _ | System.L2_bus _ -> assert false

(* ------------------------------------------------------------------ *)
(* Live adaptive sessions                                              *)

let scale_l2_params f (p : Tlm2.Energy.params) =
  {
    Tlm2.Energy.boundary_addr_toggles = p.boundary_addr_toggles *. f;
    boundary_data_toggles = p.boundary_data_toggles *. f;
    attr_toggles = p.attr_toggles *. f;
    strobe_pulses_per_phase = p.strobe_pulses_per_phase *. f;
    strobe_pulses_per_beat = p.strobe_pulses_per_beat *. f;
  }

type live = {
  kernel : Sim.Kernel.t;
  port : Ec.Port.t;
  platform : Soc.Platform.t;
  session : Hier.Engine.Live.t;
  finish : unit -> adaptive_run;
}

(* The durable hardware of a live session: one kernel, the platform, and
   a bus front-end per level — everything a pooled live run can reuse
   after a reset.  Both front-ends are built eagerly: an idle bus
   process steps to no effect and adds no energy, so the eager layer-2
   front-end is behaviour- and measurement-neutral next to the lazy one
   a one-shot session builds on demand. *)
type live_materials = {
  m_kernel : Sim.Kernel.t;
  m_platform : Soc.Platform.t;
  m_e1 : Tlm1.Energy.t;
  m_b1 : Tlm1.Bus.t;
  m_e2 : Tlm2.Energy.t;
  m_b2 : Tlm2.Bus.t;
  m_table : Power.Characterization.t;
  m_base_params : Tlm2.Energy.params;
  m_extra_reset : unit -> unit;
}

let live_materials ?(table = Power.Characterization.default) ?l2_params ?sink
    ?(extra_slaves = []) ?(peripheral_clock = `Gated)
    ?(extra_reset = fun () -> ()) () =
  let kernel = Sim.Kernel.create () in
  let platform =
    Soc.Platform.create ~kernel ~extra_slaves ~peripheral_clock ()
  in
  let decoder = Soc.Platform.decoder platform in
  let e1 = Tlm1.Energy.create table in
  let b1 = Tlm1.Bus.create ~kernel ~decoder ~energy:e1 ?sink () in
  let base_params =
    Option.value l2_params ~default:Tlm2.Energy.default_params
  in
  let e2 = Tlm2.Energy.create ~params:base_params table in
  let b2 = Tlm2.Bus.create ~kernel ~decoder ~energy:e2 ?sink () in
  {
    m_kernel = kernel;
    m_platform = platform;
    m_e1 = e1;
    m_b1 = b1;
    m_e2 = e2;
    m_b2 = b2;
    m_table = table;
    m_base_params = base_params;
    m_extra_reset = extra_reset;
  }

let reset_live_materials m =
  Sim.Kernel.reset m.m_kernel;
  Soc.Platform.reset m.m_platform;
  (* The bus resets also rewind their energy models; the layer-2 model
     returns to its creation parameters, undoing in-run calibration. *)
  Tlm1.Bus.reset m.m_b1;
  Tlm2.Bus.reset m.m_b2;
  m.m_extra_reset ()

let live_adaptive ?(table = Power.Characterization.default) ?l2_params ?budget
    ?sink ?(extra_slaves = []) ?(peripheral_clock = `Gated) ?(calibrate = true)
    ?materials ~policy () =
  let kernel, platform, e1, b1, table, base_params =
    match materials with
    | Some m ->
      (m.m_kernel, m.m_platform, m.m_e1, m.m_b1, m.m_table, m.m_base_params)
    | None ->
      let kernel = Sim.Kernel.create () in
      let platform =
        Soc.Platform.create ~kernel ~extra_slaves ~peripheral_clock ()
      in
      let decoder = Soc.Platform.decoder platform in
      let e1 = Tlm1.Energy.create table in
      let b1 = Tlm1.Bus.create ~kernel ~decoder ~energy:e1 ?sink () in
      let base_params =
        Option.value l2_params ~default:Tlm2.Energy.default_params
      in
      (kernel, platform, e1, b1, table, base_params)
  in
  (* The layer-2 calibration scale: re-derived from every refined window
     (see [on_close] below), read lazily when the layer-2 front-end is
     first needed so a pure-L1 session never builds it.  With materials
     the front-end already exists; forcing applies the current scale to
     it, exactly as the on-demand construction would. *)
  let l2_scale = ref 1.0 in
  let have_scale = ref false in
  let l2 =
    match materials with
    | Some m ->
      lazy
        (Tlm2.Energy.set_params m.m_e2
           (scale_l2_params !l2_scale m.m_base_params);
         (m.m_b2, m.m_e2))
    | None ->
      lazy
        (let e2 =
           Tlm2.Energy.create ~params:(scale_l2_params !l2_scale base_params)
             table
         in
         let b2 =
           Tlm2.Bus.create ~kernel
             ~decoder:(Soc.Platform.decoder platform)
             ~energy:e2 ?sink ()
         in
         (b2, e2))
  in
  let measure (level : Hier.Level.t) =
    let component_pj = Soc.Platform.components_energy_pj platform in
    match level with
    | Hier.Level.L1 ->
      {
        Hier.Engine.cycles = Sim.Kernel.now kernel;
        txns = Tlm1.Bus.completed_txns b1;
        beats = Tlm1.Bus.completed_beats b1;
        errors = Tlm1.Bus.error_txns b1;
        bus_pj = Tlm1.Energy.total_pj e1;
        component_pj;
        profile = None;
      }
    | Hier.Level.L2 ->
      let b2, e2 = Lazy.force l2 in
      {
        Hier.Engine.cycles = Sim.Kernel.now kernel;
        txns = Tlm2.Bus.completed_txns b2;
        beats = Tlm2.Bus.completed_beats b2;
        errors = Tlm2.Bus.error_txns b2;
        bus_pj = Tlm2.Energy.total_pj e2;
        component_pj;
        profile = None;
      }
    | Hier.Level.Rtl | Hier.Level.L3 ->
      invalid_arg "Core.Runner.live_adaptive: live sessions switch L1/L2 only"
  in
  (* Hierarchical in-run calibration (DESIGN.md section 12): during
     refined windows every completed transaction is also fed to two
     scratch layer-2 models — the base parameters and all-zero
     parameters.  At each refined-window close the window satisfies
     E_L1 = X + f x A (X the traffic-driven part, A the
     assumption-driven part), so f rescales the lump constants to what
     layer 1 actually measured on this workload. *)
  let zero_params = scale_l2_params 0.0 base_params in
  let cal_full = Tlm2.Energy.create ~params:base_params table in
  let cal_zero = Tlm2.Energy.create ~params:zero_params table in
  let cal_full_pj = ref 0.0 in
  let cal_zero_pj = ref 0.0 in
  let win_cal_full = ref 0.0 in
  let win_cal_zero = ref 0.0 in
  let pending_cal = ref None in
  let feed_cal () =
    match !pending_cal with
    | None -> ()
    | Some txn ->
      pending_cal := None;
      cal_full_pj :=
        !cal_full_pj
        +. Tlm2.Energy.address_phase_pj cal_full txn
        +. Tlm2.Energy.data_phase_pj cal_full txn;
      cal_zero_pj :=
        !cal_zero_pj
        +. Tlm2.Energy.address_phase_pj cal_zero txn
        +. Tlm2.Energy.data_phase_pj cal_zero txn
  in
  let on_close (seg : Hier.Splice.seg) =
    if calibrate && seg.Hier.Splice.level = Hier.Level.L1 then begin
      let x = !cal_zero_pj -. !win_cal_zero in
      let a = !cal_full_pj -. !win_cal_full -. x in
      win_cal_full := !cal_full_pj;
      win_cal_zero := !cal_zero_pj;
      if a > 0.0 then begin
        let f_window = Float.max 0.0 ((seg.Hier.Splice.bus_pj -. x) /. a) in
        (* Latest-window-dominant blend: track the workload's phases
           instead of averaging them away. *)
        l2_scale :=
          (if !have_scale then (0.1 *. !l2_scale) +. (0.9 *. f_window)
           else f_window);
        have_scale := true;
        if Lazy.is_val l2 then
          Tlm2.Energy.set_params (snd (Lazy.force l2))
            (scale_l2_params !l2_scale base_params)
      end
    end
  in
  let session =
    Hier.Engine.Live.create ?budget ?sink
      ~now:(fun () -> Sim.Kernel.now kernel)
      ~on_close ~policy ~measure ()
  in
  let port_of (level : Hier.Level.t) =
    match level with
    | Hier.Level.L1 -> Tlm1.Bus.port b1
    | Hier.Level.L2 -> Tlm2.Bus.port (fst (Lazy.force l2))
    | Hier.Level.Rtl | Hier.Level.L3 -> assert false
  in
  let active = ref (Tlm1.Bus.port b1) in
  let routed = ref None in
  (* Clock-gate the inactive front-end: both buses share the kernel, and
     the one not carrying the window's traffic is quiescent, so skipping
     its idle ticks is behaviour- and measurement-neutral. *)
  let route level =
    if !routed <> Some level then begin
      (match (level : Hier.Level.t) with
      | Hier.Level.L1 ->
        Sim.Kernel.set_gated kernel ~name:"tlm2-bus" ~gated:true;
        Sim.Kernel.set_gated kernel ~name:"tlm1-bus" ~gated:false
      | Hier.Level.L2 ->
        Sim.Kernel.set_gated kernel ~name:"tlm1-bus" ~gated:true;
        Sim.Kernel.set_gated kernel ~name:"tlm2-bus" ~gated:false
      | Hier.Level.Rtl | Hier.Level.L3 -> ());
      routed := Some level;
      active := port_of level
    end
  in
  let last_seen = ref (-1) in
  let port =
    {
      Ec.Port.try_submit =
        (fun txn ->
          (* try_submit repeats while the bus is busy; route and account
             each transaction once, on first sight. *)
          if txn.Ec.Txn.id <> !last_seen then begin
            last_seen := txn.Ec.Txn.id;
            feed_cal ();
            let level =
              Hier.Engine.Live.next_level session ~addr:txn.Ec.Txn.addr
            in
            route level;
            if calibrate && level = Hier.Level.L1 then pending_cal := Some txn
          end;
          !active.Ec.Port.try_submit txn);
      poll = (fun id -> !active.Ec.Port.poll id);
      retire = (fun id -> !active.Ec.Port.retire id);
    }
  in
  let t0 = Unix.gettimeofday () in
  let finish () =
    feed_cal ();
    let s = Hier.Engine.Live.finish session in
    let wall_seconds = Unix.gettimeofday () -. t0 in
    {
      splice = s;
      cycles = s.Hier.Splice.total_cycles;
      txns = s.Hier.Splice.total_txns;
      beats = s.Hier.Splice.total_beats;
      errors = s.Hier.Splice.total_errors;
      bus_pj = s.Hier.Splice.total_bus_pj;
      component_pj = s.Hier.Splice.total_component_pj;
      switches = s.Hier.Splice.switches;
      wall_seconds;
      final_system = None;
    }
  in
  { kernel; port; platform; session; finish }
