type topology = Single | Bridged

let topology_to_string = function Single -> "single" | Bridged -> "bridged"

let topology_of_string = function
  | "single" -> Some Single
  | "bridged" -> Some Bridged
  | _ -> None

type kind = Cpu | Dma | Crypto

let kind_to_string = function Cpu -> "cpu" | Dma -> "dma" | Crypto -> "crypto"

let kind_of_string = function
  | "cpu" -> Some Cpu
  | "dma" -> Some Dma
  | "crypto" -> Some Crypto
  | _ -> None

(* Well outside the Figure-1 map (which tops out below 16 MiB). *)
let far_base = 0x400_0000
let far_size = 0x1_0000
let far_window = (far_base, far_base + far_size)

type master_row = {
  kind : kind;
  txns : int;
  beats : int;
  errors : int;
  grants : int;
  energy_pj : float;
}

type result = {
  level : Level.t;
  policy : Ec.Arbiter.policy;
  topology : topology;
  cycles : int;
  fabric_pj : float;
  bus_pj : float;
  bridge_pj : float;
  crossings : int;
  rows : master_row list;
  wall_seconds : float;
}

let tap_of_meter = function
  | None -> None
  | Some m ->
    Some
      {
        Ec.Fabric.cycles = (fun () -> Power.Meter.cycles m);
        last_cycle_pj = (fun () -> Power.Meter.last_cycle_pj m);
      }

(* The far RAM: a plain word store with sub-word lane handling, enough to
   give bridged traffic a real slave without a second platform. *)
let far_slave () =
  let store = Array.make (far_size / 4) 0 in
  let word addr = (addr - far_base) lsr 2 in
  let read ~addr ~width =
    let w = store.(word addr) in
    match width with
    | Ec.Txn.W32 -> w
    | Ec.Txn.W16 -> (w lsr (8 * (addr land 2))) land 0xFFFF
    | Ec.Txn.W8 -> (w lsr (8 * (addr land 3))) land 0xFF
  in
  let write ~addr ~width ~value =
    let i = word addr in
    match width with
    | Ec.Txn.W32 -> store.(i) <- value land 0xFFFF_FFFF
    | Ec.Txn.W16 ->
      let sh = 8 * (addr land 2) in
      let mask = 0xFFFF lsl sh in
      store.(i) <- store.(i) land lnot mask lor ((value land 0xFFFF) lsl sh)
    | Ec.Txn.W8 ->
      let sh = 8 * (addr land 3) in
      let mask = 0xFF lsl sh in
      store.(i) <- store.(i) land lnot mask lor ((value land 0xFF) lsl sh)
  in
  Ec.Slave.make
    ~cfg:(Ec.Slave_cfg.make ~name:"far-ram" ~base:far_base ~size:far_size ())
    ~read ~write

(* A second bus of the same level on the same clock, decoding only the
   far RAM.  Returns its port, a meter tap, and busy/energy probes. *)
let build_far ~kernel ~level ~estimate ~table =
  let decoder = Ec.Decoder.create [ far_slave () ] in
  match level with
  | Level.Rtl ->
    let b = Rtl.Bus.create ~kernel ~decoder ~record_profile:false () in
    let meter = Rtl.Diesel.meter (Rtl.Bus.diesel b) in
    ( Rtl.Bus.port b,
      tap_of_meter (Some meter),
      (fun () -> Rtl.Bus.busy b),
      fun () -> Power.Meter.total_pj meter )
  | Level.L1 ->
    let energy =
      if estimate then Some (Tlm1.Energy.create ~record_profile:false table)
      else None
    in
    let b = Tlm1.Bus.create ~kernel ~decoder ?energy () in
    ( Tlm1.Bus.port b,
      tap_of_meter (Option.map Tlm1.Energy.meter energy),
      (fun () -> Tlm1.Bus.busy b),
      fun () ->
        match energy with Some e -> Tlm1.Energy.total_pj e | None -> 0.0 )
  | Level.L2 ->
    let energy =
      if estimate then Some (Tlm2.Energy.create ~record_profile:false table)
      else None
    in
    let b = Tlm2.Bus.create ~kernel ~decoder ?energy () in
    ( Tlm2.Bus.port b,
      tap_of_meter (Option.map Tlm2.Energy.meter energy),
      (fun () -> Tlm2.Bus.busy b),
      fun () ->
        match energy with Some e -> Tlm2.Energy.total_pj e | None -> 0.0 )
  | Level.L3 -> assert false

let run ?(level = Level.L1) ?(policy = Ec.Arbiter.Round_robin)
    ?(topology = Single) ?mode ?(estimate = true) ?(max_cycles = 4_000_000)
    ?(bridge_latency = 2) ?(bridge_pj_per_beat = 1.5)
    ?(table = Power.Characterization.default) masters =
  if masters = [] then invalid_arg "Core.Contention.run: no masters";
  if level = Level.L3 then
    invalid_arg
      "Core.Contention.run: fabric masters drive timed buses (rtl/l1/l2)";
  let system = System.create ~level ~estimate ~table () in
  let kernel = System.kernel system in
  let far, far_busy, far_pj =
    match topology with
    | Single -> (None, (fun () -> false), fun () -> 0.0)
    | Bridged ->
      let far_port, far_tap, busy, pj =
        build_far ~kernel ~level ~estimate ~table
      in
      ( Some
          {
            Ec.Fabric.far_port;
            far_tap;
            window = far_window;
            latency = bridge_latency;
            crossing_pj_per_beat = bridge_pj_per_beat;
          },
        busy,
        pj )
  in
  let n = List.length masters in
  let fabric =
    Ec.Fabric.create ~masters:n ~policy ~bus:(System.port system)
      ?tap:(tap_of_meter (System.meter system))
      ?far ()
  in
  (* Registration order matters: the buses' own edge processes are
     already in place (System/build_far), so the fabric's falling-edge
     sampler sees each meter cycle after the energy models close it, and
     matured bridge crossings are forwarded before the masters (created
     below) submit new work. *)
  Sim.Kernel.on_rising kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_rising fabric);
  Sim.Kernel.on_falling kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_falling fabric);
  let tms =
    List.mapi
      (fun m (k, trace) ->
        Soc.Trace_master.create ~kernel
          ~port:(Ec.Fabric.port fabric m)
          ~name:(Printf.sprintf "master%d-%s" m (kind_to_string k))
          ?mode trace)
      masters
  in
  let t0 = Unix.gettimeofday () in
  let cycles =
    Sim.Kernel.run_until kernel ~max_cycles (fun () ->
        List.for_all Soc.Trace_master.finished tms
        && (not (Ec.Fabric.busy fabric))
        && (not (System.bus_busy system))
        && not (far_busy ()))
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let rows =
    List.mapi
      (fun m (k, _) ->
        {
          kind = k;
          txns = Ec.Fabric.master_txns fabric m;
          beats = Ec.Fabric.master_beats fabric m;
          errors = Ec.Fabric.master_errors fabric m;
          grants = Ec.Fabric.master_grants fabric m;
          energy_pj = Ec.Fabric.master_pj fabric m;
        })
      masters
  in
  {
    level;
    policy;
    topology;
    cycles;
    fabric_pj = Ec.Fabric.total_pj fabric;
    bus_pj = System.bus_energy_pj system +. far_pj ();
    bridge_pj = Ec.Fabric.bridge_pj fabric;
    crossings = Ec.Fabric.crossings fabric;
    rows;
    wall_seconds;
  }

let default_masters ?(n = 512) topology =
  let src =
    match topology with Bridged -> far_base | Single -> Soc.Platform.Map.flash_base
  in
  [
    (Cpu, Workloads.table3_trace ~n);
    (Dma, Workloads.dma_trace ~words:n ~src ());
    (Crypto, Workloads.crypto_trace ~blocks:(max 1 (n / 8)) ());
  ]

let study ?(n = 512) ?(levels = Level.timed)
    ?(policies =
      [
        Ec.Arbiter.Fixed_priority;
        Ec.Arbiter.Round_robin;
        Ec.Arbiter.Weighted [| 4; 2; 1 |];
      ]) () =
  List.concat_map
    (fun level ->
      List.concat_map
        (fun policy ->
          List.map
            (fun topology ->
              run ~level ~policy ~topology (default_masters ~n topology))
            [ Single; Bridged ])
        policies)
    levels

let render_study results =
  let share row r =
    if r.fabric_pj > 0.0 then
      Printf.sprintf "%s (%.0f%%)" (Report.pj row.energy_pj)
        (100.0 *. row.energy_pj /. r.fabric_pj)
    else Report.pj row.energy_pj
  in
  let body =
    List.map
      (fun r ->
        let cell k =
          match List.find_opt (fun row -> row.kind = k) r.rows with
          | Some row -> share row r
          | None -> "-"
        in
        [
          Level.to_string r.level;
          Ec.Arbiter.policy_to_string r.policy;
          topology_to_string r.topology;
          string_of_int r.cycles;
          Report.pj r.fabric_pj;
          Report.pj r.bridge_pj;
          cell Cpu;
          cell Dma;
          cell Crypto;
        ])
      results
  in
  "Contention study: per-master attributed bus energy\n"
  ^ Report.table
      ~header:
        [
          "Level"; "Arbiter"; "Topology"; "Cycles"; "Fabric"; "Bridge";
          "CPU"; "DMA"; "Crypto";
        ]
      body
