type topology = Single | Bridged

let topology_to_string = function Single -> "single" | Bridged -> "bridged"

let topology_of_string = function
  | "single" -> Some Single
  | "bridged" -> Some Bridged
  | _ -> None

type kind = Cpu | Dma | Crypto

let kind_to_string = function Cpu -> "cpu" | Dma -> "dma" | Crypto -> "crypto"

let kind_of_string = function
  | "cpu" -> Some Cpu
  | "dma" -> Some Dma
  | "crypto" -> Some Crypto
  | _ -> None

(* Well outside the Figure-1 map (which tops out below 16 MiB). *)
let far_base = 0x400_0000
let far_size = 0x1_0000
let far_window = (far_base, far_base + far_size)

type master_row = {
  kind : kind;
  txns : int;
  beats : int;
  errors : int;
  grants : int;
  energy_pj : float;
}

type result = {
  level : Level.t;
  policy : Ec.Arbiter.policy;
  topology : topology;
  cycles : int;
  fabric_pj : float;
  bus_pj : float;
  bridge_pj : float;
  crossings : int;
  rows : master_row list;
  wall_seconds : float;
}

let tap_of_meter = function
  | None -> None
  | Some m ->
    Some
      {
        Ec.Fabric.cycles = (fun () -> Power.Meter.cycles m);
        last_cycle_pj = (fun () -> Power.Meter.last_cycle_pj m);
      }

(* The far RAM: a plain word store with sub-word lane handling, enough to
   give bridged traffic a real slave without a second platform.  The
   store-reset closure is what lets a pooled fabric session wipe the far
   memory back to creation state. *)
let far_slave () =
  let store = Array.make (far_size / 4) 0 in
  let word addr = (addr - far_base) lsr 2 in
  let read ~addr ~width =
    let w = store.(word addr) in
    match width with
    | Ec.Txn.W32 -> w
    | Ec.Txn.W16 -> (w lsr (8 * (addr land 2))) land 0xFFFF
    | Ec.Txn.W8 -> (w lsr (8 * (addr land 3))) land 0xFF
  in
  let write ~addr ~width ~value =
    let i = word addr in
    match width with
    | Ec.Txn.W32 -> store.(i) <- value land 0xFFFF_FFFF
    | Ec.Txn.W16 ->
      let sh = 8 * (addr land 2) in
      let mask = 0xFFFF lsl sh in
      store.(i) <- store.(i) land lnot mask lor ((value land 0xFFFF) lsl sh)
    | Ec.Txn.W8 ->
      let sh = 8 * (addr land 3) in
      let mask = 0xFF lsl sh in
      store.(i) <- store.(i) land lnot mask lor ((value land 0xFF) lsl sh)
  in
  ( Ec.Slave.make
      ~cfg:(Ec.Slave_cfg.make ~name:"far-ram" ~base:far_base ~size:far_size ())
      ~read ~write,
    fun () -> Array.fill store 0 (Array.length store) 0 )

(* The far side of a bridged topology: a second bus of the same level on
   the same clock, decoding only the far RAM. *)
type far_side = {
  far_attach : Ec.Fabric.far;
  far_bus : System.bus;  (* for plan recorders and counters *)
  far_busy : unit -> bool;
  far_pj : unit -> float;
  far_reset : unit -> unit;  (* bus, energy model and RAM store *)
}

let build_far ~kernel ~level ~estimate ~table ~bridge_latency
    ~bridge_pj_per_beat =
  let slave, reset_store = far_slave () in
  let decoder = Ec.Decoder.create [ slave ] in
  let far_port, far_tap, far_bus, far_busy, far_pj, reset_bus =
    match level with
    | Level.Rtl ->
      let b = Rtl.Bus.create ~kernel ~decoder ~record_profile:false () in
      let meter = Rtl.Diesel.meter (Rtl.Bus.diesel b) in
      ( Rtl.Bus.port b,
        tap_of_meter (Some meter),
        System.Rtl_bus b,
        (fun () -> Rtl.Bus.busy b),
        (fun () -> Power.Meter.total_pj meter),
        fun () -> Rtl.Bus.reset b )
    | Level.L1 ->
      let energy =
        if estimate then Some (Tlm1.Energy.create ~record_profile:false table)
        else None
      in
      let b = Tlm1.Bus.create ~kernel ~decoder ?energy () in
      ( Tlm1.Bus.port b,
        tap_of_meter (Option.map Tlm1.Energy.meter energy),
        System.L1_bus b,
        (fun () -> Tlm1.Bus.busy b),
        (fun () ->
          match energy with Some e -> Tlm1.Energy.total_pj e | None -> 0.0),
        fun () -> Tlm1.Bus.reset b )
    | Level.L2 ->
      let energy =
        if estimate then Some (Tlm2.Energy.create ~record_profile:false table)
        else None
      in
      let b = Tlm2.Bus.create ~kernel ~decoder ?energy () in
      ( Tlm2.Bus.port b,
        tap_of_meter (Option.map Tlm2.Energy.meter energy),
        System.L2_bus b,
        (fun () -> Tlm2.Bus.busy b),
        (fun () ->
          match energy with Some e -> Tlm2.Energy.total_pj e | None -> 0.0),
        fun () -> Tlm2.Bus.reset b )
    | Level.L3 -> assert false
  in
  {
    far_attach =
      {
        Ec.Fabric.far_port;
        far_tap;
        window = far_window;
        latency = bridge_latency;
        crossing_pj_per_beat = bridge_pj_per_beat;
      };
    far_bus;
    far_busy;
    far_pj;
    far_reset =
      (fun () ->
        reset_bus ();
        reset_store ());
  }

(* A fabric session: the durable hardware of one contention
   configuration — near system, optional far side, fabric, and one trace
   master per port.  Pooled checkouts reset all of it and re-arm the
   masters with the caller's traces (DESIGN.md section 18). *)
type session = {
  s_system : System.t;
  s_fabric : Ec.Fabric.t;
  s_masters : Soc.Trace_master.t array;
  s_far : far_side option;
}

let session_kind : session Pool.kind = Pool.kind ()
let fabric_plan_kind : Compile.Plan.fabric Pool.kind = Pool.kind ()

let validate ~level masters =
  if masters = [] then invalid_arg "Core.Contention.run: no masters";
  if level = Level.L3 then
    invalid_arg
      "Core.Contention.run: fabric masters drive timed buses (rtl/l1/l2)"

let build_session ~level ~policy ~topology ?mode ~estimate ~table
    ~bridge_latency ~bridge_pj_per_beat masters =
  let system = System.create ~level ~estimate ~table () in
  let kernel = System.kernel system in
  let far =
    match topology with
    | Single -> None
    | Bridged ->
      Some
        (build_far ~kernel ~level ~estimate ~table ~bridge_latency
           ~bridge_pj_per_beat)
  in
  let n = List.length masters in
  let fabric =
    Ec.Fabric.create ~masters:n ~policy ~bus:(System.port system)
      ?tap:(tap_of_meter (System.meter system))
      ?far:(Option.map (fun f -> f.far_attach) far)
      ()
  in
  (* Registration order matters: the buses' own edge processes are
     already in place (System/build_far), so the fabric's falling-edge
     sampler sees each meter cycle after the energy models close it, and
     matured bridge crossings are forwarded before the masters (created
     below) submit new work. *)
  Sim.Kernel.on_rising kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_rising fabric);
  Sim.Kernel.on_falling kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_falling fabric);
  let tms =
    List.mapi
      (fun m (k, trace) ->
        Soc.Trace_master.create ~kernel
          ~port:(Ec.Fabric.port fabric m)
          ~name:(Printf.sprintf "master%d-%s" m (kind_to_string k))
          ?mode trace)
      masters
  in
  { s_system = system; s_fabric = fabric; s_masters = Array.of_list tms; s_far = far }

let reset_session ?mode s masters =
  System.reset s.s_system;
  (match s.s_far with Some f -> f.far_reset () | None -> ());
  Ec.Fabric.reset s.s_fabric;
  List.iteri
    (fun m (_, trace) -> Soc.Trace_master.reset ?mode s.s_masters.(m) trace)
    masters

let drained s () =
  Array.for_all Soc.Trace_master.finished s.s_masters
  && (not (Ec.Fabric.busy s.s_fabric))
  && (not (System.bus_busy s.s_system))
  && match s.s_far with Some f -> not (f.far_busy ()) | None -> true

let execute ~level ~policy ~topology ~max_cycles s masters =
  let kernel = System.kernel s.s_system in
  let t0 = Unix.gettimeofday () in
  let cycles = Sim.Kernel.run_until kernel ~max_cycles (drained s) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let fabric = s.s_fabric in
  let rows =
    List.mapi
      (fun m (k, _) ->
        {
          kind = k;
          txns = Ec.Fabric.master_txns fabric m;
          beats = Ec.Fabric.master_beats fabric m;
          errors = Ec.Fabric.master_errors fabric m;
          grants = Ec.Fabric.master_grants fabric m;
          energy_pj = Ec.Fabric.master_pj fabric m;
        })
      masters
  in
  {
    level;
    policy;
    topology;
    cycles;
    fabric_pj = Ec.Fabric.total_pj fabric;
    bus_pj =
      (System.bus_energy_pj s.s_system
      +. match s.s_far with Some f -> f.far_pj () | None -> 0.0);
    bridge_pj = Ec.Fabric.bridge_pj fabric;
    crossings = Ec.Fabric.crossings fabric;
    rows;
    wall_seconds;
  }

(* ------------------------------------------------------------------ *)
(* Compiled fabric plans (DESIGN.md section 18)                        *)

(* Attach a body recorder to one bus's energy model; returns the
   detach-and-finish closure, exactly as Runner.compile_trace does. *)
let attach_body = function
  | System.L1_bus b ->
    let e = Option.get (Tlm1.Bus.energy b) in
    let r = Compile.Plan.l1_recorder () in
    Tlm1.Energy.set_observer e (Compile.Plan.l1_observe r);
    fun () ->
      Tlm1.Energy.clear_observer e;
      Compile.Plan.l1_finish r
  | System.L2_bus b ->
    let e = Option.get (Tlm2.Bus.energy b) in
    let r = Compile.Plan.l2_recorder () in
    Tlm2.Energy.set_observer e (Compile.Plan.l2_observe r);
    fun () ->
      Tlm2.Energy.clear_observer e;
      Compile.Plan.l2_finish r
  | System.Rtl_bus _ -> assert false

let bus_counters = function
  | System.L1_bus b ->
    ( Tlm1.Bus.completed_txns b,
      Tlm1.Bus.completed_beats b,
      Tlm1.Bus.error_txns b,
      match Tlm1.Bus.energy b with
      | Some e -> Tlm1.Energy.transitions_total e
      | None -> 0 )
  | System.L2_bus b ->
    (Tlm2.Bus.completed_txns b, Tlm2.Bus.completed_beats b, Tlm2.Bus.error_txns b, 0)
  | System.Rtl_bus _ -> assert false

let plan_level = function
  | Level.L1 -> `L1
  | Level.L2 -> `L2
  | Level.Rtl | Level.L3 -> assert false

(* One instrumented interpreted pass: the bus energy observers record
   the near (and far) bodies while the fabric observer records each
   master's bucket-add order as pure integers.  The grant schedule is
   parameter-independent once workload, policy and topology are fixed,
   which the replay cross-check below asserts: evaluating the fresh plan
   at the capture table must reproduce the interpreted buckets bit for
   bit. *)
let compile ?(level = Level.L1) ?(policy = Ec.Arbiter.Round_robin)
    ?(topology = Single) ?mode ?(max_cycles = 4_000_000)
    ?(bridge_latency = 2) ?(bridge_pj_per_beat = 1.5) ?pool masters =
  validate ~level masters;
  if level = Level.Rtl then
    invalid_arg "Core.Contention.compile: gate-level fabric plans are not supported";
  let build () =
    let table = Power.Characterization.default in
    let s =
      build_session ~level ~policy ~topology ?mode ~estimate:true ~table
        ~bridge_latency ~bridge_pj_per_beat masters
    in
    let n = Array.length s.s_masters in
    let near_finish = attach_body (System.bus s.s_system) in
    let far_finish = Option.map (fun f -> attach_body f.far_bus) s.s_far in
    let rec_ = Compile.Plan.fabric_recorder ~masters:n in
    Ec.Fabric.set_observer s.s_fabric (Compile.Plan.fabric_observer rec_);
    let kernel = System.kernel s.s_system in
    let cycles = Sim.Kernel.run_until kernel ~max_cycles (drained s) in
    Ec.Fabric.clear_observer s.s_fabric;
    let near =
      Compile.Plan.make
        ~meta:
          {
            Compile.Plan.level = plan_level level;
            cycles;
            txns = System.completed_txns s.s_system;
            beats = System.completed_beats s.s_system;
            errors = System.error_txns s.s_system;
            transitions = System.bus_transitions s.s_system;
            component_pj = System.component_energy_pj s.s_system;
          }
        ~body:(near_finish ())
    in
    let far_plan =
      match (s.s_far, far_finish) with
      | Some f, Some finish ->
        let txns, beats, errors, transitions = bus_counters f.far_bus in
        Some
          (Compile.Plan.make
             ~meta:
               {
                 Compile.Plan.level = plan_level level;
                 cycles;
                 txns;
                 beats;
                 errors;
                 transitions;
                 component_pj = 0.0;
               }
             ~body:(finish ()))
      | _ -> None
    in
    let fabric = s.s_fabric in
    let plan =
      Compile.Plan.fabric_finish rec_
        ~meta:
          {
            Compile.Plan.f_masters = n;
            f_cycles = cycles;
            f_txns = Array.init n (Ec.Fabric.master_txns fabric);
            f_beats = Array.init n (Ec.Fabric.master_beats fabric);
            f_errors = Array.init n (Ec.Fabric.master_errors fabric);
            f_grants = Array.init n (Ec.Fabric.master_grants fabric);
            f_crossings = Ec.Fabric.crossings fabric;
            f_cross_pj_per_beat =
              (match topology with
              | Bridged -> bridge_pj_per_beat
              | Single -> 0.0);
            f_component_pj = System.component_energy_pj s.s_system;
          }
        ~near ~far_plan
    in
    (* Replay cross-check: the compiled schedule replayed at the capture
       table must be bit-identical to the interpreted pass it was
       recorded from. *)
    let o = Compile.Eval.eval_fabric ~table plan in
    for m = 0 to n - 1 do
      if o.Compile.Eval.buckets.(m) <> Ec.Fabric.master_pj fabric m then
        failwith
          (Printf.sprintf
             "Core.Contention.compile: replay cross-check failed \
              (master %d: compiled %.17g pJ, interpreted %.17g pJ)"
             m
             o.Compile.Eval.buckets.(m)
             (Ec.Fabric.master_pj fabric m))
    done;
    if
      o.Compile.Eval.fabric_pj <> Ec.Fabric.total_pj fabric
      || o.Compile.Eval.fabric_bridge_pj <> Ec.Fabric.bridge_pj fabric
    then failwith "Core.Contention.compile: replay cross-check failed (totals)";
    plan
  in
  match pool with
  | Some p ->
    let key =
      "fabric-plan:"
      ^ Pool.fingerprint
          ( level,
            policy,
            topology,
            mode,
            max_cycles,
            bridge_latency,
            bridge_pj_per_beat,
            masters )
    in
    Pool.memo p fabric_plan_kind ~tag:"fabric" ~key build
  | None -> build ()

let replay_plan ?(table = Power.Characterization.default) ~level ~policy
    ~topology ~kinds (plan : Compile.Plan.fabric) =
  let t0 = Unix.gettimeofday () in
  let o = Compile.Eval.eval_fabric ~table plan in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let m = plan.Compile.Plan.f_meta in
  let rows =
    List.mapi
      (fun i k ->
        {
          kind = k;
          txns = m.Compile.Plan.f_txns.(i);
          beats = m.Compile.Plan.f_beats.(i);
          errors = m.Compile.Plan.f_errors.(i);
          grants = m.Compile.Plan.f_grants.(i);
          energy_pj = o.Compile.Eval.buckets.(i);
        })
      kinds
  in
  {
    level;
    policy;
    topology;
    cycles = m.Compile.Plan.f_cycles;
    fabric_pj = o.Compile.Eval.fabric_pj;
    bus_pj = o.Compile.Eval.near_bus_pj +. o.Compile.Eval.far_bus_pj;
    bridge_pj = o.Compile.Eval.fabric_bridge_pj;
    crossings = m.Compile.Plan.f_crossings;
    rows;
    wall_seconds;
  }

(* ------------------------------------------------------------------ *)

let run ?(level = Level.L1) ?(policy = Ec.Arbiter.Round_robin)
    ?(topology = Single) ?mode ?(estimate = true) ?(max_cycles = 4_000_000)
    ?(bridge_latency = 2) ?(bridge_pj_per_beat = 1.5)
    ?(table = Power.Characterization.default) ?(compiled = false) ?pool
    masters =
  validate ~level masters;
  if compiled && estimate && (level = Level.L1 || level = Level.L2) then
    (* Compiled route: resolve (or fetch) the fabric plan, then evaluate
       the requested table over it.  Gate-level cells stay interpreted —
       Diesel has no integer tap. *)
    let plan =
      compile ~level ~policy ~topology ?mode ~max_cycles ~bridge_latency
        ~bridge_pj_per_beat ?pool masters
    in
    replay_plan ~table ~level ~policy ~topology ~kinds:(List.map fst masters)
      plan
  else
    match pool with
    | Some p ->
      (* The key is the session's wiring: everything reset does not undo.
         Traces and issue mode are re-armed per checkout. *)
      let key =
        "fabric:"
        ^ Pool.fingerprint
            ( level,
              estimate,
              table,
              policy,
              topology,
              bridge_latency,
              bridge_pj_per_beat,
              List.map fst masters )
      in
      Pool.with_session p session_kind ~key
        ~build:(fun () ->
          build_session ~level ~policy ~topology ?mode ~estimate ~table
            ~bridge_latency ~bridge_pj_per_beat masters)
        ~reset:(fun s -> reset_session ?mode s masters)
        (fun s -> execute ~level ~policy ~topology ~max_cycles s masters)
    | None ->
      let s =
        build_session ~level ~policy ~topology ?mode ~estimate ~table
          ~bridge_latency ~bridge_pj_per_beat masters
      in
      execute ~level ~policy ~topology ~max_cycles s masters

let default_masters ?(n = 512) topology =
  let src =
    match topology with Bridged -> far_base | Single -> Soc.Platform.Map.flash_base
  in
  [
    (Cpu, Workloads.table3_trace ~n);
    (Dma, Workloads.dma_trace ~words:n ~src ());
    (Crypto, Workloads.crypto_trace ~blocks:(max 1 (n / 8)) ());
  ]

let study_cells ~levels ~policies =
  List.concat_map
    (fun level ->
      List.concat_map
        (fun policy ->
          List.map (fun topology -> (level, policy, topology)) [ Single; Bridged ])
        policies)
    levels

let study ?(n = 512) ?(levels = Level.timed)
    ?(policies =
      [
        Ec.Arbiter.Fixed_priority;
        Ec.Arbiter.Round_robin;
        Ec.Arbiter.Weighted [| 4; 2; 1 |];
      ]) ?(compiled = false) ?pool ?domains () =
  (* Grid cells are fully independent simulations, so the sweep maps
     across domains; with a pool, plans and sessions persist in each
     domain's cache, so a second sweep replays from memoized plans. *)
  Parallel.map ?domains
    (fun (level, policy, topology) ->
      run ~level ~policy ~topology ~compiled ?pool
        (default_masters ~n topology))
    (study_cells ~levels ~policies)

let render_study results =
  let share row r =
    if r.fabric_pj > 0.0 then
      Printf.sprintf "%s (%.0f%%)" (Report.pj row.energy_pj)
        (100.0 *. row.energy_pj /. r.fabric_pj)
    else Report.pj row.energy_pj
  in
  let body =
    List.map
      (fun r ->
        let cell k =
          match List.find_opt (fun row -> row.kind = k) r.rows with
          | Some row -> share row r
          | None -> "-"
        in
        [
          Level.to_string r.level;
          Ec.Arbiter.policy_to_string r.policy;
          topology_to_string r.topology;
          string_of_int r.cycles;
          Report.pj r.fabric_pj;
          Report.pj r.bridge_pj;
          cell Cpu;
          cell Dma;
          cell Crypto;
        ])
      results
  in
  "Contention study: per-master attributed bus energy\n"
  ^ Report.table
      ~header:
        [
          "Level"; "Arbiter"; "Topology"; "Cycles"; "Fabric"; "Bridge";
          "CPU"; "DMA"; "Crypto";
        ]
      body
