type row = {
  config : Jcvm.Configs.t;
  applet : string;
  level : Level.t;
  cycles : int;
  bus_pj : float;
  transactions : int;
  steps : int;
  value : int option;
  correct : bool;
}

let run_one ?(level = Level.L1) ?table ~config (applet : Jcvm.Applets.t) =
  let hw = Jcvm.Hw_stack.create config in
  let system =
    System.create ~level ?table ~extra_slaves:[ Jcvm.Hw_stack.slave hw ] ()
  in
  let kernel = System.kernel system in
  let adapter =
    Jcvm.Master_adapter.create ~kernel ~port:(System.port system) config
  in
  let firewall = Jcvm.Firewall.create () in
  let memory = Jcvm.Memmgr.create firewall in
  Array.iteri (fun i v -> Jcvm.Memmgr.set_static memory i v) applet.Jcvm.Applets.statics;
  let ctx = Jcvm.Firewall.new_context firewall in
  let result =
    Jcvm.Interp.run_methods
      ~stack:(Jcvm.Master_adapter.ops adapter)
      ~memory ~ctx
      (Jcvm.Applets.method_table applet)
  in
  (* Drain any buffered packed push so its bus cost is accounted. *)
  Jcvm.Master_adapter.flush adapter;
  let reference =
    Jcvm.Interp.run_soft ~statics:applet.Jcvm.Applets.statics
      ~methods:applet.Jcvm.Applets.methods applet.Jcvm.Applets.program
  in
  {
    config;
    applet = applet.Jcvm.Applets.name;
    level;
    cycles = Sim.Kernel.now kernel;
    bus_pj = System.bus_energy_pj system;
    transactions = Jcvm.Master_adapter.transactions adapter;
    steps = result.Jcvm.Interp.steps;
    value = result.Jcvm.Interp.value;
    correct =
      result.Jcvm.Interp.value = reference.Jcvm.Interp.value
      && (applet.Jcvm.Applets.expected = None
         || result.Jcvm.Interp.value = applet.Jcvm.Applets.expected);
  }

let run ?level ?table ?(configs = Jcvm.Configs.standard)
    ?(applets = Jcvm.Applets.all) ?domains () =
  (* Every applet x configuration cell is an independent system; fan the
     flattened grid out on the domain pool. *)
  Parallel.map ?domains
    (fun (applet, config) -> run_one ?level ?table ~config applet)
    (List.concat_map
       (fun applet -> List.map (fun config -> (applet, config)) configs)
       applets)

let render rows =
  let by_applet = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let existing =
        try Hashtbl.find by_applet row.applet with Not_found -> []
      in
      Hashtbl.replace by_applet row.applet (row :: existing))
    rows;
  let applet_names =
    List.sort_uniq compare (List.map (fun r -> r.applet) rows)
  in
  let render_applet name =
    let group = List.rev (Hashtbl.find by_applet name) in
    let best =
      List.fold_left
        (fun acc r -> if r.correct && r.bus_pj < acc then r.bus_pj else acc)
        infinity group
    in
    let body =
      List.map
        (fun r ->
          [
            (if r.correct && r.bus_pj = best then "* " ^ r.config.Jcvm.Configs.name
             else r.config.Jcvm.Configs.name);
            string_of_int r.cycles;
            Printf.sprintf "%.1f" r.bus_pj;
            string_of_int r.transactions;
            (match r.value with Some v -> string_of_int v | None -> "-");
            (if r.correct then "ok" else "WRONG");
          ])
        group
    in
    Printf.sprintf "applet %s (%d bytecode steps):\n%s" name
      (match group with r :: _ -> r.steps | [] -> 0)
      (Report.table
         ~header:[ "configuration"; "cycles"; "bus pJ"; "bus txns"; "result"; "check" ]
         body)
  in
  String.concat "\n\n" (List.map render_applet applet_names)
