type row = {
  config : Jcvm.Configs.t;
  applet : string;
  level : Level.t;
  cycles : int;
  bus_pj : float;
  transactions : int;
  steps : int;
  value : int option;
  correct : bool;
  provenance : Hier.Splice.t option;
}

(* The interpreter run shared by the fixed-level and adaptive paths:
   bind the applet's stack calls to the adapter, run to completion,
   drain, and compute the software-stack reference. *)
let interpret ~kernel ~port ~config (applet : Jcvm.Applets.t) =
  let adapter = Jcvm.Master_adapter.create ~kernel ~port config in
  let firewall = Jcvm.Firewall.create () in
  let memory = Jcvm.Memmgr.create firewall in
  Array.iteri
    (fun i v -> Jcvm.Memmgr.set_static memory i v)
    applet.Jcvm.Applets.statics;
  let ctx = Jcvm.Firewall.new_context firewall in
  let result =
    Jcvm.Interp.run_methods
      ~stack:(Jcvm.Master_adapter.ops adapter)
      ~memory ~ctx
      (Jcvm.Applets.method_table applet)
  in
  (* Drain any buffered packed push so its bus cost is accounted. *)
  Jcvm.Master_adapter.flush adapter;
  let reference =
    Jcvm.Interp.run_soft ~statics:applet.Jcvm.Applets.statics
      ~methods:applet.Jcvm.Applets.methods applet.Jcvm.Applets.program
  in
  let correct =
    result.Jcvm.Interp.value = reference.Jcvm.Interp.value
    && (applet.Jcvm.Applets.expected = None
       || result.Jcvm.Interp.value = applet.Jcvm.Applets.expected)
  in
  (result, Jcvm.Master_adapter.transactions adapter, correct)

(* The level a row reports when a policy mixes several: the level the
   policy rests at when nothing fires. *)
let nominal_level (policy : Hier.Policy.t) =
  match policy with
  | Hier.Policy.Constant level -> level
  | Hier.Policy.Script ((_, level) :: _) -> level
  | Hier.Policy.Script [] -> Level.L1
  | Hier.Policy.Triggered { base; _ } -> base

(* Pooled grid-cell sessions: the hardware stack rides with the system
   (fixed level) or the live materials (adaptive), because its slave is
   wired into the decoder at creation.  Keys fingerprint the interface
   configuration and the characterization table — the two things reset
   does not undo. *)
type fixed_session = { fs_hw : Jcvm.Hw_stack.t; fs_system : System.t }

let fixed_kind : fixed_session Pool.kind = Pool.kind ()

(* A compiled grid cell: the trace plan of one (configuration, applet)
   interpretation plus the row fields the characterization table cannot
   change.  Everything that is table-dependent (bus_pj, and nothing
   else) folds off the plan per evaluation, so re-running a cell — a
   sweep over tables, a repeated grid — skips the JCVM interpretation
   entirely. *)
type cell_plan = {
  cp_plan : Compile.Plan.t;
  cp_cycles : int;
  cp_transactions : int;
  cp_steps : int;
  cp_value : int option;
  cp_correct : bool;
}

let cell_kind : cell_plan Pool.kind = Pool.kind ()

(* One capture run: interpret the applet on a fresh system with the
   energy model's integer taps attached, and keep the plan.  The table
   passed here is irrelevant — the taps never read a float — so the
   cell compiles once and serves every table. *)
let compile_cell ~level ~config applet =
  let hw = Jcvm.Hw_stack.create config in
  let system =
    System.create ~level ~estimate:true
      ~extra_slaves:[ Jcvm.Hw_stack.slave hw ]
      ()
  in
  let finish =
    match System.bus system with
    | System.L1_bus b ->
      let e = Option.get (Tlm1.Bus.energy b) in
      let r = Compile.Plan.l1_recorder () in
      Tlm1.Energy.set_observer e (Compile.Plan.l1_observe r);
      fun () ->
        Tlm1.Energy.clear_observer e;
        Compile.Plan.l1_finish r
    | System.L2_bus b ->
      let e = Option.get (Tlm2.Bus.energy b) in
      let r = Compile.Plan.l2_recorder () in
      Tlm2.Energy.set_observer e (Compile.Plan.l2_observe r);
      fun () ->
        Tlm2.Energy.clear_observer e;
        Compile.Plan.l2_finish r
    | System.Rtl_bus _ -> assert false
  in
  let kernel = System.kernel system in
  let result, transactions, correct =
    interpret ~kernel ~port:(System.port system) ~config applet
  in
  let cycles = Sim.Kernel.now kernel in
  let body = finish () in
  let plan =
    Compile.Plan.make
      ~meta:
        {
          Compile.Plan.level =
            (match level with
            | Level.L1 -> `L1
            | Level.L2 -> `L2
            | Level.Rtl | Level.L3 -> assert false);
          cycles;
          txns = System.completed_txns system;
          beats = System.completed_beats system;
          errors = System.error_txns system;
          transitions = System.bus_transitions system;
          component_pj = System.component_energy_pj system;
        }
      ~body
  in
  {
    cp_plan = plan;
    cp_cycles = cycles;
    cp_transactions = transactions;
    cp_steps = result.Jcvm.Interp.steps;
    cp_value = result.Jcvm.Interp.value;
    cp_correct = correct;
  }

type live_session = {
  ls_hw : Jcvm.Hw_stack.t;
  ls_materials : Runner.live_materials;
}

let live_kind : live_session Pool.kind = Pool.kind ()

let run_fixed ?(level = Level.L1) ?(compiled = true) ?table ?sink ?pool ~config
    applet =
  let execute system =
    let kernel = System.kernel system in
    let result, transactions, correct =
      interpret ~kernel ~port:(System.port system) ~config applet
    in
    {
      config;
      applet = applet.Jcvm.Applets.name;
      level;
      cycles = Sim.Kernel.now kernel;
      bus_pj = System.bus_energy_pj system;
      transactions;
      steps = result.Jcvm.Interp.steps;
      value = result.Jcvm.Interp.value;
      correct;
      provenance = None;
    }
  in
  let build () =
    let hw = Jcvm.Hw_stack.create config in
    let system =
      System.create ~level ?table
        ~extra_slaves:[ Jcvm.Hw_stack.slave hw ]
        ?sink ()
    in
    { fs_hw = hw; fs_system = system }
  in
  match pool with
  | Some p when sink = None && compiled && level <> Level.Rtl ->
    (* Compiled cell: the plan memoizes per (level, applet,
       configuration) — the table is folded off it afterwards, so a
       table sweep over one cell interprets the applet exactly once. *)
    let key =
      Printf.sprintf "explore-plan:%s:%s:%s" (Level.to_string level)
        applet.Jcvm.Applets.name
        (Pool.fingerprint config)
    in
    let cp = Pool.memo p cell_kind ~key (fun () -> compile_cell ~level ~config applet) in
    let table = Option.value table ~default:Power.Characterization.default in
    let o = Compile.Eval.eval ~table cp.cp_plan in
    {
      config;
      applet = applet.Jcvm.Applets.name;
      level;
      cycles = cp.cp_cycles;
      bus_pj = o.Compile.Eval.bus_pj;
      transactions = cp.cp_transactions;
      steps = cp.cp_steps;
      value = cp.cp_value;
      correct = cp.cp_correct;
      provenance = None;
    }
  | Some p when sink = None ->
    let key =
      Printf.sprintf "explore:%s:%s" (Level.to_string level)
        (Pool.fingerprint (config, table))
    in
    Pool.with_session p fixed_kind ~key ~build
      ~reset:(fun s ->
        Jcvm.Hw_stack.reset s.fs_hw;
        System.reset s.fs_system)
      (fun s -> execute s.fs_system)
  | Some _ | None -> execute (build ()).fs_system

let run_adaptive ?table ?sink ?pool ~policy ~config applet =
  let execute (live : Runner.live) =
    let result, transactions, correct =
      interpret ~kernel:live.Runner.kernel ~port:live.Runner.port ~config
        applet
    in
    let run = live.Runner.finish () in
    {
      config;
      applet = applet.Jcvm.Applets.name;
      level = nominal_level policy;
      cycles = Sim.Kernel.now live.Runner.kernel;
      bus_pj = run.Runner.bus_pj;
      transactions;
      steps = result.Jcvm.Interp.steps;
      value = result.Jcvm.Interp.value;
      correct;
      provenance = Some run.Runner.splice;
    }
  in
  match pool with
  | Some p when sink = None ->
    let key = Printf.sprintf "explore-live:%s" (Pool.fingerprint (config, table)) in
    Pool.with_session p live_kind ~key
      ~build:(fun () ->
        let hw = Jcvm.Hw_stack.create config in
        let materials =
          Runner.live_materials ?table
            ~extra_slaves:[ Jcvm.Hw_stack.slave hw ]
            ~extra_reset:(fun () -> Jcvm.Hw_stack.reset hw)
            ()
        in
        { ls_hw = hw; ls_materials = materials })
      ~reset:(fun s -> Runner.reset_live_materials s.ls_materials)
      (fun s ->
        execute
          (Runner.live_adaptive ~materials:s.ls_materials ~policy ()))
  | Some _ | None ->
    let hw = Jcvm.Hw_stack.create config in
    let live =
      Runner.live_adaptive ?table ?sink
        ~extra_slaves:[ Jcvm.Hw_stack.slave hw ]
        ~policy ()
    in
    execute live

let run_one ?level ?compiled ?table ?policy ?sink ?pool ~config applet =
  match policy with
  | None -> run_fixed ?level ?compiled ?table ?sink ?pool ~config applet
  | Some policy ->
    (match level with
    | Some _ ->
      invalid_arg "Core.Exploration.run_one: pass either ~level or ~policy"
    | None -> run_adaptive ?table ?sink ?pool ~policy ~config applet)

(* The default session/plan pool shared by every [run] call of the
   process: compiled cell plans are only worth caching if they survive
   from one grid to the next, and the DLS store keeps each domain's
   cache private anyway. *)
let default_pool = lazy (Pool.create ())

let run ?level ?compiled ?table ?policy ?(configs = Jcvm.Configs.standard)
    ?(applets = Jcvm.Applets.all) ?domains ?workers ?(pool = true) () =
  (* Every applet x configuration cell is an independent system; fan the
     flattened grid out on the domain pool.  With [pool] (the default)
     each domain keeps one reset session per configuration shape — and,
     in compiled mode, one plan per grid cell — so repeated grids rerun
     nothing but the energy fold. *)
  let spool = if pool then Some (Lazy.force default_pool) else None in
  Parallel.map ?domains ?pool:workers
    (fun (applet, config) ->
      run_one ?level ?compiled ?table ?policy ?pool:spool ~config applet)
    (List.concat_map
       (fun applet -> List.map (fun config -> (applet, config)) configs)
       applets)

(* Per-level aggregate of a row's spliced windows: windows, cycles, pJ. *)
let level_split splice level =
  List.fold_left
    (fun (w, cy, pj) (win : Hier.Splice.window) ->
      if win.Hier.Splice.level = level then
        (w + 1, cy + win.Hier.Splice.cycles, pj +. win.Hier.Splice.bus_pj)
      else (w, cy, pj))
    (0, 0, 0.0) splice.Hier.Splice.windows

let split_string splice level =
  let w, cy, pj = level_split splice level in
  if w = 0 then "-" else Printf.sprintf "%dw %dcy %.1fpJ" w cy pj

let render rows =
  let by_applet = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let existing =
        try Hashtbl.find by_applet row.applet with Not_found -> []
      in
      Hashtbl.replace by_applet row.applet (row :: existing))
    rows;
  let applet_names =
    List.sort_uniq compare (List.map (fun r -> r.applet) rows)
  in
  let adaptive = List.exists (fun r -> r.provenance <> None) rows in
  let render_applet name =
    let group = List.rev (Hashtbl.find by_applet name) in
    let best =
      List.fold_left
        (fun acc r -> if r.correct && r.bus_pj < acc then r.bus_pj else acc)
        infinity group
    in
    let body =
      List.map
        (fun r ->
          [
            (* "*" marks the best correct configuration; "!" flags a
               functionally wrong one, which can never be best. *)
            (if not r.correct then "! " ^ r.config.Jcvm.Configs.name
             else if r.bus_pj = best then "* " ^ r.config.Jcvm.Configs.name
             else r.config.Jcvm.Configs.name);
            string_of_int r.cycles;
            Printf.sprintf "%.1f" r.bus_pj;
            string_of_int r.transactions;
            (match r.value with Some v -> string_of_int v | None -> "-");
            (if r.correct then "ok" else "WRONG");
          ]
          @
          if not adaptive then []
          else
            match r.provenance with
            | None -> [ "-"; "-"; "-" ]
            | Some s ->
              [
                split_string s Level.L1;
                split_string s Level.L2;
                Printf.sprintf "±%.1f" s.Hier.Splice.error_bound_pj;
              ])
        group
    in
    let header =
      [ "configuration"; "cycles"; "bus pJ"; "bus txns"; "result"; "check" ]
      @ if adaptive then [ "L1 windows"; "L2 windows"; "budget" ] else []
    in
    Printf.sprintf "applet %s (%d bytecode steps):\n%s" name
      (match group with r :: _ -> r.steps | [] -> 0)
      (Report.table ~header body)
  in
  String.concat "\n\n" (List.map render_applet applet_names)
