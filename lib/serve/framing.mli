(** Length-prefixed JSON framing (DESIGN.md section 15).

    Every message in either direction is one frame: a 4-byte big-endian
    unsigned payload length, then that many bytes of UTF-8 JSON — one
    document per frame.  The prefix makes message boundaries independent
    of JSON whitespace and lets a receiver reject an oversized payload
    before reading it. *)

val default_max_frame : int
(** 16 MiB — far above any response this server streams (large results
    are chunked), low enough that a corrupt prefix cannot make a reader
    allocate gigabytes. *)

type read_result =
  | Frame of string  (** one complete payload *)
  | Closed  (** clean EOF on a frame boundary *)
  | Truncated  (** EOF inside a prefix or payload: the peer died mid-frame *)
  | Oversized of int
      (** prefix announced this many bytes, above [max_frame]; the
          payload has {e not} been consumed — see {!discard} *)
  | Stopped
      (** [stop] said to give up during a receive timeout — only
          reachable when the caller passed [stop] {e and} armed
          [SO_RCVTIMEO] on the descriptor *)

val read : ?max_frame:int -> ?stop:(unit -> bool) -> Unix.file_descr -> read_result
(** Blocking read of one frame.  When the descriptor carries a receive
    timeout ([SO_RCVTIMEO]), each expiry consults [stop] (default:
    never stop): the read keeps waiting while it returns [false] and
    answers {!Stopped} once it returns [true] — even in the middle of a
    frame, so one stalled peer cannot pin a reader forever. *)

val write : Unix.file_descr -> string -> unit
(** Writes one frame (prefix + payload), looping over short writes.
    @raise Invalid_argument if the payload exceeds the 32-bit prefix.
    Unix errors ([EPIPE] on a dead peer) propagate to the caller. *)

val write_json : Unix.file_descr -> Obs.Json.t -> unit
(** [write] of the document's canonical print. *)

val discard : ?stop:(unit -> bool) -> Unix.file_descr -> int -> bool
(** Consumes and drops exactly [n] payload bytes, so a connection can
    survive an {!Oversized} frame and stay synchronized on the next
    prefix.  [false] if EOF arrived first, or if a receive timeout
    expired with [stop] returning [true]. *)
