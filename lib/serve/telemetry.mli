(** Daemon-wide telemetry registry (DESIGN.md section 16).

    Every request the daemon accepts gets a {e span}: one mutable record
    carrying microsecond timestamps for each lifecycle edge
    (accept -> enqueue -> dequeue -> execute -> done) plus the queue
    depth and worker id observed at those edges.  Completed spans feed
    per-request-kind and per-client counters and fixed-bucket histograms
    (reusing {!Obs.Metrics.hist}, so steady-state recording allocates
    only the span itself), and are retained in a circular ring from
    which Chrome/Perfetto trace chunks are cut for subscribers.

    Thread-safety: all registry updates serialize on an internal mutex;
    span field writes need none because a span is owned by exactly one
    thread at a time (the reader, then — with the job-queue handoff as
    the synchronization point — the worker). *)

type t
type span

val create : ?span_capacity:int -> ?depth_capacity:int -> unit -> t
(** [span_capacity] (default 8192) bounds the completed-span ring,
    [depth_capacity] (default 16384) the queue-depth sample ring; both
    overwrite oldest when full, and overwrites are reported as
    {!spans_dropped} / per-chunk [missed]. *)

(** {1 Request kinds} *)

val kind_run : int
val kind_explore : int
val kind_replay : int
val kind_stats : int
val kind_shutdown : int
val kind_metrics : int
val kind_subscribe : int
val kind_unsubscribe : int
val kind_name : int -> string

(** {1 Span lifecycle}

    Edges must be recorded in order; control requests answered inline on
    the reader thread skip the queue edges and use {!finish_control}. *)

val span_accept : t -> conn:int -> kind:int -> span
val span_enqueued : t -> span -> queue_depth:int -> unit
val span_rejected : t -> span -> unit
(** The request was refused (busy/draining); the span is accounted as a
    rejection and not retained in the trace ring. *)

val span_dequeued : t -> span -> worker:int -> queue_depth:int -> unit
val span_executed : t -> span -> ok:bool -> unit
val span_done : t -> span -> frames:int -> unit
val finish_control : t -> span -> frames:int -> unit

(** {1 Reading} *)

val spans_dropped : t -> int
(** Completed spans overwritten in the ring before export. *)

val spans_total : t -> int
val totals : t -> int * int * int * int
(** [(accepted, completed, failed, rejected)] across request kinds. *)

val snapshot : t -> Obs.Json.t
(** The metrics snapshot document carried by [metrics] frames:
    per-kind counters + latency histograms, queue/execute/serialize
    phase histograms, per-client counters + queue-wait histograms. *)

val render : t -> string
(** {!Core.Report}-style tables of the same data, with approximate p50
    and p99 read from the histogram buckets. *)

(** {1 Chrome/Perfetto export}

    Server lanes: tid 150 carries control-plane instants, tid 200+w
    worker [w]'s request slices (B/E pairs, balanced by construction),
    and queue depth rides the counter track. *)

type cursor

val start_cursor : cursor

val chrome_chunk : t -> cursor -> Obs.Json.t list * cursor * int
(** Events recorded since [cursor] (sorted by timestamp), the advanced
    cursor, and how many ring entries were overwritten unseen. *)

val chrome_metadata : ?workers:int -> unit -> Obs.Json.t list
(** Process/thread-name metadata events naming the server lanes. *)

val chrome_document : t -> Obs.Json.t
(** A complete trace document from everything the rings retain. *)

val write_chrome : path:string -> t -> unit
