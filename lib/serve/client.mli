(** Client side of the wire protocol: a blocking connection for scripts,
    tests and the [smartcard client] subcommand.

    One connection supports pipelining (ids distinguish interleaved
    response streams), but the helpers here are deliberately sequential:
    send one request, read frames until its [done]/[error] terminator.
    Concurrency is spelled "one connection per thread". *)

type endpoint = [ `Unix of string | `Tcp of string * int ]

type t

val connect : ?max_frame:int -> endpoint -> t
(** @raise Unix.Unix_error when nothing listens on the endpoint. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The raw descriptor, for tests that need to write malformed bytes. *)

val send : ?id:int -> t -> Protocol.request -> int
(** Frames one request and returns the id used (auto-allocated when
    omitted). *)

val send_json : t -> Obs.Json.t -> unit
(** Ships an arbitrary document as one frame — the malformed-request
    tests live on this. *)

val read_frame : t -> (Obs.Json.t, string) result
(** One raw response frame; [Error] on EOF or a framing violation. *)

val read_typed : t -> (Obs.Json.t * Protocol.frame, string) result
(** {!read_frame} plus decoding: the echoed id and the typed frame. *)

val collect : t -> (Protocol.frame list, string) result
(** Reads typed frames until the stream's terminator and returns the
    whole stream in order, terminator included.  The terminator is the
    [done] summary, or a rejection-class [error] frame
    ([busy]/[draining]/[bad_*]/[unknown_type]) which is a complete
    response by itself; a [failed] error is {e not} terminal — the
    server still sends the job's [done] summary after it, and collect
    reads on so the connection stays aligned for the next request. *)

val request : ?id:int -> t -> Protocol.request -> (Protocol.frame list, string) result
(** [send] + [collect]. *)

val request_retrying :
  ?id:int ->
  ?attempts:int ->
  t ->
  Protocol.request ->
  (Protocol.frame list, string) result
(** Like {!request}, but a [busy] rejection sleeps the advertised
    [retry_after_ms] and resends, up to [attempts] (default 10) times —
    the polite client loop the backpressure design assumes. *)

val subscribe :
  ?id:int ->
  ?interval_ms:int ->
  t ->
  streams:Protocol.stream list ->
  (int, string) result
(** Opens a telemetry subscription and waits for the [subscribed] ack;
    returns the id tagging every stream frame.  The caller then reads
    stream frames with {!read_typed} at its own pace — a subscriber that
    stops reading eventually stalls the daemon's ticker thread (see
    DESIGN.md section 16), never its workers. *)

val unsubscribe : t -> (unit, string) result
(** Ends the subscription and drains stream frames still in flight
    ahead of the ack, leaving the connection aligned for the next
    request. *)
