module J = Obs.Json

type workload =
  | Table3 of int
  | Mixed_phase of int
  | Characterization
  | Inline of string list

let trace_of_workload = function
  | Table3 n -> Core.Workloads.table3_trace ~n
  | Mixed_phase n -> Core.Workloads.mixed_phase_trace ~n ()
  | Characterization -> Core.Workloads.characterization_trace
  | Inline lines -> Ec.Trace.of_lines lines

type mode = [ `Serial | `Pipelined ]

type run = {
  workload : workload;
  level : Core.Level.t;
  mode : mode;
  estimate : bool;
  profile : bool;
  compiled : bool;
}

type fabric_spec = {
  fab_policy : Ec.Arbiter.policy;
  fab_topology : Core.Contention.topology;
}

type replay = {
  workload : workload;
  level : Core.Level.t;
  mode : mode;
  scales : float list;
  fabric : fabric_spec option;
}

type explore = {
  applets : string list;
  configs : string list;
  level : Core.Level.t;
  adaptive : bool;
}

(* Telemetry streams a client can subscribe to (DESIGN.md section 16):
   periodic metrics snapshots, Chrome/Perfetto trace chunks cut from
   server spans, and a live copy of every energy-jsonl chunk the daemon
   streams to any client. *)
type stream = [ `Metrics | `Trace | `Energy ]

type subscribe = { streams : stream list; interval_ms : int }

type request =
  | Run of run
  | Explore of explore
  | Replay of replay
  | Stats
  | Metrics
  | Subscribe of subscribe
  | Unsubscribe
  | Shutdown

type error_code =
  | Bad_frame
  | Oversized
  | Bad_json
  | Bad_request
  | Unknown_type
  | Busy
  | Draining
  | Failed

let error_code_to_string = function
  | Bad_frame -> "bad_frame"
  | Oversized -> "oversized"
  | Bad_json -> "bad_json"
  | Bad_request -> "bad_request"
  | Unknown_type -> "unknown_type"
  | Busy -> "busy"
  | Draining -> "draining"
  | Failed -> "failed"

let error_code_of_string = function
  | "bad_frame" -> Some Bad_frame
  | "oversized" -> Some Oversized
  | "bad_json" -> Some Bad_json
  | "bad_request" -> Some Bad_request
  | "unknown_type" -> Some Unknown_type
  | "busy" -> Some Busy
  | "draining" -> Some Draining
  | "failed" -> Some Failed
  | _ -> None

type result_body = {
  level : Core.Level.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  transitions : int;
  wall_seconds : float;
}

let result_body_of_runner (r : Core.Runner.result) =
  {
    level = r.Core.Runner.level;
    cycles = r.Core.Runner.cycles;
    txns = r.Core.Runner.txns;
    beats = r.Core.Runner.beats;
    errors = r.Core.Runner.errors;
    bus_pj = r.Core.Runner.bus_pj;
    component_pj = r.Core.Runner.component_pj;
    transitions = r.Core.Runner.transitions;
    wall_seconds = r.Core.Runner.wall_seconds;
  }

type row_body = {
  config : string;
  applet : string;
  row_level : Core.Level.t;
  row_cycles : int;
  row_bus_pj : float;
  transactions : int;
  steps : int;
  value : int option;
  correct : bool;
  switches : int option;
  error_bound_pj : float option;
}

let row_body_of_exploration (r : Core.Exploration.row) =
  {
    config = r.Core.Exploration.config.Jcvm.Configs.name;
    applet = r.Core.Exploration.applet;
    row_level = r.Core.Exploration.level;
    row_cycles = r.Core.Exploration.cycles;
    row_bus_pj = r.Core.Exploration.bus_pj;
    transactions = r.Core.Exploration.transactions;
    steps = r.Core.Exploration.steps;
    value = r.Core.Exploration.value;
    correct = r.Core.Exploration.correct;
    switches =
      Option.map
        (fun (s : Hier.Splice.t) -> s.Hier.Splice.switches)
        r.Core.Exploration.provenance;
    error_bound_pj =
      Option.map
        (fun (s : Hier.Splice.t) -> s.Hier.Splice.error_bound_pj)
        r.Core.Exploration.provenance;
  }

type point_body = {
  point_seq : int;
  scale : float;
  point_bus_pj : float;
  point_cycles : int;
  point_txns : int;
  point_transitions : int;
  point_buckets : float list option;
}

type pool_stats = {
  session_hits : int;
  session_builds : int;
  plan_hits : int;
  plan_builds : int;
}

type worker_stat = { worker : int; jobs : int }

type stats_body = {
  queue_depth : int;
  queue_capacity : int;
  stats_draining : bool;
  uptime_s : float;
  accepted : int;
  rejected : int;
  completed : int;
  failed : int;
  spans_dropped : int;
  workers : worker_stat list;
  pool : pool_stats;
  rendered : string;
}

type metrics_body = {
  metrics_seq : int;
  snapshot : J.t;  (* Serve.Telemetry.snapshot document *)
  metrics_rendered : string;
}

type trace_body = {
  trace_seq : int;
  trace_events : J.t list;  (* Chrome trace-event objects *)
  trace_missed : int;  (* ring entries overwritten before this chunk *)
}

type subscribed_body = { sub_streams : stream list; sub_interval_ms : int }

type error_body = {
  code : error_code;
  message : string;
  retry_after_ms : int option;
}

type done_body = {
  frames : int;
  latency_ms : float;
  done_worker : int;
  done_pool : pool_stats;
}

type frame =
  | Accepted of int
  | Result of result_body
  | Row of int * row_body
  | Point of point_body
  | Energy of int * string list
  | Stats_reply of stats_body
  | Metrics_reply of metrics_body
  | Trace_chunk of trace_body
  | Subscribed of subscribed_body
  | Error of error_body
  | Done of done_body

(* --- encoding --- *)

let level_to_wire = function
  | Core.Level.Rtl -> "rtl"
  | Core.Level.L1 -> "l1"
  | Core.Level.L2 -> "l2"
  | Core.Level.L3 -> "l3"

let level_of_wire = function
  | "rtl" -> Some Core.Level.Rtl
  | "l1" -> Some Core.Level.L1
  | "l2" -> Some Core.Level.L2
  | "l3" -> Some Core.Level.L3
  | _ -> None

let mode_to_wire = function `Serial -> "serial" | `Pipelined -> "pipelined"

let mode_of_wire = function
  | "serial" -> Some `Serial
  | "pipelined" -> Some `Pipelined
  | _ -> None

let stream_to_wire = function
  | `Metrics -> "metrics"
  | `Trace -> "trace"
  | `Energy -> "energy"

let stream_of_wire = function
  | "metrics" -> Some `Metrics
  | "trace" -> Some `Trace
  | "energy" -> Some `Energy
  | _ -> None

let streams_to_json streams =
  J.List (List.map (fun s -> J.String (stream_to_wire s)) streams)

let workload_to_json = function
  | Table3 n -> J.Obj [ ("kind", J.String "table3"); ("n", J.Int n) ]
  | Mixed_phase n -> J.Obj [ ("kind", J.String "mixed"); ("n", J.Int n) ]
  | Characterization -> J.Obj [ ("kind", J.String "characterization") ]
  | Inline lines ->
    J.Obj
      [
        ("kind", J.String "inline");
        ("lines", J.List (List.map (fun l -> J.String l) lines));
      ]

let request_to_json ~id request =
  let fields =
    match request with
    | Run r ->
      [
        ("type", J.String "run");
        ("workload", workload_to_json r.workload);
        ("level", J.String (level_to_wire r.level));
        ("mode", J.String (mode_to_wire r.mode));
        ("estimate", J.Bool r.estimate);
        ("profile", J.Bool r.profile);
        ("compiled", J.Bool r.compiled);
      ]
    | Explore e ->
      [
        ("type", J.String "explore");
        ("applets", J.List (List.map (fun a -> J.String a) e.applets));
        ("configs", J.List (List.map (fun c -> J.String c) e.configs));
        ("level", J.String (level_to_wire e.level));
        ("adaptive", J.Bool e.adaptive);
      ]
    | Replay r ->
      [
        ("type", J.String "replay");
        ("workload", workload_to_json r.workload);
        ("level", J.String (level_to_wire r.level));
        ("mode", J.String (mode_to_wire r.mode));
        ("scales", J.List (List.map (fun s -> J.Float s) r.scales));
      ]
      @ (match r.fabric with
        | None -> []
        | Some f ->
          [
            ( "fabric",
              J.Obj
                [
                  ( "policy",
                    J.String (Ec.Arbiter.policy_to_string f.fab_policy) );
                  ( "topology",
                    J.String
                      (Core.Contention.topology_to_string f.fab_topology) );
                ] );
          ])
    | Stats -> [ ("type", J.String "stats") ]
    | Metrics -> [ ("type", J.String "metrics") ]
    | Subscribe s ->
      [
        ("type", J.String "subscribe");
        ("streams", streams_to_json s.streams);
        ("interval_ms", J.Int s.interval_ms);
      ]
    | Unsubscribe -> [ ("type", J.String "unsubscribe") ]
    | Shutdown -> [ ("type", J.String "shutdown") ]
  in
  J.Obj (("id", id) :: fields)

(* --- request decoding / validation --- *)

let request_id json = Option.value (J.member "id" json) ~default:J.Null

(* Validation accumulates through [result]: the first bad field wins and
   its path is named in the message. *)
let ( let* ) = Result.bind

let bad fmt = Printf.ksprintf (fun m -> Result.Error (Bad_request, m)) fmt

let field_string json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some (J.String s) -> Ok s
  | Some _ -> bad "field %S must be a string" name

let field_bool json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some (J.Bool b) -> Ok b
  | Some _ -> bad "field %S must be a boolean" name

let field_int json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some v -> (
    match J.int_opt v with
    | Some n -> Ok n
    | None -> bad "field %S must be an integer" name)

let field_level json ~default =
  let* s = field_string json "level" ~default:(level_to_wire default) in
  match level_of_wire s with
  | Some l -> Ok l
  | None -> bad "unknown level %S (rtl|l1|l2)" s

let field_mode json =
  let* s = field_string json "mode" ~default:"serial" in
  match mode_of_wire s with
  | Some m -> Ok m
  | None -> bad "unknown mode %S (serial|pipelined)" s

let field_string_list json name =
  match J.member name json with
  | None -> Ok []
  | Some (J.List items) ->
    let rec decode acc = function
      | [] -> Ok (List.rev acc)
      | J.String s :: rest -> decode (s :: acc) rest
      | _ :: _ -> bad "field %S must be a list of strings" name
    in
    decode [] items
  | Some _ -> bad "field %S must be a list of strings" name

let max_workload_txns = 1_000_000

let field_workload json =
  match J.member "workload" json with
  | None -> bad "field \"workload\" is required"
  | Some w -> (
    let* kind = field_string w "kind" ~default:"" in
    let txns name =
      match J.member "n" w with
      | Some n -> (
        match J.int_opt n with
        | Some n when n >= 1 && n <= max_workload_txns -> Ok n
        | Some n -> bad "workload %s: n = %d out of range [1, %d]" name n
                      max_workload_txns
        | None -> bad "workload %s: field \"n\" must be an integer" name)
      | None -> bad "workload %s: field \"n\" is required" name
    in
    match kind with
    | "table3" ->
      let* n = txns "table3" in
      Ok (Table3 n)
    | "mixed" ->
      let* n = txns "mixed" in
      Ok (Mixed_phase n)
    | "characterization" -> Ok Characterization
    | "inline" ->
      let* lines = field_string_list w "lines" in
      if lines = [] then bad "inline workload: field \"lines\" is required"
      else (
        (* Validate now so a malformed trace is a [bad_request], not a
           mid-job failure.  Any exception counts as malformed — the
           parser signals [Failure], but e.g. a negative gap raises
           [Invalid_argument], and none of them may escape into the
           reader thread. *)
        match Ec.Trace.of_lines lines with
        | _ -> Ok (Inline lines)
        | exception Failure msg -> bad "inline workload: %s" msg
        | exception Invalid_argument msg -> bad "inline workload: %s" msg
        | exception e -> bad "inline workload: %s" (Printexc.to_string e))
    | "" -> bad "workload: field \"kind\" is required"
    | k -> bad "unknown workload kind %S" k)

let request_of_json json =
  match json with
  | J.Obj _ -> (
    let* ty =
      match J.member "type" json with
      | Some (J.String s) -> Ok s
      | Some _ -> bad "field \"type\" must be a string"
      | None -> bad "field \"type\" is required"
    in
    match ty with
    | "run" ->
      let* workload = field_workload json in
      let* level = field_level json ~default:Core.Level.L1 in
      let* mode = field_mode json in
      let* estimate = field_bool json "estimate" ~default:true in
      let* profile = field_bool json "profile" ~default:false in
      let* compiled = field_bool json "compiled" ~default:false in
      Ok (Run { workload; level; mode; estimate; profile; compiled })
    | "explore" ->
      let* applets = field_string_list json "applets" in
      let* configs = field_string_list json "configs" in
      let* level = field_level json ~default:Core.Level.L1 in
      let* adaptive = field_bool json "adaptive" ~default:false in
      let known_applets =
        List.map (fun a -> a.Jcvm.Applets.name) Jcvm.Applets.all
      in
      let known_configs =
        List.map (fun c -> c.Jcvm.Configs.name) Jcvm.Configs.standard
      in
      let* () =
        match List.find_opt (fun a -> not (List.mem a known_applets)) applets with
        | Some a -> bad "unknown applet %S" a
        | None -> Ok ()
      in
      let* () =
        match List.find_opt (fun c -> not (List.mem c known_configs)) configs with
        | Some c -> bad "unknown config %S" c
        | None -> Ok ()
      in
      Ok (Explore { applets; configs; level; adaptive })
    | "replay" ->
      let* workload = field_workload json in
      let* level = field_level json ~default:Core.Level.L1 in
      let* () =
        match level with
        | Core.Level.Rtl ->
          bad "replay: the gate-level reference has no compiled plan"
        | Core.Level.L3 ->
          bad "replay: bridged layer-3 runs are interpreted, not compiled"
        | Core.Level.L1 | Core.Level.L2 -> Ok ()
      in
      let* mode = field_mode json in
      let* scales =
        match J.member "scales" json with
        | None -> Ok [ 1.0 ]
        | Some (J.List items) when items <> [] ->
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
              match J.number_opt item with
              | Some s when Float.is_finite s && s > 0.0 ->
                decode (s :: acc) rest
              | Some _ -> bad "field \"scales\" entries must be positive"
              | None -> bad "field \"scales\" must be a list of numbers")
          in
          decode [] items
        | Some _ -> bad "field \"scales\" must be a non-empty list of numbers"
      in
      let* fabric =
        match J.member "fabric" json with
        | None -> Ok None
        | Some (J.Obj _ as f) ->
          let* ps = field_string f "policy" ~default:"rr" in
          let* fab_policy =
            match Ec.Arbiter.policy_of_string ps with
            | Some p -> Ok p
            | None -> bad "unknown arbiter policy %S (fixed|rr|wrr:w,...)" ps
          in
          let* ts = field_string f "topology" ~default:"single" in
          let* fab_topology =
            match Core.Contention.topology_of_string ts with
            | Some t -> Ok t
            | None -> bad "unknown topology %S (single|bridged)" ts
          in
          Ok (Some { fab_policy; fab_topology })
        | Some _ -> bad "field \"fabric\" must be an object"
      in
      Ok (Replay { workload; level; mode; scales; fabric })
    | "stats" -> Ok Stats
    | "metrics" -> Ok Metrics
    | "subscribe" ->
      let* names = field_string_list json "streams" in
      let* streams =
        if names = [] then
          bad "subscribe: field \"streams\" is required (metrics|trace|energy)"
        else
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | s :: rest -> (
              match stream_of_wire s with
              | Some v -> decode (v :: acc) rest
              | None -> bad "unknown stream %S (metrics|trace|energy)" s)
          in
          decode [] names
      in
      let* interval_ms = field_int json "interval_ms" ~default:500 in
      let* () =
        if interval_ms < 10 || interval_ms > 60_000 then
          bad "subscribe: interval_ms = %d out of range [10, 60000]" interval_ms
        else Ok ()
      in
      Ok (Subscribe { streams; interval_ms })
    | "unsubscribe" -> Ok Unsubscribe
    | "shutdown" -> Ok Shutdown
    | t -> Error (Unknown_type, Printf.sprintf "unknown request type %S" t))
  | _ -> bad "request must be a JSON object"

(* --- frame encoding --- *)

let pool_stats_to_json p =
  J.Obj
    [
      ("session_hits", J.Int p.session_hits);
      ("session_builds", J.Int p.session_builds);
      ("plan_hits", J.Int p.plan_hits);
      ("plan_builds", J.Int p.plan_builds);
    ]

let result_body_to_json r =
  J.Obj
    [
      ("level", J.String (level_to_wire r.level));
      ("cycles", J.Int r.cycles);
      ("txns", J.Int r.txns);
      ("beats", J.Int r.beats);
      ("errors", J.Int r.errors);
      ("bus_pj", J.Float r.bus_pj);
      ("component_pj", J.Float r.component_pj);
      ("transitions", J.Int r.transitions);
      ("wall_seconds", J.Float r.wall_seconds);
    ]

let row_body_to_json r =
  let opt_int = function None -> J.Null | Some v -> J.Int v in
  let opt_float = function None -> J.Null | Some v -> J.Float v in
  J.Obj
    [
      ("config", J.String r.config);
      ("applet", J.String r.applet);
      ("level", J.String (level_to_wire r.row_level));
      ("cycles", J.Int r.row_cycles);
      ("bus_pj", J.Float r.row_bus_pj);
      ("transactions", J.Int r.transactions);
      ("steps", J.Int r.steps);
      ("value", opt_int r.value);
      ("correct", J.Bool r.correct);
      ("switches", opt_int r.switches);
      ("error_bound_pj", opt_float r.error_bound_pj);
    ]

let frame_to_json ~id frame =
  let fields =
    match frame with
    | Accepted depth ->
      [ ("frame", J.String "accepted"); ("queue_depth", J.Int depth) ]
    | Result r ->
      [ ("frame", J.String "result"); ("result", result_body_to_json r) ]
    | Row (seq, row) ->
      [
        ("frame", J.String "row");
        ("seq", J.Int seq);
        ("row", row_body_to_json row);
      ]
    | Point p ->
      [
        ("frame", J.String "point");
        ("seq", J.Int p.point_seq);
        ("scale", J.Float p.scale);
        ("bus_pj", J.Float p.point_bus_pj);
        ("cycles", J.Int p.point_cycles);
        ("txns", J.Int p.point_txns);
        ("transitions", J.Int p.point_transitions);
      ]
      @ (match p.point_buckets with
        | None -> []
        | Some bs ->
          [ ("buckets", J.List (List.map (fun b -> J.Float b) bs)) ])
    | Energy (seq, lines) ->
      [
        ("frame", J.String "energy");
        ("seq", J.Int seq);
        ("lines", J.List (List.map (fun l -> J.String l) lines));
      ]
    | Stats_reply s ->
      [
        ("frame", J.String "stats");
        ("queue_depth", J.Int s.queue_depth);
        ("queue_capacity", J.Int s.queue_capacity);
        ("draining", J.Bool s.stats_draining);
        ("uptime_s", J.Float s.uptime_s);
        ("accepted", J.Int s.accepted);
        ("rejected", J.Int s.rejected);
        ("completed", J.Int s.completed);
        ("failed", J.Int s.failed);
        ("spans_dropped", J.Int s.spans_dropped);
        ( "workers",
          J.List
            (List.map
               (fun w ->
                 J.Obj [ ("worker", J.Int w.worker); ("jobs", J.Int w.jobs) ])
               s.workers) );
        ("pool", pool_stats_to_json s.pool);
        ("rendered", J.String s.rendered);
      ]
    | Metrics_reply m ->
      [
        ("frame", J.String "metrics");
        ("seq", J.Int m.metrics_seq);
        ("snapshot", m.snapshot);
        ("rendered", J.String m.metrics_rendered);
      ]
    | Trace_chunk tc ->
      [
        ("frame", J.String "trace");
        ("seq", J.Int tc.trace_seq);
        ("events", J.List tc.trace_events);
        ("missed", J.Int tc.trace_missed);
      ]
    | Subscribed s ->
      [
        ("frame", J.String "subscribed");
        ("streams", streams_to_json s.sub_streams);
        ("interval_ms", J.Int s.sub_interval_ms);
      ]
    | Error e ->
      [
        ("frame", J.String "error");
        ("code", J.String (error_code_to_string e.code));
        ("message", J.String e.message);
      ]
      @ (match e.retry_after_ms with
        | None -> []
        | Some ms -> [ ("retry_after_ms", J.Int ms) ])
    | Done d ->
      [
        ("frame", J.String "done");
        ("frames", J.Int d.frames);
        ("latency_ms", J.Float d.latency_ms);
        ("worker", J.Int d.done_worker);
        ("pool", pool_stats_to_json d.done_pool);
      ]
  in
  J.Obj (("id", id) :: fields)

(* --- frame decoding --- *)

let need_int json name =
  match Option.bind (J.member name json) J.int_opt with
  | Some v -> Ok v
  | None -> Result.Error (Printf.sprintf "frame field %S missing" name)

let need_float json name =
  match Option.bind (J.member name json) J.number_opt with
  | Some v -> Ok v
  | None -> Result.Error (Printf.sprintf "frame field %S missing" name)

let need_bool json name =
  match Option.bind (J.member name json) J.bool_opt with
  | Some v -> Ok v
  | None -> Result.Error (Printf.sprintf "frame field %S missing" name)

let need_string json name =
  match Option.bind (J.member name json) J.string_opt with
  | Some v -> Ok v
  | None -> Result.Error (Printf.sprintf "frame field %S missing" name)

let need_level json name =
  let* s = need_string json name in
  match level_of_wire s with
  | Some l -> Ok l
  | None -> Result.Error (Printf.sprintf "bad level %S" s)

let pool_stats_of_json json =
  let* session_hits = need_int json "session_hits" in
  let* session_builds = need_int json "session_builds" in
  let* plan_hits = need_int json "plan_hits" in
  let* plan_builds = need_int json "plan_builds" in
  Ok { session_hits; session_builds; plan_hits; plan_builds }

let result_body_of_json json =
  let* level = need_level json "level" in
  let* cycles = need_int json "cycles" in
  let* txns = need_int json "txns" in
  let* beats = need_int json "beats" in
  let* errors = need_int json "errors" in
  let* bus_pj = need_float json "bus_pj" in
  let* component_pj = need_float json "component_pj" in
  let* transitions = need_int json "transitions" in
  let* wall_seconds = need_float json "wall_seconds" in
  Ok
    {
      level;
      cycles;
      txns;
      beats;
      errors;
      bus_pj;
      component_pj;
      transitions;
      wall_seconds;
    }

let row_body_of_json json =
  let* config = need_string json "config" in
  let* applet = need_string json "applet" in
  let* row_level = need_level json "level" in
  let* row_cycles = need_int json "cycles" in
  let* row_bus_pj = need_float json "bus_pj" in
  let* transactions = need_int json "transactions" in
  let* steps = need_int json "steps" in
  let value = Option.bind (J.member "value" json) J.int_opt in
  let* correct = need_bool json "correct" in
  let switches = Option.bind (J.member "switches" json) J.int_opt in
  let error_bound_pj =
    Option.bind (J.member "error_bound_pj" json) J.number_opt
  in
  Ok
    {
      config;
      applet;
      row_level;
      row_cycles;
      row_bus_pj;
      transactions;
      steps;
      value;
      correct;
      switches;
      error_bound_pj;
    }

let frame_of_json json =
  let id = request_id json in
  let* kind = need_string json "frame" in
  let* frame =
    match kind with
    | "accepted" ->
      let* depth = need_int json "queue_depth" in
      Ok (Accepted depth)
    | "result" -> (
      match J.member "result" json with
      | Some r ->
        let* body = result_body_of_json r in
        Ok (Result body)
      | None -> Result.Error "result frame without \"result\"")
    | "row" -> (
      let* seq = need_int json "seq" in
      match J.member "row" json with
      | Some r ->
        let* body = row_body_of_json r in
        Ok (Row (seq, body))
      | None -> Result.Error "row frame without \"row\"")
    | "point" ->
      let* point_seq = need_int json "seq" in
      let* scale = need_float json "scale" in
      let* point_bus_pj = need_float json "bus_pj" in
      let* point_cycles = need_int json "cycles" in
      let* point_txns = need_int json "txns" in
      let* point_transitions = need_int json "transitions" in
      let* point_buckets =
        match J.member "buckets" json with
        | None -> Ok None
        | Some (J.List items) ->
          let bs = List.filter_map J.number_opt items in
          if List.length bs = List.length items then Ok (Some bs)
          else Result.Error "point frame buckets must be numbers"
        | Some _ -> Result.Error "point frame buckets must be a list"
      in
      Ok
        (Point
           {
             point_seq;
             scale;
             point_bus_pj;
             point_cycles;
             point_txns;
             point_transitions;
             point_buckets;
           })
    | "energy" -> (
      let* seq = need_int json "seq" in
      match Option.bind (J.member "lines" json) J.to_list_opt with
      | Some items ->
        let lines = List.filter_map J.string_opt items in
        if List.length lines = List.length items then Ok (Energy (seq, lines))
        else Result.Error "energy frame lines must be strings"
      | None -> Result.Error "energy frame without \"lines\"")
    | "stats" ->
      let* queue_depth = need_int json "queue_depth" in
      let* queue_capacity = need_int json "queue_capacity" in
      let* stats_draining = need_bool json "draining" in
      let* uptime_s = need_float json "uptime_s" in
      let* accepted = need_int json "accepted" in
      let* rejected = need_int json "rejected" in
      let* completed = need_int json "completed" in
      let* failed = need_int json "failed" in
      let* spans_dropped = need_int json "spans_dropped" in
      let* workers =
        match Option.bind (J.member "workers" json) J.to_list_opt with
        | Some items ->
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest ->
              let* worker = need_int item "worker" in
              let* jobs = need_int item "jobs" in
              decode ({ worker; jobs } :: acc) rest
          in
          decode [] items
        | None -> Result.Error "stats frame without \"workers\""
      in
      let* pool =
        match J.member "pool" json with
        | Some p -> pool_stats_of_json p
        | None -> Result.Error "stats frame without \"pool\""
      in
      let* rendered = need_string json "rendered" in
      Ok
        (Stats_reply
           {
             queue_depth;
             queue_capacity;
             stats_draining;
             uptime_s;
             accepted;
             rejected;
             completed;
             failed;
             spans_dropped;
             workers;
             pool;
             rendered;
           })
    | "metrics" -> (
      let* metrics_seq = need_int json "seq" in
      match J.member "snapshot" json with
      | Some snapshot ->
        let* metrics_rendered = need_string json "rendered" in
        Ok (Metrics_reply { metrics_seq; snapshot; metrics_rendered })
      | None -> Result.Error "metrics frame without \"snapshot\"")
    | "trace" -> (
      let* trace_seq = need_int json "seq" in
      let* trace_missed = need_int json "missed" in
      match Option.bind (J.member "events" json) J.to_list_opt with
      | Some trace_events ->
        Ok (Trace_chunk { trace_seq; trace_events; trace_missed })
      | None -> Result.Error "trace frame without \"events\"")
    | "subscribed" -> (
      let* names =
        match Option.bind (J.member "streams" json) J.to_list_opt with
        | Some items ->
          let names = List.filter_map J.string_opt items in
          if List.length names = List.length items then Ok names
          else Result.Error "subscribed frame streams must be strings"
        | None -> Result.Error "subscribed frame without \"streams\""
      in
      let* sub_interval_ms = need_int json "interval_ms" in
      let rec decode acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
          match stream_of_wire s with
          | Some v -> decode (v :: acc) rest
          | None -> Result.Error (Printf.sprintf "unknown stream %S" s))
      in
      match decode [] names with
      | Ok sub_streams -> Ok (Subscribed { sub_streams; sub_interval_ms })
      | Error _ as e -> e)
    | "error" ->
      let* code_s = need_string json "code" in
      let* code =
        match error_code_of_string code_s with
        | Some c -> Ok c
        | None -> Result.Error (Printf.sprintf "unknown error code %S" code_s)
      in
      let* message = need_string json "message" in
      let retry_after_ms =
        Option.bind (J.member "retry_after_ms" json) J.int_opt
      in
      Ok (Error { code; message; retry_after_ms })
    | "done" ->
      let* frames = need_int json "frames" in
      let* latency_ms = need_float json "latency_ms" in
      let* done_worker = need_int json "worker" in
      let* done_pool =
        match J.member "pool" json with
        | Some p -> pool_stats_of_json p
        | None -> Result.Error "done frame without \"pool\""
      in
      Ok (Done { frames; latency_ms; done_worker; done_pool })
    | k -> Result.Error (Printf.sprintf "unknown frame kind %S" k)
  in
  Ok (id, frame)
