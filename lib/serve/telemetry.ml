(* Daemon-wide telemetry plane (DESIGN.md section 16).

   Every request the daemon accepts gets a span: one mutable record
   carrying microsecond timestamps for each lifecycle edge
   (accept -> enqueue -> dequeue -> execute -> done) plus the queue
   depth and worker id observed at those edges.  Completed spans are
   folded into per-request-kind and per-client counters and fixed-bucket
   histograms (reusing [Obs.Metrics.hist], so recording allocates
   nothing beyond the span itself), and retained in a circular ring
   from which Chrome/Perfetto trace chunks are cut for subscribers.

   All registry state is guarded by one mutex; span field writes happen
   on whichever thread currently owns the request (reader, then the
   worker it was handed to via the job queue), so they need no lock of
   their own. *)

module J = Obs.Json

(* Request kinds.  Control requests (stats/metrics/subscribe/...) are
   answered inline on the reader thread and never visit the job queue;
   they appear as instants rather than worker slices in the trace. *)
let kind_run = 0
let kind_explore = 1
let kind_replay = 2
let kind_stats = 3
let kind_shutdown = 4
let kind_metrics = 5
let kind_subscribe = 6
let kind_unsubscribe = 7
let n_kinds = 8

let kind_name = function
  | 0 -> "run"
  | 1 -> "explore"
  | 2 -> "replay"
  | 3 -> "stats"
  | 4 -> "shutdown"
  | 5 -> "metrics"
  | 6 -> "subscribe"
  | 7 -> "unsubscribe"
  | k -> Printf.sprintf "kind-%d" k

type span = {
  sp_seq : int;
  sp_conn : int;
  sp_kind : int;
  sp_accept : int;  (* all timestamps: microseconds since registry epoch *)
  mutable sp_enqueue : int;
  mutable sp_queue_depth : int;  (* total queue depth just after enqueue *)
  mutable sp_dequeue : int;
  mutable sp_worker : int;
  mutable sp_execute : int;  (* execution finished, [done] not yet sent *)
  mutable sp_done : int;  (* terminator serialized and written *)
  mutable sp_ok : bool;
  mutable sp_frames : int;
}

type client = {
  mutable cl_requests : int;
  mutable cl_completed : int;
  mutable cl_failed : int;
  mutable cl_rejected : int;
  cl_queue_wait : Obs.Metrics.hist;
}

let us_bounds =
  [|
    50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000.; 20_000.; 50_000.;
    100_000.; 200_000.; 500_000.; 1_000_000.; 5_000_000.;
  |]

let depth_bounds = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]

(* Per-client tracking is bounded: past this many distinct connection
   ids, further clients share one overflow bucket instead of growing the
   table without limit. *)
let max_clients = 512
let overflow_client = -1

type t = {
  mutex : Mutex.t;
  epoch : float;
  mutable next_seq : int;
  requests : int array;  (* accepted, per kind *)
  completed : int array;
  failed : int array;
  rejected : int array;
  latency : Obs.Metrics.hist array;  (* accept -> done, per kind *)
  queue_wait : Obs.Metrics.hist;  (* enqueue -> dequeue, queued jobs *)
  exec : Obs.Metrics.hist;  (* dequeue -> execute end *)
  serialize : Obs.Metrics.hist;  (* execute end -> done written *)
  enqueue_depth : Obs.Metrics.hist;  (* queue depth seen at enqueue *)
  clients : (int, client) Hashtbl.t;
  (* Circular rings feeding the trace stream.  [span_total] / [qd_total]
     are absolute counters so subscriber cursors can detect overwrites
     and report how many entries they missed. *)
  spans : span array;
  span_cap : int;
  mutable span_total : int;
  qd_ts : int array;
  qd_depth : int array;
  qd_cap : int;
  mutable qd_total : int;
}

let create ?(span_capacity = 8192) ?(depth_capacity = 16384) () =
  let span_cap = max 16 span_capacity in
  let qd_cap = max 16 depth_capacity in
  let dummy =
    {
      sp_seq = -1;
      sp_conn = -1;
      sp_kind = 0;
      sp_accept = 0;
      sp_enqueue = -1;
      sp_queue_depth = -1;
      sp_dequeue = -1;
      sp_worker = -1;
      sp_execute = -1;
      sp_done = -1;
      sp_ok = false;
      sp_frames = 0;
    }
  in
  {
    mutex = Mutex.create ();
    epoch = Unix.gettimeofday ();
    next_seq = 0;
    requests = Array.make n_kinds 0;
    completed = Array.make n_kinds 0;
    failed = Array.make n_kinds 0;
    rejected = Array.make n_kinds 0;
    latency =
      Array.init n_kinds (fun k ->
          Obs.Metrics.hist (kind_name k ^ "-latency-us") us_bounds);
    queue_wait = Obs.Metrics.hist "queue-wait-us" us_bounds;
    exec = Obs.Metrics.hist "execute-us" us_bounds;
    serialize = Obs.Metrics.hist "serialize-us" us_bounds;
    enqueue_depth = Obs.Metrics.hist "enqueue-depth" depth_bounds;
    clients = Hashtbl.create 16;
    spans = Array.make span_cap dummy;
    span_cap;
    span_total = 0;
    qd_ts = Array.make qd_cap 0;
    qd_depth = Array.make qd_cap 0;
    qd_cap;
    qd_total = 0;
  }

let now_us t = int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1e6)
let uptime_s t = Unix.gettimeofday () -. t.epoch

(* Callers hold [t.mutex]. *)
let client_entry t conn =
  let key =
    if Hashtbl.mem t.clients conn || Hashtbl.length t.clients < max_clients
    then conn
    else overflow_client
  in
  match Hashtbl.find_opt t.clients key with
  | Some c -> c
  | None ->
    let c =
      {
        cl_requests = 0;
        cl_completed = 0;
        cl_failed = 0;
        cl_rejected = 0;
        cl_queue_wait =
          Obs.Metrics.hist (Printf.sprintf "client%d-queue-wait-us" key)
            us_bounds;
      }
    in
    Hashtbl.add t.clients key c;
    c

(* Callers hold [t.mutex]. *)
let record_depth t ~ts ~depth =
  t.qd_ts.(t.qd_total mod t.qd_cap) <- ts;
  t.qd_depth.(t.qd_total mod t.qd_cap) <- depth;
  t.qd_total <- t.qd_total + 1

let span_accept t ~conn ~kind =
  let ts = now_us t in
  Mutex.lock t.mutex;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.requests.(kind) <- t.requests.(kind) + 1;
  let cl = client_entry t conn in
  cl.cl_requests <- cl.cl_requests + 1;
  Mutex.unlock t.mutex;
  {
    sp_seq = seq;
    sp_conn = conn;
    sp_kind = kind;
    sp_accept = ts;
    sp_enqueue = -1;
    sp_queue_depth = -1;
    sp_dequeue = -1;
    sp_worker = -1;
    sp_execute = -1;
    sp_done = -1;
    sp_ok = false;
    sp_frames = 0;
  }

let span_enqueued t span ~queue_depth =
  let ts = now_us t in
  span.sp_enqueue <- ts;
  span.sp_queue_depth <- queue_depth;
  Mutex.lock t.mutex;
  Obs.Metrics.observe_int t.enqueue_depth queue_depth;
  record_depth t ~ts ~depth:queue_depth;
  Mutex.unlock t.mutex

let span_rejected t span =
  Mutex.lock t.mutex;
  t.rejected.(span.sp_kind) <- t.rejected.(span.sp_kind) + 1;
  let cl = client_entry t span.sp_conn in
  cl.cl_rejected <- cl.cl_rejected + 1;
  Mutex.unlock t.mutex

let span_dequeued t span ~worker ~queue_depth =
  let ts = now_us t in
  span.sp_dequeue <- ts;
  span.sp_worker <- worker;
  Mutex.lock t.mutex;
  if span.sp_enqueue >= 0 then begin
    let wait = ts - span.sp_enqueue in
    Obs.Metrics.observe_int t.queue_wait wait;
    let cl = client_entry t span.sp_conn in
    Obs.Metrics.observe_int cl.cl_queue_wait wait
  end;
  record_depth t ~ts ~depth:queue_depth;
  Mutex.unlock t.mutex

let span_executed t span ~ok =
  span.sp_execute <- now_us t;
  span.sp_ok <- ok

let span_done t span ~frames =
  let ts = now_us t in
  span.sp_done <- ts;
  span.sp_frames <- frames;
  Mutex.lock t.mutex;
  t.completed.(span.sp_kind) <- t.completed.(span.sp_kind) + 1;
  if not span.sp_ok then t.failed.(span.sp_kind) <- t.failed.(span.sp_kind) + 1;
  let cl = client_entry t span.sp_conn in
  cl.cl_completed <- cl.cl_completed + 1;
  if not span.sp_ok then cl.cl_failed <- cl.cl_failed + 1;
  Obs.Metrics.observe_int t.latency.(span.sp_kind) (ts - span.sp_accept);
  if span.sp_dequeue >= 0 && span.sp_execute >= span.sp_dequeue then
    Obs.Metrics.observe_int t.exec (span.sp_execute - span.sp_dequeue);
  if span.sp_execute >= 0 then
    Obs.Metrics.observe_int t.serialize (ts - span.sp_execute);
  t.spans.(t.span_total mod t.span_cap) <- span;
  t.span_total <- t.span_total + 1;
  Mutex.unlock t.mutex

(* Control requests complete on the reader thread in one step. *)
let finish_control t span ~frames =
  span.sp_execute <- now_us t;
  span.sp_ok <- true;
  span_done t span ~frames

let spans_dropped t =
  Mutex.lock t.mutex;
  let d = max 0 (t.span_total - t.span_cap) in
  Mutex.unlock t.mutex;
  d

let spans_total t =
  Mutex.lock t.mutex;
  let n = t.span_total in
  Mutex.unlock t.mutex;
  n

(* Totals across request kinds: (accepted, completed, failed, rejected). *)
let totals t =
  Mutex.lock t.mutex;
  let sum a = Array.fold_left ( + ) 0 a in
  let r = (sum t.requests, sum t.completed, sum t.failed, sum t.rejected) in
  Mutex.unlock t.mutex;
  r

let hist_json h = Obs.Metrics.hist_view_to_json (Obs.Metrics.hist_view h)

(* Callers hold [t.mutex]. *)
let used_kinds t =
  List.filter
    (fun k -> t.requests.(k) > 0)
    (List.init n_kinds Fun.id)

let snapshot t =
  Mutex.lock t.mutex;
  let kinds =
    List.map
      (fun k ->
        ( kind_name k,
          J.Obj
            [
              ("requests", J.Int t.requests.(k));
              ("completed", J.Int t.completed.(k));
              ("failed", J.Int t.failed.(k));
              ("rejected", J.Int t.rejected.(k));
              ("latency_us", hist_json t.latency.(k));
            ] ))
      (used_kinds t)
  in
  let clients =
    Hashtbl.fold (fun key cl acc -> (key, cl) :: acc) t.clients []
    |> List.sort compare
    |> List.map (fun (key, cl) ->
           ( (if key = overflow_client then "other" else string_of_int key),
             J.Obj
               [
                 ("requests", J.Int cl.cl_requests);
                 ("completed", J.Int cl.cl_completed);
                 ("failed", J.Int cl.cl_failed);
                 ("rejected", J.Int cl.cl_rejected);
                 ("queue_wait_us", hist_json cl.cl_queue_wait);
               ] ))
  in
  let doc =
    J.Obj
      [
        ("uptime_s", J.Float (uptime_s t));
        ("spans_total", J.Int t.span_total);
        ("spans_retained", J.Int (min t.span_total t.span_cap));
        ("spans_dropped", J.Int (max 0 (t.span_total - t.span_cap)));
        ( "queue",
          J.Obj
            [
              ("enqueue_depth", hist_json t.enqueue_depth);
              ("queue_wait_us", hist_json t.queue_wait);
              ("execute_us", hist_json t.exec);
              ("serialize_us", hist_json t.serialize);
            ] );
        ("requests", J.Obj kinds);
        ("clients", J.Obj clients);
      ]
  in
  Mutex.unlock t.mutex;
  doc

let render t =
  Mutex.lock t.mutex;
  let pctl h p =
    let v = Obs.Metrics.hist_view h in
    Obs.Metrics.percentile v p
  in
  let mean h =
    let v = Obs.Metrics.hist_view h in
    v.Obs.Metrics.mean
  in
  let us v = Printf.sprintf "%.0f" v in
  let request_rows =
    List.map
      (fun k ->
        [
          kind_name k;
          string_of_int t.requests.(k);
          string_of_int t.completed.(k);
          string_of_int t.failed.(k);
          string_of_int t.rejected.(k);
          us (mean t.latency.(k));
          us (pctl t.latency.(k) 50.0);
          us (pctl t.latency.(k) 99.0);
        ])
      (used_kinds t)
  in
  let phase_rows =
    List.map
      (fun h ->
        let v = Obs.Metrics.hist_view h in
        [
          v.Obs.Metrics.name;
          string_of_int v.Obs.Metrics.total;
          us v.Obs.Metrics.mean;
          us (Obs.Metrics.percentile v 50.0);
          us (Obs.Metrics.percentile v 99.0);
        ])
      [ t.queue_wait; t.exec; t.serialize; t.enqueue_depth ]
  in
  let client_rows =
    Hashtbl.fold (fun key cl acc -> (key, cl) :: acc) t.clients []
    |> List.sort compare
    |> List.map (fun (key, cl) ->
           [
             (if key = overflow_client then "other" else string_of_int key);
             string_of_int cl.cl_requests;
             string_of_int cl.cl_completed;
             string_of_int cl.cl_rejected;
             us (mean cl.cl_queue_wait);
             us (pctl cl.cl_queue_wait 99.0);
           ])
  in
  let spans_line =
    Printf.sprintf "spans: %d total, %d dropped from ring" t.span_total
      (max 0 (t.span_total - t.span_cap))
  in
  Mutex.unlock t.mutex;
  String.concat "\n"
    ([
       Core.Report.table
         ~header:
           [
             "request"; "accepted"; "completed"; "failed"; "rejected";
             "mean us"; "p50 us"; "p99 us";
           ]
         request_rows;
       "";
       Core.Report.table
         ~header:[ "phase"; "total"; "mean"; "p50"; "p99" ]
         phase_rows;
     ]
    @ (if client_rows = [] then []
       else
         [
           "";
           Core.Report.table
             ~header:
               [
                 "client"; "requests"; "completed"; "rejected";
                 "queue-wait mean us"; "queue-wait p99 us";
               ]
             client_rows;
         ])
    @ [ ""; spans_line ])

(* ---- Chrome/Perfetto export ------------------------------------- *)

(* Server lanes live alongside the simulator's tid layout (Obs.Chrome):
   150 = control-plane instants, 200+w = worker w's request slices;
   queue depth rides the shared counter track (tid 0). *)
let tid_control = 150
let tid_worker w = 200 + w

let span_events s =
  let name =
    Printf.sprintf "req %s%s" (kind_name s.sp_kind)
      (if s.sp_ok then "" else " (failed)")
  in
  let args =
    [
      ("seq", J.Int s.sp_seq);
      ("conn", J.Int s.sp_conn);
      ("ok", J.Bool s.sp_ok);
      ("frames", J.Int s.sp_frames);
    ]
    @
    if s.sp_enqueue >= 0 && s.sp_dequeue >= s.sp_enqueue then
      [ ("queue_wait_us", J.Int (s.sp_dequeue - s.sp_enqueue)) ]
    else []
  in
  if s.sp_worker >= 0 && s.sp_dequeue >= 0 && s.sp_done >= s.sp_dequeue then
    let tid = tid_worker s.sp_worker in
    [
      Obs.Chrome.ev ~name ~ph:"B" ~ts:s.sp_dequeue ~tid ~args ();
      Obs.Chrome.ev ~name ~ph:"E" ~ts:s.sp_done ~tid ();
    ]
  else
    [ Obs.Chrome.ev ~name ~ph:"i" ~ts:s.sp_accept ~tid:tid_control ~args () ]

let sort_by_ts events =
  List.stable_sort
    (fun a b ->
      match (J.member "ts" a, J.member "ts" b) with
      | Some (J.Int ta), Some (J.Int tb) -> compare ta tb
      | _ -> 0)
    events

let chrome_metadata ?(workers = 0) () =
  Obs.Chrome.meta ~name:"process_name" ~tid:0 ~label:"smartcard-serve"
  :: Obs.Chrome.meta ~name:"thread_name" ~tid:tid_control ~label:"control"
  :: List.init workers (fun w ->
         Obs.Chrome.meta ~name:"thread_name" ~tid:(tid_worker w)
           ~label:(Printf.sprintf "worker%d" w))

type cursor = int * int  (* absolute (span, depth-sample) positions *)

let start_cursor : cursor = (0, 0)

(* Events recorded since [cursor], the advanced cursor, and how many
   ring entries were overwritten before this reader got to them. *)
let chrome_chunk t ((cs, cq) : cursor) =
  (* Only the ring *slices* are copied under the lock (completed spans
     are never mutated again, so sharing the records is safe); the JSON
     events — proportional to the request rate — are built outside it.
     Workers take this mutex on every span edge: serializing a busy
     tick's chunk under it would stall the request path. *)
  Mutex.lock t.mutex;
  let first_s = max cs (t.span_total - t.span_cap) in
  let first_q = max cq (t.qd_total - t.qd_cap) in
  let missed = first_s - cs + (first_q - cq) in
  let spans =
    Array.init (t.span_total - first_s) (fun i ->
        t.spans.((first_s + i) mod t.span_cap))
  in
  let qd =
    Array.init (t.qd_total - first_q) (fun i ->
        let j = (first_q + i) mod t.qd_cap in
        (t.qd_ts.(j), t.qd_depth.(j)))
  in
  let next : cursor = (t.span_total, t.qd_total) in
  Mutex.unlock t.mutex;
  let span_evs =
    List.concat (List.init (Array.length spans) (fun i -> span_events spans.(i)))
  in
  let depth_evs =
    List.init (Array.length qd) (fun i ->
        let ts, depth = qd.(i) in
        Obs.Chrome.counter ~name:"queue_depth" ~ts
          ~value:(float_of_int depth))
  in
  (sort_by_ts (span_evs @ depth_evs), next, missed)

let chrome_document t =
  let events, _, _ = chrome_chunk t start_cursor in
  Mutex.lock t.mutex;
  let first_s = max 0 (t.span_total - t.span_cap) in
  let max_worker =
    List.fold_left
      (fun acc i -> max acc t.spans.((first_s + i) mod t.span_cap).sp_worker)
      (-1)
      (List.init (t.span_total - first_s) Fun.id)
  in
  let total = t.span_total in
  let dropped = max 0 (t.span_total - t.span_cap) in
  Mutex.unlock t.mutex;
  J.Obj
    [
      ( "traceEvents",
        J.List (chrome_metadata ~workers:(max_worker + 1) () @ events) );
      ("displayTimeUnit", J.String "ms");
      ( "otherData",
        J.Obj
          [
            ("spans_total", J.Int total);
            ("spans_dropped", J.Int dropped);
          ] );
    ]

let write_chrome ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      J.to_buffer buf (chrome_document t);
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)
