type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on push and on drain *)
  items : 'a Queue.t;
  capacity : int;
  mutable draining : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Jobq.create: capacity < 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    draining = false;
  }

type push_result = Enqueued of int | Full | Draining

let push t job =
  Mutex.lock t.mutex;
  let r =
    if t.draining then Draining
    else if Queue.length t.items >= t.capacity then Full
    else begin
      Queue.push job t.items;
      Condition.signal t.nonempty;
      Enqueued (Queue.length t.items)
    end
  in
  Mutex.unlock t.mutex;
  r

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.items && not t.draining do
    Condition.wait t.nonempty t.mutex
  done;
  let r = Queue.take_opt t.items in
  Mutex.unlock t.mutex;
  r

let drain t =
  Mutex.lock t.mutex;
  if not t.draining then begin
    t.draining <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mutex

let draining t =
  Mutex.lock t.mutex;
  let d = t.draining in
  Mutex.unlock t.mutex;
  d

let depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.items in
  Mutex.unlock t.mutex;
  n
