(* Bounded job queue with per-client round-robin dequeue.

   A single FIFO lets one greedy pipelining client starve everyone
   behind it: its requests occupy the head of the queue while other
   clients' single requests wait at the tail.  Instead each client
   (keyed by connection id) gets its own FIFO, and [pop] serves clients
   in rotation — a client's own requests still execute in order, but no
   client waits behind more than one request from each of its peers.

   The capacity bound applies to the total number of queued jobs across
   all clients, so backpressure semantics (Full / retry-after) are
   unchanged from the single-FIFO queue. *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on push and on drain *)
  (* Per-client pending jobs.  Invariant: a client has an entry here iff
     it appears exactly once in [rotation]; queues are never empty. *)
  queues : (int, 'a Queue.t) Hashtbl.t;
  mutable rotation : int list;  (* clients with pending jobs, next first *)
  mutable size : int;  (* total jobs across all clients *)
  capacity : int;
  mutable draining : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Jobq.create: capacity < 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queues = Hashtbl.create 16;
    rotation = [];
    size = 0;
    capacity;
    draining = false;
  }

type push_result = Enqueued of int | Full | Draining

let push t ~client job =
  Mutex.lock t.mutex;
  let r =
    if t.draining then Draining
    else if t.size >= t.capacity then Full
    else begin
      (match Hashtbl.find_opt t.queues client with
      | Some q -> Queue.push job q
      | None ->
        let q = Queue.create () in
        Queue.push job q;
        Hashtbl.add t.queues client q;
        t.rotation <- t.rotation @ [ client ]);
      t.size <- t.size + 1;
      Condition.signal t.nonempty;
      Enqueued t.size
    end
  in
  Mutex.unlock t.mutex;
  r

let pop t =
  Mutex.lock t.mutex;
  while t.size = 0 && not t.draining do
    Condition.wait t.nonempty t.mutex
  done;
  let r =
    match t.rotation with
    | [] -> None
    | client :: rest ->
      let q = Hashtbl.find t.queues client in
      let job = Queue.pop q in
      t.size <- t.size - 1;
      if Queue.is_empty q then begin
        Hashtbl.remove t.queues client;
        t.rotation <- rest
      end
      else t.rotation <- rest @ [ client ];
      Some job
  in
  Mutex.unlock t.mutex;
  r

let drain t =
  Mutex.lock t.mutex;
  if not t.draining then begin
    t.draining <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mutex

let draining t =
  Mutex.lock t.mutex;
  let d = t.draining in
  Mutex.unlock t.mutex;
  d

let depth t =
  Mutex.lock t.mutex;
  let n = t.size in
  Mutex.unlock t.mutex;
  n
